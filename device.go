package gpuperf

import (
	"fmt"

	"gpuperf/internal/gpu"
)

// Device describes the simulated GPU a session analyzes for. It is
// the facade's name for the internal configuration type: fields are
// exported and may be adjusted before constructing an Analyzer (the
// architect example sweeps bank counts, SM resources and transaction
// granularity this way), but most callers start from DefaultDevice.
type Device = gpu.Config

// DefaultDevice returns the paper's test platform, the GeForce
// GTX 285 (30 SMs in 10 clusters, 16-bank shared memory, 512-bit
// GDDR3 interface).
func DefaultDevice() Device { return gpu.GTX285() }

// SliceDevice returns a copy of dev cut down to at most sms
// streaming multiprocessors. Per-SM and per-cluster behaviour —
// occupancy, bank conflicts, coalescing, the shared memory pipeline
// per cluster — is unchanged; only chip-level throughput scales. To
// preserve the cluster structure, sms is rounded down to a whole
// number of clusters (GTX 285: multiples of 3), so results stay
// comparable across slice sizes; asking for fewer SMs than one
// cluster keeps one whole cluster. Small workloads analyzed on a
// slice keep several blocks resident per SM, which the paper's
// occupancy effects need; the examples use a 6-SM (two-cluster)
// slice.
func SliceDevice(dev Device, sms int) Device {
	if sms <= 0 || sms >= dev.NumSMs || dev.SMsPerCluster <= 0 {
		return dev
	}
	if sms < dev.SMsPerCluster {
		sms = dev.SMsPerCluster
	}
	sms -= sms % dev.SMsPerCluster
	if sms >= dev.NumSMs {
		return dev
	}
	dev.NumSMs = sms
	dev.Name += fmt.Sprintf("-%dsm", sms)
	return dev
}
