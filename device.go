package gpuperf

import (
	"fmt"
	"regexp"

	"gpuperf/internal/gpu"
)

// Device describes the simulated GPU a session analyzes for. It is
// the facade's name for the internal configuration type: fields are
// exported and may be adjusted before constructing an Analyzer or
// registering a catalog entry, but most callers start from
// DefaultDevice or a DeviceCatalog.
type Device = gpu.Config

// DefaultDevice returns the paper's test platform, the GeForce
// GTX 285 (30 SMs in 10 clusters, 16-bank shared memory, 512-bit
// GDDR3 interface).
func DefaultDevice() Device { return gpu.GTX285() }

// DeviceFingerprint returns the canonical digest of every
// architectural parameter of dev except its name: two devices
// differing in any knob have different fingerprints, and renaming a
// device does not change its fingerprint. Calibration caches and
// catalog profiles are keyed by it.
func DeviceFingerprint(dev Device) string { return gpu.Fingerprint(dev) }

// sliceSuffix is the name decoration SliceDevice appends; slicing an
// already-sliced device replaces it instead of stacking another. Not
// anchored: catalog variant names put the slice before the knob
// ("gtx285-6sm+banks17"), and re-slicing those must strip the old
// marker too.
var sliceSuffix = regexp.MustCompile(`-\d+sm`)

// SliceDevice returns a copy of dev cut down to at most sms
// streaming multiprocessors. Per-SM and per-cluster behaviour —
// occupancy, bank conflicts, coalescing, the shared memory pipeline
// per cluster — is unchanged; only chip-level throughput scales. To
// preserve the cluster structure, sms is rounded down to a whole
// number of clusters (GTX 285: multiples of 3), so results stay
// comparable across slice sizes; asking for fewer SMs than one
// cluster keeps one whole cluster. Small workloads analyzed on a
// slice keep several blocks resident per SM, which the paper's
// occupancy effects need; the examples use a 6-SM (two-cluster)
// slice. Slicing is idempotent: re-slicing an already-sliced device
// yields the same name and configuration as slicing the original
// once.
func SliceDevice(dev Device, sms int) Device {
	if sms <= 0 || sms >= dev.NumSMs || dev.SMsPerCluster <= 0 {
		return dev
	}
	if sms < dev.SMsPerCluster {
		sms = dev.SMsPerCluster
	}
	sms -= sms % dev.SMsPerCluster
	if sms >= dev.NumSMs {
		return dev
	}
	dev.NumSMs = sms
	dev.Name = sliceSuffix.ReplaceAllLiteralString(dev.Name, "") + fmt.Sprintf("-%dsm", sms)
	return dev
}
