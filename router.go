package gpuperf

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"gpuperf/internal/obs"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Workers are the worker base URLs (e.g. "http://127.0.0.1:8098"),
	// each a gpuperfd serving the full /v1 API. At least one is
	// required.
	Workers []string
	// Catalog resolves device names for shard routing; it must agree
	// with the workers' catalogs. Nil means DefaultCatalog().
	Catalog *DeviceCatalog
	// DefaultDevice resolves requests with an empty device field
	// ("" = DefaultCatalogDevice), like FleetOptions.DefaultDevice.
	DefaultDevice string
	// HealthInterval is the delay between worker /healthz polls
	// (0 = 2s).
	HealthInterval time.Duration
	// BatchConcurrency caps the compare scatter-gather fan-out
	// (0 = GOMAXPROCS).
	BatchConcurrency int
	// Client issues the proxied requests (nil = http.DefaultClient,
	// which imposes no overall timeout — analyses can run long and
	// respect the inbound request's context instead).
	Client *http.Client
	// Telemetry tunes the router's observability layer (logger, slow
	// threshold); the zero value is fully functional.
	Telemetry Telemetry
}

// Router is gpuperfd's scale-out front door: it consistent-hashes
// every request's device HARDWARE FINGERPRINT across the worker set
// (rendezvous hashing — adding a worker moves only the shards it
// wins), so each worker owns a stable fingerprint shard and
// calibrations and result caches never duplicate across workers.
// Cross-shard comparisons are scatter-gathered: one per-device
// analyze to each owning worker, assembled with the exact fanout
// Fleet.Compare uses, so a proxied comparison is byte-identical to a
// local one. A request whose shard owner is down fails fast with 503
// — it is never rerouted, because serving it elsewhere would
// duplicate that shard's calibrations and pollute the survivor's
// cache.
type Router struct {
	opt     RouterOptions
	catalog *DeviceCatalog
	def     string
	workers []string
	client  *http.Client

	// start anchors the router's own uptime gauge; metrics is its
	// /metrics registry (worker scrapes are merged in at serve time);
	// proxyLat/proxyErrs are the per-worker proxy instruments.
	start     time.Time
	metrics   *obs.Registry
	proxyLat  *obs.HistogramVec
	proxyErrs *obs.CounterVec

	mu    sync.RWMutex
	state map[string]*workerState

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// workerState is one worker's last-probed health: up means it
// answered /healthz at all (routable), ready that it answered 200
// (its default device is calibrated).
type workerState struct {
	up    bool
	ready bool
}

// NewRouter builds a router, probes every worker once synchronously
// (so routing decisions are meaningful immediately), and starts the
// background health loop. Close releases it.
func NewRouter(opt RouterOptions) (*Router, error) {
	if len(opt.Workers) == 0 {
		return nil, fmt.Errorf("gpuperf: router needs at least one worker URL")
	}
	catalog := opt.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	def := opt.DefaultDevice
	if def == "" {
		def = DefaultCatalogDevice
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	rt := &Router{
		opt:     opt,
		catalog: catalog,
		def:     def,
		client:  client,
		state:   map[string]*workerState{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, w := range opt.Workers {
		u := strings.TrimRight(strings.TrimSpace(w), "/")
		if u == "" {
			return nil, fmt.Errorf("gpuperf: empty worker URL in %v", opt.Workers)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("gpuperf: duplicate worker URL %q", u)
		}
		seen[u] = true
		rt.workers = append(rt.workers, u)
		rt.state[u] = &workerState{}
	}
	rt.registerMetrics()
	rt.probeAll()
	go rt.healthLoop()
	return rt, nil
}

// registerMetrics builds the router's own registry: uptime, runtime
// gauges, per-worker health flags sampled at scrape time, and the
// per-worker proxy latency/error instruments rt.do records into.
func (rt *Router) registerMetrics() {
	rt.start = time.Now()
	rt.metrics = obs.NewRegistry()
	rt.metrics.NewGaugeFunc("gpuperf_router_uptime_seconds",
		"Seconds since the router was built.",
		func() float64 { return time.Since(rt.start).Seconds() })
	registerRuntimeMetrics(rt.metrics)
	up := rt.metrics.NewGaugeFuncVec("gpuperf_router_worker_up",
		"Worker answered its last /healthz probe (1/0).", "worker")
	ready := rt.metrics.NewGaugeFuncVec("gpuperf_router_worker_ready",
		"Worker /healthz answered 200 — default device calibrated (1/0).", "worker")
	for _, wk := range rt.workers {
		wk := wk
		up.Register(func() float64 { return boolGauge(rt.isUp(wk)) }, wk)
		ready.Register(func() float64 { return boolGauge(rt.isReady(wk)) }, wk)
	}
	rt.proxyLat = rt.metrics.NewHistogramVec("gpuperf_router_proxy_seconds",
		"Proxied request latency by worker.", obs.DefLatencyBuckets, "worker")
	rt.proxyErrs = rt.metrics.NewCounterVec("gpuperf_router_proxy_errors_total",
		"Proxied request transport failures by worker.", "worker")
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Metrics returns the router's own metric registry (worker metrics
// are merged in only on the /metrics route).
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// do issues one proxied request: it forwards the inbound request id
// (so one id threads router and worker logs), opens a proxy span in
// the request trace, and records the per-worker latency histogram and
// transport-error counter. Callers still own markDown decisions.
func (rt *Router) do(wk string, req *http.Request) (*http.Response, error) {
	if tr := obs.TraceFrom(req.Context()); tr != nil {
		req.Header.Set("X-Request-ID", tr.ID())
	}
	_, sp := obs.StartSpan(req.Context(), "proxy")
	resp, err := rt.client.Do(req)
	sp.End()
	rt.proxyLat.With(wk).Observe(sp.Duration().Seconds())
	if err != nil {
		rt.proxyErrs.With(wk).Inc()
	}
	return resp, err
}

// Close stops the health loop. The router keeps serving with its last
// known worker states.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// Workers returns the normalized worker URLs, in configuration order.
func (rt *Router) Workers() []string { return append([]string(nil), rt.workers...) }

// ShardFor returns the worker URL owning the catalog device's
// fingerprint shard.
func (rt *Router) ShardFor(device string) (string, error) {
	if device == "" {
		device = rt.def
	}
	dev, err := rt.catalog.Resolve(device)
	if err != nil {
		return "", err
	}
	return rt.shardFor(DeviceFingerprint(dev)), nil
}

// shardFor rendezvous-hashes a device hardware fingerprint over the
// worker set: each worker's score is the digest of (fingerprint,
// worker) and the highest score wins, so every (fingerprint, worker
// set) pair has exactly one deterministic owner and a membership
// change only moves the shards the changed worker won.
func (rt *Router) shardFor(fp string) string {
	var best string
	var bestScore [sha256.Size]byte
	for _, wk := range rt.workers {
		score := sha256.Sum256([]byte(fp + "\x00" + wk))
		if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = wk, score
		}
	}
	return best
}

// healthLoop re-probes every worker on a ticker until Close.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	interval := rt.opt.HealthInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			rt.probeAll()
		case <-rt.stop:
			return
		}
	}
}

// probeAll checks every worker's /healthz once. Any HTTP response at
// all means the worker is up (routable) — a worker still calibrating
// answers 503 but can absolutely take traffic; only 200 marks it
// ready.
func (rt *Router) probeAll() {
	for _, wk := range rt.workers {
		up, ready := rt.probe(wk)
		rt.mu.Lock()
		st := rt.state[wk]
		st.up, st.ready = up, ready
		rt.mu.Unlock()
	}
}

func (rt *Router) probe(wk string) (up, ready bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return true, resp.StatusCode == http.StatusOK
}

func (rt *Router) isUp(wk string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	st, ok := rt.state[wk]
	return ok && st.up
}

func (rt *Router) isReady(wk string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	st, ok := rt.state[wk]
	return ok && st.ready
}

// markDown records a failed proxied request immediately instead of
// waiting for the next probe, so a crashed worker fails fast for the
// requests behind the one that discovered it.
func (rt *Router) markDown(wk string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if st, ok := rt.state[wk]; ok {
		st.up, st.ready = false, false
	}
}

// RouterHealth is the router's GET /healthz wire type.
type RouterHealth struct {
	// Status is "ok" with every worker up, "degraded" with some up,
	// "down" with none; the endpoint answers 503 unless "ok" — a
	// degraded router serves the live shards but an operator's probe
	// should see the outage.
	Status  string         `json:"status"`
	Workers []RouterWorker `json:"workers"`
	// Shards maps every catalog device name to the worker URL owning
	// its fingerprint shard — the routing table, flat and greppable.
	Shards map[string]string `json:"shards"`
}

// RouterWorker is one worker's health in a RouterHealth.
type RouterWorker struct {
	URL string `json:"url"`
	// Up: the worker answered its last /healthz probe at all.
	// Ready: it answered 200 (default device calibrated).
	Up    bool `json:"up"`
	Ready bool `json:"ready"`
}

// Health reports the router's view of the worker set and the shard
// table.
func (rt *Router) Health() RouterHealth {
	h := RouterHealth{Shards: map[string]string{}}
	nup := 0
	rt.mu.RLock()
	for _, wk := range rt.workers {
		st := rt.state[wk]
		h.Workers = append(h.Workers, RouterWorker{URL: wk, Up: st.up, Ready: st.ready})
		if st.up {
			nup++
		}
	}
	rt.mu.RUnlock()
	for _, p := range rt.catalog.Profiles() {
		h.Shards[p.Name] = rt.shardFor(p.Fingerprint)
	}
	switch {
	case nup == len(rt.workers):
		h.Status = "ok"
	case nup > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	return h
}

// proxyError carries a worker's (or the router's own) HTTP verdict
// through the compare fanout's error joining; errors.As recovers the
// status code on the far side.
type proxyError struct {
	code int
	msg  string
}

func (e *proxyError) Error() string { return e.msg }

// writeProxyError maps a proxied failure to its status: a worker's
// own verdict when one is embedded, the local analysis mapping
// otherwise.
func writeProxyError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *proxyError
	if errors.As(err, &pe) {
		writeError(w, r, pe.code, err)
		return
	}
	writeAnalysisError(w, r, err)
}

// Handler exposes the router over HTTP: the same /v1 surface as a
// worker, plus a router-shaped /healthz and a /metrics that merges
// every up worker's exposition (tagged with worker labels) into the
// router's own. Proxied responses carry X-Shard naming the worker
// that served them, and the inbound X-Request-ID is forwarded so one
// id threads router and worker logs.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := rt.Health()
		status := http.StatusOK
		if h.Status != "ok" {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, r, status, h)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, rt.aggregateStats(r.Context()))
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStatic(w, r, "/v1/kernels")
	})
	mux.HandleFunc("POST /v1/kernels", rt.handleSubmit)
	mux.HandleFunc("DELETE /v1/kernels/{id}", rt.handleDeleteKernel)
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStatic(w, r, "/v1/devices")
	})
	for _, path := range []string{"/v1/analyze", "/v1/advise", "/v1/measure"} {
		path := path
		mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
			rt.proxyByDevice(w, r, path)
		})
	}
	mux.HandleFunc("POST /v1/compare", rt.handleCompare)
	return telemetryMiddleware(mux, rt.metrics, rt.opt.Telemetry)
}

// handleMetrics scrapes every up worker's /metrics and merges the
// expositions into the router's own, each worker's samples tagged
// with worker="<url>" — one endpoint shows the whole deployment.
// Workers that fail to answer are skipped (their absence is visible
// through gpuperf_router_worker_up).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var own bytes.Buffer
	rt.metrics.WritePrometheus(&own)
	var parts []obs.LabeledExposition
	for _, wk := range rt.workers {
		if !rt.isUp(wk) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := rt.do(wk, req)
		if err != nil {
			continue
		}
		text, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		parts = append(parts, obs.LabeledExposition{LabelValue: wk, Text: text})
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	if err := obs.MergeExpositions(w, "worker", own.Bytes(), parts); err != nil {
		requestLogger(r.Context()).Warn("writing merged /metrics", "component", "router", "err", err)
	}
}

// aggregateStats sums every up worker's /v1/stats — the fleet-wide
// cache picture. Workers that fail to answer are skipped; sharding
// guarantees no entry is counted twice.
func (rt *Router) aggregateStats(ctx context.Context) CacheStats {
	var agg CacheStats
	for _, wk := range rt.workers {
		if !rt.isUp(wk) {
			continue
		}
		var st CacheStats
		if err := rt.getJSON(ctx, wk+"/v1/stats", &st); err != nil {
			continue
		}
		agg.Enabled = agg.Enabled || st.Enabled
		agg.Hits += st.Hits
		agg.MemoryHits += st.MemoryHits
		agg.DiskHits += st.DiskHits
		agg.Misses += st.Misses
		agg.Coalesced += st.Coalesced
		agg.Evictions += st.Evictions
		agg.SaveErrors += st.SaveErrors
		agg.InFlight += st.InFlight
		agg.Entries += st.Entries
		agg.Bytes += st.Bytes
		agg.MemoryBudgetBytes += st.MemoryBudgetBytes
		agg.Submissions += st.Submissions
		agg.SubmissionBytes += st.SubmissionBytes
		agg.SubmissionEvictions += st.SubmissionEvictions
		// Uptime aggregates as the oldest worker's: "how long has this
		// deployment been serving" rather than a meaningless sum.
		if st.UptimeSeconds > agg.UptimeSeconds {
			agg.UptimeSeconds = st.UptimeSeconds
		}
		for op, n := range st.Requests {
			if agg.Requests == nil {
				agg.Requests = make(map[string]int64)
			}
			agg.Requests[op] += n
		}
	}
	return agg
}

func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gpuperf: %s answered %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(v)
}

// proxiedHeaders are the response headers a proxied answer carries
// through to the client.
var proxiedHeaders = []string{"Content-Type", "ETag", "Cache-Control", "X-Cache"}

// relay copies a worker's response — status, caching headers, body —
// to the client verbatim, so HIT/MISS verdicts and ETags survive the
// hop, and tags it with X-Shard naming the worker that served it.
func relay(w http.ResponseWriter, resp *http.Response, shard string) {
	defer resp.Body.Close()
	for _, h := range proxiedHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if shard != "" {
		w.Header().Set("X-Shard", shard)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// proxyStatic forwards a catalog/registry listing to the first up
// worker — the listings are identical on every worker, so any one
// answers for all. If-None-Match rides along, so 304s work end to
// end.
func (rt *Router) proxyStatic(w http.ResponseWriter, r *http.Request, path string) {
	for _, wk := range rt.workers {
		if !rt.isUp(wk) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk+path, nil)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := rt.do(wk, req)
		if err != nil {
			rt.markDown(wk)
			continue
		}
		relay(w, resp, wk)
		return
	}
	writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("gpuperf: no worker is up"))
}

// proxyByDevice routes one single-device request to its device's
// shard owner and relays the answer. The body is peeked leniently for
// the device name only — the owning worker's strict decoder is the
// authority on malformed bodies, so router and worker reject
// identically.
func (rt *Router) proxyByDevice(w http.ResponseWriter, r *http.Request, path string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, r, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, r, http.StatusBadRequest, err)
		}
		return
	}
	var peek struct {
		Device string `json:"device"`
		Kernel string `json:"kernel"`
	}
	// Lenient on purpose: a body the peek cannot parse still proxies
	// (to the default shard) and fails the worker's strict decode.
	json.Unmarshal(body, &peek)
	name := peek.Device
	if name == "" {
		name = rt.def
	}
	dev, err := rt.catalog.Resolve(name)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	wk := rt.shardFor(DeviceFingerprint(dev))
	if !rt.isUp(wk) {
		writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("gpuperf: shard %s (device %q) is down", wk, name))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, wk+path, bytes.NewReader(body))
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := rt.do(wk, req)
	if err != nil {
		rt.markDown(wk)
		writeError(w, r, http.StatusBadGateway, fmt.Errorf("gpuperf: shard %s: %w", wk, err))
		return
	}
	// Submitted kernels live on the shard owning their PROGRAM hash,
	// which is generally not the device shard this request landed on.
	// A 404 for a submission id from a foreign shard retries once on
	// the submission's owner — the one worker that can hold it.
	if resp.StatusCode == http.StatusNotFound && IsSubmissionID(peek.Kernel) {
		if owner := rt.shardFor(peek.Kernel); owner != wk && rt.isUp(owner) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			req2, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+path, bytes.NewReader(body))
			if err != nil {
				writeError(w, r, http.StatusInternalServerError, err)
				return
			}
			req2.Header.Set("Content-Type", "application/json")
			resp2, err := rt.do(owner, req2)
			if err != nil {
				rt.markDown(owner)
				writeError(w, r, http.StatusBadGateway, fmt.Errorf("gpuperf: shard %s: %w", owner, err))
				return
			}
			relay(w, resp2, owner)
			return
		}
	}
	relay(w, resp, wk)
}

// handleSubmit routes POST /v1/kernels to the worker owning the
// submission's content-addressed id (rendezvous-hashed like device
// fingerprints), so exactly one shard ever holds a given program and
// its analyze results stay on the shard that can serve them. A body
// whose id cannot be computed (unparsable program or spec) goes to
// any up worker, whose strict admission pipeline is the authority on
// the rejection.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmissionBody))
	if err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, r, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, r, http.StatusBadRequest, err)
		}
		return
	}
	var wk string
	var sub KernelSubmission
	if json.Unmarshal(body, &sub) == nil {
		if id, err := SubmissionID(sub); err == nil {
			wk = rt.shardFor(id)
		}
	}
	if wk == "" {
		wk = rt.firstUp()
	}
	if wk == "" || !rt.isUp(wk) {
		writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("gpuperf: submission shard is down"))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, wk+"/v1/kernels", bytes.NewReader(body))
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.do(wk, req)
	if err != nil {
		rt.markDown(wk)
		writeError(w, r, http.StatusBadGateway, fmt.Errorf("gpuperf: shard %s: %w", wk, err))
		return
	}
	relay(w, resp, wk)
}

// handleDeleteKernel routes DELETE /v1/kernels/{id} to the shard
// owning the submission id.
func (rt *Router) handleDeleteKernel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk := rt.shardFor(id)
	if !rt.isUp(wk) {
		writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("gpuperf: shard %s (submission %q) is down", wk, id))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, wk+"/v1/kernels/"+id, nil)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp, err := rt.do(wk, req)
	if err != nil {
		rt.markDown(wk)
		writeError(w, r, http.StatusBadGateway, fmt.Errorf("gpuperf: shard %s: %w", wk, err))
		return
	}
	relay(w, resp, wk)
}

// firstUp returns the first up worker, or "" with none.
func (rt *Router) firstUp() string {
	for _, wk := range rt.workers {
		if rt.isUp(wk) {
			return wk
		}
	}
	return ""
}

// remoteAnalyze is the compare scatter-gather's per-device unit: one
// /v1/analyze against the device's shard owner. Worker-side failures
// come back as proxyError so the assembled comparison reports the
// worker's own verdict.
func (rt *Router) remoteAnalyze(ctx context.Context, req Request) (*Result, CacheStatus, error) {
	dev, err := rt.catalog.Resolve(req.Device)
	if err != nil {
		return nil, CacheBypass, err
	}
	wk := rt.shardFor(DeviceFingerprint(dev))
	if !rt.isUp(wk) {
		return nil, CacheBypass, &proxyError{
			code: http.StatusServiceUnavailable,
			msg:  fmt.Sprintf("gpuperf: shard %s (device %q) is down", wk, req.Device),
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, CacheBypass, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, wk+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, CacheBypass, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := rt.do(wk, hreq)
	if err != nil {
		rt.markDown(wk)
		return nil, CacheBypass, &proxyError{
			code: http.StatusBadGateway,
			msg:  fmt.Sprintf("gpuperf: shard %s: %v", wk, err),
		}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return nil, CacheBypass, &proxyError{code: http.StatusBadGateway, msg: fmt.Sprintf("gpuperf: shard %s: %v", wk, err)}
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, CacheBypass, &proxyError{code: resp.StatusCode, msg: msg}
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, CacheBypass, &proxyError{code: http.StatusBadGateway, msg: fmt.Sprintf("gpuperf: shard %s: decoding result: %v", wk, err)}
	}
	st := CacheStatus(resp.Header.Get("X-Cache"))
	if st == "" {
		st = CacheBypass
	}
	return &res, st, nil
}

// handleCompare scatter-gathers a cross-device comparison: each
// device's analysis goes to ITS shard owner (so no worker ever
// calibrates outside its shard), and the entries are assembled with
// the same fanout Fleet.Compare uses. Fail-fast: if any requested
// device's shard is down the comparison is refused with 503 before
// any work is dispatched. The response's X-Cache is HIT only when
// every per-device answer was a hit — the comparison was fully served
// from the fleet's caches.
func (rt *Router) handleCompare(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[CompareRequest](w, r)
	if !ok {
		return
	}
	baseline, fps, err := validateCompare(rt.catalog, req)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	for i, d := range req.Devices {
		if wk := rt.shardFor(fps[i]); !rt.isUp(wk) {
			writeError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("gpuperf: shard %s (device %q) is down", wk, d))
			return
		}
	}
	var mu sync.Mutex
	allHit := true
	analyzeFn := func(ctx context.Context, areq Request) (*Result, error) {
		res, st, err := rt.remoteAnalyze(ctx, areq)
		mu.Lock()
		if st != CacheHit {
			allHit = false
		}
		mu.Unlock()
		return res, err
	}
	cmp, err := compareFanout(r.Context(), rt.catalog, rt.opt.BatchConcurrency, req, baseline, analyzeFn)
	if err != nil {
		writeProxyError(w, r, err)
		return
	}
	st := CacheMiss
	if allHit {
		st = CacheHit
	}
	writeCachedJSON(w, r, cmp, st, "")
}
