package gpuperf

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// submitReduceSource mirrors the internal/ingest canonical test
// kernel: a shared-memory tree reduction over 64-thread blocks whose
// guarded halving steps exercise the bounds verifier end to end.
func submitReduceSource(grid int) string {
	var b strings.Builder
	b.WriteString(".kernel reduce64\n.regs 13\n.smem 256\n")
	b.WriteString(`
s2r r0, %tid
s2r r1, %ctaid
s2r r2, %ntid
imad r3, r1, r2, r0
shl r4, r3, 2
gld r5, r4
shl r6, r0, 2
sst r6, r5
bar.sync
`)
	for s := 32; s >= 1; s /= 2 {
		fmt.Fprintf(&b, "isetp.lt p0, r0, %d\n", s)
		fmt.Fprintf(&b, "@p0 iadd r7, r0, %d\n", s)
		b.WriteString(`@p0 shl r7, r7, 2
@p0 sld r8, r7
@p0 sld r9, r6
@p0 fadd r9, r9, r8
@p0 sst r6, r9
bar.sync
`)
	}
	fmt.Fprintf(&b, `isetp.eq p1, r0, 0
mov r10, 0
@p1 sld r11, r10
@p1 shl r12, r1, 2
@p1 iadd r12, r12, %d
@p1 gst r12, r11
exit
`, 4*grid*64)
	return b.String()
}

func submitReduceRequest(grid int) KernelSubmission {
	return KernelSubmission{
		Label:  "tree-reduction",
		Source: submitReduceSource(grid),
		Grid:   grid,
		Block:  64,
		Buffers: []BufferSpec{
			{Name: "in", Elem: "f32", Count: grid * 64, Fill: "random"},
			{Name: "out", Elem: "f32", Count: grid, Fill: "zeros"},
		},
	}
}

func TestSubmitKernelLifecycle(t *testing.T) {
	f := NewFleet(FleetOptions{CalibrationDir: t.TempDir()})
	rec, err := f.SubmitKernel(submitReduceRequest(4))
	if err != nil {
		t.Fatalf("SubmitKernel: %v", err)
	}
	if !IsSubmissionID(rec.ID) || rec.Kernel != "reduce64" || rec.Existing {
		t.Fatalf("bad receipt: %+v", rec)
	}
	if rec.Instructions == 0 || rec.Registers != 13 || rec.FootprintBytes == 0 {
		t.Fatalf("static summary missing: %+v", rec)
	}
	if id, err := SubmissionID(submitReduceRequest(4)); err != nil || id != rec.ID {
		t.Fatalf("SubmissionID = %q, %v; want %q", id, err, rec.ID)
	}

	// Submissions appear in the kernel listing like any registry entry.
	spec, ok := f.Registry().Lookup(rec.ID)
	if !ok || !spec.Unverified || spec.Family != "submitted" {
		t.Fatalf("submission spec not registered: %+v ok=%v", spec, ok)
	}
	if _, ok := DefaultRegistry().Lookup(rec.ID); ok {
		t.Fatal("submission leaked into the process-global registry")
	}

	// Analyze by id: MISS then HIT; the result carries the
	// measure-only verification policy.
	ctx := context.Background()
	res, st, err := f.AnalyzeCached(ctx, Request{Kernel: rec.ID})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if st != CacheMiss {
		t.Fatalf("first analyze: X-Cache %s, want MISS", st)
	}
	if res.Bottleneck == "" || res.Grid != 4 || res.Block != 64 {
		t.Fatalf("result: %+v", res)
	}
	if res.VerifyError != "unverified: user-submitted" || res.MaxAbsError != nil {
		t.Fatalf("verification policy not applied: verify_error=%q max_abs_error=%v", res.VerifyError, res.MaxAbsError)
	}
	// SkipVerify is pinned for submissions: toggling it must not split
	// the cache slot.
	if _, st, err = f.AnalyzeCached(ctx, Request{Kernel: rec.ID, SkipVerify: true}); err != nil || st != CacheHit {
		t.Fatalf("second analyze: X-Cache %s, %v; want HIT", st, err)
	}

	// Resubmission dedupes.
	again := submitReduceRequest(4)
	again.Label = "renamed"
	rec2, err := f.SubmitKernel(again)
	if err != nil || rec2.ID != rec.ID || !rec2.Existing {
		t.Fatalf("resubmit: %+v, %v", rec2, err)
	}
	if n, _, _ := f.subs.Stats(); n != 1 {
		t.Fatalf("resubmission duplicated the store: %d entries", n)
	}
	if cs := f.CacheStats(); cs.Submissions != 1 || cs.SubmissionBytes == 0 {
		t.Fatalf("stats gauges: %+v", cs)
	}

	// Delete retires the id end to end.
	if err := f.DeleteKernel(rec.ID); err != nil {
		t.Fatalf("DeleteKernel: %v", err)
	}
	if err := f.DeleteKernel(rec.ID); !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("double delete: %v", err)
	}
	if _, ok := f.Registry().Lookup(rec.ID); ok {
		t.Fatal("deleted submission still registered")
	}
	if _, err := f.Analyze(ctx, Request{Kernel: rec.ID}); !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("analyze after delete: %v", err)
	}
}

func TestSubmitKernelRejections(t *testing.T) {
	f := NewFleet(FleetOptions{DisableCache: true})
	oob := submitReduceRequest(4)
	oob.Buffers[0].Count = 3 * 64 // program addresses 4*64 elements
	_, err := f.SubmitKernel(oob)
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("out-of-bounds submission: %v", err)
	}
	if !strings.Contains(err.Error(), "envelope") {
		t.Fatalf("rejection does not name the envelope: %v", err)
	}

	tight := NewFleet(FleetOptions{
		DisableCache:     true,
		SubmissionLimits: SubmissionLimits{MaxInstructions: 4},
	})
	_, err = tight.SubmitKernel(submitReduceRequest(4))
	if !errors.Is(err, ErrInvalidRequest) || !strings.Contains(err.Error(), "instruction ceiling") {
		t.Fatalf("over-budget submission: %v", err)
	}
}

func TestSubmitKernelEvictionDeregisters(t *testing.T) {
	f := NewFleet(FleetOptions{
		DisableCache:     true,
		SubmissionLimits: SubmissionLimits{MaxCount: 1},
	})
	a, err := f.SubmitKernel(submitReduceRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.SubmitKernel(submitReduceRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Registry().Lookup(a.ID); ok {
		t.Fatal("LRU-evicted submission still registered")
	}
	if _, ok := f.Registry().Lookup(b.ID); !ok {
		t.Fatal("resident submission missing from registry")
	}
}

// submissionFleet is a dedicated fleet for submission tests (the
// shared testFleet must stay submission-free), seeded with the shared
// session's calibration so nothing recalibrates.
func submissionFleet(t *testing.T) *Fleet {
	t.Helper()
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	return NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: dir})
}

func TestHandlerSubmitKernelRoundTrip(t *testing.T) {
	h := NewHandler(submissionFleet(t))
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	body, err := json.Marshal(submitReduceRequest(4))
	if err != nil {
		t.Fatal(err)
	}

	// Submit: 200 with a receipt naming the id.
	rec := do("POST", "/v1/kernels", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d (%s)", rec.Code, rec.Body)
	}
	var receipt SubmissionReceipt
	if err := json.Unmarshal(rec.Body.Bytes(), &receipt); err != nil {
		t.Fatal(err)
	}
	if !IsSubmissionID(receipt.ID) || receipt.Kernel != "reduce64" || receipt.Existing {
		t.Fatalf("receipt: %+v", receipt)
	}

	// The listing now carries the submission.
	rec = do("GET", "/v1/kernels", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), receipt.ID) {
		t.Fatalf("kernel listing misses submission: %d (%s)", rec.Code, rec.Body)
	}

	// Analyze by id: MISS then HIT, unverified policy on the wire.
	analyzeBody := fmt.Sprintf(`{"kernel":%q}`, receipt.ID)
	cold := do("POST", "/v1/analyze", analyzeBody)
	if cold.Code != http.StatusOK {
		t.Fatalf("analyze: %d (%s)", cold.Code, cold.Body)
	}
	var res Result
	if err := json.Unmarshal(cold.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck == "" || res.VerifyError != "unverified: user-submitted" {
		t.Fatalf("result on the wire: bottleneck=%q verify_error=%q", res.Bottleneck, res.VerifyError)
	}
	if got := cold.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first analyze X-Cache %q", got)
	}
	warm := do("POST", "/v1/analyze", analyzeBody)
	if got := warm.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second analyze X-Cache %q", got)
	}

	// Resubmission dedupes on the wire.
	rec = do("POST", "/v1/kernels", string(body))
	var again SubmissionReceipt
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || again.ID != receipt.ID || !again.Existing {
		t.Fatalf("resubmit: %d %+v", rec.Code, again)
	}

	// Delete: 204, then 404 on the repeat and on analyze.
	if rec = do("DELETE", "/v1/kernels/"+receipt.ID, ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d (%s)", rec.Code, rec.Body)
	}
	if rec = do("DELETE", "/v1/kernels/"+receipt.ID, ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", rec.Code)
	}
	if rec = do("POST", "/v1/analyze", analyzeBody); rec.Code != http.StatusNotFound {
		t.Fatalf("analyze after delete: %d", rec.Code)
	}
}

func TestHandlerSubmitKernelRejections(t *testing.T) {
	h := NewHandler(NewFleet(FleetOptions{DisableCache: true}))
	do := func(body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("POST", "/v1/kernels", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// Out of bounds: 400 naming the envelope.
	oob := submitReduceRequest(4)
	oob.Buffers[0].Count = 3 * 64
	body, _ := json.Marshal(oob)
	if rec := do(string(body)); rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "envelope") {
		t.Fatalf("out-of-bounds submission: %d (%s)", rec.Code, rec.Body)
	}

	// Unparsable program: 400.
	bad := submitReduceRequest(2)
	bad.Source = "this is not assembly"
	body, _ = json.Marshal(bad)
	if rec := do(string(body)); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage source: %d (%s)", rec.Code, rec.Body)
	}

	// Oversized body: 413 from the submission cap.
	huge := submitReduceRequest(2)
	huge.Label = strings.Repeat("x", maxSubmissionBody)
	body, _ = json.Marshal(huge)
	if rec := do(string(body)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: %d", rec.Code)
	}
}

// TestRouterSubmitEndToEnd drives submissions through a router over
// two real workers: the submission lands on the shard owning its
// program hash, and an analyze that first hits the device's shard is
// retried on the submission's owner after the foreign 404.
func TestRouterSubmitEndToEnd(t *testing.T) {
	a := testAnalyzer(t)
	calDir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(calDir); err != nil {
		t.Fatal(err)
	}
	fleets := []*Fleet{
		NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir}),
		NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir}),
	}
	var urls []string
	byURL := map[string]*Fleet{}
	for _, f := range fleets {
		srv := httptest.NewServer(NewHandler(f))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
		byURL[srv.URL] = f
	}
	rt := routerOver(t, RouterOptions{Workers: urls, DefaultDevice: "gtx285-6sm"})
	h := rt.Handler()
	deviceShard, err := rt.ShardFor("")
	if err != nil {
		t.Fatal(err)
	}

	// Pick a grid whose submission id hashes to the OTHER worker than
	// the default device's shard, so the analyze MUST take the
	// foreign-404 retry path to succeed.
	var sub KernelSubmission
	var id string
	for grid := 2; grid < 64; grid++ {
		cand := submitReduceRequest(grid)
		cid, err := SubmissionID(cand)
		if err != nil {
			t.Fatal(err)
		}
		if rt.shardFor(cid) != deviceShard {
			sub, id = cand, cid
			break
		}
	}
	if id == "" {
		t.Fatal("no grid produced a cross-shard submission id")
	}

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	body, _ := json.Marshal(sub)
	rec := do("POST", "/v1/kernels", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit via router: %d (%s)", rec.Code, rec.Body)
	}
	var receipt SubmissionReceipt
	if err := json.Unmarshal(rec.Body.Bytes(), &receipt); err != nil {
		t.Fatal(err)
	}
	if receipt.ID != id {
		t.Fatalf("router receipt id %q, want %q", receipt.ID, id)
	}
	// Only the owner shard holds it.
	owner := rt.shardFor(id)
	if n, _, _ := byURL[owner].subs.Stats(); n != 1 {
		t.Fatalf("owner shard holds %d submissions, want 1", n)
	}
	if n, _, _ := byURL[deviceShard].subs.Stats(); n != 0 {
		t.Fatalf("foreign shard holds %d submissions, want 0", n)
	}

	// Analyze routes by device, 404s on the foreign shard, and the
	// router retries on the owner: the client sees plain 200s.
	analyzeBody := fmt.Sprintf(`{"kernel":%q}`, id)
	cold := do("POST", "/v1/analyze", analyzeBody)
	if cold.Code != http.StatusOK {
		t.Fatalf("analyze via router: %d (%s)", cold.Code, cold.Body)
	}
	if got := cold.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first analyze X-Cache %q", got)
	}
	warm := do("POST", "/v1/analyze", analyzeBody)
	if got := warm.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second analyze X-Cache %q", got)
	}

	// Delete routes by id; afterwards analyze 404s on every shard.
	if rec = do("DELETE", "/v1/kernels/"+id, ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete via router: %d (%s)", rec.Code, rec.Body)
	}
	if rec = do("POST", "/v1/analyze", analyzeBody); rec.Code != http.StatusNotFound {
		t.Fatalf("analyze after delete via router: %d (%s)", rec.Code, rec.Body)
	}
}

func TestSubmitKernelPersistenceAcrossFleets(t *testing.T) {
	dir := t.TempDir()
	f1 := NewFleet(FleetOptions{DisableCache: true, SubmissionDir: dir})
	rec, err := f1.SubmitKernel(submitReduceRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFleet(FleetOptions{DisableCache: true, SubmissionDir: dir})
	if _, ok := f2.Registry().Lookup(rec.ID); !ok {
		t.Fatal("submission not reloaded by a fresh fleet")
	}
	subs := f2.Submissions()
	if len(subs) != 1 || subs[0].ID != rec.ID || subs[0].Label != "tree-reduction" {
		t.Fatalf("Submissions() after restart: %+v", subs)
	}
}
