package gpuperf

import (
	"context"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpuperf/internal/obs"
)

// Metrics is the service's metric registry — atomic counters, gauges
// and fixed-bucket histograms with a Prometheus text-format exporter
// (see internal/obs). A Fleet and a Router each own one; GET /metrics
// renders it.
type Metrics = obs.Registry

// requestOps enumerates the fleet front-door operations the per-op
// request counter (and /v1/stats' requests map) reports. Fixed, so
// the metric's label set is bounded and /metrics shows every op at
// zero before traffic arrives.
var requestOps = []string{"analyze", "advise", "compare", "measure", "submit", "evict"}

// registerMetrics builds the fleet's registry: per-op request
// counters, phase-timing histograms, and scrape-time samples of the
// counters other subsystems already keep (result cache, submission
// store, engine, runtime). Engine instrumentation deliberately rides
// the existing EngineCounters seam — no obs calls inside the
// simulator hot path.
func (f *Fleet) registerMetrics() {
	f.metrics = obs.NewRegistry()
	f.reqOps = f.metrics.NewCounterVec("gpuperf_requests_total",
		"Fleet front-door requests by operation.", "op")
	for _, op := range requestOps {
		f.reqOps.With(op)
	}
	f.phaseHist = f.metrics.NewHistogramVec("gpuperf_phase_seconds",
		"Per-phase wall clock of computed requests (cache hits record nothing).",
		obs.DefLatencyBuckets, "phase")
	f.metrics.NewGaugeFunc("gpuperf_uptime_seconds",
		"Seconds since the fleet was built.",
		func() float64 { return time.Since(f.start).Seconds() })
	registerRuntimeMetrics(f.metrics)

	engine := func(field func(EngineCounters) int64) func() float64 {
		return func() float64 { return float64(field(f.EngineCounters())) }
	}
	f.metrics.NewCounterFunc("gpuperf_engine_blocks_simulated_total",
		"Blocks actually simulated.", engine(func(c EngineCounters) int64 { return c.BlocksSimulated }))
	f.metrics.NewCounterFunc("gpuperf_engine_blocks_replayed_total",
		"Blocks served by homogeneous-block replay.", engine(func(c EngineCounters) int64 { return c.BlocksReplayed }))
	f.metrics.NewCounterFunc("gpuperf_engine_batched_runs_total",
		"Batched warp-stepping runs.", engine(func(c EngineCounters) int64 { return c.BatchedRuns }))
	f.metrics.NewCounterFunc("gpuperf_engine_batched_instrs_total",
		"Instructions covered by batched warp stepping.", engine(func(c EngineCounters) int64 { return c.BatchedInstrs }))

	if f.store != nil {
		cache := func(field func() float64) func() float64 { return field }
		f.metrics.NewCounterFunc("gpuperf_cache_hits_total", "Result-cache hits (memory + disk).",
			cache(func() float64 { return float64(f.store.Stats().Hits) }))
		f.metrics.NewCounterFunc("gpuperf_cache_memory_hits_total", "Result-cache memory-tier hits.",
			cache(func() float64 { return float64(f.store.Stats().MemoryHits) }))
		f.metrics.NewCounterFunc("gpuperf_cache_disk_hits_total", "Result-cache disk-tier hits.",
			cache(func() float64 { return float64(f.store.Stats().DiskHits) }))
		f.metrics.NewCounterFunc("gpuperf_cache_misses_total", "Result-cache misses (simulations run).",
			cache(func() float64 { return float64(f.store.Stats().Misses) }))
		f.metrics.NewCounterFunc("gpuperf_cache_coalesced_total", "Requests coalesced onto an in-flight computation.",
			cache(func() float64 { return float64(f.store.Stats().Coalesced) }))
		f.metrics.NewCounterFunc("gpuperf_cache_evictions_total", "Memory-tier entries evicted for the byte budget.",
			cache(func() float64 { return float64(f.store.Stats().Evictions) }))
		f.metrics.NewCounterFunc("gpuperf_cache_save_errors_total", "Failed best-effort disk writes.",
			cache(func() float64 { return float64(f.store.Stats().SaveErrors) }))
		f.metrics.NewGaugeFunc("gpuperf_cache_entries", "Resident memory-tier entries.",
			cache(func() float64 { return float64(f.store.Stats().Entries) }))
		f.metrics.NewGaugeFunc("gpuperf_cache_bytes", "Memory-tier payload bytes.",
			cache(func() float64 { return float64(f.store.Stats().Bytes) }))
		f.metrics.NewGaugeFunc("gpuperf_cache_inflight", "Simulations running right now.",
			cache(func() float64 { return float64(f.store.Stats().InFlight) }))
	}
	if f.subs != nil {
		f.metrics.NewGaugeFunc("gpuperf_submissions", "Resident user-submitted kernels.",
			func() float64 { n, _, _ := f.subs.Stats(); return float64(n) })
		f.metrics.NewGaugeFunc("gpuperf_submission_bytes", "Submission-store byte weight.",
			func() float64 { _, b, _ := f.subs.Stats(); return float64(b) })
		f.metrics.NewCounterFunc("gpuperf_submission_evictions_total",
			"Submissions removed (LRU, TTL or deletion).",
			func() float64 { _, _, e := f.subs.Stats(); return float64(e) })
	}
}

// registerRuntimeMetrics adds process-level gauges shared by worker
// and router registries.
func registerRuntimeMetrics(reg *Metrics) {
	reg.NewGaugeFunc("gpuperf_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc("gpuperf_heap_alloc_bytes", "Heap bytes in use.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
}

// countRequest bumps the fleet's per-op request counter.
func (f *Fleet) countRequest(op string) { f.reqOps.With(op).Inc() }

// requestCounts snapshots the nonzero per-op totals for /v1/stats.
func (f *Fleet) requestCounts() map[string]int64 {
	out := make(map[string]int64, len(requestOps))
	for _, op := range requestOps {
		if v := f.reqOps.With(op).Value(); v > 0 {
			out[op] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Telemetry configures the HTTP observability layer a handler wraps
// every route with: request ids, structured access logs, per-route
// latency histograms and slow-request span traces. The zero value is
// fully functional (default logger, no slow threshold).
type Telemetry struct {
	// Logger receives access logs and slow-request traces; nil means
	// slog.Default().
	Logger *slog.Logger
	// SlowRequest, when positive, logs the full span tree of any
	// request that takes longer — the gpuperfd -slow-ms flag.
	SlowRequest time.Duration
}

func (t Telemetry) logger() *slog.Logger {
	if t.Logger != nil {
		return t.Logger
	}
	return slog.Default()
}

type loggerKey struct{}

// requestLogger returns the request-scoped logger the telemetry
// middleware installed (already tagged with the request id), or the
// default logger for bare handlers in tests.
func requestLogger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// statusWriter records the status code and body size the handler
// produced, defaulting to 200 on an implicit WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming writers keep working
// through the wrapper.
func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// sanitizeRequestID accepts a client-supplied X-Request-ID only when
// it is short and printable-token-shaped; anything else is replaced,
// so log lines and proxied headers cannot carry injected garbage.
func sanitizeRequestID(id string) string {
	if n := len(id); n == 0 || n > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return ""
		}
	}
	return id
}

// routeOp maps a matched route pattern (method stripped) and method
// to the bounded op label of the HTTP latency histogram.
func routeOp(route, method string) string {
	switch route {
	case "/v1/analyze":
		return "analyze"
	case "/v1/advise":
		return "advise"
	case "/v1/measure":
		return "measure"
	case "/v1/compare":
		return "compare"
	case "/v1/kernels":
		if method == http.MethodPost {
			return "submit"
		}
		return "kernels"
	case "/v1/kernels/{id}":
		return "evict"
	case "/v1/devices":
		return "devices"
	case "/v1/stats":
		return "stats"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	}
	return "other"
}

// telemetryMiddleware wraps a route mux with the observability layer:
// it assigns or propagates X-Request-ID, installs a request-scoped
// trace and logger in the context, emits one structured access-log
// line per request (route, kernel, device, cache status, duration,
// status code), observes the per-op/per-cache-status latency
// histogram, and logs the full span tree of requests slower than the
// configured threshold.
func telemetryMiddleware(mux *http.ServeMux, reg *Metrics, tel Telemetry) http.Handler {
	httpReqs := reg.NewCounterVec("gpuperf_http_requests_total",
		"HTTP requests by route, method and status code.", "route", "method", "code")
	httpLat := reg.NewHistogramVec("gpuperf_http_request_seconds",
		"HTTP request latency by op and cache status.", obs.DefLatencyBuckets, "op", "cache")
	inflight := reg.NewGauge("gpuperf_http_inflight", "HTTP requests being served right now.")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if rid == "" {
			rid = obs.NewRequestID()
		}
		tr := obs.NewTrace(rid)
		logger := tel.logger().With("component", "http", "id", rid)
		ctx := obs.WithTrace(r.Context(), tr)
		ctx = context.WithValue(ctx, loggerKey{}, logger)
		w.Header().Set("X-Request-ID", rid)

		sw := &statusWriter{ResponseWriter: w}
		inflight.Add(1)
		start := time.Now()
		mux.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)
		inflight.Add(-1)
		if sw.status == 0 {
			// Handler wrote nothing (e.g. a 304 path writes headers
			// only through WriteHeader, which records; this is the
			// truly-silent case).
			sw.status = http.StatusOK
		}

		// The wrapped mux matched on its own shallow copy of r, so ask
		// it again for the pattern; unmatched requests label as the
		// 404 they are rather than exploding cardinality with raw
		// paths.
		_, pattern := mux.Handler(r)
		route := pattern
		if i := strings.IndexByte(route, ' '); i >= 0 {
			route = route[i+1:]
		}
		if route == "" || route == "/" {
			route = "unmatched"
		}
		cache := sw.Header().Get("X-Cache")
		if cache == "" {
			cache = "none"
		}
		httpReqs.With(route, r.Method, statusText(sw.status)).Inc()
		httpLat.With(routeOp(route, r.Method), strings.ToLower(cache)).Observe(dur.Seconds())

		attrs := []any{
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", math.Round(dur.Seconds()*1e6) / 1e3,
			"cache", strings.ToLower(cache),
			"bytes", sw.bytes,
		}
		if k := tr.Attr("kernel"); k != "" {
			attrs = append(attrs, "kernel", k)
		}
		if d := tr.Attr("device"); d != "" {
			attrs = append(attrs, "device", d)
		}
		logger.LogAttrs(ctx, slog.LevelInfo, "request", slogAttrs(attrs)...)

		if tel.SlowRequest > 0 && dur >= tel.SlowRequest {
			slow := append(attrs, "threshold_ms", tel.SlowRequest.Milliseconds(), "trace", "\n"+tr.Tree())
			if orphans := tr.Orphans(); len(orphans) > 0 {
				slow = append(slow, "orphan_spans", strings.Join(orphans, ","))
			}
			logger.LogAttrs(ctx, slog.LevelWarn, "slow request", slogAttrs(slow)...)
		}
	})
}

// slogAttrs converts a key-value pair list into slog.Attr values.
func slogAttrs(kv []any) []slog.Attr {
	out := make([]slog.Attr, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, slog.Any(kv[i].(string), kv[i+1]))
	}
	return out
}

// statusText renders a status code for the bounded "code" label.
func statusText(code int) string { return strconv.Itoa(code) }

// metricsHandler serves a registry in Prometheus text format.
func metricsHandler(reg *Metrics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.TextContentType)
		if err := reg.WritePrometheus(w); err != nil {
			requestLogger(r.Context()).Warn("writing /metrics", "err", err)
		}
	}
}

// annotate tags the request's trace (kernel, device) so access logs
// and slow-request trees identify what the request was about.
func annotate(r *http.Request, key, value string) {
	if value != "" {
		obs.TraceFrom(r.Context()).Annotate(key, value)
	}
}
