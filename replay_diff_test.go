package gpuperf

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"gpuperf/internal/barra"
)

// diffSizes keeps the differential sweep fast enough to run under
// -race: small instances still exercise every stage and every
// replay-relevant address pattern.
var diffSizes = map[string]int{
	"cr":             8,
	"cr-nbc":         8,
	"cr-fwd":         8,
	"matmul-naive":   64,
	"matmul8":        64,
	"matmul16":       64,
	"matmul32":       64,
	"spmv-ell":       512,
	"spmv-bell-im":   512,
	"spmv-bell-imiv": 512,
}

// TestReplayDifferential proves the homogeneous-block replay engine is
// invisible in the numbers: for every registry kernel, Stats with
// replay enabled must be bit-identical (DeepEqual) to Stats from the
// always-live path, at serial and parallel worker counts. Engine
// counters are the one intentional difference and are zeroed before
// the comparison.
func TestReplayDifferential(t *testing.T) {
	reg := DefaultRegistry()
	dev := DefaultDevice()
	for _, spec := range reg.Specs() {
		size, ok := diffSizes[spec.Name]
		if !ok {
			t.Fatalf("no differential size configured for kernel %q — add it to diffSizes", spec.Name)
		}
		for _, p := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/p%d", spec.Name, p), func(t *testing.T) {
				run := func(disable bool) *barra.Stats {
					t.Helper()
					// Fresh build per run: the launch mutates its memory
					// image. Same (size, seed) rebuilds bit-identical
					// inputs.
					w, err := reg.Build(dev, spec.Name, Params{Size: size, Seed: 7})
					if err != nil {
						t.Fatalf("build %s: %v", spec.Name, err)
					}
					st, err := barra.RunContext(context.Background(), dev, w.Launch, w.Mem, &barra.Options{
						Regions:            w.Regions,
						Parallelism:        p,
						DisableBlockReplay: disable,
					})
					if err != nil {
						t.Fatalf("run %s (disable=%v): %v", spec.Name, disable, err)
					}
					return st
				}
				on := run(false)
				off := run(true)

				if off.Engine != (barra.EngineStats{}) {
					t.Errorf("live path reported engine counters: %+v", off.Engine)
				}
				eng := on.Engine
				if got := eng.BlocksSimulated + eng.BlocksReplayed; got != int64(on.Grid) {
					t.Errorf("engine counters cover %d blocks, grid is %d", got, on.Grid)
				}

				on.Engine, off.Engine = barra.EngineStats{}, barra.EngineStats{}
				if !reflect.DeepEqual(on, off) {
					t.Errorf("replay-on Stats diverge from live Stats:\n  on:  %+v\n  off: %+v", on, off)
				}

				// Regular kernels must actually hit the replay cache —
				// otherwise the engine silently degraded to live-only
				// and this test proves nothing.
				if (spec.Name == "matmul16" || spec.Name == "spmv-ell") && eng.BlocksReplayed == 0 {
					t.Errorf("%s: expected replay hits, got BlocksSimulated=%d BlocksReplayed=%d",
						spec.Name, eng.BlocksSimulated, eng.BlocksReplayed)
				}
			})
		}
	}
}
