package gpuperf

import (
	"bytes"
	"testing"
)

// Fuzz targets for the toolchain's two front doors. POST /v1/kernels
// feeds both with network input (assembly text via Source, container
// bytes via Container), so neither may panic on arbitrary bytes, and
// everything they accept must survive the disassemble/reassemble
// roundtrip the rest of the system leans on.

// fuzzSeedTexts disassembles a few registry kernels so the corpus
// starts from real programs (guards, shared memory, branches, float
// immediates) rather than random bytes.
func fuzzSeedTexts(f *testing.F) []string {
	dev := DefaultDevice()
	reg := DefaultRegistry()
	var out []string
	for _, name := range []string{"matmul16", "matmul-naive", "spmv-ell"} {
		text, err := reg.Disassemble(dev, name, Params{})
		if err != nil {
			f.Fatalf("seeding from registry kernel %s: %v", name, err)
		}
		out = append(out, text)
	}
	return out
}

// FuzzAssembleText: any text the assembler accepts must disassemble
// and reassemble to a byte-identical container — the property `gpuasm
// as -roundtrip` asserts per invocation, checked here over the whole
// accepted language.
func FuzzAssembleText(f *testing.F) {
	for _, src := range fuzzSeedTexts(f) {
		f.Add(src)
	}
	f.Add(".kernel k\n.regs 3\nmov r1, 0x7\nfadd r2, r1, f:1.5\nexit\n")
	f.Add(".kernel g\n.regs 5\n@!p1 bra @2\nisetp.lt p0, r1, 0x20\nsld r4, r3\nbar.sync\nexit ; tail\n")
	f.Fuzz(func(t *testing.T, src string) {
		raw, err := AssembleText(src)
		if err != nil {
			return
		}
		text, err := DisassembleContainer(raw)
		if err != nil {
			t.Fatalf("assembled container does not disassemble: %v\nsource:\n%s", err, src)
		}
		raw2, err := AssembleText(text)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\ndisassembly:\n%s", err, text)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("reassembly is not byte-identical (%d vs %d bytes)\nsource:\n%s", len(raw), len(raw2), src)
		}
	})
}

// FuzzDisassembleContainer: any container bytes the parser accepts
// must render as text the assembler takes back, and that text must be
// a disassembly fixed point. (Bytes are not compared — a container
// may encode an instruction non-canonically — but the text must be.)
func FuzzDisassembleContainer(f *testing.F) {
	for _, src := range fuzzSeedTexts(f) {
		raw, err := AssembleText(src)
		if err != nil {
			f.Fatalf("seeding container: %v", err)
		}
		f.Add(raw)
	}
	f.Add([]byte("GCUB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		text, err := DisassembleContainer(raw)
		if err != nil {
			return
		}
		raw2, err := AssembleText(text)
		if err != nil {
			t.Fatalf("accepted container's disassembly does not reassemble: %v\ndisassembly:\n%s", err, text)
		}
		text2, err := DisassembleContainer(raw2)
		if err != nil {
			t.Fatalf("reassembled container does not disassemble: %v", err)
		}
		if text2 != text {
			t.Fatalf("disassembly is not a fixed point:\n%s\nvs\n%s", text, text2)
		}
	})
}
