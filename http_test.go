package gpuperf

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerAnalyzeHappyPath: POST /v1/analyze returns a complete
// JSON Result for a well-formed request.
func TestHandlerAnalyzeHappyPath(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Kernel != "matmul16" || res.Bottleneck == "" || res.PredictedSeconds <= 0 {
		t.Errorf("incomplete result: %+v", res)
	}
}

// TestHandlerAnalyzeUnknownKernel maps ErrUnknownKernel to 404.
func TestHandlerAnalyzeUnknownKernel(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"kernel":"nope"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Errorf("error body should be {\"error\": ...}, got %s", rec.Body)
	}
}

// TestHandlerAnalyzeMalformedBody maps JSON errors to 400 — both
// syntax errors and unknown fields.
func TestHandlerAnalyzeMalformedBody(t *testing.T) {
	h := NewHandler(testFleet(t))
	for _, body := range []string{
		`{"kernel":`,
		`{"bogus_field":1}`,
		``,
		`{"kernel":"matmul16","size":64} {"kernel":"bogus"}`, // trailing object
		`{"kernel":"matmul16","size":64} junk`,               // trailing garbage
	} {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
}

// TestHandlerAnalyzeOversizedBody: a body past the byte cap gets 413.
func TestHandlerAnalyzeOversizedBody(t *testing.T) {
	h := NewHandler(testFleet(t))
	body := `{"kernel":"` + strings.Repeat("x", 1<<17) + `"}`
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestHandlerAnalyzeOversizedRequest: sizes beyond the kernel's
// ceiling are the client's fault — 400, not an OOM or a 500.
func TestHandlerAnalyzeOversizedRequest(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul32","size":32768}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerAnalyzeCancelledContext: a dead request context (the
// client hung up) aborts the simulation and reports 503.
func TestHandlerAnalyzeCancelledContext(t *testing.T) {
	h := NewHandler(testFleet(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"spmv-ell","size":4096}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerKernels: GET /v1/kernels lists the registry.
func TestHandlerKernels(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var specs []KernelSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &specs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	names := map[string]KernelSpec{}
	for _, s := range specs {
		names[s.Name] = s
	}
	for _, want := range []string{"matmul-naive", "matmul16", "cr-nbc", "spmv-bell-imiv"} {
		if _, ok := names[want]; !ok {
			t.Errorf("kernel list missing %s: %v", want, names)
		}
	}
	// The listing carries the discovery metadata advisor clients pair
	// counterfactuals with: description, size bounds, variant family
	// and the realized optimization.
	for name, s := range names {
		if s.Description == "" || s.MaxSize <= 0 || s.Family == "" {
			t.Errorf("kernel %s metadata incomplete on the wire: %+v", name, s)
		}
	}
	if got := names["cr-nbc"].Optimization; got != "conflict-free-shared" {
		t.Errorf("cr-nbc optimization on the wire = %q, want conflict-free-shared", got)
	}
	if names["cr"].Family != "cr" || names["cr-nbc"].Family != "cr" {
		t.Errorf("cr variant family broken: %+v vs %+v", names["cr"], names["cr-nbc"])
	}
}

// TestHandlerAdviseHappyPath: POST /v1/advise returns the ranked
// counterfactual report.
func TestHandlerAdviseHappyPath(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul-naive","size":128,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var adv Advice
	if err := json.Unmarshal(rec.Body.Bytes(), &adv); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if adv.Kernel != "matmul-naive" || len(adv.Scenarios) != 5 || adv.Top != "perfect-coalescing" {
		t.Errorf("incomplete advice: %+v", adv)
	}
}

// TestHandlerAdviseErrors: the advise endpoint shares the analyze
// endpoint's error mapping.
func TestHandlerAdviseErrors(t *testing.T) {
	h := NewHandler(testFleet(t))
	cases := []struct {
		body string
		want int
	}{
		{`{"kernel":"nope"}`, http.StatusNotFound},
		{`{"kernel":"matmul16","size":1048576}`, http.StatusBadRequest},
		{`{"kernel":`, http.StatusBadRequest},
		{`{"kernel":"cr"} trailing`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body)
		}
	}
}

// TestHandlerAdviseCancelledContext: an aborted client maps to 503.
func TestHandlerAdviseCancelledContext(t *testing.T) {
	h := NewHandler(testFleet(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul16","size":64}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerHealthz: /healthz is readiness-aware — a JSON
// FleetHealth answering 503 "starting" until the default device's
// calibration is loaded or built, 200 "ok" after, and probing never
// triggers a calibration itself (a router polls workers' /healthz;
// the probe must not force every worker to calibrate its default
// device).
func TestHandlerHealthz(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	f := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: dir})
	h := NewHandler(f)

	get := func() (int, FleetHealth) {
		t.Helper()
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var fh FleetHealth
		if err := json.Unmarshal(rec.Body.Bytes(), &fh); err != nil {
			t.Fatalf("healthz body is not FleetHealth JSON: %v (%s)", err, rec.Body)
		}
		return rec.Code, fh
	}

	// Fresh fleet: not ready, and the probe itself must not change that.
	for i := 0; i < 2; i++ {
		code, fh := get()
		if code != http.StatusServiceUnavailable || fh.Status != "starting" {
			t.Fatalf("probe %d: %d %q, want 503 starting", i, code, fh.Status)
		}
		if len(fh.Devices) != 1 || fh.Devices[0].Device != "gtx285-6sm" || !fh.Devices[0].Default {
			t.Fatalf("probe %d devices: %+v", i, fh.Devices)
		}
		if fh.Devices[0].Calibrated {
			t.Fatalf("probe %d: default reported calibrated before any work", i)
		}
	}

	// Readiness arrives when the default device's calibration does
	// (here loaded from the seeded cache).
	sess, err := f.Session("")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Calibrate(); err != nil {
		t.Fatal(err)
	}
	code, fh := get()
	if code != http.StatusOK || fh.Status != "ok" {
		t.Fatalf("after calibration: %d %q, want 200 ok", code, fh.Status)
	}
	d := fh.Devices[0]
	if !d.Calibrated || !d.FromCache || d.Fingerprint == "" {
		t.Errorf("ready device entry incomplete: %+v", d)
	}
}

// TestHandlerStats: GET /v1/stats exposes the result-cache counters,
// and they move with traffic.
func TestHandlerStats(t *testing.T) {
	h := NewHandler(testFleet(t))
	get := func() CacheStats {
		t.Helper()
		req := httptest.NewRequest("GET", "/v1/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		var st CacheStats
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("bad stats JSON: %v", err)
		}
		return st
	}
	if st := get(); !st.Enabled {
		t.Fatal("shared fleet's cache should be enabled")
	}
	before := get()
	body := `{"kernel":"matmul16","size":64,"seed":41}`
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("analyze %d: status %d (%s)", i, rec.Code, rec.Body)
		}
	}
	after := get()
	if after.Misses != before.Misses+1 {
		t.Errorf("misses %d -> %d, want exactly one more", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("hits %d -> %d, want exactly one more", before.Hits, after.Hits)
	}
	if after.Entries == 0 || after.Bytes == 0 || after.MemoryBudgetBytes != DefaultCacheBytes {
		t.Errorf("gauges look wrong: %+v", after)
	}
}

// TestHandlerStaticCachingHeaders: the listings carry a strong ETag
// and a matching If-None-Match turns into 304 with an empty body. The
// device listing is fully static and adds Cache-Control; the kernel
// listing does not — submissions make it change under a running
// server, so clients must revalidate.
func TestHandlerStaticCachingHeaders(t *testing.T) {
	h := NewHandler(testFleet(t))
	for _, path := range []string{"/v1/kernels", "/v1/devices"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		etag := rec.Header().Get("ETag")
		if len(etag) < 4 || !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
			t.Fatalf("%s: ETag %q is not a quoted strong validator", path, etag)
		}
		cc := rec.Header().Get("Cache-Control")
		if path == "/v1/devices" && !strings.Contains(cc, "max-age") {
			t.Errorf("%s: Cache-Control %q", path, cc)
		}
		if path == "/v1/kernels" && cc != "" {
			t.Errorf("%s: dynamic listing carries Cache-Control %q", path, cc)
		}

		req = httptest.NewRequest("GET", path, nil)
		req.Header.Set("If-None-Match", etag)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
			t.Errorf("%s revalidation: %d with %d body bytes, want bare 304", path, rec.Code, rec.Body.Len())
		}

		// A stale validator re-serves the full body.
		req = httptest.NewRequest("GET", path, nil)
		req.Header.Set("If-None-Match", `"deadbeef"`)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
			t.Errorf("%s stale revalidation: %d with %d body bytes, want full 200", path, rec.Code, rec.Body.Len())
		}
	}
}

// TestHandlerDevices: GET /v1/devices lists the catalog profiles
// with names, fingerprints and architectural knobs.
func TestHandlerDevices(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("GET", "/v1/devices", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var profiles []DeviceProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	byName := map[string]DeviceProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	for _, want := range []string{"gtx285", "gtx285-6sm", "gtx285+banks17", "tesla-c1060"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("device list missing %s", want)
		}
	}
	for name, p := range byName {
		if p.Fingerprint == "" || p.NumSMs <= 0 || p.PeakGFLOPS <= 0 || p.SharedMemBanks <= 0 {
			t.Errorf("device %s profile incomplete on the wire: %+v", name, p)
		}
	}
	if byName["gtx285+banks17"].SharedMemBanks != 17 {
		t.Errorf("banks17 profile carries %d banks", byName["gtx285+banks17"].SharedMemBanks)
	}
	if byName["gtx285"].Fingerprint == byName["gtx285-6sm"].Fingerprint {
		t.Error("full chip and slice share a fingerprint on the wire")
	}
}

// TestHandlerAnalyzeDeviceRouting: the analyze body's device field
// selects the catalog entry; unknown devices map to 404.
func TestHandlerAnalyzeDeviceRouting(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Device != "gtx285-6sm" {
		t.Errorf("result device %q, want gtx285-6sm", res.Device)
	}
	req = httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"device":"gtx999"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown device: status %d, want 404 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerMeasure: POST /v1/measure returns a Measurement without
// any model fields — the calibration-free timing path on the wire.
func TestHandlerMeasure(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/measure",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var m Measurement
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if m.Kernel != "matmul16" || m.Device != "gtx285-6sm" || m.Seconds <= 0 || m.Dominant == "" {
		t.Errorf("incomplete measurement: %+v", m)
	}
	// The measure endpoint shares the analyze endpoint's error map.
	for body, want := range map[string]int{
		`{"kernel":"nope"}`:                       http.StatusNotFound,
		`{"kernel":"matmul16","device":"gtx999"}`: http.StatusNotFound,
		`{"kernel":"matmul32","size":32768}`:      http.StatusBadRequest,
		`{"kernel":`:                              http.StatusBadRequest,
	} {
		req := httptest.NewRequest("POST", "/v1/measure", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("body %q: status %d, want %d", body, rec.Code, want)
		}
	}
}

// TestHandlerCompare: POST /v1/compare ranks the kernel across the
// requested devices.
func TestHandlerCompare(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/compare",
		strings.NewReader(`{"kernel":"matmul16","size":256,"seed":7,"devices":["gtx285-3sm","gtx285-6sm"]}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var cmp Comparison
	if err := json.Unmarshal(rec.Body.Bytes(), &cmp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(cmp.Entries) != 2 || cmp.Best != "gtx285-6sm" || cmp.Baseline != "gtx285-3sm" {
		t.Errorf("incomplete comparison: %+v", cmp)
	}
}

// TestHandlerCompareErrors: compare maps its validation failures to
// the shared status codes.
func TestHandlerCompareErrors(t *testing.T) {
	h := NewHandler(testFleet(t))
	cases := []struct {
		body string
		want int
	}{
		{`{"kernel":"matmul16"}`, http.StatusBadRequest},                                         // no devices
		{`{"kernel":"matmul16","devices":["gtx999"]}`, http.StatusNotFound},                      // unknown device
		{`{"kernel":"nope","devices":["gtx285-6sm"]}`, http.StatusNotFound},                      // unknown kernel
		{`{"kernel":"matmul16","devices":["gtx285-6sm","gtx285-6sm"]}`, http.StatusBadRequest},   // duplicate
		{`{"kernel":"matmul16","devices":["gtx285-6sm"],"bogus":1}`, http.StatusBadRequest},      // unknown field
		{`{"kernel":"matmul16","devices":["gtx285-6sm"]} junk`, http.StatusBadRequest},           // trailing garbage
		{`{"kernel":"matmul16","devices":["gtx285-6sm"],"baseline":"x"}`, http.StatusBadRequest}, // foreign baseline
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/compare", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body)
		}
	}
}

// TestWriteJSONEncodeFailure: an unencodable value must not produce
// a silent 200 — the guard answers 500 with a JSON error body.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/test", nil)
	writeJSON(rec, req, http.StatusOK, math.NaN()) // JSON cannot encode NaN
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Errorf("error body should be {\"error\": ...}, got %q (%v)", rec.Body, err)
	}
	// And the happy path still writes the caller's status exactly once.
	rec = httptest.NewRecorder()
	writeJSON(rec, req, http.StatusTeapot, map[string]int{"x": 1})
	if rec.Code != http.StatusTeapot || !strings.Contains(rec.Body.String(), `"x": 1`) {
		t.Errorf("happy path: %d %q", rec.Code, rec.Body)
	}
}

// TestHTTPCacheSpeedupAndStats is the acceptance criterion for the
// result cache at the HTTP layer: a repeat of an identical
// /v1/analyze is served byte-identically from the cache, at least two
// orders of magnitude faster than the cold miss, with the X-Cache
// header flipping MISS -> HIT, the stats counters moving, and a
// revalidation via the cold response's ETag collapsing to a bare 304.
func TestHTTPCacheSpeedupAndStats(t *testing.T) {
	// A private fleet (seeded with the shared session's calibration so
	// the cold time measures simulation, not calibration) keeps the
	// counters deterministic.
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	f := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: dir})
	h := NewHandler(f)

	const body = `{"kernel":"spmv-ell","size":4096,"seed":9}`
	post := func() (*httptest.ResponseRecorder, time.Duration) {
		t.Helper()
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d (%s)", rec.Code, rec.Body)
		}
		return rec, elapsed
	}

	cold, coldTime := post()
	if got := cold.Header().Get("X-Cache"); got != string(CacheMiss) {
		t.Fatalf("cold X-Cache %q, want MISS", got)
	}
	warm, warmTime := post()
	if got := warm.Header().Get("X-Cache"); got != string(CacheHit) {
		t.Fatalf("warm X-Cache %q, want HIT", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("cached response is not byte-identical to the computed one")
	}
	if warm.Header().Get("ETag") != cold.Header().Get("ETag") {
		t.Errorf("ETag changed across the hit: %q vs %q",
			cold.Header().Get("ETag"), warm.Header().Get("ETag"))
	}
	// The >=100x bar: a cold spmv-ell@4096 simulates for hundreds of
	// milliseconds; a hit decodes ~2 KB of JSON. Guard against a
	// pathologically fast cold run (CI noise) rather than fail falsely.
	if coldTime > 10*time.Millisecond && warmTime > coldTime/100 {
		t.Errorf("hit not >=100x faster: cold %v, warm %v", coldTime, warmTime)
	}
	t.Logf("cold %v, warm %v (%.0fx)", coldTime, warmTime,
		float64(coldTime)/float64(warmTime))

	// Conditional repeat: the client already holds the bytes.
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	req.Header.Set("If-None-Match", cold.Header().Get("ETag"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Errorf("revalidation: %d with %d body bytes, want bare 304",
			rec.Code, rec.Body.Len())
	}

	st := f.CacheStats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Errorf("stats after cold+hit+304: %+v", st)
	}
}
