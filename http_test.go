package gpuperf

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerAnalyzeHappyPath: POST /v1/analyze returns a complete
// JSON Result for a well-formed request.
func TestHandlerAnalyzeHappyPath(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Kernel != "matmul16" || res.Bottleneck == "" || res.PredictedSeconds <= 0 {
		t.Errorf("incomplete result: %+v", res)
	}
}

// TestHandlerAnalyzeUnknownKernel maps ErrUnknownKernel to 404.
func TestHandlerAnalyzeUnknownKernel(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"kernel":"nope"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Errorf("error body should be {\"error\": ...}, got %s", rec.Body)
	}
}

// TestHandlerAnalyzeMalformedBody maps JSON errors to 400 — both
// syntax errors and unknown fields.
func TestHandlerAnalyzeMalformedBody(t *testing.T) {
	h := NewHandler(testFleet(t))
	for _, body := range []string{
		`{"kernel":`,
		`{"bogus_field":1}`,
		``,
		`{"kernel":"matmul16","size":64} {"kernel":"bogus"}`, // trailing object
		`{"kernel":"matmul16","size":64} junk`,               // trailing garbage
	} {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
}

// TestHandlerAnalyzeOversizedBody: a body past the byte cap gets 413.
func TestHandlerAnalyzeOversizedBody(t *testing.T) {
	h := NewHandler(testFleet(t))
	body := `{"kernel":"` + strings.Repeat("x", 1<<17) + `"}`
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestHandlerAnalyzeOversizedRequest: sizes beyond the kernel's
// ceiling are the client's fault — 400, not an OOM or a 500.
func TestHandlerAnalyzeOversizedRequest(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul32","size":32768}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerAnalyzeCancelledContext: a dead request context (the
// client hung up) aborts the simulation and reports 503.
func TestHandlerAnalyzeCancelledContext(t *testing.T) {
	h := NewHandler(testFleet(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"spmv-ell","size":4096}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerKernels: GET /v1/kernels lists the registry.
func TestHandlerKernels(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var specs []KernelSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &specs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	names := map[string]KernelSpec{}
	for _, s := range specs {
		names[s.Name] = s
	}
	for _, want := range []string{"matmul-naive", "matmul16", "cr-nbc", "spmv-bell-imiv"} {
		if _, ok := names[want]; !ok {
			t.Errorf("kernel list missing %s: %v", want, names)
		}
	}
	// The listing carries the discovery metadata advisor clients pair
	// counterfactuals with: description, size bounds, variant family
	// and the realized optimization.
	for name, s := range names {
		if s.Description == "" || s.MaxSize <= 0 || s.Family == "" {
			t.Errorf("kernel %s metadata incomplete on the wire: %+v", name, s)
		}
	}
	if got := names["cr-nbc"].Optimization; got != "conflict-free-shared" {
		t.Errorf("cr-nbc optimization on the wire = %q, want conflict-free-shared", got)
	}
	if names["cr"].Family != "cr" || names["cr-nbc"].Family != "cr" {
		t.Errorf("cr variant family broken: %+v vs %+v", names["cr"], names["cr-nbc"])
	}
}

// TestHandlerAdviseHappyPath: POST /v1/advise returns the ranked
// counterfactual report.
func TestHandlerAdviseHappyPath(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul-naive","size":128,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var adv Advice
	if err := json.Unmarshal(rec.Body.Bytes(), &adv); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if adv.Kernel != "matmul-naive" || len(adv.Scenarios) != 5 || adv.Top != "perfect-coalescing" {
		t.Errorf("incomplete advice: %+v", adv)
	}
}

// TestHandlerAdviseErrors: the advise endpoint shares the analyze
// endpoint's error mapping.
func TestHandlerAdviseErrors(t *testing.T) {
	h := NewHandler(testFleet(t))
	cases := []struct {
		body string
		want int
	}{
		{`{"kernel":"nope"}`, http.StatusNotFound},
		{`{"kernel":"matmul16","size":1048576}`, http.StatusBadRequest},
		{`{"kernel":`, http.StatusBadRequest},
		{`{"kernel":"cr"} trailing`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body)
		}
	}
}

// TestHandlerAdviseCancelledContext: an aborted client maps to 503.
func TestHandlerAdviseCancelledContext(t *testing.T) {
	h := NewHandler(testFleet(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul16","size":64}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerHealthz: the liveness probe needs no fleet state.
func TestHandlerHealthz(t *testing.T) {
	h := NewHandler(NewFleet(FleetOptions{}))
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body)
	}
}

// TestHandlerDevices: GET /v1/devices lists the catalog profiles
// with names, fingerprints and architectural knobs.
func TestHandlerDevices(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("GET", "/v1/devices", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var profiles []DeviceProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	byName := map[string]DeviceProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	for _, want := range []string{"gtx285", "gtx285-6sm", "gtx285+banks17", "tesla-c1060"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("device list missing %s", want)
		}
	}
	for name, p := range byName {
		if p.Fingerprint == "" || p.NumSMs <= 0 || p.PeakGFLOPS <= 0 || p.SharedMemBanks <= 0 {
			t.Errorf("device %s profile incomplete on the wire: %+v", name, p)
		}
	}
	if byName["gtx285+banks17"].SharedMemBanks != 17 {
		t.Errorf("banks17 profile carries %d banks", byName["gtx285+banks17"].SharedMemBanks)
	}
	if byName["gtx285"].Fingerprint == byName["gtx285-6sm"].Fingerprint {
		t.Error("full chip and slice share a fingerprint on the wire")
	}
}

// TestHandlerAnalyzeDeviceRouting: the analyze body's device field
// selects the catalog entry; unknown devices map to 404.
func TestHandlerAnalyzeDeviceRouting(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Device != "gtx285-6sm" {
		t.Errorf("result device %q, want gtx285-6sm", res.Device)
	}
	req = httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"device":"gtx999"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown device: status %d, want 404 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerMeasure: POST /v1/measure returns a Measurement without
// any model fields — the calibration-free timing path on the wire.
func TestHandlerMeasure(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/measure",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var m Measurement
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if m.Kernel != "matmul16" || m.Device != "gtx285-6sm" || m.Seconds <= 0 || m.Dominant == "" {
		t.Errorf("incomplete measurement: %+v", m)
	}
	// The measure endpoint shares the analyze endpoint's error map.
	for body, want := range map[string]int{
		`{"kernel":"nope"}`:                       http.StatusNotFound,
		`{"kernel":"matmul16","device":"gtx999"}`: http.StatusNotFound,
		`{"kernel":"matmul32","size":32768}`:      http.StatusBadRequest,
		`{"kernel":`:                              http.StatusBadRequest,
	} {
		req := httptest.NewRequest("POST", "/v1/measure", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("body %q: status %d, want %d", body, rec.Code, want)
		}
	}
}

// TestHandlerCompare: POST /v1/compare ranks the kernel across the
// requested devices.
func TestHandlerCompare(t *testing.T) {
	h := NewHandler(testFleet(t))
	req := httptest.NewRequest("POST", "/v1/compare",
		strings.NewReader(`{"kernel":"matmul16","size":256,"seed":7,"devices":["gtx285-3sm","gtx285-6sm"]}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var cmp Comparison
	if err := json.Unmarshal(rec.Body.Bytes(), &cmp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(cmp.Entries) != 2 || cmp.Best != "gtx285-6sm" || cmp.Baseline != "gtx285-3sm" {
		t.Errorf("incomplete comparison: %+v", cmp)
	}
}

// TestHandlerCompareErrors: compare maps its validation failures to
// the shared status codes.
func TestHandlerCompareErrors(t *testing.T) {
	h := NewHandler(testFleet(t))
	cases := []struct {
		body string
		want int
	}{
		{`{"kernel":"matmul16"}`, http.StatusBadRequest},                                        // no devices
		{`{"kernel":"matmul16","devices":["gtx999"]}`, http.StatusNotFound},                     // unknown device
		{`{"kernel":"nope","devices":["gtx285-6sm"]}`, http.StatusNotFound},                     // unknown kernel
		{`{"kernel":"matmul16","devices":["gtx285-6sm","gtx285-6sm"]}`, http.StatusBadRequest},  // duplicate
		{`{"kernel":"matmul16","devices":["gtx285-6sm"],"bogus":1}`, http.StatusBadRequest},     // unknown field
		{`{"kernel":"matmul16","devices":["gtx285-6sm"]} junk`, http.StatusBadRequest},          // trailing garbage
		{`{"kernel":"matmul16","devices":["gtx285-6sm"],"baseline":"x"}`, http.StatusBadRequest}, // foreign baseline
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/compare", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body)
		}
	}
}

// TestWriteJSONEncodeFailure: an unencodable value must not produce
// a silent 200 — the guard answers 500 with a JSON error body.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, math.NaN()) // JSON cannot encode NaN
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Errorf("error body should be {\"error\": ...}, got %q (%v)", rec.Body, err)
	}
	// And the happy path still writes the caller's status exactly once.
	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusTeapot, map[string]int{"x": 1})
	if rec.Code != http.StatusTeapot || !strings.Contains(rec.Body.String(), `"x": 1`) {
		t.Errorf("happy path: %d %q", rec.Code, rec.Body)
	}
}
