package gpuperf

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerAnalyzeHappyPath: POST /v1/analyze returns a complete
// JSON Result for a well-formed request.
func TestHandlerAnalyzeHappyPath(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Kernel != "matmul16" || res.Bottleneck == "" || res.PredictedSeconds <= 0 {
		t.Errorf("incomplete result: %+v", res)
	}
}

// TestHandlerAnalyzeUnknownKernel maps ErrUnknownKernel to 404.
func TestHandlerAnalyzeUnknownKernel(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"kernel":"nope"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Errorf("error body should be {\"error\": ...}, got %s", rec.Body)
	}
}

// TestHandlerAnalyzeMalformedBody maps JSON errors to 400 — both
// syntax errors and unknown fields.
func TestHandlerAnalyzeMalformedBody(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	for _, body := range []string{
		`{"kernel":`,
		`{"bogus_field":1}`,
		``,
		`{"kernel":"matmul16","size":64} {"kernel":"bogus"}`, // trailing object
		`{"kernel":"matmul16","size":64} junk`,               // trailing garbage
	} {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
}

// TestHandlerAnalyzeOversizedBody: a body past the byte cap gets 413.
func TestHandlerAnalyzeOversizedBody(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	body := `{"kernel":"` + strings.Repeat("x", 1<<17) + `"}`
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestHandlerAnalyzeOversizedRequest: sizes beyond the kernel's
// ceiling are the client's fault — 400, not an OOM or a 500.
func TestHandlerAnalyzeOversizedRequest(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul32","size":32768}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerAnalyzeCancelledContext: a dead request context (the
// client hung up) aborts the simulation and reports 503.
func TestHandlerAnalyzeCancelledContext(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"spmv-ell","size":4096}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerKernels: GET /v1/kernels lists the registry.
func TestHandlerKernels(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var specs []KernelSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &specs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	names := map[string]KernelSpec{}
	for _, s := range specs {
		names[s.Name] = s
	}
	for _, want := range []string{"matmul-naive", "matmul16", "cr-nbc", "spmv-bell-imiv"} {
		if _, ok := names[want]; !ok {
			t.Errorf("kernel list missing %s: %v", want, names)
		}
	}
	// The listing carries the discovery metadata advisor clients pair
	// counterfactuals with: description, size bounds, variant family
	// and the realized optimization.
	for name, s := range names {
		if s.Description == "" || s.MaxSize <= 0 || s.Family == "" {
			t.Errorf("kernel %s metadata incomplete on the wire: %+v", name, s)
		}
	}
	if got := names["cr-nbc"].Optimization; got != "conflict-free-shared" {
		t.Errorf("cr-nbc optimization on the wire = %q, want conflict-free-shared", got)
	}
	if names["cr"].Family != "cr" || names["cr-nbc"].Family != "cr" {
		t.Errorf("cr variant family broken: %+v vs %+v", names["cr"], names["cr-nbc"])
	}
}

// TestHandlerAdviseHappyPath: POST /v1/advise returns the ranked
// counterfactual report.
func TestHandlerAdviseHappyPath(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul-naive","size":128,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var adv Advice
	if err := json.Unmarshal(rec.Body.Bytes(), &adv); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if adv.Kernel != "matmul-naive" || len(adv.Scenarios) != 5 || adv.Top != "perfect-coalescing" {
		t.Errorf("incomplete advice: %+v", adv)
	}
}

// TestHandlerAdviseErrors: the advise endpoint shares the analyze
// endpoint's error mapping.
func TestHandlerAdviseErrors(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	cases := []struct {
		body string
		want int
	}{
		{`{"kernel":"nope"}`, http.StatusNotFound},
		{`{"kernel":"matmul16","size":1048576}`, http.StatusBadRequest},
		{`{"kernel":`, http.StatusBadRequest},
		{`{"kernel":"cr"} trailing`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body)
		}
	}
}

// TestHandlerAdviseCancelledContext: an aborted client maps to 503.
func TestHandlerAdviseCancelledContext(t *testing.T) {
	h := NewHandler(testAnalyzer(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/advise",
		strings.NewReader(`{"kernel":"matmul16","size":64}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandlerHealthz: the liveness probe needs no analyzer state.
func TestHandlerHealthz(t *testing.T) {
	h := NewHandler(NewAnalyzer(Options{}))
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body)
	}
}
