#!/usr/bin/env bash
# lint.sh — run the repo's full static-analysis gate locally: the
# same checks CI's lint job performs, in the same order.
#
#   1. go vet            — the stock toolchain checks
#   2. cmd/gpuperflint   — the repo's own analyzer suite: layering,
#                          noalloc, determinism, slogonly, ctxprop
#                          (see internal/lint and DESIGN.md)
#   3. govulncheck       — known-vulnerability scan, only if the tool
#                          is already installed (it needs network to
#                          fetch the vuln DB, so offline dev
#                          environments skip it; CI always runs it)
#
# Usage:
#   scripts/lint.sh            # whole module
#   scripts/lint.sh ./cmd/...  # restrict gpuperflint's reporting
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== gpuperflint"
go run ./cmd/gpuperflint "${@:-./...}"

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck: not installed, skipping (CI runs it;" \
       "install with: go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi
