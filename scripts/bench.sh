#!/usr/bin/env bash
# bench.sh — run the engine benchmark suite and emit BENCH_7.json.
#
# Runs BenchmarkRunParallel (end-to-end blocks/s; its sub-benchmarks
# cover every leg of the matrix: kernel ∈ {matmul16, spmv-ell} ×
# mode ∈ {replay, noreplay} × P ∈ {1, NumCPU}) plus the per-layer
# microbenchmarks (warp step, bank conflicts, coalescing) with
# -benchmem, and converts the results to a JSON array of
# {name, ns_per_op, ..., B_per_op, allocs_per_op} records so CI and
# future PRs can diff throughput and allocation counts.
#
# The replay/noreplay pairs measure the homogeneous-block replay
# engine against forced live simulation on the same inputs; the
# p1/pN pairs measure worker-sharding scaling.
#
# Usage:
#   scripts/bench.sh               # full run (benchtime 2x for the big bench)
#   BENCHTIME=1x scripts/bench.sh  # CI smoke run
#   OUT=foo.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_7.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

NPROC="$(go env GOMAXPROCS 2>/dev/null || nproc || echo 1)"
if [ "${NPROC}" -le 1 ]; then
  echo "==================================================================" >&2
  echo "WARNING: this host exposes only 1 CPU. The P=NumCPU legs collapse" >&2
  echo "into duplicates of the P=1 legs (Go suffixes them #01), so the"    >&2
  echo "numbers below say NOTHING about parallel scaling. Re-run on a"     >&2
  echo "multi-core host before drawing scaling conclusions."               >&2
  echo "==================================================================" >&2
fi

{
  go test -run - -bench BenchmarkRunParallel -benchtime "$BENCHTIME" -benchmem .
  go test -run - -bench BenchmarkWarpStep -benchmem ./internal/barra/
  go test -run - -bench BenchmarkBankTransactions -benchmem ./internal/bank/
  go test -run - -bench BenchmarkCoalesceHalfWarp -benchmem ./internal/coalesce/
} | tee "$TMP"

awk '
  /^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"iterations\":%s", sep, $1, $2
    sep = ",\n"
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/\//, "_per_", unit)
      gsub(/[^A-Za-z0-9_]/, "_", unit)
      printf ",\"%s\":%s", unit, $i
    }
    printf "}"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
