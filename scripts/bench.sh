#!/usr/bin/env bash
# bench.sh — run the engine benchmark suite and emit BENCH_6.json.
#
# Runs BenchmarkRunParallel (end-to-end blocks/s) plus the per-layer
# microbenchmarks (warp step, bank conflicts, coalescing) with
# -benchmem, and converts the results to a JSON array of
# {name, ns_per_op, ..., B_per_op, allocs_per_op} records so CI and
# future PRs can diff throughput and allocation counts.
#
# Usage:
#   scripts/bench.sh               # full run (benchtime 2x for the big bench)
#   BENCHTIME=1x scripts/bench.sh  # CI smoke run
#   OUT=foo.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_6.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

{
  go test -run - -bench BenchmarkRunParallel -benchtime "$BENCHTIME" -benchmem .
  go test -run - -bench BenchmarkWarpStep -benchmem ./internal/barra/
  go test -run - -bench BenchmarkBankTransactions -benchmem ./internal/bank/
  go test -run - -bench BenchmarkCoalesceHalfWarp -benchmem ./internal/coalesce/
} | tee "$TMP"

awk '
  /^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"iterations\":%s", sep, $1, $2
    sep = ",\n"
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/\//, "_per_", unit)
      gsub(/[^A-Za-z0-9_]/, "_", unit)
      printf ",\"%s\":%s", unit, $i
    }
    printf "}"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
