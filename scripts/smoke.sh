#!/usr/bin/env bash
# gpuperfd smoke test: build the service, start it with a two-device
# fleet (the full GTX 285 and its 6-SM slice) and a calibration cache
# directory, wait for liveness, then drive every endpoint end to end:
# the kernel list must carry the variant-family metadata, the device
# list both catalog entries with distinct hardware fingerprints, the
# analyze response its bottleneck verdict, the advise response its
# ranked scenarios, the measure response a positive timing, and a
# cross-device /v1/compare on a bandwidth-bound kernel must rank the
# full chip above the 6-SM slice. Finally the cache directory must
# hold one calibration file per device fingerprint.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8097
BINDIR=$(mktemp -d)
CALDIR="$BINDIR/cal"

go build -o "$BINDIR/gpuperfd" ./cmd/gpuperfd
"$BINDIR/gpuperfd" -addr "$ADDR" -devices gtx285-6sm,gtx285 -cal-dir "$CALDIR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke: gpuperfd died before becoming healthy" >&2
        exit 1
    fi
    sleep 0.2
done

KERNELS=$(curl -fsS "http://$ADDR/v1/kernels")
grep -q '"matmul16"' <<<"$KERNELS" || {
    echo "smoke: kernel list missing matmul16: $KERNELS" >&2
    exit 1
}
# The listing is per-kernel metadata, not bare names: description,
# size bounds, variant family, and the advisor scenario each
# optimization variant realizes.
for field in '"description"' '"max_size"' '"family": "matmul"' '"optimization": "conflict-free-shared"'; do
    grep -q "$field" <<<"$KERNELS" || {
        echo "smoke: kernel list missing $field: $KERNELS" >&2
        exit 1
    }
done

# The device list carries both served catalog entries, each with a
# hardware fingerprint, and the fingerprints differ.
DEVICES=$(curl -fsS "http://$ADDR/v1/devices")
for field in '"gtx285"' '"gtx285-6sm"' '"fingerprint"' '"peak_gflops"'; do
    grep -q "$field" <<<"$DEVICES" || {
        echo "smoke: device list missing $field: $DEVICES" >&2
        exit 1
    }
done
NFP=$(echo "$DEVICES" | grep -o '"fingerprint": "[^"]*"' | sort -u | wc -l)
if [ "$NFP" -ne 2 ]; then
    echo "smoke: expected 2 distinct device fingerprints, got $NFP: $DEVICES" >&2
    exit 1
fi

# Analyze on the (fast) slice, named explicitly via the device field.
OUT=$(curl -fsS -X POST "http://$ADDR/v1/analyze" \
    -d '{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}')
grep -q '"bottleneck"' <<<"$OUT" || {
    echo "smoke: analyze response missing bottleneck field: $OUT" >&2
    exit 1
}
grep -q '"device": "gtx285-6sm"' <<<"$OUT" || {
    echo "smoke: analyze response does not echo the catalog device: $OUT" >&2
    exit 1
}

ADVICE=$(curl -fsS -X POST "http://$ADDR/v1/advise" \
    -d '{"kernel":"matmul-naive","size":128,"seed":7,"device":"gtx285-6sm"}')
for field in '"scenarios"' '"speedup"' '"top": "perfect-coalescing"'; do
    grep -q "$field" <<<"$ADVICE" || {
        echo "smoke: advise response missing $field: $ADVICE" >&2
        exit 1
    }
done

# Measure is the calibration-free timing path.
MEAS=$(curl -fsS -X POST "http://$ADDR/v1/measure" \
    -d '{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}')
grep -q '"seconds"' <<<"$MEAS" || {
    echo "smoke: measure response missing seconds: $MEAS" >&2
    exit 1
}

# Cross-device comparison on a bandwidth-bound kernel: the full chip
# must rank above the 6-SM slice (more SMs keep the memory system
# busier), i.e. best = gtx285 and its speedup vs the slice > 1.
CMP=$(curl -fsS -X POST "http://$ADDR/v1/compare" \
    -d '{"kernel":"spmv-ell","size":4096,"seed":7,"devices":["gtx285-6sm","gtx285"]}')
grep -q '"best": "gtx285"' <<<"$CMP" || {
    echo "smoke: compare should rank the full chip first: $CMP" >&2
    exit 1
}
grep -q '"baseline": "gtx285-6sm"' <<<"$CMP" || {
    echo "smoke: compare baseline should default to the first device: $CMP" >&2
    exit 1
}
# The first (best) entry's speedup vs the 6-SM baseline must be > 1.
BESTSPEED=$(awk -F'"speedup": ' 'NF>1{split($2,a,","); print a[1]; exit}' <<<"$CMP")
awk "BEGIN{exit !($BESTSPEED > 1)}" || {
    echo "smoke: full chip speedup $BESTSPEED should exceed 1: $CMP" >&2
    exit 1
}

# Both calibrations must be cached under distinct fingerprint keys.
NCAL=$(ls "$CALDIR"/cal-*.json 2>/dev/null | wc -l)
if [ "$NCAL" -ne 2 ]; then
    echo "smoke: cache dir should hold 2 per-fingerprint calibrations, has $NCAL" >&2
    ls -la "$CALDIR" >&2 || true
    exit 1
fi

BOTTLENECK=$(awk -F'"bottleneck": ' 'NF>1{split($2,a,","); print a[1]; exit}' <<<"$OUT")
TOP=$(grep -o '"top": "[^"]*"' <<<"$ADVICE")
echo "smoke: ok (bottleneck $BOTTLENECK; advise $TOP; compare best gtx285 at ${BESTSPEED}x; $NCAL cached calibrations)"
