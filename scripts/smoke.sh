#!/usr/bin/env bash
# gpuperfd smoke test: build the service, start it on a 6-SM device
# slice, wait for liveness, run one analyze and one advise request
# end to end, and assert the kernel list carries the variant-family
# metadata, the analyze response its bottleneck verdict, and the
# advise response its ranked scenarios.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8097
BINDIR=$(mktemp -d)

go build -o "$BINDIR/gpuperfd" ./cmd/gpuperfd
"$BINDIR/gpuperfd" -addr "$ADDR" -sms 6 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke: gpuperfd died before becoming healthy" >&2
        exit 1
    fi
    sleep 0.2
done

KERNELS=$(curl -fsS "http://$ADDR/v1/kernels")
echo "$KERNELS" | grep -q '"matmul16"' || {
    echo "smoke: kernel list missing matmul16: $KERNELS" >&2
    exit 1
}
# The listing is per-kernel metadata, not bare names: description,
# size bounds, variant family, and the advisor scenario each
# optimization variant realizes.
for field in '"description"' '"max_size"' '"family": "matmul"' '"optimization": "conflict-free-shared"'; do
    echo "$KERNELS" | grep -q "$field" || {
        echo "smoke: kernel list missing $field: $KERNELS" >&2
        exit 1
    }
done

OUT=$(curl -fsS -X POST "http://$ADDR/v1/analyze" \
    -d '{"kernel":"matmul16","size":64,"seed":7}')
echo "$OUT" | grep -q '"bottleneck"' || {
    echo "smoke: analyze response missing bottleneck field: $OUT" >&2
    exit 1
}

ADVICE=$(curl -fsS -X POST "http://$ADDR/v1/advise" \
    -d '{"kernel":"matmul-naive","size":128,"seed":7}')
for field in '"scenarios"' '"speedup"' '"top": "perfect-coalescing"'; do
    echo "$ADVICE" | grep -q "$field" || {
        echo "smoke: advise response missing $field: $ADVICE" >&2
        exit 1
    }
done

echo "smoke: ok ($(echo "$OUT" | grep -o '"bottleneck": "[^"]*"' | head -1); advise top $(echo "$ADVICE" | grep -o '"top": "[^"]*"'))"
