#!/usr/bin/env bash
# gpuperfd smoke test, two legs.
#
# Leg 1 — one worker: build the service, start it with a two-device
# fleet (the full GTX 285 and its 6-SM slice), a calibration cache and
# a result cache, then drive every endpoint end to end: readiness
# (healthz 503 "starting" before any calibration, 200 "ok" after),
# kernel/device listings with caching headers and a working
# If-None-Match 304, analyze/advise/compare each served MISS then HIT
# with byte-identical bodies, the cache-hit timing win, /v1/stats
# counters, and the on-disk calibration and result slots. Plus the
# bring-your-own-kernel loop: POST /v1/kernels with a hand-written
# tree reduction (accepted, listed, persisted to -subs-dir, analyzed
# MISS then HIT under the measure-only policy), 400 rejections naming
# the violated ceiling for an out-of-envelope and an over-budget
# program, and DELETE eviction dropping the id from the registry and
# the disk slot.
#
# Leg 2 — a 2-worker router: two lazy workers plus a gpuperfd -route
# front door that consistent-hashes devices by hardware fingerprint.
# Analyze/advise/compare twice each through the router (MISS then
# HIT), nonzero aggregated hit counters, and shard purity: each
# worker's calibration dir holds only fingerprints of devices the
# router's shard table assigns to it. Submissions ride the same
# router: POST /v1/kernels lands on the shard owning the submission
# id, analyze reaches it wherever the device shard points, and DELETE
# evicts it.
set -euo pipefail
cd "$(dirname "$0")/.."

BINDIR=$(mktemp -d)
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$BINDIR"' EXIT

go build -o "$BINDIR/gpuperfd" ./cmd/gpuperfd

# wait_http URL: poll until the server answers any HTTP status at all.
wait_http() {
    for _ in $(seq 1 150); do
        local code
        code=$(curl -s -o /dev/null -w '%{http_code}' "$1" || true)
        [ "$code" != "000" ] && return 0
        sleep 0.2
    done
    echo "smoke: $1 never came up" >&2
    exit 1
}

# post URL BODY HDRFILE: POST, body on stdout, headers to HDRFILE.
post() { curl -fsS -X POST "$1" -d "$2" -D "$3"; }

# xcache HDRFILE: the response's X-Cache verdict.
xcache() { awk -F': ' 'tolower($1)=="x-cache"{gsub(/\r/,"",$2); print $2}' "$1"; }

### Leg 1: one worker ########################################################

ADDR=127.0.0.1:8097
CALDIR="$BINDIR/cal"
CACHEDIR="$BINDIR/cache"

SUBSDIR="$BINDIR/subs"

PPROF=127.0.0.1:8101

"$BINDIR/gpuperfd" -addr "$ADDR" -devices gtx285-6sm,gtx285 \
    -cal-dir "$CALDIR" -cache-dir "$CACHEDIR" \
    -subs-dir "$SUBSDIR" -subs-max 8 -subs-ttl 1h \
    -log-format json -pprof "$PPROF" 2>"$BINDIR/worker.log" &
PIDS+=($!)
wait_http "http://$ADDR/healthz"

# Readiness: nothing is calibrated yet, so healthz must refuse.
HCODE=$(curl -s -o "$BINDIR/h1" -w '%{http_code}' "http://$ADDR/healthz")
if [ "$HCODE" != "503" ] || ! grep -q '"starting"' "$BINDIR/h1"; then
    echo "smoke: fresh healthz should be 503 starting, got $HCODE: $(cat "$BINDIR/h1")" >&2
    exit 1
fi

KERNELS=$(curl -fsS -D "$BINDIR/kh" "http://$ADDR/v1/kernels")
grep -q '"matmul16"' <<<"$KERNELS" || {
    echo "smoke: kernel list missing matmul16: $KERNELS" >&2
    exit 1
}
# The listing is per-kernel metadata, not bare names: description,
# size bounds, variant family, and the advisor scenario each
# optimization variant realizes.
for field in '"description"' '"max_size"' '"family": "matmul"' '"optimization": "conflict-free-shared"'; do
    grep -q "$field" <<<"$KERNELS" || {
        echo "smoke: kernel list missing $field: $KERNELS" >&2
        exit 1
    }
done
# The kernel listing is dynamic now (submissions come and go), so it
# must NOT claim Cache-Control freshness — but its ETag still
# revalidates.
if grep -qi '^cache-control:' "$BINDIR/kh"; then
    echo "smoke: dynamic kernel list must not set Cache-Control:" >&2
    cat "$BINDIR/kh" >&2
    exit 1
fi
ETAG=$(awk -F': ' 'tolower($1)=="etag"{gsub(/\r/,"",$2); print $2}' "$BINDIR/kh")
[ -n "$ETAG" ] || { echo "smoke: kernel list has no ETag" >&2; exit 1; }
CODE304=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $ETAG" "http://$ADDR/v1/kernels")
if [ "$CODE304" != "304" ]; then
    echo "smoke: If-None-Match revalidation answered $CODE304, want 304" >&2
    exit 1
fi

# The device list carries both served catalog entries, each with a
# hardware fingerprint, and the fingerprints differ.
DEVICES=$(curl -fsS -D "$BINDIR/dh" "http://$ADDR/v1/devices")
# The device listing stays fully static, so it keeps Cache-Control.
grep -qi '^cache-control: .*max-age' "$BINDIR/dh" || {
    echo "smoke: device list missing Cache-Control:" >&2
    cat "$BINDIR/dh" >&2
    exit 1
}
for field in '"gtx285"' '"gtx285-6sm"' '"fingerprint"' '"peak_gflops"'; do
    grep -q "$field" <<<"$DEVICES" || {
        echo "smoke: device list missing $field: $DEVICES" >&2
        exit 1
    }
done
NFP=$(echo "$DEVICES" | grep -o '"fingerprint": "[^"]*"' | sort -u | wc -l)
if [ "$NFP" -ne 2 ]; then
    echo "smoke: expected 2 distinct device fingerprints, got $NFP: $DEVICES" >&2
    exit 1
fi

# Analyze on the (fast) slice, twice: a cold MISS, then a HIT with the
# identical body.
BODY='{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}'
OUT=$(post "http://$ADDR/v1/analyze" "$BODY" "$BINDIR/a1")
grep -q '"bottleneck"' <<<"$OUT" || {
    echo "smoke: analyze response missing bottleneck field: $OUT" >&2
    exit 1
}
grep -q '"device": "gtx285-6sm"' <<<"$OUT" || {
    echo "smoke: analyze response does not echo the catalog device: $OUT" >&2
    exit 1
}
OUT2=$(post "http://$ADDR/v1/analyze" "$BODY" "$BINDIR/a2")
if [ "$(xcache "$BINDIR/a1")" != "MISS" ] || [ "$(xcache "$BINDIR/a2")" != "HIT" ]; then
    echo "smoke: analyze X-Cache $(xcache "$BINDIR/a1") then $(xcache "$BINDIR/a2"), want MISS then HIT" >&2
    exit 1
fi
if [ "$OUT" != "$OUT2" ]; then
    echo "smoke: cached analyze body differs from the computed one" >&2
    exit 1
fi

# The default device is calibrated now, so readiness flipped.
HCODE=$(curl -s -o "$BINDIR/h2" -w '%{http_code}' "http://$ADDR/healthz")
if [ "$HCODE" != "200" ] || ! grep -q '"ok"' "$BINDIR/h2"; then
    echo "smoke: post-traffic healthz should be 200 ok, got $HCODE: $(cat "$BINDIR/h2")" >&2
    exit 1
fi

ADVICE=$(post "http://$ADDR/v1/advise" \
    '{"kernel":"matmul-naive","size":128,"seed":7,"device":"gtx285-6sm"}' "$BINDIR/ad1")
for field in '"scenarios"' '"speedup"' '"top": "perfect-coalescing"'; do
    grep -q "$field" <<<"$ADVICE" || {
        echo "smoke: advise response missing $field: $ADVICE" >&2
        exit 1
    }
done
post "http://$ADDR/v1/advise" \
    '{"kernel":"matmul-naive","size":128,"seed":7,"device":"gtx285-6sm"}' "$BINDIR/ad2" >/dev/null
if [ "$(xcache "$BINDIR/ad2")" != "HIT" ]; then
    echo "smoke: repeat advise was $(xcache "$BINDIR/ad2"), want HIT" >&2
    exit 1
fi

# Measure is the calibration-free timing path (and is never cached).
MEAS=$(curl -fsS -X POST "http://$ADDR/v1/measure" \
    -d '{"kernel":"matmul16","size":64,"seed":7,"device":"gtx285-6sm"}')
grep -q '"seconds"' <<<"$MEAS" || {
    echo "smoke: measure response missing seconds: $MEAS" >&2
    exit 1
}

# Bring-your-own-kernel: a hand-written 64-thread tree reduction (4
# CTAs, each summing 64 floats into out[ctaid]) goes through the
# ingest pipeline and comes back as an analyzable submission id.
REDSRC='.kernel reduce64\n.regs 13\n.smem 256\n'
REDSRC+='s2r r0, %tid\ns2r r1, %ctaid\ns2r r2, %ntid\nimad r3, r1, r2, r0\n'
REDSRC+='shl r4, r3, 2\ngld r5, r4\nshl r6, r0, 2\nsst r6, r5\nbar.sync\n'
for S in 32 16 8 4 2 1; do
    REDSRC+="isetp.lt p0, r0, $S\n@p0 iadd r7, r0, $S\n@p0 shl r7, r7, 2\n"
    REDSRC+='@p0 sld r8, r7\n@p0 sld r9, r6\n@p0 fadd r9, r9, r8\n@p0 sst r6, r9\nbar.sync\n'
done
REDSRC+='isetp.eq p1, r0, 0\nmov r10, 0\n@p1 sld r11, r10\n'
REDSRC+='@p1 shl r12, r1, 2\n@p1 iadd r12, r12, 1024\n@p1 gst r12, r11\nexit\n'
REDBUFS='[{"name":"in","elem":"f32","count":256,"fill":"random"},{"name":"out","elem":"f32","count":4,"fill":"zeros"}]'
SUBBODY="{\"label\":\"tree-reduction\",\"source\":\"$REDSRC\",\"grid\":4,\"block\":64,\"buffers\":$REDBUFS}"

RECEIPT=$(post "http://$ADDR/v1/kernels" "$SUBBODY" "$BINDIR/s1")
SID=$(grep -o '"id": "subm-[0-9a-f]*"' <<<"$RECEIPT" | head -1 | awk -F'"' '{print $4}')
if [ -z "$SID" ]; then
    echo "smoke: submission receipt has no subm- id: $RECEIPT" >&2
    exit 1
fi
grep -q '"kernel": "reduce64"' <<<"$RECEIPT" || {
    echo "smoke: receipt does not name the submitted kernel: $RECEIPT" >&2
    exit 1
}
# The listing now carries the submission alongside the built-ins.
curl -fsS "http://$ADDR/v1/kernels" | grep -q "\"$SID\"" || {
    echo "smoke: kernel listing does not include submission $SID" >&2
    exit 1
}
# ... and the submission store persisted its slot.
NSUB=$(ls "$SUBSDIR"/subm-*.json 2>/dev/null | wc -l)
if [ "$NSUB" -ne 1 ]; then
    echo "smoke: -subs-dir should hold 1 slot, has $NSUB" >&2
    exit 1
fi

# Analyze the submission: a cold MISS with a bottleneck verdict and
# the measure-only policy's marker, then a HIT with identical bytes.
SBODY="{\"kernel\":\"$SID\",\"device\":\"gtx285-6sm\"}"
SOUT=$(post "http://$ADDR/v1/analyze" "$SBODY" "$BINDIR/sa1")
for field in '"bottleneck"' '"verify_error": "unverified: user-submitted"'; do
    grep -q "$field" <<<"$SOUT" || {
        echo "smoke: submission analysis missing $field: $SOUT" >&2
        exit 1
    }
done
SOUT2=$(post "http://$ADDR/v1/analyze" "$SBODY" "$BINDIR/sa2")
if [ "$(xcache "$BINDIR/sa1")" != "MISS" ] || [ "$(xcache "$BINDIR/sa2")" != "HIT" ]; then
    echo "smoke: submission analyze X-Cache $(xcache "$BINDIR/sa1") then $(xcache "$BINDIR/sa2"), want MISS then HIT" >&2
    exit 1
fi
[ "$SOUT" = "$SOUT2" ] || { echo "smoke: cached submission analysis differs" >&2; exit 1; }

# Resubmitting the identical program+spec dedupes to the same id.
post "http://$ADDR/v1/kernels" "$SUBBODY" "$BINDIR/s2" | grep -q '"existing": true' || {
    echo "smoke: resubmission not reported as existing" >&2
    exit 1
}

# Rejections are 400s that say WHY. Out of envelope: same program,
# but the declared output buffer is too small for out[3].
BADBUFS='[{"name":"in","elem":"f32","count":256,"fill":"random"},{"name":"out","elem":"f32","count":1,"fill":"zeros"}]'
RCODE=$(curl -s -o "$BINDIR/rej1" -w '%{http_code}' -X POST "http://$ADDR/v1/kernels" \
    -d "{\"source\":\"$REDSRC\",\"grid\":4,\"block\":64,\"buffers\":$BADBUFS}")
if [ "$RCODE" != "400" ] || ! grep -q 'envelope' "$BINDIR/rej1"; then
    echo "smoke: out-of-envelope submission answered $RCODE: $(cat "$BINDIR/rej1")" >&2
    exit 1
fi
# Over budget: a 1024-thread block exceeds the block-size ceiling.
RCODE=$(curl -s -o "$BINDIR/rej2" -w '%{http_code}' -X POST "http://$ADDR/v1/kernels" \
    -d "{\"source\":\"$REDSRC\",\"grid\":4,\"block\":1024,\"buffers\":$REDBUFS}")
if [ "$RCODE" != "400" ] || ! grep -q 'ceiling' "$BINDIR/rej2"; then
    echo "smoke: over-budget submission answered $RCODE: $(cat "$BINDIR/rej2")" >&2
    exit 1
fi

# Cross-device comparison on a bandwidth-bound kernel: the full chip
# must rank above the 6-SM slice (more SMs keep the memory system
# busier), i.e. best = gtx285 and its speedup vs the slice > 1. The
# cold run calibrates gtx285; time both to show the cache-hit win.
CMPBODY='{"kernel":"spmv-ell","size":4096,"seed":7,"devices":["gtx285-6sm","gtx285"]}'
T0=$(date +%s%N)
CMP=$(post "http://$ADDR/v1/compare" "$CMPBODY" "$BINDIR/c1")
T1=$(date +%s%N)
CMP2=$(post "http://$ADDR/v1/compare" "$CMPBODY" "$BINDIR/c2")
T2=$(date +%s%N)
grep -q '"best": "gtx285"' <<<"$CMP" || {
    echo "smoke: compare should rank the full chip first: $CMP" >&2
    exit 1
}
grep -q '"baseline": "gtx285-6sm"' <<<"$CMP" || {
    echo "smoke: compare baseline should default to the first device: $CMP" >&2
    exit 1
}
# The first (best) entry's speedup vs the 6-SM baseline must be > 1.
BESTSPEED=$(awk -F'"speedup": ' 'NF>1{split($2,a,","); print a[1]; exit}' <<<"$CMP")
awk "BEGIN{exit !($BESTSPEED > 1)}" || {
    echo "smoke: full chip speedup $BESTSPEED should exceed 1: $CMP" >&2
    exit 1
}
if [ "$(xcache "$BINDIR/c1")" != "MISS" ] || [ "$(xcache "$BINDIR/c2")" != "HIT" ]; then
    echo "smoke: compare X-Cache $(xcache "$BINDIR/c1") then $(xcache "$BINDIR/c2"), want MISS then HIT" >&2
    exit 1
fi
if [ "$CMP" != "$CMP2" ]; then
    echo "smoke: cached compare body differs from the computed one" >&2
    exit 1
fi
COLD_MS=$(( (T1 - T0) / 1000000 ))
WARM_MS=$(( (T2 - T1) / 1000000 ))
if [ "$WARM_MS" -ge "$COLD_MS" ]; then
    echo "smoke: cache hit (${WARM_MS}ms) not faster than cold compare (${COLD_MS}ms)" >&2
    exit 1
fi

# Stats: the traffic above must show up as hits and misses.
STATS=$(curl -fsS "http://$ADDR/v1/stats")
HITS=$(grep -o '"hits": [0-9]*' <<<"$STATS" | head -1 | awk '{print $2}')
MISSES=$(grep -o '"misses": [0-9]*' <<<"$STATS" | head -1 | awk '{print $2}')
if [ "${HITS:-0}" -lt 3 ] || [ "${MISSES:-0}" -lt 1 ]; then
    echo "smoke: stats hits=$HITS misses=$MISSES, want >=3/>=1: $STATS" >&2
    exit 1
fi
grep -q '"submissions": 1' <<<"$STATS" || {
    echo "smoke: stats should gauge 1 resident submission: $STATS" >&2
    exit 1
}
grep -q '"uptime_seconds"' <<<"$STATS" || {
    echo "smoke: stats missing uptime_seconds: $STATS" >&2
    exit 1
}
grep -q '"requests"' <<<"$STATS" || {
    echo "smoke: stats missing per-op request counts: $STATS" >&2
    exit 1
}

# Observability: every response carries a request id (echoed when the
# client supplies one), /metrics parses as a Prometheus exposition
# with the known families, and a round trip bumps the analyze counter.
RID=$(awk -F': ' 'tolower($1)=="x-request-id"{gsub(/\r/,"",$2); print $2}' "$BINDIR/a1")
[ -n "$RID" ] || { echo "smoke: analyze response has no X-Request-ID" >&2; exit 1; }
ECHOED=$(curl -fsS -o /dev/null -D - -H 'X-Request-ID: smoke-rid-1' "http://$ADDR/healthz" \
    | awk -F': ' 'tolower($1)=="x-request-id"{gsub(/\r/,"",$2); print $2}')
if [ "$ECHOED" != "smoke-rid-1" ]; then
    echo "smoke: inbound X-Request-ID not echoed (got '$ECHOED')" >&2
    exit 1
fi

METRICS=$(curl -fsS "http://$ADDR/metrics")
[ -n "$METRICS" ] || { echo "smoke: /metrics is empty" >&2; exit 1; }
for fam in gpuperf_uptime_seconds gpuperf_requests_total gpuperf_http_requests_total \
           gpuperf_cache_misses_total gpuperf_engine_blocks_simulated_total \
           gpuperf_phase_seconds_bucket gpuperf_http_request_seconds_bucket; do
    grep -q "^$fam" <<<"$METRICS" || {
        echo "smoke: /metrics missing family $fam" >&2
        exit 1
    }
done
analyze_count() {
    curl -fsS "http://$ADDR/metrics" | awk '/^gpuperf_requests_total\{op="analyze"\}/{print $2}'
}
N0=$(analyze_count)
post "http://$ADDR/v1/analyze" "$BODY" "$BINDIR/am" >/dev/null
N1=$(analyze_count)
if [ "${N1:-0}" -ne $((N0 + 1)) ]; then
    echo "smoke: analyze round trip did not bump gpuperf_requests_total{op=\"analyze\"}: $N0 -> $N1" >&2
    exit 1
fi

# The pprof sidecar listener serves profiles off the service address.
# (grep -q would SIGPIPE curl under pipefail; buffer the body first.)
HEAP=$(curl -fsS "http://$PPROF/debug/pprof/heap?debug=1")
grep -q 'heap profile' <<<"$HEAP" || {
    echo "smoke: pprof heap profile not served on $PPROF" >&2
    exit 1
}

# -log-format json: the access log is structured, one object per
# request, carrying the route and the request id.
grep -q '"msg":"request".*"route":"/v1/analyze"' "$BINDIR/worker.log" || {
    echo "smoke: no JSON access-log line for /v1/analyze:" >&2
    tail -5 "$BINDIR/worker.log" >&2
    exit 1
}
grep -q '"id":"smoke-rid-1"' "$BINDIR/worker.log" || {
    echo "smoke: access log does not carry the client-supplied request id" >&2
    exit 1
}

# DELETE evicts the submission everywhere: the id 404s, the listing
# and the disk slot drop it, and a repeat delete 404s too.
DCODE=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/v1/kernels/$SID")
[ "$DCODE" = "204" ] || { echo "smoke: DELETE answered $DCODE, want 204" >&2; exit 1; }
DCODE=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/v1/kernels/$SID")
[ "$DCODE" = "404" ] || { echo "smoke: repeat DELETE answered $DCODE, want 404" >&2; exit 1; }
ACODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/analyze" -d "$SBODY")
[ "$ACODE" = "404" ] || { echo "smoke: analyze of evicted submission answered $ACODE, want 404" >&2; exit 1; }
if curl -fsS "http://$ADDR/v1/kernels" | grep -q "\"$SID\""; then
    echo "smoke: kernel listing still includes evicted submission $SID" >&2
    exit 1
fi
NSUB=$(ls "$SUBSDIR"/subm-*.json 2>/dev/null | wc -l || true)
if [ "$NSUB" -ne 0 ]; then
    echo "smoke: -subs-dir should be empty after eviction, has $NSUB slots" >&2
    exit 1
fi

# Both calibrations cached under distinct fingerprint keys, and the
# result cache holds content-addressed slots.
NCAL=$(ls "$CALDIR"/cal-*.json 2>/dev/null | wc -l)
if [ "$NCAL" -ne 2 ]; then
    echo "smoke: cache dir should hold 2 per-fingerprint calibrations, has $NCAL" >&2
    ls -la "$CALDIR" >&2 || true
    exit 1
fi
NRES=$(ls "$CACHEDIR"/res-*.json 2>/dev/null | wc -l)
if [ "$NRES" -lt 3 ]; then
    echo "smoke: result cache should hold >=3 slots, has $NRES" >&2
    exit 1
fi

kill "${PIDS[0]}" 2>/dev/null || true
wait "${PIDS[0]}" 2>/dev/null || true

BOTTLENECK=$(awk -F'"bottleneck": ' 'NF>1{split($2,a,","); print a[1]; exit}' <<<"$OUT")
SBOTTLENECK=$(awk -F'"bottleneck": ' 'NF>1{split($2,a,","); print a[1]; exit}' <<<"$SOUT")
TOP=$(grep -o '"top": "[^"]*"' <<<"$ADVICE")
echo "smoke: leg 1 ok (bottleneck $BOTTLENECK; advise $TOP; compare best gtx285 at ${BESTSPEED}x; cold compare ${COLD_MS}ms vs hit ${WARM_MS}ms; $NCAL calibrations, $NRES result slots; submission $SID bottleneck $SBOTTLENECK, admitted/analyzed/evicted)"

### Leg 2: 2-worker router ###################################################

W1=127.0.0.1:8098
W2=127.0.0.1:8099
RT=127.0.0.1:8100

"$BINDIR/gpuperfd" -addr "$W1" -devices gtx285-6sm,gtx285 \
    -cal-dir "$BINDIR/cal-w1" -cache-dir "$BINDIR/cache-w1" &
PIDS+=($!)
"$BINDIR/gpuperfd" -addr "$W2" -devices gtx285-6sm,gtx285 \
    -cal-dir "$BINDIR/cal-w2" -cache-dir "$BINDIR/cache-w2" &
PIDS+=($!)
wait_http "http://$W1/healthz"
wait_http "http://$W2/healthz"

"$BINDIR/gpuperfd" -addr "$RT" -devices gtx285-6sm,gtx285 \
    -route "$W1,$W2" &
PIDS+=($!)
# The router is "ok" once both workers answer their probes at all
# (workers still calibrating are routable), so wait for a 200.
for _ in $(seq 1 150); do
    RCODE=$(curl -s -o "$BINDIR/rh" -w '%{http_code}' "http://$RT/healthz" || true)
    [ "$RCODE" = "200" ] && break
    sleep 0.2
done
if [ "$RCODE" != "200" ] || ! grep -q '"shards"' "$BINDIR/rh"; then
    echo "smoke: router healthz $RCODE: $(cat "$BINDIR/rh" 2>/dev/null)" >&2
    exit 1
fi

# Analyze, advise and compare through the router, twice each:
# MISS/COALESCED never on the repeat — the second pass is all HITs.
for EP in analyze advise; do
    RBODY='{"kernel":"matmul16","size":64,"seed":11,"device":"gtx285"}'
    R1=$(post "http://$RT/v1/$EP" "$RBODY" "$BINDIR/r1")
    R2=$(post "http://$RT/v1/$EP" "$RBODY" "$BINDIR/r2")
    if [ "$(xcache "$BINDIR/r1")" != "MISS" ] || [ "$(xcache "$BINDIR/r2")" != "HIT" ]; then
        echo "smoke: router $EP X-Cache $(xcache "$BINDIR/r1") then $(xcache "$BINDIR/r2"), want MISS then HIT" >&2
        exit 1
    fi
    if [ "$R1" != "$R2" ]; then
        echo "smoke: router $EP repeat body differs" >&2
        exit 1
    fi
done
RCMPBODY='{"kernel":"matmul16","size":64,"seed":11,"devices":["gtx285-6sm","gtx285"]}'
T0=$(date +%s%N)
RC1=$(post "http://$RT/v1/compare" "$RCMPBODY" "$BINDIR/rc1")
T1=$(date +%s%N)
RC2=$(post "http://$RT/v1/compare" "$RCMPBODY" "$BINDIR/rc2")
T2=$(date +%s%N)
if [ "$(xcache "$BINDIR/rc1")" != "MISS" ] || [ "$(xcache "$BINDIR/rc2")" != "HIT" ]; then
    echo "smoke: router compare X-Cache $(xcache "$BINDIR/rc1") then $(xcache "$BINDIR/rc2"), want MISS then HIT" >&2
    exit 1
fi
[ "$RC1" = "$RC2" ] || { echo "smoke: router compare repeat body differs" >&2; exit 1; }
RCOLD_MS=$(( (T1 - T0) / 1000000 ))
RWARM_MS=$(( (T2 - T1) / 1000000 ))

# Submissions through the router: the POST lands on the shard the id
# hashes to, analyze reaches it from whichever shard owns the device
# (retrying on the id's owner when they differ), DELETE evicts it.
RREC=$(post "http://$RT/v1/kernels" "$SUBBODY" "$BINDIR/rs1")
RSID=$(grep -o '"id": "subm-[0-9a-f]*"' <<<"$RREC" | head -1 | awk -F'"' '{print $4}')
[ -n "$RSID" ] || { echo "smoke: router submission receipt has no id: $RREC" >&2; exit 1; }
RSBODY="{\"kernel\":\"$RSID\",\"device\":\"gtx285\"}"
RS1=$(post "http://$RT/v1/analyze" "$RSBODY" "$BINDIR/rsa1")
grep -q '"verify_error": "unverified: user-submitted"' <<<"$RS1" || {
    echo "smoke: router submission analysis missing the measure-only marker: $RS1" >&2
    exit 1
}
RS2=$(post "http://$RT/v1/analyze" "$RSBODY" "$BINDIR/rsa2")
if [ "$(xcache "$BINDIR/rsa1")" != "MISS" ] || [ "$(xcache "$BINDIR/rsa2")" != "HIT" ]; then
    echo "smoke: router submission analyze X-Cache $(xcache "$BINDIR/rsa1") then $(xcache "$BINDIR/rsa2"), want MISS then HIT" >&2
    exit 1
fi
[ "$RS1" = "$RS2" ] || { echo "smoke: router submission repeat body differs" >&2; exit 1; }
RDCODE=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$RT/v1/kernels/$RSID")
[ "$RDCODE" = "204" ] || { echo "smoke: router DELETE answered $RDCODE, want 204" >&2; exit 1; }
RACODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$RT/v1/analyze" -d "$RSBODY")
[ "$RACODE" = "404" ] || { echo "smoke: router analyze of evicted submission answered $RACODE, want 404" >&2; exit 1; }

# The router's /metrics merges every worker's exposition under a
# worker="<url>" label next to the router's own series.
RMETRICS=$(curl -fsS "http://$RT/metrics")
grep -q '^gpuperf_router_worker_up{worker="http://' <<<"$RMETRICS" || {
    echo "smoke: router /metrics missing per-worker up gauge" >&2
    exit 1
}
grep -q '^gpuperf_router_uptime_seconds' <<<"$RMETRICS" || {
    echo "smoke: router /metrics missing its own uptime" >&2
    exit 1
}
grep -q "^gpuperf_requests_total{worker=\"http://$W1\"" <<<"$RMETRICS" &&
    grep -q "^gpuperf_requests_total{worker=\"http://$W2\"" <<<"$RMETRICS" || {
    echo "smoke: router /metrics does not carry both workers' request counters" >&2
    exit 1
}

# Aggregated stats across the worker set: a nonzero hit rate.
RSTATS=$(curl -fsS "http://$RT/v1/stats")
RHITS=$(grep -o '"hits": [0-9]*' <<<"$RSTATS" | head -1 | awk '{print $2}')
RMISSES=$(grep -o '"misses": [0-9]*' <<<"$RSTATS" | head -1 | awk '{print $2}')
if [ "${RHITS:-0}" -lt 3 ] || [ "${RMISSES:-0}" -lt 1 ]; then
    echo "smoke: router stats hits=$RHITS misses=$RMISSES: $RSTATS" >&2
    exit 1
fi

# Shard purity: each worker's calibration dir may hold only the
# fingerprints of devices the router's shard table assigns to it.
DEVJSON=$(curl -fsS "http://$RT/v1/devices")
RHEALTH=$(cat "$BINDIR/rh")
shard_of() { # device name -> owning worker URL
    grep -o "\"$1\": \"http[^\"]*\"" <<<"$RHEALTH" | head -1 | awk -F'"' '{print $4}'
}
fp_of() { # device name -> hardware fingerprint
    awk -F'"' -v want="$1" '
        $2=="name" {n=$4}
        $2=="fingerprint" && n==want {print $4; exit}' <<<"$DEVJSON"
}
check_purity() { # worker addr, cal dir
    local waddr=$1 wdir=$2 f fp owned
    for f in "$wdir"/cal-*.json; do
        [ -e "$f" ] || continue
        fp=$(basename "$f"); fp=${fp#cal-}; fp=${fp%.json}
        owned=no
        for dev in gtx285-6sm gtx285; do
            if [ "$(fp_of "$dev")" = "$fp" ] && [ "$(shard_of "$dev")" = "http://$waddr" ]; then
                owned=yes
            fi
        done
        if [ "$owned" != "yes" ]; then
            echo "smoke: worker $waddr calibrated fingerprint $fp outside its shard" >&2
            echo "smoke: shard table: $(grep -o '"shards": {[^}]*}' <<<"$RHEALTH")" >&2
            exit 1
        fi
    done
}
check_purity "$W1" "$BINDIR/cal-w1"
check_purity "$W2" "$BINDIR/cal-w2"
# A worker owning zero shards never creates its cal dir; don't let
# pipefail turn that ls miss into a script death.
NCAL1=$(ls "$BINDIR/cal-w1"/cal-*.json 2>/dev/null | wc -l || true)
NCAL2=$(ls "$BINDIR/cal-w2"/cal-*.json 2>/dev/null | wc -l || true)
if [ $((NCAL1 + NCAL2)) -ne 2 ]; then
    echo "smoke: the two shards should hold 2 calibrations total, have $NCAL1+$NCAL2" >&2
    exit 1
fi

echo "smoke: leg 2 ok (router over $W1/$W2; cold compare ${RCOLD_MS}ms vs hit ${RWARM_MS}ms; fleet hits=$RHITS misses=$RMISSES; shard calibrations $NCAL1+$NCAL2; submission $RSID routed/analyzed/evicted)"
echo "smoke: ok"
