package gpuperf

import (
	"fmt"

	"gpuperf/internal/asm"
	"gpuperf/internal/cubin"
	"gpuperf/internal/isa"
	"gpuperf/internal/microbench"
)

// The binary-toolchain facade: assemble kernel text into CUBIN-like
// containers, disassemble them back, rewrite a kernel inside an
// existing container, and generate the §4 microbenchmark kernels —
// the Decuda/cudasm-style loop the paper uses to build benchmarks
// the compiler cannot interfere with. All functions work on raw
// container bytes so callers never touch the internal packages.

// AssembleText assembles kernel source (one or more kernels) into a
// container.
func AssembleText(src string) ([]byte, error) {
	progs, err := asm.AssembleAll(src)
	if err != nil {
		return nil, err
	}
	c := &cubin.Container{Kernels: progs}
	return c.Marshal()
}

// DisassembleContainer renders every kernel in a container as text,
// in container order, separated by blank lines.
func DisassembleContainer(raw []byte) (string, error) {
	c, err := cubin.Unmarshal(raw)
	if err != nil {
		return "", err
	}
	var out string
	for _, k := range c.Kernels {
		out += asm.Disassemble(k) + "\n"
	}
	return out, nil
}

// RewriteKernel replaces the named kernel inside a container with
// the (single-kernel) assembler source and returns the new container.
func RewriteKernel(raw []byte, kernel, replacementSrc string) ([]byte, error) {
	c, err := cubin.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	repl, err := asm.Assemble(replacementSrc)
	if err != nil {
		return nil, err
	}
	if err := c.Rewrite(kernel, repl); err != nil {
		return nil, err
	}
	return c.Marshal()
}

// MicrobenchSpec selects one generated microbenchmark kernel.
type MicrobenchSpec struct {
	// Kind is "ichain" (dependent-instruction chain), "scopy"
	// (shared-memory copy) or "gstream" (global-memory stream).
	Kind string
	// Op names the chained instruction for ichain (e.g. "fmad").
	Op string
	// N is the chain length / iteration count / per-thread
	// transaction count.
	N int
	// Stride is the word stride for scopy.
	Stride int
	// Threads is the total thread count for gstream.
	Threads int
}

// Microbenchmark generates a §4 microbenchmark kernel and returns it
// as a single-kernel container.
func Microbenchmark(spec MicrobenchSpec) ([]byte, error) {
	var prog *isa.Program
	var err error
	switch spec.Kind {
	case "ichain":
		op, ok := opcodeByName(spec.Op)
		if !ok {
			return nil, fmt.Errorf("gpuperf: unknown instruction %q", spec.Op)
		}
		prog, err = microbench.InstrChain(op, spec.N)
	case "scopy":
		prog, err = microbench.SharedCopy(spec.N, spec.Stride)
	case "gstream":
		prog, err = microbench.GlobalStream(spec.N, spec.Threads, 1<<22)
	default:
		return nil, fmt.Errorf("gpuperf: unknown microbenchmark kind %q (want ichain, scopy or gstream)", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	c := &cubin.Container{Kernels: []*isa.Program{prog}}
	return c.Marshal()
}

func opcodeByName(name string) (isa.Opcode, bool) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if op.String() == name {
			return op, true
		}
	}
	return 0, false
}
