package gpuperf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuperf/internal/obs"
)

// TestWorkerMetricsEndpoint: GET /metrics serves a Prometheus text
// exposition whose counters reflect served traffic — the per-op
// request counter, the per-route HTTP counter, the latency histogram
// labeled by op and cache status, and the always-on runtime/engine
// series.
func TestWorkerMetricsEndpoint(t *testing.T) {
	h := NewHandler(cacheTestFleet(t, FleetOptions{}))
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", rec.Code, rec.Body)
	}

	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mrec.Code)
	}
	if ct := mrec.Header().Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type %q, want %q", ct, obs.TextContentType)
	}
	body := mrec.Body.String()
	for _, want := range []string{
		`gpuperf_requests_total{op="analyze"} 1`,
		`gpuperf_requests_total{op="compare"} 0`, // pre-created: absence of traffic is visible
		`gpuperf_http_requests_total{route="/v1/analyze",method="POST",code="200"} 1`,
		`gpuperf_http_request_seconds_count{op="analyze",cache="miss"} 1`,
		`gpuperf_phase_seconds_count{phase="engine"} 1`,
		"# TYPE gpuperf_http_request_seconds histogram",
		"gpuperf_uptime_seconds",
		"gpuperf_engine_blocks_simulated_total",
		"gpuperf_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-ID is echoed
// back; a missing or malformed one is replaced with a fresh id.
func TestRequestIDPropagation(t *testing.T) {
	h := NewHandler(testFleet(t))
	serve := func(id string) string {
		req := httptest.NewRequest("GET", "/healthz", nil)
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Header().Get("X-Request-ID")
	}
	if got := serve("client-id-42"); got != "client-id-42" {
		t.Errorf("valid inbound id not echoed: %q", got)
	}
	if got := serve(""); got == "" {
		t.Error("no inbound id: response should carry a generated one")
	}
	if got := serve("bad id\nwith junk"); got == "" || strings.Contains(got, "\n") {
		t.Errorf("malformed inbound id should be replaced, got %q", got)
	}
}

// TestStatsUptimeAndRequests: /v1/stats reports service uptime and
// per-op request counts alongside the cache counters.
func TestStatsUptimeAndRequests(t *testing.T) {
	f := cacheTestFleet(t, FleetOptions{})
	h := NewHandler(f)
	areq := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	h.ServeHTTP(httptest.NewRecorder(), areq)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var st CacheStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptime %v, want >= 0", st.UptimeSeconds)
	}
	if st.Requests["analyze"] != 1 {
		t.Errorf("requests %v, want analyze=1", st.Requests)
	}
}

// TestSlowRequestTrace: a request slower than the threshold logs its
// span tree — the "why was this slow" breakdown — at WARN, and the
// Result itself carries the same phases in Diagnostics.
func TestSlowRequestTrace(t *testing.T) {
	var buf bytes.Buffer
	h := NewObservedHandler(cacheTestFleet(t, FleetOptions{}), Telemetry{
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
		SlowRequest: time.Nanosecond, // everything is slow
	})
	req := httptest.NewRequest("POST", "/v1/analyze",
		strings.NewReader(`{"kernel":"matmul16","size":64,"seed":7}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", rec.Code, rec.Body)
	}
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics.PhaseSeconds) == 0 {
		t.Error("Diagnostics.PhaseSeconds is empty")
	}
	logs := buf.String()
	if !strings.Contains(logs, "slow request") {
		t.Fatalf("no slow-request line in logs:\n%s", logs)
	}
	for _, span := range []string{"engine", "model", "cache"} {
		if !strings.Contains(logs, span) {
			t.Errorf("span tree is missing %q:\n%s", span, logs)
		}
	}
}

// TestRouterMetricsMerge: the router's /metrics is its own exposition
// plus every up worker's, each worker sample tagged with a
// worker="<url>" label and shared headers deduplicated.
func TestRouterMetricsMerge(t *testing.T) {
	fw := &fakeWorker{name: "w1", healthStatus: http.StatusOK}
	srv := httptest.NewServer(fw.handler(t))
	t.Cleanup(srv.Close)
	rt := routerOver(t, RouterOptions{Workers: []string{srv.URL}})

	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type %q, want %q", ct, obs.TextContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"gpuperf_router_uptime_seconds",
		fmt.Sprintf(`gpuperf_router_worker_up{worker=%q} 1`, srv.URL),
		fmt.Sprintf(`gpuperf_requests_total{worker=%q,op="analyze"} 3`, srv.URL),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("merged exposition is missing %q\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE gpuperf_requests_total"); n != 1 {
		t.Errorf("TYPE header for gpuperf_requests_total appears %d times, want 1 (dedup)", n)
	}
}
