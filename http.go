package gpuperf

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler exposes an Analyzer over HTTP:
//
//	GET  /healthz      liveness probe ("ok")
//	GET  /v1/kernels   JSON list of the registry's kernel specs
//	                   (name, description, size bounds, variant
//	                   family and the advisor scenario each variant
//	                   realizes)
//	POST /v1/analyze   body: a Request; response: a Result
//	POST /v1/advise    body: a Request; response: an Advice (the
//	                   ranked counterfactual-scenario report)
//
// Analysis errors map to status codes: 400 for a malformed body or
// parameters the kernel rejects (including sizes beyond the spec's
// MaxSize ceiling), 404 for an unknown kernel, 503 when the
// request's context ends before the simulation does, 500 otherwise.
// Error bodies are {"error": "..."}.
func NewHandler(a *Analyzer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, a.Kernels())
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest(w, r)
		if !ok {
			return
		}
		res, err := a.Analyze(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/advise", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest(w, r)
		if !ok {
			return
		}
		adv, err := a.Advise(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, adv)
	})
	return mux
}

// decodeRequest parses one Request body, writing the error response
// itself when the body is malformed (ok=false).
func decodeRequest(w http.ResponseWriter, r *http.Request) (Request, bool) {
	// A Request is a handful of scalars; a body anywhere near the
	// cap is garbage, and the cap keeps a hostile stream from
	// growing the decode buffer without bound.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return req, false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("gpuperf: trailing data after the request object"))
		return req, false
	}
	return req, true
}

// writeAnalysisError maps an Analyze/Advise failure to its status.
func writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownKernel):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrInvalidRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
