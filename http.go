package gpuperf

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
)

// NewHandler exposes a Fleet over HTTP:
//
//	GET  /healthz      liveness probe ("ok")
//	GET  /v1/kernels   JSON list of the registry's kernel specs
//	                   (name, description, size bounds, variant
//	                   family and the advisor scenario each variant
//	                   realizes)
//	GET  /v1/devices   JSON list of the catalog's device profiles
//	                   (name, hardware fingerprint, knobs, peaks)
//	POST /v1/analyze   body: a Request; response: a Result
//	POST /v1/advise    body: a Request; response: an Advice (the
//	                   ranked counterfactual-scenario report)
//	POST /v1/measure   body: a Request; response: a Measurement
//	                   (timing simulator only — no calibration)
//	POST /v1/compare   body: a CompareRequest; response: a Comparison
//	                   (one kernel ranked across a device set)
//
// Request bodies may name any catalog device ("device", "devices");
// empty means the fleet's default. Analysis errors map to status
// codes: 400 for a malformed body or parameters the kernel rejects
// (including sizes beyond the spec's MaxSize ceiling), 404 for an
// unknown kernel or device, 503 when the request's context ends
// before the simulation does, 500 otherwise. Error bodies are
// {"error": "..."}.
func NewHandler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Kernels())
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Devices())
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		res, err := f.Analyze(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/advise", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		adv, err := f.Advise(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, adv)
	})
	mux.HandleFunc("POST /v1/measure", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		m, err := f.Measure(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, m)
	})
	mux.HandleFunc("POST /v1/compare", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[CompareRequest](w, r)
		if !ok {
			return
		}
		cmp, err := f.Compare(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cmp)
	})
	return mux
}

// decodeBody parses one JSON request body into T, writing the error
// response itself when the body is malformed (ok=false).
func decodeBody[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	// A request is a handful of scalars (plus, for compare, a short
	// device list); a body anywhere near the cap is garbage, and the
	// cap keeps a hostile stream from growing the decode buffer
	// without bound.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req T
	if err := dec.Decode(&req); err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return req, false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("gpuperf: trailing data after the request object"))
		return req, false
	}
	return req, true
}

// writeAnalysisError maps an Analyze/Advise/Measure/Compare failure
// to its status.
func writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownKernel), errors.Is(err, ErrUnknownDevice):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrInvalidRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// writeJSON encodes v before touching the ResponseWriter, so an
// unencodable value (a NaN that crept into a float field, say)
// becomes a logged 500 with a JSON error body instead of a silent
// 200 with a truncated payload.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("gpuperf: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\": %q}\n", "gpuperf: encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The response line is already on the wire; all we can do for
		// a dead client is note it.
		log.Printf("gpuperf: writing %T response: %v", v, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
