package gpuperf

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// NewHandler exposes a Fleet over HTTP:
//
//	GET  /healthz      readiness probe: a FleetHealth JSON body,
//	                   200 once the default device's calibration is
//	                   loaded or built, 503 before ("starting") or on
//	                   calibration failure ("error")
//	GET  /v1/kernels   JSON list of the registry's kernel specs
//	                   (name, description, size bounds, variant
//	                   family and the advisor scenario each variant
//	                   realizes), resident submissions included
//	POST /v1/kernels   body: a KernelSubmission (assembly source or a
//	                   container, launch geometry, declared buffers);
//	                   response: a SubmissionReceipt whose id is the
//	                   kernel name to analyze. Rejections are 400 and
//	                   name the violated ceiling (or the unprovable
//	                   memory access)
//	DELETE /v1/kernels/{id}
//	                   evict a submission (204; 404 for unknown ids)
//	GET  /v1/devices   JSON list of the catalog's device profiles
//	                   (name, hardware fingerprint, knobs, peaks)
//	GET  /v1/stats     result-cache counters (a CacheStats body:
//	                   hits, misses, coalesced, evictions, in-flight)
//	POST /v1/analyze   body: a Request; response: a Result
//	POST /v1/advise    body: a Request; response: an Advice (the
//	                   ranked counterfactual-scenario report)
//	POST /v1/measure   body: a Request; response: a Measurement
//	                   (timing simulator only — no calibration, no
//	                   result cache)
//	POST /v1/compare   body: a CompareRequest; response: a Comparison
//	                   (one kernel ranked across a device set)
//
// Request bodies may name any catalog device ("device", "devices");
// empty means the fleet's default. Analysis errors map to status
// codes: 400 for a malformed body or parameters the kernel rejects
// (including sizes beyond the spec's MaxSize ceiling), 404 for an
// unknown kernel or device, 503 when the request's context ends
// before the simulation does, 500 otherwise. Error bodies are
// {"error": "..."}.
//
// Responses are deterministic per request tuple, so the cacheable
// routes carry caching headers: analyze/advise/compare report how the
// fleet's result cache served them via X-Cache (HIT, MISS or
// COALESCED — absent when the fleet runs with DisableCache), and
// every deterministic body gets a strong ETag honoring If-None-Match
// with 304 Not Modified. The fully static kernel and device listings
// additionally set Cache-Control.
func NewHandler(f *Fleet) http.Handler { return NewObservedHandler(f, Telemetry{}) }

// NewObservedHandler is NewHandler with the observability layer
// configured: every route runs behind the telemetry middleware
// (X-Request-ID, structured access logs, latency histograms,
// slow-request traces) and GET /metrics renders the fleet's registry
// in Prometheus text format. NewHandler is this with the zero
// Telemetry — the middleware always runs; Telemetry only tunes it.
func NewObservedHandler(f *Fleet, tel Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", metricsHandler(f.Metrics()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := f.Health()
		status := http.StatusOK
		if h.Status != "ok" {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, r, status, h)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, f.CacheStats())
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		// No Cache-Control here: submissions make the listing dynamic.
		// The ETag still gives revalidation for free.
		writeCachedJSON(w, r, f.Kernels(), CacheBypass, "")
	})
	mux.HandleFunc("POST /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		// Submissions carry whole programs, so they get a roomier body
		// cap than the scalar request types — still finite, and tiny
		// next to the admission pipeline's own ceilings.
		req, ok := decodeBodyLimit[KernelSubmission](w, r, maxSubmissionBody)
		if !ok {
			return
		}
		annotate(r, "kernel", req.Label)
		rec, err := f.SubmitKernel(req)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		writeJSON(w, r, http.StatusOK, rec)
	})
	mux.HandleFunc("DELETE /v1/kernels/{id}", func(w http.ResponseWriter, r *http.Request) {
		annotate(r, "kernel", r.PathValue("id"))
		if err := f.DeleteKernel(r.PathValue("id")); err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		writeCachedJSON(w, r, f.Devices(), CacheBypass, staticCacheControl)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		annotate(r, "kernel", req.Kernel)
		annotate(r, "device", req.Device)
		res, st, err := f.AnalyzeCached(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		writeCachedJSON(w, r, res, st, "")
	})
	mux.HandleFunc("POST /v1/advise", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		annotate(r, "kernel", req.Kernel)
		annotate(r, "device", req.Device)
		adv, st, err := f.AdviseCached(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		writeCachedJSON(w, r, adv, st, "")
	})
	mux.HandleFunc("POST /v1/measure", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[Request](w, r)
		if !ok {
			return
		}
		annotate(r, "kernel", req.Kernel)
		annotate(r, "device", req.Device)
		m, err := f.Measure(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		writeJSON(w, r, http.StatusOK, m)
	})
	mux.HandleFunc("POST /v1/compare", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBody[CompareRequest](w, r)
		if !ok {
			return
		}
		annotate(r, "kernel", req.Kernel)
		annotate(r, "device", strings.Join(req.Devices, ","))
		cmp, st, err := f.CompareCached(r.Context(), req)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		writeCachedJSON(w, r, cmp, st, "")
	})
	return telemetryMiddleware(mux, f.Metrics(), tel)
}

// staticCacheControl is the policy for the kernel and device
// listings: fully static for a server's lifetime, so clients may
// reuse them for an hour (and revalidate for free via the ETag).
const staticCacheControl = "public, max-age=3600"

// maxSubmissionBody caps POST /v1/kernels bodies: room for a few
// thousand instructions of assembly or container (base64-inflated)
// plus the spec, far beyond any program the admission ceilings admit.
const maxSubmissionBody = 1 << 20

// decodeBody parses one JSON request body into T, writing the error
// response itself when the body is malformed (ok=false).
func decodeBody[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	// A request is a handful of scalars (plus, for compare, a short
	// device list); a body anywhere near the cap is garbage, and the
	// cap keeps a hostile stream from growing the decode buffer
	// without bound.
	return decodeBodyLimit[T](w, r, 1<<16)
}

// decodeBodyLimit is decodeBody with a route-specific body cap.
func decodeBodyLimit[T any](w http.ResponseWriter, r *http.Request, limit int64) (T, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	var req T
	if err := dec.Decode(&req); err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, r, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, r, http.StatusBadRequest, err)
		}
		return req, false
	}
	if dec.More() {
		writeError(w, r, http.StatusBadRequest, errors.New("gpuperf: trailing data after the request object"))
		return req, false
	}
	return req, true
}

// writeAnalysisError maps an Analyze/Advise/Measure/Compare failure
// to its status.
func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrUnknownKernel), errors.Is(err, ErrUnknownDevice):
		writeError(w, r, http.StatusNotFound, err)
	case errors.Is(err, ErrInvalidRequest):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusServiceUnavailable, err)
	default:
		writeError(w, r, http.StatusInternalServerError, err)
	}
}

// encodeJSON renders v exactly as the service sends it (indented,
// trailing newline) — one encoder, so the ETag and the body can never
// disagree.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// etagFor derives the strong validator for a response body: its
// SHA-256 truncated to 16 bytes, quoted per RFC 9110. Bodies are
// deterministic per request tuple, so equal tags mean equal bytes.
func etagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatch reports whether an If-None-Match header value matches
// etag, honoring the wildcard and comparing weakly (a W/ prefix on a
// candidate is ignored — for bodies this deterministic, weak and
// strong coincide).
func etagMatch(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(cand), "W/"))
		if cand != "" && (cand == "*" || cand == etag) {
			return true
		}
	}
	return false
}

// writeCachedJSON is writeJSON for deterministic bodies: it stamps
// the strong ETag, answers a matching If-None-Match with 304 Not
// Modified (headers only), reports the fleet cache's verdict via
// X-Cache (omitted for CacheBypass), and applies cacheControl when
// the route sets one.
func writeCachedJSON(w http.ResponseWriter, r *http.Request, v any, st CacheStatus, cacheControl string) {
	body, err := encodeJSON(v)
	if err != nil {
		writeEncodeFailure(w, r, v, err)
		return
	}
	h := w.Header()
	etag := etagFor(body)
	h.Set("ETag", etag)
	if cacheControl != "" {
		h.Set("Cache-Control", cacheControl)
	}
	if st != "" && st != CacheBypass {
		h.Set("X-Cache", string(st))
	}
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		requestLogger(r.Context()).Warn("writing response", "component", "http", "type", fmt.Sprintf("%T", v), "err", err)
	}
}

// writeJSON encodes v before touching the ResponseWriter, so an
// unencodable value (a NaN that crept into a float field, say)
// becomes a logged 500 with a JSON error body instead of a silent
// 200 with a truncated payload. r supplies the request-scoped logger,
// so the error paths carry the request id.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	body, err := encodeJSON(v)
	if err != nil {
		writeEncodeFailure(w, r, v, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		// The response line is already on the wire; all we can do for
		// a dead client is note it.
		requestLogger(r.Context()).Warn("writing response", "component", "http", "type", fmt.Sprintf("%T", v), "err", err)
	}
}

// writeEncodeFailure is the shared encode-error tail of writeJSON and
// writeCachedJSON.
func writeEncodeFailure(w http.ResponseWriter, r *http.Request, v any, err error) {
	requestLogger(r.Context()).Error("encoding response", "component", "http", "type", fmt.Sprintf("%T", v), "err", err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "{\"error\": %q}\n", "gpuperf: encoding response: "+err.Error())
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, r, status, map[string]string{"error": err.Error()})
}
