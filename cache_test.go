package gpuperf

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"gpuperf/internal/resultstore"
)

// cacheTestFleet builds a private fleet seeded with the shared test
// session's calibration, so cache tests measure the cache, not a
// 6-SM calibration per test.
func cacheTestFleet(t *testing.T, opt FleetOptions) *Fleet {
	t.Helper()
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	if opt.DefaultDevice == "" {
		opt.DefaultDevice = "gtx285-6sm"
	}
	opt.CalibrationDir = dir
	return NewFleet(opt)
}

// TestRequestFingerprintSeparation: every knob that can change the
// response separates two keys; nothing else does.
func TestRequestFingerprintSeparation(t *testing.T) {
	base := Request{Kernel: "matmul16", Size: 64, Seed: 7}
	const fp = "aaaa"
	baseKey := analyzeKey(base, fp)
	if len(baseKey) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", baseKey)
	}

	mutations := map[string]string{
		"kernel":      analyzeKey(Request{Kernel: "matmul8", Size: 64, Seed: 7}, fp),
		"size":        analyzeKey(Request{Kernel: "matmul16", Size: 128, Seed: 7}, fp),
		"seed":        analyzeKey(Request{Kernel: "matmul16", Size: 64, Seed: 8}, fp),
		"measure":     analyzeKey(Request{Kernel: "matmul16", Size: 64, Seed: 7, Measure: true}, fp),
		"skip_verify": analyzeKey(Request{Kernel: "matmul16", Size: 64, Seed: 7, SkipVerify: true}, fp),
		"device fp":   analyzeKey(base, "bbbb"),
		"op":          adviseKey(base, fp),
	}
	seen := map[string]string{baseKey: "base"}
	for knob, key := range mutations {
		if prev, dup := seen[key]; dup {
			t.Errorf("changing %s collides with %s", knob, prev)
		}
		seen[key] = knob
	}

	// The request's Parallelism and Device NAME are absent from the
	// pre-image: neither can change the response's bytes (results are
	// bit-identical at any worker count; the hardware fingerprint
	// already keys the device).
	para := base
	para.Parallelism = 4
	para.Device = "some-alias"
	if analyzeKey(para, fp) != baseKey {
		t.Error("Parallelism or Device name leaked into the fingerprint")
	}

	// Advise ignores Measure/SkipVerify, so its key must too.
	if adviseKey(para, fp) != adviseKey(Request{Kernel: "matmul16", Size: 64, Seed: 7, Measure: true, SkipVerify: true}, fp) {
		t.Error("adviseKey separates on options Advise ignores")
	}
}

// TestCompareFingerprint: the device set is order-independent for a
// fixed baseline, and the baseline (which anchors every speedup)
// separates.
func TestCompareFingerprint(t *testing.T) {
	req := CompareRequest{Kernel: "spmv-ell", Size: 4096}
	ab := compareKey(req, []string{"fpA", "fpB"}, "fpA")
	ba := compareKey(req, []string{"fpB", "fpA"}, "fpA")
	if ab != ba {
		t.Error("reordering the device set with the same baseline separated keys")
	}
	if compareKey(req, []string{"fpA", "fpB"}, "fpB") == ab {
		t.Error("changing the baseline did not separate keys")
	}
	if compareKey(req, []string{"fpA", "fpC"}, "fpA") == ab {
		t.Error("changing the device set did not separate keys")
	}
}

// TestFingerprintNormalization: "size 0" and the kernel's explicit
// default size are the same request, so they must share a slot after
// the fleet's normalize pass.
func TestFingerprintNormalization(t *testing.T) {
	f := NewFleet(FleetOptions{})
	implicit := Request{Kernel: "spmv-ell"}
	explicit := Request{Kernel: "spmv-ell", Size: 8192, Seed: 1}
	for _, r := range []*Request{&implicit, &explicit} {
		if err := f.normalize(r); err != nil {
			t.Fatal(err)
		}
	}
	if implicit != explicit {
		t.Fatalf("normalize disagreed: %+v vs %+v", implicit, explicit)
	}
	if analyzeKey(implicit, "fp") != analyzeKey(explicit, "fp") {
		t.Error("default-size and explicit-default requests got different keys")
	}
}

// TestFleetCacheBitIdentical: a cached answer is byte-for-byte the
// computed one — across MISS/HIT and against an uncached fleet.
func TestFleetCacheBitIdentical(t *testing.T) {
	f := cacheTestFleet(t, FleetOptions{})
	ctx := context.Background()
	req := Request{Kernel: "matmul16", Size: 64, Seed: 7, Measure: true}

	cold, st, err := f.AnalyzeCached(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheMiss {
		t.Fatalf("first request: %s, want MISS", st)
	}
	// Repeat with a different worker count and a renamed size=0 spelling
	// of the same tuple: still the same slot.
	warm, st, err := f.AnalyzeCached(ctx, Request{Kernel: "matmul16", Size: 64, Seed: 7, Measure: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheHit {
		t.Fatalf("repeat: %s, want HIT", st)
	}

	bare := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: f.opt.CalibrationDir, DisableCache: true})
	fresh, st, err := bare.AnalyzeCached(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st != CacheBypass {
		t.Fatalf("DisableCache fleet reported %s, want BYPASS", st)
	}
	// Uptime, request counts and engine counters are live on every
	// fleet; the CACHE fields proper must all be zero with caching
	// disabled.
	s := bare.CacheStats()
	s.Engine, s.Requests, s.UptimeSeconds = EngineCounters{}, nil, 0
	if bs := bare.CacheStats(); bs.Enabled || !reflect.DeepEqual(s, CacheStats{}) {
		t.Errorf("DisableCache fleet has live cache stats: %+v", s)
	} else if bs.Engine.BlocksSimulated == 0 {
		// The engine counters ride on /v1/stats but are independent of
		// the result cache: they stay live with caching disabled.
		t.Errorf("DisableCache fleet lost its engine counters: %+v", bs.Engine)
	}

	// PhaseSeconds is wall-clock telemetry, deliberately outside the
	// determinism contract: the cached HIT replays cold's breakdown
	// verbatim, but the bypass fleet's fresh computation times its own.
	fresh.Diagnostics.PhaseSeconds = cold.Diagnostics.PhaseSeconds
	for name, v := range map[string]*Result{"hit": warm, "uncached": fresh} {
		a, _ := json.Marshal(cold)
		b, _ := json.Marshal(v)
		if !bytes.Equal(a, b) {
			t.Errorf("%s result differs from the cold computed one:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// TestFleetCacheDeviceRename: two catalog names for identical
// hardware share one slot — the fingerprint keys the cache, exactly
// like the calibration cache ("renames don't separate").
func TestFleetCacheDeviceRename(t *testing.T) {
	dev, err := DefaultCatalog().Resolve("gtx285-6sm")
	if err != nil {
		t.Fatal(err)
	}
	cat := NewDeviceCatalog()
	for _, name := range []string{"alpha", "beta"} {
		if err := cat.Register(name, dev); err != nil {
			t.Fatal(err)
		}
	}
	f := cacheTestFleet(t, FleetOptions{Catalog: cat, DefaultDevice: "alpha"})
	ctx := context.Background()

	if _, st, err := f.AnalyzeCached(ctx, Request{Kernel: "matmul16", Size: 64, Device: "alpha"}); err != nil || st != CacheMiss {
		t.Fatalf("alpha: %s, %v", st, err)
	}
	res, st, err := f.AnalyzeCached(ctx, Request{Kernel: "matmul16", Size: 64, Device: "beta"})
	if err != nil || st != CacheHit {
		t.Fatalf("beta after alpha: %s, %v — identical hardware must share a slot", st, err)
	}
	// The cached body still echoes the first resolver's view; only the
	// hardware matters for the key.
	if res.Device != "alpha" {
		t.Logf("note: cached result echoes first requester's name %q", res.Device)
	}
}

// TestFleetSingleflight: N identical concurrent requests cost exactly
// one simulation; everyone else is a hit or coalesces onto the
// leader. Run with -race, this is also the cache's data-race proof.
func TestFleetSingleflight(t *testing.T) {
	f := cacheTestFleet(t, FleetOptions{})
	ctx := context.Background()
	req := Request{Kernel: "spmv-ell", Size: 2048, Seed: 5}

	const n = 8
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := f.AnalyzeCached(ctx, req)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	st := f.CacheStats()
	if st.Misses != 1 {
		t.Errorf("%d simulations ran, want exactly 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Errorf("hits %d + coalesced %d != %d followers", st.Hits, st.Coalesced, n-1)
	}
	blob, _ := json.Marshal(results[0])
	for i := 1; i < n; i++ {
		b, _ := json.Marshal(results[i])
		if !bytes.Equal(blob, b) {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

// TestFleetCacheDiskPersistence: with CacheDir set, hits survive
// fleet restarts; a corrupt slot degrades to a recompute that repairs
// the file, never a corrupt answer.
func TestFleetCacheDiskPersistence(t *testing.T) {
	cacheDir := t.TempDir()
	opt := FleetOptions{CacheDir: cacheDir}
	ctx := context.Background()
	req := Request{Kernel: "matmul16", Size: 64, Seed: 3}

	f1 := cacheTestFleet(t, opt)
	calDir := f1.opt.CalibrationDir
	cold, st, err := f1.AnalyzeCached(ctx, req)
	if err != nil || st != CacheMiss {
		t.Fatalf("cold: %s, %v", st, err)
	}
	coldBlob, _ := json.Marshal(cold)

	slots, err := filepath.Glob(filepath.Join(cacheDir, "res-*.json"))
	if err != nil || len(slots) != 1 {
		t.Fatalf("want exactly one slot file, got %v (%v)", slots, err)
	}
	slot := slots[0]
	// The slot's name is the content address of the normalized request.
	norm := req
	a1, _ := f1.Session("")
	if err := f1.normalize(&norm); err != nil {
		t.Fatal(err)
	}
	want := resultstore.SlotPath(cacheDir, analyzeKey(norm, DeviceFingerprint(a1.Device())))
	if slot != want {
		t.Errorf("slot %s, want %s", slot, want)
	}

	// Restart: a fresh fleet's first answer comes from disk.
	f2 := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir, CacheDir: cacheDir})
	res, st, err := f2.AnalyzeCached(ctx, req)
	if err != nil || st != CacheHit {
		t.Fatalf("after restart: %s, %v", st, err)
	}
	if b, _ := json.Marshal(res); !bytes.Equal(coldBlob, b) {
		t.Error("disk-served result differs from the computed one")
	}
	if s := f2.CacheStats(); s.DiskHits != 1 {
		t.Errorf("restart stats: %+v, want one disk hit", s)
	}

	// Truncate the slot: the next fleet recomputes (MISS), repairs the
	// file, and still answers bit-identically.
	if err := os.WriteFile(slot, []byte(`{"version":1,`), 0644); err != nil {
		t.Fatal(err)
	}
	f3 := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir, CacheDir: cacheDir})
	res, st, err = f3.AnalyzeCached(ctx, req)
	if err != nil || st != CacheMiss {
		t.Fatalf("corrupt slot: %s, %v — must degrade to a recompute", st, err)
	}
	// A recompute re-times its phases; everything else must match.
	stripPhases(cold, res)
	normBlob, _ := json.Marshal(cold)
	if b, _ := json.Marshal(res); !bytes.Equal(normBlob, b) {
		t.Error("recomputed result differs")
	}
	f4 := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir, CacheDir: cacheDir})
	if _, st, err := f4.AnalyzeCached(ctx, req); err != nil || st != CacheHit {
		t.Fatalf("after repair: %s, %v — the recompute should have rewritten the slot", st, err)
	}
}

// TestFleetCompareCached: compare answers cache like the rest —
// MISS then HIT, and a reordered device set with the same baseline
// shares the slot.
func TestFleetCompareCached(t *testing.T) {
	f := cacheTestFleet(t, FleetOptions{})
	ctx := context.Background()
	req := CompareRequest{Kernel: "matmul16", Size: 64, Devices: []string{"gtx285-6sm", "gtx285-3sm"}}

	cold, st, err := f.CompareCached(ctx, req)
	if err != nil || st != CacheMiss {
		t.Fatalf("cold compare: %s, %v", st, err)
	}
	// Same baseline (first device), reordered tail — in a two-device
	// set reordering WOULD move the baseline, so repeat verbatim first.
	warm, st, err := f.CompareCached(ctx, req)
	if err != nil || st != CacheHit {
		t.Fatalf("repeat compare: %s, %v", st, err)
	}
	a, _ := json.Marshal(cold)
	b, _ := json.Marshal(warm)
	if !bytes.Equal(a, b) {
		t.Error("cached comparison differs from computed")
	}
	// Flipping the baseline is a different question: new slot.
	if _, st, err := f.CompareCached(ctx, CompareRequest{Kernel: "matmul16", Size: 64, Devices: []string{"gtx285-3sm", "gtx285-6sm"}}); err != nil {
		t.Fatal(err)
	} else if st != CacheMiss {
		t.Errorf("baseline flip: %s, want MISS", st)
	}
}
