package gpuperf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gpuperf/internal/obs"
	"gpuperf/internal/resultstore"
)

// FleetOptions configures a Fleet.
type FleetOptions struct {
	// Catalog names the devices the fleet serves. Nil means
	// DefaultCatalog().
	Catalog *DeviceCatalog
	// Registry resolves kernel names for every session. Nil means
	// DefaultRegistry.
	Registry *Registry
	// DefaultDevice is the catalog entry used when a request leaves
	// its Device field empty ("" = DefaultCatalogDevice). It must name
	// a catalog entry; the first request to rely on it fails otherwise.
	DefaultDevice string
	// Parallelism is the functional-simulation worker ceiling per
	// request, applied to every session (0 = all host cores).
	Parallelism int
	// CalibrationDir, when set, is the fleet's on-disk calibration
	// cache: one file per device fingerprint, shared by every session
	// (and every fleet pointed at the same directory).
	CalibrationDir string
	// BatchConcurrency caps how many requests AnalyzeBatch and Compare
	// fan out at once (0 = GOMAXPROCS).
	BatchConcurrency int
	// MaxConcurrent is the fleet-wide admission limit: how many
	// requests may hold resources at once across ALL devices — one
	// semaphore shared by every session, so adding catalog entries
	// never multiplies the operator's resource budget. 0 = GOMAXPROCS.
	MaxConcurrent int
	// CacheDir, when set, is the fleet's on-disk result cache: one
	// content-addressed slot per request fingerprint, surviving
	// restarts and shared by every fleet (and process) pointed at the
	// same directory — the result-side sibling of CalibrationDir.
	CacheDir string
	// CacheBytes is the in-memory result-cache budget (sum of cached
	// payload sizes). 0 means DefaultCacheBytes; a negative value
	// disables the memory tier, leaving disk-only caching when
	// CacheDir is set.
	CacheBytes int64
	// DisableCache turns the result cache off entirely: every
	// Analyze/Advise/Compare recomputes and reports CacheBypass.
	DisableCache bool
	// DisableBlockReplay forces every session's functional
	// simulations through live per-block execution (see
	// Options.DisableBlockReplay). Results are bit-identical either
	// way.
	DisableBlockReplay bool
	// SubmissionDir, when set, persists accepted kernel submissions
	// (POST /v1/kernels) as on-disk slots so a daemon restart keeps
	// them; empty keeps the submission store in memory only.
	SubmissionDir string
	// SubmissionLimits are the per-submission ceilings and store
	// budgets for user-submitted kernels; zero fields take the
	// defaults in internal/ingest.
	SubmissionLimits SubmissionLimits
}

// Fleet is the multi-device front door: one lazily-calibrated
// Analyzer session per catalog entry, created on first use and
// reused for every later request naming that device, all behind one
// shared admission semaphore and one calibration cache directory.
// Safe for concurrent use — a service handles all traffic with one
// Fleet.
type Fleet struct {
	opt     FleetOptions
	catalog *DeviceCatalog
	reg     *Registry
	def     string
	admit   chan struct{}
	// store is the result cache behind Analyze/Advise/Compare (nil
	// when DisableCache): deterministic requests are memoized by
	// fingerprint and identical in-flight requests coalesce onto one
	// simulation. Measure stays uncached — it is calibration-free and
	// cheap.
	store *resultstore.Store
	// subs holds accepted kernel submissions; subsErr defers a
	// submission-store open failure (an unwritable SubmissionDir) to
	// the first SubmitKernel instead of failing fleet construction.
	subs    *ingestStore
	subsErr error

	// start anchors uptime_seconds; metrics is the fleet's /metrics
	// registry (always non-nil); reqOps counts front-door calls by
	// operation and phaseHist distributes computed requests' phase
	// timings.
	start     time.Time
	metrics   *obs.Registry
	reqOps    *obs.CounterVec
	phaseHist *obs.HistogramVec

	mu       sync.Mutex
	sessions map[string]*Analyzer
}

// NewFleet builds a fleet. Sessions (and their calibrations) are
// created lazily per device on first use.
func NewFleet(opt FleetOptions) *Fleet {
	catalog := opt.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	// Clone the registry so submission entries registered at runtime
	// never leak into the configured (possibly process-global) one.
	reg := opt.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	reg = reg.Clone()
	def := opt.DefaultDevice
	if def == "" {
		def = DefaultCatalogDevice
	}
	limit := opt.MaxConcurrent
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	var store *resultstore.Store
	if !opt.DisableCache {
		budget := opt.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		} else if budget < 0 {
			budget = 0
		}
		store = resultstore.New(resultstore.Config{MemoryBytes: budget, Dir: opt.CacheDir})
	}
	f := &Fleet{
		opt:      opt,
		catalog:  catalog,
		reg:      reg,
		def:      def,
		admit:    make(chan struct{}, limit),
		store:    store,
		start:    time.Now(),
		sessions: map[string]*Analyzer{},
	}
	f.openSubmissions()
	f.registerMetrics()
	return f
}

// Metrics returns the fleet's metric registry — what GET /metrics
// renders. Always non-nil; library embedders can register their own
// instruments beside the fleet's.
func (f *Fleet) Metrics() *Metrics { return f.metrics }

// Catalog returns the fleet's device catalog.
func (f *Fleet) Catalog() *DeviceCatalog { return f.catalog }

// Registry returns the fleet's kernel registry.
func (f *Fleet) Registry() *Registry { return f.reg }

// Kernels lists the fleet's available kernel specs, sorted by name.
func (f *Fleet) Kernels() []KernelSpec { return f.reg.Specs() }

// Devices lists the fleet's device profiles, sorted by name — the
// GET /v1/devices response.
func (f *Fleet) Devices() []DeviceProfile { return f.catalog.Profiles() }

// DefaultDevice returns the catalog name empty-Device requests
// resolve to.
func (f *Fleet) DefaultDevice() string { return f.def }

// Session returns the per-device Analyzer for the named catalog
// entry ("" = the fleet default), creating it on first use. All
// sessions share the fleet's admission semaphore and calibration
// cache directory; each owns its device's calibration.
func (f *Fleet) Session(device string) (*Analyzer, error) {
	if device == "" {
		device = f.def
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if a, ok := f.sessions[device]; ok {
		return a, nil
	}
	dev, err := f.catalog.Resolve(device)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(Options{
		Device:             dev,
		Registry:           f.reg,
		Parallelism:        f.opt.Parallelism,
		CalibrationDir:     f.opt.CalibrationDir,
		BatchConcurrency:   f.opt.BatchConcurrency,
		DisableBlockReplay: f.opt.DisableBlockReplay,
	}, f.admit)
	f.sessions[device] = a
	return a, nil
}

// EngineCounters sums the simulation-engine counters across every
// session the fleet has created.
func (f *Fleet) EngineCounters() EngineCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total EngineCounters
	for _, a := range f.sessions {
		c := a.EngineCounters()
		total.BlocksSimulated += c.BlocksSimulated
		total.BlocksReplayed += c.BlocksReplayed
		total.BatchedRuns += c.BatchedRuns
		total.BatchedInstrs += c.BatchedInstrs
	}
	return total
}

// route resolves the request's device to its session and pins the
// resolved name into the request so results echo the catalog name.
func (f *Fleet) route(req *Request) (*Analyzer, error) {
	a, err := f.Session(req.Device)
	if err != nil {
		return nil, err
	}
	req.Device = a.Device().Name
	return a, nil
}

// normalize pins the registry's concrete size and seed into the
// request (the cheap prepare half, no build), so cache keys treat
// "size 0" and the kernel's explicit default as the same request.
// Unverified (submitted) kernels also get SkipVerify pinned true, so
// a caller toggling the flag cannot split one submission's results
// across two cache slots.
func (f *Fleet) normalize(req *Request) error {
	spec, p, err := f.reg.prepare(req.Kernel, Params{Size: req.Size, Seed: req.Seed})
	if err != nil {
		return err
	}
	req.Size, req.Seed = p.Size, p.Seed
	if spec.Unverified {
		req.SkipVerify = true
	}
	return nil
}

// Analyze routes the request to its device's session and runs the
// full workflow there (see Analyzer.Analyze), served through the
// fleet's result cache.
func (f *Fleet) Analyze(ctx context.Context, req Request) (*Result, error) {
	res, _, err := f.AnalyzeCached(ctx, req)
	return res, err
}

// AnalyzeCached is Analyze also reporting how the result cache served
// the request — the HTTP layer's X-Cache header. A repeat of an
// identical request (same kernel, normalized size/seed,
// output-affecting options and device hardware) is a hit; identical
// requests in flight at once coalesce onto one simulation.
func (f *Fleet) AnalyzeCached(ctx context.Context, req Request) (*Result, CacheStatus, error) {
	f.countRequest("analyze")
	return f.analyzeCached(ctx, req)
}

// analyzeCached is AnalyzeCached without the per-op request count —
// the path internal fan-outs (Compare's per-device analyses) take so
// they don't inflate the "analyze" counter.
func (f *Fleet) analyzeCached(ctx context.Context, req Request) (*Result, CacheStatus, error) {
	a, err := f.route(&req)
	if err != nil {
		return nil, CacheBypass, err
	}
	if f.store == nil {
		res, err := f.analyze(ctx, a, req)
		return res, CacheBypass, err
	}
	if err := f.normalize(&req); err != nil {
		return nil, CacheBypass, err
	}
	key := analyzeKey(req, DeviceFingerprint(a.Device()))
	return cachedFetch(ctx, f, key, func(ctx context.Context) (*Result, error) {
		return f.analyze(ctx, a, req)
	})
}

// analyze runs one session analysis and feeds its phase breakdown
// into the fleet's phase histogram — computed requests only; cache
// hits replay the original breakdown in Diagnostics but record no new
// samples.
func (f *Fleet) analyze(ctx context.Context, a *Analyzer, req Request) (*Result, error) {
	res, err := a.Analyze(ctx, req)
	if err == nil {
		for name, sec := range res.Diagnostics.PhaseSeconds {
			f.phaseHist.With(name).Observe(sec)
		}
	}
	return res, err
}

// Advise routes the request to its device's session and runs the
// counterfactual advisor there (see Analyzer.Advise), served through
// the fleet's result cache.
func (f *Fleet) Advise(ctx context.Context, req Request) (*Advice, error) {
	adv, _, err := f.AdviseCached(ctx, req)
	return adv, err
}

// AdviseCached is Advise also reporting how the result cache served
// the request. Advice ignores Measure and SkipVerify, so requests
// differing only there share one cached slot.
func (f *Fleet) AdviseCached(ctx context.Context, req Request) (*Advice, CacheStatus, error) {
	f.countRequest("advise")
	a, err := f.route(&req)
	if err != nil {
		return nil, CacheBypass, err
	}
	if f.store == nil {
		adv, err := a.Advise(ctx, req)
		return adv, CacheBypass, err
	}
	if err := f.normalize(&req); err != nil {
		return nil, CacheBypass, err
	}
	key := adviseKey(req, DeviceFingerprint(a.Device()))
	return cachedFetch(ctx, f, key, func(ctx context.Context) (*Advice, error) {
		return a.Advise(ctx, req)
	})
}

// Measure routes the request to its device's session and runs only
// the device simulator there — no calibration cost (see
// Analyzer.Measure).
func (f *Fleet) Measure(ctx context.Context, req Request) (*Measurement, error) {
	f.countRequest("measure")
	a, err := f.route(&req)
	if err != nil {
		return nil, err
	}
	return a.Measure(ctx, req)
}

// AnalyzeBatch analyzes many requests concurrently, routing each to
// its device's session. results[i] answers reqs[i]; failures are
// joined like Analyzer.AnalyzeBatch, wrapped with index and kernel.
func (f *Fleet) AnalyzeBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	return analyzeBatch(ctx, f.opt.BatchConcurrency, reqs, f.Analyze)
}

// CompareRequest asks how one kernel behaves across a set of catalog
// devices — the paper's architect questions ("would a 32-bank part
// fix my conflicts?") as one call.
type CompareRequest struct {
	// Kernel names a registry entry; Size and Seed select the problem
	// instance, built identically for every device per (size, seed).
	Kernel string `json:"kernel"`
	Size   int    `json:"size,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Parallelism overrides each per-device run's worker count like
	// Request.Parallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// Devices are the catalog entries to compare; at least one is
	// required, duplicates are rejected.
	Devices []string `json:"devices"`
	// Baseline is the device speedups are measured against; empty
	// means Devices[0]. It must be one of Devices.
	Baseline string `json:"baseline,omitempty"`
	// Measure additionally times each device on the timing simulator,
	// filling every entry's MeasuredSeconds — predicted-vs-measured
	// agreement across the whole device set.
	Measure bool `json:"measure,omitempty"`
}

// Comparison is the fully serializable outcome of one cross-device
// comparison: one entry per requested device, ranked fastest first
// by predicted time (ties broken by device name — the ranking is
// deterministic at any parallelism). Like Result, every field
// round-trips through JSON unchanged; the HTTP service returns this
// struct verbatim.
type Comparison struct {
	// Kernel, Size and Seed echo the request after normalization.
	Kernel string `json:"kernel"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	// Baseline names the device every Speedup is relative to.
	Baseline string `json:"baseline"`
	// Entries holds one verdict per device, ranked fastest first.
	Entries []ComparisonEntry `json:"entries"`
	// Best is the top-ranked device name.
	Best string `json:"best"`
}

// ComparisonEntry is one device's verdict in a Comparison.
type ComparisonEntry struct {
	// Device is the catalog name; Fingerprint the canonical hardware
	// digest (the calibration-cache key).
	Device      string `json:"device"`
	Fingerprint string `json:"fingerprint"`
	// PredictedSeconds is the calibrated model's execution-time
	// prediction on this device; Bottleneck its verdict.
	PredictedSeconds float64 `json:"predicted_seconds"`
	Bottleneck       string  `json:"bottleneck"`
	// Speedup is the baseline device's predicted time divided by this
	// device's (>1 = faster than baseline).
	Speedup float64 `json:"speedup"`
	// MeasuredSeconds is the timing simulator's result (only when the
	// request set Measure).
	MeasuredSeconds float64 `json:"measured_seconds,omitempty"`
}

// validateCompare fail-fasts a compare request against a catalog:
// non-empty duplicate-free device set, every name resolvable, the
// baseline a member. It returns the effective baseline and the device
// set's hardware fingerprints (parallel to req.Devices) — the
// compare cache key's raw material. Shared by Fleet.Compare and the
// router, so local and proxied requests reject identically.
func validateCompare(cat *DeviceCatalog, req CompareRequest) (baseline string, fps []string, err error) {
	if len(req.Devices) == 0 {
		return "", nil, fmt.Errorf("%w: compare needs at least one device", ErrInvalidRequest)
	}
	seen := map[string]bool{}
	fps = make([]string, len(req.Devices))
	for i, d := range req.Devices {
		if seen[d] {
			return "", nil, fmt.Errorf("%w: duplicate device %q in compare set", ErrInvalidRequest, d)
		}
		seen[d] = true
		dev, err := cat.Resolve(d)
		if err != nil {
			return "", nil, err
		}
		fps[i] = DeviceFingerprint(dev)
	}
	baseline = req.Baseline
	if baseline == "" {
		baseline = req.Devices[0]
	}
	if !seen[baseline] {
		return "", nil, fmt.Errorf("%w: baseline %q is not in the compare set %v", ErrInvalidRequest, baseline, req.Devices)
	}
	return baseline, fps, nil
}

// compareFanout runs one analysis per compare-set device through
// analyzeFn — a local session for Fleet.Compare, a remote worker for
// the router's scatter-gather — then ranks the entries and assembles
// the Comparison. One implementation, so a proxied comparison is
// byte-identical to a local one.
func compareFanout(ctx context.Context, cat *DeviceCatalog, limit int, req CompareRequest, baseline string,
	analyzeFn func(context.Context, Request) (*Result, error)) (*Comparison, error) {
	entries := make([]ComparisonEntry, len(req.Devices))
	errs := make([]error, len(req.Devices))
	sizes := make([]int, len(req.Devices))
	seeds := make([]int64, len(req.Devices))
	forEachLimit(len(req.Devices), limit, func(i int) {
		name := req.Devices[i]
		res, err := analyzeFn(ctx, Request{
			Kernel:      req.Kernel,
			Device:      name,
			Size:        req.Size,
			Seed:        req.Seed,
			Parallelism: req.Parallelism,
			Measure:     req.Measure,
			SkipVerify:  true,
		})
		if err != nil {
			errs[i] = fmt.Errorf("device %q: %w", name, err)
			return
		}
		dev, _ := cat.Lookup(name)
		entries[i] = ComparisonEntry{
			Device:           name,
			Fingerprint:      DeviceFingerprint(dev),
			PredictedSeconds: res.PredictedSeconds,
			Bottleneck:       res.Bottleneck,
			MeasuredSeconds:  res.MeasuredSeconds,
		}
		sizes[i], seeds[i] = res.Size, res.Seed
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	var base float64
	for i := range entries {
		if entries[i].Device == baseline {
			base = entries[i].PredictedSeconds
		}
	}
	for i := range entries {
		if entries[i].PredictedSeconds > 0 {
			entries[i].Speedup = base / entries[i].PredictedSeconds
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].PredictedSeconds != entries[j].PredictedSeconds {
			return entries[i].PredictedSeconds < entries[j].PredictedSeconds
		}
		return entries[i].Device < entries[j].Device
	})
	return &Comparison{
		Kernel:   req.Kernel,
		Size:     sizes[0],
		Seed:     seeds[0],
		Baseline: baseline,
		Entries:  entries,
		Best:     entries[0].Device,
	}, nil
}

// Compare runs one kernel across the requested device set and ranks
// the outcomes, served through the fleet's result cache. Each
// device's analysis runs in that device's session (calibrating it on
// first use, cached under its fingerprint); verification is skipped —
// the functional output is the same everywhere, only the timing
// differs. Any device failing fails the whole comparison, wrapped
// with the device name.
func (f *Fleet) Compare(ctx context.Context, req CompareRequest) (*Comparison, error) {
	c, _, err := f.CompareCached(ctx, req)
	return c, err
}

// CompareCached is Compare also reporting how the result cache served
// the request. The key is order-independent over the device set (as
// hardware fingerprints) given the same effective baseline, so
// reordering the devices field re-serves the cached ranking.
func (f *Fleet) CompareCached(ctx context.Context, req CompareRequest) (*Comparison, CacheStatus, error) {
	f.countRequest("compare")
	baseline, fps, err := validateCompare(f.catalog, req)
	if err != nil {
		return nil, CacheBypass, err
	}
	compute := func(ctx context.Context) (*Comparison, error) {
		// Per-device fan-out analyses skip the request counter: the
		// caller asked for one compare, not N analyzes.
		return compareFanout(ctx, f.catalog, f.opt.BatchConcurrency, req, baseline,
			func(ctx context.Context, r Request) (*Result, error) {
				res, _, err := f.analyzeCached(ctx, r)
				return res, err
			})
	}
	if f.store == nil {
		c, err := compute(ctx)
		return c, CacheBypass, err
	}
	norm := req
	if _, p, err := f.reg.prepare(req.Kernel, Params{Size: req.Size, Seed: req.Seed}); err != nil {
		return nil, CacheBypass, err
	} else {
		norm.Size, norm.Seed = p.Size, p.Seed
	}
	var baselineFP string
	for i, d := range req.Devices {
		if d == baseline {
			baselineFP = fps[i]
		}
	}
	key := compareKey(norm, fps, baselineFP)
	return cachedFetch(ctx, f, key, compute)
}

// FleetHealth is the GET /healthz wire type: overall readiness plus
// one entry per device session the fleet has opened (the default
// device always appears, opened or not).
type FleetHealth struct {
	// Status is "ok" once the default device's calibration is loaded
	// or built, "error" if that calibration failed, "starting" before
	// either — the service answers 503 until "ok".
	Status  string         `json:"status"`
	Devices []DeviceHealth `json:"devices"`
}

// DeviceHealth is one device's readiness in a FleetHealth.
type DeviceHealth struct {
	Device      string `json:"device"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Default     bool   `json:"default,omitempty"`
	// Calibrated reports the session's calibration finished cleanly;
	// FromCache that it was loaded from CalibrationDir rather than
	// measured.
	Calibrated bool   `json:"calibrated"`
	FromCache  bool   `json:"from_cache,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Health reports the fleet's readiness without triggering any work:
// probing never opens a session, never starts a calibration, and
// never blocks on one in progress — so a router polling every
// worker's /healthz cannot force workers to calibrate devices their
// shard will never be asked about. Use Session + StartCalibration (or
// the daemon's -precalibrate) to drive readiness.
func (f *Fleet) Health() FleetHealth {
	f.mu.Lock()
	sessions := make(map[string]*Analyzer, len(f.sessions))
	for name, a := range f.sessions {
		sessions[name] = a
	}
	f.mu.Unlock()

	names := make([]string, 0, len(sessions)+1)
	for name := range sessions {
		names = append(names, name)
	}
	if _, ok := sessions[f.def]; !ok {
		names = append(names, f.def)
	}
	sort.Strings(names)

	h := FleetHealth{Status: "starting"}
	for _, name := range names {
		d := DeviceHealth{Device: name, Default: name == f.def}
		if a, ok := sessions[name]; ok {
			d.Fingerprint = DeviceFingerprint(a.Device())
			done, err := a.CalibrationReady()
			d.Calibrated = done && err == nil
			d.FromCache = a.CalibrationFromCache()
			if done && err != nil {
				d.Error = err.Error()
			}
		} else if dev, err := f.catalog.Resolve(name); err == nil {
			d.Fingerprint = DeviceFingerprint(dev)
		}
		if d.Default {
			switch {
			case d.Error != "":
				h.Status = "error"
			case d.Calibrated:
				h.Status = "ok"
			}
		}
		h.Devices = append(h.Devices, d)
	}
	return h
}

// Report renders the comparison as the human-readable ranking the
// gpuperf -compare command prints.
func (c *Comparison) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %s (size %d, seed %d) across %d devices, baseline %s\n",
		c.Kernel, c.Size, c.Seed, len(c.Entries), c.Baseline)
	for i, e := range c.Entries {
		fmt.Fprintf(&b, "%2d. %-24s predicted %9.6g ms  %5.2fx vs baseline  bottleneck: %s",
			i+1, e.Device, e.PredictedSeconds*1e3, e.Speedup, e.Bottleneck)
		if e.MeasuredSeconds > 0 {
			fmt.Fprintf(&b, "  (measured %.6g ms)", e.MeasuredSeconds*1e3)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
