package gpuperf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// FleetOptions configures a Fleet.
type FleetOptions struct {
	// Catalog names the devices the fleet serves. Nil means
	// DefaultCatalog().
	Catalog *DeviceCatalog
	// Registry resolves kernel names for every session. Nil means
	// DefaultRegistry.
	Registry *Registry
	// DefaultDevice is the catalog entry used when a request leaves
	// its Device field empty ("" = DefaultCatalogDevice). It must name
	// a catalog entry; the first request to rely on it fails otherwise.
	DefaultDevice string
	// Parallelism is the functional-simulation worker ceiling per
	// request, applied to every session (0 = all host cores).
	Parallelism int
	// CalibrationDir, when set, is the fleet's on-disk calibration
	// cache: one file per device fingerprint, shared by every session
	// (and every fleet pointed at the same directory).
	CalibrationDir string
	// BatchConcurrency caps how many requests AnalyzeBatch and Compare
	// fan out at once (0 = GOMAXPROCS).
	BatchConcurrency int
	// MaxConcurrent is the fleet-wide admission limit: how many
	// requests may hold resources at once across ALL devices — one
	// semaphore shared by every session, so adding catalog entries
	// never multiplies the operator's resource budget. 0 = GOMAXPROCS.
	MaxConcurrent int
}

// Fleet is the multi-device front door: one lazily-calibrated
// Analyzer session per catalog entry, created on first use and
// reused for every later request naming that device, all behind one
// shared admission semaphore and one calibration cache directory.
// Safe for concurrent use — a service handles all traffic with one
// Fleet.
type Fleet struct {
	opt     FleetOptions
	catalog *DeviceCatalog
	reg     *Registry
	def     string
	admit   chan struct{}

	mu       sync.Mutex
	sessions map[string]*Analyzer
}

// NewFleet builds a fleet. Sessions (and their calibrations) are
// created lazily per device on first use.
func NewFleet(opt FleetOptions) *Fleet {
	catalog := opt.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	reg := opt.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	def := opt.DefaultDevice
	if def == "" {
		def = DefaultCatalogDevice
	}
	limit := opt.MaxConcurrent
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Fleet{
		opt:      opt,
		catalog:  catalog,
		reg:      reg,
		def:      def,
		admit:    make(chan struct{}, limit),
		sessions: map[string]*Analyzer{},
	}
}

// Catalog returns the fleet's device catalog.
func (f *Fleet) Catalog() *DeviceCatalog { return f.catalog }

// Registry returns the fleet's kernel registry.
func (f *Fleet) Registry() *Registry { return f.reg }

// Kernels lists the fleet's available kernel specs, sorted by name.
func (f *Fleet) Kernels() []KernelSpec { return f.reg.Specs() }

// Devices lists the fleet's device profiles, sorted by name — the
// GET /v1/devices response.
func (f *Fleet) Devices() []DeviceProfile { return f.catalog.Profiles() }

// DefaultDevice returns the catalog name empty-Device requests
// resolve to.
func (f *Fleet) DefaultDevice() string { return f.def }

// Session returns the per-device Analyzer for the named catalog
// entry ("" = the fleet default), creating it on first use. All
// sessions share the fleet's admission semaphore and calibration
// cache directory; each owns its device's calibration.
func (f *Fleet) Session(device string) (*Analyzer, error) {
	if device == "" {
		device = f.def
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if a, ok := f.sessions[device]; ok {
		return a, nil
	}
	dev, err := f.catalog.Resolve(device)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(Options{
		Device:           dev,
		Registry:         f.reg,
		Parallelism:      f.opt.Parallelism,
		CalibrationDir:   f.opt.CalibrationDir,
		BatchConcurrency: f.opt.BatchConcurrency,
	}, f.admit)
	f.sessions[device] = a
	return a, nil
}

// route resolves the request's device to its session and pins the
// resolved name into the request so results echo the catalog name.
func (f *Fleet) route(req *Request) (*Analyzer, error) {
	a, err := f.Session(req.Device)
	if err != nil {
		return nil, err
	}
	req.Device = a.Device().Name
	return a, nil
}

// Analyze routes the request to its device's session and runs the
// full workflow there (see Analyzer.Analyze).
func (f *Fleet) Analyze(ctx context.Context, req Request) (*Result, error) {
	a, err := f.route(&req)
	if err != nil {
		return nil, err
	}
	return a.Analyze(ctx, req)
}

// Advise routes the request to its device's session and runs the
// counterfactual advisor there (see Analyzer.Advise).
func (f *Fleet) Advise(ctx context.Context, req Request) (*Advice, error) {
	a, err := f.route(&req)
	if err != nil {
		return nil, err
	}
	return a.Advise(ctx, req)
}

// Measure routes the request to its device's session and runs only
// the device simulator there — no calibration cost (see
// Analyzer.Measure).
func (f *Fleet) Measure(ctx context.Context, req Request) (*Measurement, error) {
	a, err := f.route(&req)
	if err != nil {
		return nil, err
	}
	return a.Measure(ctx, req)
}

// AnalyzeBatch analyzes many requests concurrently, routing each to
// its device's session. results[i] answers reqs[i]; failures are
// joined like Analyzer.AnalyzeBatch, wrapped with index and kernel.
func (f *Fleet) AnalyzeBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	return analyzeBatch(ctx, f.opt.BatchConcurrency, reqs, f.Analyze)
}

// CompareRequest asks how one kernel behaves across a set of catalog
// devices — the paper's architect questions ("would a 32-bank part
// fix my conflicts?") as one call.
type CompareRequest struct {
	// Kernel names a registry entry; Size and Seed select the problem
	// instance, built identically for every device per (size, seed).
	Kernel string `json:"kernel"`
	Size   int    `json:"size,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Parallelism overrides each per-device run's worker count like
	// Request.Parallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// Devices are the catalog entries to compare; at least one is
	// required, duplicates are rejected.
	Devices []string `json:"devices"`
	// Baseline is the device speedups are measured against; empty
	// means Devices[0]. It must be one of Devices.
	Baseline string `json:"baseline,omitempty"`
	// Measure additionally times each device on the timing simulator,
	// filling every entry's MeasuredSeconds — predicted-vs-measured
	// agreement across the whole device set.
	Measure bool `json:"measure,omitempty"`
}

// Comparison is the fully serializable outcome of one cross-device
// comparison: one entry per requested device, ranked fastest first
// by predicted time (ties broken by device name — the ranking is
// deterministic at any parallelism). Like Result, every field
// round-trips through JSON unchanged; the HTTP service returns this
// struct verbatim.
type Comparison struct {
	// Kernel, Size and Seed echo the request after normalization.
	Kernel string `json:"kernel"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	// Baseline names the device every Speedup is relative to.
	Baseline string `json:"baseline"`
	// Entries holds one verdict per device, ranked fastest first.
	Entries []ComparisonEntry `json:"entries"`
	// Best is the top-ranked device name.
	Best string `json:"best"`
}

// ComparisonEntry is one device's verdict in a Comparison.
type ComparisonEntry struct {
	// Device is the catalog name; Fingerprint the canonical hardware
	// digest (the calibration-cache key).
	Device      string `json:"device"`
	Fingerprint string `json:"fingerprint"`
	// PredictedSeconds is the calibrated model's execution-time
	// prediction on this device; Bottleneck its verdict.
	PredictedSeconds float64 `json:"predicted_seconds"`
	Bottleneck       string  `json:"bottleneck"`
	// Speedup is the baseline device's predicted time divided by this
	// device's (>1 = faster than baseline).
	Speedup float64 `json:"speedup"`
	// MeasuredSeconds is the timing simulator's result (only when the
	// request set Measure).
	MeasuredSeconds float64 `json:"measured_seconds,omitempty"`
}

// Compare runs one kernel across the requested device set and ranks
// the outcomes. Each device's analysis runs in that device's session
// (calibrating it on first use, cached under its fingerprint);
// verification is skipped — the functional output is the same
// everywhere, only the timing differs. Any device failing fails the
// whole comparison, wrapped with the device name.
func (f *Fleet) Compare(ctx context.Context, req CompareRequest) (*Comparison, error) {
	if len(req.Devices) == 0 {
		return nil, fmt.Errorf("%w: compare needs at least one device", ErrInvalidRequest)
	}
	seen := map[string]bool{}
	for _, d := range req.Devices {
		if seen[d] {
			return nil, fmt.Errorf("%w: duplicate device %q in compare set", ErrInvalidRequest, d)
		}
		seen[d] = true
		if _, err := f.catalog.Resolve(d); err != nil {
			return nil, err
		}
	}
	baseline := req.Baseline
	if baseline == "" {
		baseline = req.Devices[0]
	}
	if !seen[baseline] {
		return nil, fmt.Errorf("%w: baseline %q is not in the compare set %v", ErrInvalidRequest, baseline, req.Devices)
	}

	entries := make([]ComparisonEntry, len(req.Devices))
	errs := make([]error, len(req.Devices))
	sizes := make([]int, len(req.Devices))
	seeds := make([]int64, len(req.Devices))
	forEachLimit(len(req.Devices), f.opt.BatchConcurrency, func(i int) {
		name := req.Devices[i]
		res, err := f.Analyze(ctx, Request{
			Kernel:      req.Kernel,
			Device:      name,
			Size:        req.Size,
			Seed:        req.Seed,
			Parallelism: req.Parallelism,
			Measure:     req.Measure,
			SkipVerify:  true,
		})
		if err != nil {
			errs[i] = fmt.Errorf("device %q: %w", name, err)
			return
		}
		dev, _ := f.catalog.Lookup(name)
		entries[i] = ComparisonEntry{
			Device:           name,
			Fingerprint:      DeviceFingerprint(dev),
			PredictedSeconds: res.PredictedSeconds,
			Bottleneck:       res.Bottleneck,
			MeasuredSeconds:  res.MeasuredSeconds,
		}
		sizes[i], seeds[i] = res.Size, res.Seed
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	var base float64
	for i := range entries {
		if entries[i].Device == baseline {
			base = entries[i].PredictedSeconds
		}
	}
	for i := range entries {
		if entries[i].PredictedSeconds > 0 {
			entries[i].Speedup = base / entries[i].PredictedSeconds
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].PredictedSeconds != entries[j].PredictedSeconds {
			return entries[i].PredictedSeconds < entries[j].PredictedSeconds
		}
		return entries[i].Device < entries[j].Device
	})
	return &Comparison{
		Kernel:   req.Kernel,
		Size:     sizes[0],
		Seed:     seeds[0],
		Baseline: baseline,
		Entries:  entries,
		Best:     entries[0].Device,
	}, nil
}

// Report renders the comparison as the human-readable ranking the
// gpuperf -compare command prints.
func (c *Comparison) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %s (size %d, seed %d) across %d devices, baseline %s\n",
		c.Kernel, c.Size, c.Seed, len(c.Entries), c.Baseline)
	for i, e := range c.Entries {
		fmt.Fprintf(&b, "%2d. %-24s predicted %9.6g ms  %5.2fx vs baseline  bottleneck: %s",
			i+1, e.Device, e.PredictedSeconds*1e3, e.Speedup, e.Bottleneck)
		if e.MeasuredSeconds > 0 {
			fmt.Fprintf(&b, "  (measured %.6g ms)", e.MeasuredSeconds*1e3)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
