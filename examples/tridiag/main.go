// Case study 2 (paper §5.2): the cyclic-reduction tridiagonal
// solver. Shows the per-step bottleneck migration of Fig. 6, the
// constant-transactions symptom of bank conflicts (Fig. 7b), and
// the ~1.6x win of the padding remedy (Fig. 8) — then verifies both
// solvers against the sequential Thomas algorithm.
//
//	go run ./examples/tridiag [-systems 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/timing"
	"gpuperf/internal/tridiag"
)

const equations = 512

func main() {
	nsys := flag.Int("systems", 64, "number of independent systems")
	flag.Parse()

	cfg := gpu.GTX285()
	fmt.Println("calibrating...")
	cal, err := timing.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	systems := make([]tridiag.System, *nsys)
	for i := range systems {
		systems[i] = tridiag.NewRandom(equations, rng)
	}

	var measured [2]float64
	for i, nbc := range []bool{false, true} {
		name := "CR"
		if nbc {
			name = "CR-NBC (padded)"
		}
		solver, err := kernels.NewCR(cfg, *nsys, equations, nbc, false)
		if err != nil {
			log.Fatal(err)
		}
		mem, err := solver.NewMemory(systems)
		if err != nil {
			log.Fatal(err)
		}
		est, stats, err := model.Predict(cal, solver.Launch(), mem, nil)
		if err != nil {
			log.Fatal(err)
		}

		// Verify: the functional run above already solved in mem.
		worst := 0.0
		for s := 0; s < *nsys; s++ {
			x, err := solver.ReadX(mem, s)
			if err != nil {
				log.Fatal(err)
			}
			if r := systems[s].Residual(x); r > worst {
				worst = r
			}
		}

		mem2, err := solver.NewMemory(systems)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := device.Run(cfg, solver.Launch(), mem2)
		if err != nil {
			log.Fatal(err)
		}
		measured[i] = meas.Seconds

		fmt.Printf("\n=== %s: %d systems x %d equations ===\n", name, *nsys, equations)
		fmt.Printf("worst residual: %.2g (Thomas-algorithm quality)\n", worst)
		fmt.Printf("bank-conflict factor: %.2f\n", stats.BankConflictFactor())
		fmt.Printf("bottleneck: %s; predicted %.4g ms, measured %.4g ms\n",
			est.Bottleneck, est.TotalSeconds*1e3, meas.Seconds*1e3)
		fmt.Println("forward-reduction steps (model):")
		limit := 6
		for _, st := range est.Stages {
			if st.Index > limit {
				break
			}
			fmt.Printf("  step %d: shared %.4g ms, instr %.4g ms -> %s (%d warps)\n",
				st.Index, st.Times[model.CompShared]*1e3,
				st.Times[model.CompInstruction]*1e3, st.Bottleneck, st.Warps)
		}
	}
	fmt.Printf("\npadding speedup: %.2fx (paper: 1.6x)\n", measured[0]/measured[1])
}
