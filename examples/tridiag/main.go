// Case study 2 (paper §5.2): the cyclic-reduction tridiagonal
// solver. Shows the per-step bottleneck migration of Fig. 6, the
// bank-conflict factor the diagnostics expose (Fig. 7b), and the
// ~1.6x win of the padding remedy (Fig. 8) — with both solvers
// verified against the sequential Thomas algorithm by the
// registry's built-in check.
//
//	go run ./examples/tridiag [-systems 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	nsys := flag.Int("systems", 64, "number of independent systems")
	flag.Parse()

	a := gpuperf.NewAnalyzer(gpuperf.Options{})
	fmt.Println("calibrating...")

	var measured [2]float64
	for i, kernel := range []string{"cr", "cr-nbc"} {
		res, err := a.Analyze(context.Background(), gpuperf.Request{
			Kernel:  kernel,
			Size:    *nsys,
			Seed:    4,
			Measure: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		measured[i] = res.MeasuredSeconds

		fmt.Printf("\n=== %s: %d systems x 512 equations ===\n", kernel, *nsys)
		fmt.Printf("worst residual: %.2g (Thomas-algorithm quality)\n", *res.MaxAbsError)
		fmt.Printf("bank-conflict factor: %.2f\n", res.Diagnostics.BankConflictFactor)
		fmt.Printf("bottleneck: %s; predicted %.4g ms, measured %.4g ms\n",
			res.Bottleneck, res.PredictedSeconds*1e3, res.MeasuredSeconds*1e3)
		fmt.Println("forward-reduction steps (model):")
		for _, st := range res.Stages {
			if st.Index > 6 {
				break
			}
			fmt.Printf("  step %d: shared %.4g ms, instr %.4g ms -> %s (%d warps)\n",
				st.Index, st.SharedSeconds*1e3, st.InstructionSeconds*1e3,
				st.Bottleneck, st.Warps)
		}
	}
	fmt.Printf("\npadding speedup: %.2fx (paper: 1.6x)\n", measured[0]/measured[1])
}
