// Case study 3 (paper §5.3): sparse matrix–vector multiply on a
// QCD-like 3×3-blocked matrix. Compares the ELL, BELL+IM and
// BELL+IMIV storage formats: traffic per matrix entry by class
// (Fig. 11a), the model's global-memory-bound verdicts (Fig. 11b),
// and the vector-interleaving win the paper contributes — verified
// against a CPU reference multiply.
//
//	go run ./examples/spmv [-rows 4096]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/sparse"
	"gpuperf/internal/timing"
)

func main() {
	rows := flag.Int("rows", 4096, "block rows (threads for the blocked kernels)")
	flag.Parse()

	// A 6-SM slice keeps small runs realistic (see paper §5.1's
	// occupancy analysis); use the full chip for big matrices.
	cfg := gpu.GTX285()
	if *rows <= 8192 {
		cfg.NumSMs = 6
		cfg.Name += "-6sm"
	}
	fmt.Println("calibrating...")
	cal, err := timing.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	m, err := sparse.GenQCDLike(*rows, 9, rng)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float32, m.Rows())
	for i := range x {
		x[i] = 2*rng.Float32() - 1
	}
	want, err := m.MulDense(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d rows, %d stored entries (QCD-like 3x3 blocks)\n", m.Rows(), m.NNZ())

	for _, kind := range []kernels.SpMVKind{kernels.ELL, kernels.BELLIM, kernels.BELLIMIV} {
		sp, err := kernels.NewSpMV(kind, m)
		if err != nil {
			log.Fatal(err)
		}
		mem, err := sp.NewMemory(x)
		if err != nil {
			log.Fatal(err)
		}
		est, stats, err := model.Predict(cal, sp.Launch(), mem,
			&barra.Options{Regions: sp.Regions()})
		if err != nil {
			log.Fatal(err)
		}

		// Verify the functional result.
		y, err := sp.ReadY(mem)
		if err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for i := range want {
			if d := math.Abs(float64(y[i] - want[i])); d > maxErr {
				maxErr = d
			}
		}

		mem2, err := sp.NewMemory(x)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := device.Run(cfg, sp.Launch(), mem2)
		if err != nil {
			log.Fatal(err)
		}

		nnz := float64(m.NNZ())
		native := cfg.MinSegmentBytes
		fmt.Printf("\n=== %s (max |error| %.2g) ===\n", kind, maxErr)
		fmt.Printf("traffic per entry: matrix %.2f B, colidx %.2f B, vector %.2f B\n",
			float64(stats.RegionTraffic["matrix"][native].Bytes)/nnz,
			float64(stats.RegionTraffic["colidx"][native].Bytes)/nnz,
			float64(stats.RegionTraffic["vector"][native].Bytes)/nnz)
		fmt.Printf("coalescing efficiency: %.2f; bottleneck: %s\n",
			stats.CoalescingEfficiency(), est.Bottleneck)
		fmt.Printf("predicted %.4g ms, measured %.4g ms, %.1f GFLOPS\n",
			est.TotalSeconds*1e3, meas.Seconds*1e3,
			float64(sp.FLOPs())/meas.Seconds/1e9)
	}
	fmt.Println("\npaper conclusion reproduced: interleaving the vector (IMIV) cuts the")
	fmt.Println("uncoalesced vector traffic that dominates BELL+IM's global-memory time.")
}
