// Case study 3 (paper §5.3): sparse matrix–vector multiply on a
// QCD-like 3×3-blocked matrix. Compares the ELL, BELL+IM and
// BELL+IMIV storage formats: per-region global traffic (Fig. 11a's
// matrix/colidx/vector split, straight off the Result), the model's
// global-memory-bound verdicts (Fig. 11b), and the
// vector-interleaving win the paper contributes — each kernel
// verified against a CPU reference multiply by the registry.
//
//	go run ./examples/spmv [-rows 4096]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	rows := flag.Int("rows", 4096, "block rows (threads for the blocked kernels)")
	flag.Parse()

	// A 6-SM slice keeps small runs realistic (see paper §5.1's
	// occupancy analysis); use the full chip for big matrices.
	dev := gpuperf.DefaultDevice()
	if *rows <= 8192 {
		dev = gpuperf.SliceDevice(dev, 6)
	}
	a := gpuperf.NewAnalyzer(gpuperf.Options{Device: dev})
	fmt.Println("calibrating...")

	for _, kernel := range []string{"spmv-ell", "spmv-bell-im", "spmv-bell-imiv"} {
		// The same seed regenerates the same matrix and vector for
		// every format, so the comparison is apples to apples.
		res, err := a.Analyze(context.Background(), gpuperf.Request{
			Kernel:  kernel,
			Size:    *rows,
			Seed:    5,
			Measure: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n=== %s (max |error| %.2g) ===\n", kernel, *res.MaxAbsError)
		m, c, v := res.Stats.Regions["matrix"], res.Stats.Regions["colidx"], res.Stats.Regions["vector"]
		fmt.Printf("global traffic: matrix %d KB, colidx %d KB, vector %d KB (vector useful: %d KB)\n",
			m.Bytes/1024, c.Bytes/1024, v.Bytes/1024, v.UsefulBytes/1024)
		fmt.Printf("coalescing efficiency: %.2f; bottleneck: %s\n",
			res.Diagnostics.CoalescingEfficiency, res.Bottleneck)
		fmt.Printf("predicted %.4g ms, measured %.4g ms, %.1f GFLOPS predicted\n",
			res.PredictedSeconds*1e3, res.MeasuredSeconds*1e3, res.GFLOPS)
	}
	fmt.Println("\npaper conclusion reproduced: interleaving the vector (IMIV) cuts the")
	fmt.Println("uncoalesced vector traffic that dominates BELL+IM's global-memory time.")
}
