// Architect example: use the fleet API the way the paper's §5
// conclusions suggest a GPU architect would — register the proposed
// architectural improvements (prime bank count, bigger SMs, finer
// memory transactions, early resource release) as named catalog
// variants of a baseline slice, then let Fleet.Compare run each case
// study across the whole device set and rank the outcomes. Every
// variant gets its own calibrated session (cached by hardware
// fingerprint), and each entry carries both the model's predicted
// time and the timing simulator's measured one, so the table shows
// where the calibrated model agrees with the machine it models.
//
//	go run ./examples/architect
package main

import (
	"context"
	"fmt"
	"log"

	"gpuperf"
)

// workloads are the three stress cases: the occupancy-starved 32×32
// matmul tile, conflicted cyclic reduction (forward phase), and
// SpMV with uncoalesced vector loads. Fixed seeds mean every
// variant measures the identical problem instance.
var workloads = []struct {
	kernel string
	size   int
}{
	{"matmul32", 256},
	{"cr-fwd", 24},
	{"spmv-bell-im", 2048},
}

// baseline is the two-cluster slice the examples use: fast, same
// per-SM behaviour as the full chip.
const baseline = "gtx285-6sm"

func main() {
	catalog := gpuperf.DefaultCatalog()
	// The study variants the paper's §5 proposes, as catalog entries
	// derived from the baseline slice. banks17 and seg16 ship in the
	// default catalog already; the remaining two are registered here.
	register := func(name string, mutate func(*gpuperf.Device)) {
		dev, ok := catalog.Lookup(baseline)
		if !ok {
			log.Fatalf("catalog lost %s", baseline)
		}
		mutate(&dev)
		if err := catalog.Register(name, dev); err != nil {
			log.Fatal(err)
		}
	}
	register("gtx285-6sm+bigsm", func(d *gpuperf.Device) { d.RegistersPerSM *= 3; d.SharedMemPerSM *= 3 })
	register("gtx285-6sm+earlyrelease", func(d *gpuperf.Device) { d.EarlyRelease = true })

	devices := []string{
		baseline,
		"gtx285-6sm+banks17",      // prime bank count (§5.2)
		"gtx285-6sm+bigsm",        // 3x registers and shared memory (§5.1)
		"gtx285-6sm+seg16",        // 16-byte memory transactions (§5.3)
		"gtx285-6sm+earlyrelease", // early per-warp resource release (§5.2)
	}

	f := gpuperf.NewFleet(gpuperf.FleetOptions{
		Catalog:       catalog,
		DefaultDevice: baseline,
	})

	ctx := context.Background()
	for _, w := range workloads {
		cmp, err := f.Compare(ctx, gpuperf.CompareRequest{
			Kernel:   w.kernel,
			Size:     w.size,
			Seed:     7,
			Devices:  devices,
			Baseline: baseline,
			Measure:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %s (size %d): ranked by the calibrated model\n", w.kernel, w.size)
		var baseMeasured float64
		for _, e := range cmp.Entries {
			if e.Device == baseline {
				baseMeasured = e.MeasuredSeconds
			}
		}
		for i, e := range cmp.Entries {
			measured := "-"
			if baseMeasured > 0 && e.MeasuredSeconds > 0 {
				measured = fmt.Sprintf("%.2fx", baseMeasured/e.MeasuredSeconds)
			}
			fmt.Printf("  %d. %-26s predicted %8.4g ms (%.2fx vs baseline)   measured %s\n",
				i+1, e.Device, e.PredictedSeconds*1e3, e.Speedup, measured)
		}
		fmt.Println()
	}
	fmt.Println("(speedups vs the stock 6-SM slice; paper §5: prime banks rescue cyclic")
	fmt.Println("reduction, bigger SMs rescue the 32x32 matmul tile, finer transactions")
	fmt.Println("help SpMV — the measured column is the timing simulator's verdict)")
}
