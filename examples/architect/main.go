// Architect example: use the model and device simulator the way the
// paper's §5 conclusions suggest a GPU architect would — sweep the
// architectural improvements (prime bank count, bigger SMs, finer
// memory transactions, early resource release) against the three
// case studies and print which workloads each change helps.
//
//	go run ./examples/architect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
	"gpuperf/internal/tridiag"
)

type workload struct {
	name string
	run  func(cfg gpu.Config) (float64, error) // seconds
}

func main() {
	base := gpu.GTX285()
	base.NumSMs = 6 // two-cluster slice: fast, same per-SM behaviour
	base.Name = "GTX285-6sm"

	variants := []struct {
		name string
		cfg  gpu.Config
	}{
		{"17 banks (prime)", with(base, func(c *gpu.Config) { c.SharedMemBanks = 17 })},
		{"3x regs+smem", with(base, func(c *gpu.Config) { c.RegistersPerSM *= 3; c.SharedMemPerSM *= 3 })},
		{"16B transactions", with(base, func(c *gpu.Config) { c.MinSegmentBytes = 16 })},
		{"early release", with(base, func(c *gpu.Config) { c.EarlyRelease = true })},
	}

	workloads := buildWorkloads()

	fmt.Printf("%-22s", "variant \\ workload")
	for _, w := range workloads {
		fmt.Printf("  %-14s", w.name)
	}
	fmt.Println()

	baseline := make([]float64, len(workloads))
	for i, w := range workloads {
		t, err := w.run(base)
		if err != nil {
			log.Fatal(err)
		}
		baseline[i] = t
	}
	fmt.Printf("%-22s", "baseline (ms)")
	for _, t := range baseline {
		fmt.Printf("  %-14.4g", t*1e3)
	}
	fmt.Println()

	for _, v := range variants {
		fmt.Printf("%-22s", v.name)
		for i, w := range workloads {
			t, err := w.run(v.cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s", fmt.Sprintf("%.2fx", baseline[i]/t))
		}
		fmt.Println()
	}
	fmt.Println("\n(speedups vs baseline; paper §5: prime banks rescue cyclic reduction,")
	fmt.Println("bigger SMs rescue the 32x32 matmul tile, finer transactions help SpMV)")
}

func with(c gpu.Config, mutate func(*gpu.Config)) gpu.Config {
	mutate(&c)
	c.Name += "+variant"
	return c
}

func buildWorkloads() []workload {
	rng := rand.New(rand.NewSource(7))

	// Matmul 32×32 (the occupancy-starved tile).
	const n = 256
	mm, err := kernels.NewMatmul(n, 32)
	if err != nil {
		log.Fatal(err)
	}
	a := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()
	}

	// Cyclic reduction, plain (conflicted).
	const systems = 24
	cr, err := kernels.NewCR(gpu.GTX285(), systems, 512, false, true)
	if err != nil {
		log.Fatal(err)
	}
	sys := make([]tridiag.System, systems)
	for i := range sys {
		sys[i] = tridiag.NewRandom(512, rng)
	}

	// SpMV BELL+IM (uncoalesced vector loads).
	m, err := sparse.GenQCDLike(2048, 9, rng)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := kernels.NewSpMV(kernels.BELLIM, m)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float32, m.Rows())
	for i := range x {
		x[i] = rng.Float32()
	}

	return []workload{
		{"matmul 32x32", func(cfg gpu.Config) (float64, error) {
			mem, err := mm.NewMemory(a, a)
			if err != nil {
				return 0, err
			}
			r, err := device.Run(cfg, mm.Launch(), mem)
			return r.Seconds, err
		}},
		{"CR fwd", func(cfg gpu.Config) (float64, error) {
			mem, err := cr.NewMemory(sys)
			if err != nil {
				return 0, err
			}
			r, err := device.Run(cfg, cr.Launch(), mem)
			return r.Seconds, err
		}},
		{"SpMV BELL+IM", func(cfg gpu.Config) (float64, error) {
			mem, err := sp.NewMemory(x)
			if err != nil {
				return 0, err
			}
			r, err := device.Run(cfg, sp.Launch(), mem)
			return r.Seconds, err
		}},
	}
}
