// Architect example: use the device simulator the way the paper's
// §5 conclusions suggest a GPU architect would — sweep the
// architectural improvements (prime bank count, bigger SMs, finer
// memory transactions, early resource release) against the three
// case studies and print which workloads each change helps. Each
// variant is one Analyzer over a modified Device; Measure runs the
// timing simulator without paying for a model calibration.
//
//	go run ./examples/architect
package main

import (
	"context"
	"fmt"
	"log"

	"gpuperf"
)

// workloads are the three stress cases: the occupancy-starved 32×32
// matmul tile, conflicted cyclic reduction (forward phase), and
// SpMV with uncoalesced vector loads. Fixed seeds mean every
// variant measures the identical problem instance.
var workloads = []gpuperf.Request{
	{Kernel: "matmul32", Size: 256, Seed: 7},
	{Kernel: "cr-fwd", Size: 24, Seed: 7},
	{Kernel: "spmv-bell-im", Size: 2048, Seed: 7},
}

func main() {
	base := gpuperf.SliceDevice(gpuperf.DefaultDevice(), 6) // two-cluster slice: fast, same per-SM behaviour

	variants := []struct {
		name string
		dev  gpuperf.Device
	}{
		{"17 banks (prime)", with(base, func(d *gpuperf.Device) { d.SharedMemBanks = 17 })},
		{"3x regs+smem", with(base, func(d *gpuperf.Device) { d.RegistersPerSM *= 3; d.SharedMemPerSM *= 3 })},
		{"16B transactions", with(base, func(d *gpuperf.Device) { d.MinSegmentBytes = 16 })},
		{"early release", with(base, func(d *gpuperf.Device) { d.EarlyRelease = true })},
	}

	ctx := context.Background()
	measure := func(dev gpuperf.Device) []float64 {
		a := gpuperf.NewAnalyzer(gpuperf.Options{Device: dev})
		out := make([]float64, len(workloads))
		for i, req := range workloads {
			m, err := a.Measure(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			out[i] = m.Seconds
		}
		return out
	}

	fmt.Printf("%-22s", "variant \\ workload")
	for _, w := range workloads {
		fmt.Printf("  %-14s", w.Kernel)
	}
	fmt.Println()

	baseline := measure(base)
	fmt.Printf("%-22s", "baseline (ms)")
	for _, t := range baseline {
		fmt.Printf("  %-14.4g", t*1e3)
	}
	fmt.Println()

	for _, v := range variants {
		times := measure(v.dev)
		fmt.Printf("%-22s", v.name)
		for i, t := range times {
			fmt.Printf("  %-14s", fmt.Sprintf("%.2fx", baseline[i]/t))
		}
		fmt.Println()
	}
	fmt.Println("\n(speedups vs baseline; paper §5: prime banks rescue cyclic reduction,")
	fmt.Println("bigger SMs rescue the 32x32 matmul tile, finer transactions help SpMV)")
}

func with(d gpuperf.Device, mutate func(*gpuperf.Device)) gpuperf.Device {
	mutate(&d)
	d.Name += "+variant"
	return d
}
