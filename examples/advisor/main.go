// The paper's optimization walk (§4-§5), quantified in advance: for
// each case-study baseline the counterfactual advisor predicts how
// much every optimization would buy, and the registry's variant
// chain then measures what the corresponding rewrite actually
// bought — predicted headroom next to realized speedup.
//
//   - matmul: the naive one-thread-per-element kernel is global-
//     memory bound on uncoalesced column-order accesses; the advisor
//     puts coalescing on top, and the tiled Volkov kernel (which
//     coalesces and adds shared-memory reuse) realizes it (§5.1).
//   - cr: unpadded cyclic reduction is shared-memory bound on 16-way
//     bank conflicts; the advisor puts the padding remedy on top,
//     and cr-nbc realizes it (§5.2, Fig. 8 — the paper measures
//     ~1.6x).
//
// Usage:
//
//	go run ./examples/advisor [-n 128] [-systems 32]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	n := flag.Int("n", 128, "matmul matrix dimension (power of two, multiple of 64)")
	systems := flag.Int("systems", 32, "cyclic-reduction systems")
	flag.Parse()

	// A 6-SM slice keeps the walk fast while preserving per-SM
	// occupancy, conflict and coalescing behaviour.
	a := gpuperf.NewAnalyzer(gpuperf.Options{
		Device: gpuperf.SliceDevice(gpuperf.DefaultDevice(), 6),
	})
	fmt.Println("calibrating...")
	if err := a.Calibrate(); err != nil {
		log.Fatal(err)
	}

	walk(a, "matmul-naive", "matmul16", *n, 7,
		"the tiled kernel also stages B in shared memory, reusing each fetched byte across the tile — headroom beyond what coalescing alone predicts")
	walk(a, "cr", "cr-nbc", *systems, 5,
		"padding is a pure layout change, so the realized speedup tracks the counterfactual (paper Fig. 8 measures ~1.6x)")
}

// walk advises on the baseline kernel, measures baseline and variant,
// and lines the top counterfactual up against the realized speedup.
func walk(a *gpuperf.Analyzer, baseline, variant string, size int, seed int64, note string) {
	ctx := context.Background()

	adv, err := a.Advise(ctx, gpuperf.Request{Kernel: baseline, Size: size, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== %s (size %d): what would each optimization buy? ===\n", baseline, size)
	fmt.Printf("baseline prediction %.4g ms, bottleneck: %s\n", adv.BaselineSeconds*1e3, adv.Bottleneck)
	for i, s := range adv.Scenarios {
		marker := "  "
		if s.Scenario == adv.Top {
			marker = "->"
		}
		fmt.Printf("%s %d. %-38s %5.2fx predicted\n", marker, i+1, s.Title, s.Speedup)
	}

	// The registry variant that realizes the advisor's scenario: same
	// family, same (size, seed) inputs, measured on the device
	// simulator.
	spec, ok := a.Registry().Lookup(variant)
	if !ok {
		log.Fatalf("variant %s missing from the registry", variant)
	}
	var predicted float64
	for _, s := range adv.Scenarios {
		if s.Scenario == spec.Optimization {
			predicted = s.Speedup
		}
	}
	base, err := a.Analyze(ctx, gpuperf.Request{
		Kernel: baseline, Size: size, Seed: seed, Measure: true, SkipVerify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := a.Analyze(ctx, gpuperf.Request{
		Kernel: variant, Size: size, Seed: seed, Measure: true, SkipVerify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	measured := base.MeasuredSeconds / opt.MeasuredSeconds

	fmt.Printf("top advice: %s\n", adv.Top)
	fmt.Printf("%s realizes %q: counterfactual predicted %.2fx; measured %s -> %s: %.2fx\n",
		variant, spec.Optimization, predicted, baseline, variant, measured)
	fmt.Printf("(%s)\n", note)
}
