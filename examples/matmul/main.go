// Case study 1 (paper §5.1): dense matrix multiply at three
// sub-matrix sizes. Reproduces the Table 2 / Figure 4 analysis end
// to end through the public API — one AnalyzeBatch over the three
// tile kernels returns occupancy, the model's breakdown and
// bottleneck, and measured time — explaining why the 16×16 tile
// wins even though 32×32 has the best memory behaviour.
//
//	go run ./examples/matmul [-n 256]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	n := flag.Int("n", 256, "matrix dimension (power of two, multiple of 64)")
	flag.Parse()

	// A 6-SM slice keeps the run fast while preserving per-SM
	// occupancy behaviour (use the full 30-SM chip for large n).
	dev := gpuperf.DefaultDevice()
	if *n <= 256 {
		dev = gpuperf.SliceDevice(dev, 6)
	}
	a := gpuperf.NewAnalyzer(gpuperf.Options{Device: dev})
	fmt.Println("calibrating...")

	// One batch, three tiles: the session calibrates once and the
	// same seed builds the same A and B for every tile. One tile
	// verifies against the CPU reference; the others skip it — same
	// inputs, and the reference product costs O(n³) on one host core.
	reqs := []gpuperf.Request{
		{Kernel: "matmul8", Size: *n, Seed: 3, Measure: true},
		{Kernel: "matmul16", Size: *n, Seed: 3, Measure: true, SkipVerify: true},
		{Kernel: "matmul32", Size: *n, Seed: 3, Measure: true, SkipVerify: true},
	}
	results, err := a.AnalyzeBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	for _, res := range results {
		fmt.Printf("\n=== %s (%d blocks x %d threads) ===\n", res.Kernel, res.Grid, res.Block)
		fmt.Printf("occupancy: %d blocks/SM, %d warps (limited by %s)\n",
			res.Occupancy.Blocks, res.Occupancy.ActiveWarps, res.Occupancy.Limiter)
		fmt.Printf("computational density: %.2f; coalescing efficiency: %.2f\n",
			res.Diagnostics.Density, res.Diagnostics.CoalescingEfficiency)
		fmt.Printf("bottleneck: %s (next: %s)\n", res.Bottleneck, res.NextBottleneck)
		fmt.Printf("predicted %.4g ms, measured %.4g ms (error %.1f%%), %.4g GFLOPS\n",
			res.PredictedSeconds*1e3, res.MeasuredSeconds*1e3,
			res.PredictionError*100, res.GFLOPS)
		if res.MaxAbsError != nil {
			fmt.Printf("verified against CPU reference: max |error| %.2g\n", *res.MaxAbsError)
		}
	}
	fmt.Println("\npaper conclusion reproduced: the 16x16 tile balances occupancy")
	fmt.Println("against per-thread work; 32x32 starves the SM to one resident block.")
}
