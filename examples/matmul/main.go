// Case study 1 (paper §5.1): dense matrix multiply at three
// sub-matrix sizes. Reproduces the Table 2 / Figure 4 analysis end
// to end: occupancy per tile, dynamic statistics, the model's
// breakdown and bottleneck, and measured time — explaining why the
// 16×16 tile wins even though 32×32 has the best memory behaviour.
//
//	go run ./examples/matmul [-n 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/timing"
)

func main() {
	n := flag.Int("n", 256, "matrix dimension (power of two, multiple of 64)")
	flag.Parse()

	// A 6-SM slice keeps the run fast while preserving per-SM
	// occupancy behaviour (use the full 30-SM chip for large n).
	cfg := gpu.GTX285()
	if *n <= 256 {
		cfg.NumSMs = 6
		cfg.Name += "-6sm"
	}
	fmt.Println("calibrating...")
	cal, err := timing.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	a := make([]float32, *n**n)
	bm := make([]float32, *n**n)
	for i := range a {
		a[i], bm[i] = rng.Float32(), rng.Float32()
	}
	want := kernels.MulRef(*n, a, bm)

	for _, tile := range []int{8, 16, 32} {
		mm, err := kernels.NewMatmul(*n, tile)
		if err != nil {
			log.Fatal(err)
		}
		mem, err := mm.NewMemory(a, bm)
		if err != nil {
			log.Fatal(err)
		}
		est, stats, err := model.Predict(cal, mm.Launch(), mem, nil)
		if err != nil {
			log.Fatal(err)
		}
		mem2, err := mm.NewMemory(a, bm)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := device.Run(cfg, mm.Launch(), mem2)
		if err != nil {
			log.Fatal(err)
		}

		// Verify numerics against the CPU reference.
		c, err := mm.ReadC(mem2)
		if err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for i := range c {
			if d := float64(c[i] - want[i]); d > maxErr || -d > maxErr {
				if d < 0 {
					d = -d
				}
				maxErr = d
			}
		}

		fmt.Printf("\n=== %dx%d sub-matrices (max |error| %.2g) ===\n", tile, tile, maxErr)
		fmt.Printf("occupancy: %s\n", est.Occupancy)
		fmt.Printf("dynamic: %d instr, %d MAD (density %.0f%%), %d shared tx, %d global tx\n",
			stats.Total.WarpInstrs, stats.Total.FMADs, stats.InstructionDensity()*100,
			stats.Total.SharedTx, stats.Total.Global.Transactions)
		fmt.Printf("model: instr %.4g ms, shared %.4g ms, global %.4g ms -> bottleneck %s\n",
			est.Component[model.CompInstruction]*1e3,
			est.Component[model.CompShared]*1e3,
			est.Component[model.CompGlobal]*1e3,
			est.Bottleneck)
		fmt.Printf("predicted %.4g ms, measured %.4g ms (%.0f%% error), %.0f GFLOPS\n",
			est.TotalSeconds*1e3, meas.Seconds*1e3,
			est.CompareError(meas.Seconds)*100,
			float64(mm.FLOPs())/meas.Seconds/1e9)
	}
	fmt.Println("\npaper conclusion reproduced: 16x16 is fastest — 32x32 loses its")
	fmt.Println("occupancy (3 blocks = 6 warps), starving the shared-memory pipeline.")
}
