// Quickstart: the public gpuperf API in one page. Build an Analyzer
// session, analyze a built-in kernel, read the bottleneck verdict
// off the serializable Result — the same three calls a service
// makes per request.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	// A 6-SM slice of the GTX 285 keeps calibration and the run
	// fast; per-SM behaviour is identical to the full chip.
	dev := gpuperf.SliceDevice(gpuperf.DefaultDevice(), 6)
	a := gpuperf.NewAnalyzer(gpuperf.Options{Device: dev})

	fmt.Printf("device: %s — kernels: %v\n", a.Device().Name, a.Registry().Names())
	fmt.Println("calibrating (the first analysis pays it; the session reuses it)...")

	res, err := a.Analyze(context.Background(), gpuperf.Request{
		Kernel: "matmul16",
		Size:   128,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(res.Report())

	// The Result is plain data: everything above round-trips
	// through JSON, which is exactly what gpuperfd serves.
	blob, err := json.MarshalIndent(map[string]any{
		"bottleneck":     res.Bottleneck,
		"predicted_ms":   res.PredictedSeconds * 1e3,
		"density":        res.Diagnostics.Density,
		"active_warps":   res.Occupancy.ActiveWarps,
		"verified_error": res.MaxAbsError,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nas JSON:\n%s\n", blob)
}
