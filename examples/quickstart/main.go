// Quickstart: build a small kernel with the builder DSL, run the
// paper's analysis workflow on it, and print the bottleneck verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/model"
	"gpuperf/internal/timing"
)

func main() {
	// A SAXPY-like kernel: y[i] = a*x[i] + y[i], one element per
	// thread, expressed directly in the native ISA.
	const elems = 1 << 16
	b := kbuild.New("saxpy")
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	addr := b.Reg()
	x := b.Reg()
	y := b.Reg()
	a := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(addr, cta, ntid, tid) // flat thread id
	b.ShlImm(addr, addr, 2)
	b.MovF(a, 2.5)
	b.Gld(x, addr)             // x[i] at offset 0
	b.GldOff(y, addr, elems*4) // y[i] in the second array
	b.FMad(y, a, x, y)
	b.GstOff(addr, y, elems*4)
	b.Exit()
	prog := b.MustProgram()

	cfg := gpu.GTX285()
	fmt.Printf("built %q: %d instructions, %d registers/thread\n",
		prog.Name, len(prog.Code), prog.RegsPerThread)

	// Calibrate the model's throughput curves by running the §4
	// microbenchmarks on the device simulator.
	fmt.Println("calibrating...")
	cal, err := timing.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fill device memory with input data.
	mem := barra.NewMemory(2 * elems * 4)
	for i := 0; i < elems; i++ {
		if err := mem.SetFloat32(uint32(i*4), float32(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Run the workflow: functional simulation collects dynamic
	// statistics, then the model produces the analysis.
	launch := barra.Launch{Prog: prog, Grid: elems / 256, Block: 256}
	est, stats, err := model.Predict(cal, launch, mem, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", est.Report())
	fmt.Printf("dynamic instructions: %d warp-level (%.0f%% MAD)\n",
		stats.Total.WarpInstrs, stats.InstructionDensity()*100)

	// Sanity check the result.
	v, err := mem.Float32(uint32(7*4 + elems*4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y[7] = %v (want %v)\n", v, 2.5*7.0)
}
