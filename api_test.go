package gpuperf

// Facade tests. One Analyzer (and so one calibration — the expensive
// part) is shared across the API and HTTP tests via testAnalyzer.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

var (
	taOnce sync.Once
	ta     *Analyzer
)

// testAnalyzer returns the shared session: a 6-SM slice (fast, same
// per-SM behaviour), serial simulation by default.
func testAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	taOnce.Do(func() {
		ta = NewAnalyzer(Options{Device: SliceDevice(DefaultDevice(), 6)})
		if err := ta.Calibrate(); err != nil {
			t.Fatalf("calibrate: %v", err)
		}
	})
	if err := ta.Calibrate(); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return ta
}

var (
	tfOnce sync.Once
	tf     *Fleet
	tfErr  error
	tfDir  string
)

// TestMain removes the shared fleet's calibration-cache directory
// after the run (it outlives any one test, so t.TempDir cannot own
// it).
func TestMain(m *testing.M) {
	code := m.Run()
	if tfDir != "" {
		os.RemoveAll(tfDir)
	}
	os.Exit(code)
}

// testFleet returns the shared fleet: the default catalog with
// "gtx285-6sm" as the default device, seeded with testAnalyzer's
// calibration through the fingerprint-keyed cache directory — the
// catalog entry's hardware is identical to the shared session's, so
// the fleet's 6-SM session loads from cache instead of recalibrating
// (names differ; fingerprints don't).
func testFleet(t *testing.T) *Fleet {
	t.Helper()
	a := testAnalyzer(t)
	tfOnce.Do(func() {
		// Failures are stored, not t.Fatal-ed: the Once would stay
		// spent and every later caller would hit a nil fleet instead
		// of the real error.
		tfDir, tfErr = os.MkdirTemp("", "gpuperf-fleet-cal-")
		if tfErr != nil {
			return
		}
		if tfErr = a.cal.SaveCachedCalibration(tfDir); tfErr != nil {
			return
		}
		tf = NewFleet(FleetOptions{
			DefaultDevice:  "gtx285-6sm",
			CalibrationDir: tfDir,
		})
	})
	if tf == nil {
		t.Fatalf("shared fleet init failed: %v", tfErr)
	}
	return tf
}

// TestRegistryDeterministicInputs: identical (kernel, size, seed)
// requests build bit-identical memory images — input generation
// depends only on the request, never on global state — while a
// different seed produces different inputs.
func TestRegistryDeterministicInputs(t *testing.T) {
	reg := DefaultRegistry()
	dev := DefaultDevice()
	for _, kernel := range []string{"matmul16", "cr", "spmv-ell"} {
		p := Params{Size: 0, Seed: 9}
		w1, err := reg.Build(dev, kernel, p)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := reg.Build(dev, kernel, p)
		if err != nil {
			t.Fatal(err)
		}
		img1, err := w1.Mem.ReadWords(0, w1.Mem.Size()/4)
		if err != nil {
			t.Fatal(err)
		}
		img2, err := w2.Mem.ReadWords(0, w2.Mem.Size()/4)
		if err != nil {
			t.Fatal(err)
		}
		if len(img1) != len(img2) {
			t.Fatalf("%s: rebuilt memory sized %d vs %d", kernel, len(img1), len(img2))
		}
		for i := range img1 {
			if img1[i] != img2[i] {
				t.Fatalf("%s: rebuilt memory differs at word %d", kernel, i)
			}
		}

		w3, err := reg.Build(dev, kernel, Params{Size: 0, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		img3, err := w3.Mem.ReadWords(0, w3.Mem.Size()/4)
		if err != nil {
			t.Fatal(err)
		}
		same := len(img1) == len(img3)
		if same {
			for i := range img1 {
				if img1[i] != img3[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: seed 9 and seed 10 built identical inputs", kernel)
		}
	}
}

// TestAnalyzeHappyPath: the full workflow on a small matmul — the
// result carries a verdict, diagnostics, stats, stages, and a
// passing CPU verification.
func TestAnalyzeHappyPath(t *testing.T) {
	a := testAnalyzer(t)
	res, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "matmul16" || res.Size != 64 || res.Seed != 7 {
		t.Errorf("request echo wrong: %+v", res)
	}
	if res.Grid <= 0 || res.Block <= 0 {
		t.Errorf("bad geometry %dx%d", res.Grid, res.Block)
	}
	if res.PredictedSeconds <= 0 || res.UpperBoundSeconds < res.PredictedSeconds {
		t.Errorf("bad prediction interval [%g, %g]", res.PredictedSeconds, res.UpperBoundSeconds)
	}
	if res.Bottleneck == "" || res.NextBottleneck == "" || len(res.Causes) == 0 {
		t.Errorf("missing verdict: %+v", res)
	}
	if len(res.Stages) == 0 || res.Stats.WarpInstrs <= 0 {
		t.Errorf("missing breakdown/stats: %+v", res)
	}
	if res.MaxAbsError == nil {
		t.Error("matmul should be verified against the CPU reference")
	}
	if res.GFLOPS <= 0 {
		t.Error("matmul has a known flop count; GFLOPS should be set")
	}
	if res.MeasuredSeconds != 0 {
		t.Error("measured time set without Measure")
	}
}

// TestAnalyzeSkipVerify: the CPU-reference check (single-threaded
// host code) is skippable per request.
func TestAnalyzeSkipVerify(t *testing.T) {
	a := testAnalyzer(t)
	res, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Seed: 7, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsError != nil {
		t.Error("SkipVerify should leave MaxAbsError unset")
	}
}

// TestVerifyCancellable: the CPU-reference check itself observes
// ctx, so an abandoned request stops mid-verification instead of
// finishing the O(n³) reference product.
func TestVerifyCancellable(t *testing.T) {
	w, err := DefaultRegistry().Build(DefaultDevice(), "matmul16", Params{Size: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Verify(ctx, w.Mem); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAnalyzeMeasure: Measure adds the device simulator's time and
// the prediction-error metric.
func TestAnalyzeMeasure(t *testing.T) {
	a := testAnalyzer(t)
	res, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Seed: 7, Measure: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredSeconds <= 0 || res.MeasuredDominant == "" {
		t.Errorf("Measure did not fill measured fields: %+v", res)
	}
}

// stripPhases clears Diagnostics.PhaseSeconds — wall-clock telemetry
// deliberately outside the determinism contract — so byte-identity
// tests compare only the simulation's output.
func stripPhases(results ...*Result) {
	for _, r := range results {
		r.Diagnostics.PhaseSeconds = nil
	}
}

// TestAnalyzeDeterministicAcrossParallelism: the Result is
// bit-identical however the functional run is sharded (the PR-1
// engine guarantee, surfaced through the facade).
func TestAnalyzeDeterministicAcrossParallelism(t *testing.T) {
	a := testAnalyzer(t)
	var blobs [][]byte
	for _, p := range []int{1, 4} {
		res, err := a.Analyze(context.Background(), Request{Kernel: "spmv-ell", Size: 512, Seed: 3, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Diagnostics.PhaseSeconds) == 0 {
			t.Error("Analyze left Diagnostics.PhaseSeconds empty")
		}
		stripPhases(res)
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Errorf("results differ across parallelism:\nP=1: %s\nP=4: %s", blobs[0], blobs[1])
	}
}

// TestAnalyzeUnknownKernel maps to the sentinel error.
func TestAnalyzeUnknownKernel(t *testing.T) {
	a := testAnalyzer(t)
	_, err := a.Analyze(context.Background(), Request{Kernel: "nope"})
	if !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("got %v, want ErrUnknownKernel", err)
	}
}

// TestAnalyzeInvalidSize: requests beyond a kernel's MaxSize ceiling
// (or that its builder rejects) fail fast with ErrInvalidRequest —
// a network client cannot make the service allocate unbounded
// memory.
func TestAnalyzeInvalidSize(t *testing.T) {
	a := testAnalyzer(t)
	for _, req := range []Request{
		{Kernel: "matmul32", Size: 32768}, // beyond MaxSize (and the kernel's uint32 edge)
		{Kernel: "matmul16", Size: 100},   // builder rejects: not a power of two
		{Kernel: "cr", Size: -4},          // negative
		{Kernel: "spmv-ell", Size: 1 << 30},
	} {
		if _, err := a.Analyze(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%+v: got %v, want ErrInvalidRequest", req, err)
		}
	}
}

// TestAnalyzeCancelled: a dead context aborts the request.
func TestAnalyzeCancelled(t *testing.T) {
	a := testAnalyzer(t) // warm calibration so cancellation hits the run itself
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.Analyze(ctx, Request{Kernel: "spmv-ell", Size: 4096, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAnalyzeBatch: results align with requests, one bad request
// doesn't sink the batch, and batch answers match serial ones.
func TestAnalyzeBatch(t *testing.T) {
	a := testAnalyzer(t)
	reqs := []Request{
		{Kernel: "matmul16", Size: 64, Seed: 7},
		{Kernel: "bogus"},
		{Kernel: "cr", Size: 8, Seed: 2},
	}
	results, err := a.AnalyzeBatch(context.Background(), reqs)
	if err == nil || !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("batch error should join the unknown-kernel failure, got %v", err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	if results[1] != nil {
		t.Error("failed request should leave a nil result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Fatalf("request %d should have succeeded", i)
		}
		serial, err := a.Analyze(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		stripPhases(results[i], serial)
		b1, _ := json.Marshal(results[i])
		b2, _ := json.Marshal(serial)
		if string(b1) != string(b2) {
			t.Errorf("request %d: batch and serial results differ", i)
		}
	}
}

// TestCalibrationDirReuse: a session with CalibrationDir loads its
// device's fingerprint-keyed cache entry instead of recalibrating,
// and produces identical analyses.
func TestCalibrationDirReuse(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	a2 := NewAnalyzer(Options{Device: a.Device(), CalibrationDir: dir})
	if err := a2.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if !a2.CalibrationFromCache() {
		t.Fatal("second session should have loaded the cache entry")
	}
	if a2.cal == a.cal {
		t.Fatal("second session should have loaded its own calibration")
	}
	req := Request{Kernel: "matmul16", Size: 64, Seed: 7}
	r1, err := a.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stripPhases(r1, r2)
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Error("cached-calibration session disagrees with the original")
	}
}

// TestCalibrationSaveFailureDoesNotPoison: an unwritable cache
// directory must not invalidate a successful calibration — the
// session keeps serving from memory and surfaces the write error
// separately.
func TestCalibrationSaveFailureDoesNotPoison(t *testing.T) {
	// A regular file where the cache directory should be makes
	// MkdirAll fail.
	block := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(block, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(Options{
		Device:         SliceDevice(DefaultDevice(), 6),
		CalibrationDir: filepath.Join(block, "cache"),
	})
	if err := a.Calibrate(); err != nil {
		t.Fatalf("calibration should survive a failed cache write, got %v", err)
	}
	if a.CalibrationSaveError() == nil {
		t.Error("the failed cache write should be reported via CalibrationSaveError")
	}
	if _, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64}); err != nil {
		t.Fatalf("analysis should work on the in-memory calibration: %v", err)
	}
}

// TestCalibrationCacheRejectsModifiedDevice: a cache written for one
// configuration must not load for a modified one, even under the
// same name — stale curves would silently skew every prediction.
// With the fingerprint-keyed directory the modified device simply
// has a different cache slot.
func TestCalibrationCacheRejectsModifiedDevice(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	dev := a.Device()
	dev.SharedMemBanks = 17 // same Name, different hardware
	a2 := NewAnalyzer(Options{Device: dev, CalibrationDir: dir})
	if err := a2.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if a2.CalibrationFromCache() {
		t.Error("cache for a different configuration was loaded")
	}
	// The fresh calibration landed in its own slot: the directory now
	// holds two distinct fingerprint-keyed files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("cache dir should hold 2 per-fingerprint entries, has %v", names)
	}
}

// TestCorruptCalibrationCacheFallsBack: garbage in the device's cache
// slot is a miss, not an error — the session calibrates fresh and
// repairs the slot.
func TestCorruptCalibrationCacheFallsBack(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one cache entry, got %v (%v)", entries, err)
	}
	slot := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(slot, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	a2 := NewAnalyzer(Options{Device: a.Device(), CalibrationDir: dir})
	if err := a2.Calibrate(); err != nil {
		t.Fatalf("corrupt cache must fall back to fresh calibration, got %v", err)
	}
	if a2.CalibrationFromCache() {
		t.Error("corrupt cache was served")
	}
	if a2.CalibrationSaveError() != nil {
		t.Errorf("repairing the slot failed: %v", a2.CalibrationSaveError())
	}
	// The repaired slot is valid again.
	a3 := NewAnalyzer(Options{Device: a.Device(), CalibrationDir: dir})
	if err := a3.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if !a3.CalibrationFromCache() {
		t.Error("repaired cache entry should load")
	}
}

// TestWorkersCappedBySession: a request's parallelism override may
// lower but never exceed the operator's configured worker count —
// or the host's core count when the operator left it unset.
func TestWorkersCappedBySession(t *testing.T) {
	ncpu := runtime.GOMAXPROCS(0)
	lowCPU := 8
	if ncpu < lowCPU {
		lowCPU = ncpu
	}
	for _, tc := range []struct {
		session, request, want int
	}{
		{0, 0, ncpu},       // both defaults: all cores
		{0, 8, lowCPU},     // unset session: host cores still cap it
		{0, 1 << 20, ncpu}, // a wild request cannot outgrow the host
		{2, 0, 2},          // session default applies
		{2, 8, 2},          // request cannot exceed the session cap
		{4, 1, 1},          // request may lower it
	} {
		a := NewAnalyzer(Options{Parallelism: tc.session})
		if got := a.workers(Request{Parallelism: tc.request}); got != tc.want {
			t.Errorf("session %d, request %d: workers %d, want %d",
				tc.session, tc.request, got, tc.want)
		}
	}
}

// TestAdmissionControl: with every MaxConcurrent slot held, a caller
// waits without building anything and leaves the queue the moment
// its context dies.
func TestAdmissionControl(t *testing.T) {
	a := NewAnalyzer(Options{Device: SliceDevice(DefaultDevice(), 6), MaxConcurrent: 1})
	a.admit <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Analyze(ctx, Request{Kernel: "matmul16", Size: 64})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request returned %v, want context.Canceled", err)
	}
	<-a.admit // release; the slot must still be intact
}

// TestMeasureNoCalibration: Measure works on a fresh session without
// ever calibrating (the architect-sweep path), and echoes the
// normalized size and seed.
func TestMeasureNoCalibration(t *testing.T) {
	a := NewAnalyzer(Options{Device: SliceDevice(DefaultDevice(), 6)})
	m, err := a.Measure(context.Background(), Request{Kernel: "matmul16", Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds <= 0 || m.Dominant == "" {
		t.Errorf("bad measurement %+v", m)
	}
	if m.Size != 64 || m.Seed != 1 {
		t.Errorf("measurement should echo normalized size/seed, got %d/%d", m.Size, m.Seed)
	}
	select {
	case a.admit <- struct{}{}:
		<-a.admit
	default:
		t.Error("Measure leaked an admission slot")
	}
}

// TestMeasureSharesPrelude: Measure validates exactly like Analyze —
// same sentinel errors for unknown kernels, rejected sizes, foreign
// devices and dead contexts — without ever touching the calibration.
func TestMeasureSharesPrelude(t *testing.T) {
	a := NewAnalyzer(Options{Device: SliceDevice(DefaultDevice(), 6)})
	ctx := context.Background()
	if _, err := a.Measure(ctx, Request{Kernel: "nope"}); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("unknown kernel: got %v", err)
	}
	if _, err := a.Measure(ctx, Request{Kernel: "matmul32", Size: 32768}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("oversized request: got %v", err)
	}
	if _, err := a.Measure(ctx, Request{Kernel: "matmul16", Size: 64, Device: "some-other-chip"}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("foreign device: got %v", err)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := a.Measure(dead, Request{Kernel: "matmul16", Size: 64}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: got %v", err)
	}
	// None of the failures (nor the admission path) may have kicked
	// off a calibration: Measure is the calibration-free path.
	select {
	case <-a.calDone:
		t.Error("Measure triggered a calibration")
	default:
	}
}

// TestAnalyzeRejectsForeignDevice: a bare Analyzer serves exactly one
// device; requests naming another are the caller's error, directing
// them at a Fleet.
func TestAnalyzeRejectsForeignDevice(t *testing.T) {
	a := testAnalyzer(t)
	_, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Device: "gtx280"})
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("got %v, want ErrInvalidRequest", err)
	}
	// Naming the session's own device is fine.
	res, err := a.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Device: a.Device().Name})
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != a.Device().Name {
		t.Errorf("result device %q, want %q", res.Device, a.Device().Name)
	}
}

// TestSliceDeviceIdempotent: slicing an already-sliced device
// replaces the -Nsm name suffix instead of stacking another, and
// re-slicing to the same count is a no-op.
func TestSliceDeviceIdempotent(t *testing.T) {
	base := DefaultDevice()
	once := SliceDevice(base, 6)
	if once.Name != "GTX285-6sm" || once.NumSMs != 6 {
		t.Fatalf("first slice: %q (%d SMs)", once.Name, once.NumSMs)
	}
	again := SliceDevice(once, 6)
	if again != once {
		t.Errorf("re-slicing to the same count changed the device: %+v vs %+v", again, once)
	}
	narrower := SliceDevice(SliceDevice(base, 15), 6)
	if narrower.Name != "GTX285-6sm" || narrower.NumSMs != 6 {
		t.Errorf("15sm→6sm: %q (%d SMs), want GTX285-6sm (6)", narrower.Name, narrower.NumSMs)
	}
	if narrower != once {
		t.Errorf("slicing via 15sm differs from slicing directly: %+v vs %+v", narrower, once)
	}
	// Slicing wider than the current chip keeps it untouched.
	if wider := SliceDevice(once, 12); wider != once {
		t.Errorf("slicing a 6-SM device to 12 changed it: %+v", wider)
	}
	// Option-decorated names keep their knob suffixes intact.
	dev := DefaultDevice()
	dev.Name = "GTX285+banks17"
	resliced := SliceDevice(SliceDevice(dev, 15), 6)
	if resliced.Name != "GTX285+banks17-6sm" {
		t.Errorf("knob suffix lost or stacked: %q", resliced.Name)
	}
	// Catalog variant names put the slice before the knob; re-slicing
	// one must replace that marker, not stack a second.
	variant, ok := DefaultCatalog().Lookup("gtx285-6sm+banks17")
	if !ok {
		t.Fatal("catalog lost gtx285-6sm+banks17")
	}
	sliced := SliceDevice(variant, 3)
	if sliced.Name != "gtx285+banks17-3sm" || sliced.NumSMs != 3 {
		t.Errorf("slice-before-knob name stacked: %q (%d SMs)", sliced.Name, sliced.NumSMs)
	}
	if again := SliceDevice(sliced, 3); again != sliced {
		t.Errorf("re-slicing the variant changed it: %+v vs %+v", again, sliced)
	}
}

// TestAdviseHappyPath: the advisor report for the naive matmul names
// coalescing as the top opportunity — the §4 walk's first step — with
// every cataloged scenario present and ranked.
func TestAdviseHappyPath(t *testing.T) {
	a := testAnalyzer(t)
	adv, err := a.Advise(context.Background(), Request{Kernel: "matmul-naive", Size: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Kernel != "matmul-naive" || adv.Size != 128 || adv.Seed != 7 {
		t.Errorf("request echo wrong: %+v", adv)
	}
	if adv.BaselineSeconds <= 0 || adv.Bottleneck != "global memory" {
		t.Errorf("baseline wrong: %.6g s, bottleneck %q", adv.BaselineSeconds, adv.Bottleneck)
	}
	if len(adv.Scenarios) != 5 {
		t.Fatalf("got %d scenarios, want 5", len(adv.Scenarios))
	}
	if adv.Top != "perfect-coalescing" || adv.Scenarios[0].Scenario != "perfect-coalescing" {
		t.Errorf("top advice %q (first ranked %q), want perfect-coalescing", adv.Top, adv.Scenarios[0].Scenario)
	}
	if adv.Scenarios[0].Speedup < 2 {
		t.Errorf("uncoalesced matmul should promise ≥2x from coalescing, got %.2fx", adv.Scenarios[0].Speedup)
	}
	for i, s := range adv.Scenarios {
		if s.Explanation == "" || s.PredictedSeconds <= 0 {
			t.Errorf("scenario %d (%s) incomplete: %+v", i, s.Scenario, s)
		}
		if i > 0 && adv.Scenarios[i-1].Speedup < s.Speedup {
			t.Errorf("ranking violated at %d", i)
		}
	}
}

// TestAdviseDeterministicAcrossParallelism: the ranked advice is
// bit-identical whether the functional run and scenario fan-out use
// one worker or eight.
func TestAdviseDeterministicAcrossParallelism(t *testing.T) {
	a := testAnalyzer(t)
	var reports [2]*Advice
	for i, p := range []int{1, 8} {
		adv, err := a.Advise(context.Background(), Request{
			Kernel: "cr", Size: 16, Seed: 5, Parallelism: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		adv.Device = "" // the same device either way; compare the verdicts
		reports[i] = adv
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Errorf("advice differs across parallelism:\nP=1: %+v\nP=8: %+v", reports[0], reports[1])
	}
}

// TestAdviseCRTopAdvice: for unpadded cyclic reduction the top
// recommendation is the bank-conflict remedy — the very optimization
// the registry's cr-nbc variant implements (paper Fig. 8).
func TestAdviseCRTopAdvice(t *testing.T) {
	a := testAnalyzer(t)
	adv, err := a.Advise(context.Background(), Request{Kernel: "cr", Size: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Top != "conflict-free-shared" {
		t.Errorf("cr top advice %q, want conflict-free-shared", adv.Top)
	}
	spec, ok := a.Registry().Lookup("cr-nbc")
	if !ok {
		t.Fatal("cr-nbc missing from the registry")
	}
	if spec.Optimization != adv.Top {
		t.Errorf("cr-nbc realizes %q, advisor recommends %q — the variant chain is broken", spec.Optimization, adv.Top)
	}
}

// TestAdviseUnknownKernelAndCancelled: Advise fails fast like Analyze.
func TestAdviseUnknownKernelAndCancelled(t *testing.T) {
	a := testAnalyzer(t)
	if _, err := a.Advise(context.Background(), Request{Kernel: "nope"}); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("unknown kernel: got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Advise(ctx, Request{Kernel: "matmul16", Size: 64}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: got %v", err)
	}
}

// TestAnalyzeBatchErrorIndexing: each failed request's error carries
// its index and kernel name, in request order, and errors.Is still
// matches the underlying condition through the wrapping.
func TestAnalyzeBatchErrorIndexing(t *testing.T) {
	a := testAnalyzer(t)
	reqs := []Request{
		{Kernel: "matmul16", Size: 64, Seed: 7},
		{Kernel: "no-such-kernel"},
		{Kernel: "matmul16", Size: 1 << 20},
	}
	results, err := a.AnalyzeBatch(context.Background(), reqs)
	if err == nil {
		t.Fatal("batch with bad requests returned no error")
	}
	if results[0] == nil || results[1] != nil || results[2] != nil {
		t.Errorf("result slots wrong: %v", results)
	}
	if !errors.Is(err, ErrUnknownKernel) || !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("wrapping broke errors.Is matching: %v", err)
	}
	msg := err.Error()
	i1 := strings.Index(msg, `request 1 (kernel "no-such-kernel")`)
	i2 := strings.Index(msg, `request 2 (kernel "matmul16")`)
	if i1 < 0 || i2 < 0 {
		t.Fatalf("joined error does not identify failed requests:\n%s", msg)
	}
	if i1 > i2 {
		t.Errorf("joined errors out of request order:\n%s", msg)
	}
	if strings.Contains(msg, "request 0") {
		t.Errorf("successful request blamed in error:\n%s", msg)
	}
}

// TestKernelSpecFamilies: every built-in spec declares its variant
// family, and each declared Optimization names a real advisor
// scenario key.
func TestKernelSpecFamilies(t *testing.T) {
	valid := map[string]bool{
		"perfect-coalescing": true, "conflict-free-shared": true,
		"no-divergence": true, "ideal-overlap": true, "raise-occupancy": true,
	}
	families := map[string]int{}
	for _, s := range DefaultRegistry().Specs() {
		if s.Family == "" {
			t.Errorf("kernel %q has no family", s.Name)
		}
		families[s.Family]++
		if s.Optimization != "" && !valid[s.Optimization] {
			t.Errorf("kernel %q names unknown scenario %q", s.Name, s.Optimization)
		}
	}
	for _, f := range []string{"matmul", "cr", "spmv"} {
		if families[f] < 2 {
			t.Errorf("family %q has %d members, want a variant chain", f, families[f])
		}
	}
}
