package gpuperf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenComparison is a fully-populated Comparison literal — every
// field the wire format carries, with nothing derived at runtime, so
// the fixture pins the public JSON schema itself. The fingerprints
// are the real catalog values for gtx285 and gtx285-6sm, so a change
// to the fingerprint scheme (which silently invalidates every
// calibration cache) also shows up here as a deliberate golden diff.
func goldenComparison() *Comparison {
	return &Comparison{
		Kernel:   "spmv-ell",
		Size:     4096,
		Seed:     7,
		Baseline: "gtx285-6sm",
		Entries: []ComparisonEntry{
			{
				Device:           "gtx285",
				Fingerprint:      "7b25645b987b52f6f07baff2dab6014e",
				PredictedSeconds: 0.00021,
				Bottleneck:       "global memory",
				Speedup:          4.76,
				MeasuredSeconds:  0.00023,
			},
			{
				Device:           "gtx285-6sm",
				Fingerprint:      "edd55c4fd980ecc10c9d039f33077ba0",
				PredictedSeconds: 0.001,
				Bottleneck:       "global memory",
				Speedup:          1,
				MeasuredSeconds:  0.0011,
			},
		},
		Best: "gtx285",
	}
}

// TestComparisonGoldenRoundTrip pins the Comparison wire format: the
// fixture in testdata must match what Marshal produces today, and
// decoding it must reproduce the full struct. A diff here is a
// breaking API change — regenerate with -update only deliberately.
func TestComparisonGoldenRoundTrip(t *testing.T) {
	want := goldenComparison()
	blob, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	path := filepath.Join("testdata", "comparison_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestComparisonGolden -update` to create it)", err)
	}
	if string(golden) != string(blob) {
		t.Errorf("Comparison wire format drifted from testdata/comparison_golden.json:\ngot:\n%s\nwant:\n%s", blob, golden)
	}

	var back Comparison
	if err := json.Unmarshal(golden, &back); err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if !reflect.DeepEqual(&back, want) {
		t.Errorf("golden round-trip lost data:\ngot  %+v\nwant %+v", &back, want)
	}

	// The fixture's fingerprints are the live catalog's: a drift here
	// means the fingerprint scheme changed, which also invalidates
	// every on-disk calibration cache — make that loud.
	catalog := DefaultCatalog()
	for _, e := range want.Entries {
		dev, ok := catalog.Lookup(e.Device)
		if !ok {
			t.Fatalf("fixture device %q left the catalog", e.Device)
		}
		if got := DeviceFingerprint(dev); got != e.Fingerprint {
			t.Errorf("fingerprint scheme drifted for %s: %s, fixture %s (regenerate deliberately)", e.Device, got, e.Fingerprint)
		}
	}
}

// TestCompareRequestJSONRoundTrip: the CompareRequest wire format
// holds.
func TestCompareRequestJSONRoundTrip(t *testing.T) {
	in := CompareRequest{
		Kernel:      "matmul16",
		Size:        256,
		Seed:        11,
		Parallelism: 2,
		Devices:     []string{"gtx285", "gtx285-6sm"},
		Baseline:    "gtx285-6sm",
		Measure:     true,
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out CompareRequest
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip: %+v -> %+v", in, out)
	}
}

// TestDeviceProfileJSONRoundTrip: the /v1/devices wire format holds
// and carries real fingerprints for the built-in catalog.
func TestDeviceProfileJSONRoundTrip(t *testing.T) {
	profiles := DefaultCatalog().Profiles()
	blob, err := json.Marshal(profiles)
	if err != nil {
		t.Fatal(err)
	}
	var back []DeviceProfile
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, profiles) {
		t.Error("device profiles do not round-trip")
	}
}
