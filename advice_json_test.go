package gpuperf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenAdvice is a fully-populated Advice literal — every field the
// wire format carries, nothing derived at runtime, so the fixture
// pins the public JSON schema itself (the /v1/advise response).
func goldenAdvice() *Advice {
	return &Advice{
		Kernel: "matmul-naive",
		Device: "GTX285-6sm",
		Size:   128,
		Seed:   7,
		Grid:   256,
		Block:  64,

		BaselineSeconds: 0.00049,
		Bottleneck:      "global memory",

		Scenarios: []ScenarioAdvice{
			{
				Scenario:         "perfect-coalescing",
				Title:            "perfect global-memory coalescing",
				PredictedSeconds: 0.000115,
				Speedup:          4.26,
				Components: ComponentTimes{
					InstructionSeconds: 0.00008,
					SharedSeconds:      0,
					GlobalSeconds:      0.000115,
				},
				Explanation: "only 23% of fetched global bytes are useful (8.53 transactions per half-warp request); restructuring the access pattern so each half-warp fills whole segments cuts global-memory time 4.26x",
			},
			{
				Scenario:         "raise-occupancy",
				Title:            "raise occupancy (resident-block sweep)",
				PredictedSeconds: 0.00049,
				Speedup:          1,
				Components: ComponentTimes{
					InstructionSeconds: 0.00008,
					SharedSeconds:      0,
					GlobalSeconds:      0.00049,
				},
				Explanation:  "occupancy is already at its reachable ceiling (8 blocks, 16 warps/SM, limited by max blocks)",
				TargetBlocks: 8,
			},
		},
		Top: "perfect-coalescing",
	}
}

// TestAdviceGoldenRoundTrip pins the Advice wire format: the fixture
// in testdata must match what Marshal produces today, and decoding it
// must reproduce the full struct. A diff here is a breaking API
// change — regenerate with -update only deliberately.
func TestAdviceGoldenRoundTrip(t *testing.T) {
	want := goldenAdvice()
	blob, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	path := filepath.Join("testdata", "advice_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestAdviceGolden -update` to create it)", err)
	}
	if string(golden) != string(blob) {
		t.Errorf("Advice wire format drifted from testdata/advice_golden.json:\ngot:\n%s\nwant:\n%s", blob, golden)
	}

	var back Advice
	if err := json.Unmarshal(golden, &back); err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if !reflect.DeepEqual(&back, want) {
		t.Errorf("golden round-trip lost data:\ngot  %+v\nwant %+v", &back, want)
	}
}
