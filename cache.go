package gpuperf

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"gpuperf/internal/obs"
	"gpuperf/internal/resultstore"
)

// The result cache exploits the system's end-to-end determinism: a
// (kernel, normalized size/seed, output-affecting options,
// device-fingerprint) tuple always yields a bit-identical Result,
// Advice or Comparison, so every analysis is perfectly memoizable.
// Requests are addressed by a canonical fingerprint mirroring
// gpu.Fingerprint's scheme: any knob that can change the output
// separates two keys; anything that cannot — device renames,
// parallelism, request field order — does not.

// CacheStatus reports how a fleet request was served; the HTTP layer
// surfaces it as the X-Cache response header.
type CacheStatus string

const (
	// CacheMiss: this request ran the simulation (and populated the
	// cache).
	CacheMiss CacheStatus = "MISS"
	// CacheHit: served from the result cache (memory or disk).
	CacheHit CacheStatus = "HIT"
	// CacheCoalesced: an identical request was already in flight;
	// this one waited for the leader's result instead of computing.
	CacheCoalesced CacheStatus = "COALESCED"
	// CacheBypass: the fleet was built with DisableCache (or the
	// request failed before reaching the cache).
	CacheBypass CacheStatus = "BYPASS"
)

// DefaultCacheBytes is the in-memory result-cache budget a fleet uses
// when FleetOptions.CacheBytes is zero.
const DefaultCacheBytes int64 = 32 << 20

// CacheStats is the GET /v1/stats wire type: the fleet result cache's
// counters and gauges.
type CacheStats struct {
	// Enabled is false when the fleet was built with DisableCache —
	// every other field is then zero.
	Enabled bool `json:"enabled"`
	// Hits = MemoryHits + DiskHits.
	Hits       int64 `json:"hits"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	// Misses counts simulations actually run (singleflight leaders).
	Misses int64 `json:"misses"`
	// Coalesced counts requests that waited on an identical in-flight
	// computation instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts in-memory entries dropped for the byte budget.
	Evictions int64 `json:"evictions"`
	// SaveErrors counts failed best-effort disk writes.
	SaveErrors int64 `json:"save_errors,omitempty"`
	// InFlight is the number of simulations running right now.
	InFlight int `json:"in_flight"`
	// Entries/Bytes describe the current memory tier;
	// MemoryBudgetBytes its configured ceiling.
	Entries           int   `json:"entries"`
	Bytes             int64 `json:"bytes"`
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// Submissions/SubmissionBytes gauge the resident user-submitted
	// kernels (the POST /v1/kernels store); SubmissionEvictions counts
	// the ones removed for any reason (LRU pressure, TTL expiry,
	// deletion). Populated even when the result cache is disabled.
	Submissions         int   `json:"submissions"`
	SubmissionBytes     int64 `json:"submission_bytes"`
	SubmissionEvictions int64 `json:"submission_evictions"`
	// Engine reports the fleet's cumulative simulation-engine
	// effectiveness (blocks replayed vs simulated, batched stepping),
	// summed across sessions. Populated even when the result cache is
	// disabled.
	Engine EngineCounters `json:"engine"`
	// UptimeSeconds is the time since the fleet was built; on the
	// router path it aggregates as the oldest worker's uptime.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts fleet front-door calls by operation (analyze,
	// advise, compare, measure, submit, evict) — cache hits included,
	// Compare's internal per-device analyses not. Routers sum the
	// maps across workers.
	Requests map[string]int64 `json:"requests,omitempty"`
}

// CacheStats returns a snapshot of the fleet's result-cache counters.
func (f *Fleet) CacheStats() CacheStats {
	cs := CacheStats{
		Engine: f.EngineCounters(),
		// Milliseconds are plenty; full float64 tails would churn the
		// JSON diff on every scrape.
		UptimeSeconds: math.Round(time.Since(f.start).Seconds()*1e3) / 1e3, //gpuperf:wallclock uptime is telemetry; /v1/stats is never cached or fingerprinted
		Requests:      f.requestCounts(),
	}
	if f.subs != nil {
		cs.Submissions, cs.SubmissionBytes, cs.SubmissionEvictions = f.subs.Stats()
	}
	if f.store == nil {
		return cs
	}
	st := f.store.Stats()
	cs.Enabled = true
	cs.Hits = st.Hits
	cs.MemoryHits = st.MemoryHits
	cs.DiskHits = st.DiskHits
	cs.Misses = st.Misses
	cs.Coalesced = st.Coalesced
	cs.Evictions = st.Evictions
	cs.SaveErrors = st.SaveErrors
	cs.InFlight = st.InFlight
	cs.Entries = st.Entries
	cs.Bytes = st.Bytes
	cs.MemoryBudgetBytes = st.MemoryBudget
	return cs
}

// requestKey is the canonical pre-image of a request fingerprint.
// Only fields that can change the response's bytes appear: the
// operation (an Advice for a tuple is not its Result), the kernel,
// the NORMALIZED size and seed (so "size 0" and the kernel's default
// size share a slot), the output-affecting options, and hardware
// fingerprints in place of device names (renaming a device never
// separates keys — exactly gpu.Fingerprint's contract). Parallelism
// is deliberately absent: results are bit-identical at any worker
// count.
type requestKey struct {
	Op     string `json:"op"`
	Kernel string `json:"kernel"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	// Measure adds measured fields to Result/Comparison; SkipVerify
	// removes Result.MaxAbsError. Advise ignores both, so adviseKey
	// leaves them false.
	Measure    bool `json:"measure,omitempty"`
	SkipVerify bool `json:"skip_verify,omitempty"`
	// NoReplay zeroes Result's engine counters (the stats themselves
	// are bit-identical). Advice carries no engine counters, so
	// adviseKey leaves it false too.
	NoReplay bool `json:"no_replay,omitempty"`
	// Device is the hardware fingerprint for analyze/advise.
	Device string `json:"device,omitempty"`
	// Devices/Baseline are the compare set's hardware fingerprints
	// (sorted — the ranking is order-independent) and the baseline's.
	Devices  []string `json:"devices,omitempty"`
	Baseline string   `json:"baseline,omitempty"`
}

// digest returns the SHA-256 fingerprint of the canonical key. Struct
// fields marshal in declaration order, so the JSON form is canonical
// for a given package version.
func (k requestKey) digest() string {
	blob, err := json.Marshal(k)
	if err != nil {
		// requestKey is a flat struct of scalars and strings; Marshal
		// cannot fail.
		panic(fmt.Sprintf("gpuperf: request fingerprint: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// analyzeKey fingerprints an Analyze request (req already normalized
// and routed; devFP is the session device's hardware fingerprint).
func analyzeKey(req Request, devFP string) string {
	return requestKey{
		Op:         "analyze",
		Kernel:     req.Kernel,
		Size:       req.Size,
		Seed:       req.Seed,
		Measure:    req.Measure,
		SkipVerify: req.SkipVerify,
		NoReplay:   req.NoReplay,
		Device:     devFP,
	}.digest()
}

// adviseKey fingerprints an Advise request. Measure and SkipVerify
// are excluded: Advise ignores both, so requests differing only
// there share advice.
func adviseKey(req Request, devFP string) string {
	return requestKey{
		Op:     "advise",
		Kernel: req.Kernel,
		Size:   req.Size,
		Seed:   req.Seed,
		Device: devFP,
	}.digest()
}

// compareKey fingerprints a Compare request: the device set as
// SORTED hardware fingerprints plus the baseline's — reordering the
// set with the same baseline cannot change the ranked outcome, so it
// shares a slot.
func compareKey(req CompareRequest, fps []string, baselineFP string) string {
	sorted := append([]string(nil), fps...)
	sort.Strings(sorted)
	return requestKey{
		Op:       "compare",
		Kernel:   req.Kernel,
		Size:     req.Size,
		Seed:     req.Seed,
		Measure:  req.Measure,
		Devices:  sorted,
		Baseline: baselineFP,
	}.digest()
}

// cachedFetch serves one request through the fleet's result store:
// hit, coalesce onto an identical in-flight computation, or lead the
// computation and populate both tiers. Every caller — leader
// included — decodes its own copy from the canonical cached bytes,
// so concurrent callers never alias one mutable struct and cached
// responses are byte-identical to freshly computed ones by
// construction.
func cachedFetch[T any](ctx context.Context, f *Fleet, key string, compute func(context.Context) (*T, error)) (*T, CacheStatus, error) {
	if f.store == nil {
		v, err := compute(ctx)
		return v, CacheBypass, err
	}
	// The cache span covers the whole store.Do call: on a hit it is
	// the probe itself; on a miss the computation's spans nest inside
	// it, so a slow-request tree shows probe-turned-compute honestly.
	ctx, sp := obs.StartSpan(ctx, "cache")
	body, st, err := f.store.Do(ctx, key, func() ([]byte, error) {
		v, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(v)
	})
	sp.End()
	status := CacheMiss
	switch st {
	case resultstore.MemoryHit, resultstore.DiskHit:
		status = CacheHit
	case resultstore.Coalesced:
		status = CacheCoalesced
	}
	if err != nil {
		return nil, status, err
	}
	v := new(T)
	if err := json.Unmarshal(body, v); err != nil {
		return nil, status, fmt.Errorf("gpuperf: decoding cached result: %w", err)
	}
	return v, status, nil
}
