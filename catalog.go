package gpuperf

import (
	"fmt"
	"sort"
	"sync"

	"gpuperf/internal/gpu"
)

// ErrUnknownDevice reports a request naming a device the catalog does
// not hold; errors.Is-match it to map the condition (the HTTP
// front-end turns it into 404).
var ErrUnknownDevice = fmt.Errorf("gpuperf: unknown device")

// DeviceCatalog maps stable names to immutable device profiles — the
// fleet's address space. Entries are registered once and never
// mutated: Register stores a copy whose Name is the catalog key (so
// every Result, Advice and Measurement echoes the catalog name), and
// Lookup hands out copies. Safe for concurrent use.
//
// The built-in naming scheme (DefaultCatalog) is
//
//	<chip>[-<n>sm][+<knob><value>]
//
// lower-case: the stock chip ("gtx285"), its whole-cluster slices
// ("gtx285-6sm"), and derived variants built from the architectural
// knobs the paper's §5 sweeps ("gtx285+banks17", "gtx285-6sm+seg16").
// Fingerprints, not names, key the calibration cache — renaming an
// entry never reuses or invalidates curves for different hardware.
type DeviceCatalog struct {
	mu   sync.RWMutex
	devs map[string]Device
}

// NewDeviceCatalog returns an empty catalog.
func NewDeviceCatalog() *DeviceCatalog {
	return &DeviceCatalog{devs: map[string]Device{}}
}

// Register adds dev under name. The stored profile is dev with its
// Name set to the catalog key. Registering an invalid configuration
// or reusing a name is an error — entries are immutable once
// published, so a fleet's cached sessions can never disagree with
// the catalog.
func (c *DeviceCatalog) Register(name string, dev Device) error {
	if name == "" {
		return fmt.Errorf("gpuperf: catalog entry needs a name")
	}
	dev.Name = name
	if err := dev.Validate(); err != nil {
		return fmt.Errorf("gpuperf: catalog entry %q: %w", name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.devs[name]; dup {
		return fmt.Errorf("gpuperf: catalog entry %q already registered", name)
	}
	c.devs[name] = dev
	return nil
}

// Lookup returns the profile registered under name.
func (c *DeviceCatalog) Lookup(name string) (Device, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.devs[name]
	return d, ok
}

// Resolve is Lookup returning ErrUnknownDevice (with the known names)
// for a missing entry, so front-ends can blame the caller.
func (c *DeviceCatalog) Resolve(name string) (Device, error) {
	d, ok := c.Lookup(name)
	if !ok {
		return Device{}, fmt.Errorf("%w %q (have %v)", ErrUnknownDevice, name, c.Names())
	}
	return d, nil
}

// Names returns the registered device names, sorted.
func (c *DeviceCatalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.devs))
	for n := range c.devs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profiles returns the wire form of every entry, sorted by name —
// the GET /v1/devices response.
func (c *DeviceCatalog) Profiles() []DeviceProfile {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DeviceProfile, 0, len(c.devs))
	for _, d := range c.devs {
		out = append(out, newDeviceProfile(d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeviceProfile is one catalog entry on the wire: the stable name,
// the canonical hardware fingerprint (the calibration-cache key), the
// architectural knobs a capacity planner compares, and the derived
// theoretical peaks.
type DeviceProfile struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`

	NumSMs          int  `json:"num_sms"`
	Clusters        int  `json:"clusters"`
	SharedMemBanks  int  `json:"shared_mem_banks"`
	RegistersPerSM  int  `json:"registers_per_sm"`
	SharedMemPerSM  int  `json:"shared_mem_per_sm"`
	MaxBlocksPerSM  int  `json:"max_blocks_per_sm"`
	MinSegmentBytes int  `json:"min_segment_bytes"`
	EarlyRelease    bool `json:"early_release,omitempty"`

	PeakGFLOPS     float64 `json:"peak_gflops"`
	PeakGlobalGBps float64 `json:"peak_global_gbps"`
	PeakSharedGBps float64 `json:"peak_shared_gbps"`
}

func newDeviceProfile(d Device) DeviceProfile {
	return DeviceProfile{
		Name:            d.Name,
		Fingerprint:     gpu.Fingerprint(d),
		NumSMs:          d.NumSMs,
		Clusters:        d.NumClusters(),
		SharedMemBanks:  d.SharedMemBanks,
		RegistersPerSM:  d.RegistersPerSM,
		SharedMemPerSM:  d.SharedMemPerSM,
		MaxBlocksPerSM:  d.MaxBlocksPerSM,
		MinSegmentBytes: d.MinSegmentBytes,
		EarlyRelease:    d.EarlyRelease,
		PeakGFLOPS:      d.PeakGFLOPS(),
		PeakGlobalGBps:  d.PeakGlobalBandwidth() / 1e9,
		PeakSharedGBps:  d.PeakSharedBandwidth() / 1e9,
	}
}

// DefaultCatalogDevice is the entry a fleet serves when a request
// leaves its Device field empty and FleetOptions named no other
// default.
const DefaultCatalogDevice = "gtx285"

// DefaultCatalog returns a fresh catalog preloaded with the paper's
// test platform and its study variants:
//
//	gtx285                          the stock GeForce GTX 285
//	gtx285-15sm, -6sm, -3sm         whole-cluster slices (same per-SM
//	                                behaviour, scaled chip throughput)
//	gtx285+banks17                  prime bank count (§5.2)
//	gtx285+blocks16                 doubled resident-block ceiling (§5.1)
//	gtx285+seg16                    16-byte memory transactions (§5.3)
//	gtx285-6sm+banks17, +blocks16,
//	+seg16                          the same knobs on the fast slice
//	gtx280, tesla-c1060             sibling GT200 boards
//
// Each call builds a new catalog, so callers may Register their own
// variants without affecting other fleets.
func DefaultCatalog() *DeviceCatalog {
	c := NewDeviceCatalog()
	full := gpu.GTX285()
	sliced := func(sms int) Device { return SliceDevice(full, sms) }
	entries := []struct {
		name string
		dev  Device
	}{
		{"gtx285", full},
		{"gtx285-15sm", sliced(15)},
		{"gtx285-6sm", sliced(6)},
		{"gtx285-3sm", sliced(3)},
		{"gtx285+banks17", gpu.GTX285(gpu.WithBanks(17))},
		{"gtx285+blocks16", gpu.GTX285(gpu.WithMaxBlocks(16))},
		{"gtx285+seg16", gpu.GTX285(gpu.WithMinSegment(16))},
		{"gtx285-6sm+banks17", SliceDevice(gpu.GTX285(gpu.WithBanks(17)), 6)},
		{"gtx285-6sm+blocks16", SliceDevice(gpu.GTX285(gpu.WithMaxBlocks(16)), 6)},
		{"gtx285-6sm+seg16", SliceDevice(gpu.GTX285(gpu.WithMinSegment(16)), 6)},
		{"gtx280", gpu.GTX280()},
		{"tesla-c1060", gpu.TeslaC1060()},
	}
	for _, e := range entries {
		if err := c.Register(e.name, e.dev); err != nil {
			panic(err) // built-in entries are statically well-formed
		}
	}
	return c
}
