package gpuperf

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenResult is a fully-populated Result literal — every field the
// wire format carries, with nothing derived at runtime, so the
// fixture pins the public JSON schema itself.
func goldenResult() *Result {
	maxErr := 0.00042
	return &Result{
		Kernel: "matmul16",
		Device: "GTX285-6sm",
		Size:   256,
		Seed:   7,
		Grid:   64,
		Block:  64,

		PredictedSeconds:  0.00125,
		UpperBoundSeconds: 0.0019,
		Components: ComponentTimes{
			InstructionSeconds: 0.00125,
			SharedSeconds:      0.0005,
			GlobalSeconds:      0.00015,
		},
		Bottleneck:     "instruction pipeline",
		NextBottleneck: "shared memory",
		Causes:         []string{"component near its calibrated peak"},
		Serialized:     false,
		Stages: []StageResult{
			{Index: 0, InstructionSeconds: 0.0006, SharedSeconds: 0.0002, GlobalSeconds: 0.0001, Bottleneck: "instruction pipeline", Warps: 16},
			{Index: 1, InstructionSeconds: 0.00065, SharedSeconds: 0.0003, GlobalSeconds: 0.00005, Bottleneck: "instruction pipeline", Warps: 16},
		},
		Occupancy: OccupancySummary{Blocks: 8, WarpsPerBlock: 2, ActiveWarps: 16, Limiter: "blocks per SM"},
		Diagnostics: Diagnostics{
			WarpsPerSM: 16, Density: 0.78, CoalescingEfficiency: 1, BankConflictFactor: 1, TransPerThread: 9,
			BlocksSimulated: 1, BlocksReplayed: 63, BatchedRuns: 5376, BatchedInstrs: 64512,
		},
		Stats: StatsSummary{
			WarpInstrs:         1317120,
			FMADs:              1032192,
			SharedAccesses:     73728,
			SharedTx:           147456,
			SharedBytes:        9437184,
			GlobalTransactions: 36864,
			GlobalBytes:        4718592,
			GlobalUsefulBytes:  4718592,
			Barriers:           32,
			Regions: map[string]RegionTraffic{
				"matrix": {Transactions: 24576, Bytes: 3145728, UsefulBytes: 3145728},
				"vector": {Transactions: 12288, Bytes: 1572864, UsefulBytes: 1572864},
			},
		},

		GFLOPS:           26.8,
		MaxAbsError:      &maxErr,
		MeasuredSeconds:  0.00131,
		PredictionError:  0.0458,
		MeasuredDominant: "instruction",
	}
}

// TestResultGoldenRoundTrip pins the Result wire format: the fixture
// in testdata must match what Marshal produces today, and decoding
// it must reproduce the full struct. A diff here is a breaking API
// change — regenerate with -update only deliberately.
func TestResultGoldenRoundTrip(t *testing.T) {
	want := goldenResult()
	blob, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	path := filepath.Join("testdata", "result_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestResultGolden -update` to create it)", err)
	}
	if string(golden) != string(blob) {
		t.Errorf("Result wire format drifted from testdata/result_golden.json:\ngot:\n%s\nwant:\n%s", blob, golden)
	}

	var back Result
	if err := json.Unmarshal(golden, &back); err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if !reflect.DeepEqual(&back, want) {
		t.Errorf("golden round-trip lost data:\ngot  %+v\nwant %+v", &back, want)
	}
}

// TestRequestJSONRoundTrip: the Request wire format holds.
func TestRequestJSONRoundTrip(t *testing.T) {
	in := Request{Kernel: "cr-nbc", Size: 64, Seed: 11, Parallelism: 2, Measure: true}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v -> %+v", in, out)
	}
}
