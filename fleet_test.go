package gpuperf

// Fleet and catalog tests. The expensive per-device calibrations are
// shared through testFleet's fingerprint-keyed cache directory.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"gpuperf/internal/timing"
)

// TestDefaultCatalog: the built-ins are present, valid, renamed to
// their catalog keys, and fingerprinted distinctly except where the
// hardware genuinely matches.
func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	for _, name := range []string{"gtx285", "gtx285-6sm", "gtx285-3sm", "gtx285+banks17", "gtx280", "tesla-c1060"} {
		d, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("catalog missing %q (have %v)", name, c.Names())
		}
		if d.Name != name {
			t.Errorf("entry %q stored under Name %q", name, d.Name)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("entry %q invalid: %v", name, err)
		}
	}
	fps := map[string]string{}
	for _, p := range c.Profiles() {
		if p.Fingerprint == "" || p.NumSMs <= 0 || p.PeakGFLOPS <= 0 {
			t.Errorf("profile %q incomplete: %+v", p.Name, p)
		}
		if prev, dup := fps[p.Fingerprint]; dup {
			t.Errorf("catalog entries %q and %q share hardware fingerprint %s", p.Name, prev, p.Fingerprint)
		}
		fps[p.Fingerprint] = p.Name
	}
	if got := len(c.Profiles()); got != len(c.Names()) {
		t.Errorf("%d profiles for %d names", got, len(c.Names()))
	}
}

// TestCatalogImmutable: duplicate names and invalid configurations
// are rejected; Lookup hands out copies, so mutating a returned
// device never changes the catalog.
func TestCatalogImmutable(t *testing.T) {
	c := NewDeviceCatalog()
	if err := c.Register("toy", DefaultDevice()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("toy", DefaultDevice()); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := DefaultDevice()
	bad.NumSMs = 0
	if err := c.Register("broken", bad); err == nil {
		t.Error("invalid configuration accepted")
	}
	if err := c.Register("", DefaultDevice()); err == nil {
		t.Error("empty name accepted")
	}
	d, _ := c.Lookup("toy")
	d.SharedMemBanks = 99
	d2, _ := c.Lookup("toy")
	if d2.SharedMemBanks == 99 {
		t.Error("mutating a looked-up device changed the catalog")
	}
	if _, err := c.Resolve("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Resolve(nope) = %v, want ErrUnknownDevice", err)
	}
}

// TestFleetRouting: requests land on the catalog device they name,
// the default applies when they name none, results echo catalog
// names, and unknown devices fail with the sentinel.
func TestFleetRouting(t *testing.T) {
	f := testFleet(t)
	res, err := f.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != "gtx285-6sm" {
		t.Errorf("default-device result names %q, want gtx285-6sm", res.Device)
	}
	res2, err := f.Analyze(context.Background(), Request{Kernel: "matmul16", Size: 64, Seed: 7, Device: "gtx285-6sm"})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(res)
	b2, _ := json.Marshal(res2)
	if string(b1) != string(b2) {
		t.Error("explicit default device disagrees with implicit")
	}
	if _, err := f.Analyze(context.Background(), Request{Kernel: "matmul16", Device: "gtx999"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: got %v", err)
	}
	if _, err := f.Measure(context.Background(), Request{Kernel: "matmul16", Device: "gtx999"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("measure unknown device: got %v", err)
	}
	if _, err := f.Advise(context.Background(), Request{Kernel: "matmul16", Device: "gtx999"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("advise unknown device: got %v", err)
	}
}

// TestFleetSessionsSharedState: repeated lookups reuse one session
// per device, every session shares the fleet's admission semaphore,
// and a queued request abandons the fleet-wide queue when its
// context dies — MaxConcurrent bounds the fleet, not each device.
func TestFleetSessionsSharedState(t *testing.T) {
	f := NewFleet(FleetOptions{MaxConcurrent: 1, DefaultDevice: "gtx285-6sm"})
	a1, err := f.Session("gtx285-6sm")
	if err != nil {
		t.Fatal(err)
	}
	a1again, err := f.Session("")
	if err != nil {
		t.Fatal(err)
	}
	if a1again != a1 {
		t.Error("default-device session is not the named session")
	}
	a2, err := f.Session("gtx285-3sm")
	if err != nil {
		t.Fatal(err)
	}
	if a1.admit != a2.admit {
		t.Fatal("sessions do not share the admission semaphore")
	}
	a1.admit <- struct{}{} // occupy the fleet's only slot via device 1
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Measure needs no calibration, so the only thing it can block
		// on is the shared admission gate.
		_, err := f.Measure(ctx, Request{Kernel: "matmul16", Size: 64, Device: "gtx285-3sm"})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cross-device request returned %v, want context.Canceled", err)
	}
	<-a1.admit // release; the slot must still be intact
}

// TestFleetCompare: one kernel ranked across two slices of the same
// chip — more SMs must win, the baseline pins speedup 1, entries
// arrive fastest-first, and the whole comparison is byte-stable
// across repeated runs and parallelism settings.
func TestFleetCompare(t *testing.T) {
	f := testFleet(t)
	req := CompareRequest{
		Kernel:  "matmul16",
		Size:    256,
		Seed:    7,
		Devices: []string{"gtx285-3sm", "gtx285-6sm"},
	}
	cmp, err := f.Compare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Kernel != "matmul16" || cmp.Size != 256 || cmp.Seed != 7 {
		t.Errorf("request echo wrong: %+v", cmp)
	}
	if cmp.Baseline != "gtx285-3sm" {
		t.Errorf("baseline defaulted to %q, want the first device", cmp.Baseline)
	}
	if len(cmp.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(cmp.Entries))
	}
	if cmp.Best != "gtx285-6sm" || cmp.Entries[0].Device != "gtx285-6sm" {
		t.Errorf("6 SMs should beat 3: best %q, first %q", cmp.Best, cmp.Entries[0].Device)
	}
	if cmp.Entries[0].Speedup <= 1 {
		t.Errorf("the faster device should show speedup > 1, got %.3f", cmp.Entries[0].Speedup)
	}
	if cmp.Entries[1].Speedup != 1 {
		t.Errorf("baseline speedup = %.3f, want exactly 1", cmp.Entries[1].Speedup)
	}
	for i, e := range cmp.Entries {
		if e.PredictedSeconds <= 0 || e.Bottleneck == "" || e.Fingerprint == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if e.MeasuredSeconds != 0 {
			t.Errorf("entry %d has measured time without Measure: %+v", i, e)
		}
	}
	if cmp.Entries[0].Fingerprint == cmp.Entries[1].Fingerprint {
		t.Error("different slices share a fingerprint")
	}

	// Deterministic: a rerun and a serial rerun are byte-identical.
	blob, _ := json.Marshal(cmp)
	for _, p := range []int{0, 1, 4} {
		req2 := req
		req2.Parallelism = p
		cmp2, err := f.Compare(context.Background(), req2)
		if err != nil {
			t.Fatal(err)
		}
		blob2, _ := json.Marshal(cmp2)
		if string(blob) != string(blob2) {
			t.Errorf("comparison differs at parallelism %d:\n%s\nvs\n%s", p, blob, blob2)
		}
	}
}

// TestFleetCompareMeasure: Measure adds the timing simulator's
// result to every entry.
func TestFleetCompareMeasure(t *testing.T) {
	f := testFleet(t)
	cmp, err := f.Compare(context.Background(), CompareRequest{
		Kernel:  "matmul16",
		Size:    256,
		Seed:    7,
		Devices: []string{"gtx285-6sm", "gtx285-3sm"},
		Measure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range cmp.Entries {
		if e.MeasuredSeconds <= 0 {
			t.Errorf("entry %d missing measured time: %+v", i, e)
		}
	}
	if cmp.Baseline != "gtx285-6sm" {
		t.Errorf("baseline %q, want gtx285-6sm", cmp.Baseline)
	}
}

// TestFleetCompareValidation: malformed compare sets fail fast with
// the caller-blaming sentinels, before any simulation runs.
func TestFleetCompareValidation(t *testing.T) {
	f := testFleet(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  CompareRequest
		want error
	}{
		{"empty devices", CompareRequest{Kernel: "matmul16"}, ErrInvalidRequest},
		{"duplicate device", CompareRequest{Kernel: "matmul16", Devices: []string{"gtx285-6sm", "gtx285-6sm"}}, ErrInvalidRequest},
		{"unknown device", CompareRequest{Kernel: "matmul16", Devices: []string{"gtx285-6sm", "gtx999"}}, ErrUnknownDevice},
		{"foreign baseline", CompareRequest{Kernel: "matmul16", Devices: []string{"gtx285-6sm"}, Baseline: "gtx285-3sm"}, ErrInvalidRequest},
		{"unknown kernel", CompareRequest{Kernel: "nope", Devices: []string{"gtx285-6sm"}}, ErrUnknownKernel},
		{"oversized", CompareRequest{Kernel: "matmul16", Size: 1 << 20, Devices: []string{"gtx285-6sm"}}, ErrInvalidRequest},
	}
	for _, c := range cases {
		if _, err := f.Compare(ctx, c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	// A failing device identifies itself in the error.
	_, err := f.Compare(ctx, CompareRequest{Kernel: "matmul16", Size: 100, Devices: []string{"gtx285-6sm"}})
	if err == nil || !strings.Contains(err.Error(), `device "gtx285-6sm"`) {
		t.Errorf("per-device failure not attributed: %v", err)
	}
}

// TestFleetAnalyzeBatchRoutes: a batch mixing devices routes each
// request, keeps slots aligned, and wraps failures with index and
// kernel like the single-session batch.
func TestFleetAnalyzeBatchRoutes(t *testing.T) {
	f := testFleet(t)
	reqs := []Request{
		{Kernel: "matmul16", Size: 64, Seed: 7},
		{Kernel: "matmul16", Size: 64, Seed: 7, Device: "gtx999"},
		{Kernel: "cr", Size: 8, Seed: 2, Device: "gtx285-6sm"},
	}
	results, err := f.AnalyzeBatch(context.Background(), reqs)
	if err == nil || !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("batch error should join the unknown-device failure, got %v", err)
	}
	if !strings.Contains(err.Error(), `request 1 (kernel "matmul16")`) {
		t.Errorf("failure not attributed to its request: %v", err)
	}
	if results[0] == nil || results[1] != nil || results[2] == nil {
		t.Fatalf("result slots wrong: %v", results)
	}
	if results[0].Device != "gtx285-6sm" || results[2].Device != "gtx285-6sm" {
		t.Errorf("batch results name %q/%q, want catalog names", results[0].Device, results[2].Device)
	}
}

// TestFleetCalibrationsCachedPerFingerprint: after serving two
// different devices, the fleet's cache directory holds one entry per
// hardware fingerprint, each loadable only for its own device — no
// cross-device reuse.
func TestFleetCalibrationsCachedPerFingerprint(t *testing.T) {
	f := testFleet(t)
	// Ensure both devices have calibrated (idempotent if other tests
	// already did).
	for _, name := range []string{"gtx285-6sm", "gtx285-3sm"} {
		a, err := f.Session(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Calibrate(); err != nil {
			t.Fatal(err)
		}
	}
	dir := f.opt.CalibrationDir
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("cache dir %s holds %d entries, want one per device", dir, len(entries))
	}
	six, _ := f.Catalog().Lookup("gtx285-6sm")
	three, _ := f.Catalog().Lookup("gtx285-3sm")
	if timing.CacheFile(dir, six) == timing.CacheFile(dir, three) {
		t.Fatal("different devices share a cache slot")
	}
	for _, dev := range []Device{six, three} {
		cal, ok := timing.LoadCachedCalibration(dir, dev)
		if !ok {
			t.Fatalf("no cache entry for %s", dev.Name)
		}
		if DeviceFingerprint(cal.Config()) != DeviceFingerprint(dev) {
			t.Errorf("cache entry for %s embeds foreign hardware", dev.Name)
		}
	}
	// Each file really is a different calibration: the 3-SM curves
	// must not equal the 6-SM ones wholesale.
	b6, err := os.ReadFile(timing.CacheFile(dir, six))
	if err != nil {
		t.Fatal(err)
	}
	b3, err := os.ReadFile(timing.CacheFile(dir, three))
	if err != nil {
		t.Fatal(err)
	}
	if string(b6) == string(b3) {
		t.Error("6-SM and 3-SM cache entries are identical")
	}
}
