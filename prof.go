package gpuperf

import "gpuperf/internal/prof"

// StartProfiles starts CPU profiling to cpuPath and arranges a heap
// profile at memPath (either may be empty). The returned stop
// function finishes both; call it exactly once.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return prof.Start(cpuPath, memPath)
}
