package gpuperf

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"gpuperf/internal/asm"
	"gpuperf/internal/barra"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
	"gpuperf/internal/tridiag"
)

// Params selects a kernel's problem instance. Input generation is
// deterministic: the same (Size, Seed) pair always produces the same
// device memory image, whatever else the process is doing — builders
// draw from their own rand.Rand seeded per request, never from the
// global math/rand stream.
type Params struct {
	// Size is the kernel-specific problem size (matrix dimension for
	// matmul, independent systems for cyclic reduction, block rows
	// for SpMV). 0 picks the kernel's default.
	Size int `json:"size,omitempty"`
	// Seed drives input generation. 0 means seed 1.
	Seed int64 `json:"seed,omitempty"`
}

func (p Params) normalize(def int) Params {
	if p.Size == 0 {
		p.Size = def
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Workload is one built problem instance: a launch plus its input
// memory, with the metadata the Analyzer folds into a Result. The
// launch and memory fields use internal engine types — consumers of
// the public API receive Workloads from a Registry and hand them
// back to an Analyzer rather than constructing them.
type Workload struct {
	// Launch is the kernel invocation; Mem its populated memory.
	Launch barra.Launch
	Mem    *barra.Memory
	// Regions optionally attributes global traffic to named arrays.
	Regions []barra.Region
	// FLOPs is the useful floating-point work of the instance
	// (0 when not meaningful), used for achieved-GFLOPS figures.
	FLOPs int64
	// Verify, when non-nil, checks the functional run's output in Mem
	// against a CPU reference and returns the worst absolute error
	// (or residual). Nil means the kernel has no checkable output.
	// Long-running references (matmul is O(n³) on one host thread)
	// observe ctx so an abandoned request stops burning CPU.
	Verify func(ctx context.Context, mem *barra.Memory) (float64, error)
	// MaxWarpInstructions, when > 0, caps the functional run's dynamic
	// instruction budget below the engine default — the per-submission
	// ceiling user-submitted kernels carry from admission.
	MaxWarpInstructions int64
}

// BuildFunc constructs a Workload for one problem instance. p
// arrives normalized: Size and Seed are both concrete.
type BuildFunc func(dev Device, p Params) (*Workload, error)

// KernelSpec describes one named kernel in a Registry.
type KernelSpec struct {
	// Name is the registry key (e.g. "matmul16", "spmv-bell-imiv").
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description"`
	// DefaultSize is the problem size used when a request passes 0;
	// MaxSize bounds what a request may ask for — the ceiling on the
	// memory one (possibly network-originated) analysis can demand.
	DefaultSize int `json:"default_size"`
	MaxSize     int `json:"max_size"`
	// Family groups the optimization variants of one algorithm
	// ("matmul", "cr", "spmv"): the members share problem semantics
	// and input layout per (size, seed), so their measured times are
	// directly comparable — the measurable counterparts of the
	// advisor's counterfactual scenarios.
	Family string `json:"family,omitempty"`
	// Optimization names the advisor scenario this variant realizes
	// relative to its family's baseline (e.g. cr-nbc realizes
	// "conflict-free-shared" over cr); empty for the baseline itself
	// and for variants whose change no cataloged scenario models.
	Optimization string `json:"optimization,omitempty"`
	// Unverified marks a user-submitted kernel: it has no CPU
	// reference, so analysis always skips verification and results
	// carry Result.VerifyError saying so.
	Unverified bool `json:"unverified,omitempty"`
	// Build constructs the instance. Never nil in a registered spec.
	Build BuildFunc `json:"-"`
}

// checkSize validates normalized params against the spec's bounds,
// tagging violations as ErrInvalidRequest so front-ends can blame
// the caller.
func (s KernelSpec) checkSize(p Params) error {
	if p.Size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalidRequest, p.Size)
	}
	if s.MaxSize > 0 && p.Size > s.MaxSize {
		return fmt.Errorf("%w: size %d exceeds kernel %q limit %d", ErrInvalidRequest, p.Size, s.Name, s.MaxSize)
	}
	return nil
}

// build validates the normalized params and runs the builder.
// Builder rejections (wrong alignment, not a power of two, ...) are
// also tagged ErrInvalidRequest: they are overwhelmingly shape
// problems of the requested size. The known tradeoff is that a
// builder failing because the session's Device cannot host the
// kernel is misattributed to the caller.
func (s KernelSpec) build(dev Device, p Params) (*Workload, error) {
	if err := s.checkSize(p); err != nil {
		return nil, err
	}
	w, err := s.Build(dev, p)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return w, nil
}

// Registry maps kernel names to specs. It is safe for concurrent
// use; the zero value is not valid, use NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]KernelSpec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]KernelSpec{}}
}

// Register adds or replaces a spec. Note that a BuildFunc returns a
// Workload whose launch/memory fields are engine types without
// public constructors, so registering new kernels is currently for
// code inside this module (the built-ins, tests, forks); external
// consumers use the registry read-only.
func (r *Registry) Register(s KernelSpec) error {
	if s.Name == "" || s.Build == nil {
		return fmt.Errorf("gpuperf: kernel spec needs a name and a build function")
	}
	if s.DefaultSize <= 0 {
		return fmt.Errorf("gpuperf: kernel %q needs a positive default size", s.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs[s.Name] = s
	return nil
}

// Deregister removes the spec registered under name, reporting
// whether it was present — how the fleet retires an evicted
// submission's ephemeral kernel.
func (r *Registry) Deregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.specs[name]
	delete(r.specs, name)
	return ok
}

// Clone returns an independent registry holding the same specs.
// A fleet clones its configured registry before accepting
// submissions, so ephemeral entries never leak into the (possibly
// process-global) original.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := NewRegistry()
	for name, s := range r.specs { //gpuperf:unordered map-to-map copy; every ordered view sorts (Specs, Names)
		c.specs[name] = s
	}
	return c
}

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (KernelSpec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	return s, ok
}

// Specs returns every registered spec, sorted by name.
func (r *Registry) Specs() []KernelSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]KernelSpec, 0, len(r.specs))
	for _, s := range r.specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered kernel names, sorted.
func (r *Registry) Names() []string {
	specs := r.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ErrUnknownKernel reports a Build or Analyze request naming a kernel
// the registry does not hold; errors.Is-match it to map the condition
// (the HTTP front-end turns it into 404).
var ErrUnknownKernel = fmt.Errorf("gpuperf: unknown kernel")

// ErrInvalidRequest reports request parameters a kernel cannot
// satisfy — a size beyond the spec's MaxSize ceiling or one its
// builder rejects (the HTTP front-end turns it into 400).
var ErrInvalidRequest = fmt.Errorf("gpuperf: invalid request")

// Build constructs the named kernel's workload for the device.
func (r *Registry) Build(dev Device, name string, p Params) (*Workload, error) {
	w, _, err := r.buildRequest(dev, name, p)
	return w, err
}

// prepare resolves name and validates the normalized params without
// building anything — the cheap front half of a request, so callers
// can fail fast (or wait for calibration) before allocating inputs.
func (r *Registry) prepare(name string, p Params) (KernelSpec, Params, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return KernelSpec{}, p, fmt.Errorf("%w %q (have %v)", ErrUnknownKernel, name, r.Names())
	}
	p = p.normalize(s.DefaultSize)
	if err := s.checkSize(p); err != nil {
		return KernelSpec{}, p, err
	}
	return s, p, nil
}

// buildRequest is Build returning the normalized params alongside
// the workload, so callers can echo the concrete size and seed.
func (r *Registry) buildRequest(dev Device, name string, p Params) (*Workload, Params, error) {
	s, p, err := r.prepare(name, p)
	if err != nil {
		return nil, p, err
	}
	w, err := s.build(dev, p)
	return w, p, err
}

// Disassemble renders the named kernel's native-ISA listing. It
// builds the full problem instance even though only the program is
// printed: some programs depend on the generated inputs' structure
// (SpMV's layout follows the matrix), and disassembly is a one-shot
// CLI path where the extra build cost is acceptable.
func (r *Registry) Disassemble(dev Device, name string, p Params) (string, error) {
	w, err := r.Build(dev, name, p)
	if err != nil {
		return "", err
	}
	return asm.Disassemble(w.Launch.Prog), nil
}

var (
	defaultRegistryOnce sync.Once
	defaultRegistry     *Registry
)

// DefaultRegistry returns the process-wide registry preloaded with
// the paper's case-study kernels:
//
//	matmul-naive, matmul8,
//	matmul16, matmul32              dense matrix multiply (§5.1; the
//	                                naive baseline starts the §4 walk)
//	cr, cr-nbc, cr-fwd              cyclic reduction (§5.2)
//	spmv-ell, spmv-bell-im,
//	spmv-bell-imiv                  sparse matrix-vector (§5.3)
func DefaultRegistry() *Registry {
	defaultRegistryOnce.Do(func() {
		defaultRegistry = NewRegistry()
		for _, s := range builtinSpecs() {
			if err := defaultRegistry.Register(s); err != nil {
				panic(err) // built-in specs are statically well-formed
			}
		}
	})
	return defaultRegistry
}

func builtinSpecs() []KernelSpec {
	specs := []KernelSpec{
		{
			Name:        "cr",
			Description: "cyclic-reduction tridiagonal solver, 512 equations/system (paper §5.2)",
			DefaultSize: 128,
			MaxSize:     16384,
			Family:      "cr",
			Build:       buildCR(false, false),
		},
		{
			Name:         "cr-nbc",
			Description:  "cyclic reduction with bank-conflict-removing padding (paper Fig. 8)",
			DefaultSize:  128,
			MaxSize:      16384,
			Family:       "cr",
			Optimization: "conflict-free-shared",
			Build:        buildCR(true, false),
		},
		{
			Name:        "cr-fwd",
			Description: "cyclic reduction, forward-reduction phase only (architect sweeps)",
			DefaultSize: 128,
			MaxSize:     16384,
			Family:      "cr",
			Build:       buildCR(false, true),
		},
		{
			Name:        "matmul-naive",
			Description: "one-thread-per-element dense matmul, uncoalesced column-order accesses (the §4 walk's starting point)",
			DefaultSize: 128,
			// The naive kernel refetches A and B per output element
			// (O(N³) global traffic); cap it well below the tiled
			// variants.
			MaxSize: 512,
			Family:  "matmul",
			Build:   buildMatmulNaive(),
		},
	}
	for _, tile := range []int{8, 16, 32} {
		specs = append(specs, KernelSpec{
			Name:        fmt.Sprintf("matmul%d", tile),
			Description: fmt.Sprintf("Volkov dense matmul, %d×%d shared-memory tile (paper §5.1)", tile, tile),
			DefaultSize: 256,
			// 4096² keeps the three matrices within ~200 MB and far
			// from the kernel's uint32 address-space edge.
			MaxSize:      4096,
			Family:       "matmul",
			Optimization: "perfect-coalescing",
			Build:        buildMatmul(tile),
		})
	}
	for _, v := range []struct {
		name string
		kind kernels.SpMVKind
	}{
		{"spmv-ell", kernels.ELL},
		{"spmv-bell-im", kernels.BELLIM},
		{"spmv-bell-imiv", kernels.BELLIMIV},
	} {
		name, kind := v.name, v.kind
		specs = append(specs, KernelSpec{
			Name:        name,
			Description: fmt.Sprintf("QCD-like SpMV, %s storage (paper §5.3)", kind),
			DefaultSize: 8192,
			MaxSize:     262144,
			Family:      "spmv",
			Build:       buildSpMV(kind),
		})
	}
	return specs
}

// maxAbsDiff returns the worst absolute element difference, erroring
// past tol (a loose fp32 sanity bound — the reference is float64-free
// CPU arithmetic in a different summation order).
func maxAbsDiff(got, want []float32, tol float64) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("gpuperf: verify: %d results, want %d", len(got), len(want))
	}
	worst := 0.0
	for i := range want {
		d := math.Abs(float64(got[i] - want[i]))
		if math.IsNaN(d) {
			return math.NaN(), fmt.Errorf("gpuperf: verify: element %d is NaN (got %v, want %v)", i, got[i], want[i])
		}
		if d > worst {
			worst = d
		}
	}
	if worst > tol {
		return worst, fmt.Errorf("gpuperf: verify: max |error| %.3g exceeds %.3g", worst, tol)
	}
	return worst, nil
}

func buildMatmul(tile int) BuildFunc {
	return func(dev Device, p Params) (*Workload, error) {
		n := p.Size
		mm, err := kernels.NewMatmul(n, tile)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(p.Seed))
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i], b[i] = rng.Float32(), rng.Float32()
		}
		mem, err := mm.NewMemory(a, b)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Launch: mm.Launch(),
			Mem:    mem,
			FLOPs:  mm.FLOPs(),
			Verify: func(ctx context.Context, mem *barra.Memory) (float64, error) {
				got, err := mm.ReadC(mem)
				if err != nil {
					return 0, err
				}
				want, err := mulRefCtx(ctx, n, a, b)
				if err != nil {
					return 0, err
				}
				// fp32 dot products of n terms: scale the bound with n.
				return maxAbsDiff(got, want, 1e-5*float64(n))
			},
		}, nil
	}
}

// buildMatmulNaive builds the family's pre-optimization baseline.
// Input generation matches buildMatmul exactly, so the same
// (size, seed) gives every matmul variant bit-identical A and B —
// measured times across the family compare one optimization at a
// time.
func buildMatmulNaive() BuildFunc {
	return func(dev Device, p Params) (*Workload, error) {
		n := p.Size
		mm, err := kernels.NewMatmulNaive(n)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(p.Seed))
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i], b[i] = rng.Float32(), rng.Float32()
		}
		mem, err := mm.NewMemory(a, b)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Launch: mm.Launch(),
			Mem:    mem,
			FLOPs:  mm.FLOPs(),
			Verify: func(ctx context.Context, mem *barra.Memory) (float64, error) {
				got, err := mm.ReadC(mem)
				if err != nil {
					return 0, err
				}
				want, err := mulRefCtx(ctx, n, a, b)
				if err != nil {
					return 0, err
				}
				return maxAbsDiff(got, want, 1e-5*float64(n))
			},
		}, nil
	}
}

// mulRefCtx is the column-major reference multiply — bit-identical
// arithmetic to kernels.MulRef (float64 accumulation, ascending k
// per element) restructured a column at a time, so an abandoned
// request stops within one column (~n² multiply-adds) instead of
// finishing the whole O(n³) product.
func mulRefCtx(ctx context.Context, n int, a, b []float32) ([]float32, error) {
	c := make([]float32, n*n)
	acc := make([]float64, n)
	for col := 0; col < n; col++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		clear(acc)
		for k := 0; k < n; k++ {
			bv := float64(b[col*n+k])
			arow := a[k*n : (k+1)*n]
			for i, av := range arow {
				acc[i] += float64(av) * bv
			}
		}
		for i, v := range acc {
			c[col*n+i] = float32(v)
		}
	}
	return c, nil
}

func buildCR(nbc, forwardOnly bool) BuildFunc {
	return func(dev Device, p Params) (*Workload, error) {
		const equations = 512
		solver, err := kernels.NewCR(dev, p.Size, equations, nbc, forwardOnly)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(p.Seed))
		systems := make([]tridiag.System, p.Size)
		for i := range systems {
			systems[i] = tridiag.NewRandom(equations, rng)
		}
		mem, err := solver.NewMemory(systems)
		if err != nil {
			return nil, err
		}
		w := &Workload{Launch: solver.Launch(), Mem: mem}
		if !forwardOnly {
			w.Verify = func(ctx context.Context, mem *barra.Memory) (float64, error) {
				worst := 0.0
				for i := range systems {
					if err := ctx.Err(); err != nil {
						return 0, err
					}
					x, err := solver.ReadX(mem, i)
					if err != nil {
						return 0, err
					}
					r := systems[i].Residual(x)
					if math.IsNaN(r) {
						return math.NaN(), fmt.Errorf("gpuperf: verify: system %d residual is NaN", i)
					}
					if r > worst {
						worst = r
					}
				}
				if worst > 1e-3 {
					return worst, fmt.Errorf("gpuperf: verify: worst residual %.3g exceeds 1e-3", worst)
				}
				return worst, nil
			}
		}
		return w, nil
	}
}

func buildSpMV(kind kernels.SpMVKind) BuildFunc {
	return func(dev Device, p Params) (*Workload, error) {
		rng := rand.New(rand.NewSource(p.Seed))
		m, err := sparse.GenQCDLike(p.Size, 9, rng)
		if err != nil {
			return nil, err
		}
		sp, err := kernels.NewSpMV(kind, m)
		if err != nil {
			return nil, err
		}
		x := make([]float32, m.Rows())
		for i := range x {
			x[i] = rng.Float32()
		}
		mem, err := sp.NewMemory(x)
		if err != nil {
			return nil, err
		}
		return &Workload{
			Launch:  sp.Launch(),
			Mem:     mem,
			Regions: sp.Regions(),
			FLOPs:   sp.FLOPs(),
			Verify: func(ctx context.Context, mem *barra.Memory) (float64, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				got, err := sp.ReadY(mem)
				if err != nil {
					return 0, err
				}
				want, err := m.MulDense(x)
				if err != nil {
					return 0, err
				}
				return maxAbsDiff(got, want, 1e-3)
			},
		}, nil
	}
}
