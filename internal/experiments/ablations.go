package experiments

import (
	"fmt"
	"math/rand"

	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/tridiag"
)

// AblationMaxBlocks evaluates paper §5.1's first suggestion: raising
// the resident-block ceiling from 8 to 16 so the 8×8 and 16×16
// matmul tiles can keep 32 warps in flight.
func (s *Suite) AblationMaxBlocks() (*Table, error) {
	return s.matmulAblation(
		"Ablation: max resident blocks 8 -> 16 (paper §5.1)",
		func(c *gpu.Config) { c.MaxBlocksPerSM = 16; c.Name += "+blocks16" },
		[]int{8, 16})
}

// (At 16 resident warps both pipelines are already close to their
// saturation points, so the paper's conjectured gain from a higher
// block ceiling is marginal; the ablation reports the measured
// effect either way.)

// AblationBigSM evaluates paper §5.1's second suggestion: more
// registers and shared memory per SM so the 32×32 tile regains
// occupancy while keeping its higher computational density.
func (s *Suite) AblationBigSM() (*Table, error) {
	return s.matmulAblation(
		"Ablation: 3x register file and shared memory (paper §5.1)",
		func(c *gpu.Config) {
			c.RegistersPerSM *= 3
			c.SharedMemPerSM *= 3
			c.Name += "+bigsm"
		},
		[]int{32})
}

func (s *Suite) matmulAblation(title string, mutate func(*gpu.Config), tiles []int) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"sub-matrix", "baseline ms", "variant ms", "speedup", "baseline warps", "variant warps"},
	}
	base := s.ChipSlice()
	variant := base
	mutate(&variant)
	n := s.matmulSize()
	for _, tile := range tiles {
		mm, err := kernels.NewMatmul(n, tile)
		if err != nil {
			return nil, err
		}
		a := make([]float32, n*n)
		mem, err := mm.NewMemory(a, a)
		if err != nil {
			return nil, err
		}
		baseRes, err := device.Run(base, mm.Launch(), mem)
		if err != nil {
			return nil, err
		}
		mem2, err := mm.NewMemory(a, a)
		if err != nil {
			return nil, err
		}
		varRes, err := device.Run(variant, mm.Launch(), mem2)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%dx%d", tile, tile),
			baseRes.Seconds*1e3, varRes.Seconds*1e3, baseRes.Seconds/varRes.Seconds,
			baseRes.Occupancy.ActiveWarps, varRes.Occupancy.ActiveWarps)
	}
	return t, nil
}

// AblationPrimeBanks evaluates paper §5.2's suggestion: 17 (prime)
// shared-memory banks remove cyclic reduction's power-of-two-stride
// conflicts without code changes.
func (s *Suite) AblationPrimeBanks() (*Table, error) {
	t := &Table{
		Title:  "Ablation: 16 -> 17 (prime) shared memory banks (paper §5.2)",
		Header: []string{"solver", "16-bank ms", "17-bank ms", "speedup"},
	}
	variant := gpu.GTX285(gpu.WithBanks(17))
	systems := s.pick(32, 128)
	for _, nbc := range []bool{false, true} {
		name := "CR"
		if nbc {
			name = "CR-NBC"
		}
		run := func(cfg gpu.Config) (float64, error) {
			solver, err := kernels.NewCR(cfg, systems, crEquations, nbc, true)
			if err != nil {
				return 0, err
			}
			rng := rand.New(rand.NewSource(55))
			sys := make([]tridiag.System, systems)
			for i := range sys {
				sys[i] = tridiag.NewRandom(crEquations, rng)
			}
			mem, err := solver.NewMemory(sys)
			if err != nil {
				return 0, err
			}
			res, err := device.Run(cfg, solver.Launch(), mem)
			if err != nil {
				return 0, err
			}
			return res.Seconds, nil
		}
		base, err := run(s.Cfg)
		if err != nil {
			return nil, err
		}
		prime, err := run(variant)
		if err != nil {
			return nil, err
		}
		t.Add(name, base*1e3, prime*1e3, base/prime)
	}
	t.Notes = append(t.Notes,
		"paper expectation: plain CR speeds up strongly with prime banks; CR-NBC barely changes (its conflicts are already gone)")
	return t, nil
}

// AblationSegment16 evaluates paper §5.3's suggestion: a 16-byte
// minimum memory-transaction granularity reduces SpMV's wasted
// vector traffic versus the hardware's 32 bytes.
func (s *Suite) AblationSegment16() (*Table, error) {
	m, x, err := s.spmvMatrix()
	if err != nil {
		return nil, err
	}
	base := s.ChipSlice()
	variant := base
	variant.MinSegmentBytes = 16
	variant.Name += "+seg16"
	t := &Table{
		Title:  "Ablation: 32B -> 16B transaction granularity (paper §5.3)",
		Header: []string{"format", "32B ms", "16B ms", "speedup"},
	}
	for _, kind := range spmvKinds {
		sp, err := kernels.NewSpMV(kind, m)
		if err != nil {
			return nil, err
		}
		run := func(cfg gpu.Config) (float64, error) {
			mem, err := sp.NewMemory(x)
			if err != nil {
				return 0, err
			}
			res, err := device.Run(cfg, sp.Launch(), mem)
			if err != nil {
				return 0, err
			}
			return res.Seconds, nil
		}
		coarse, err := run(base)
		if err != nil {
			return nil, err
		}
		fine, err := run(variant)
		if err != nil {
			return nil, err
		}
		t.Add(kind.String(), coarse*1e3, fine*1e3, coarse/fine)
	}
	return t, nil
}

// AblationEarlyRelease evaluates paper §5.2's block-scheduling
// suggestion: releasing a block's resources as its warps retire lets
// the next block start sooner when cyclic reduction's tail steps
// idle most warps.
func (s *Suite) AblationEarlyRelease() (*Table, error) {
	variant := gpu.GTX285(gpu.WithEarlyRelease(true))
	systems := s.pick(64, 256)
	t := &Table{
		Title:  "Ablation: early release of finished warps' resources (paper §5.2)",
		Header: []string{"solver", "baseline ms", "early-release ms", "speedup"},
	}
	for _, nbc := range []bool{false, true} {
		name := "CR"
		if nbc {
			name = "CR-NBC"
		}
		run := func(cfg gpu.Config) (float64, error) {
			solver, err := kernels.NewCR(cfg, systems, crEquations, nbc, true)
			if err != nil {
				return 0, err
			}
			rng := rand.New(rand.NewSource(56))
			sys := make([]tridiag.System, systems)
			for i := range sys {
				sys[i] = tridiag.NewRandom(crEquations, rng)
			}
			mem, err := solver.NewMemory(sys)
			if err != nil {
				return 0, err
			}
			res, err := device.Run(cfg, solver.Launch(), mem)
			if err != nil {
				return 0, err
			}
			return res.Seconds, nil
		}
		base, err := run(s.Cfg)
		if err != nil {
			return nil, err
		}
		early, err := run(variant)
		if err != nil {
			return nil, err
		}
		t.Add(name, base*1e3, early*1e3, base/early)
	}
	return t, nil
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Table, error) {
	type exp func() (*Table, error)
	var tables []*Table
	for _, e := range []exp{
		s.Table1, s.Figure2Instr, s.Figure2Shared, s.Figure3Global,
		s.Table2, s.Figure4a, s.Figure4b,
		s.Figure6a, s.Figure6b, s.Figure7a, s.Figure7b, s.Figure8,
		s.Figure11a, s.Figure11b, s.Figure12,
		s.AblationMaxBlocks, s.AblationBigSM, s.AblationPrimeBanks,
		s.AblationSegment16, s.AblationEarlyRelease,
		s.ExtensionMatrixStructures,
	} {
		tb, err := e()
		if err != nil {
			return tables, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
