package experiments

import (
	"fmt"
	"math/rand"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/sparse"
	"gpuperf/internal/texcache"
)

func (s *Suite) spmvBlockRows() int { return s.pick(4096, 16384) }

// spmvBlocksPerRow is the QCD-like degree: 9 3×3 blocks per row.
const spmvBlocksPerRow = 9

var spmvKinds = []kernels.SpMVKind{kernels.ELL, kernels.BELLIM, kernels.BELLIMIV}

func (s *Suite) spmvMatrix() (*sparse.Blocked, []float32, error) {
	m, err := sparse.GenQCDLike(s.spmvBlockRows(), spmvBlocksPerRow, rand.New(rand.NewSource(77)))
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(78))
	x := make([]float32, m.Rows())
	for i := range x {
		x[i] = 2*rng.Float32() - 1
	}
	return m, x, nil
}

func (s *Suite) spmvRun(kind kernels.SpMVKind, m *sparse.Blocked, x []float32, opt *barra.Options) (*kernels.SpMV, *barra.Stats, error) {
	sp, err := kernels.NewSpMV(kind, m)
	if err != nil {
		return nil, nil, err
	}
	mem, err := sp.NewMemory(x)
	if err != nil {
		return nil, nil, err
	}
	if opt == nil {
		opt = &barra.Options{}
	}
	opt.Regions = sp.Regions()
	opt.Parallelism = s.Parallelism
	st, err := barra.Run(s.ChipSlice(), sp.Launch(), mem, opt)
	if err != nil {
		return nil, nil, err
	}
	return sp, st, nil
}

// Figure11a reproduces paper Fig. 11(a): average bytes fetched per
// matrix entry, split into matrix / column-index / vector traffic,
// at 32-, 16- and 4-byte transaction granularities, for the three
// storage formats.
func (s *Suite) Figure11a() (*Table, error) {
	m, x, err := s.spmvMatrix()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 11a: bytes per matrix entry by traffic class and transaction granularity",
		Header: []string{"format", "granularity", "matrix", "colidx", "vector", "total"},
	}
	nnz := float64(m.NNZ())
	for _, kind := range spmvKinds {
		_, st, err := s.spmvRun(kind, m, x, &barra.Options{ExtraSegments: []int{16, 4}})
		if err != nil {
			return nil, err
		}
		for _, seg := range []int{32, 16, 4} {
			mt := float64(st.RegionTraffic["matrix"][seg].Bytes) / nnz
			ct := float64(st.RegionTraffic["colidx"][seg].Bytes) / nnz
			vt := float64(st.RegionTraffic["vector"][seg].Bytes) / nnz
			t.Add(kind.String(), fmt.Sprintf("%dB", seg), mt, ct, vt, mt+ct+vt)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: matrix 4B/entry everywhere; BELL cuts colidx to 1/9; IMIV cuts vector bytes; finer granularity cuts vector bytes further")
	return t, nil
}

// Figure11b reproduces paper Fig. 11(b): measured time and the
// model's per-component breakdown for the three formats.
func (s *Suite) Figure11b() (*Table, error) {
	cal, err := s.SliceCalibration()
	if err != nil {
		return nil, err
	}
	m, x, err := s.spmvMatrix()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 11b: SpMV time breakdown (%d rows, ms)", m.Rows()),
		Header: []string{"format", "instr", "shared", "global",
			"predicted", "measured", "err%", "bottleneck"},
	}
	for _, kind := range spmvKinds {
		sp, st, err := s.spmvRun(kind, m, x, nil)
		if err != nil {
			return nil, err
		}
		est, err := model.Analyze(cal, sp.Launch(), st)
		if err != nil {
			return nil, err
		}
		mem, err := sp.NewMemory(x)
		if err != nil {
			return nil, err
		}
		meas, err := device.Run(s.ChipSlice(), sp.Launch(), mem)
		if err != nil {
			return nil, err
		}
		t.Add(kind.String(),
			est.Component[model.CompInstruction]*1e3,
			est.Component[model.CompShared]*1e3,
			est.Component[model.CompGlobal]*1e3,
			est.TotalSeconds*1e3,
			meas.Seconds*1e3,
			est.CompareError(meas.Seconds)*100,
			est.Bottleneck.String())
	}
	t.Notes = append(t.Notes, "paper shape: all three formats global-memory bound; BELL+IMIV fastest")
	return t, nil
}

// Figure12 reproduces paper Fig. 12: achieved GFLOPS for the three
// formats with and without a texture cache for vector entries. The
// cache variants replay the kernel's vector-region accesses through
// the texture-cache simulator (one cache per block, reset per
// block, mirroring per-cluster locality) and discount the global
// time by the hit traffic.
func (s *Suite) Figure12() (*Table, error) {
	cal, err := s.SliceCalibration()
	if err != nil {
		return nil, err
	}
	m, x, err := s.spmvMatrix()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12: SpMV GFLOPS with optimization combinations",
		Header: []string{"variant", "GFLOPS", "vector hit rate"},
	}
	for _, kind := range spmvKinds {
		for _, cache := range []bool{false, true} {
			sp, err := kernels.NewSpMV(kind, m)
			if err != nil {
				return nil, err
			}
			vecLo, vecHi := vectorRegion(sp)
			var tc *texcache.Cache
			lastBlock := -1
			var hookErr error
			opt := s.runOptions()
			opt.Regions = sp.Regions()
			if cache {
				tc, err = texcache.New(texcache.Default())
				if err != nil {
					return nil, err
				}
				opt.GlobalAccessHook = func(blockID int, load bool, addrs []uint32) {
					if !load || hookErr != nil {
						return
					}
					if blockID != lastBlock {
						// Approximate per-cluster locality: a block's
						// working set does not persist across blocks.
						tc.Reset()
						lastBlock = blockID
					}
					for _, a := range addrs {
						if a >= vecLo && a < vecHi {
							tc.Access(a)
						}
					}
				}
			}
			mem, err := sp.NewMemory(x)
			if err != nil {
				return nil, err
			}
			st, err := barra.Run(s.ChipSlice(), sp.Launch(), mem, opt)
			if err != nil {
				return nil, err
			}
			if hookErr != nil {
				return nil, hookErr
			}
			est, err := model.Analyze(cal, sp.Launch(), st)
			if err != nil {
				return nil, err
			}
			total := est.TotalSeconds
			hitRate := 0.0
			if cache {
				hitRate = tc.HitRate()
				// Discount vector traffic by the hit rate: hits are
				// served by the texture cache, not DRAM.
				native := s.Cfg.MinSegmentBytes
				vecBytes := float64(st.RegionTraffic["vector"][native].Bytes)
				newGlobal := est.Component[model.CompGlobal] -
					vecBytes*hitRate/est.GlobalBandwidthUsed
				times := est.Component
				times[model.CompGlobal] = newGlobal
				total = times.Max()
			}
			name := kind.String()
			if cache {
				name += "+Cache"
			}
			t.Add(name, float64(sp.FLOPs())/total/1e9, hitRate)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: BELL+IMIV beats BELL+IM even without cache; BELL+IMIV+Cache best overall (paper: 37.7 vs 32.0 GFLOPS, +18%)")
	return t, nil
}

// vectorRegion returns the [lo,hi) byte range of the vector array.
func vectorRegion(sp *kernels.SpMV) (uint32, uint32) {
	for _, r := range sp.Regions() {
		if r.Name == "vector" {
			return r.Lo, r.Hi
		}
	}
	return 0, 0
}
