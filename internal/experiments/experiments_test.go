package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// One shared Small suite: calibration and kernels are reused.
var (
	suiteMu   sync.Mutex
	suiteMemo *Suite
)

func suite() *Suite {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if suiteMemo == nil {
		suiteMemo = New(Small)
	}
	return suiteMemo
}

func cellF(t *testing.T, tb *Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Cell(r, c), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number: %v\n%s", r, c, tb.Cell(r, c), err, tb)
	}
	return v
}

func TestTable1(t *testing.T) {
	tb, err := suite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Type II peak ≈ 11.1 Ginstr/s (paper §4.1).
	if v := cellF(t, tb, 1, 3); v < 10.9 || v < 0 || v > 11.3 {
		t.Errorf("Type II peak = %v", v)
	}
}

func TestFigure2Curves(t *testing.T) {
	instr, err := suite().Figure2Instr()
	if err != nil {
		t.Fatal(err)
	}
	// Rising Type II column, saturating near 11.
	first := cellF(t, instr, 0, 2)
	last := cellF(t, instr, len(instr.Rows)-1, 2)
	if !(first < last && last > 8 && last < 11.5) {
		t.Errorf("Type II curve: first=%v last=%v", first, last)
	}
	shared, err := suite().Figure2Shared()
	if err != nil {
		t.Fatal(err)
	}
	sfirst := cellF(t, shared, 0, 1)
	slast := cellF(t, shared, len(shared.Rows)-1, 1)
	if !(sfirst < slast && slast > 700 && slast < 1450) {
		t.Errorf("shared curve: first=%v last=%v", sfirst, slast)
	}
}

func TestFigure3(t *testing.T) {
	tb, err := suite().Figure3Global()
	if err != nil {
		t.Fatal(err)
	}
	// First config column rises with blocks and stays under peak.
	first := cellF(t, tb, 0, 1)
	last := cellF(t, tb, len(tb.Rows)-1, 1)
	if !(first < last && last < 160) {
		t.Errorf("figure 3 shape: first=%v last=%v", first, last)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tb, err := suite().Table2()
	if err != nil {
		t.Fatal(err)
	}
	// blocks column (5): 8, 8, 3; warps column (6): 16, 16, 6.
	wantBlocks := []string{"8", "8", "3"}
	wantWarps := []string{"16", "16", "6"}
	for i := range wantBlocks {
		if tb.Cell(i, 5) != wantBlocks[i] || tb.Cell(i, 6) != wantWarps[i] {
			t.Errorf("row %d: blocks/warps = %s/%s, want %s/%s",
				i, tb.Cell(i, 5), tb.Cell(i, 6), wantBlocks[i], wantWarps[i])
		}
	}
}

func TestFigure4(t *testing.T) {
	a, err := suite().Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	// Instruction counts decrease with tile size; MAD constant.
	i8, i16, i32 := cellF(t, a, 0, 1), cellF(t, a, 1, 1), cellF(t, a, 2, 1)
	if !(i8 > i16 && i16 > i32) {
		t.Errorf("instruction counts not decreasing: %v %v %v", i8, i16, i32)
	}
	if a.Cell(0, 2) != a.Cell(1, 2) || a.Cell(1, 2) != a.Cell(2, 2) {
		t.Errorf("MAD counts differ across tiles")
	}

	b, err := suite().Figure4b()
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: 8x8 and 16x16 instruction-bound, 32x32
	// shared-bound; 16x16 at least as fast as 8x8; 32x32 slower
	// than 16x16 (measured column 5).
	if !strings.Contains(b.Cell(0, 7), "instruction") || !strings.Contains(b.Cell(1, 7), "instruction") {
		t.Errorf("small tiles not instruction-bound: %s / %s", b.Cell(0, 7), b.Cell(1, 7))
	}
	if !strings.Contains(b.Cell(2, 7), "shared") {
		t.Errorf("32x32 not shared-bound: %s", b.Cell(2, 7))
	}
	m8, m16, m32 := cellF(t, b, 0, 5), cellF(t, b, 1, 5), cellF(t, b, 2, 5)
	if m16 > m8*1.05 {
		t.Errorf("16x16 (%v ms) slower than 8x8 (%v ms)", m16, m8)
	}
	if m32 < m16 {
		t.Errorf("32x32 (%v ms) faster than 16x16 (%v ms) — occupancy cliff missing", m32, m16)
	}
	// Model error within 30% for each tile. (The paper's model
	// under-predicts its matmul by ~14% from ignoring barrier
	// stalls; ours shares that blind spot against the device
	// simulator.)
	for r := 0; r < 3; r++ {
		if e := cellF(t, b, r, 6); e > 30 {
			t.Errorf("tile row %d: model error %v%%", r, e)
		}
	}
}

func TestFigure6And7(t *testing.T) {
	a, err := suite().Figure6a()
	if err != nil {
		t.Fatal(err)
	}
	// Step 0 global-bound; steps 2+ shared-bound for plain CR.
	if !strings.Contains(a.Cell(0, 4), "global") {
		t.Errorf("CR step 0 bottleneck = %s", a.Cell(0, 4))
	}
	sharedSteps := 0
	for r := 2; r < len(a.Rows); r++ {
		if strings.Contains(a.Cell(r, 4), "shared") {
			sharedSteps++
		}
	}
	if sharedSteps < 5 {
		t.Errorf("only %d CR steps shared-bound\n%s", sharedSteps, a)
	}

	b, err := suite().Figure6b()
	if err != nil {
		t.Fatal(err)
	}
	instrSteps := 0
	for r := 1; r < len(b.Rows); r++ {
		if strings.Contains(b.Cell(r, 4), "instruction") {
			instrSteps++
		}
	}
	if instrSteps < 7 {
		t.Errorf("only %d CR-NBC steps instruction-bound\n%s", instrSteps, b)
	}

	bw, err := suite().Figure7a()
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth declines as warps shrink.
	if first, last := cellF(t, bw, 0, 2), cellF(t, bw, len(bw.Rows)-2, 2); first <= last {
		t.Errorf("Fig 7a bandwidth not declining: %v vs %v", first, last)
	}

	tx, err := suite().Figure7b()
	if err != nil {
		t.Fatal(err)
	}
	// Conflicted counts ≈ constant over steps 1-4; conflict-free
	// halves (factor doubles).
	c1, c4 := cellF(t, tx, 0, 1), cellF(t, tx, 3, 1)
	if r := c1 / c4; r > 2.5 || r < 0.4 {
		t.Errorf("Fig 7b conflicted tx not ≈constant: %v vs %v", c1, c4)
	}
	n1, n4 := cellF(t, tx, 0, 2), cellF(t, tx, 3, 2)
	if n1/n4 < 6 {
		t.Errorf("Fig 7b conflict-free tx not halving: %v vs %v", n1, n4)
	}
}

func TestFigure8(t *testing.T) {
	tb, err := suite().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	crMs, nbcMs := cellF(t, tb, 0, 1), cellF(t, tb, 1, 1)
	speedup := crMs / nbcMs
	if speedup < 1.25 || speedup > 2.6 {
		t.Errorf("CR-NBC speedup = %.2fx, paper ≈1.6x\n%s", speedup, tb)
	}
	// CR shared-bound, CR-NBC instruction-bound (whole program).
	if !strings.Contains(tb.Cell(0, 7), "shared") {
		t.Errorf("CR bottleneck = %s", tb.Cell(0, 7))
	}
	if !strings.Contains(tb.Cell(1, 7), "instruction") {
		t.Errorf("CR-NBC bottleneck = %s", tb.Cell(1, 7))
	}
	// Model error bounded (paper: 7% on silicon; we allow 40% —
	// the serialized-stage sum over 21 barrier-divided stages
	// compounds per-stage bias).
	for r := 0; r < 2; r++ {
		if e := cellF(t, tb, r, 3); e > 40 {
			t.Errorf("row %d model error %v%%", r, e)
		}
	}
}

func TestFigure11(t *testing.T) {
	a, err := suite().Figure11a()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: kind-major, granularity-minor (32,16,4). ELL@32 row 0,
	// BELL+IM@32 row 3, BELL+IMIV@32 row 6.
	ell32v := cellF(t, a, 0, 4)
	im32v := cellF(t, a, 3, 4)
	imiv32v := cellF(t, a, 6, 4)
	if !(imiv32v < im32v && im32v <= ell32v*1.05) {
		t.Errorf("vector bytes not improving: ELL %v, IM %v, IMIV %v", ell32v, im32v, imiv32v)
	}
	// Colidx: BELL ≈ ELL/9.
	ellCol, imCol := cellF(t, a, 0, 3), cellF(t, a, 3, 3)
	if r := ellCol / imCol; r < 5 || r > 14 {
		t.Errorf("colidx reduction = %v, want ≈9", r)
	}
	// Finer granularity reduces vector bytes for ELL: 32B vs 16B.
	if v16 := cellF(t, a, 1, 4); v16 >= ell32v {
		t.Errorf("16B granularity did not reduce vector bytes: %v vs %v", v16, ell32v)
	}

	b, err := suite().Figure11b()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if !strings.Contains(b.Cell(r, 7), "global") {
			t.Errorf("%s not global-bound: %s", b.Cell(r, 0), b.Cell(r, 7))
		}
		if e := cellF(t, b, r, 6); e > 35 {
			t.Errorf("row %d model error %v%%", r, e)
		}
	}
	// IMIV measured faster than IM.
	if im, imiv := cellF(t, b, 1, 5), cellF(t, b, 2, 5); imiv >= im {
		t.Errorf("IMIV (%v ms) not faster than IM (%v ms)", imiv, im)
	}
}

func TestFigure12(t *testing.T) {
	tb, err := suite().Figure12()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: ELL, ELL+Cache, IM, IM+Cache, IMIV, IMIV+Cache.
	g := func(r int) float64 { return cellF(t, tb, r, 1) }
	if !(g(5) > g(3)) {
		t.Errorf("IMIV+Cache (%v) not above IM+Cache (%v)\n%s", g(5), g(3), tb)
	}
	if !(g(4) > g(2)) {
		t.Errorf("IMIV (%v) not above IM (%v)", g(4), g(2))
	}
	if !(g(1) >= g(0) && g(3) >= g(2) && g(5) >= g(4)) {
		t.Errorf("cache variants not ≥ uncached: %v", tb.Rows)
	}
}

func TestAblations(t *testing.T) {
	s := suite()
	mb, err := s.AblationMaxBlocks()
	if err != nil {
		t.Fatal(err)
	}
	// The 16-block ceiling doubles resident warps. At 16 warps the
	// pipelines are already near saturation (Fig. 2), so the paper's
	// conjectured gain is marginal; assert the variant is within
	// scheduling noise of the baseline and that the warp count rose.
	for r := 0; r < len(mb.Rows); r++ {
		if sp := cellF(t, mb, r, 3); sp < 0.85 {
			t.Errorf("max-blocks ablation row %d slowdown %v", r, sp)
		}
	}
	// Only the 8x8 tile gains warps: the 16x16 tile's register
	// ceiling already binds at 8 blocks (Table 2), a wrinkle the
	// paper's suggestion glosses over.
	if w := cellF(t, mb, 0, 5); w <= cellF(t, mb, 0, 4) {
		t.Errorf("max-blocks ablation 8x8: warps did not rise (%v vs %v)",
			w, cellF(t, mb, 0, 4))
	}

	pb, err := s.AblationPrimeBanks()
	if err != nil {
		t.Fatal(err)
	}
	crSpeed := cellF(t, pb, 0, 3)
	nbcSpeed := cellF(t, pb, 1, 3)
	if crSpeed < 1.3 {
		t.Errorf("prime banks CR speedup %v, want >1.3", crSpeed)
	}
	if nbcSpeed > crSpeed {
		t.Errorf("prime banks helped NBC (%v) more than CR (%v)", nbcSpeed, crSpeed)
	}

	seg, err := s.AblationSegment16()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(seg.Rows); r++ {
		if sp := cellF(t, seg, r, 3); sp < 1.0 {
			t.Errorf("16B segments slowed %s: %v", seg.Cell(r, 0), sp)
		}
	}

	big, err := s.AblationBigSM()
	if err != nil {
		t.Fatal(err)
	}
	if sp := cellF(t, big, 0, 3); sp < 1.0 {
		t.Errorf("bigger SM slowed 32x32: %v", sp)
	}

	er, err := s.AblationEarlyRelease()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(er.Rows); r++ {
		if sp := cellF(t, er, r, 2); sp <= 0 {
			t.Errorf("early release row %d: bad time %v", r, sp)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "x", Header: []string{"a", "bb"}}
	tb.Add("one", 2)
	tb.Add(3.5, "four")
	tb.Notes = append(tb.Notes, "n1")
	out := tb.String()
	for _, want := range []string{"== x ==", "a", "bb", "one", "3.5", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if tb.Cell(5, 5) != "" {
		t.Error("out-of-range Cell not empty")
	}
}

func TestChartRendering(t *testing.T) {
	tb := &Table{Title: "curve", Header: []string{"x", "y"}}
	tb.Add(1, 10.0)
	tb.Add(2, 20.0)
	tb.Add(3, "not-a-number")
	out := tb.Chart(1, 20)
	if !strings.Contains(out, "#################### 20") {
		t.Errorf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "########## 10") {
		t.Errorf("half bar missing:\n%s", out)
	}
	empty := &Table{Title: "e", Header: []string{"x", "y"}}
	if !strings.Contains(empty.Chart(1, 0), "no data") {
		t.Error("empty chart not handled")
	}
}

// TestExtensionMatrixStructures: interleaving's vector saving must
// decline monotonically from banded through QCD-like to random
// column structure.
func TestExtensionMatrixStructures(t *testing.T) {
	tb, err := suite().ExtensionMatrixStructures()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (banded IM, banded IMIV, qcd IM, qcd IMIV, random IM,
	// random IMIV); saving sits in column 4 of the IMIV rows as
	// "N.NNx".
	saving := func(row int) float64 {
		var v float64
		if _, err := fmt.Sscanf(tb.Cell(row, 4), "%fx", &v); err != nil {
			t.Fatalf("row %d saving cell %q: %v", row, tb.Cell(row, 4), err)
		}
		return v
	}
	banded, qcd, random := saving(1), saving(3), saving(5)
	// Local structures benefit substantially; random columns do not
	// (the paper's locality mechanism). Banded can save slightly
	// less than the QCD stencil because its IM baseline is already
	// partially coalesced — the interesting boundary is local vs
	// random.
	if banded < 1.5 || qcd < 1.5 {
		t.Errorf("local-structure savings too small: banded %.2fx, qcd %.2fx", banded, qcd)
	}
	if random > 1.3 {
		t.Errorf("random-structure saving %.2fx — interleaving should not help without locality", random)
	}
	if !(banded > random && qcd > random) {
		t.Errorf("locality ordering violated: banded %.2f, qcd %.2f, random %.2f", banded, qcd, random)
	}
}
