package experiments

import (
	"fmt"
	"math/rand"

	"gpuperf/internal/barra"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
)

// ExtensionMatrixStructures generalizes Fig. 11 beyond the QCD
// matrix: it sweeps the SpMV formats over three matrix families with
// identical dimensions but different column structure — banded
// (ideal for vector interleaving), QCD-like stencil (the paper's
// case), and random uniform-degree (the adversarial case). The
// paper's own intuition ("the more apart two rows are, the less
// chance they will share a single memory transaction") predicts the
// IMIV advantage shrinks as locality disappears; this experiment
// quantifies it.
func (s *Suite) ExtensionMatrixStructures() (*Table, error) {
	rows := s.pick(2048, 8192)
	rng := rand.New(rand.NewSource(123))
	families := []struct {
		name string
		gen  func() (*sparse.Blocked, error)
	}{
		{"banded", func() (*sparse.Blocked, error) { return sparse.GenBanded(rows, 9, rng) }},
		{"QCD-like", func() (*sparse.Blocked, error) { return sparse.GenQCDLike(rows, 9, rng) }},
		{"random", func() (*sparse.Blocked, error) { return sparse.GenRandomUniform(rows, 9, rng) }},
	}

	t := &Table{
		Title: fmt.Sprintf("Extension: SpMV vector traffic by matrix structure (%d block rows)", rows),
		Header: []string{"structure", "format", "vector B/entry", "coalescing eff",
			"IMIV vector saving"},
	}
	native := s.Cfg.MinSegmentBytes
	for _, fam := range families {
		m, err := fam.gen()
		if err != nil {
			return nil, err
		}
		x := make([]float32, m.Rows())
		for i := range x {
			x[i] = rng.Float32()
		}
		nnz := float64(m.NNZ())
		var imVec, imivVec float64
		for _, kind := range []kernels.SpMVKind{kernels.BELLIM, kernels.BELLIMIV} {
			sp, err := kernels.NewSpMV(kind, m)
			if err != nil {
				return nil, err
			}
			mem, err := sp.NewMemory(x)
			if err != nil {
				return nil, err
			}
			opt := s.runOptions()
			opt.Regions = sp.Regions()
			st, err := barra.Run(s.ChipSlice(), sp.Launch(), mem, opt)
			if err != nil {
				return nil, err
			}
			vec := float64(st.RegionTraffic["vector"][native].Bytes) / nnz
			if kind == kernels.BELLIM {
				imVec = vec
			} else {
				imivVec = vec
			}
			saving := ""
			if kind == kernels.BELLIMIV && imVec > 0 {
				saving = fmt.Sprintf("%.2fx", imVec/imivVec)
			}
			t.Add(fam.name, kind.String(), vec, st.CoalescingEfficiency(), saving)
		}
	}
	t.Notes = append(t.Notes,
		"expected: interleaving saves ~2x vector bytes on local structures (banded, QCD-like) and nothing on random columns — the locality mechanism behind the paper's 18% win; banded saves slightly less than QCD because its IM baseline is already partially coalesced")
	return t, nil
}
