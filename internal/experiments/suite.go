// Package experiments regenerates every table and figure of the
// paper's evaluation (the per-experiment index lives in DESIGN.md).
// Each experiment returns a Table of labelled series, printable as
// text; cmd/experiments drives them all and EXPERIMENTS.md records
// paper-vs-measured comparisons.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/timing"
)

// Scale selects workload sizes: Small keeps every experiment fast
// enough for go test; Large approaches the paper's configurations.
type Scale int

// Workload scales.
const (
	Small Scale = iota
	Large
)

// Suite carries the device configuration and its calibration across
// experiments.
type Suite struct {
	Cfg   gpu.Config
	Scale Scale
	// Parallelism is passed to every functional (barra) run: worker
	// goroutines per launch (0 = all host cores, 1 = serial). Results
	// are bit-identical at any setting.
	Parallelism int

	calOnce sync.Once
	cal     *timing.Calibration
	calErr  error

	mmOnce sync.Once
	mmCal  *timing.Calibration
	mmErr  error
}

// New builds a suite for the GTX 285.
func New(scale Scale) *Suite {
	return &Suite{Cfg: gpu.GTX285(), Scale: scale}
}

// Calibration lazily calibrates the model (microbenchmarks on the
// device simulator) and caches the result.
func (s *Suite) Calibration() (*timing.Calibration, error) {
	s.calOnce.Do(func() {
		s.cal, s.calErr = timing.Calibrate(s.Cfg)
	})
	return s.cal, s.calErr
}

// ChipSlice returns the configuration the matmul and SpMV case
// studies run on. At Small scale it is a 6-SM (two-cluster) slice of
// the GTX 285: the paper's occupancy effects need several resident
// blocks per SM, and a small workload cannot feed 240 blocks to the
// full chip, but it can feed 48 to the slice. Per-SM behaviour is
// identical; only absolute throughput scales.
func (s *Suite) ChipSlice() gpu.Config {
	if s.Scale == Large {
		return s.Cfg
	}
	c := s.Cfg
	c.Name += "-6sm"
	c.NumSMs = 6
	return c
}

// SliceCalibration calibrates the chip slice (cached).
func (s *Suite) SliceCalibration() (*timing.Calibration, error) {
	if s.Scale == Large {
		return s.Calibration()
	}
	s.mmOnce.Do(func() {
		s.mmCal, s.mmErr = timing.Calibrate(s.ChipSlice())
	})
	return s.mmCal, s.mmErr
}

// runOptions returns a fresh barra.Options carrying the suite's
// parallelism; experiments layer their own knobs on top.
func (s *Suite) runOptions() *barra.Options {
	return &barra.Options{Parallelism: s.Parallelism}
}

// pick returns small for Small scale, large otherwise.
func (s *Suite) pick(small, large int) int {
	if s.Scale == Large {
		return large
	}
	return small
}

// Table is one experiment's output: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Cell returns row r, column c (for tests).
func (t *Table) Cell(r, c int) string {
	if r < 0 || r >= len(t.Rows) || c < 0 || c >= len(t.Rows[r]) {
		return ""
	}
	return t.Rows[r][c]
}

// Chart renders one numeric column as an ASCII bar chart — enough to
// eyeball the *figures* (saturation curves, sawtooth) in a terminal.
// col indexes Rows; labels come from column 0.
func (t *Table) Chart(col int, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	vals := make([]float64, len(t.Rows))
	ok := make([]bool, len(t.Rows))
	for i, r := range t.Rows {
		if col >= len(r) {
			continue
		}
		if v, err := strconv.ParseFloat(r[col], 64); err == nil {
			vals[i], ok[i] = v, true
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	title := t.Title
	if col < len(t.Header) {
		title += " [" + t.Header[col] + "]"
	}
	fmt.Fprintf(&b, "%s\n", title)
	if maxV == 0 {
		fmt.Fprintln(&b, "(no data)")
		return b.String()
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r) > 0 && len(r[0]) > labelW {
			labelW = len(r[0])
		}
	}
	for i, r := range t.Rows {
		if !ok[i] {
			continue
		}
		n := int(vals[i] / maxV * float64(width))
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", labelW, r[0], strings.Repeat("#", n), vals[i])
	}
	return b.String()
}
