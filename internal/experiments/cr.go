package experiments

import (
	"fmt"
	"math/rand"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/tridiag"
)

func (s *Suite) crSystems() int { return s.pick(64, 512) }

// crEquations is fixed at the paper's 512 (the stride/conflict
// pattern depends on it).
const crEquations = 512

func (s *Suite) crRun(nbc, forwardOnly bool) (*kernels.CR, barra.Launch, *barra.Stats, *barra.Memory, error) {
	solver, err := kernels.NewCR(s.Cfg, s.crSystems(), crEquations, nbc, forwardOnly)
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	rng := rand.New(rand.NewSource(99))
	systems := make([]tridiag.System, s.crSystems())
	for i := range systems {
		systems[i] = tridiag.NewRandom(crEquations, rng)
	}
	mem, err := solver.NewMemory(systems)
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	stats, err := barra.Run(s.Cfg, solver.Launch(), mem, s.runOptions())
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	return solver, solver.Launch(), stats, mem, nil
}

// figure6 renders the per-step simulated breakdown for CR (nbc
// false) or CR-NBC (nbc true) — paper Figs. 6(a) and 6(b), forward
// reduction only. Steps 4..9 are reported individually (the paper
// groups them because they are identical).
func (s *Suite) figure6(nbc bool) (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	_, l, st, _, err := s.crRun(nbc, true)
	if err != nil {
		return nil, err
	}
	est, err := model.Analyze(cal, l, st)
	if err != nil {
		return nil, err
	}
	name := "CR"
	if nbc {
		name = "CR-NBC"
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 6%s: %s per-step breakdown (%d systems x %d equations, ms)",
			map[bool]string{false: "a", true: "b"}[nbc], name, s.crSystems(), crEquations),
		Header: []string{"step", "global", "shared", "instr", "bottleneck", "warps"},
	}
	stages := est.Stages
	if len(stages) > 10 {
		stages = stages[:10] // steps 0..9; the trailing exit stage is noise
	}
	for _, stage := range stages {
		t.Add(fmt.Sprintf("step %d", stage.Index),
			stage.Times[model.CompGlobal]*1e3,
			stage.Times[model.CompShared]*1e3,
			stage.Times[model.CompInstruction]*1e3,
			stage.Bottleneck.String(),
			stage.Warps)
	}
	if nbc {
		t.Notes = append(t.Notes, "paper shape: every step instruction-bound after padding removes conflicts")
	} else {
		t.Notes = append(t.Notes, "paper shape: step 0 global-bound, step 1 instruction-bound, steps 2+ shared-bound")
	}
	return t, nil
}

// Figure6a is the plain-CR breakdown.
func (s *Suite) Figure6a() (*Table, error) { return s.figure6(false) }

// Figure6b is the CR-NBC breakdown.
func (s *Suite) Figure6b() (*Table, error) { return s.figure6(true) }

// Figure7a reproduces paper Fig. 7(a): the sustained shared-memory
// bandwidth available to each forward step, given its active warps.
func (s *Suite) Figure7a() (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	_, l, st, _, err := s.crRun(false, true)
	if err != nil {
		return nil, err
	}
	est, err := model.Analyze(cal, l, st)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7a: sustained shared memory bandwidth per CR step (GB/s)",
		Header: []string{"step", "warps", "bandwidth"},
	}
	stages := est.Stages
	if len(stages) > 10 {
		stages = stages[:10]
	}
	var sum, count float64
	for _, stage := range stages[1:] { // skip the load step
		bw := cal.SharedBandwidth(stage.Warps) / 1e9
		t.Add(fmt.Sprintf("step %d", stage.Index), stage.Warps, bw)
		sum += bw
		count++
	}
	t.Add("average", "", sum/count)
	t.Notes = append(t.Notes, "paper: 1029, 723, 470, 330 GB/s for steps 1-4+, average 397")
	return t, nil
}

// Figure7b reproduces paper Fig. 7(b): shared-memory transactions
// per forward step, with and without bank conflicts.
func (s *Suite) Figure7b() (*Table, error) {
	_, _, cr, _, err := s.crRun(false, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7b: shared memory transactions per CR forward step",
		Header: []string{"step", "with conflicts", "no conflicts", "factor"},
	}
	for i, stage := range cr.Stages {
		if i == 0 {
			continue // load stage
		}
		factor := 0.0
		if stage.SharedTxNoConflict > 0 {
			factor = float64(stage.SharedTx) / float64(stage.SharedTxNoConflict)
		}
		t.Add(fmt.Sprintf("step %d", i), stage.SharedTx, stage.SharedTxNoConflict, factor)
	}
	t.Notes = append(t.Notes,
		"paper shape: conflicted counts stay ≈constant across early steps while conflict-free counts halve")
	return t, nil
}

// Figure8 reproduces paper Fig. 8: measured versus simulated total
// time for the full CR and CR-NBC solvers.
func (s *Suite) Figure8() (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 8: CR vs CR-NBC, measured and simulated (%d systems x %d equations, ms)",
			s.crSystems(), crEquations),
		Header: []string{"solver", "measured", "simulated", "err%", "instr", "shared", "global", "bottleneck"},
	}
	var times [2]float64
	for i, nbc := range []bool{false, true} {
		solver, l, st, _, err := s.crRun(nbc, false)
		if err != nil {
			return nil, err
		}
		est, err := model.Analyze(cal, l, st)
		if err != nil {
			return nil, err
		}
		// Measured on fresh memory.
		rng := rand.New(rand.NewSource(99))
		systems := make([]tridiag.System, s.crSystems())
		for j := range systems {
			systems[j] = tridiag.NewRandom(crEquations, rng)
		}
		mem, err := solver.NewMemory(systems)
		if err != nil {
			return nil, err
		}
		meas, err := device.Run(s.Cfg, l, mem)
		if err != nil {
			return nil, err
		}
		times[i] = meas.Seconds
		name := "CR"
		if nbc {
			name = "CR-NBC"
		}
		t.Add(name, meas.Seconds*1e3, est.TotalSeconds*1e3,
			est.CompareError(meas.Seconds)*100,
			est.Component[model.CompInstruction]*1e3,
			est.Component[model.CompShared]*1e3,
			est.Component[model.CompGlobal]*1e3,
			est.Bottleneck.String())
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"padding speedup: %.2fx (paper: 1.6x; paper times 0.757 vs 0.468 ms at 512 systems)",
		times[0]/times[1]))
	return t, nil
}
