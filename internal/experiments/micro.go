package experiments

import (
	"fmt"

	"gpuperf/internal/isa"
)

// Table1 reproduces paper Table 1: the instruction cost classes,
// their functional-unit counts, example instructions, and the
// theoretical peak throughput each implies on the configured GPU.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		Title:  "Table 1: instruction types",
		Header: []string{"type", "functional units", "examples", "peak Ginstr/s"},
	}
	examples := map[isa.Class]string{
		isa.ClassI:   "mul",
		isa.ClassII:  "mov, add, mad",
		isa.ClassIII: "sin, cos, log, rcp",
		isa.ClassIV:  "double precision",
	}
	for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
		t.Add(cls.String(), cls.Units(), examples[cls],
			s.Cfg.PeakInstrThroughput(cls.Units())/1e9)
	}
	return t, nil
}

// Figure2Instr reproduces paper Fig. 2 (left): instruction
// throughput per class versus warps per SM, from the calibrated
// microbenchmark curves.
func (s *Suite) Figure2Instr() (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 2 (left): instruction throughput vs warps per SM (Ginstr/s)",
		Header: []string{"warps", "Type I", "Type II", "Type III", "Type IV"},
	}
	for w := 1; w <= s.Cfg.MaxWarpsPerSM; w += 2 {
		t.Add(w,
			cal.InstrThroughput(isa.ClassI, w)/1e9,
			cal.InstrThroughput(isa.ClassII, w)/1e9,
			cal.InstrThroughput(isa.ClassIII, w)/1e9,
			cal.InstrThroughput(isa.ClassIV, w)/1e9)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Type II saturation suggests ≈%d pipeline stages (paper: 6)", s.saturationPoint(cal)))
	return t, nil
}

func (s *Suite) saturationPoint(cal interface {
	InstrThroughput(isa.Class, int) float64
}) int {
	sat := cal.InstrThroughput(isa.ClassII, s.Cfg.MaxWarpsPerSM)
	for w := 1; w <= s.Cfg.MaxWarpsPerSM; w++ {
		if cal.InstrThroughput(isa.ClassII, w) >= 0.95*sat {
			return w
		}
	}
	return s.Cfg.MaxWarpsPerSM
}

// Figure2Shared reproduces paper Fig. 2 (right): shared-memory
// bandwidth versus warps per SM.
func (s *Suite) Figure2Shared() (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 2 (right): shared memory bandwidth vs warps per SM (GB/s)",
		Header: []string{"warps", "bandwidth"},
	}
	for w := 1; w <= s.Cfg.MaxWarpsPerSM; w += 2 {
		t.Add(w, cal.SharedBandwidth(w)/1e9)
	}
	return t, nil
}

// Figure3Global reproduces paper Fig. 3: global-memory bandwidth
// versus block count for several (threads-per-block, transactions-
// per-thread) configurations, including the leftover sawtooth region
// around multiples of the cluster count.
func (s *Suite) Figure3Global() (*Table, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	type config struct{ threads, trans int }
	configs := []config{
		{512, 64}, {256, 64}, {256, 32}, {128, 64}, {128, 32}, {64, 64}, {512, 2}, {256, 2},
	}
	if s.Scale == Small {
		configs = []config{{256, 32}, {128, 32}, {256, 2}}
	}
	var blocks []int
	if s.Scale == Large {
		for b := 1; b <= 56; b++ {
			blocks = append(blocks, b)
		}
	} else {
		blocks = []int{1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 31, 35, 40, 50, 56}
	}

	t := &Table{Title: "Figure 3: global memory bandwidth vs number of blocks (GB/s)"}
	t.Header = []string{"blocks"}
	for _, c := range configs {
		t.Header = append(t.Header, fmt.Sprintf("%dT,%dM", c.threads, c.trans))
	}
	for _, b := range blocks {
		row := []any{b}
		for _, c := range configs {
			bw, err := cal.GlobalBandwidth(b, c.threads, c.trans)
			if err != nil {
				return nil, err
			}
			row = append(row, bw/1e9)
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"the paper's M=256/128 transaction counts are scaled down (bandwidth saturates in M); the sawtooth with period 10 (cluster count) appears near the peak")
	return t, nil
}
