package experiments

import (
	"fmt"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/occupancy"
)

// matmulTiles are the three sub-matrix sizes of paper §5.1.
var matmulTiles = []int{8, 16, 32}

func (s *Suite) matmulSize() int { return s.pick(256, 512) }

// Table2 reproduces paper Table 2: per-tile register and shared
// memory usage and the resulting resident blocks and warps per SM.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		Title: "Table 2: matmul resource usage and occupancy",
		Header: []string{"sub-matrix", "regs/thread", "smem/block",
			"blocks(regs)", "blocks(smem)", "blocks", "active warps", "limiter"},
	}
	for _, tile := range matmulTiles {
		mm, err := kernels.NewMatmul(s.matmulSize(), tile)
		if err != nil {
			return nil, err
		}
		l := mm.Launch()
		occ, err := occupancy.Compute(s.ChipSlice(), occupancy.Usage{
			ThreadsPerBlock:   l.Block,
			RegsPerThread:     l.Prog.RegsPerThread,
			SharedMemPerBlock: l.Prog.SharedMemBytes,
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%dx%d", tile, tile), l.Prog.RegsPerThread, l.Prog.SharedMemBytes,
			occ.BlocksByRegs, occ.BlocksBySmem, occ.Blocks, occ.ActiveWarps, occ.Limiter)
	}
	return t, nil
}

// matmulRun executes one tile configuration functionally and returns
// the launch plus dynamic statistics.
func (s *Suite) matmulRun(tile int) (*kernels.Matmul, barra.Launch, *barra.Stats, *barra.Memory, error) {
	n := s.matmulSize()
	mm, err := kernels.NewMatmul(n, tile)
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	a := make([]float32, n*n)
	bm := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%17) * 0.25
		bm[i] = float32(i%13) * 0.5
	}
	mem, err := mm.NewMemory(a, bm)
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	stats, err := barra.Run(s.ChipSlice(), mm.Launch(), mem, s.runOptions())
	if err != nil {
		return nil, barra.Launch{}, nil, nil, err
	}
	return mm, mm.Launch(), stats, mem, nil
}

// Figure4a reproduces paper Fig. 4(a): dynamic counts of total
// instructions, MADs, shared transactions and global transactions
// per tile size (warp-level counts, in millions for Large scale).
func (s *Suite) Figure4a() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4a: matmul dynamic statistics (N=%d, warp-level counts)", s.matmulSize()),
		Header: []string{"sub-matrix", "instructions", "MAD", "shared tx", "global tx", "density"},
	}
	for _, tile := range matmulTiles {
		_, _, st, _, err := s.matmulRun(tile)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%dx%d", tile, tile),
			st.Total.WarpInstrs, st.Total.FMADs, st.Total.SharedTx,
			st.Total.Global.Transactions, st.InstructionDensity())
	}
	t.Notes = append(t.Notes,
		"MAD count is N³/32 for every tile; totals fall as the tile grows (paper Fig. 4a)")
	return t, nil
}

// Figure4b reproduces paper Fig. 4(b): the model's per-component
// time breakdown against the measured (device-simulator) time, and
// achieved GFLOPS, per tile size.
func (s *Suite) Figure4b() (*Table, error) {
	cal, err := s.SliceCalibration()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 4b: matmul time breakdown (N=%d, ms)", s.matmulSize()),
		Header: []string{"sub-matrix", "instr", "shared", "global",
			"predicted", "measured", "err%", "bottleneck", "GFLOPS"},
	}
	for _, tile := range matmulTiles {
		mm, l, st, _, err := s.matmulRun(tile)
		if err != nil {
			return nil, err
		}
		est, err := model.Analyze(cal, l, st)
		if err != nil {
			return nil, err
		}
		// Measured: independent run on the timing simulator.
		a := make([]float32, mm.N*mm.N)
		mem2, err := mm.NewMemory(a, a)
		if err != nil {
			return nil, err
		}
		meas, err := device.Run(s.ChipSlice(), l, mem2)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%dx%d", tile, tile),
			est.Component[model.CompInstruction]*1e3,
			est.Component[model.CompShared]*1e3,
			est.Component[model.CompGlobal]*1e3,
			est.TotalSeconds*1e3,
			meas.Seconds*1e3,
			est.CompareError(meas.Seconds)*100,
			est.Bottleneck.String(),
			float64(mm.FLOPs())/meas.Seconds/1e9)
	}
	t.Notes = append(t.Notes,
		"paper shape: 16x16 fastest; 8x8 and 16x16 instruction-bound; 32x32 shifts to shared memory (6 warps)")
	return t, nil
}
