package texcache

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LineBytes: 33}); err == nil {
		t.Error("odd line size accepted")
	}
	if _, err := New(Config{SizeBytes: 1000}); err == nil {
		t.Error("non-divisible size accepted")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.LineBytes() != 32 {
		t.Errorf("default line = %d", c.LineBytes())
	}
}

func TestHitAfterFill(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x104) { // same 32B line
		t.Error("same-line access missed")
	}
	if !c.Access(0x11c) {
		t.Error("line-end access missed")
	}
	if c.Access(0x120) { // next line
		t.Error("next-line access hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %v", c.HitRate())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 4-way cache: five lines mapping to one set evict the oldest.
	c, err := New(Config{SizeBytes: 4096, LineBytes: 32, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	sets := 4096 / 32 / 4 // 32 sets
	stride := uint32(32 * sets)
	for i := uint32(0); i < 4; i++ {
		c.Access(i * stride)
	}
	for i := uint32(0); i < 4; i++ {
		if !c.Access(i * stride) {
			t.Errorf("way %d evicted prematurely", i)
		}
	}
	c.Access(4 * stride)      // evicts line 0 (LRU)
	if c.Access(0 * stride) { // must miss now
		t.Error("LRU line not evicted")
	}
	if !c.Access(2 * stride) {
		t.Error("recently used line evicted")
	}
}

func TestWorkingSetBehaviour(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Small working set (fits in 8 KB): high hit rate.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		c.Access(uint32(rng.Intn(4096)) &^ 3)
	}
	if c.HitRate() < 0.9 {
		t.Errorf("small working set hit rate %v", c.HitRate())
	}
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("reset did not clear stats")
	}
	// Huge working set: low hit rate.
	for i := 0; i < 20000; i++ {
		c.Access(uint32(rng.Intn(1<<26)) &^ 3)
	}
	if c.HitRate() > 0.2 {
		t.Errorf("large working set hit rate %v", c.HitRate())
	}
}
