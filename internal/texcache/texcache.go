// Package texcache simulates a small read-only texture cache — the
// paper's future-work item 1 ("incorporate a cache model in memory
// system simulation") and the mechanism behind the +Cache variants
// of paper Fig. 12, where SpMV binds the x-vector to a texture so
// repeated vector-entry loads stop paying DRAM transactions.
//
// The model is a set-associative LRU cache with configurable line
// size; on GT200 each texture unit has a small L1 (~8 KB per TPC/
// cluster, 32-byte lines are a reasonable granularity for the
// simulator's transactions).
package texcache

import "fmt"

// Config sizes the cache.
type Config struct {
	// SizeBytes is the total capacity (default 8 KB).
	SizeBytes int
	// LineBytes is the line size (default 32).
	LineBytes int
	// Ways is the associativity (default 4).
	Ways int
}

// Default returns the GT200-like per-cluster texture L1 geometry.
func Default() Config { return Config{SizeBytes: 8 * 1024, LineBytes: 32, Ways: 4} }

// Cache is one texture cache instance.
type Cache struct {
	cfg  Config
	sets int
	// tags[set][way], valid[set][way], age[set][way].
	tags  [][]uint32
	valid [][]bool
	age   [][]uint64
	tick  uint64

	hits, misses int64
}

// New builds a cache; zero fields of cfg take defaults.
func New(cfg Config) (*Cache, error) {
	d := Default()
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = d.SizeBytes
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = d.LineBytes
	}
	if cfg.Ways == 0 {
		cfg.Ways = d.Ways
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("texcache: line size %d not a power of two", cfg.LineBytes)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		return nil, fmt.Errorf("texcache: size %d not divisible by line*ways", cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("texcache: set count %d not a power of two", sets)
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.age = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint32, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.age[i] = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// Access touches the byte address and reports whether it hit; on a
// miss the line is filled (LRU eviction).
func (c *Cache) Access(addr uint32) bool {
	c.tick++
	line := addr / uint32(c.cfg.LineBytes)
	set := int(line) & (c.sets - 1)
	tag := line / uint32(c.sets)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.age[set][w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	// LRU victim.
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.age[set][w] < c.age[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.age[set][victim] = c.tick
	return false
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Stats returns hit and miss counts so far.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), 0 when never accessed.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		for w := range c.valid[i] {
			c.valid[i][w] = false
		}
	}
	c.hits, c.misses, c.tick = 0, 0, 0
}
