// Package kernels builds the paper's three case-study kernels as
// native-ISA programs: Volkov-style dense matrix multiply (§5.1),
// the cyclic-reduction tridiagonal solver with and without the
// bank-conflict-removing padding (§5.2), and sparse matrix–vector
// multiply in ELL / BELL+IM / BELL+IMIV formats (§5.3).
//
// Each kernel type pairs a program generator with helpers that lay
// out its data in simulator memory and read results back, so tests
// can verify numerical correctness against CPU references while the
// model analyzes the very same launches.
package kernels

import (
	"fmt"
	"math/bits"

	"gpuperf/internal/barra"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// Matmul is the Volkov-style dense matrix multiply of paper §5.1:
// C = A·B for N×N column-major matrices. Each 64-thread block
// computes a 64×Tile strip of C; the Tile×Tile sub-matrix of B is
// staged in shared memory and consumed directly as MAD shared-memory
// operands, so the inner loop is almost pure Type II MADs — the
// paper's ~80% computational density.
type Matmul struct {
	// N is the matrix dimension; Tile the sub-matrix edge (8, 16 or
	// 32 in the paper).
	N, Tile int

	prog                *isa.Program
	aBase, bBase, cBase uint32
}

// Paper Table 2 resource footprints per tile size: register count
// per thread and shared memory per block (bytes).
var matmulResources = map[int]struct{ regs, smem int }{
	8:  {16, 348},
	16: {30, 1088},
	32: {58, 4284},
}

// NewMatmul builds the kernel for an N×N multiply with the given
// tile size. N must be a multiple of 64 and of the tile, and both
// must be powers of two.
func NewMatmul(n, tile int) (*Matmul, error) {
	res, ok := matmulResources[tile]
	if !ok {
		return nil, fmt.Errorf("kernels: unsupported tile %d (want 8, 16 or 32)", tile)
	}
	if n <= 0 || n%64 != 0 || n%tile != 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("kernels: matrix size %d must be a power of two divisible by 64 and %d", n, tile)
	}
	m := &Matmul{
		N: n, Tile: tile,
		aBase: 0,
		bBase: uint32(n * n * 4),
		cBase: uint32(2 * n * n * 4),
	}
	prog, err := m.build(res.regs, res.smem)
	if err != nil {
		return nil, err
	}
	m.prog = prog
	return m, nil
}

func (m *Matmul) build(reserveRegs, smemBytes int) (*isa.Program, error) {
	n, t := uint32(m.N), uint32(m.Tile)
	b := kbuild.New(fmt.Sprintf("matmul%dx%d", m.Tile, m.Tile))
	b.SharedBytes(smemBytes)

	tid := b.Reg()
	bid := b.Reg()
	row := b.Reg()
	addrA := b.Reg()
	addrB := b.Reg()
	saddr := b.Reg()
	addrC := b.Reg()
	val := b.Reg()
	av := b.Reg()
	av2 := b.Reg()
	kt := b.Reg()
	tmp := b.Reg()
	by := b.Reg()
	bx := b.Reg()
	k0 := b.Reg()
	c0 := b.Reg()
	acc := b.Regs(m.Tile)
	b.ReserveRegs(reserveRegs)

	logRowBlocks := uint32(bits.TrailingZeros32(n / 64))
	logTile := uint32(bits.TrailingZeros32(t))
	elemsPerThread := t * t / 64 // B-tile elements each thread stages
	colStep := 64 / t            // tile columns advanced per stage step

	b.S2R(tid, isa.SRTid)
	b.S2R(bid, isa.SRCtaid)
	// by = bid & (N/64-1): row strip; bx = bid >> log2(N/64): column tile.
	b.AndImm(by, bid, n/64-1)
	b.ShrImm(bx, bid, logRowBlocks)
	// row = by*64 + tid.
	b.ShlImm(row, by, 6)
	b.IAdd(row, row, tid)

	// addrA = aBase + row*4 (column-major: column k at offset k·N·4).
	b.ShlImm(addrA, row, 2)
	b.IAddImm(addrA, addrA, m.aBase)

	// addrB = bBase + (bx·t)·N·4 + k0·4 + c0·N·4 where k0 = tid & (t-1)
	// and c0 = tid >> log2(t) are this thread's coordinates in the
	// staged tile.
	b.AndImm(k0, tid, t-1)
	b.ShrImm(c0, tid, logTile)
	b.ShlImm(addrB, bx, logTile) // bx*t
	b.IMulImm(addrB, addrB, n*4) // *N*4
	b.IMadImm(tmp, c0, n*4, addrB)
	b.ShlImm(addrB, k0, 2)
	b.IAdd(addrB, addrB, tmp)
	b.IAddImm(addrB, addrB, m.bBase)

	// saddr = (k0 + c0·t)·4: where this thread stores staged values.
	b.IMadImm(saddr, c0, t, k0)
	b.ShlImm(saddr, saddr, 2)

	// addrC = cBase + row·4 + (bx·t)·N·4.
	b.ShlImm(addrC, bx, logTile)
	b.IMulImm(addrC, addrC, n*4)
	b.ShlImm(tmp, row, 2)
	b.IAdd(addrC, addrC, tmp)
	b.IAddImm(addrC, addrC, m.cBase)

	for c := 0; c < m.Tile; c++ {
		b.MovImm(acc+isa.Reg(c), 0)
	}

	// Main loop over N/t tiles of the k dimension.
	b.Loop(kt, n/t, func() {
		// Stage the B tile: element j covers tile coordinates
		// (k0, c0 + j·colStep).
		for j := uint32(0); j < elemsPerThread; j++ {
			b.GldOff(val, addrB, j*colStep*n*4)
			b.SstOff(saddr, val, j*colStep*t*4)
		}
		b.Bar()
		// Consume: for each k, one A load feeds t MADs with B values
		// as shared-memory operands. The A value for k+1 is
		// prefetched into the alternate register before k's MAD
		// group, so its DRAM round trip hides under the MADs
		// (Volkov's kernel does the same).
		bufs := [2]isa.Reg{av, av2}
		b.GldOff(bufs[0], addrA, 0)
		for k := uint32(0); k < t; k++ {
			if k+1 < t {
				b.GldOff(bufs[(k+1)%2], addrA, (k+1)*n*4)
			}
			cur := bufs[k%2]
			for c := uint32(0); c < t; c++ {
				b.FMadS(acc+isa.Reg(c), cur, (k+c*t)*4, acc+isa.Reg(c))
			}
		}
		b.Bar() // protect the tile before the next stage overwrites it
		b.IAddImm(addrA, addrA, t*n*4)
		b.IAddImm(addrB, addrB, t*4)
	})

	for c := uint32(0); c < t; c++ {
		b.GstOff(addrC, acc+isa.Reg(c), c*n*4)
	}
	b.Exit()
	return b.Program()
}

// Program returns the built kernel.
func (m *Matmul) Program() *isa.Program { return m.prog }

// Launch returns the kernel's launch geometry: 64-thread blocks,
// one per 64×Tile strip of C.
func (m *Matmul) Launch() barra.Launch {
	return barra.Launch{
		Prog:  m.prog,
		Grid:  m.N / 64 * (m.N / m.Tile),
		Block: 64,
	}
}

// FLOPs returns 2·N³ (one multiply and one add per MAD).
func (m *Matmul) FLOPs() int64 { return 2 * int64(m.N) * int64(m.N) * int64(m.N) }

// MemoryBytes returns the global-memory footprint of the launch.
func (m *Matmul) MemoryBytes() int { return 3 * m.N * m.N * 4 }

// NewMemory lays out column-major A and B (each N² floats) in fresh
// simulator memory.
func (m *Matmul) NewMemory(a, bm []float32) (*barra.Memory, error) {
	if len(a) != m.N*m.N || len(bm) != m.N*m.N {
		return nil, fmt.Errorf("kernels: matrices must be %d elements", m.N*m.N)
	}
	mem := barra.NewMemory(m.MemoryBytes())
	if err := mem.WriteFloats(m.aBase, a); err != nil {
		return nil, err
	}
	if err := mem.WriteFloats(m.bBase, bm); err != nil {
		return nil, err
	}
	return mem, nil
}

// ReadC extracts the column-major result matrix.
func (m *Matmul) ReadC(mem *barra.Memory) ([]float32, error) {
	return mem.ReadFloats(m.cBase, m.N*m.N)
}

// MulRef computes the column-major product on the CPU in float64,
// for verification.
func MulRef(n int, a, b []float32) []float32 {
	c := make([]float32, n*n)
	for col := 0; col < n; col++ {
		for row := 0; row < n; row++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += float64(a[k*n+row]) * float64(b[col*n+k])
			}
			c[col*n+row] = float32(acc)
		}
	}
	return c
}
