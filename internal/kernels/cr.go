package kernels

import (
	"fmt"
	"math/bits"

	"gpuperf/internal/bank"
	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/tridiag"
)

// CR is the cyclic-reduction tridiagonal solver of paper §5.2: each
// block solves one N-equation system held entirely in shared memory
// (arrays a, b, c, d, x), with N/2 threads. Forward reduction halves
// the active equations each step behind a barrier; the access stride
// doubles, so on a 16-bank shared memory the bank-conflict degree
// doubles step by step. With NBC (no bank conflicts) the paper's
// padding remedy — one pad word per 16 — remaps every shared-memory
// index.
type CR struct {
	// Systems is the number of independent systems (= blocks);
	// N the power-of-two equation count per system.
	Systems, N int
	// NBC applies the padding remedy.
	NBC bool
	// ForwardOnly stops after forward reduction (the phase paper
	// Figs. 6 and 7 analyze); no results are written back.
	ForwardOnly bool

	prog  *isa.Program
	banks int
	// strideWords is the padded per-array size in words.
	strideWords int
	gBase       uint32 // global base of the system arrays
	xBase       uint32 // global base of the solution vectors
}

// NewCR builds the solver kernel. n must be a power of two between
// 64 and 1024 (block sizes n/2 ≤ 512); banks is taken from cfg.
func NewCR(cfg gpu.Config, systems, n int, nbc, forwardOnly bool) (*CR, error) {
	if systems <= 0 {
		return nil, fmt.Errorf("kernels: non-positive system count")
	}
	if n < 64 || n > 1024 || n&(n-1) != 0 {
		return nil, fmt.Errorf("kernels: CR system size %d (want power of two in [64,1024])", n)
	}
	c := &CR{
		Systems: systems, N: n, NBC: nbc, ForwardOnly: forwardOnly,
		banks: cfg.SharedMemBanks,
	}
	c.strideWords = n
	if nbc {
		c.strideWords = bank.PaddedSize(n, c.banks)
	}
	smem := 5 * c.strideWords * 4
	if smem > cfg.SharedMemPerSM {
		return nil, fmt.Errorf("kernels: CR needs %d B shared memory, SM has %d", smem, cfg.SharedMemPerSM)
	}
	c.gBase = 0
	c.xBase = uint32(systems * n * 16) // after the 4 coefficient arrays
	prog, err := c.build(smem)
	if err != nil {
		return nil, err
	}
	c.prog = prog
	return c, nil
}

func (c *CR) build(smem int) (*isa.Program, error) {
	n := uint32(c.N)
	threads := c.N / 2
	b := kbuild.New(crName(c.NBC, c.ForwardOnly))
	b.SharedBytes(smem)

	tid := b.Reg()
	bidReg := b.Reg()
	idx := b.Reg()
	pa := b.Reg() // physical byte address of idx
	pm := b.Reg() // physical byte address of idx-step
	pp := b.Reg() // physical byte address of idx+step
	tmp := b.Reg()
	gaddr := b.Reg()
	v := b.Reg()
	// Working values of one reduction step.
	ai := b.Reg()
	bi := b.Reg()
	ci := b.Reg()
	di := b.Reg()
	am := b.Reg()
	bm := b.Reg()
	cm := b.Reg()
	dm := b.Reg()
	ap := b.Reg()
	bp := b.Reg()
	cp := b.Reg()
	dp := b.Reg()
	k1 := b.Reg()
	k2 := b.Reg()
	rb := b.Reg()
	xm := b.Reg()
	xp := b.Reg()

	arrayStride := uint32(c.strideWords * 4)

	// emitPhys computes the physical byte address of logical word
	// index src into dst (within array 0; callers add array bases
	// via instruction offsets). Plain: idx·4. NBC: (idx + idx/16)·4.
	// dst must differ from src; the computation stays inside dst so
	// callers may pass any live register as src (including tmp).
	emitPhys := func(dst, src isa.Reg) {
		if dst == src {
			panic("kernels: emitPhys requires dst != src")
		}
		if c.NBC {
			b.ShrImm(dst, src, uint32(bits.TrailingZeros(uint(c.banks))))
			b.IAdd(dst, dst, src)
			b.ShlImm(dst, dst, 2)
		} else {
			b.ShlImm(dst, src, 2)
		}
	}

	b.S2R(tid, isa.SRTid)
	b.S2R(bidReg, isa.SRCtaid)

	// Stage 0: load a, b, c, d from global memory, two elements per
	// thread per array, coalesced. Global layout: array ai of system
	// s starts at gBase + (ai·Systems + s)·N·4. All eight loads
	// issue before the first shared-memory store so the DRAM round
	// trip is paid once, not eight times (as the compiler schedules
	// the real kernel).
	loadVals := [8]isa.Reg{ai, bi, ci, di, am, bm, cm, dm}
	b.IAddImm(idx, tid, uint32(threads))
	emitPhys(pa, tid)
	emitPhys(pm, idx)
	b.IMulImm(gaddr, bidReg, n*4)
	b.ShlImm(tmp, tid, 2)
	b.IAdd(tmp, tmp, gaddr) // half-0 global offset
	b.ShlImm(v, idx, 2)
	b.IAdd(gaddr, v, gaddr) // half-1 global offset
	for arr := 0; arr < 4; arr++ {
		base := c.gBase + uint32(arr*c.Systems)*n*4
		b.GldOff(loadVals[arr], tmp, base)
		b.GldOff(loadVals[4+arr], gaddr, base)
	}
	for arr := 0; arr < 4; arr++ {
		b.SstOff(pa, loadVals[arr], uint32(arr)*arrayStride)
		b.SstOff(pm, loadVals[4+arr], uint32(arr)*arrayStride)
	}
	b.Bar()

	// Forward reduction: step strides 1, 2, 4, ... n/2.
	for step := 1; step < c.N; step *= 2 {
		active := c.N / (2 * step)
		skip := c.emitGuards(b, tid, active, threads)
		// idx = tid·2·step + 2·step − 1; tmp carries tid for the
		// step's neighbour predicate.
		b.Mov(tmp, tid)
		b.ShlImm(idx, tid, uint32(bits.TrailingZeros(uint(2*step))))
		b.IAddImm(idx, idx, uint32(2*step-1))
		c.emitForwardStep(b, forwardRegs{
			idx: idx, pa: pa, pm: pm, pp: pp, tmp: tmp,
			ai: ai, bi: bi, ci: ci, di: di,
			am: am, bm: bm, cm: cm, dm: dm,
			ap: ap, bp: bp, cp: cp, dp: dp,
			k1: k1, k2: k2, rb: rb,
		}, step, active, arrayStride, emitPhys)
		if skip >= 0 {
			b.SetTarget(skip, b.Pos())
		}
		b.Bar()
	}

	if !c.ForwardOnly {
		// x[n-1] = d[n-1]/b[n-1], thread 0 only.
		skip := c.emitGuards(b, tid, 1, threads)
		b.MovImm(idx, n-1)
		emitPhys(pa, idx)
		g := b.Pos()
		b.SldOff(di, pa, 3*arrayStride)
		b.Guarded(g, isa.P0, false)
		g = b.Pos()
		b.SldOff(bi, pa, 1*arrayStride)
		b.Guarded(g, isa.P0, false)
		g = b.Pos()
		b.Rcp(rb, bi)
		b.Guarded(g, isa.P0, false)
		g = b.Pos()
		b.FMul(di, di, rb)
		b.Guarded(g, isa.P0, false)
		g = b.Pos()
		b.SstOff(pa, di, 4*arrayStride)
		b.Guarded(g, isa.P0, false)
		if skip >= 0 {
			b.SetTarget(skip, b.Pos())
		}
		b.Bar()

		// Backward substitution: strides n/2 down to 1.
		for step := c.N / 2; step >= 1; step /= 2 {
			active := c.N / (2 * step)
			skip := c.emitGuards(b, tid, active, threads)
			// idx = tid·2·step + step − 1.
			b.Mov(tmp, tid)
			b.ShlImm(idx, tid, uint32(bits.TrailingZeros(uint(2*step))))
			b.IAddImm(idx, idx, uint32(step-1))
			c.emitBackwardStep(b, backwardRegs{
				idx: idx, pa: pa, pm: pm, pp: pp, tmp: tmp,
				ai: ai, bi: bi, ci: ci, di: di, xm: xm, xp: xp, rb: rb, k1: k1,
			}, step, active, arrayStride, emitPhys)
			if skip >= 0 {
				b.SetTarget(skip, b.Pos())
			}
			b.Bar()
		}

		// Store x back, coalesced, two elements per thread.
		for half := 0; half < 2; half++ {
			b.IAddImm(idx, tid, uint32(half*threads))
			emitPhys(pa, idx)
			b.SldOff(v, pa, 4*arrayStride)
			b.IMulImm(gaddr, bidReg, n*4)
			b.ShlImm(tmp, idx, 2)
			b.IAdd(gaddr, gaddr, tmp)
			b.GstOff(gaddr, v, c.xBase)
		}
	}
	b.Exit()
	return b.Program()
}

func crName(nbc, fwd bool) string {
	name := "cr"
	if nbc {
		name += "-nbc"
	}
	if fwd {
		name += "-fwd"
	}
	return name
}

// emitGuards sets P0 = tid < active for per-lane predication and,
// when whole warps are inactive, emits a warp-uniform branch (on
// P2 = tid ≥ ceil32(active)) that skips them to the step's barrier,
// so idle warps stop issuing the step body — the mechanism by which
// cyclic reduction's per-step instruction work halves (paper
// Fig. 6). The caller must patch the returned branch (if ≥ 0) to
// the barrier's instruction index. The partially-active warp, if
// any, falls through with its excess lanes predicated off by P0.
func (c *CR) emitGuards(b *kbuild.Builder, tid isa.Reg, active, blockDim int) int {
	b.ISetpImm(isa.P0, isa.CmpLT, tid, uint32(active))
	ceil := (active + gpu.WarpSize - 1) &^ (gpu.WarpSize - 1)
	if ceil >= blockDim {
		return -1
	}
	b.ISetpImm(isa.P2, isa.CmpGE, tid, uint32(ceil))
	return b.BraIf(isa.P2, false)
}

type forwardRegs struct {
	idx, pa, pm, pp, tmp                           isa.Reg
	ai, bi, ci, di, am, bm, cm, dm, ap, bp, cp, dp isa.Reg
	k1, k2, rb                                     isa.Reg
}

// emitForwardStep emits one guarded forward-reduction step at the
// given stride, mirroring the lean instruction mix of the paper's
// hand-tuned kernel: guarded loads (no default fills — inactive
// lanes never load or store), single-compare neighbour predicates,
// and negating MADs for the update arithmetic. Work is predicated
// on P0 (active thread); upper-neighbour terms on P1 (idx+step in
// range, which implies P0 because only the last active thread's
// neighbour falls off the end).
func (c *CR) emitForwardStep(b *kbuild.Builder, r forwardRegs, step, active int, arrayStride uint32, emitPhys func(dst, src isa.Reg)) {
	guard := func() { b.Guarded(b.Pos()-1, isa.P0, false) }
	guardP1 := func() { b.Guarded(b.Pos()-1, isa.P1, false) }

	// P1 = tid < active-1: every active thread except the last has
	// an in-range upper neighbour. (r.tmp still holds tid here —
	// the caller computes idx from tid without clobbering tmp.)
	b.ISetpImm(isa.P1, isa.CmpLT, r.tmp, uint32(active-1))

	// Physical byte addresses of idx, idx−step, idx+step.
	emitPhys(r.pa, r.idx)
	if c.NBC {
		b.IAddImm(r.idx, r.idx, uint32(int32(-step)))
		emitPhys(r.pm, r.idx)
		b.IAddImm(r.idx, r.idx, uint32(2*step))
		emitPhys(r.pp, r.idx)
	} else {
		b.IAddImm(r.pm, r.pa, uint32(int32(-4*step)))
		b.IAddImm(r.pp, r.pa, uint32(4*step))
	}

	ld := func(dst, addr isa.Reg, arr int, pred isa.Pred) {
		g := b.Pos()
		b.SldOff(dst, addr, uint32(arr)*arrayStride)
		b.Guarded(g, pred, false)
	}
	ld(r.ai, r.pa, 0, isa.P0)
	ld(r.bi, r.pa, 1, isa.P0)
	ld(r.ci, r.pa, 2, isa.P0)
	ld(r.di, r.pa, 3, isa.P0)
	ld(r.am, r.pm, 0, isa.P0)
	ld(r.bm, r.pm, 1, isa.P0)
	ld(r.cm, r.pm, 2, isa.P0)
	ld(r.dm, r.pm, 3, isa.P0)
	ld(r.ap, r.pp, 0, isa.P1)
	ld(r.bp, r.pp, 1, isa.P1)
	ld(r.cp, r.pp, 2, isa.P1)
	ld(r.dp, r.pp, 3, isa.P1)

	// k1 = a[i]/b[i−s]; k2 = c[i]/b[i+s] (0 without an upper
	// neighbour).
	b.Rcp(r.rb, r.bm)
	guard()
	b.FMul(r.k1, r.ai, r.rb)
	guard()
	b.MovImm(r.k2, 0)
	guard()
	b.Rcp(r.rb, r.bp)
	guardP1()
	b.FMul(r.k2, r.ci, r.rb)
	guardP1()

	// b[i] −= c[i−s]·k1 + a[i+s]·k2 ; d[i] −= d[i−s]·k1 + d[i+s]·k2.
	b.FNMad(r.bi, r.cm, r.k1, r.bi)
	guard()
	b.FNMad(r.bi, r.ap, r.k2, r.bi)
	guardP1()
	b.FNMad(r.di, r.dm, r.k1, r.di)
	guard()
	b.FNMad(r.di, r.dp, r.k2, r.di)
	guardP1()
	// a[i] = −a[i−s]·k1 ; c[i] = −c[i+s]·k2 (k2 = 0 covers the
	// missing neighbour, so plain FNMad against a zeroed temp).
	b.MovImm(r.tmp, 0)
	guard()
	b.FNMad(r.ai, r.am, r.k1, r.tmp)
	guard()
	b.FNMad(r.ci, r.cp, r.k2, r.tmp)
	guard()

	st := func(srcReg isa.Reg, arr int) {
		g := b.Pos()
		b.SstOff(r.pa, srcReg, uint32(arr)*arrayStride)
		b.Guarded(g, isa.P0, false)
	}
	st(r.ai, 0)
	st(r.bi, 1)
	st(r.ci, 2)
	st(r.di, 3)
}

type backwardRegs struct {
	idx, pa, pm, pp, tmp       isa.Reg
	ai, bi, ci, di, xm, xp, rb isa.Reg
	k1                         isa.Reg
}

// emitBackwardStep emits one guarded backward-substitution step:
// x[i] = (d[i] − a[i]·x[i−s] − c[i]·x[i+s]) / b[i]. The lower
// neighbour exists for every active thread but the first (P1 =
// 1 ≤ tid < active); the upper always exists and is already solved.
func (c *CR) emitBackwardStep(b *kbuild.Builder, r backwardRegs, step, active int, arrayStride uint32, emitPhys func(dst, src isa.Reg)) {
	guard := func() { b.Guarded(b.Pos()-1, isa.P0, false) }
	guardP1 := func() { b.Guarded(b.Pos()-1, isa.P1, false) }

	// P1 = 1 ≤ tid < active. r.tmp holds tid (see caller); active
	// ≥ 1, so CmpGE against 1 plus the P0 restriction: emit
	// P1 = tid ≥ 1, then clear it where P0 is false.
	b.ISetpImm(isa.P1, isa.CmpGE, r.tmp, 1)
	g := b.Pos()
	b.ISetpImm(isa.P1, isa.CmpLT, r.tmp, 0)
	b.Guarded(g, isa.P0, true)

	emitPhys(r.pa, r.idx)
	if c.NBC {
		b.IAddImm(r.idx, r.idx, uint32(int32(-step)))
		emitPhys(r.pm, r.idx)
		b.IAddImm(r.idx, r.idx, uint32(2*step))
		emitPhys(r.pp, r.idx)
	} else {
		b.IAddImm(r.pm, r.pa, uint32(int32(-4*step)))
		b.IAddImm(r.pp, r.pa, uint32(4*step))
	}

	ld := func(dst, addr isa.Reg, arr int, pred isa.Pred) {
		g := b.Pos()
		b.SldOff(dst, addr, uint32(arr)*arrayStride)
		b.Guarded(g, pred, false)
	}
	ld(r.ai, r.pa, 0, isa.P0)
	ld(r.bi, r.pa, 1, isa.P0)
	ld(r.ci, r.pa, 2, isa.P0)
	ld(r.di, r.pa, 3, isa.P0)
	b.MovImm(r.xm, 0)
	guard()
	ld(r.xm, r.pm, 4, isa.P1)
	ld(r.xp, r.pp, 4, isa.P0)

	b.FNMad(r.di, r.ai, r.xm, r.di)
	guardP1()
	b.FNMad(r.di, r.ci, r.xp, r.di)
	guard()
	b.Rcp(r.rb, r.bi)
	guard()
	b.FMul(r.di, r.di, r.rb)
	guard()
	g = b.Pos()
	b.SstOff(r.pa, r.di, 4*arrayStride)
	b.Guarded(g, isa.P0, false)
}

// Program returns the built kernel.
func (c *CR) Program() *isa.Program { return c.prog }

// Launch returns the launch geometry: one block per system, N/2
// threads per block.
func (c *CR) Launch() barra.Launch {
	return barra.Launch{Prog: c.prog, Grid: c.Systems, Block: c.N / 2}
}

// MemoryBytes returns the global footprint: 4 coefficient arrays
// plus the solution vector per system.
func (c *CR) MemoryBytes() int { return c.Systems * c.N * 5 * 4 }

// NewMemory lays out the systems in fresh simulator memory. Array
// layout: all A arrays (system-major), then all B, C, D, then the
// X output region.
func (c *CR) NewMemory(systems []tridiag.System) (*barra.Memory, error) {
	if len(systems) != c.Systems {
		return nil, fmt.Errorf("kernels: %d systems, want %d", len(systems), c.Systems)
	}
	mem := barra.NewMemory(c.MemoryBytes())
	for s, sys := range systems {
		if sys.Size() != c.N {
			return nil, fmt.Errorf("kernels: system %d has %d equations, want %d", s, sys.Size(), c.N)
		}
		if err := sys.Validate(); err != nil {
			return nil, err
		}
		n := uint32(c.N)
		arrays := [][]float32{sys.A, sys.B, sys.C, sys.D}
		for ai, arr := range arrays {
			base := c.gBase + (uint32(ai)*uint32(c.Systems)+uint32(s))*n*4
			if err := mem.WriteFloats(base, arr); err != nil {
				return nil, err
			}
		}
	}
	return mem, nil
}

// ReadX extracts the solution of system s after a full solve.
func (c *CR) ReadX(mem *barra.Memory, s int) ([]float32, error) {
	if c.ForwardOnly {
		return nil, fmt.Errorf("kernels: forward-only kernel does not produce x")
	}
	if s < 0 || s >= c.Systems {
		return nil, fmt.Errorf("kernels: system %d out of range", s)
	}
	return mem.ReadFloats(c.xBase+uint32(s*c.N*4), c.N)
}
