package kernels

import (
	"fmt"

	"gpuperf/internal/barra"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/sparse"
)

// SpMVKind selects the storage format of paper §5.3.
type SpMVKind int

// The three formats Fig. 11 compares.
const (
	// ELL: scalar ELLPACK, one thread per row, coalesced matrix
	// loads, scattered vector loads (Bell & Garland).
	ELL SpMVKind = iota
	// BELLIM: blocked ELLPACK with interleaved matrix storage, one
	// thread per 3×3 block row (Choi et al.): 9 entries share one
	// column index, vector loads still scattered.
	BELLIM
	// BELLIMIV: BELL+IM plus the paper's contribution — the vector
	// (and output) stored interleaved, so consecutive threads'
	// vector loads land in nearby addresses.
	BELLIMIV
)

func (k SpMVKind) String() string {
	switch k {
	case ELL:
		return "ELL"
	case BELLIM:
		return "BELL+IM"
	case BELLIMIV:
		return "BELL+IMIV"
	}
	return fmt.Sprintf("SpMVKind(%d)", int(k))
}

// SpMV is one sparse matrix–vector multiply kernel bound to a
// matrix's dimensions (the instruction stream bakes in the layout
// strides, as a tuned CUDA kernel would via compile-time constants).
type SpMV struct {
	Kind SpMVKind
	Mat  *sparse.Blocked

	prog *isa.Program
	// Global layout.
	entriesBase, colsBase, vecBase, outBase, memSize uint32
	blockDim                                         int
}

// SpMVBlockDim is the thread-block size used by all variants.
const SpMVBlockDim = 128

// NewSpMV builds the kernel for the given format and matrix
// structure (3×3 blocks required, matching the paper's QCD case).
func NewSpMV(kind SpMVKind, m *sparse.Blocked) (*SpMV, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.BlockSize != 3 {
		return nil, fmt.Errorf("kernels: SpMV needs 3x3 blocks, got %d", m.BlockSize)
	}
	threads := m.BlockRows
	if kind == ELL {
		threads = m.Rows()
	}
	if threads%SpMVBlockDim != 0 {
		return nil, fmt.Errorf("kernels: %s needs thread count %d divisible by %d",
			kind, threads, SpMVBlockDim)
	}
	s := &SpMV{Kind: kind, Mat: m, blockDim: SpMVBlockDim}

	rows := uint32(m.Rows())
	k := uint32(m.BlockRows)
	r := uint32(m.BlocksPerRow)
	switch kind {
	case ELL:
		w := r * 3 // scalar ELL width
		s.entriesBase = 0
		s.colsBase = s.entriesBase + rows*w*4
		s.vecBase = s.colsBase + rows*w*4
		s.outBase = s.vecBase + rows*4
		s.memSize = s.outBase + rows*4
	case BELLIM, BELLIMIV:
		s.entriesBase = 0
		s.colsBase = s.entriesBase + k*r*9*4
		s.vecBase = s.colsBase + k*r*4
		s.outBase = s.vecBase + rows*4
		s.memSize = s.outBase + rows*4
	default:
		return nil, fmt.Errorf("kernels: unknown SpMV kind %d", kind)
	}

	prog, err := s.build()
	if err != nil {
		return nil, err
	}
	s.prog = prog
	return s, nil
}

func (s *SpMV) build() (*isa.Program, error) {
	switch s.Kind {
	case ELL:
		return s.buildELL()
	default:
		return s.buildBELL(s.Kind == BELLIMIV)
	}
}

// buildELL emits the scalar ELL kernel: thread per row, loop over
// the row's Width slots; every slot costs an entry load, a column
// load and a scattered vector load feeding one MAD — the paper's
// "about 1/10 of instructions do actual computation".
func (s *SpMV) buildELL() (*isa.Program, error) {
	m := s.Mat
	rows := uint32(m.Rows())
	width := uint32(m.BlocksPerRow * 3)

	b := kbuild.New("spmv-ell")
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	row := b.Reg()
	rowAddr := b.Reg()
	slotAddr := b.Reg()
	val := b.Reg()
	col := b.Reg()
	xaddr := b.Reg()
	xv := b.Reg()
	acc := b.Reg()
	j := b.Reg()

	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(row, cta, ntid, tid)
	b.ShlImm(rowAddr, row, 2)
	b.MovImm(acc, 0)
	b.Mov(slotAddr, rowAddr)
	b.Loop(j, width, func() {
		// Entry and column index, column-major: coalesced.
		b.GldOff(val, slotAddr, s.entriesBase)
		b.GldOff(col, slotAddr, s.colsBase)
		// Vector entry: scattered by the column index.
		b.ShlImm(xaddr, col, 2)
		b.GldOff(xv, xaddr, s.vecBase)
		b.FMad(acc, val, xv, acc)
		b.IAddImm(slotAddr, slotAddr, rows*4)
	})
	b.GstOff(rowAddr, acc, s.outBase)
	b.Exit()
	return b.Program()
}

// buildBELL emits the blocked kernel (interleaved matrix): thread
// per block-row, loop over the row's blocks; each block costs one
// column-index load, three vector loads and nine entry loads feeding
// nine MADs. With interleavedVector the vector and output use the
// IMIV permutation (logical 3c+n at physical n·K + c).
func (s *SpMV) buildBELL(interleavedVector bool) (*isa.Program, error) {
	m := s.Mat
	k := uint32(m.BlockRows)
	r := uint32(m.BlocksPerRow)

	name := "spmv-bell-im"
	if interleavedVector {
		name += "iv"
	}
	b := kbuild.New(name)
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	q := b.Reg()
	qAddr := b.Reg()
	colAddr := b.Reg()
	entAddr := b.Reg()
	col := b.Reg()
	xaddr := b.Reg()
	e := b.Reg()
	x0 := b.Reg()
	x1 := b.Reg()
	x2 := b.Reg()
	acc0 := b.Reg()
	acc1 := b.Reg()
	acc2 := b.Reg()
	j := b.Reg()

	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(q, cta, ntid, tid)
	b.ShlImm(qAddr, q, 2)
	b.MovImm(acc0, 0)
	b.MovImm(acc1, 0)
	b.MovImm(acc2, 0)
	b.Mov(colAddr, qAddr)
	b.Mov(entAddr, qAddr)

	xs := [3]isa.Reg{x0, x1, x2}
	accs := [3]isa.Reg{acc0, acc1, acc2}

	b.Loop(j, r, func() {
		// One block-column index per 9 entries (the BELL saving).
		b.GldOff(col, colAddr, s.colsBase)
		if interleavedVector {
			// x'[n·K + c]: base c·4, stride K·4 between components.
			b.ShlImm(xaddr, col, 2)
			for n := uint32(0); n < 3; n++ {
				b.GldOff(xs[n], xaddr, s.vecBase+n*k*4)
			}
		} else {
			// x[3c + n]: consecutive but scattered across threads;
			// xaddr = col·12 (= col·4 + col·8).
			b.ShlImm(xaddr, col, 2)
			b.IMadImm(xaddr, col, 8, xaddr)
			for n := uint32(0); n < 3; n++ {
				b.GldOff(xs[n], xaddr, s.vecBase+n*4)
			}
		}
		// Nine entries, interleaved: entry (m,n) of block j at
		// ((j·9 + m·3 + n)·K + q)·4; entAddr tracks j·9·K·4 + q·4.
		for mm := uint32(0); mm < 3; mm++ {
			for n := uint32(0); n < 3; n++ {
				b.GldOff(e, entAddr, s.entriesBase+(mm*3+n)*k*4)
				b.FMad(accs[mm], e, xs[n], accs[mm])
			}
		}
		b.IAddImm(colAddr, colAddr, k*4)
		b.IAddImm(entAddr, entAddr, 9*k*4)
	})

	// Store the three output rows.
	if interleavedVector {
		// y'[m·K + q]: coalesced.
		for mm := uint32(0); mm < 3; mm++ {
			b.GstOff(qAddr, accs[mm], s.outBase+mm*k*4)
		}
	} else {
		// y[3q + m]: stride-3 scatter.
		yaddr := b.Reg()
		b.ShlImm(yaddr, q, 2)
		b.IMadImm(yaddr, q, 8, yaddr) // q*12
		for mm := uint32(0); mm < 3; mm++ {
			b.GstOff(yaddr, accs[mm], s.outBase+mm*4)
		}
	}
	b.Exit()
	return b.Program()
}

// Program returns the built kernel.
func (s *SpMV) Program() *isa.Program { return s.prog }

// Launch returns the launch geometry.
func (s *SpMV) Launch() barra.Launch {
	threads := s.Mat.BlockRows
	if s.Kind == ELL {
		threads = s.Mat.Rows()
	}
	return barra.Launch{Prog: s.prog, Grid: threads / s.blockDim, Block: s.blockDim}
}

// FLOPs returns 2 flops per stored entry.
func (s *SpMV) FLOPs() int64 { return 2 * int64(s.Mat.NNZ()) }

// Regions names the three traffic classes of Fig. 11a.
func (s *SpMV) Regions() []barra.Region {
	return []barra.Region{
		{Name: "matrix", Lo: s.entriesBase, Hi: s.colsBase},
		{Name: "colidx", Lo: s.colsBase, Hi: s.vecBase},
		{Name: "vector", Lo: s.vecBase, Hi: s.outBase},
	}
}

// NewMemory lays out the matrix (in its format) and the input
// vector x (logical order; IMIV interleaves internally).
func (s *SpMV) NewMemory(x []float32) (*barra.Memory, error) {
	m := s.Mat
	if len(x) != m.Rows() {
		return nil, fmt.Errorf("kernels: vector length %d, want %d", len(x), m.Rows())
	}
	mem := barra.NewMemory(int(s.memSize))
	vec := x
	switch s.Kind {
	case ELL:
		e, err := m.ToELL()
		if err != nil {
			return nil, err
		}
		if err := mem.WriteFloats(s.entriesBase, e.Entries); err != nil {
			return nil, err
		}
		cols := make([]uint32, len(e.ColIdx))
		for i, c := range e.ColIdx {
			cols[i] = uint32(c)
		}
		if err := mem.WriteWords(s.colsBase, cols); err != nil {
			return nil, err
		}
	case BELLIM, BELLIMIV:
		bell, err := m.ToBELL()
		if err != nil {
			return nil, err
		}
		if err := mem.WriteFloats(s.entriesBase, bell.Entries); err != nil {
			return nil, err
		}
		cols := make([]uint32, len(bell.BlockCols))
		for i, c := range bell.BlockCols {
			cols[i] = uint32(c)
		}
		if err := mem.WriteWords(s.colsBase, cols); err != nil {
			return nil, err
		}
		if s.Kind == BELLIMIV {
			iv, err := sparse.InterleaveVector(x, m.BlockRows, 3)
			if err != nil {
				return nil, err
			}
			vec = iv
		}
	}
	if err := mem.WriteFloats(s.vecBase, vec); err != nil {
		return nil, err
	}
	return mem, nil
}

// ReadY extracts the result in logical row order.
func (s *SpMV) ReadY(mem *barra.Memory) ([]float32, error) {
	y, err := mem.ReadFloats(s.outBase, s.Mat.Rows())
	if err != nil {
		return nil, err
	}
	if s.Kind == BELLIMIV {
		return sparse.DeinterleaveVector(y, s.Mat.BlockRows, 3)
	}
	return y, nil
}
