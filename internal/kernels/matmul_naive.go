package kernels

import (
	"fmt"
	"math/bits"

	"gpuperf/internal/barra"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// MatmulNaive is the pre-optimization dense matrix multiply — the
// starting point of the paper's §4-style optimization walk. Each
// thread computes one element of C = A·B (column-major) straight from
// global memory: consecutive threads cover consecutive *columns*, so
// every B load and C store strides by N words and coalesces into one
// transaction per lane, while the shared A element broadcasts. The
// kernel is global-memory bound with a transaction-per-request ratio
// near the half-warp width; the advisor's PerfectCoalescing scenario
// quantifies exactly the headroom the tiled variants then realize.
type MatmulNaive struct {
	// N is the matrix dimension.
	N int

	prog                *isa.Program
	aBase, bBase, cBase uint32
}

// NewMatmulNaive builds the naive kernel for an N×N multiply. N must
// be a power of two and a multiple of 64 (one 64-thread block covers
// 64 consecutive columns of one row).
func NewMatmulNaive(n int) (*MatmulNaive, error) {
	if n <= 0 || n%64 != 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("kernels: matrix size %d must be a power of two divisible by 64", n)
	}
	m := &MatmulNaive{
		N:     n,
		aBase: 0,
		bBase: uint32(n * n * 4),
		cBase: uint32(2 * n * n * 4),
	}
	prog, err := m.build()
	if err != nil {
		return nil, err
	}
	m.prog = prog
	return m, nil
}

func (m *MatmulNaive) build() (*isa.Program, error) {
	n := uint32(m.N)
	logN := uint32(bits.TrailingZeros32(n))
	b := kbuild.New("matmul-naive")

	tid := b.Reg()
	cta := b.Reg()
	flat := b.Reg()
	col := b.Reg()
	row := b.Reg()
	addrA := b.Reg()
	addrB := b.Reg()
	addrC := b.Reg()
	tmp := b.Reg()
	av := b.Reg()
	bv := b.Reg()
	acc := b.Reg()
	kt := b.Reg()

	b.S2R(tid, isa.SRTid)
	b.S2R(cta, isa.SRCtaid)
	// flat = cta·64 + tid; col = flat mod N, row = flat div N —
	// consecutive threads walk columns, the uncoalesced orientation.
	b.ShlImm(flat, cta, 6)
	b.IAdd(flat, flat, tid)
	b.AndImm(col, flat, n-1)
	b.ShrImm(row, flat, logN)

	// addrA = aBase + row·4 (advanced by N·4 per k: the broadcast A
	// element A[row, k]).
	b.ShlImm(addrA, row, 2)
	b.IAddImm(addrA, addrA, m.aBase)
	// addrB = bBase + col·N·4 (advanced by 4 per k: B[k, col], an
	// N-word lane stride).
	b.IMulImm(addrB, col, n*4)
	b.IAddImm(addrB, addrB, m.bBase)
	// addrC = cBase + (row + col·N)·4.
	b.IMadImm(tmp, col, n, row)
	b.ShlImm(addrC, tmp, 2)
	b.IAddImm(addrC, addrC, m.cBase)

	b.MovImm(acc, 0)
	b.Loop(kt, n, func() {
		b.Gld(av, addrA)
		b.Gld(bv, addrB)
		b.FMad(acc, av, bv, acc)
		b.IAddImm(addrA, addrA, n*4)
		b.IAddImm(addrB, addrB, 4)
	})
	b.Gst(addrC, acc)
	b.Exit()
	return b.Program()
}

// Program returns the built kernel.
func (m *MatmulNaive) Program() *isa.Program { return m.prog }

// Launch returns the kernel's geometry: one thread per C element in
// 64-thread blocks.
func (m *MatmulNaive) Launch() barra.Launch {
	return barra.Launch{Prog: m.prog, Grid: m.N * m.N / 64, Block: 64}
}

// FLOPs returns 2·N³.
func (m *MatmulNaive) FLOPs() int64 { return 2 * int64(m.N) * int64(m.N) * int64(m.N) }

// MemoryBytes returns the global-memory footprint of the launch.
func (m *MatmulNaive) MemoryBytes() int { return 3 * m.N * m.N * 4 }

// NewMemory lays out column-major A and B in fresh simulator memory
// (the same layout the tiled variants use, so the family shares
// inputs).
func (m *MatmulNaive) NewMemory(a, bm []float32) (*barra.Memory, error) {
	if len(a) != m.N*m.N || len(bm) != m.N*m.N {
		return nil, fmt.Errorf("kernels: matrices must be %d elements", m.N*m.N)
	}
	mem := barra.NewMemory(m.MemoryBytes())
	if err := mem.WriteFloats(m.aBase, a); err != nil {
		return nil, err
	}
	if err := mem.WriteFloats(m.bBase, bm); err != nil {
		return nil, err
	}
	return mem, nil
}

// ReadC extracts the column-major result matrix.
func (m *MatmulNaive) ReadC(mem *barra.Memory) ([]float32, error) {
	return mem.ReadFloats(m.cBase, m.N*m.N)
}
