package kernels

import (
	"math"
	"math/rand"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/occupancy"
	"gpuperf/internal/sparse"
	"gpuperf/internal/tridiag"
)

func cfg() gpu.Config { return gpu.GTX285() }

func randMat(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float32, n*n)
	for i := range m {
		m[i] = 2*rng.Float32() - 1
	}
	return m
}

// --- matrix multiply -------------------------------------------------

func TestMatmulCorrectness(t *testing.T) {
	for _, tile := range []int{8, 16, 32} {
		const n = 64
		mm, err := NewMatmul(n, tile)
		if err != nil {
			t.Fatal(err)
		}
		a, bm := randMat(n, 21), randMat(n, 22)
		mem, err := mm.NewMemory(a, bm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := barra.Run(cfg(), mm.Launch(), mem, nil); err != nil {
			t.Fatalf("tile %d: %v", tile, err)
		}
		got, err := mm.ReadC(mem)
		if err != nil {
			t.Fatal(err)
		}
		want := MulRef(n, a, bm)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("tile %d: C[%d] = %v, want %v", tile, i, got[i], want[i])
			}
		}
	}
}

// TestMatmulFigure4aShape: MAD count is N³/32 warp instructions for
// every tile; total instructions and global transactions decrease
// with larger tiles; shared transactions track the MAD count.
func TestMatmulFigure4aShape(t *testing.T) {
	const n = 128
	wantMADs := int64(n) * int64(n) * int64(n) / 32
	var prevInstr, prevGlobal int64
	for i, tile := range []int{8, 16, 32} {
		mm, err := NewMatmul(n, tile)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := mm.NewMemory(randMat(n, 1), randMat(n, 2))
		if err != nil {
			t.Fatal(err)
		}
		st, err := barra.Run(cfg(), mm.Launch(), mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total.FMADs != wantMADs {
			t.Errorf("tile %d: MADs = %d, want %d", tile, st.Total.FMADs, wantMADs)
		}
		if i > 0 {
			if st.Total.WarpInstrs >= prevInstr {
				t.Errorf("tile %d: instruction count %d not below previous %d",
					tile, st.Total.WarpInstrs, prevInstr)
			}
			if st.Total.Global.Transactions >= prevGlobal {
				t.Errorf("tile %d: global transactions %d not below previous %d",
					tile, st.Total.Global.Transactions, prevGlobal)
			}
		}
		prevInstr = st.Total.WarpInstrs
		prevGlobal = st.Total.Global.Transactions
		// Density ≈ 80%+ (paper: 80% of instructions are MADs).
		if d := st.InstructionDensity(); d < 0.70 || d > 0.95 {
			t.Errorf("tile %d: density %.2f outside [0.70,0.95]", tile, d)
		}
		// Shared transactions ≈ 2·MAD warp count (one broadcast per
		// half-warp per MAD's shared operand) plus staging stores.
		lo, hi := 2*wantMADs, 2*wantMADs+2*wantMADs/10
		if st.Total.SharedTx < lo || st.Total.SharedTx > hi {
			t.Errorf("tile %d: shared tx %d outside [%d,%d]", tile, st.Total.SharedTx, lo, hi)
		}
		// Matmul's staging and broadcasts are conflict-free.
		if f := st.BankConflictFactor(); f != 1.0 {
			t.Errorf("tile %d: conflict factor %v", tile, f)
		}
	}
}

// TestMatmulOccupancyTable2: resident blocks/warps per SM follow
// paper Table 2: 8 blocks (16 warps) for 8×8 and 16×16, 3 blocks
// (6 warps) for 32×32.
func TestMatmulOccupancyTable2(t *testing.T) {
	want := map[int][2]int{8: {8, 16}, 16: {8, 16}, 32: {3, 6}}
	for tile, w := range want {
		mm, err := NewMatmul(128, tile)
		if err != nil {
			t.Fatal(err)
		}
		l := mm.Launch()
		res, err := occupancy.Compute(cfg(), occupancy.Usage{
			ThreadsPerBlock:   l.Block,
			RegsPerThread:     l.Prog.RegsPerThread,
			SharedMemPerBlock: l.Prog.SharedMemBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Blocks != w[0] || res.ActiveWarps != w[1] {
			t.Errorf("tile %d: blocks/warps = %d/%d, want %d/%d",
				tile, res.Blocks, res.ActiveWarps, w[0], w[1])
		}
	}
}

func TestMatmulValidation(t *testing.T) {
	if _, err := NewMatmul(128, 12); err == nil {
		t.Error("tile 12 accepted")
	}
	if _, err := NewMatmul(100, 16); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := NewMatmul(32, 16); err == nil {
		t.Error("size below strip height accepted")
	}
	mm, err := NewMatmul(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.NewMemory(make([]float32, 3), make([]float32, 64*64)); err == nil {
		t.Error("short matrix accepted")
	}
	if mm.FLOPs() != 2*64*64*64 {
		t.Errorf("FLOPs = %d", mm.FLOPs())
	}
}

// --- cyclic reduction --------------------------------------------------

func TestCRSolvesSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, nbc := range []bool{false, true} {
		const systems, n = 4, 128
		solver, err := NewCR(cfg(), systems, n, nbc, false)
		if err != nil {
			t.Fatal(err)
		}
		sys := make([]tridiag.System, systems)
		for i := range sys {
			sys[i] = tridiag.NewRandom(n, rng)
		}
		mem, err := solver.NewMemory(sys)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := barra.Run(cfg(), solver.Launch(), mem, nil); err != nil {
			t.Fatalf("nbc=%v: %v", nbc, err)
		}
		for i := range sys {
			x, err := solver.ReadX(mem, i)
			if err != nil {
				t.Fatal(err)
			}
			if r := sys[i].Residual(x); r > 1e-3 {
				t.Errorf("nbc=%v system %d: residual %v", nbc, i, r)
			}
			want, err := sys[i].SolveCR()
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if math.Abs(float64(want[j]-x[j])) > 1e-3 {
					t.Fatalf("nbc=%v system %d x[%d]: %v vs CPU CR %v", nbc, i, j, x[j], want[j])
				}
			}
		}
	}
}

// TestCRConflictDoubling reproduces the Fig. 7b mechanism: plain CR
// keeps its per-step shared-transaction count roughly constant
// (conflicts double as work halves), while CR-NBC's count halves.
func TestCRConflictDoubling(t *testing.T) {
	const systems, n = 2, 512
	run := func(nbc bool) *barra.Stats {
		solver, err := NewCR(cfg(), systems, n, nbc, true)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		sys := make([]tridiag.System, systems)
		for i := range sys {
			sys[i] = tridiag.NewRandom(n, rng)
		}
		mem, err := solver.NewMemory(sys)
		if err != nil {
			t.Fatal(err)
		}
		st, err := barra.Run(cfg(), solver.Launch(), mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cr := run(false)
	nbcSt := run(true)

	// Stage 1 = forward step 1 (stride 1 → 2-way conflicts among
	// stride-2 accesses... step 1 accesses stride 2): compare step 1
	// vs step 4 (stride 16: 16-way conflicts, 1/8 the active work).
	if len(cr.Stages) < 6 {
		t.Fatalf("stages = %d", len(cr.Stages))
	}
	s1, s4 := cr.Stages[1].SharedTx, cr.Stages[4].SharedTx
	// Work per step halves but conflicts double: transactions stay
	// within 2x of each other (paper: "remains constant").
	if ratio := float64(s1) / float64(s4); ratio > 2.5 || ratio < 0.4 {
		t.Errorf("CR shared tx step1/step4 = %d/%d (ratio %.2f), want ≈constant", s1, s4, ratio)
	}
	n1, n4 := nbcSt.Stages[1].SharedTx, nbcSt.Stages[4].SharedTx
	if ratio := float64(n1) / float64(n4); ratio < 4 {
		t.Errorf("CR-NBC shared tx step1/step4 = %d/%d (ratio %.2f), want ≥4 (halving)", n1, n4, ratio)
	}
	// Total conflict factor: CR heavily conflicted, NBC near 1.
	if f := cr.BankConflictFactor(); f < 2 {
		t.Errorf("CR conflict factor %v, want ≥2", f)
	}
	if f := nbcSt.BankConflictFactor(); f > 1.6 {
		t.Errorf("CR-NBC conflict factor %v, want ≈1", f)
	}
	// Instruction counts similar (paper: "CR-NBC has a similar
	// instruction count to CR").
	ratio := float64(nbcSt.Total.WarpInstrs) / float64(cr.Total.WarpInstrs)
	if ratio < 1.0 || ratio > 1.35 {
		t.Errorf("instruction ratio NBC/CR = %.2f", ratio)
	}
}

// TestCRWarpsPerStep: the per-step active-warp counts follow the
// paper's 8, 8, 4, 2, 1 pattern for 512-equation systems.
func TestCRWarpsPerStep(t *testing.T) {
	const systems, n = 2, 512
	solver, err := NewCR(cfg(), systems, n, false, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	sys := []tridiag.System{tridiag.NewRandom(n, rng), tridiag.NewRandom(n, rng)}
	mem, err := solver.NewMemory(sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := barra.Run(cfg(), solver.Launch(), mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per block: stage 0 (load) 8 warps; steps 1,2 8 then 4 warps...
	// paper Fig. 6 row: 8, 8, 4, 2, 1 for step 0..4 (256 threads).
	want := []int64{8, 8, 4, 2, 1}
	for i, w := range want {
		got := st.Stages[i].WarpsWithWork / int64(systems)
		if got != w {
			t.Errorf("stage %d: warps with work = %d, want %d", i, got, w)
		}
	}
}

func TestCRValidation(t *testing.T) {
	if _, err := NewCR(cfg(), 0, 128, false, false); err == nil {
		t.Error("zero systems accepted")
	}
	if _, err := NewCR(cfg(), 1, 100, false, false); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewCR(cfg(), 1, 32, false, false); err == nil {
		t.Error("tiny system accepted")
	}
	fwd, err := NewCR(cfg(), 1, 128, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fwd.ReadX(barra.NewMemory(64), 0); err == nil {
		t.Error("ReadX on forward-only kernel accepted")
	}
	full, err := NewCR(cfg(), 2, 128, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.NewMemory(make([]tridiag.System, 1)); err == nil {
		t.Error("wrong system count accepted")
	}
}

// --- SpMV ---------------------------------------------------------------

func spmvFixture(t *testing.T, kind SpMVKind) (*SpMV, []float32, []float32, *barra.Memory) {
	t.Helper()
	m, err := sparse.GenQCDLike(512, 9, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpMV(kind, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	x := make([]float32, m.Rows())
	for i := range x {
		x[i] = 2*rng.Float32() - 1
	}
	want, err := m.MulDense(x)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := s.NewMemory(x)
	if err != nil {
		t.Fatal(err)
	}
	return s, x, want, mem
}

func TestSpMVCorrectness(t *testing.T) {
	for _, kind := range []SpMVKind{ELL, BELLIM, BELLIMIV} {
		s, _, want, mem := spmvFixture(t, kind)
		if _, err := barra.Run(cfg(), s.Launch(), mem, nil); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got, err := s.ReadY(mem)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("%s: y[%d] = %v, want %v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestSpMVTrafficShape reproduces Fig. 11a's ordering: BELL cuts
// column-index bytes to ~1/9 of ELL's, and IMIV cuts vector bytes
// versus IM.
func TestSpMVTrafficShape(t *testing.T) {
	traffic := func(kind SpMVKind) map[string]int64 {
		s, _, _, mem := spmvFixture(t, kind)
		st, err := barra.Run(cfg(), s.Launch(), mem,
			&barra.Options{Regions: s.Regions()})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		native := cfg().MinSegmentBytes
		for name, per := range st.RegionTraffic {
			out[name] = per[native].Bytes
		}
		return out
	}
	ell := traffic(ELL)
	im := traffic(BELLIM)
	imiv := traffic(BELLIMIV)

	// Column-index traffic: BELL ≈ ELL/9 (one index per 9 entries).
	if r := float64(ell["colidx"]) / float64(im["colidx"]); r < 5 || r > 14 {
		t.Errorf("colidx ELL/BELL ratio = %.1f, want ≈9", r)
	}
	// Vector traffic: IMIV well below IM (the 18% win's source).
	if float64(imiv["vector"]) > 0.75*float64(im["vector"]) {
		t.Errorf("vector bytes: IMIV %d vs IM %d — interleaving did not help",
			imiv["vector"], im["vector"])
	}
	// Matrix traffic is coalesced and equal for the two BELL forms.
	if im["matrix"] != imiv["matrix"] {
		t.Errorf("matrix traffic differs: %d vs %d", im["matrix"], imiv["matrix"])
	}
}

// TestSpMVDensityLow: the paper notes only ~1/10 of SpMV
// instructions are MADs.
func TestSpMVDensityLow(t *testing.T) {
	s, _, _, mem := spmvFixture(t, ELL)
	st, err := barra.Run(cfg(), s.Launch(), mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.InstructionDensity(); d < 0.05 || d > 0.35 {
		t.Errorf("ELL density = %.2f, want low", d)
	}
}

func TestSpMVValidation(t *testing.T) {
	m, err := sparse.GenQCDLike(100, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpMV(ELL, m); err == nil {
		t.Error("non-divisible thread count accepted")
	}
	m2 := &sparse.Blocked{BlockRows: 128, BlockSize: 2, BlocksPerRow: 4}
	if _, err := NewSpMV(BELLIM, m2); err == nil {
		t.Error("non-3x3 matrix accepted")
	}
	if ELL.String() != "ELL" || BELLIM.String() != "BELL+IM" || BELLIMIV.String() != "BELL+IMIV" {
		t.Error("kind names wrong")
	}
}

// TestMatmulNaiveCorrectness: the naive kernel computes the same
// product as the reference, and its access pattern is the family's
// uncoalesced baseline — far more global traffic per useful byte
// than the tiled variants.
func TestMatmulNaiveCorrectness(t *testing.T) {
	const n = 64
	mm, err := NewMatmulNaive(n)
	if err != nil {
		t.Fatal(err)
	}
	a, bm := randMat(n, 21), randMat(n, 22)
	mem, err := mm.NewMemory(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	st, err := barra.Run(cfg(), mm.Launch(), mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mm.ReadC(mem)
	if err != nil {
		t.Fatal(err)
	}
	want := MulRef(n, a, bm)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("C[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if st.Total.FMADs != int64(n)*int64(n)*int64(n)/32 {
		t.Errorf("MADs = %d, want N³/32 = %d", st.Total.FMADs, int64(n)*int64(n)*int64(n)/32)
	}
	if eff := st.CoalescingEfficiency(); eff > 0.5 {
		t.Errorf("naive matmul coalesces at %.2f, want the uncoalesced baseline ≤ 0.5", eff)
	}
	if tpr := st.TxPerRequest(); tpr < 4 {
		t.Errorf("naive matmul issues %.1f transactions per request, want the strided ≥ 4", tpr)
	}

	// The 16×16 tiled sibling on the same inputs moves far fewer
	// global bytes — the measured counterpart of the advisor's
	// coalescing counterfactual.
	tiled, err := NewMatmul(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	mem2, err := tiled.NewMemory(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := barra.Run(cfg(), tiled.Launch(), mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Total.Global.Bytes*4 > st.Total.Global.Bytes {
		t.Errorf("tiled kernel moves %d global bytes, naive %d — want ≥4x reduction",
			st2.Total.Global.Bytes, st.Total.Global.Bytes)
	}
}
