package bank

// Microbenchmarks for the bank-conflict simulator's half-warp path:
//
//	go test -run - -bench BenchmarkBankTransactions -benchmem ./internal/bank/
//
// The engine calls Transactions once per active half-warp of every
// shared-memory instruction, so this is a first-order term of
// functional-simulation throughput.

import "testing"

var sinkTx int

func benchAddrs(stride int) []uint32 {
	addrs := make([]uint32, 16)
	for i := range addrs {
		addrs[i] = uint32(i * stride * 4)
	}
	return addrs
}

func BenchmarkBankTransactions(b *testing.B) {
	s, err := New(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		addrs []uint32
	}{
		{"conflict-free", benchAddrs(1)},
		{"broadcast", benchAddrs(0)},
		{"4way", benchAddrs(4)},
		{"16way", benchAddrs(16)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkTx += s.Transactions(c.addrs)
			}
		})
	}
}
