// Package bank simulates shared-memory bank conflicts.
//
// GT200 shared memory spreads successive 4-byte words across 16
// banks; a half-warp whose threads touch different words in the same
// bank serializes into one transaction per distinct word (paper
// §4.2). Barra does not collect conflict information, so the paper
// adds an automated tool that derives the *effective* number of
// shared-memory transactions; this package is that tool, generalized
// to arbitrary bank counts (the paper's §5.2 proposes a prime count
// such as 17) — its future-work item 2, a general bank-conflict
// simulator driven by actual addresses.
package bank

import (
	"fmt"

	"gpuperf/internal/gpu"
)

// Sim computes conflict degrees for one shared-memory geometry.
type Sim struct {
	banks     int
	wordBytes int
}

// New creates a simulator; banks must be positive, wordBytes a
// positive power of two.
func New(banks, wordBytes int) (*Sim, error) {
	if banks <= 0 {
		return nil, fmt.Errorf("bank: non-positive bank count %d", banks)
	}
	if wordBytes <= 0 || wordBytes&(wordBytes-1) != 0 {
		return nil, fmt.Errorf("bank: word size %d not a positive power of two", wordBytes)
	}
	return &Sim{banks: banks, wordBytes: wordBytes}, nil
}

// ForGPU builds the simulator for a device configuration.
func ForGPU(c gpu.Config) (*Sim, error) { return New(c.SharedMemBanks, c.BankWidthBytes) }

// Banks returns the configured bank count.
func (s *Sim) Banks() int { return s.banks }

// Transactions returns the number of serialized shared-memory
// transactions needed to service the given byte addresses, which
// must belong to one half-warp access (inactive lanes excluded by
// the caller). Threads reading the *same* word broadcast and cost
// nothing extra; threads touching different words in one bank
// serialize. The result is the maximum, over banks, of the distinct
// word count — 1 for conflict-free, k for a k-way conflict, 0 for no
// active lanes.
//
// The half-warp path (≤16 addresses — every call the execution
// engine makes) runs on fixed-size stack arrays and allocates
// nothing; it is safe for concurrent use from many workers.
//
//gpuperf:noalloc
func (s *Sim) Transactions(addrs []uint32) int {
	if len(addrs) == 0 {
		return 0
	}
	if len(addrs) <= gpu.HalfWarp {
		return s.transactionsHalfWarp(addrs)
	}
	return s.transactionsLarge(addrs)
}

// transactionsHalfWarp is the allocation-free conflict count for up
// to 16 lanes: dedup the words into a fixed array, then take the
// densest bank by an O(n²) scan — at n ≤ 16 that is at most 256
// compares on registers, far cheaper than building per-bank tables.
func (s *Sim) transactionsHalfWarp(addrs []uint32) int {
	var words [gpu.HalfWarp]uint32
	n := 0
outer:
	for _, a := range addrs {
		w := a / uint32(s.wordBytes)
		for i := 0; i < n; i++ {
			if words[i] == w {
				continue outer
			}
		}
		words[n] = w
		n++
	}
	var bankOf [gpu.HalfWarp]uint32
	for i := 0; i < n; i++ {
		bankOf[i] = words[i] % uint32(s.banks)
	}
	maxWords := 0
	for i := 0; i < n; i++ {
		c := 1
		for j := 0; j < i; j++ {
			if bankOf[j] == bankOf[i] {
				c = 0 // bank already counted at its first word
				break
			}
		}
		if c == 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if bankOf[j] == bankOf[i] {
				c++
			}
		}
		if c > maxWords {
			maxWords = c
		}
	}
	return maxWords
}

// transactionsLarge handles arbitrary address counts (synthetic
// sweeps beyond half-warp width) with per-bank tables.
func (s *Sim) transactionsLarge(addrs []uint32) int {
	perBank := make([][]uint32, s.banks) //gpuperf:alloc-ok beyond-half-warp path for synthetic sweeps; the engine always passes ≤16 lanes
	maxWords := 0
	for _, a := range addrs {
		word := a / uint32(s.wordBytes)
		b := int(word % uint32(s.banks))
		dup := false
		for _, w := range perBank[b] {
			if w == word {
				dup = true
				break
			}
		}
		if !dup {
			perBank[b] = append(perBank[b], word) //gpuperf:alloc-ok beyond-half-warp path for synthetic sweeps; the engine always passes ≤16 lanes
			if len(perBank[b]) > maxWords {
				maxWords = len(perBank[b])
			}
		}
	}
	return maxWords
}

// ConflictDegree reports the k in "k-way bank conflict" for the
// access (1 = conflict-free). It is Transactions clamped below at 1
// when any lane is active.
func (s *Sim) ConflictDegree(addrs []uint32) int {
	t := s.Transactions(addrs)
	if t < 1 && len(addrs) > 0 {
		return 1
	}
	return t
}

// StrideConflict returns the conflict degree of a classic
// strided access: lanes i = 0..lanes-1 touching word index i*stride.
// Cyclic reduction's step s has stride 2^s, whose degree doubles
// every step on a 16-bank memory (paper Fig. 5) — and collapses to 1
// when the bank count is prime to the stride.
func (s *Sim) StrideConflict(lanes, stride int) int {
	if lanes <= 0 || stride <= 0 {
		return 0
	}
	addrs := make([]uint32, lanes)
	for i := range addrs {
		addrs[i] = uint32(i * stride * s.wordBytes)
	}
	return s.Transactions(addrs)
}

// PadAddress applies the paper's §5.2 padding remedy: it remaps a
// word index so that one pad word is inserted every banks words
// (index → index + index/banks). With 16 banks this is the "pad 1
// element per 16 elements" technique that removes all of cyclic
// reduction's conflicts.
func PadAddress(wordIndex, banks int) int {
	if banks <= 0 {
		return wordIndex
	}
	return wordIndex + wordIndex/banks
}

// PaddedSize returns the shared-memory words needed to hold n
// logical words under PadAddress padding.
func PaddedSize(n, banks int) int {
	if n <= 0 {
		return 0
	}
	return PadAddress(n-1, banks) + 1
}
