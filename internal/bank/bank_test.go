package bank

import (
	"testing"
	"testing/quick"

	"gpuperf/internal/gpu"
)

func mustSim(t *testing.T, banks, word int) *Sim {
	t.Helper()
	s, err := New(banks, word)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	for _, c := range []struct{ banks, word int }{{0, 4}, {-1, 4}, {16, 0}, {16, 3}, {16, -4}} {
		if _, err := New(c.banks, c.word); err == nil {
			t.Errorf("New(%d,%d) accepted", c.banks, c.word)
		}
	}
	if _, err := ForGPU(gpu.GTX285()); err != nil {
		t.Errorf("ForGPU failed: %v", err)
	}
}

func TestConflictFreeUnitStride(t *testing.T) {
	s := mustSim(t, 16, 4)
	addrs := make([]uint32, 16)
	for i := range addrs {
		addrs[i] = uint32(i * 4)
	}
	if got := s.Transactions(addrs); got != 1 {
		t.Errorf("unit stride: %d transactions, want 1", got)
	}
}

func TestBroadcastIsFree(t *testing.T) {
	s := mustSim(t, 16, 4)
	addrs := make([]uint32, 16)
	for i := range addrs {
		addrs[i] = 64 // everyone reads the same word
	}
	if got := s.Transactions(addrs); got != 1 {
		t.Errorf("broadcast: %d transactions, want 1", got)
	}
}

// TestPaperExample checks §4.2's example: 3 threads reading
// different locations in the same bank cost 3 transactions instead
// of 1.
func TestPaperExample(t *testing.T) {
	s := mustSim(t, 16, 4)
	sameBank := []uint32{0, 16 * 4, 32 * 4} // words 0,16,32 → all bank 0
	if got := s.Transactions(sameBank); got != 3 {
		t.Errorf("same-bank triple: %d, want 3", got)
	}
	diffBanks := []uint32{0, 4, 8}
	if got := s.Transactions(diffBanks); got != 1 {
		t.Errorf("different banks: %d, want 1", got)
	}
}

// TestCyclicReductionStrides reproduces Fig. 5's doubling pattern:
// stride 2 → 2-way, stride 4 → 4-way, stride 8 → 8-way conflicts on
// a 16-bank memory.
func TestCyclicReductionStrides(t *testing.T) {
	s := mustSim(t, 16, 4)
	for _, c := range []struct{ lanes, stride, want int }{
		{16, 1, 1},
		{4, 2, 1},  // 4 threads stride 2: words 0,2,4,6 — distinct banks
		{16, 2, 2}, // full half-warp stride 2: 2-way
		{16, 4, 4},
		{16, 8, 8},
		{16, 16, 16},
		{8, 4, 2},
		{2, 8, 1}, // 2 threads stride 8: words 0,8 → banks 0,8 — conflict-free
	} {
		if got := s.StrideConflict(c.lanes, c.stride); got != c.want {
			t.Errorf("StrideConflict(%d lanes, stride %d) = %d, want %d",
				c.lanes, c.stride, got, c.want)
		}
	}
}

// TestPrimeBanksKillStrideConflicts verifies the paper's §5.2
// architectural suggestion: with 17 banks, every power-of-two stride
// is conflict-free.
func TestPrimeBanksKillStrideConflicts(t *testing.T) {
	s := mustSim(t, 17, 4)
	for stride := 1; stride <= 256; stride *= 2 {
		if got := s.StrideConflict(16, stride); got != 1 {
			t.Errorf("17 banks, stride %d: %d-way conflict", stride, got)
		}
	}
}

// TestPaddingRemovesConflicts verifies the paper's padding fix: after
// PadAddress remapping, the cyclic-reduction strides up to the bank
// count are conflict-free on 16 banks. (Strides beyond the bank
// count cannot be fully fixed by one pad word per 16 — the remap
// still collapses a 16-way conflict to 2-way — but in cyclic
// reduction those strides only occur once ≤16 lanes remain active,
// where the full half-warp conflict never materializes; see the CR
// kernel tests.)
func TestPaddingRemovesConflicts(t *testing.T) {
	s := mustSim(t, 16, 4)
	padded := func(stride, lanes int) int {
		addrs := make([]uint32, lanes)
		for i := range addrs {
			addrs[i] = uint32(PadAddress(i*stride, 16) * 4)
		}
		return s.Transactions(addrs)
	}
	for stride := 2; stride <= 16; stride *= 2 {
		if got := padded(stride, 16); got != 1 {
			t.Errorf("padded stride %d: %d-way conflict", stride, got)
		}
	}
	// Beyond the bank count, use the lane count cyclic reduction
	// actually has at that stride (512 equations → 512/stride active
	// threads): padding collapses the full conflict to at most 2-way.
	for stride := 32; stride <= 256; stride *= 2 {
		lanes := 512 / stride
		if lanes > 16 {
			lanes = 16
		}
		raw := s.StrideConflict(lanes, stride)
		got := padded(stride, lanes)
		if raw != lanes {
			t.Fatalf("unpadded stride %d × %d lanes: %d-way, want full %d", stride, lanes, raw, lanes)
		}
		if got > 2 {
			t.Errorf("padded stride %d × %d lanes: %d-way conflict, want ≤2", stride, lanes, got)
		}
	}
}

func TestPadAddressMonotoneInjective(t *testing.T) {
	seen := map[int]bool{}
	prev := -1
	for i := 0; i < 4096; i++ {
		p := PadAddress(i, 16)
		if p <= prev {
			t.Fatalf("PadAddress not strictly increasing at %d", i)
		}
		if seen[p] {
			t.Fatalf("PadAddress collision at %d", i)
		}
		seen[p] = true
		prev = p
	}
	// One pad word per 16: the last logical word 511 lands at
	// physical 511+511/16 = 542, so 543 words are needed.
	if got := PaddedSize(512, 16); got != 543 {
		t.Errorf("PaddedSize(512,16) = %d, want 543", got)
	}
	if PaddedSize(0, 16) != 0 {
		t.Error("PaddedSize(0) != 0")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	s := mustSim(t, 16, 4)
	if s.Transactions(nil) != 0 {
		t.Error("empty access should cost 0")
	}
	if s.ConflictDegree([]uint32{12}) != 1 {
		t.Error("single lane should be 1")
	}
	if s.StrideConflict(0, 4) != 0 || s.StrideConflict(4, 0) != 0 {
		t.Error("degenerate strides should be 0")
	}
}

// Property: the conflict degree is between 1 and min(lanes, distinct
// words), and never exceeds the number of active lanes.
func TestConflictBoundsProperty(t *testing.T) {
	s := mustSim(t, 16, 4)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		addrs := make([]uint32, len(raw))
		words := map[uint32]bool{}
		for i, r := range raw {
			addrs[i] = uint32(r) &^ 3
			words[addrs[i]/4] = true
		}
		got := s.Transactions(addrs)
		return got >= 1 && got <= len(addrs) && got <= len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
