// Package ingest turns untrusted user-submitted kernels into
// analyzable registry entries — the service's bring-your-own-kernel
// boundary.
//
// A submission arrives as assembly text or a compiled container plus
// a launch geometry and a set of declared input buffers. Compile
// drives it through the same assembler/container toolchain the
// built-in microbenchmarks use, then hardens it: static ceilings
// (instruction count, registers, shared memory, footprint, total
// threads) and a bounds verifier that proves — by interval abstract
// interpretation over the decoded program — that every memory
// operand's reachable address range lies inside the declared buffer
// envelope. Programs whose addresses cannot be proven in bounds are
// rejected before any simulation runs, the same admission posture an
// eBPF-style verifier takes: reject what you cannot prove.
//
// Accepted submissions become content-addressed Submissions
// ("subm-<hash16>", the SHA-256 of the canonical container plus the
// launch/buffer spec) held in a Store bounded by count, bytes and
// TTL, optionally persisted with the calibration cache's
// write-temp-then-rename discipline so a daemon restart keeps its
// submissions.
package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"gpuperf/internal/asm"
	"gpuperf/internal/barra"
	"gpuperf/internal/cubin"
	"gpuperf/internal/isa"
)

// IDPrefix starts every submission id; the registry name of a
// submitted kernel is its id, so the prefix is how the service (and
// the router) recognizes submission traffic.
const IDPrefix = "subm-"

// Buffer element types.
const (
	ElemF32 = "f32"
	ElemU32 = "u32"
)

// Buffer fill modes.
const (
	FillZeros  = "zeros"
	FillRandom = "random" // seeded-random: deterministic per request seed
	FillAffine = "affine" // start + step*i
)

// BufferSpec declares one global-memory input buffer of a
// submission. Buffers are laid out contiguously in declaration order
// starting at global address 0, each element 4 bytes — the submitted
// program addresses them by those fixed offsets.
type BufferSpec struct {
	// Name labels the buffer in region-traffic attribution.
	Name string `json:"name"`
	// Elem is the element type: "f32" or "u32".
	Elem string `json:"elem"`
	// Count is the element count (bytes = 4*Count).
	Count int `json:"count"`
	// Fill selects the deterministic content: "zeros", "random"
	// (seeded by the analysis request's seed) or "affine"
	// (Start + Step*i).
	Fill string `json:"fill"`
	// Start and Step parameterize the affine fill.
	Start float64 `json:"start,omitempty"`
	Step  float64 `json:"step,omitempty"`
}

// Request is one parsed submission: exactly one of Source or
// Container, plus the launch geometry and buffer declarations.
type Request struct {
	// Label is an optional human name echoed in receipts; it does not
	// participate in the content hash, so relabeling a program does
	// not duplicate it.
	Label string
	// Source is assembly text (the gpuasm "as" syntax).
	Source string
	// Container is a compiled GCUB container.
	Container []byte
	// Kernel names the kernel within a multi-kernel source or
	// container; empty means the sole kernel.
	Kernel string
	// Grid and Block are the launch geometry.
	Grid, Block int
	// Buffers declares the global-memory envelope.
	Buffers []BufferSpec
}

// Limits are the per-submission ceilings — the MaxSize regime for
// programs the operator has never seen. The zero value of any field
// means its default.
type Limits struct {
	// MaxInstructions caps the static instruction count.
	MaxInstructions int
	// MaxRegisters caps declared registers per thread.
	MaxRegisters int
	// MaxSharedBytes caps the static shared-memory allocation.
	MaxSharedBytes int
	// MaxFootprintBytes caps the declared buffer envelope.
	MaxFootprintBytes int64
	// MaxThreads caps grid*block; MaxBlockThreads caps one block.
	MaxThreads      int64
	MaxBlockThreads int
	// MaxWarpInstructions is the dynamic per-run instruction budget a
	// submission's simulation may burn (loops make static bounds
	// insufficient); the engine aborts past it.
	MaxWarpInstructions int64
	// Store budgets: at most MaxCount submissions totalling at most
	// MaxBytes of container+spec payload, each expiring TTL after
	// admission.
	MaxCount int
	MaxBytes int64
	TTL      time.Duration
}

// Default ceilings. Deliberately modest: a profiler-as-a-service
// analyzes kernels, it does not host workloads.
const (
	DefaultMaxInstructions     = 4096
	DefaultMaxRegisters        = 64
	DefaultMaxSharedBytes      = 16 * 1024
	DefaultMaxFootprintBytes   = 64 << 20
	DefaultMaxThreads          = 1 << 20
	DefaultMaxBlockThreads     = 512
	DefaultMaxWarpInstructions = 64 << 20
	DefaultMaxCount            = 256
	DefaultMaxBytes            = 16 << 20
	DefaultTTL                 = time.Hour
)

// withDefaults fills zero fields with the default ceilings.
func (l Limits) withDefaults() Limits {
	if l.MaxInstructions <= 0 {
		l.MaxInstructions = DefaultMaxInstructions
	}
	if l.MaxRegisters <= 0 {
		l.MaxRegisters = DefaultMaxRegisters
	}
	if l.MaxSharedBytes <= 0 {
		l.MaxSharedBytes = DefaultMaxSharedBytes
	}
	if l.MaxFootprintBytes <= 0 {
		l.MaxFootprintBytes = DefaultMaxFootprintBytes
	}
	if l.MaxThreads <= 0 {
		l.MaxThreads = DefaultMaxThreads
	}
	if l.MaxBlockThreads <= 0 {
		l.MaxBlockThreads = DefaultMaxBlockThreads
	}
	if l.MaxWarpInstructions <= 0 {
		l.MaxWarpInstructions = DefaultMaxWarpInstructions
	}
	if l.MaxCount <= 0 {
		l.MaxCount = DefaultMaxCount
	}
	if l.MaxBytes <= 0 {
		l.MaxBytes = DefaultMaxBytes
	}
	if l.TTL <= 0 {
		l.TTL = DefaultTTL
	}
	return l
}

// Submission is one accepted, content-addressed program: everything
// needed to rebuild its workload deterministically, in a form that
// serializes to the store's on-disk slots.
type Submission struct {
	// ID is "subm-" + the first 16 hex digits of the content hash —
	// also the submission's registry kernel name.
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	// Container is the canonical single-kernel container.
	Container []byte `json:"container"`
	// Kernel is the program's name inside the container.
	Kernel string `json:"kernel"`
	// Grid and Block are the launch geometry.
	Grid  int `json:"grid"`
	Block int `json:"block"`
	// Buffers is the declared global-memory envelope.
	Buffers []BufferSpec `json:"buffers"`
	// CreatedAt drives TTL eviction.
	CreatedAt time.Time `json:"created_at"`

	// Static summary, echoed in receipts.
	Instructions   int   `json:"instructions"`
	Registers      int   `json:"registers"`
	SharedMemBytes int   `json:"shared_mem_bytes"`
	FootprintBytes int64 `json:"footprint_bytes"`
	// MaxWarpInstructions is the dynamic budget frozen at admission.
	MaxWarpInstructions int64 `json:"max_warp_instructions"`
}

// hashSpec is the canonical JSON the content hash covers alongside
// the container bytes. Field order is fixed by the struct.
type hashSpec struct {
	Grid    int          `json:"grid"`
	Block   int          `json:"block"`
	Buffers []BufferSpec `json:"buffers"`
}

// computeID derives the content-addressed id: SHA-256 over the
// canonical container bytes plus the launch/buffer spec.
func computeID(container []byte, grid, block int, buffers []BufferSpec) string {
	spec, _ := json.Marshal(hashSpec{Grid: grid, Block: block, Buffers: buffers})
	h := sha256.New()
	h.Write(container)
	h.Write([]byte{0})
	h.Write(spec)
	return IDPrefix + hex.EncodeToString(h.Sum(nil))[:16]
}

// IsSubmissionID reports whether a kernel name is a submission id —
// how the HTTP router recognizes submission traffic.
func IsSubmissionID(name string) bool { return strings.HasPrefix(name, IDPrefix) }

// resolve compiles the request's program: assemble or unmarshal, then
// pick the named (or sole) kernel.
func resolve(req Request) (*isa.Program, error) {
	var progs []*isa.Program
	switch {
	case req.Source != "" && len(req.Container) > 0:
		return nil, fmt.Errorf("submission carries both source and container; send one")
	case req.Source != "":
		var err error
		if progs, err = asm.AssembleAll(req.Source); err != nil {
			return nil, err
		}
	case len(req.Container) > 0:
		c, err := cubin.Unmarshal(req.Container)
		if err != nil {
			return nil, err
		}
		progs = c.Kernels
	default:
		return nil, fmt.Errorf("submission needs assembly source or a container")
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("submission contains no kernels")
	}
	if req.Kernel == "" {
		if len(progs) != 1 {
			names := make([]string, len(progs))
			for i, p := range progs {
				names[i] = p.Name
			}
			return nil, fmt.Errorf("submission contains %d kernels %v; name one", len(progs), names)
		}
		return progs[0], nil
	}
	for _, p := range progs {
		if p.Name == req.Kernel {
			return p, nil
		}
	}
	return nil, fmt.Errorf("submission has no kernel %q", req.Kernel)
}

// checkSpec validates the launch geometry and buffer declarations
// against the ceilings and returns the footprint in bytes. Every
// rejection names the violated ceiling.
func checkSpec(req Request, lim Limits) (int64, error) {
	if req.Grid <= 0 || req.Block <= 0 {
		return 0, fmt.Errorf("launch %dx%d: grid and block must be positive", req.Grid, req.Block)
	}
	if req.Block > lim.MaxBlockThreads {
		return 0, fmt.Errorf("block size %d exceeds the %d-thread block ceiling", req.Block, lim.MaxBlockThreads)
	}
	if threads := int64(req.Grid) * int64(req.Block); threads > lim.MaxThreads {
		return 0, fmt.Errorf("launch %dx%d = %d threads exceeds the %d-thread ceiling", req.Grid, req.Block, threads, lim.MaxThreads)
	}
	if len(req.Buffers) == 0 {
		return 0, fmt.Errorf("submission declares no buffers; every memory access must land in a declared buffer")
	}
	seen := map[string]bool{}
	var total int64
	for i, b := range req.Buffers {
		if b.Name == "" {
			return 0, fmt.Errorf("buffer %d: empty name", i)
		}
		if seen[b.Name] {
			return 0, fmt.Errorf("duplicate buffer name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Elem != ElemF32 && b.Elem != ElemU32 {
			return 0, fmt.Errorf("buffer %q: unknown element type %q (want %s or %s)", b.Name, b.Elem, ElemF32, ElemU32)
		}
		if b.Count <= 0 {
			return 0, fmt.Errorf("buffer %q: non-positive element count %d", b.Name, b.Count)
		}
		switch b.Fill {
		case FillZeros, FillRandom, FillAffine:
		default:
			return 0, fmt.Errorf("buffer %q: unknown fill %q (want %s, %s or %s)", b.Name, b.Fill, FillZeros, FillRandom, FillAffine)
		}
		total += 4 * int64(b.Count)
		if total > lim.MaxFootprintBytes {
			return 0, fmt.Errorf("declared buffers exceed the %d-byte footprint ceiling", lim.MaxFootprintBytes)
		}
	}
	if total > math.MaxUint32 {
		return 0, fmt.Errorf("declared buffers exceed the 32-bit address space")
	}
	return total, nil
}

// Compile validates a submission end to end and returns its
// content-addressed Submission: resolve the program, apply the static
// ceilings, prove every memory access inside the declared envelope,
// and canonicalize. now stamps CreatedAt (the store's TTL clock).
func Compile(req Request, lim Limits, now time.Time) (*Submission, error) {
	lim = lim.withDefaults()
	prog, err := resolve(req)
	if err != nil {
		return nil, err
	}
	footprint, err := checkSpec(req, lim)
	if err != nil {
		return nil, err
	}
	if n := len(prog.Code); n > lim.MaxInstructions {
		return nil, fmt.Errorf("program %q has %d instructions, exceeding the %d-instruction ceiling", prog.Name, n, lim.MaxInstructions)
	}
	if prog.RegsPerThread > lim.MaxRegisters {
		return nil, fmt.Errorf("program %q declares %d registers, exceeding the %d-register ceiling", prog.Name, prog.RegsPerThread, lim.MaxRegisters)
	}
	if prog.SharedMemBytes > lim.MaxSharedBytes {
		return nil, fmt.Errorf("program %q declares %d shared-memory bytes, exceeding the %d-byte ceiling", prog.Name, prog.SharedMemBytes, lim.MaxSharedBytes)
	}
	if err := verifyBounds(prog, req.Grid, req.Block, footprint); err != nil {
		return nil, err
	}
	// Canonicalize: a fresh single-kernel container, so source
	// formatting, comments and sibling kernels never perturb the hash.
	canon, err := (&cubin.Container{Kernels: []*isa.Program{prog}}).Marshal()
	if err != nil {
		return nil, err
	}
	return &Submission{
		ID:                  computeID(canon, req.Grid, req.Block, req.Buffers),
		Label:               req.Label,
		Container:           canon,
		Kernel:              prog.Name,
		Grid:                req.Grid,
		Block:               req.Block,
		Buffers:             append([]BufferSpec(nil), req.Buffers...),
		CreatedAt:           now,
		Instructions:        len(prog.Code),
		Registers:           prog.RegsPerThread,
		SharedMemBytes:      prog.SharedMemBytes,
		FootprintBytes:      footprint,
		MaxWarpInstructions: lim.MaxWarpInstructions,
	}, nil
}

// ID compiles just far enough to compute the submission's
// content-addressed id, with no ceilings applied — what a router
// needs to pick the owning shard without duplicating the workers'
// operator-set limits. The returned id matches what any worker's
// Compile produces for the same request.
func ID(req Request) (string, error) {
	prog, err := resolve(req)
	if err != nil {
		return "", err
	}
	canon, err := (&cubin.Container{Kernels: []*isa.Program{prog}}).Marshal()
	if err != nil {
		return "", err
	}
	return computeID(canon, req.Grid, req.Block, req.Buffers), nil
}

// Program decodes the submission's canonical container back to its
// program.
func (s *Submission) Program() (*isa.Program, error) {
	c, err := cubin.Unmarshal(s.Container)
	if err != nil {
		return nil, fmt.Errorf("submission %s: %w", s.ID, err)
	}
	return c.Find(s.Kernel)
}

// NewMemory builds the submission's global memory image for one
// request seed — deterministic per (submission, seed), like every
// registry builder — and the named regions attributing traffic to
// the declared buffers.
func (s *Submission) NewMemory(seed int64) (*barra.Memory, []barra.Region, error) {
	mem := barra.NewMemory(int(s.FootprintBytes))
	regions := make([]barra.Region, 0, len(s.Buffers))
	rng := rand.New(rand.NewSource(seed))
	var off uint32
	for _, b := range s.Buffers {
		bytes := uint32(4 * b.Count)
		regions = append(regions, barra.Region{Name: b.Name, Lo: off, Hi: off + bytes})
		words := make([]uint32, b.Count)
		switch b.Fill {
		case FillZeros:
			// NewMemory zeroes; nothing to draw. Still materialized via
			// WriteWords so every fill path shares the bounds check.
		case FillRandom:
			for i := range words {
				if b.Elem == ElemF32 {
					words[i] = math.Float32bits(rng.Float32())
				} else {
					words[i] = rng.Uint32()
				}
			}
		case FillAffine:
			for i := range words {
				v := b.Start + b.Step*float64(i)
				if b.Elem == ElemF32 {
					words[i] = math.Float32bits(float32(v))
				} else {
					words[i] = uint32(int64(v))
				}
			}
		default:
			return nil, nil, fmt.Errorf("submission %s: buffer %q: unknown fill %q", s.ID, b.Name, b.Fill)
		}
		if err := mem.WriteWords(off, words); err != nil {
			return nil, nil, fmt.Errorf("submission %s: buffer %q: %w", s.ID, b.Name, err)
		}
		off += bytes
	}
	return mem, regions, nil
}
