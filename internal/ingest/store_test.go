package ingest

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testSub(t *testing.T, grid int) *Submission {
	t.Helper()
	sub, err := Compile(reduceRequest(grid), Limits{}, time.Unix(1700000000, 0))
	if err != nil {
		t.Fatalf("Compile grid=%d: %v", grid, err)
	}
	return sub
}

func TestStoreLRUCountBudget(t *testing.T) {
	var evicted []string
	clk := time.Unix(1700000000, 0)
	s, err := NewStore(StoreConfig{
		MaxCount: 2,
		OnEvict:  func(sub *Submission) { evicted = append(evicted, sub.ID) },
		Now:      func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := testSub(t, 1), testSub(t, 2), testSub(t, 3)
	for _, sub := range []*Submission{a, b} {
		sub.CreatedAt = clk
		if err := s.Put(sub); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(a.ID); err != nil { // refresh a: b becomes LRU
		t.Fatal(err)
	}
	c.CreatedAt = clk
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != b.ID {
		t.Fatalf("evicted %v, want [%s]", evicted, b.ID)
	}
	if _, err := s.Get(b.ID); err == nil {
		t.Fatal("evicted submission still resident")
	}
	if n, _, _ := s.Stats(); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestStoreTTL(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	var evicted []string
	s, err := NewStore(StoreConfig{
		TTL:     time.Hour,
		OnEvict: func(sub *Submission) { evicted = append(evicted, sub.ID) },
		Now:     func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := testSub(t, 1)
	sub.CreatedAt = clk
	if err := s.Put(sub); err != nil {
		t.Fatal(err)
	}
	clk = clk.Add(59 * time.Minute)
	if _, err := s.Get(sub.ID); err != nil {
		t.Fatalf("expired early: %v", err)
	}
	clk = clk.Add(2 * time.Minute)
	if _, err := s.Get(sub.ID); err == nil {
		t.Fatal("submission survived its TTL")
	}
	if len(evicted) != 1 || evicted[0] != sub.ID {
		t.Fatalf("evictions: %v", evicted)
	}
}

func TestStorePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clk := time.Unix(1700000000, 0)
	now := func() time.Time { return clk }
	s, err := NewStore(StoreConfig{Dir: dir, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	a, b := testSub(t, 1), testSub(t, 2)
	a.CreatedAt, b.CreatedAt = clk, clk
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.SlotPath(a.ID)); err != nil {
		t.Fatalf("slot not persisted: %v", err)
	}

	// A corrupt slot and an alien file must not break the reload.
	if err := os.WriteFile(filepath.Join(dir, IDPrefix+"deadbeefdeadbeef.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(StoreConfig{Dir: dir, Now: now})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		got, err := s2.Get(id)
		if err != nil {
			t.Fatalf("lost %s across restart: %v", id, err)
		}
		if got.Kernel != "reduce64" || len(got.Container) == 0 {
			t.Fatalf("reloaded submission mangled: %+v", got)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, IDPrefix+"deadbeefdeadbeef.json")); !os.IsNotExist(err) {
		t.Fatal("corrupt slot not cleaned up")
	}

	// Expired entries are dropped at reload time.
	clk = clk.Add(DefaultTTL + time.Minute)
	s3, err := NewStore(StoreConfig{Dir: dir, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if n, _, _ := s3.Stats(); n != 0 {
		t.Fatalf("expired submissions reloaded: %d", n)
	}
}

func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sub := testSub(t, 1)
	sub.CreatedAt = time.Now()
	if err := s.Put(sub); err != nil {
		t.Fatal(err)
	}
	if !s.Delete(sub.ID) {
		t.Fatal("Delete reported miss")
	}
	if s.Delete(sub.ID) {
		t.Fatal("double delete reported hit")
	}
	if _, err := os.Stat(s.SlotPath(sub.ID)); !os.IsNotExist(err) {
		t.Fatal("slot survived delete")
	}
	if got := s.List(); len(got) != 0 {
		t.Fatalf("List after delete: %d", len(got))
	}
}

func TestStoreByteBudget(t *testing.T) {
	a, b := testSub(t, 1), testSub(t, 2)
	budget := a.weight() + b.weight() - 1 // room for one and a bit
	s, err := NewStore(StoreConfig{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	a.CreatedAt, b.CreatedAt = time.Now(), time.Now()
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(a.ID); err == nil {
		t.Fatal("byte budget not enforced")
	}
	if _, err := s.Get(b.ID); err != nil {
		t.Fatalf("newest submission evicted: %v", err)
	}
}
