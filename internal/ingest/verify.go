package ingest

import (
	"fmt"
	"math"
	"sort"

	"gpuperf/internal/isa"
)

// The bounds verifier proves — or rejects — that every memory operand
// of a submitted program stays inside the declared buffer envelope,
// by interval abstract interpretation over the decoded instructions.
//
// Each register is tracked as an unsigned interval [lo,hi] ⊆
// [0, 2³²−1]; special registers seed known launch-geometry ranges
// (tid ∈ [0,block−1], ctaid ∈ [0,grid−1], …). Three refinement
// mechanisms recover the precision guarded kernels need:
//
//   - ISETP records a predicate fact (register, comparison, a
//     snapshot of the bound's interval). Facts are recorded and later
//     applied only while both sides provably fit int32 — the engine
//     compares signed, the verifier tracks unsigned, and the two
//     orders agree exactly on [0, 2³¹−1].
//   - A guarded branch's taken/fall-through edges refine the fact's
//     register by the comparison (lt true-edge: hi′ = bound.hi−1 …).
//     An empty refined interval marks the edge unreachable.
//   - Writes guarded by a predicate keep, per predicate polarity, a
//     side map of "value under this guard" — so @p0 shl r2, r0, 2
//     after isetp.lt p0, r0, s gives the @p0-guarded load through r2
//     the refined range even though the unconditional r2 must stay a
//     weak join. Per-lane this is sound: the guarded load only runs
//     in lanes where the guarded write ran.
//
// Loops terminate the analysis through per-pc widening (after a join
// budget, moving bounds jump straight to 0 / 2³²−1) plus a global
// step budget; programs the verifier cannot finish or cannot prove
// are rejected — admission is prove-or-reject, never trust.

const (
	maxU32 = int64(math.MaxUint32)
	maxS32 = int64(math.MaxInt32)

	// widenThreshold is the per-pc join budget before widening; a
	// dozen joins separates real fixpoints from loop-carried growth.
	widenThreshold = 12
	// stepBudgetPerPC bounds total worklist steps at len(code) × this.
	stepBudgetPerPC = 200
)

// interval is an unsigned 32-bit value range; lo > hi means empty
// (an unreachable path).
type interval struct{ lo, hi int64 }

func top() interval           { return interval{0, maxU32} }
func point(v uint32) interval { return interval{int64(v), int64(v)} }

func (iv interval) isTop() bool      { return iv.lo == 0 && iv.hi == maxU32 }
func (iv interval) empty() bool      { return iv.lo > iv.hi }
func (iv interval) signedSafe() bool { return iv.lo >= 0 && iv.hi <= maxS32 }

func joinIv(a, b interval) interval {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	return interval{min64(a.lo, b.lo), max64(a.hi, b.hi)}
}

func meetIv(a, b interval) interval {
	return interval{max64(a.lo, b.lo), min64(a.hi, b.hi)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Transfer functions. All model the engine's uint32 semantics; any
// result that could leave [0, 2³²−1] (wraparound) collapses to top.

func addIv(a, b interval) interval {
	lo, hi := a.lo+b.lo, a.hi+b.hi
	if lo < 0 || hi > maxU32 {
		return top()
	}
	return interval{lo, hi}
}

func subIv(a, b interval) interval {
	lo, hi := a.lo-b.hi, a.hi-b.lo
	if lo < 0 {
		return top()
	}
	return interval{lo, hi}
}

func mulIv(a, b interval) interval {
	if a.hi != 0 && b.hi > math.MaxInt64/a.hi {
		return top()
	}
	hi := a.hi * b.hi
	if hi > maxU32 {
		return top()
	}
	return interval{a.lo * b.lo, hi}
}

func shlIv(a, s interval) interval {
	if s.hi > 31 {
		// The engine masks the count with &31; an unbounded count can
		// hit any shift, so nothing is known.
		return top()
	}
	hi := a.hi << uint(s.hi)
	if hi > maxU32 {
		return top()
	}
	return interval{a.lo << uint(s.lo), hi}
}

func shrIv(a, s interval) interval {
	if s.hi > 31 {
		return interval{0, a.hi}
	}
	return interval{a.lo >> uint(s.hi), a.hi >> uint(s.lo)}
}

func andIv(a, b interval) interval { return interval{0, min64(a.hi, b.hi)} }

func orIv(a, b interval) interval {
	// OR/XOR cannot set a bit above the highest bit of either side.
	m := max64(a.hi, b.hi)
	hi := int64(1)
	for hi-1 < m {
		hi <<= 1
	}
	return interval{0, hi - 1}
}

func iminIv(a, b interval) interval {
	if !a.signedSafe() || !b.signedSafe() {
		return top() // signed compare diverges from unsigned order
	}
	return interval{min64(a.lo, b.lo), min64(a.hi, b.hi)}
}

func imaxIv(a, b interval) interval {
	if !a.signedSafe() || !b.signedSafe() {
		return top()
	}
	return interval{max64(a.lo, b.lo), max64(a.hi, b.hi)}
}

// boundsFact is an ISETP snapshot: predicate true ⇔ "reg cmp value"
// held, with value ∈ bound at compare time. The snapshot stays sound
// after the bound's source register changes (it over-approximated
// the compared value); it dies when reg itself is rewritten.
type boundsFact struct {
	valid bool
	reg   isa.Reg
	cmp   isa.CmpOp
	bound interval
}

// refineByFact narrows iv given that "iv's register cmp bound" is
// condTrue. Only sound while the register's current range is still
// int32-safe (the engine compares signed).
func refineByFact(iv interval, cmp isa.CmpOp, bound interval, condTrue bool) interval {
	if !iv.signedSafe() {
		return iv
	}
	if condTrue {
		switch cmp {
		case isa.CmpLT:
			iv.hi = min64(iv.hi, bound.hi-1)
		case isa.CmpLE:
			iv.hi = min64(iv.hi, bound.hi)
		case isa.CmpGT:
			iv.lo = max64(iv.lo, bound.lo+1)
		case isa.CmpGE:
			iv.lo = max64(iv.lo, bound.lo)
		case isa.CmpEQ:
			iv = meetIv(iv, bound)
		}
		return iv
	}
	switch cmp {
	case isa.CmpLT:
		iv.lo = max64(iv.lo, bound.lo)
	case isa.CmpLE:
		iv.lo = max64(iv.lo, bound.lo+1)
	case isa.CmpGT:
		iv.hi = min64(iv.hi, bound.hi)
	case isa.CmpGE:
		iv.hi = min64(iv.hi, bound.hi-1)
	case isa.CmpNE:
		iv = meetIv(iv, bound)
	}
	return iv
}

// condIdx indexes the per-polarity guard refinement maps: neg=false
// holds values valid where the predicate is true, neg=true where it
// is false.
func condIdx(p isa.Pred, neg bool) int {
	i := int(p) * 2
	if neg {
		i++
	}
	return i
}

// vstate is the abstract state at one program point.
type vstate struct {
	regs  [isa.NumRegs]interval
	facts [isa.NumPreds]boundsFact
	cond  [2 * isa.NumPreds]map[isa.Reg]interval
}

func (st *vstate) clone() *vstate {
	out := &vstate{regs: st.regs, facts: st.facts}
	for i, m := range st.cond {
		if len(m) == 0 {
			continue
		}
		c := make(map[isa.Reg]interval, len(m))
		for r, iv := range m {
			c[r] = iv
		}
		out.cond[i] = c
	}
	return out
}

// joinWith merges incoming state s into st, reporting change. With a
// non-nil threshold set, any bound that moved jumps to the next
// program landmark (threshold widening) so loop-carried growth
// converges without destroying counted-loop bounds: a counter that
// keeps approaching its isetp limit widens to the limit, not to 2³²,
// keeping it int32-safe for fact refinement.
func (st *vstate) joinWith(s *vstate, thresholds []int64) bool {
	changed := false
	widenIv := func(old, j interval) interval {
		if thresholds == nil {
			return j
		}
		if j.lo < old.lo {
			j.lo = 0
		}
		if j.hi > old.hi {
			// Smallest landmark ≥ j.hi; the list always ends in maxU32.
			i := sort.Search(len(thresholds), func(i int) bool { return thresholds[i] >= j.hi })
			j.hi = thresholds[i]
		}
		return j
	}
	for r := range st.regs {
		j := widenIv(st.regs[r], joinIv(st.regs[r], s.regs[r]))
		if j != st.regs[r] {
			st.regs[r] = j
			changed = true
		}
	}
	for p := range st.facts {
		a, b := st.facts[p], s.facts[p]
		if !a.valid {
			continue
		}
		if !b.valid || a.reg != b.reg || a.cmp != b.cmp {
			st.facts[p].valid = false
			changed = true
			continue
		}
		j := widenIv(a.bound, joinIv(a.bound, b.bound))
		if j != a.bound {
			st.facts[p].bound = j
			changed = true
		}
	}
	for ci := range st.cond {
		for r, a := range st.cond[ci] {
			b, ok := s.cond[ci][r]
			if !ok {
				delete(st.cond[ci], r)
				changed = true
				continue
			}
			j := widenIv(a, joinIv(a, b))
			if j != a {
				st.cond[ci][r] = j
				changed = true
			}
		}
	}
	return changed
}

// verifier runs the worklist analysis over one program and launch.
type verifier struct {
	prog       *isa.Program
	grid       int
	block      int
	globalEnv  int64 // declared buffer bytes
	sharedEnv  int64 // static shared-memory bytes
	thresholds []int64
	states     []*vstate
	joins      []int
	inWork     []bool
	work       []int
}

// widenThresholds collects the program's landmarks: every immediate
// (±1 for strict/inclusive comparison bounds), the launch geometry,
// the buffer envelopes, and the int32/uint32 extremes — each also at
// ×2/×4/×8, since addresses are indices scaled by element size and
// would otherwise widen straight past every index-derived landmark.
// Sorted for binary search.
func widenThresholds(prog *isa.Program, grid, block int, globalEnv, sharedEnv int64) []int64 {
	set := map[int64]bool{0: true, maxS32: true, maxU32: true}
	add := func(v int64) {
		for _, d1 := range [...]int64{-1, 0, 1} {
			for _, s := range [...]int64{1, 2, 4, 8} {
				for _, d2 := range [...]int64{-1, 0, 1} {
					if sv := (v+d1)*s + d2; sv >= 0 && sv <= maxU32 {
						set[sv] = true
					}
				}
			}
		}
	}
	for i := range prog.Code {
		in := &prog.Code[i]
		for _, o := range [...]isa.Operand{in.SrcA, in.SrcB, in.SrcC} {
			if o.Kind == isa.KindImm {
				add(int64(in.Imm))
			}
		}
	}
	add(int64(block))
	add(int64(grid))
	add(int64(grid) * int64(block))
	add(globalEnv)
	add(sharedEnv)
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// verifyBounds is the package's admission gate: nil means every
// memory access of every reachable instruction is proven inside its
// envelope for this launch; any error is a rejection.
func verifyBounds(prog *isa.Program, grid, block int, footprint int64) error {
	v := &verifier{
		prog:       prog,
		grid:       grid,
		block:      block,
		globalEnv:  footprint,
		sharedEnv:  int64(prog.SharedMemBytes),
		thresholds: widenThresholds(prog, grid, block, footprint, int64(prog.SharedMemBytes)),
		states:     make([]*vstate, len(prog.Code)),
		joins:      make([]int, len(prog.Code)),
		inWork:     make([]bool, len(prog.Code)),
	}
	init := &vstate{}
	for r := range init.regs {
		// Registers carry no defined initial value; a program must
		// derive addresses from special registers and immediates.
		init.regs[r] = top()
	}
	v.states[0] = init
	v.push(0)

	budget := len(prog.Code) * stepBudgetPerPC
	for len(v.work) > 0 {
		if budget--; budget < 0 {
			return fmt.Errorf("program %q: bounds verification exceeded its analysis budget; simplify the program's control flow", prog.Name)
		}
		pc := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		v.inWork[pc] = false
		if err := v.step(pc, v.states[pc]); err != nil {
			return err
		}
	}
	return nil
}

func (v *verifier) push(pc int) {
	if !v.inWork[pc] {
		v.inWork[pc] = true
		v.work = append(v.work, pc)
	}
}

// joinInto merges a successor state and reschedules the pc if it
// learned anything new.
func (v *verifier) joinInto(pc int, s *vstate) {
	if v.states[pc] == nil {
		v.states[pc] = s
		v.push(pc)
		return
	}
	var thr []int64
	v.joins[pc]++
	if v.joins[pc] > widenThreshold {
		thr = v.thresholds
	}
	if v.states[pc].joinWith(s, thr) {
		v.push(pc)
	}
}

// sregIv is the launch-geometry range of a special register.
func (v *verifier) sregIv(s isa.SReg) interval {
	switch s {
	case isa.SRTid:
		return interval{0, int64(v.block) - 1}
	case isa.SRCtaid:
		return interval{0, int64(v.grid) - 1}
	case isa.SRNtid:
		return point(uint32(v.block))
	case isa.SRNctaid:
		return point(uint32(v.grid))
	case isa.SRLane:
		return interval{0, 31}
	case isa.SRWarp:
		return interval{0, int64((v.block+31)/32 - 1)}
	}
	return top()
}

// regUnderGuard reads a register as the instruction at hand sees it:
// the unconditional interval, narrowed by any guarded-write
// refinement and predicate fact when the instruction is guarded.
func (v *verifier) regUnderGuard(st *vstate, in *isa.Instruction, r isa.Reg) interval {
	iv := st.regs[r]
	if in.Guard == isa.PT {
		return iv
	}
	if ref, ok := st.cond[condIdx(in.Guard, in.GuardNeg)][r]; ok {
		iv = meetIv(iv, ref)
	}
	if f := st.facts[in.Guard]; f.valid && f.reg == r {
		iv = refineByFact(iv, f.cmp, f.bound, !in.GuardNeg)
	}
	return iv
}

// evalSrc resolves one source operand to an interval.
func (v *verifier) evalSrc(st *vstate, in *isa.Instruction, o isa.Operand) interval {
	switch o.Kind {
	case isa.KindReg:
		return v.regUnderGuard(st, in, o.Reg)
	case isa.KindImm:
		return point(in.Imm)
	case isa.KindSReg:
		return v.sregIv(o.SReg)
	case isa.KindSmem:
		return top() // a value loaded from shared memory
	}
	return point(0)
}

// write models a destination write: facts about the old value die;
// unguarded writes are strong, guarded writes weak-join the
// unconditional range and record the precise value under the guard's
// polarity.
func (v *verifier) write(st *vstate, in *isa.Instruction, dst isa.Reg, val interval) {
	if val.empty() {
		return // no lane can execute this write
	}
	for p := range st.facts {
		if st.facts[p].valid && st.facts[p].reg == dst {
			st.facts[p].valid = false
		}
	}
	if in.Guard == isa.PT {
		st.regs[dst] = val
		for ci := range st.cond {
			delete(st.cond[ci], dst)
		}
		return
	}
	ci := condIdx(in.Guard, in.GuardNeg)
	for i := range st.cond {
		if i != ci {
			delete(st.cond[i], dst)
		}
	}
	if st.cond[ci] == nil {
		st.cond[ci] = make(map[isa.Reg]interval)
	}
	st.cond[ci][dst] = val
	st.regs[dst] = joinIv(st.regs[dst], val)
}

// envelope describes the space a memory op must stay inside.
func (v *verifier) envelope(op isa.Opcode) (int64, string) {
	if isa.IsGlobal(op) {
		return v.globalEnv, fmt.Sprintf("the %d-byte declared global buffer envelope", v.globalEnv)
	}
	return v.sharedEnv, fmt.Sprintf("the %d-byte shared-memory allocation", v.sharedEnv)
}

// checkMem proves a memory instruction's address range inside its
// envelope or rejects the program.
func (v *verifier) checkMem(st *vstate, in *isa.Instruction, pc int) error {
	a := v.regUnderGuard(st, in, in.SrcA.Reg)
	if a.empty() {
		return nil // guard refinement proves no lane reaches this
	}
	addr := addIv(a, point(in.Imm))
	env, what := v.envelope(in.Op)
	if addr.isTop() && a.isTop() {
		return fmt.Errorf("program %q pc=%d %s: address is not statically bounded (data-dependent or uninitialized address register); cannot prove it within %s",
			v.prog.Name, pc, in.Op, what)
	}
	if addr.lo < 0 || addr.hi > env-4 {
		return fmt.Errorf("program %q pc=%d %s: address range [%d,%d] is not provably within %s",
			v.prog.Name, pc, in.Op, addr.lo, addr.hi, what)
	}
	return nil
}

// checkSmemOperand bounds a static s[imm] ALU operand.
func (v *verifier) checkSmemOperand(in *isa.Instruction, pc int) error {
	for _, o := range [...]isa.Operand{in.SrcA, in.SrcB, in.SrcC} {
		if o.Kind != isa.KindSmem {
			continue
		}
		if int64(in.Imm) > v.sharedEnv-4 {
			return fmt.Errorf("program %q pc=%d %s: shared operand s[%d] is outside the %d-byte shared-memory allocation",
				v.prog.Name, pc, in.Op, in.Imm, v.sharedEnv)
		}
	}
	return nil
}

// edgeState builds the state flowing along one edge of a guarded
// control instruction, given whether the guard condition holds
// there. nil means the edge is provably unreachable.
func (v *verifier) edgeState(st *vstate, in *isa.Instruction, condTrue bool) *vstate {
	out := st.clone()
	if in.Guard == isa.PT {
		return out
	}
	// Polarity of the predicate itself on this edge.
	pTrue := condTrue != in.GuardNeg
	// Guarded-write refinements for that polarity become
	// unconditional: every lane on this edge satisfied the guard.
	for r, ref := range out.cond[condIdx(in.Guard, !pTrue)] {
		m := meetIv(out.regs[r], ref)
		if m.empty() {
			return nil
		}
		out.regs[r] = m
	}
	if f := out.facts[in.Guard]; f.valid {
		iv := refineByFact(out.regs[f.reg], f.cmp, f.bound, pTrue)
		if iv.empty() {
			return nil
		}
		out.regs[f.reg] = iv
	}
	return out
}

// fallThrough joins a state into pc+1, rejecting programs whose
// execution can run off the end of the code.
func (v *verifier) fallThrough(pc int, s *vstate) error {
	if pc+1 >= len(v.prog.Code) {
		return fmt.Errorf("program %q pc=%d %s: execution can fall off the end of the program", v.prog.Name, pc, v.prog.Code[pc].Op)
	}
	v.joinInto(pc+1, s)
	return nil
}

// step interprets one instruction over the current abstract state and
// propagates to its successors.
func (v *verifier) step(pc int, st *vstate) error {
	in := &v.prog.Code[pc]
	if err := v.checkSmemOperand(in, pc); err != nil {
		return err
	}
	if isa.IsMemory(in.Op) {
		if err := v.checkMem(st, in, pc); err != nil {
			return err
		}
	}

	// Control flow first: branches and exits fork refined states.
	switch in.Op {
	case isa.OpEXIT:
		if in.Guard != isa.PT {
			if out := v.edgeState(st, in, false); out != nil {
				return v.fallThrough(pc, out)
			}
		}
		return nil
	case isa.OpBRA:
		if out := v.edgeState(st, in, true); out != nil {
			v.joinInto(int(in.Target), out)
		}
		if in.Guard != isa.PT {
			if out := v.edgeState(st, in, false); out != nil {
				return v.fallThrough(pc, out)
			}
		}
		return nil
	}

	out := st.clone()
	switch in.Op {
	case isa.OpNOP, isa.OpBAR, isa.OpGST, isa.OpSST:
		// No register effects.
	case isa.OpISETP, isa.OpFSETP:
		out.facts[in.PDst] = boundsFact{}
		out.cond[condIdx(in.PDst, false)] = nil
		out.cond[condIdx(in.PDst, true)] = nil
		if in.Op == isa.OpISETP && in.Guard == isa.PT && in.SrcA.Kind == isa.KindReg {
			a := st.regs[in.SrcA.Reg]
			b := v.evalSrc(st, in, in.SrcB)
			if a.signedSafe() && b.signedSafe() {
				out.facts[in.PDst] = boundsFact{valid: true, reg: in.SrcA.Reg, cmp: in.Cmp, bound: b}
			}
		}
	case isa.OpMOV, isa.OpS2R:
		v.write(out, in, in.Dst, v.evalSrc(st, in, in.SrcA))
	case isa.OpIADD:
		v.write(out, in, in.Dst, addIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpISUB:
		v.write(out, in, in.Dst, subIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpIMUL:
		v.write(out, in, in.Dst, mulIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpIMAD:
		v.write(out, in, in.Dst, addIv(
			mulIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)),
			v.evalSrc(st, in, in.SrcC)))
	case isa.OpIMIN:
		v.write(out, in, in.Dst, iminIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpIMAX:
		v.write(out, in, in.Dst, imaxIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpSHL:
		v.write(out, in, in.Dst, shlIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpSHR:
		v.write(out, in, in.Dst, shrIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpAND:
		v.write(out, in, in.Dst, andIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	case isa.OpOR, isa.OpXOR:
		v.write(out, in, in.Dst, orIv(v.evalSrc(st, in, in.SrcA), v.evalSrc(st, in, in.SrcB)))
	default:
		// Loads, floating point, transcendentals, doubles: the value
		// is outside the integer domain we track.
		if isa.HasDst(in.Op) {
			v.write(out, in, in.Dst, top())
			if isa.IsDouble(in.Op) {
				v.write(out, in, in.Dst+1, top())
			}
		}
	}
	return v.fallThrough(pc, out)
}
