package ingest

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound reports a submission id absent from the store (never
// admitted, expired, or evicted).
var ErrNotFound = errors.New("ingest: submission not found")

// StoreConfig bounds a submission store.
type StoreConfig struct {
	// MaxCount and MaxBytes budget the resident submissions; admitting
	// past either evicts least-recently-used entries first.
	MaxCount int
	MaxBytes int64
	// TTL expires submissions this long after CreatedAt.
	TTL time.Duration
	// Dir, when set, persists each submission as a JSON slot under the
	// calibration cache's write-temp-then-rename rules so a restarted
	// daemon keeps its submissions. Empty keeps the store in memory.
	Dir string
	// OnEvict runs after a submission leaves the store for any reason
	// (LRU, TTL, Delete) — the fleet uses it to deregister the
	// ephemeral kernel.
	OnEvict func(*Submission)
	// Now substitutes the clock in tests.
	Now func() time.Time
}

// Store is an LRU-bounded, TTL-expiring, optionally persistent set of
// accepted submissions.
type Store struct {
	cfg StoreConfig

	mu        sync.Mutex
	order     *list.List               // front = most recently used
	byID      map[string]*list.Element // value: *Submission
	bytes     int64
	evictions int64 // removals for any reason: LRU, TTL, Delete
}

// storeSlot is the on-disk envelope; the version gates future layout
// changes, and a corrupt or alien slot reads as a miss.
type storeSlot struct {
	Version    int         `json:"version"`
	Submission *Submission `json:"submission"`
}

const storeSlotVersion = 1

// NewStore opens a store, loading any persisted submissions from
// cfg.Dir (oldest first, so LRU order favors recent ones). Slots that
// fail to parse or have expired are discarded.
func NewStore(cfg StoreConfig) (*Store, error) {
	lim := Limits{MaxCount: cfg.MaxCount, MaxBytes: cfg.MaxBytes, TTL: cfg.TTL}.withDefaults()
	cfg.MaxCount, cfg.MaxBytes, cfg.TTL = lim.MaxCount, lim.MaxBytes, lim.TTL
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{cfg: cfg, order: list.New(), byID: make(map[string]*list.Element)}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: submission dir: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: submission dir: %w", err)
	}
	var subs []*Submission
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, IDPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(cfg.Dir, name))
		if err != nil {
			continue
		}
		var slot storeSlot
		if json.Unmarshal(raw, &slot) != nil || slot.Version != storeSlotVersion || slot.Submission == nil {
			os.Remove(filepath.Join(cfg.Dir, name)) // corrupt slot: drop, don't fail open
			continue
		}
		sub := slot.Submission
		if sub.ID != strings.TrimSuffix(name, ".json") {
			os.Remove(filepath.Join(cfg.Dir, name))
			continue
		}
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].CreatedAt.Before(subs[j].CreatedAt) })
	for _, sub := range subs {
		s.admit(sub, false)
	}
	s.expireLocked()
	return s, nil
}

// SlotPath names a submission's on-disk slot; empty when the store is
// memory-only.
func (s *Store) SlotPath(id string) string {
	if s.cfg.Dir == "" {
		return ""
	}
	return filepath.Join(s.cfg.Dir, id+".json")
}

func (sub *Submission) weight() int64 {
	w := int64(len(sub.Container))
	for range sub.Buffers {
		w += 64 // coarse spec overhead; the container bytes dominate
	}
	return w + 256
}

// Put admits a submission, persisting it and evicting as needed.
// Re-admitting an existing id refreshes its recency and TTL clock.
func (s *Store) Put(sub *Submission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if el, ok := s.byID[sub.ID]; ok {
		el.Value = sub
		s.order.MoveToFront(el)
		return s.persist(sub)
	}
	if err := s.persist(sub); err != nil {
		return err
	}
	s.admit(sub, true)
	return nil
}

// admit inserts without persisting; evict trims to budget.
func (s *Store) admit(sub *Submission, evict bool) {
	if el, ok := s.byID[sub.ID]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.byID[sub.ID] = s.order.PushFront(sub)
	s.bytes += sub.weight()
	if !evict {
		return
	}
	for (len(s.byID) > s.cfg.MaxCount || s.bytes > s.cfg.MaxBytes) && s.order.Len() > 1 {
		s.removeLocked(s.order.Back(), true)
	}
}

func (s *Store) persist(sub *Submission) error {
	path := s.SlotPath(sub.ID)
	if path == "" {
		return nil
	}
	raw, err := json.Marshal(storeSlot{Version: storeSlotVersion, Submission: sub})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, "tmp-subm-*")
	if err != nil {
		return fmt.Errorf("ingest: persist submission: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ingest: persist submission: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ingest: persist submission: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ingest: persist submission: %w", err)
	}
	return nil
}

// Get returns a live submission by id, refreshing its recency.
func (s *Store) Get(id string) (*Submission, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	el, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.order.MoveToFront(el)
	return el.Value.(*Submission), nil
}

// Delete removes a submission; false if it was not resident.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return false
	}
	s.removeLocked(el, true)
	return true
}

// List snapshots the live submissions, most recently used first.
func (s *Store) List() []*Submission {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	out := make([]*Submission, 0, len(s.byID))
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Submission))
	}
	return out
}

// Stats reports the resident count, byte weight and the cumulative
// number of submissions removed (LRU pressure, TTL expiry or
// explicit deletion).
func (s *Store) Stats() (count int, bytes int64, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return len(s.byID), s.bytes, s.evictions
}

// expireLocked drops every submission past its TTL.
func (s *Store) expireLocked() {
	now := s.cfg.Now()
	var dead []*list.Element
	for el := s.order.Front(); el != nil; el = el.Next() {
		if now.Sub(el.Value.(*Submission).CreatedAt) > s.cfg.TTL {
			dead = append(dead, el)
		}
	}
	for _, el := range dead {
		s.removeLocked(el, true)
	}
}

func (s *Store) removeLocked(el *list.Element, notify bool) {
	sub := el.Value.(*Submission)
	s.order.Remove(el)
	delete(s.byID, sub.ID)
	s.bytes -= sub.weight()
	if path := s.SlotPath(sub.ID); path != "" {
		os.Remove(path)
	}
	if notify {
		// Boot-time reload dedup (notify=false) is not an eviction; a
		// live submission leaving the store for any reason is.
		s.evictions++
	}
	if notify && s.cfg.OnEvict != nil {
		s.cfg.OnEvict(sub)
	}
}
