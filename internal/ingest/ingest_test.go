package ingest

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// reduceSource is the canonical submission used across the tests (and
// mirrored in the service smoke test): a shared-memory tree reduction
// over 64-thread blocks. Guarded halving steps make it a real workout
// for the bounds verifier — the strided shared loads are only in
// bounds because the isetp guard proves them so.
func reduceSource(grid int) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel reduce64\n.regs 13\n.smem 256\n")
	b.WriteString(`
s2r r0, %tid
s2r r1, %ctaid
s2r r2, %ntid
imad r3, r1, r2, r0
shl r4, r3, 2
gld r5, r4
shl r6, r0, 2
sst r6, r5
bar.sync
`)
	for s := 32; s >= 1; s /= 2 {
		fmt.Fprintf(&b, "isetp.lt p0, r0, %d\n", s)
		fmt.Fprintf(&b, "@p0 iadd r7, r0, %d\n", s)
		b.WriteString(`@p0 shl r7, r7, 2
@p0 sld r8, r7
@p0 sld r9, r6
@p0 fadd r9, r9, r8
@p0 sst r6, r9
bar.sync
`)
	}
	// Lane 0 publishes shared[0] to out[ctaid], which lives after the
	// input buffer in the contiguous global layout.
	fmt.Fprintf(&b, `isetp.eq p1, r0, 0
mov r10, 0
@p1 sld r11, r10
@p1 shl r12, r1, 2
@p1 iadd r12, r12, %d
@p1 gst r12, r11
exit
`, 4*grid*64)
	return b.String()
}

func reduceRequest(grid int) Request {
	return Request{
		Source: reduceSource(grid),
		Grid:   grid,
		Block:  64,
		Buffers: []BufferSpec{
			{Name: "in", Elem: ElemF32, Count: grid * 64, Fill: FillRandom},
			{Name: "out", Elem: ElemF32, Count: grid, Fill: FillZeros},
		},
	}
}

func TestCompileReduction(t *testing.T) {
	now := time.Unix(1700000000, 0)
	sub, err := Compile(reduceRequest(4), Limits{}, now)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !strings.HasPrefix(sub.ID, IDPrefix) || len(sub.ID) != len(IDPrefix)+16 {
		t.Fatalf("bad id %q", sub.ID)
	}
	if sub.Kernel != "reduce64" || sub.Grid != 4 || sub.Block != 64 {
		t.Fatalf("bad submission: %+v", sub)
	}
	if sub.FootprintBytes != int64(4*(4*64+4)) {
		t.Fatalf("footprint = %d", sub.FootprintBytes)
	}
	if sub.Instructions == 0 || sub.Registers != 13 || sub.SharedMemBytes != 256 {
		t.Fatalf("static summary: %+v", sub)
	}

	// Content addressing: same program+spec → same id; label is not
	// part of the identity, the spec is.
	req2 := reduceRequest(4)
	req2.Label = "renamed"
	sub2, err := Compile(req2, Limits{}, now.Add(time.Minute))
	if err != nil {
		t.Fatalf("Compile again: %v", err)
	}
	if sub2.ID != sub.ID {
		t.Fatalf("relabel changed id: %s vs %s", sub2.ID, sub.ID)
	}
	req3 := reduceRequest(4)
	req3.Buffers[0].Fill = FillAffine
	sub3, err := Compile(req3, Limits{}, now)
	if err != nil {
		t.Fatalf("Compile variant: %v", err)
	}
	if sub3.ID == sub.ID {
		t.Fatalf("different buffer spec, same id %s", sub.ID)
	}

	// Router-side permissive hashing agrees with the worker's.
	id, err := ID(reduceRequest(4))
	if err != nil || id != sub.ID {
		t.Fatalf("ID() = %s, %v; want %s", id, err, sub.ID)
	}
}

func TestCompileRejectsOutOfBounds(t *testing.T) {
	// The input indexing runs one block past the declared buffer.
	req := reduceRequest(4)
	req.Buffers[0].Count = 3 * 64 // program addresses grid*64 = 256 elements
	if _, err := Compile(req, Limits{}, time.Unix(0, 0)); err == nil {
		t.Fatal("out-of-bounds program admitted")
	} else if !strings.Contains(err.Error(), "envelope") {
		t.Fatalf("rejection does not name the envelope: %v", err)
	}
}

func TestCompileRejectsDataDependentAddress(t *testing.T) {
	req := Request{
		Source: `.kernel wild
.regs 4
.smem 0
mov r0, 0
gld r1, r0
gld r2, r1
exit
`,
		Grid: 1, Block: 32,
		Buffers: []BufferSpec{{Name: "b", Elem: ElemU32, Count: 64, Fill: FillZeros}},
	}
	_, err := Compile(req, Limits{}, time.Unix(0, 0))
	if err == nil {
		t.Fatal("data-dependent address admitted")
	}
	if !strings.Contains(err.Error(), "not statically bounded") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestCompileRejectsUninitializedAddressRegister(t *testing.T) {
	req := Request{
		Source: ".kernel u\n.regs 4\ngld r1, r3\nexit\n",
		Grid:   1, Block: 32,
		Buffers: []BufferSpec{{Name: "b", Elem: ElemU32, Count: 64, Fill: FillZeros}},
	}
	if _, err := Compile(req, Limits{}, time.Unix(0, 0)); err == nil {
		t.Fatal("uninitialized address register admitted")
	}
}

func TestCompileRejectsSharedOverflow(t *testing.T) {
	req := Request{
		Source: `.kernel sh
.regs 4
.smem 64
s2r r0, %tid
shl r1, r0, 2
sst r1, r0
exit
`,
		Grid: 1, Block: 64, // 4*63 = 252 > 60
		Buffers: []BufferSpec{{Name: "b", Elem: ElemU32, Count: 64, Fill: FillZeros}},
	}
	_, err := Compile(req, Limits{}, time.Unix(0, 0))
	if err == nil {
		t.Fatal("shared overflow admitted")
	}
	if !strings.Contains(err.Error(), "shared-memory") {
		t.Fatalf("rejection does not name shared memory: %v", err)
	}
}

func TestCompileGuardRefinementRequired(t *testing.T) {
	// Without the guard, the strided access is genuinely out of
	// bounds; the verifier must accept the guarded form and reject
	// the unguarded one.
	guarded := `.kernel g
.regs 6
.smem 128
s2r r0, %tid
isetp.lt p0, r0, 16
@p0 iadd r1, r0, 16
@p0 shl r1, r1, 2
@p0 sld r2, r1
exit
`
	unguarded := strings.ReplaceAll(guarded, "@p0 ", "")
	base := Request{
		Grid: 1, Block: 32,
		Buffers: []BufferSpec{{Name: "b", Elem: ElemF32, Count: 32, Fill: FillZeros}},
	}
	req := base
	req.Source = guarded
	if _, err := Compile(req, Limits{}, time.Unix(0, 0)); err != nil {
		t.Fatalf("guarded strided access rejected: %v", err)
	}
	req = base
	req.Source = unguarded
	if _, err := Compile(req, Limits{}, time.Unix(0, 0)); err == nil {
		t.Fatal("unguarded strided access admitted")
	}
}

func TestCompileLoopWithGuard(t *testing.T) {
	// A counted loop whose body accesses a[i]: the backward branch
	// forces joins and widening, and the bound proof must survive via
	// the isetp fact, not the (widened) loop counter interval.
	req := Request{
		Source: `.kernel loop
.regs 6
.smem 0
mov r0, 0
mov r3, 0
isetp.ge p0, r0, 64
@p0 bra @9
shl r1, r0, 2
gld r2, r1
iadd r3, r3, r2
iadd r0, r0, 1
bra @2
mov r4, 0
gst r4, r3
exit
`,
		Grid: 1, Block: 32,
		Buffers: []BufferSpec{{Name: "a", Elem: ElemU32, Count: 64, Fill: FillAffine, Start: 1, Step: 1}},
	}
	if _, err := Compile(req, Limits{}, time.Unix(0, 0)); err != nil {
		t.Fatalf("counted loop rejected: %v", err)
	}
}

func TestCompileCeilings(t *testing.T) {
	now := time.Unix(0, 0)
	cases := []struct {
		name string
		mut  func(*Request)
		lim  Limits
		want string
	}{
		{"instructions", nil, Limits{MaxInstructions: 4}, "instruction ceiling"},
		{"registers", nil, Limits{MaxRegisters: 8}, "register ceiling"},
		{"shared", nil, Limits{MaxSharedBytes: 128}, "byte ceiling"},
		{"footprint", nil, Limits{MaxFootprintBytes: 512}, "footprint ceiling"},
		{"threads", func(r *Request) { r.Grid = 1 << 16 }, Limits{MaxThreads: 1 << 10}, "thread ceiling"},
		{"block", func(r *Request) { r.Block = 1024 }, Limits{}, "block ceiling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := reduceRequest(4)
			if tc.mut != nil {
				tc.mut(&req)
			}
			_, err := Compile(req, tc.lim, now)
			if err == nil {
				t.Fatal("over-budget submission admitted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestCompileSpecErrors(t *testing.T) {
	now := time.Unix(0, 0)
	base := reduceRequest(2)
	for _, tc := range []struct {
		name string
		mut  func(*Request)
	}{
		{"no-buffers", func(r *Request) { r.Buffers = nil }},
		{"bad-elem", func(r *Request) { r.Buffers[0].Elem = "f64" }},
		{"bad-fill", func(r *Request) { r.Buffers[0].Fill = "ones" }},
		{"dup-name", func(r *Request) { r.Buffers[1].Name = r.Buffers[0].Name }},
		{"zero-count", func(r *Request) { r.Buffers[0].Count = 0 }},
		{"no-program", func(r *Request) { r.Source = "" }},
		{"both-forms", func(r *Request) { r.Container = []byte{1} }},
		{"bad-grid", func(r *Request) { r.Grid = 0 }},
		{"wrong-kernel", func(r *Request) { r.Kernel = "nope" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			req.Buffers = append([]BufferSpec(nil), base.Buffers...)
			tc.mut(&req)
			if _, err := Compile(req, Limits{}, now); err == nil {
				t.Fatal("invalid submission admitted")
			}
		})
	}
}

func TestSubmissionMemoryDeterministic(t *testing.T) {
	sub, err := Compile(reduceRequest(2), Limits{}, time.Unix(0, 0))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m1, regs, err := sub.NewMemory(7)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	m2, _, err := sub.NewMemory(7)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	if len(regs) != 2 || regs[0].Name != "in" || regs[1].Name != "out" {
		t.Fatalf("regions: %+v", regs)
	}
	if regs[0].Lo != 0 || regs[0].Hi != uint32(4*2*64) || regs[1].Lo != regs[0].Hi {
		t.Fatalf("region layout: %+v", regs)
	}
	w1, err := m1.ReadWords(0, 2*64+2)
	if err != nil {
		t.Fatalf("ReadWords: %v", err)
	}
	w2, _ := m2.ReadWords(0, 2*64+2)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("memory not deterministic at word %d", i)
		}
	}
	m3, _, _ := sub.NewMemory(8)
	w3, _ := m3.ReadWords(0, 4)
	same := true
	for i := range w3 {
		if w1[i] != w3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical random fill")
	}
}
