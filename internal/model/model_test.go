package model

import (
	"strings"
	"sync"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/microbench"
	"gpuperf/internal/timing"
)

var (
	calMu   sync.Mutex
	calMemo *timing.Calibration
)

func cal(t *testing.T) *timing.Calibration {
	t.Helper()
	calMu.Lock()
	defer calMu.Unlock()
	if calMemo == nil {
		c, err := timing.Calibrate(gpu.GTX285())
		if err != nil {
			t.Fatal(err)
		}
		calMemo = c
	}
	return calMemo
}

// aluKernel is a dense FMAD kernel (instruction-bound).
func aluKernel(t *testing.T) *isa.Program {
	t.Helper()
	p, err := microbench.InstrChain(isa.OpFMAD, 256)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// conflictedSharedKernel copies shared memory at stride 8 (8-way
// conflicts, shared-bound).
func conflictedSharedKernel(t *testing.T) *isa.Program {
	t.Helper()
	p, err := microbench.SharedCopy(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// streamKernel loads global memory (global-bound).
func streamKernel(t *testing.T, threads int) *isa.Program {
	t.Helper()
	p, err := microbench.GlobalStream(32, threads, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// predictAndMeasure runs the full workflow plus the device
// simulator and returns both.
func predictAndMeasure(t *testing.T, c *timing.Calibration, l barra.Launch, memBytes int) (*Estimate, device.Result) {
	t.Helper()
	est, _, err := Predict(c, l, barra.NewMemory(memBytes), nil)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := device.Run(c.Config(), l, barra.NewMemory(memBytes))
	if err != nil {
		t.Fatal(err)
	}
	return est, meas
}

// TestBottleneckIdentification: the model's bottleneck verdict must
// match the device simulator's observed dominant component on three
// archetypal kernels.
func TestBottleneckIdentification(t *testing.T) {
	c := cal(t)
	cases := []struct {
		name string
		l    barra.Launch
		mem  int
		want Component
	}{
		{"alu", barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256}, 4096, CompInstruction},
		{"shared", barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}, 4096, CompShared},
		{"global", barra.Launch{Prog: streamKernel(t, 60*128), Grid: 60, Block: 128}, 1 << 22, CompGlobal},
	}
	for _, cse := range cases {
		est, meas := predictAndMeasure(t, c, cse.l, cse.mem)
		if est.Bottleneck != cse.want {
			t.Errorf("%s: model bottleneck = %s, want %s\n%s", cse.name, est.Bottleneck, cse.want, est.Report())
		}
		wantObserved := map[Component]string{
			CompInstruction: "instruction", CompShared: "shared", CompGlobal: "global",
		}[cse.want]
		if got := meas.DominantComponent(); got != wantObserved {
			t.Errorf("%s: device dominant = %s, want %s", cse.name, got, wantObserved)
		}
	}
}

// TestPredictionAccuracy: the paper claims 5-15%; we assert the
// model's total-time prediction is within 25% of the device
// simulator on the three archetypes (our bar allows for the
// simulator's latency tails that the throughput model ignores).
func TestPredictionAccuracy(t *testing.T) {
	c := cal(t)
	cases := []struct {
		name string
		l    barra.Launch
		mem  int
	}{
		{"alu", barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256}, 4096},
		{"shared", barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}, 4096},
		{"global", barra.Launch{Prog: streamKernel(t, 60*128), Grid: 60, Block: 128}, 1 << 22},
	}
	for _, cse := range cases {
		est, meas := predictAndMeasure(t, c, cse.l, cse.mem)
		if err := est.CompareError(meas.Seconds); err > 0.25 {
			t.Errorf("%s: prediction %.4g ms vs measured %.4g ms (%.0f%% error)",
				cse.name, est.TotalSeconds*1e3, meas.Seconds*1e3, err*100)
		}
	}
}

// TestStageSerialization: a one-block-per-SM kernel with a barrier
// between a shared phase and an ALU phase must be analyzed as
// serialized stages with different bottlenecks.
func TestStageSerialization(t *testing.T) {
	c := cal(t)
	b := kbuild.New("twophase")
	b.SharedBytes(16 * 1024) // force one block per SM
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	x := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 5) // stride 8 words: 8-way conflicts
	b.AndImm(addr, addr, 4095)
	b.Loop(ctr, 40, func() {
		b.Sld(v, addr)
		b.Sst(addr, v)
	})
	b.Bar()
	b.MovF(x, 1)
	for i := 0; i < 300; i++ {
		b.FMad(x, x, x, x)
	}
	b.Exit()
	l := barra.Launch{Prog: b.MustProgram(), Grid: 30, Block: 128}
	est, _, err := Predict(c, l, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Serialized {
		t.Fatal("16 KB block not serialized (should be one block/SM)")
	}
	if len(est.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(est.Stages))
	}
	if est.Stages[0].Bottleneck != CompShared {
		t.Errorf("stage 0 bottleneck = %s, want shared", est.Stages[0].Bottleneck)
	}
	if est.Stages[1].Bottleneck != CompInstruction {
		t.Errorf("stage 1 bottleneck = %s, want instruction", est.Stages[1].Bottleneck)
	}
	// Serialized total = sum of stage maxima.
	want := est.Stages[0].Times.Max() + est.Stages[1].Times.Max()
	if est.TotalSeconds != want {
		t.Errorf("serialized total %.4g != sum of stage maxima %.4g", est.TotalSeconds, want)
	}
}

// TestOverlappedTotal: with multiple resident blocks the total is
// the whole-program bottleneck component, not the stage sum.
func TestOverlappedTotal(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256}
	est, _, err := Predict(c, l, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Serialized {
		t.Fatal("small kernel serialized unexpectedly")
	}
	if est.TotalSeconds != est.Component.Max() {
		t.Errorf("overlapped total %v != component max %v", est.TotalSeconds, est.Component.Max())
	}
}

// TestDiagnostics: density, conflicts and causes surface correctly.
func TestDiagnostics(t *testing.T) {
	c := cal(t)
	// Conflicted shared kernel: factor ≈ 8, shared-bound.
	l := barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}
	est, _, err := Predict(c, l, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.BankConflictFactor < 7 || est.BankConflictFactor > 9 {
		t.Errorf("conflict factor = %.2f, want ≈8", est.BankConflictFactor)
	}
	causes := strings.Join(est.Causes(), "; ")
	if !strings.Contains(causes, "bank conflicts") {
		t.Errorf("causes missing bank conflicts: %s", causes)
	}
	rep := est.Report()
	for _, want := range []string{"bottleneck", "occupancy", "density", "stage 0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	// Dense ALU kernel: high density.
	l2 := barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256}
	est2, _, err := Predict(c, l2, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Density < 0.9 {
		t.Errorf("FMAD chain density = %.2f, want ≈1", est2.Density)
	}
}

// TestWarpDeration: a kernel whose second stage idles 3 of 4 warps
// must see reduced stage parallelism (the CR mechanism).
func TestWarpDeration(t *testing.T) {
	c := cal(t)
	b := kbuild.New("shrink")
	b.SharedBytes(16 * 1024) // one block per SM
	tid := b.Reg()
	x := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovF(x, 1)
	b.Loop(ctr, 16, func() { b.FMad(x, x, x, x) })
	b.Bar()
	// Stage 1: only warp 0 works (tid < 32 predicated ALU).
	b.ISetpImm(isa.P0, isa.CmpGE, tid, 32)
	skip := b.BraIf(isa.P0, false)
	ctr2 := b.Reg()
	b.Loop(ctr2, 16, func() { b.FMad(x, x, x, x) })
	end := b.Pos()
	b.SetTarget(skip, end)
	b.Exit()
	l := barra.Launch{Prog: b.MustProgram(), Grid: 30, Block: 128}
	est, _, err := Predict(c, l, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Stages) != 2 {
		t.Fatalf("stages = %d", len(est.Stages))
	}
	if est.Stages[0].Warps != 4 {
		t.Errorf("stage 0 warps = %d, want 4", est.Stages[0].Warps)
	}
	if est.Stages[1].Warps != 1 {
		t.Errorf("stage 1 warps = %d, want 1", est.Stages[1].Warps)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: aluKernel(t), Grid: 1, Block: 32}
	if _, err := Analyze(nil, l, &barra.Stats{}); err == nil {
		t.Error("nil calibration accepted")
	}
	if _, err := Analyze(c, l, nil); err == nil {
		t.Error("nil stats accepted")
	}
	if _, err := Analyze(c, barra.Launch{Prog: nil, Grid: 1, Block: 32}, &barra.Stats{}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestTimesHelpers(t *testing.T) {
	tm := Times{1, 3, 2}
	if tm.Bottleneck() != CompShared || tm.Second() != CompGlobal || tm.Max() != 3 {
		t.Errorf("helpers wrong: %v %v %v", tm.Bottleneck(), tm.Second(), tm.Max())
	}
	tm2 := Times{5, 0, 0}
	if tm2.Bottleneck() != CompInstruction || tm2.Second() != CompShared {
		t.Errorf("degenerate helpers wrong")
	}
	tm.Add(tm2)
	if tm[CompInstruction] != 6 {
		t.Errorf("Add wrong: %v", tm)
	}
	if CompGlobal.String() != "global memory" || Component(9).String() == "" {
		t.Error("String() wrong")
	}
	if (&Estimate{TotalSeconds: 2}).GFLOPS(4e9) != 2 {
		t.Error("GFLOPS wrong")
	}
	e := &Estimate{TotalSeconds: 1.1}
	if err := e.CompareError(1.0); err < 0.099 || err > 0.101 {
		t.Errorf("CompareError = %v", err)
	}
}

// TestOverlapBracket: the device-simulator time must fall inside the
// model's [overlapped, fully-serial] prediction interval on all
// three archetypes — the paper's future-work item 4 expressed as a
// testable bound.
func TestOverlapBracket(t *testing.T) {
	c := cal(t)
	cases := []struct {
		name string
		l    barra.Launch
		mem  int
	}{
		{"alu", barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256}, 4096},
		{"shared", barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}, 4096},
		{"global", barra.Launch{Prog: streamKernel(t, 60*128), Grid: 60, Block: 128}, 1 << 22},
	}
	for _, cse := range cases {
		est, meas := predictAndMeasure(t, c, cse.l, cse.mem)
		if est.UpperBoundSeconds < est.TotalSeconds {
			t.Fatalf("%s: upper bound below prediction", cse.name)
		}
		lo, hi := est.TotalSeconds*0.75, est.UpperBoundSeconds*1.25
		if meas.Seconds < lo || meas.Seconds > hi {
			t.Errorf("%s: measured %.4g ms outside [%.4g, %.4g]",
				cse.name, meas.Seconds*1e3, lo*1e3, hi*1e3)
		}
	}
}

// TestOverlapSensitive: a kernel with balanced components is flagged;
// a pure-ALU kernel is not.
func TestOverlapSensitive(t *testing.T) {
	c := cal(t)
	est, _, err := Predict(c, barra.Launch{Prog: aluKernel(t), Grid: 60, Block: 256},
		barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.OverlapSensitive(0.5) {
		t.Error("pure ALU kernel flagged overlap-sensitive")
	}
	est2 := &Estimate{Component: Times{1.0, 0.9, 0.1}}
	est2.Bottleneck = est2.Component.Bottleneck()
	est2.NextBottleneck = est2.Component.Second()
	if !est2.OverlapSensitive(0.5) {
		t.Error("balanced kernel not flagged")
	}
	empty := &Estimate{}
	if empty.OverlapSensitive(0.5) {
		t.Error("empty estimate flagged")
	}
}

// --- Counterfactual overrides (AnalyzeWith / PredictWith) ---

// runStats executes the launch functionally and returns its stats.
func runStats(t *testing.T, c *timing.Calibration, l barra.Launch, memBytes int) *barra.Stats {
	t.Helper()
	stats, err := barra.Run(c.Config(), l, barra.NewMemory(memBytes), nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// divergentKernel splits every warp into odd/even paths that each run
// their own FMAD chain — half the lanes idle through each side.
func divergentKernel(t *testing.T) *isa.Program {
	t.Helper()
	b := kbuild.New("divergent")
	tid, v, acc := b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovImm(acc, 0)
	b.AndImm(v, tid, 1)
	b.ISetpImm(isa.P0, isa.CmpNE, v, 0)
	br := b.BraIf(isa.P0, false)
	for i := 0; i < 64; i++ { // even lanes
		b.FMad(acc, acc, acc, acc)
	}
	join := b.Bra()
	b.SetTarget(br, b.Pos())
	for i := 0; i < 64; i++ { // odd lanes
		b.FMad(acc, acc, acc, acc)
	}
	b.SetTarget(join, b.Pos())
	b.Exit()
	return b.MustProgram()
}

// stridedGlobalKernel loads global words at a two-word lane stride,
// so every transaction carries 50% useful bytes.
func stridedGlobalKernel(t *testing.T) *isa.Program {
	t.Helper()
	b := kbuild.New("strided-global")
	tid, ntid, cta, flat, addr, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(flat, cta, ntid, tid)
	b.ShlImm(addr, flat, 3) // ×8: two-word stride
	for i := uint32(0); i < 16; i++ {
		b.GldOff(v, addr, i*4096)
	}
	b.Exit()
	return b.MustProgram()
}

// TestAnalyzeWithZeroMatchesAnalyze: the zero Overrides reproduce the
// factual analysis bit for bit.
func TestAnalyzeWithZeroMatchesAnalyze(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}
	stats := runStats(t, c, l, 4096)
	plain, err := Analyze(c, l, stats)
	if err != nil {
		t.Fatal(err)
	}
	with, err := AnalyzeWith(c, l, stats, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalSeconds != with.TotalSeconds || plain.Component != with.Component {
		t.Errorf("zero overrides drifted: %+v vs %+v", plain.Component, with.Component)
	}
	if !(Overrides{}).Zero() || (Overrides{ForceOverlap: true}).Zero() {
		t.Error("Overrides.Zero misreports")
	}
}

// TestConflictFreeSharedOverride: removing bank conflicts shrinks the
// shared component by the measured conflict factor.
func TestConflictFreeSharedOverride(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}
	stats := runStats(t, c, l, 4096)
	factor := stats.BankConflictFactor()
	if factor < 2 {
		t.Fatalf("conflicted kernel has factor %.2f, want ≥ 2", factor)
	}
	base, err := Analyze(c, l, stats)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := AnalyzeWith(c, l, stats, Overrides{ConflictFreeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	got := base.Component[CompShared] / ideal.Component[CompShared]
	if got < factor*0.95 || got > factor*1.05 {
		t.Errorf("shared time shrank %.2fx, want the conflict factor %.2fx", got, factor)
	}
	if ideal.Component[CompInstruction] != base.Component[CompInstruction] {
		t.Error("conflict-free override leaked into the instruction component")
	}
}

// TestPerfectCoalescingOverride: a half-useful access pattern halves
// its global component under perfect coalescing.
func TestPerfectCoalescingOverride(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: stridedGlobalKernel(t), Grid: 60, Block: 128}
	stats := runStats(t, c, l, 1<<20)
	eff := stats.CoalescingEfficiency()
	if eff > 0.6 {
		t.Fatalf("strided kernel coalesces at %.2f, want ≤ 0.6", eff)
	}
	base, err := Analyze(c, l, stats)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := AnalyzeWith(c, l, stats, Overrides{PerfectCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	got := ideal.Component[CompGlobal] / base.Component[CompGlobal]
	if got < eff*0.95 || got > eff*1.05 {
		t.Errorf("global time scaled %.2fx, want the coalescing efficiency %.2f", got, eff)
	}
}

// TestNoDivergenceOverride: packing the two half-empty paths of a
// divergent kernel roughly halves its diverged instruction work.
func TestNoDivergenceOverride(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: divergentKernel(t), Grid: 60, Block: 256}
	stats := runStats(t, c, l, 4096)
	if stats.Total.DivergentInstrs() == 0 {
		t.Fatal("kernel did not diverge")
	}
	if over := stats.DivergenceOverhead(); over < 0.2 {
		t.Fatalf("divergence overhead %.2f, want ≥ 0.2", over)
	}
	base, err := Analyze(c, l, stats)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := AnalyzeWith(c, l, stats, Overrides{NoDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	got := ideal.Component[CompInstruction] / base.Component[CompInstruction]
	want := 1 - stats.DivergenceOverhead()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("instruction time scaled %.2fx, want ≈ %.2fx (1 − overhead)", got, want)
	}
}

// TestResidentBlocksOverride: forcing occupancy down to one resident
// block serializes the stages; forcing it up raises the assumed
// warp-level parallelism but never past the architectural ceilings.
func TestResidentBlocksOverride(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}
	stats := runStats(t, c, l, 4096)
	one, err := AnalyzeWith(c, l, stats, Overrides{ResidentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Occupancy.Blocks != 1 || !one.Serialized {
		t.Errorf("ResidentBlocks=1: got %d blocks, serialized=%v", one.Occupancy.Blocks, one.Serialized)
	}
	big, err := AnalyzeWith(c, l, stats, Overrides{ResidentBlocks: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if w := big.Occupancy.ActiveWarps; w > cfg.MaxWarpsPerSM {
		t.Errorf("override exceeded the warp ceiling: %d > %d", w, cfg.MaxWarpsPerSM)
	}
	if big.Occupancy.Blocks*l.Block > cfg.MaxThreadsPerSM {
		t.Errorf("override exceeded the thread ceiling: %d blocks × %d threads", big.Occupancy.Blocks, l.Block)
	}
}

// TestForceOverlapOverride: a serialized kernel's ideal-overlap time
// is the whole-program bottleneck, never more than the staged sum.
func TestForceOverlapOverride(t *testing.T) {
	c := cal(t)
	l := barra.Launch{Prog: conflictedSharedKernel(t), Grid: 60, Block: 256}
	stats := runStats(t, c, l, 4096)
	serial, err := AnalyzeWith(c, l, stats, Overrides{ResidentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := AnalyzeWith(c, l, stats, Overrides{ResidentBlocks: 1, ForceOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Serialized {
		t.Error("ForceOverlap left the estimate serialized")
	}
	if overlap.TotalSeconds > serial.TotalSeconds {
		t.Errorf("ideal overlap %.4g ms exceeds the serialized %.4g ms",
			overlap.TotalSeconds*1e3, serial.TotalSeconds*1e3)
	}
	if overlap.TotalSeconds != overlap.Component.Max() {
		t.Errorf("ideal overlap should be the component max")
	}
}
