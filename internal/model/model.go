// Package model implements the paper's quantitative performance
// model (§3): given the dynamic statistics of a kernel (from the
// barra functional simulator) and microbenchmark-calibrated
// throughput curves, it estimates the time three architectural
// components would each need — the instruction pipeline, shared
// memory, and global memory — identifies the bottleneck component,
// breaks the program into barrier-delimited stages, and produces the
// diagnostics that guide program and architecture optimization:
// computational density, coalescing efficiency, bank-conflict
// penalty, and warp-level parallelism.
//
// Key modeling assumptions, from the paper:
//
//   - The time of non-bottleneck components is hidden under the
//     bottleneck (the GPU overlaps instruction, shared-memory and
//     global-memory work across warps), so the program's time is the
//     maximum of the component times — not their sum.
//   - With a single resident block per SM, barrier-delimited stages
//     serialize: the program's time is the sum over stages of each
//     stage's bottleneck time, and each stage has its own bottleneck.
//   - With multiple resident blocks, stages of different blocks
//     overlap, so the whole program gets one bottleneck verdict (a
//     slightly optimistic treatment, as the paper notes).
package model

import (
	"context"
	"fmt"
	"strings"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/occupancy"
	"gpuperf/internal/timing"
)

// Component identifies one of the three modeled components.
type Component int

// The three components of GPU execution time.
const (
	CompInstruction Component = iota
	CompShared
	CompGlobal
	// NumComponents is the component count.
	NumComponents = 3
)

func (c Component) String() string {
	switch c {
	case CompInstruction:
		return "instruction pipeline"
	case CompShared:
		return "shared memory"
	case CompGlobal:
		return "global memory"
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Times holds per-component time estimates in seconds.
type Times [NumComponents]float64

// Bottleneck returns the component with the largest time.
func (t Times) Bottleneck() Component {
	best := CompInstruction
	for c := CompInstruction; int(c) < NumComponents; c++ {
		if t[c] > t[best] {
			best = c
		}
	}
	return best
}

// Second returns the runner-up component — the paper's "what becomes
// the bottleneck if the current one is removed".
func (t Times) Second() Component {
	b := t.Bottleneck()
	second := CompInstruction
	if second == b {
		second = CompShared
	}
	for c := CompInstruction; int(c) < NumComponents; c++ {
		if c != b && t[c] > t[second] {
			second = c
		}
	}
	return second
}

// Max returns the bottleneck time.
func (t Times) Max() float64 { return t[t.Bottleneck()] }

// Add accumulates element-wise.
func (t *Times) Add(o Times) {
	for i := range t {
		t[i] += o[i]
	}
}

// StageEstimate is the model's verdict for one barrier-delimited
// stage.
type StageEstimate struct {
	// Index is the stage number (0 = start to first barrier).
	Index int
	// Times are per-component estimates for the stage.
	Times Times
	// Bottleneck is the stage's slowest component.
	Bottleneck Component
	// Warps is the warp-level parallelism per SM assumed for the
	// stage's throughput lookups.
	Warps int
}

// Estimate is the model's output for a kernel.
type Estimate struct {
	// Component holds whole-program per-component times.
	Component Times
	// Stages carries the per-stage breakdown.
	Stages []StageEstimate
	// Serialized is true when one resident block per SM forces
	// stages to run back to back.
	Serialized bool
	// TotalSeconds is the predicted execution time: the bottleneck
	// component when overlapped, or the sum of stage bottlenecks
	// when serialized.
	TotalSeconds float64
	// UpperBoundSeconds brackets the paper's acknowledged
	// limitation (future-work item 4): TotalSeconds assumes perfect
	// overlap of the non-bottleneck components, which under-predicts
	// when barrier-delimited stages serialize dependent global and
	// shared phases. UpperBoundSeconds is the fully-serial bound
	// (sum of all component times over all stages); the real time
	// lies between the two, nearer the lower bound the more
	// independent warps the kernel keeps in flight.
	UpperBoundSeconds float64
	// Bottleneck and NextBottleneck are the whole-program verdicts.
	Bottleneck     Component
	NextBottleneck Component

	// Diagnostics (paper Fig. 1's outputs).
	WarpsPerSM           int
	Occupancy            occupancy.Result
	Density              float64
	CoalescingEfficiency float64
	BankConflictFactor   float64
	TransPerThread       int

	// InstrThroughput and bandwidths echo the curve values used.
	InstrThroughputAtWarps float64 // ClassII instr/s
	SharedBandwidthAtWarps float64 // B/s
	GlobalBandwidthUsed    float64 // B/s
}

// Overrides perturb the model's inputs to answer counterfactual
// "what if" questions — the paper's §4 optimization-impact analysis:
// the statistics of one functional run are re-evaluated under an
// idealized assumption, and the change in predicted time quantifies
// how much the corresponding optimization would buy. All overrides
// are pure stat/occupancy transforms; none re-runs the simulation.
type Overrides struct {
	// PerfectCoalescing charges the global-memory component only for
	// the useful bytes (4 B per active lane), as if every half-warp
	// request coalesced into fully-used transactions.
	PerfectCoalescing bool
	// ConflictFreeShared replaces the serialized shared-memory
	// transaction counts with the conflict-free ideal (one per active
	// half-warp) — the effect of a padding remedy like paper Fig. 8.
	ConflictFreeShared bool
	// NoDivergence packs warp instructions issued on divergent paths
	// into full-warp issues: each stage's per-class counts shrink by
	// the diverged issues minus the DivActiveLanes/warpSize full
	// warps they would occupy when restructured.
	NoDivergence bool
	// ForceOverlap treats barrier-delimited stages as overlapped even
	// with a single resident block per SM — the upside of any change
	// that lets stages of different blocks interleave.
	ForceOverlap bool
	// ResidentBlocks, when > 0, forces the occupancy computation to
	// assume that many resident blocks per SM (capped by the device's
	// thread, warp and block ceilings and by the grid) — modeling a
	// kernel whose per-block resource demand was trimmed until the
	// target occupancy fit.
	ResidentBlocks int
}

// Zero reports whether no override is set (the factual model).
func (ov Overrides) Zero() bool { return ov == Overrides{} }

// Analyze runs the model for one launch whose dynamic statistics
// have been collected by barra.Run.
func Analyze(cal *timing.Calibration, l barra.Launch, stats *barra.Stats) (*Estimate, error) {
	return AnalyzeWith(cal, l, stats, Overrides{})
}

// AnalyzeWith is Analyze under counterfactual overrides: the same
// calibrated model applied to a transformed view of the statistics.
// With the zero Overrides it is exactly Analyze.
func AnalyzeWith(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, ov Overrides) (*Estimate, error) {
	if cal == nil || stats == nil {
		return nil, fmt.Errorf("model: nil calibration or stats")
	}
	cfg := cal.Config()
	if err := l.Validate(cfg); err != nil {
		return nil, err
	}
	occ, err := occupancy.Compute(cfg, occupancy.Usage{
		ThreadsPerBlock:   l.Block,
		RegsPerThread:     l.Prog.RegsPerThread,
		SharedMemPerBlock: l.Prog.SharedMemBytes,
	})
	if err != nil {
		return nil, err
	}

	// Fraction of the chip with work: chip-level curves assume all
	// SMs busy; a grid smaller than the machine scales down.
	busySMs := cfg.NumSMs
	if l.Grid < busySMs {
		busySMs = l.Grid
	}
	scale := float64(busySMs) / float64(cfg.NumSMs)

	// A grid smaller than blocks-per-SM × SMs cannot reach the
	// occupancy ceiling: derate the resident blocks to what the
	// launch actually supplies.
	gridBlocks := (l.Grid + busySMs - 1) / busySMs
	if gridBlocks < occ.Blocks {
		occ.Blocks = gridBlocks
		occ.ActiveWarps = gridBlocks * occ.WarpsPerBlock
		occ.Limiter = "grid size"
	}

	if ov.ResidentBlocks > 0 {
		// Counterfactual occupancy: assume the kernel's per-block
		// resource demand were trimmed until b blocks fit, bounded by
		// the ceilings no source change can lift — threads, warps,
		// the architectural block limit, and the grid itself.
		b := ov.ResidentBlocks
		if m := cfg.MaxBlocksPerSM; b > m {
			b = m
		}
		if occ.WarpsPerBlock > 0 {
			if m := cfg.MaxWarpsPerSM / occ.WarpsPerBlock; b > m {
				b = m
			}
		}
		if m := cfg.MaxThreadsPerSM / l.Block; b > m {
			b = m
		}
		if b > gridBlocks {
			b = gridBlocks
		}
		if b < 1 {
			b = 1
		}
		occ.Blocks = b
		occ.ActiveWarps = b * occ.WarpsPerBlock
		occ.Limiter = "counterfactual override"
	}

	e := &Estimate{
		WarpsPerSM:           occ.ActiveWarps,
		Occupancy:            occ,
		Density:              stats.InstructionDensity(),
		CoalescingEfficiency: stats.CoalescingEfficiency(),
		BankConflictFactor:   stats.BankConflictFactor(),
		Serialized:           occ.Blocks == 1 && !ov.ForceOverlap,
	}

	// Global memory: one synthetic-benchmark bandwidth for the whole
	// kernel, configured like the program (paper §4.3).
	threads := l.Grid * l.Block
	accesses := stats.Total.GlobalUsefulBytes / 4
	e.TransPerThread = int(accesses) / threads
	if e.TransPerThread < 1 && accesses > 0 {
		e.TransPerThread = 1
	}
	gbw := 0.0
	if stats.Total.Global.Bytes > 0 {
		gbw, err = cal.GlobalBandwidth(l.Grid, l.Block, e.TransPerThread)
		if err != nil {
			return nil, err
		}
	}
	e.GlobalBandwidthUsed = gbw

	for i := range stats.Stages {
		st := &stats.Stages[i]
		warps := stageWarps(st, stats, l, occ, cal.MaxWarps())
		byClass, sharedTx, globalBytes := effectiveStage(st, ov)
		var times Times
		for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
			if byClass[cls] == 0 {
				continue
			}
			tp := cal.InstrThroughput(cls, warps) * scale
			times[CompInstruction] += float64(byClass[cls]) / tp
		}
		if sharedTx > 0 {
			times[CompShared] = float64(sharedTx) / (cal.SharedTxRate(warps) * scale)
		}
		if globalBytes > 0 && gbw > 0 {
			times[CompGlobal] = float64(globalBytes) / gbw
		}
		e.Stages = append(e.Stages, StageEstimate{
			Index:      i,
			Times:      times,
			Bottleneck: times.Bottleneck(),
			Warps:      warps,
		})
		e.Component.Add(times)
	}

	e.Bottleneck = e.Component.Bottleneck()
	e.NextBottleneck = e.Component.Second()
	e.InstrThroughputAtWarps = cal.InstrThroughput(isa.ClassII, occ.ActiveWarps) * scale
	e.SharedBandwidthAtWarps = cal.SharedBandwidth(occ.ActiveWarps) * scale

	if e.Serialized {
		// One block per SM: stages run back to back, each limited by
		// its own bottleneck.
		for _, st := range e.Stages {
			e.TotalSeconds += st.Times.Max()
		}
	} else {
		e.TotalSeconds = e.Component.Max()
	}
	for c := Component(0); int(c) < NumComponents; c++ {
		e.UpperBoundSeconds += e.Component[c]
	}
	if e.UpperBoundSeconds < e.TotalSeconds {
		e.UpperBoundSeconds = e.TotalSeconds
	}
	return e, nil
}

// effectiveStage returns one stage's counters after applying the
// counterfactual overrides: the per-class instruction counts, the
// serialized shared transaction count, and the charged global bytes.
func effectiveStage(st *barra.StageStats, ov Overrides) ([isa.NumClasses]int64, int64, int64) {
	byClass := st.ByClass
	if ov.NoDivergence {
		if div := st.DivergentInstrs(); div > 0 {
			// The diverged issues' active lanes pack into full warps;
			// distribute the surviving issues across classes in
			// proportion to each class's diverged count.
			packed := (st.DivActiveLanes + gpu.WarpSize - 1) / gpu.WarpSize
			if packed > div {
				packed = div
			}
			f := float64(packed) / float64(div)
			for c := range byClass {
				keep := int64(float64(st.DivByClass[c])*f + 0.5)
				byClass[c] += keep - st.DivByClass[c]
				if byClass[c] < 0 {
					byClass[c] = 0
				}
			}
		}
	}
	sharedTx := st.SharedTx
	if ov.ConflictFreeShared {
		sharedTx = st.SharedTxNoConflict
	}
	globalBytes := st.Global.Bytes
	if ov.PerfectCoalescing {
		globalBytes = st.GlobalUsefulBytes
	}
	return byClass, sharedTx, globalBytes
}

// OverlapSensitive reports whether the prediction interval
// [TotalSeconds, UpperBoundSeconds] is wide (runner-up component
// within the given fraction of the bottleneck): such kernels are the
// "non-perfect overlap" cases of the paper's future-work item 4,
// where the single-bottleneck assumption is least safe.
func (e *Estimate) OverlapSensitive(frac float64) bool {
	b := e.Component[e.Bottleneck]
	if b == 0 {
		return false
	}
	return e.Component[e.NextBottleneck] >= frac*b
}

// stageWarps decides the warp-level parallelism for one stage: the
// resident warps from occupancy, derated by the fraction of the
// block's warps that did real work in the stage (cyclic reduction's
// later steps idle most warps — paper Fig. 6's 8/8/4/2/1 row).
func stageWarps(st *barra.StageStats, stats *barra.Stats, l barra.Launch, occ occupancy.Result, maxWarps int) int {
	warps := occ.ActiveWarps
	if st.WarpsWithWork > 0 && stats.Grid > 0 {
		perBlock := float64(st.WarpsWithWork) / float64(stats.Grid)
		w := int(perBlock*float64(occ.Blocks) + 0.5)
		if w < warps {
			warps = w
		}
	}
	if warps < 1 {
		warps = 1
	}
	if warps > maxWarps {
		warps = maxWarps
	}
	return warps
}

// Causes lists the paper's §3 likely causes for the identified
// bottleneck, filtered by the diagnostics.
func (e *Estimate) Causes() []string {
	var out []string
	switch e.Bottleneck {
	case CompInstruction:
		if e.Density < 0.5 {
			out = append(out, fmt.Sprintf("low computational density (%.0f%% of instructions are MADs)", e.Density*100))
		}
		if e.WarpsPerSM < 6 {
			out = append(out, fmt.Sprintf("insufficient parallel warps (%d per SM)", e.WarpsPerSM))
		}
	case CompShared:
		if e.BankConflictFactor > 1.05 {
			out = append(out, fmt.Sprintf("bank conflicts inflate shared-memory transactions %.2fx", e.BankConflictFactor))
		}
		if e.WarpsPerSM < 10 {
			out = append(out, fmt.Sprintf("insufficient parallel warps (%d per SM) for the shared-memory pipeline", e.WarpsPerSM))
		}
		if e.Density < 0.3 {
			out = append(out, "shared-memory traffic from bookkeeping instructions")
		}
	case CompGlobal:
		if e.CoalescingEfficiency < 0.9 {
			out = append(out, fmt.Sprintf("uncoalesced accesses / large transaction granularity (%.0f%% of fetched bytes useful)", e.CoalescingEfficiency*100))
		}
		if e.WarpsPerSM < 10 {
			out = append(out, fmt.Sprintf("insufficient parallelism (%d warps per SM) to cover memory latency", e.WarpsPerSM))
		}
	}
	if len(out) == 0 {
		out = append(out, "component near its calibrated peak")
	}
	return out
}

// Report renders a human-readable analysis in the spirit of the
// workflow outputs listed in paper Fig. 1.
func (e *Estimate) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicted time: %.6g ms (serial upper bound %.6g ms)\n",
		e.TotalSeconds*1e3, e.UpperBoundSeconds*1e3)
	fmt.Fprintf(&b, "component times: instruction %.6g ms, shared %.6g ms, global %.6g ms\n",
		e.Component[CompInstruction]*1e3, e.Component[CompShared]*1e3, e.Component[CompGlobal]*1e3)
	fmt.Fprintf(&b, "bottleneck: %s (next: %s)\n", e.Bottleneck, e.NextBottleneck)
	fmt.Fprintf(&b, "occupancy: %s\n", e.Occupancy)
	fmt.Fprintf(&b, "computational density: %.2f\n", e.Density)
	fmt.Fprintf(&b, "coalescing efficiency: %.2f\n", e.CoalescingEfficiency)
	fmt.Fprintf(&b, "bank-conflict factor: %.2f\n", e.BankConflictFactor)
	for _, c := range e.Causes() {
		fmt.Fprintf(&b, "cause: %s\n", c)
	}
	if e.Serialized {
		fmt.Fprintf(&b, "stages (serialized; one block per SM):\n")
	} else {
		fmt.Fprintf(&b, "stages (overlapped across blocks):\n")
	}
	for _, st := range e.Stages {
		fmt.Fprintf(&b, "  stage %d: instr %.6g ms, shared %.6g ms, global %.6g ms — %s (%d warps)\n",
			st.Index, st.Times[CompInstruction]*1e3, st.Times[CompShared]*1e3,
			st.Times[CompGlobal]*1e3, st.Bottleneck, st.Warps)
	}
	return b.String()
}

// Predict is a convenience wrapper: run barra, then Analyze — the
// full Fig. 1 workflow in one call. The memory is consumed by the
// functional run. opt.Parallelism shards the functional run across
// host cores (the statistics are bit-identical at any setting); the
// remaining options thread through to barra.Run unchanged.
func Predict(cal *timing.Calibration, l barra.Launch, mem *barra.Memory, opt *barra.Options) (*Estimate, *barra.Stats, error) {
	return PredictContext(context.Background(), cal, l, mem, opt)
}

// PredictContext is Predict with cancellation: the functional run
// aborts promptly (between blocks / budget refills) once ctx is done.
func PredictContext(ctx context.Context, cal *timing.Calibration, l barra.Launch, mem *barra.Memory, opt *barra.Options) (*Estimate, *barra.Stats, error) {
	return PredictWith(ctx, cal, l, mem, opt, Overrides{})
}

// PredictWith runs the functional simulation and evaluates the model
// under counterfactual overrides — the resimulate-then-transform
// entry point for callers without a prior run's statistics. Callers
// that already hold a run's Stats should use AnalyzeWith instead:
// every override is a pure stat transform, so one simulation can
// answer any number of what-if questions.
func PredictWith(ctx context.Context, cal *timing.Calibration, l barra.Launch, mem *barra.Memory, opt *barra.Options, ov Overrides) (*Estimate, *barra.Stats, error) {
	stats, err := barra.RunContext(ctx, cal.Config(), l, mem, opt)
	if err != nil {
		return nil, nil, err
	}
	est, err := AnalyzeWith(cal, l, stats, ov)
	if err != nil {
		return nil, nil, err
	}
	return est, stats, nil
}

// CompareError returns |predicted-measured|/measured for the
// bottleneck-time prediction against a measured time in seconds —
// the paper's 5-15% accuracy metric.
func (e *Estimate) CompareError(measuredSeconds float64) float64 {
	if measuredSeconds == 0 {
		return 0
	}
	d := e.TotalSeconds - measuredSeconds
	if d < 0 {
		d = -d
	}
	return d / measuredSeconds
}

// GFLOPS converts the prediction into an achieved-GFLOPS figure for
// a kernel performing flops floating-point operations.
func (e *Estimate) GFLOPS(flops int64) float64 {
	if e.TotalSeconds == 0 {
		return 0
	}
	return float64(flops) / e.TotalSeconds / 1e9
}

// PeakFraction reports predicted ClassII instruction throughput as a
// fraction of the configured peak — the paper's "sustained
// instruction throughput is 81% of peak" style diagnostic.
func PeakFraction(cal *timing.Calibration, warps int) float64 {
	cfg := cal.Config()
	return cal.InstrThroughput(isa.ClassII, warps) / cfg.PeakInstrThroughput(cfg.SPsPerSM)
}
