// Package prof wires the standard runtime/pprof file profiles into
// the CLI commands, so hot-path regressions in the simulators are
// diagnosable with -cpuprofile/-memprofile instead of code edits.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpuPath is non-empty and returns a
// stop function that finalizes it and, when memPath is non-empty,
// writes a post-GC heap profile. Call stop once, after the workload.
// Either path may be empty; Start("", "") returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
