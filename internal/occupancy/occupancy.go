// Package occupancy computes how many blocks and warps fit on one
// streaming multiprocessor given a kernel's resource demands.
//
// This reproduces the hardware-resource-allocation analysis of paper
// Table 2: the number of resident blocks per SM is the minimum of
// the ceilings imposed by the register file, shared memory, the
// thread count, and the architectural maximum of resident blocks,
// further capped by the resident-warp ceiling. Insufficient resident
// warps is the root cause of the under-utilized pipeline and
// shared-memory throughput the paper's model quantifies.
package occupancy

import (
	"fmt"

	"gpuperf/internal/gpu"
)

// Usage is a kernel launch's per-block resource demand.
type Usage struct {
	// ThreadsPerBlock is the block size.
	ThreadsPerBlock int
	// RegsPerThread is the register demand of one thread.
	RegsPerThread int
	// SharedMemPerBlock is the static + dynamic shared memory of
	// one block, in bytes.
	SharedMemPerBlock int
}

// Result is the occupancy verdict for one SM.
type Result struct {
	// BlocksByRegs, BlocksBySmem, BlocksByThreads are the individual
	// ceilings (Table 2's "# blocks (register)" and "# blocks (smem)"
	// columns, plus the thread ceiling).
	BlocksByRegs    int
	BlocksBySmem    int
	BlocksByThreads int
	// BlocksLimit is the architectural maximum of resident blocks.
	BlocksLimit int
	// Blocks is the resulting resident block count:
	// min(regs, smem, threads, limit), further reduced if the warp
	// ceiling binds.
	Blocks int
	// WarpsPerBlock is ceil(threads/warpSize).
	WarpsPerBlock int
	// ActiveWarps is Blocks · WarpsPerBlock, the model's
	// "number of warps per SM" input.
	ActiveWarps int
	// Limiter names the binding constraint.
	Limiter string
}

// Compute returns the occupancy of a kernel on the given GPU.
func Compute(c gpu.Config, u Usage) (Result, error) {
	if u.ThreadsPerBlock <= 0 {
		return Result{}, fmt.Errorf("occupancy: non-positive block size %d", u.ThreadsPerBlock)
	}
	if u.ThreadsPerBlock > c.MaxThreadsPerBlock {
		return Result{}, fmt.Errorf("occupancy: block size %d exceeds device limit %d",
			u.ThreadsPerBlock, c.MaxThreadsPerBlock)
	}
	if u.RegsPerThread < 0 || u.SharedMemPerBlock < 0 {
		return Result{}, fmt.Errorf("occupancy: negative resource usage")
	}
	if u.SharedMemPerBlock > c.SharedMemPerSM {
		return Result{}, fmt.Errorf("occupancy: block needs %d B shared memory, SM has %d",
			u.SharedMemPerBlock, c.SharedMemPerSM)
	}
	regsPerBlock := u.RegsPerThread * u.ThreadsPerBlock
	if regsPerBlock > c.RegistersPerSM {
		return Result{}, fmt.Errorf("occupancy: block needs %d registers, SM has %d",
			regsPerBlock, c.RegistersPerSM)
	}

	r := Result{BlocksLimit: c.MaxBlocksPerSM}
	r.WarpsPerBlock = (u.ThreadsPerBlock + gpu.WarpSize - 1) / gpu.WarpSize

	r.BlocksByRegs = c.RegistersPerSM // unlimited when regs == 0
	if regsPerBlock > 0 {
		r.BlocksByRegs = c.RegistersPerSM / regsPerBlock
	}
	r.BlocksBySmem = c.SharedMemPerSM
	if u.SharedMemPerBlock > 0 {
		r.BlocksBySmem = c.SharedMemPerSM / u.SharedMemPerBlock
	}
	r.BlocksByThreads = c.MaxThreadsPerSM / u.ThreadsPerBlock

	r.Blocks, r.Limiter = minWith(
		bound{r.BlocksByRegs, "registers"},
		bound{r.BlocksBySmem, "shared memory"},
		bound{r.BlocksByThreads, "threads"},
		bound{c.MaxBlocksPerSM, "max blocks"},
	)
	// The warp ceiling can further reduce resident blocks.
	if r.Blocks*r.WarpsPerBlock > c.MaxWarpsPerSM {
		r.Blocks = c.MaxWarpsPerSM / r.WarpsPerBlock
		r.Limiter = "max warps"
	}
	r.ActiveWarps = r.Blocks * r.WarpsPerBlock
	return r, nil
}

type bound struct {
	n    int
	name string
}

func minWith(bs ...bound) (int, string) {
	best := bs[0]
	for _, b := range bs[1:] {
		if b.n < best.n {
			best = b
		}
	}
	return best.n, best.name
}

// String renders a Table 2-style row.
func (r Result) String() string {
	return fmt.Sprintf("blocks=min(regs:%d, smem:%d, threads:%d, limit:%d)=%d (%s), warps=%d",
		r.BlocksByRegs, r.BlocksBySmem, r.BlocksByThreads, r.BlocksLimit,
		r.Blocks, r.Limiter, r.ActiveWarps)
}
