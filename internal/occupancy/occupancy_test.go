package occupancy

import (
	"testing"
	"testing/quick"

	"gpuperf/internal/gpu"
)

// TestTable2 reproduces paper Table 2 exactly: register, shared
// memory and block ceilings for the three matrix-multiply tile
// sizes, all with 64-thread (2-warp) blocks.
func TestTable2(t *testing.T) {
	c := gpu.GTX285()
	cases := []struct {
		tile        string
		regs, smem  int
		wantByRegs  int
		wantBySmem  int
		wantBlocks  int
		wantWarps   int
		wantLimiter string
	}{
		{"8x8", 16, 348, 16, 47, 8, 16, "max blocks"},
		{"16x16", 30, 1088, 8, 15, 8, 16, "registers"},
		{"32x32", 58, 4284, 4, 3, 3, 6, "shared memory"},
	}
	for _, cse := range cases {
		r, err := Compute(c, Usage{ThreadsPerBlock: 64, RegsPerThread: cse.regs, SharedMemPerBlock: cse.smem})
		if err != nil {
			t.Fatalf("%s: %v", cse.tile, err)
		}
		if r.BlocksByRegs != cse.wantByRegs {
			t.Errorf("%s: blocks by regs = %d, want %d", cse.tile, r.BlocksByRegs, cse.wantByRegs)
		}
		if r.BlocksBySmem != cse.wantBySmem {
			t.Errorf("%s: blocks by smem = %d, want %d", cse.tile, r.BlocksBySmem, cse.wantBySmem)
		}
		if r.Blocks != cse.wantBlocks {
			t.Errorf("%s: blocks = %d, want %d", cse.tile, r.Blocks, cse.wantBlocks)
		}
		if r.ActiveWarps != cse.wantWarps {
			t.Errorf("%s: warps = %d, want %d", cse.tile, r.ActiveWarps, cse.wantWarps)
		}
		if r.Limiter != cse.wantLimiter {
			t.Errorf("%s: limiter = %q, want %q", cse.tile, r.Limiter, cse.wantLimiter)
		}
	}
}

// Note: the paper's Table 2 lists "3" for the 32×32 register ceiling
// because it divides the 16,384-register file by 58 regs × 64
// threads = 3712 → 4 blocks by pure division; the paper's count of 3
// already folds in allocation granularity. Our model uses the exact
// division for the per-resource columns (4) while the binding
// constraint — shared memory, 16384/4284 = 3 — still yields the
// paper's 3 resident blocks and 6 warps, which is what the
// performance analysis depends on.

func TestWarpCeilingBinds(t *testing.T) {
	c := gpu.GTX285()
	// 512-thread blocks = 16 warps each: two blocks would be 32
	// warps (allowed), three would exceed; threads ceiling gives 2
	// anyway. Shrink MaxWarps to force the warp limiter.
	c.MaxWarpsPerSM = 16
	r, err := Compute(c, Usage{ThreadsPerBlock: 512, RegsPerThread: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 1 || r.Limiter != "max warps" || r.ActiveWarps != 16 {
		t.Errorf("got %+v", r)
	}
}

func TestMaxBlocksVariant(t *testing.T) {
	// Paper §5.1's suggestion: raising the block ceiling from 8 to
	// 16 doubles resident warps for the 8×8 tile.
	r8, err := Compute(gpu.GTX285(), Usage{ThreadsPerBlock: 64, RegsPerThread: 16, SharedMemPerBlock: 348})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Compute(gpu.GTX285(gpu.WithMaxBlocks(16)), Usage{ThreadsPerBlock: 64, RegsPerThread: 16, SharedMemPerBlock: 348})
	if err != nil {
		t.Fatal(err)
	}
	if r8.ActiveWarps != 16 || r16.ActiveWarps != 32 {
		t.Errorf("8-block: %d warps, 16-block: %d warps", r8.ActiveWarps, r16.ActiveWarps)
	}
}

func TestBiggerSMVariant(t *testing.T) {
	// Paper §5.1: with more registers and shared memory, the 32×32
	// tile regains occupancy.
	big := gpu.GTX285(gpu.WithRegisters(3*16384), gpu.WithSharedMem(3*16*1024))
	r, err := Compute(big, Usage{ThreadsPerBlock: 64, RegsPerThread: 58, SharedMemPerBlock: 4284})
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks <= 3 {
		t.Errorf("bigger SM still stuck at %d blocks", r.Blocks)
	}
}

func TestErrors(t *testing.T) {
	c := gpu.GTX285()
	cases := []Usage{
		{ThreadsPerBlock: 0},
		{ThreadsPerBlock: -3},
		{ThreadsPerBlock: 1024},                             // above MaxThreadsPerBlock
		{ThreadsPerBlock: 64, RegsPerThread: -1},            // negative
		{ThreadsPerBlock: 64, SharedMemPerBlock: 17 * 1024}, // block > SM smem
		{ThreadsPerBlock: 512, RegsPerThread: 100},          // block > SM regs
	}
	for i, u := range cases {
		if _, err := Compute(c, u); err == nil {
			t.Errorf("case %d accepted: %+v", i, u)
		}
	}
}

func TestPartialWarpRoundsUp(t *testing.T) {
	r, err := Compute(gpu.GTX285(), Usage{ThreadsPerBlock: 48, RegsPerThread: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.WarpsPerBlock != 2 {
		t.Errorf("48 threads = %d warps, want 2", r.WarpsPerBlock)
	}
}

// Property: occupancy never exceeds any architectural ceiling and
// is monotone in resource demand.
func TestOccupancyInvariants(t *testing.T) {
	c := gpu.GTX285()
	f := func(threads8, regs6, smem12 uint16) bool {
		u := Usage{
			ThreadsPerBlock:   1 + int(threads8)%c.MaxThreadsPerBlock,
			RegsPerThread:     int(regs6) % 64,
			SharedMemPerBlock: int(smem12) % c.SharedMemPerSM,
		}
		if u.RegsPerThread*u.ThreadsPerBlock > c.RegistersPerSM {
			return true // Compute rejects; not this property's concern
		}
		r, err := Compute(c, u)
		if err != nil {
			return false
		}
		if r.Blocks < 1 && u.SharedMemPerBlock <= c.SharedMemPerSM {
			// At least one block must fit when each resource fits.
			if r.BlocksByRegs >= 1 && r.BlocksBySmem >= 1 && r.BlocksByThreads >= 1 {
				return false
			}
		}
		if r.Blocks > c.MaxBlocksPerSM || r.ActiveWarps > c.MaxWarpsPerSM {
			return false
		}
		if r.Blocks*u.ThreadsPerBlock > c.MaxThreadsPerSM {
			return false
		}
		if u.RegsPerThread > 0 && r.Blocks*u.RegsPerThread*u.ThreadsPerBlock > c.RegistersPerSM {
			return false
		}
		if u.SharedMemPerBlock > 0 && r.Blocks*u.SharedMemPerBlock > c.SharedMemPerSM {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
