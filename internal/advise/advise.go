// Package advise quantifies and ranks the optimization headroom of
// one kernel run — the payoff of the paper's §4 analysis. Where the
// model (internal/model) names the bottleneck and its likely causes,
// the advisor answers the next question: how much would each remedy
// actually buy? It re-evaluates the calibrated model under a
// portfolio of counterfactual scenarios — perfect coalescing,
// conflict-free shared memory, no branch divergence, ideal stage
// overlap, and an occupancy mini-sweep — and reports, per scenario,
// the predicted time, the speedup over the factual baseline, and a
// §4-style explanation grounded in the run's own statistics.
//
// Every cataloged scenario is a pure stat/occupancy transform
// (model.AnalyzeWith) over the statistics of a single functional
// run: one simulation answers the whole portfolio. Changes the
// transforms cannot express — a different block size or tile, an
// algorithmic rewrite — require resimulation (model.PredictWith on a
// rebuilt workload); the registry's kernel-variant families serve
// those, as examples/advisor shows. Scenario evaluations fan out
// across goroutines; results are deterministic for any fan-out width
// because each scenario's arithmetic depends only on the shared
// stats and calibration.
package advise

import (
	"fmt"
	"sort"
	"sync"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/model"
	"gpuperf/internal/timing"
)

// Scenario keys: stable identifiers for the counterfactuals, used on
// the wire and matched by the registry's variant metadata (a kernel
// variant that implements a scenario names it, so clients can pair
// predicted headroom with a measurable sibling kernel).
const (
	PerfectCoalescing  = "perfect-coalescing"
	ConflictFreeShared = "conflict-free-shared"
	NoDivergence       = "no-divergence"
	IdealOverlap       = "ideal-overlap"
	RaiseOccupancy     = "raise-occupancy"
)

// ScenarioResult is one counterfactual's verdict.
type ScenarioResult struct {
	// Scenario is the stable key; Title a short human heading.
	Scenario string
	Title    string
	// PredictedSeconds is the model's time under the counterfactual;
	// Speedup the baseline time divided by it (1.0 = no headroom).
	PredictedSeconds float64
	Speedup          float64
	// Explanation grounds the verdict in the run's statistics, in the
	// style of the paper's §4 walk-throughs.
	Explanation string
	// TargetBlocks is the best resident-block count found by the
	// occupancy mini-sweep (RaiseOccupancy only, 0 otherwise).
	TargetBlocks int
	// Estimate is the full counterfactual estimate, for callers that
	// want the per-component breakdown.
	Estimate *model.Estimate
}

// Report is the advisor's ranked output for one run.
type Report struct {
	// Baseline is the factual estimate the scenarios are measured
	// against.
	Baseline *model.Estimate
	// Scenarios holds every cataloged counterfactual, ranked by
	// speedup (descending; ties break on the scenario key so the
	// ranking is deterministic).
	Scenarios []ScenarioResult
}

// Top returns the highest-ranked scenario with real headroom, or nil
// when the kernel is already within tol of every counterfactual.
func (r *Report) Top(tol float64) *ScenarioResult {
	if len(r.Scenarios) == 0 {
		return nil
	}
	if r.Scenarios[0].Speedup < 1+tol {
		return nil
	}
	return &r.Scenarios[0]
}

// Options tunes a Run.
type Options struct {
	// Parallelism caps the scenario fan-out width (0 = one goroutine
	// per scenario). The ranking is identical at any setting.
	Parallelism int
}

// Run evaluates the full scenario portfolio against one run's
// statistics and returns the ranked report. The launch and stats
// must come from the same functional run the caller predicted with.
func Run(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, opt *Options) (*Report, error) {
	if opt == nil {
		opt = &Options{}
	}
	base, err := model.Analyze(cal, l, stats)
	if err != nil {
		return nil, err
	}

	evals := []func() (ScenarioResult, error){
		func() (ScenarioResult, error) { return evalCoalescing(cal, l, stats, base) },
		func() (ScenarioResult, error) { return evalConflictFree(cal, l, stats, base) },
		func() (ScenarioResult, error) { return evalNoDivergence(cal, l, stats, base) },
		func() (ScenarioResult, error) { return evalIdealOverlap(cal, l, stats, base) },
		func() (ScenarioResult, error) { return evalOccupancySweep(cal, l, stats, base) },
	}

	results := make([]ScenarioResult, len(evals))
	errs := make([]error, len(evals))
	width := opt.Parallelism
	if width <= 0 || width > len(evals) {
		width = len(evals)
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i, eval := range evals {
		wg.Add(1)
		go func(i int, eval func() (ScenarioResult, error)) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = eval()
		}(i, eval)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Speedup != results[j].Speedup {
			return results[i].Speedup > results[j].Speedup
		}
		return results[i].Scenario < results[j].Scenario
	})
	return &Report{Baseline: base, Scenarios: results}, nil
}

// speedup guards against a degenerate counterfactual time.
func speedup(base, what float64) float64 {
	if what <= 0 {
		return 1
	}
	return base / what
}

func evalCoalescing(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, base *model.Estimate) (ScenarioResult, error) {
	est, err := model.AnalyzeWith(cal, l, stats, model.Overrides{PerfectCoalescing: true})
	if err != nil {
		return ScenarioResult{}, err
	}
	r := ScenarioResult{
		Scenario:         PerfectCoalescing,
		Title:            "perfect global-memory coalescing",
		PredictedSeconds: est.TotalSeconds,
		Speedup:          speedup(base.TotalSeconds, est.TotalSeconds),
		Estimate:         est,
	}
	eff := stats.CoalescingEfficiency()
	tpr := stats.TxPerRequest()
	switch {
	case eff >= 0.999:
		r.Explanation = "global accesses already coalesce perfectly: every fetched byte is useful"
	case r.Speedup < 1.005:
		r.Explanation = fmt.Sprintf(
			"only %.0f%% of fetched global bytes are useful (%.2f transactions per half-warp request), but global memory is not the limiter — coalescing alone moves the predicted time by under 1%%",
			eff*100, tpr)
	default:
		r.Explanation = fmt.Sprintf(
			"only %.0f%% of fetched global bytes are useful (%.2f transactions per half-warp request); restructuring the access pattern so each half-warp fills whole segments cuts global-memory time %.2fx",
			eff*100, tpr, safeRatio(base.Component[model.CompGlobal], est.Component[model.CompGlobal]))
	}
	return r, nil
}

func evalConflictFree(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, base *model.Estimate) (ScenarioResult, error) {
	est, err := model.AnalyzeWith(cal, l, stats, model.Overrides{ConflictFreeShared: true})
	if err != nil {
		return ScenarioResult{}, err
	}
	r := ScenarioResult{
		Scenario:         ConflictFreeShared,
		Title:            "conflict-free shared memory",
		PredictedSeconds: est.TotalSeconds,
		Speedup:          speedup(base.TotalSeconds, est.TotalSeconds),
		Estimate:         est,
	}
	factor := stats.BankConflictFactor()
	switch {
	case factor <= 1.001:
		r.Explanation = "shared-memory accesses are already conflict-free"
	case r.Speedup < 1.005:
		r.Explanation = fmt.Sprintf(
			"bank conflicts inflate shared transactions %.2fx (worst observed degree %d-way), but shared memory is not the limiter — padding alone moves the predicted time by under 1%%",
			factor, worstConflictDegree(stats))
	default:
		r.Explanation = fmt.Sprintf(
			"bank conflicts inflate shared transactions %.2fx (worst observed degree %d-way); padding the shared layout to spread the stride across banks cuts shared-memory time %.2fx",
			factor, worstConflictDegree(stats),
			safeRatio(base.Component[model.CompShared], est.Component[model.CompShared]))
	}
	return r, nil
}

func evalNoDivergence(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, base *model.Estimate) (ScenarioResult, error) {
	est, err := model.AnalyzeWith(cal, l, stats, model.Overrides{NoDivergence: true})
	if err != nil {
		return ScenarioResult{}, err
	}
	r := ScenarioResult{
		Scenario:         NoDivergence,
		Title:            "no branch divergence",
		PredictedSeconds: est.TotalSeconds,
		Speedup:          speedup(base.TotalSeconds, est.TotalSeconds),
		Estimate:         est,
	}
	over := stats.DivergenceOverhead()
	switch {
	case over <= 0.001:
		r.Explanation = "warps issue no instructions on divergent paths"
	case r.Speedup < 1.005:
		r.Explanation = fmt.Sprintf(
			"%.0f%% of warp instructions issue on divergent paths, but the instruction pipeline is not the limiter — restructuring the branches moves the predicted time by under 1%%",
			over*100)
	default:
		r.Explanation = fmt.Sprintf(
			"%.0f%% of warp instructions issue on divergent paths with partially idle lanes; restructuring so whole warps take one side cuts instruction time %.2fx",
			over*100, safeRatio(base.Component[model.CompInstruction], est.Component[model.CompInstruction]))
	}
	return r, nil
}

func evalIdealOverlap(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, base *model.Estimate) (ScenarioResult, error) {
	est, err := model.AnalyzeWith(cal, l, stats, model.Overrides{ForceOverlap: true})
	if err != nil {
		return ScenarioResult{}, err
	}
	r := ScenarioResult{
		Scenario:         IdealOverlap,
		Title:            "ideal cross-stage overlap",
		PredictedSeconds: est.TotalSeconds,
		Speedup:          speedup(base.TotalSeconds, est.TotalSeconds),
		Estimate:         est,
	}
	switch {
	case !base.Serialized:
		r.Explanation = "multiple resident blocks already overlap the barrier-delimited stages"
	case r.Speedup < 1.005:
		r.Explanation = fmt.Sprintf(
			"one resident block per SM serializes the %d barrier-delimited stages, but their bottlenecks coincide — overlap alone moves the predicted time by under 1%%",
			len(base.Stages))
	default:
		r.Explanation = fmt.Sprintf(
			"one resident block per SM serializes %d barrier-delimited stages with differing bottlenecks; fitting a second block (or fusing stages) lets them overlap, hiding %.2fx of the staged time",
			len(base.Stages), r.Speedup)
	}
	return r, nil
}

// evalOccupancySweep is the occupancy mini-sweep: re-predict at
// every resident-block count a source-level tune could reach and
// report the best. The candidates run serially inside this
// scenario's one fan-out slot — the per-candidate transform is
// sub-millisecond and the candidate count is bounded by the
// architectural block limit, so a nested fan-out would only breach
// the caller's Parallelism cap for no wall-clock gain. Tunable
// demand is per-thread registers (a compiler artifact); the kernel's
// shared-memory footprint is treated as fixed — it is part of the
// algorithm (paper Table 2), and shrinking it means a different
// kernel, which is the registry variant families' job, not a stat
// transform's.
func evalOccupancySweep(cal *timing.Calibration, l barra.Launch, stats *barra.Stats, base *model.Estimate) (ScenarioResult, error) {
	cfg := cal.Config()
	occ := base.Occupancy
	ceiling := cfg.MaxBlocksPerSM
	if occ.WarpsPerBlock > 0 {
		if m := cfg.MaxWarpsPerSM / occ.WarpsPerBlock; m < ceiling {
			ceiling = m
		}
	}
	if l.Block > 0 {
		if m := cfg.MaxThreadsPerSM / l.Block; m < ceiling {
			ceiling = m
		}
	}
	if occ.BlocksBySmem > 0 && occ.BlocksBySmem < ceiling {
		ceiling = occ.BlocksBySmem
	}
	r := ScenarioResult{
		Scenario:         RaiseOccupancy,
		Title:            "raise occupancy (resident-block sweep)",
		PredictedSeconds: base.TotalSeconds,
		Speedup:          1,
		TargetBlocks:     occ.Blocks,
		Estimate:         base,
	}
	if occ.Blocks >= ceiling {
		r.Explanation = fmt.Sprintf(
			"occupancy is already at its reachable ceiling (%d blocks, %d warps/SM, limited by %s; the shared-memory footprint is the algorithm's own, so only a restructured kernel variant could go higher)",
			occ.Blocks, occ.ActiveWarps, occ.Limiter)
		return r, nil
	}

	best, bestBlocks := base, occ.Blocks
	for b := occ.Blocks + 1; b <= ceiling; b++ {
		est, err := model.AnalyzeWith(cal, l, stats, model.Overrides{ResidentBlocks: b})
		if err != nil {
			return ScenarioResult{}, err
		}
		if est.TotalSeconds < best.TotalSeconds {
			best, bestBlocks = est, b
		}
	}
	r.PredictedSeconds = best.TotalSeconds
	r.Speedup = speedup(base.TotalSeconds, best.TotalSeconds)
	r.TargetBlocks = bestBlocks
	r.Estimate = best
	if r.Speedup < 1.005 {
		r.Explanation = fmt.Sprintf(
			"occupancy is limited by %s to %d blocks (%d warps/SM), but the bottleneck component is already near its calibrated peak — more resident blocks move the predicted time by under 1%%",
			occ.Limiter, occ.Blocks, occ.ActiveWarps)
	} else {
		r.Explanation = fmt.Sprintf(
			"occupancy is limited by %s to %d blocks (%d warps/SM); trimming per-thread register demand until %d blocks fit raises warp-level parallelism to %d and the throughput curves with it",
			occ.Limiter, occ.Blocks, occ.ActiveWarps, bestBlocks, best.Occupancy.ActiveWarps)
	}
	return r, nil
}

// worstConflictDegree returns the largest observed bank-conflict
// degree (1 when no shared accesses were recorded).
func worstConflictDegree(stats *barra.Stats) int {
	worst := 1
	for d := 1; d <= gpu.HalfWarp; d++ {
		if stats.Total.ConflictDeg[d] > 0 {
			worst = d
		}
	}
	return worst
}

// safeRatio returns a/b guarding against a zero counterfactual.
func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}
