package advise

import (
	"reflect"
	"sync"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/microbench"
	"gpuperf/internal/model"
	"gpuperf/internal/timing"
)

var (
	calMu   sync.Mutex
	calMemo *timing.Calibration
)

func cal(t *testing.T) *timing.Calibration {
	t.Helper()
	calMu.Lock()
	defer calMu.Unlock()
	if calMemo == nil {
		c, err := timing.Calibrate(gpu.GTX285())
		if err != nil {
			t.Fatal(err)
		}
		calMemo = c
	}
	return calMemo
}

func runReport(t *testing.T, l barra.Launch, memBytes int, opt *Options) *Report {
	t.Helper()
	c := cal(t)
	stats, err := barra.Run(c.Config(), l, barra.NewMemory(memBytes), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, l, stats, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// conflictedLaunch is a shared-memory-bound kernel with 8-way bank
// conflicts: its top advice must be the conflict-free counterfactual.
func conflictedLaunch(t *testing.T) (barra.Launch, int) {
	t.Helper()
	p, err := microbench.SharedCopy(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	return barra.Launch{Prog: p, Grid: 60, Block: 256}, 4096
}

// stridedLaunch loads global words at a two-word stride — a
// global-bound kernel whose top advice must be coalescing.
func stridedLaunch(t *testing.T) (barra.Launch, int) {
	t.Helper()
	b := kbuild.New("strided-global")
	tid, ntid, cta, flat, addr, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(flat, cta, ntid, tid)
	b.ShlImm(addr, flat, 3)
	for i := uint32(0); i < 16; i++ {
		b.GldOff(v, addr, i*4096)
	}
	b.Exit()
	return barra.Launch{Prog: b.MustProgram(), Grid: 60, Block: 128}, 1 << 20
}

// TestReportShape: every cataloged scenario appears exactly once,
// ranked by speedup, each with a predicted time and explanation.
func TestReportShape(t *testing.T) {
	l, mem := conflictedLaunch(t)
	rep := runReport(t, l, mem, nil)
	if rep.Baseline == nil || rep.Baseline.TotalSeconds <= 0 {
		t.Fatal("missing baseline estimate")
	}
	want := map[string]bool{
		PerfectCoalescing: false, ConflictFreeShared: false,
		NoDivergence: false, IdealOverlap: false, RaiseOccupancy: false,
	}
	if len(rep.Scenarios) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(rep.Scenarios), len(want))
	}
	for i, s := range rep.Scenarios {
		seen, ok := want[s.Scenario]
		if !ok || seen {
			t.Errorf("unexpected or duplicated scenario %q", s.Scenario)
		}
		want[s.Scenario] = true
		if s.PredictedSeconds <= 0 || s.Speedup < 0.99 || s.Explanation == "" || s.Title == "" {
			t.Errorf("scenario %q incomplete: %+v", s.Scenario, s)
		}
		if s.Estimate == nil {
			t.Errorf("scenario %q missing its estimate", s.Scenario)
		}
		if i > 0 && rep.Scenarios[i-1].Speedup < s.Speedup {
			t.Errorf("ranking violated at %d: %.3f before %.3f", i, rep.Scenarios[i-1].Speedup, s.Speedup)
		}
	}
}

// TestConflictedKernelTopAdvice: for an 8-way-conflicted
// shared-memory-bound kernel the advisor's top recommendation is the
// padding remedy, with a speedup near the conflict factor's effect.
func TestConflictedKernelTopAdvice(t *testing.T) {
	l, mem := conflictedLaunch(t)
	rep := runReport(t, l, mem, nil)
	top := rep.Top(0.01)
	if top == nil {
		t.Fatal("no advice for a heavily conflicted kernel")
	}
	if top.Scenario != ConflictFreeShared {
		t.Fatalf("top advice %q, want %q\nbaseline bottleneck: %s",
			top.Scenario, ConflictFreeShared, rep.Baseline.Bottleneck)
	}
	if top.Speedup < 2 {
		t.Errorf("8-way conflicts should promise ≥2x, got %.2fx", top.Speedup)
	}
}

// TestStridedKernelTopAdvice: a half-useful global access pattern
// puts coalescing on top.
func TestStridedKernelTopAdvice(t *testing.T) {
	l, mem := stridedLaunch(t)
	rep := runReport(t, l, mem, nil)
	top := rep.Top(0.01)
	if top == nil {
		t.Fatal("no advice for an uncoalesced kernel")
	}
	if top.Scenario != PerfectCoalescing {
		t.Fatalf("top advice %q, want %q\nbaseline bottleneck: %s",
			top.Scenario, PerfectCoalescing, rep.Baseline.Bottleneck)
	}
}

// TestDeterministicAcrossFanout: the ranked report is identical at
// any scenario fan-out width.
func TestDeterministicAcrossFanout(t *testing.T) {
	l, mem := conflictedLaunch(t)
	serial := runReport(t, l, mem, &Options{Parallelism: 1})
	wide := runReport(t, l, mem, &Options{Parallelism: 8})
	if !reflect.DeepEqual(serial.Scenarios, wide.Scenarios) {
		t.Errorf("scenario ranking differs across fan-out widths:\nP=1: %+v\nP=8: %+v",
			serial.Scenarios, wide.Scenarios)
	}
}

// TestTopTolerance: a kernel with no headroom over tol yields no top
// advice.
func TestTopTolerance(t *testing.T) {
	rep := &Report{Scenarios: []ScenarioResult{{Scenario: IdealOverlap, Speedup: 1.003}}}
	if rep.Top(0.01) != nil {
		t.Error("sub-tolerance speedup should yield no advice")
	}
	if rep.Top(0.001) == nil {
		t.Error("above-tolerance speedup should yield advice")
	}
	if (&Report{}).Top(0.01) != nil {
		t.Error("empty report should yield no advice")
	}
}

// TestScenarioEstimateConsistency: each scenario's headline numbers
// match its attached estimate, and the occupancy sweep's target obeys
// the architectural ceilings.
func TestScenarioEstimateConsistency(t *testing.T) {
	l, mem := conflictedLaunch(t)
	rep := runReport(t, l, mem, nil)
	cfg := cal(t).Config()
	for _, s := range rep.Scenarios {
		if s.PredictedSeconds != s.Estimate.TotalSeconds {
			t.Errorf("%s: headline %.6g != estimate %.6g", s.Scenario, s.PredictedSeconds, s.Estimate.TotalSeconds)
		}
		if s.Scenario == RaiseOccupancy {
			if s.TargetBlocks <= 0 || s.TargetBlocks > cfg.MaxBlocksPerSM {
				t.Errorf("occupancy target %d outside [1, %d]", s.TargetBlocks, cfg.MaxBlocksPerSM)
			}
			if s.Estimate.Occupancy.ActiveWarps > cfg.MaxWarpsPerSM {
				t.Errorf("occupancy sweep exceeded the warp ceiling")
			}
		} else if s.TargetBlocks != 0 {
			t.Errorf("%s: unexpected TargetBlocks %d", s.Scenario, s.TargetBlocks)
		}
	}
}

// TestModelPredictWithMatchesAnalyzeWith: the resimulate entry point
// agrees with the stat-transform path on identical inputs.
func TestModelPredictWithMatchesAnalyzeWith(t *testing.T) {
	c := cal(t)
	l, mem := conflictedLaunch(t)
	stats, err := barra.Run(c.Config(), l, barra.NewMemory(mem), nil)
	if err != nil {
		t.Fatal(err)
	}
	ov := model.Overrides{ConflictFreeShared: true}
	want, err := model.AnalyzeWith(c, l, stats, ov)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := model.PredictWith(t.Context(), c, l, barra.NewMemory(mem), nil, ov)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSeconds != want.TotalSeconds || got.Component != want.Component {
		t.Errorf("PredictWith drifted from AnalyzeWith: %+v vs %+v", got.Component, want.Component)
	}
}
