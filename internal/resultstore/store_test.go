package resultstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoryLRUEviction: the memory tier respects its byte budget by
// evicting least-recently-used entries, and a touched entry survives
// the eviction of a colder one.
func TestMemoryLRUEviction(t *testing.T) {
	s := New(Config{MemoryBytes: 100})
	body := bytes.Repeat([]byte("x"), 40)
	s.Put("a", body)
	s.Put("b", body)
	// Touch "a" so "b" is the eviction candidate.
	if _, _, ok := s.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	s.Put("c", body) // 120 bytes > 100: evict LRU ("b")
	if _, _, ok := s.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, _, ok := s.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 100 {
		t.Errorf("memory tier holds %d bytes, budget 100", st.Bytes)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}

	// An entry larger than the whole budget never enters the memory
	// tier (it would evict everything for a single-use slot).
	s.Put("huge", bytes.Repeat([]byte("y"), 200))
	if _, _, ok := s.Get("huge"); ok {
		t.Error("over-budget entry should not be cached in memory")
	}
}

// TestMemoryBytesZeroDisablesMemory: with no budget every Get is a
// miss (or a disk hit when a directory is configured).
func TestMemoryBytesZeroDisablesMemory(t *testing.T) {
	s := New(Config{})
	s.Put("k", []byte("v"))
	if _, _, ok := s.Get("k"); ok {
		t.Error("memory tier should be disabled at budget 0")
	}

	dir := t.TempDir()
	s2 := New(Config{Dir: dir})
	s2.Put("k", []byte("v"))
	body, st, ok := s2.Get("k")
	if !ok || st != DiskHit || string(body) != "v" {
		t.Errorf("disk-only store: got %q status %d ok %v", body, st, ok)
	}
}

// TestDiskRoundTripAndSharing: a second store pointed at the same
// directory serves the first store's writes, and a disk hit is
// promoted into the reader's memory tier.
func TestDiskRoundTripAndSharing(t *testing.T) {
	dir := t.TempDir()
	w := New(Config{MemoryBytes: 1 << 20, Dir: dir})
	w.Put("key1", []byte(`{"x":1}`))

	r := New(Config{MemoryBytes: 1 << 20, Dir: dir})
	body, st, ok := r.Get("key1")
	if !ok || st != DiskHit || string(body) != `{"x":1}` {
		t.Fatalf("disk read: %q status %d ok %v", body, st, ok)
	}
	if _, st, ok := r.Get("key1"); !ok || st != MemoryHit {
		t.Errorf("second read should be a memory hit, got status %d ok %v", st, ok)
	}
}

// TestDiskCorruptSlotFallbackAndRepair: truncated or corrupt slots,
// wrong-version envelopes, and slots renamed under a foreign key all
// read as misses; the next Do recomputes and repairs the slot.
func TestDiskCorruptSlotFallbackAndRepair(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{MemoryBytes: 1 << 20, Dir: dir})
	ctx := context.Background()
	payload := []byte(`{"answer":42}`)
	compute := func() ([]byte, error) { return payload, nil }

	if _, st, err := s.Do(ctx, "k", compute); err != nil || st != Miss {
		t.Fatalf("cold Do: status %d err %v", st, err)
	}

	corruptions := map[string]func(path string) error{
		"truncated": func(p string) error {
			data, _ := os.ReadFile(p)
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		},
		"garbage": func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		},
		"wrong-key": func(p string) error {
			// A valid envelope written for a different key, as if a
			// slot file had been renamed by hand.
			other := New(Config{Dir: dir})
			other.Put("other", payload)
			data, err := os.ReadFile(SlotPath(dir, "other"))
			if err != nil {
				return err
			}
			return os.WriteFile(p, data, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			path := SlotPath(dir, "k")
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			// A fresh store (empty memory tier) must treat the bad
			// slot as a miss and fall back to computing.
			fresh := New(Config{MemoryBytes: 1 << 20, Dir: dir})
			body, st, err := fresh.Do(ctx, "k", compute)
			if err != nil || st != Miss || string(body) != string(payload) {
				t.Fatalf("corrupt slot: body %q status %d err %v", body, st, err)
			}
			// ... and the Do repaired the slot: the next fresh store
			// reads it from disk again.
			repaired := New(Config{MemoryBytes: 1 << 20, Dir: dir})
			body, st, ok := repaired.Get("k")
			if !ok || st != DiskHit || string(body) != string(payload) {
				t.Errorf("slot not repaired: body %q status %d ok %v", body, st, ok)
			}
		})
	}
}

// TestDoSingleflight: N concurrent identical requests run the
// computation exactly once; the followers coalesce onto the leader's
// result. Run under -race in CI.
func TestDoSingleflight(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		close(started)
		<-release
		return []byte("once"), nil
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	statuses := make([]Status, n)
	errs := make([]error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], statuses[0], errs[0] = s.Do(context.Background(), "k", compute)
	}()
	<-started // the leader is inside compute; everyone else must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], statuses[i], errs[i] = s.Do(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				return []byte("once"), nil
			})
		}(i)
	}
	// Wait until all followers are registered as coalesced waiters,
	// then let the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Coalesced >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || string(results[i]) != "once" {
			t.Errorf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
	if statuses[0] != Miss {
		t.Errorf("leader status %d, want Miss", statuses[0])
	}
	for i := 1; i < n; i++ {
		if statuses[i] != Coalesced {
			t.Errorf("follower %d status %d, want Coalesced", i, statuses[i])
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats misses=%d coalesced=%d, want 1/%d", st.Misses, st.Coalesced, n-1)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge stuck at %d", st.InFlight)
	}
}

// TestDoFollowerLeavesOnContextDeath: a coalesced waiter holds
// nothing and abandons the flight the moment its own context dies,
// while the leader keeps computing for everyone else.
func TestDoFollowerLeavesOnContextDeath(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	started := make(chan struct{})
	release := make(chan struct{})
	go s.Do(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-release
		return []byte("v"), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Do(ctx, "k", func() ([]byte, error) { return nil, errors.New("must not run") })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower never returned")
	}
	close(release)
}

// TestDoLeaderCancellationRetries: when the leader dies with its own
// context, a surviving follower does not inherit the foreign
// cancellation — it retries and becomes the new leader.
func TestDoLeaderCancellationRetries(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	go s.Do(leaderCtx, "k", func() ([]byte, error) {
		close(started)
		<-leaderCtx.Done()
		return nil, leaderCtx.Err()
	})
	<-started

	done := make(chan struct{})
	var body []byte
	var err error
	go func() {
		defer close(done)
		body, _, err = s.Do(context.Background(), "k", func() ([]byte, error) {
			return []byte("retried"), nil
		})
	}()
	// Give the follower a moment to register, then kill the leader.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never recovered from the leader's death")
	}
	if err != nil || string(body) != "retried" {
		t.Fatalf("retry: %q, %v", body, err)
	}
}

// TestDoErrorsNotCached: a failed computation leaves no cache entry —
// the next call recomputes.
func TestDoErrorsNotCached(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20, Dir: t.TempDir()})
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := s.Do(ctx, "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	body, st, err := s.Do(ctx, "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || st != Miss || string(body) != "ok" {
		t.Fatalf("recompute after failure: %q status %d err %v", body, st, err)
	}
}

// TestDoDeadContext: a caller whose context is already dead gets the
// context error even when the value is cached.
func TestDoDeadContext(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	s.Put("k", []byte("v"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Do(ctx, "k", func() ([]byte, error) { return nil, fmt.Errorf("must not run") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
