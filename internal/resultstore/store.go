// Package resultstore is the content-addressed result cache behind
// the gpuperf fleet: a byte-budgeted in-memory LRU in front of an
// on-disk slot store, with singleflight deduplication of concurrent
// identical computations.
//
// Keys are request fingerprints (hex digests computed by the caller);
// values are opaque serialized payloads. The disk layer generalizes
// internal/timing's calibration-cache machinery — one file per key,
// written atomically (write-temp-then-rename), where a corrupt,
// truncated or wrong-slot file reads as a miss (never an error) and
// is repaired by the next successful Put.
package resultstore

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Status classifies how one Do call was served.
type Status int

const (
	// Miss: this call ran the computation (the singleflight leader).
	Miss Status = iota
	// MemoryHit: served from the in-memory LRU.
	MemoryHit
	// DiskHit: served from the on-disk slot (and promoted to memory).
	DiskHit
	// Coalesced: this call waited on another caller's in-flight
	// computation and shared its result.
	Coalesced
)

// Config configures a Store.
type Config struct {
	// MemoryBytes is the in-memory LRU's byte budget (sum of cached
	// payload sizes). 0 disables the memory tier.
	MemoryBytes int64
	// Dir, when non-empty, is the on-disk slot directory, shared by
	// every store (and every process) pointed at it.
	Dir string
}

// Stats are the store's monotonic counters and gauges.
type Stats struct {
	// Hits = MemoryHits + DiskHits.
	Hits       int64 `json:"hits"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	// Misses counts computations started (singleflight leaders).
	Misses int64 `json:"misses"`
	// Coalesced counts callers that waited on a leader instead of
	// computing.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts LRU entries dropped to respect the byte budget.
	Evictions int64 `json:"evictions"`
	// SaveErrors counts failed best-effort disk writes.
	SaveErrors int64 `json:"save_errors,omitempty"`
	// InFlight is the number of computations running right now.
	InFlight int `json:"in_flight"`
	// Entries and Bytes describe the current memory tier.
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	MemoryBudget int64 `json:"memory_budget_bytes"`
}

// Store is the cache. Safe for concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	byKey   map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[string]*flight
	stats   Stats
}

type entry struct {
	key  string
	body []byte
}

// flight is one in-progress computation; followers wait on done and
// read body/err afterwards (published by the close).
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// New builds a store. The disk directory is created lazily on first
// Put.
func New(cfg Config) *Store {
	return &Store{
		cfg:     cfg,
		byKey:   map[string]*list.Element{},
		lru:     list.New(),
		flights: map[string]*flight{},
	}
}

// Do serves key from the cache, or runs compute exactly once however
// many identical calls arrive concurrently: the first caller becomes
// the leader and computes (with its own context); the rest hold no
// resources while they wait and abandon the wait when their context
// dies. A leader that fails with its context's death is transparent
// to surviving waiters — one of them retries as the new leader.
// Successful computations are stored in both tiers.
func (s *Store) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Status, error) {
	for {
		// A dead caller is served nothing — not even a hit — so
		// cancellation behaves identically on hot and cold paths.
		if err := ctx.Err(); err != nil {
			return nil, Miss, err
		}
		s.mu.Lock()
		if body, ok := s.memGet(key); ok {
			s.stats.MemoryHits++
			s.stats.Hits++
			s.mu.Unlock()
			return body, MemoryHit, nil
		}
		if fl, ok := s.flights[key]; ok {
			s.stats.Coalesced++
			s.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err != nil {
					if isContextError(fl.err) && ctx.Err() == nil {
						// The leader's client hung up, not ours:
						// retry (and possibly lead) instead of
						// propagating a foreign cancellation.
						continue
					}
					return nil, Coalesced, fl.err
				}
				return fl.body, Coalesced, nil
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		// Lead. The flight is registered before the disk probe so
		// concurrent identical requests coalesce on that read too.
		fl := &flight{done: make(chan struct{})}
		s.flights[key] = fl
		s.mu.Unlock()

		body, status, err := s.lead(key, compute)

		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		fl.body, fl.err = body, err
		close(fl.done)
		return body, status, err
	}
}

// lead is the leader's half of Do: disk probe, then compute + store.
func (s *Store) lead(key string, compute func() ([]byte, error)) ([]byte, Status, error) {
	if body, ok := s.diskGet(key); ok {
		s.mu.Lock()
		s.memPut(key, body)
		s.stats.DiskHits++
		s.stats.Hits++
		s.mu.Unlock()
		return body, DiskHit, nil
	}
	s.mu.Lock()
	s.stats.Misses++
	s.stats.InFlight++
	s.mu.Unlock()
	body, err := compute()
	s.mu.Lock()
	s.stats.InFlight--
	s.mu.Unlock()
	if err != nil {
		return nil, Miss, err
	}
	s.Put(key, body)
	return body, Miss, nil
}

// Get looks key up in memory, then disk (promoting a disk hit),
// without deduplication. ok=false is a miss.
func (s *Store) Get(key string) (body []byte, st Status, ok bool) {
	s.mu.Lock()
	if body, ok := s.memGet(key); ok {
		s.stats.MemoryHits++
		s.stats.Hits++
		s.mu.Unlock()
		return body, MemoryHit, true
	}
	s.mu.Unlock()
	if body, ok := s.diskGet(key); ok {
		s.mu.Lock()
		s.memPut(key, body)
		s.stats.DiskHits++
		s.stats.Hits++
		s.mu.Unlock()
		return body, DiskHit, true
	}
	return nil, Miss, false
}

// Put stores body under key in both tiers. The disk write is
// best-effort: a failure is counted, never surfaced — the memory
// tier (and the caller's in-hand result) stay valid, mirroring the
// calibration cache's contract.
func (s *Store) Put(key string, body []byte) {
	s.mu.Lock()
	s.memPut(key, body)
	s.mu.Unlock()
	if s.cfg.Dir != "" {
		if err := s.diskPut(key, body); err != nil {
			s.mu.Lock()
			s.stats.SaveErrors++
			s.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	st.MemoryBudget = s.cfg.MemoryBytes
	return st
}

// memGet/memPut require s.mu.

func (s *Store) memGet(key string) ([]byte, bool) {
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).body, true
}

func (s *Store) memPut(key string, body []byte) {
	if int64(len(body)) > s.cfg.MemoryBytes {
		// An entry that cannot fit even an empty cache would only
		// thrash the LRU; it lives on disk alone.
		return
	}
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(&entry{key: key, body: body})
		s.bytes += int64(len(body))
	}
	for s.bytes > s.cfg.MemoryBytes {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		e := s.lru.Remove(oldest).(*entry)
		delete(s.byKey, e.key)
		s.bytes -= int64(len(e.body))
		s.stats.Evictions++
	}
}

// envelope is the disk slot format: the payload plus the key it was
// stored under, so a slot that was renamed, truncated or corrupted
// reads as a miss instead of serving foreign bytes.
type envelope struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	// Body is the opaque payload (base64 on disk, so the envelope
	// holds any byte string, not just JSON).
	Body []byte `json:"body"`
}

const slotVersion = 1

// SlotPath returns key's file under dir — one slot per request
// fingerprint, mirroring timing.CacheFile's per-device-fingerprint
// scheme.
func SlotPath(dir, key string) string {
	return filepath.Join(dir, "res-"+key+".json")
}

// diskGet reads key's slot. Any failure — missing, unreadable,
// corrupt, wrong version, wrong embedded key — is a miss, never an
// error: the caller recomputes and the following Put repairs the
// slot.
func (s *Store) diskGet(key string) ([]byte, bool) {
	if s.cfg.Dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(SlotPath(s.cfg.Dir, key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	if env.Version != slotVersion || env.Key != key || len(env.Body) == 0 {
		return nil, false
	}
	return env.Body, true
}

// diskPut writes key's slot atomically: temp file in the same
// directory, then rename — a concurrent reader never observes a
// partial write and a crash never corrupts an existing slot.
func (s *Store) diskPut(key string, body []byte) error {
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	data, err := json.Marshal(envelope{Version: slotVersion, Key: key, Body: body})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	path := SlotPath(s.cfg.Dir, key)
	tmp, err := os.CreateTemp(s.cfg.Dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
