// Package sparse provides the blocked sparse matrices and storage
// formats of paper §5.3: a synthetic naturally-3×3-blocked matrix
// with QCD-like banded structure, the ELLPACK (ELL) format, the
// blocked ELLPACK (BELL) format with interleaved matrix storage, and
// the paper's vector-interleaving optimization (IMIV).
package sparse

import (
	"fmt"
	"math/rand"
)

// Blocked is a sparse matrix of dense BlockSize×BlockSize blocks
// with a uniform number of blocks per block-row (ELL-friendly, like
// the QCD matrix of the paper's benchmark suite).
type Blocked struct {
	// BlockRows is the number of block rows; the scalar dimension is
	// BlockRows·BlockSize (square matrix).
	BlockRows int
	// BlockSize is the dense block edge (3 for QCD).
	BlockSize int
	// BlocksPerRow is the uniform block count per block-row.
	BlocksPerRow int
	// Cols[q][j] is the block-column index of block j in block-row
	// q, strictly increasing within a row.
	Cols [][]int32
	// Vals[q][j] is the dense block in row-major order
	// (BlockSize² entries).
	Vals [][][]float32
}

// Rows returns the scalar row count.
func (m *Blocked) Rows() int { return m.BlockRows * m.BlockSize }

// NNZ returns the stored entry count (including explicit zeros
// inside blocks).
func (m *Blocked) NNZ() int {
	return m.BlockRows * m.BlocksPerRow * m.BlockSize * m.BlockSize
}

// Validate checks structural invariants.
func (m *Blocked) Validate() error {
	if m.BlockRows <= 0 || m.BlockSize <= 0 || m.BlocksPerRow <= 0 {
		return fmt.Errorf("sparse: non-positive dimensions")
	}
	if m.BlocksPerRow > m.BlockRows {
		return fmt.Errorf("sparse: %d blocks per row exceed %d block columns", m.BlocksPerRow, m.BlockRows)
	}
	if len(m.Cols) != m.BlockRows || len(m.Vals) != m.BlockRows {
		return fmt.Errorf("sparse: ragged outer storage")
	}
	bs2 := m.BlockSize * m.BlockSize
	for q := 0; q < m.BlockRows; q++ {
		if len(m.Cols[q]) != m.BlocksPerRow || len(m.Vals[q]) != m.BlocksPerRow {
			return fmt.Errorf("sparse: block-row %d has %d/%d blocks, want %d",
				q, len(m.Cols[q]), len(m.Vals[q]), m.BlocksPerRow)
		}
		prev := int32(-1)
		for j, c := range m.Cols[q] {
			if c <= prev || int(c) >= m.BlockRows {
				return fmt.Errorf("sparse: block-row %d: bad column %d at %d", q, c, j)
			}
			prev = c
			if len(m.Vals[q][j]) != bs2 {
				return fmt.Errorf("sparse: block-row %d block %d has %d entries", q, j, len(m.Vals[q][j]))
			}
		}
	}
	return nil
}

// GenQCDLike builds a synthetic naturally-3×3-blocked matrix with
// the structural properties the paper's QCD matrix supplies to
// Fig. 11: uniform row degree (ELL-friendly) and banded block
// structure (neighbouring rows touch nearby columns, which is what
// vector interleaving exploits). blockRows block-rows, blocksPerRow
// blocks each, placed at stencil-like offsets with slight jitter.
func GenQCDLike(blockRows, blocksPerRow int, rng *rand.Rand) (*Blocked, error) {
	m := &Blocked{
		BlockRows:    blockRows,
		BlockSize:    3,
		BlocksPerRow: blocksPerRow,
	}
	if blockRows <= 0 || blocksPerRow <= 0 || blocksPerRow > blockRows {
		return nil, fmt.Errorf("sparse: bad QCD dimensions %d×%d", blockRows, blocksPerRow)
	}
	// Stencil offsets: diagonal plus symmetric neighbours at ±1 and
	// growing strides, like a lattice nearest-neighbour coupling.
	offsets := make([]int, 0, blocksPerRow)
	offsets = append(offsets, 0)
	stride := 1
	for len(offsets) < blocksPerRow {
		offsets = append(offsets, stride)
		if len(offsets) < blocksPerRow {
			offsets = append(offsets, -stride)
		}
		stride *= 4
	}
	m.Cols = make([][]int32, blockRows)
	m.Vals = make([][][]float32, blockRows)
	for q := 0; q < blockRows; q++ {
		seen := map[int32]bool{}
		cols := make([]int32, 0, blocksPerRow)
		for _, off := range offsets {
			c := q + off
			// Jitter one step either way, then clamp and dedup.
			if off != 0 && rng.Intn(4) == 0 {
				c += rng.Intn(3) - 1
			}
			if c < 0 {
				c += blockRows
			}
			if c >= blockRows {
				c -= blockRows
			}
			cc := int32(c)
			for seen[cc] {
				cc = (cc + 1) % int32(blockRows)
			}
			seen[cc] = true
			cols = append(cols, cc)
		}
		sortInt32(cols)
		m.Cols[q] = cols
		m.Vals[q] = make([][]float32, blocksPerRow)
		for j := range m.Vals[q] {
			blk := make([]float32, 9)
			for e := range blk {
				blk[e] = 2*rng.Float32() - 1
			}
			m.Vals[q][j] = blk
		}
	}
	return m, m.Validate()
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MulDense computes y = M·x in float64, the reference for kernel
// verification.
func (m *Blocked) MulDense(x []float32) ([]float32, error) {
	n := m.Rows()
	if len(x) != n {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), n)
	}
	y := make([]float32, n)
	bs := m.BlockSize
	for q := 0; q < m.BlockRows; q++ {
		acc := make([]float64, bs)
		for j, c := range m.Cols[q] {
			blk := m.Vals[q][j]
			for r := 0; r < bs; r++ {
				for cc := 0; cc < bs; cc++ {
					acc[r] += float64(blk[r*bs+cc]) * float64(x[int(c)*bs+cc])
				}
			}
		}
		for r := 0; r < bs; r++ {
			y[q*bs+r] = float32(acc[r])
		}
	}
	return y, nil
}

// ELL is the scalar ELLPACK format of paper Fig. 9(b): every row
// padded to Width entries, stored column-major (entry j of row r at
// j·Rows + r) so that consecutive threads read consecutive words.
type ELL struct {
	Rows  int
	Width int
	// Entries and ColIdx are column-major Rows×Width.
	Entries []float32
	ColIdx  []int32
}

// ToELL expands the blocked matrix into scalar ELL: each scalar row
// holds BlocksPerRow·BlockSize entries.
func (m *Blocked) ToELL() (*ELL, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rows := m.Rows()
	width := m.BlocksPerRow * m.BlockSize
	e := &ELL{
		Rows:    rows,
		Width:   width,
		Entries: make([]float32, rows*width),
		ColIdx:  make([]int32, rows*width),
	}
	bs := m.BlockSize
	for q := 0; q < m.BlockRows; q++ {
		for r := 0; r < bs; r++ {
			row := q*bs + r
			slot := 0
			for j, c := range m.Cols[q] {
				blk := m.Vals[q][j]
				for cc := 0; cc < bs; cc++ {
					e.Entries[slot*rows+row] = blk[r*bs+cc]
					e.ColIdx[slot*rows+row] = c*int32(bs) + int32(cc)
					slot++
				}
			}
		}
	}
	return e, nil
}

// BELL is the blocked ELLPACK format with interleaved matrix
// storage (paper's BELL+IM, Fig. 9(d)): one thread per block-row;
// entry e of block j for block-row q lives at (j·bs²+e)·BlockRows+q,
// and block-column indices at j·BlockRows+q — both coalesced across
// consecutive block-rows.
type BELL struct {
	BlockRows    int
	BlockSize    int
	BlocksPerRow int
	// Entries is (BlocksPerRow·BlockSize²)×BlockRows interleaved.
	Entries []float32
	// BlockCols is BlocksPerRow×BlockRows interleaved.
	BlockCols []int32
}

// ToBELL converts to interleaved blocked ELLPACK.
func (m *Blocked) ToBELL() (*BELL, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	bs2 := m.BlockSize * m.BlockSize
	b := &BELL{
		BlockRows:    m.BlockRows,
		BlockSize:    m.BlockSize,
		BlocksPerRow: m.BlocksPerRow,
		Entries:      make([]float32, m.BlockRows*m.BlocksPerRow*bs2),
		BlockCols:    make([]int32, m.BlockRows*m.BlocksPerRow),
	}
	for q := 0; q < m.BlockRows; q++ {
		for j := 0; j < m.BlocksPerRow; j++ {
			b.BlockCols[j*m.BlockRows+q] = m.Cols[q][j]
			for e := 0; e < bs2; e++ {
				b.Entries[(j*bs2+e)*m.BlockRows+q] = m.Vals[q][j][e]
			}
		}
	}
	return b, nil
}

// InterleaveVector applies the paper's IMIV permutation to a dense
// vector: logical element i = q·bs + r moves to position
// r·BlockRows + q, scattering each block's entries so that the
// entries consecutive threads need land near each other.
func InterleaveVector(x []float32, blockRows, bs int) ([]float32, error) {
	if len(x) != blockRows*bs {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), blockRows*bs)
	}
	out := make([]float32, len(x))
	for q := 0; q < blockRows; q++ {
		for r := 0; r < bs; r++ {
			out[r*blockRows+q] = x[q*bs+r]
		}
	}
	return out, nil
}

// DeinterleaveVector inverts InterleaveVector.
func DeinterleaveVector(x []float32, blockRows, bs int) ([]float32, error) {
	if len(x) != blockRows*bs {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), blockRows*bs)
	}
	out := make([]float32, len(x))
	for q := 0; q < blockRows; q++ {
		for r := 0; r < bs; r++ {
			out[q*bs+r] = x[r*blockRows+q]
		}
	}
	return out, nil
}

// GenBanded builds a strictly banded blocked matrix: block-row q
// touches block-columns q-h..q+h (wrapped), the friendliest possible
// structure for the paper's vector interleaving — consecutive
// threads read almost the same vector neighbourhood.
func GenBanded(blockRows, blocksPerRow int, rng *rand.Rand) (*Blocked, error) {
	if blockRows <= 0 || blocksPerRow <= 0 || blocksPerRow > blockRows {
		return nil, fmt.Errorf("sparse: bad banded dimensions %d×%d", blockRows, blocksPerRow)
	}
	m := &Blocked{BlockRows: blockRows, BlockSize: 3, BlocksPerRow: blocksPerRow}
	m.Cols = make([][]int32, blockRows)
	m.Vals = make([][][]float32, blockRows)
	h := blocksPerRow / 2
	for q := 0; q < blockRows; q++ {
		cols := make([]int32, 0, blocksPerRow)
		for off := -h; len(cols) < blocksPerRow; off++ {
			c := (q + off + blockRows) % blockRows
			cols = append(cols, int32(c))
		}
		sortInt32(cols)
		m.Cols[q] = dedupeShift(cols, blockRows)
		m.Vals[q] = randomBlocks(blocksPerRow, rng)
	}
	return m, m.Validate()
}

// GenRandomUniform builds a uniform-degree matrix with *random*
// block columns — ELL-friendly row degrees but no banded locality,
// the adversarial case for vector interleaving: the paper's intuition
// ("the more apart two rows are, the less chance they share a
// transaction") predicts IMIV loses most of its advantage here.
func GenRandomUniform(blockRows, blocksPerRow int, rng *rand.Rand) (*Blocked, error) {
	if blockRows <= 0 || blocksPerRow <= 0 || blocksPerRow > blockRows {
		return nil, fmt.Errorf("sparse: bad random dimensions %d×%d", blockRows, blocksPerRow)
	}
	m := &Blocked{BlockRows: blockRows, BlockSize: 3, BlocksPerRow: blocksPerRow}
	m.Cols = make([][]int32, blockRows)
	m.Vals = make([][][]float32, blockRows)
	for q := 0; q < blockRows; q++ {
		seen := map[int32]bool{}
		cols := make([]int32, 0, blocksPerRow)
		for len(cols) < blocksPerRow {
			c := int32(rng.Intn(blockRows))
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		sortInt32(cols)
		m.Cols[q] = cols
		m.Vals[q] = randomBlocks(blocksPerRow, rng)
	}
	return m, m.Validate()
}

func randomBlocks(n int, rng *rand.Rand) [][]float32 {
	out := make([][]float32, n)
	for j := range out {
		blk := make([]float32, 9)
		for e := range blk {
			blk[e] = 2*rng.Float32() - 1
		}
		out[j] = blk
	}
	return out
}

// dedupeShift resolves duplicate wrapped columns by shifting them to
// free slots (banded generators only wrap for tiny matrices).
func dedupeShift(cols []int32, blockRows int) []int32 {
	seen := map[int32]bool{}
	out := make([]int32, 0, len(cols))
	for _, c := range cols {
		for seen[c] {
			c = (c + 1) % int32(blockRows)
		}
		seen[c] = true
		out = append(out, c)
	}
	sortInt32(out)
	return out
}
