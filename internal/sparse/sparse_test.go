package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func genMat(t *testing.T, rows, bpr int) *Blocked {
	t.Helper()
	m, err := GenQCDLike(rows, bpr, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randVec(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float32, n)
	for i := range x {
		x[i] = 2*rng.Float32() - 1
	}
	return x
}

func TestGenQCDLikeStructure(t *testing.T) {
	m := genMat(t, 256, 9)
	if m.Rows() != 768 || m.NNZ() != 256*9*9 {
		t.Errorf("dims: rows=%d nnz=%d", m.Rows(), m.NNZ())
	}
	// Banded-ness: most rows touch their own block column, and the
	// median column distance is small relative to the matrix.
	diagHits, nearCols := 0, 0
	for q := 0; q < m.BlockRows; q++ {
		for _, c := range m.Cols[q] {
			d := int(c) - q
			if d < 0 {
				d = -d
			}
			if d > m.BlockRows/2 { // wrapped
				d = m.BlockRows - d
			}
			if d == 0 {
				diagHits++
			}
			if d <= 20 {
				nearCols++
			}
		}
	}
	if diagHits < m.BlockRows*9/10 {
		t.Errorf("only %d/%d rows have a diagonal block", diagHits, m.BlockRows)
	}
	if nearCols < m.BlockRows*9/2 {
		t.Errorf("matrix not banded: %d near columns of %d", nearCols, m.BlockRows*9)
	}
}

func TestGenQCDLikeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenQCDLike(0, 4, rng); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := GenQCDLike(4, 9, rng); err == nil {
		t.Error("more blocks than columns accepted")
	}
}

func TestELLRoundTrip(t *testing.T) {
	m := genMat(t, 64, 5)
	e, err := m.ToELL()
	if err != nil {
		t.Fatal(err)
	}
	if e.Width != 15 || e.Rows != 192 {
		t.Fatalf("ELL dims %dx%d", e.Rows, e.Width)
	}
	// Reference multiply through the ELL arrays must match MulDense.
	x := randVec(m.Rows(), 7)
	want, err := m.MulDense(x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float32, e.Rows)
	for r := 0; r < e.Rows; r++ {
		var acc float64
		for j := 0; j < e.Width; j++ {
			acc += float64(e.Entries[j*e.Rows+r]) * float64(x[e.ColIdx[j*e.Rows+r]])
		}
		got[r] = float32(acc)
	}
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-4 {
			t.Fatalf("ELL y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBELLRoundTrip(t *testing.T) {
	m := genMat(t, 64, 5)
	b, err := m.ToBELL()
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(m.Rows(), 8)
	want, err := m.MulDense(x)
	if err != nil {
		t.Fatal(err)
	}
	bs := b.BlockSize
	bs2 := bs * bs
	got := make([]float32, m.Rows())
	for q := 0; q < b.BlockRows; q++ {
		acc := make([]float64, bs)
		for j := 0; j < b.BlocksPerRow; j++ {
			c := int(b.BlockCols[j*b.BlockRows+q])
			for r := 0; r < bs; r++ {
				for cc := 0; cc < bs; cc++ {
					v := b.Entries[(j*bs2+r*bs+cc)*b.BlockRows+q]
					acc[r] += float64(v) * float64(x[c*bs+cc])
				}
			}
		}
		for r := 0; r < bs; r++ {
			got[q*bs+r] = float32(acc[r])
		}
	}
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-4 {
			t.Fatalf("BELL y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVectorInterleaveRoundTrip(t *testing.T) {
	x := randVec(3*32, 9)
	ix, err := InterleaveVector(x, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the permutation: logical (q=5, r=2) → 2·32+5.
	if ix[2*32+5] != x[5*3+2] {
		t.Error("interleave permutation wrong")
	}
	back, err := DeinterleaveVector(ix, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("round trip broke at %d", i)
		}
	}
	if _, err := InterleaveVector(x[:10], 32, 3); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := DeinterleaveVector(x[:10], 32, 3); err == nil {
		t.Error("bad length accepted")
	}
}

func TestMulDenseValidation(t *testing.T) {
	m := genMat(t, 16, 4)
	if _, err := m.MulDense(make([]float32, 5)); err == nil {
		t.Error("bad vector length accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := genMat(t, 16, 4)
	m.Cols[3][1] = m.Cols[3][0] // non-increasing
	if err := m.Validate(); err == nil {
		t.Error("non-increasing columns accepted")
	}
	m2 := genMat(t, 16, 4)
	m2.Cols[0][3] = 99 // out of range
	if err := m2.Validate(); err == nil {
		t.Error("out-of-range column accepted")
	}
	m3 := genMat(t, 16, 4)
	m3.Vals[2][1] = m3.Vals[2][1][:5]
	if err := m3.Validate(); err == nil {
		t.Error("short block accepted")
	}
}

func TestGenBandedAndRandomFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	banded, err := GenBanded(128, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	random, err := GenRandomUniform(128, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Banded: every column within h (+wrap) of the diagonal.
	for q := 0; q < banded.BlockRows; q++ {
		for _, c := range banded.Cols[q] {
			d := int(c) - q
			if d < 0 {
				d = -d
			}
			if d > banded.BlockRows/2 {
				d = banded.BlockRows - d
			}
			if d > 4 {
				t.Fatalf("banded row %d has far column %d", q, c)
			}
		}
	}
	// Random: substantial spread (mean |distance| well above the
	// banded half-width).
	total, count := 0, 0
	for q := 0; q < random.BlockRows; q++ {
		for _, c := range random.Cols[q] {
			d := int(c) - q
			if d < 0 {
				d = -d
			}
			total += d
			count++
		}
	}
	if mean := total / count; mean < 10 {
		t.Errorf("random matrix mean column distance %d, want spread", mean)
	}
	// Both multiply correctly.
	for _, m := range []*Blocked{banded, random} {
		x := randVec(m.Rows(), 3)
		if _, err := m.MulDense(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := GenBanded(0, 3, rng); err == nil {
		t.Error("bad banded dims accepted")
	}
	if _, err := GenRandomUniform(4, 9, rng); err == nil {
		t.Error("bad random dims accepted")
	}
}
