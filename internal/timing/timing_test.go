package timing

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

var (
	jsonMarshal   = json.Marshal
	jsonUnmarshal = json.Unmarshal
)

// calOnce shares one calibration across tests (it is moderately
// expensive to compute).
var (
	calMu   sync.Mutex
	calMemo *Calibration
)

func cal(t *testing.T) *Calibration {
	t.Helper()
	calMu.Lock()
	defer calMu.Unlock()
	if calMemo == nil {
		c, err := Calibrate(gpu.GTX285())
		if err != nil {
			t.Fatal(err)
		}
		calMemo = c
	}
	return calMemo
}

// TestInstrCurveShape verifies Fig. 2 (left): monotone-ish rise,
// saturation near the theoretical peak, class ordering.
func TestInstrCurveShape(t *testing.T) {
	c := cal(t)
	cfg := gpu.GTX285()
	for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
		peak := cfg.PeakInstrThroughput(cls.Units())
		one := c.InstrThroughput(cls, 1)
		sat := c.InstrThroughput(cls, 16)
		if one <= 0 || sat <= 0 {
			t.Fatalf("%s: zero throughput", cls)
		}
		if sat < one {
			t.Errorf("%s: saturated %.3g below 1-warp %.3g", cls, sat, one)
		}
		if sat > 1.05*peak {
			t.Errorf("%s: saturated %.3g exceeds peak %.3g", cls, sat, peak)
		}
		if sat < 0.6*peak {
			t.Errorf("%s: saturated %.3g under 60%% of peak %.3g", cls, sat, peak)
		}
	}
	// Class ordering at saturation follows the unit counts.
	if !(c.InstrThroughput(isa.ClassI, 16) > c.InstrThroughput(isa.ClassII, 16) &&
		c.InstrThroughput(isa.ClassII, 16) > c.InstrThroughput(isa.ClassIII, 16) &&
		c.InstrThroughput(isa.ClassIII, 16) > c.InstrThroughput(isa.ClassIV, 16)) {
		t.Error("class throughput ordering violated at saturation")
	}
}

// TestTypeIISaturationPoint: the paper infers ~6 pipeline stages
// from Type II saturating at 6 warps.
func TestTypeIISaturationPoint(t *testing.T) {
	c := cal(t)
	sat := c.InstrThroughput(isa.ClassII, 16)
	at6 := c.InstrThroughput(isa.ClassII, 6)
	at2 := c.InstrThroughput(isa.ClassII, 2)
	if at6 < 0.9*sat {
		t.Errorf("6 warps = %.3g, want ≥90%% of saturated %.3g", at6, sat)
	}
	if at2 > 0.6*sat {
		t.Errorf("2 warps = %.3g, want well below saturated %.3g", at2, sat)
	}
}

// TestTypeIVSaturatesImmediately: one double-precision unit means a
// single warp already saturates Type IV.
func TestTypeIVSaturatesImmediately(t *testing.T) {
	c := cal(t)
	if r := c.InstrThroughput(isa.ClassIV, 1) / c.InstrThroughput(isa.ClassIV, 16); r < 0.85 {
		t.Errorf("Type IV 1-warp/16-warp ratio = %.2f, want ≈1", r)
	}
}

// TestSharedCurveShape verifies Fig. 2 (right): rising curve that
// needs more warps than the instruction pipeline to saturate.
func TestSharedCurveShape(t *testing.T) {
	c := cal(t)
	cfg := gpu.GTX285()
	peak := cfg.PeakSharedBandwidth()
	sat := c.SharedBandwidth(32)
	if sat > 1.02*peak || sat < 0.5*peak {
		t.Errorf("saturated shared bandwidth %.3g vs peak %.3g", sat, peak)
	}
	// Paper's matmul analysis: {6,16,32} warps give roughly
	// {870,1112,1165} GB/s — i.e. 6 warps ≈ 75% of 32-warp value.
	at6, at16 := c.SharedBandwidth(6), c.SharedBandwidth(16)
	if !(at6 < at16 && at16 <= sat*1.001) {
		t.Errorf("shared curve not rising: 6w=%.3g 16w=%.3g 32w=%.3g", at6, at16, sat)
	}
	if at6 > 0.92*sat {
		t.Errorf("shared memory saturates too early: 6w=%.3g vs 32w=%.3g", at6, sat)
	}
	// The instruction pipeline is less vulnerable to low parallelism
	// than shared memory (paper §5.1): at 6 warps the ALU retains a
	// larger fraction of its saturated value.
	aluFrac := c.InstrThroughput(isa.ClassII, 6) / c.InstrThroughput(isa.ClassII, 32)
	smemFrac := at6 / sat
	if aluFrac <= smemFrac {
		t.Errorf("ALU fraction at 6 warps (%.2f) not above shared fraction (%.2f)", aluFrac, smemFrac)
	}
}

// TestGlobalBandwidthCurve verifies Fig. 3's qualitative properties.
func TestGlobalBandwidthCurve(t *testing.T) {
	c := cal(t)
	cfg := gpu.GTX285()
	peak := cfg.PeakGlobalBandwidth()
	bw := func(blocks, threads, m int) float64 {
		v, err := c.GlobalBandwidth(blocks, threads, m)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Rising in block count, saturating under peak.
	b2, b20, b60 := bw(2, 256, 32), bw(20, 256, 32), bw(60, 256, 32)
	if !(b2 < b20 && b20 <= b60*1.15) {
		t.Errorf("not rising: %.3g %.3g %.3g", b2, b20, b60)
	}
	if b60 > peak || b60 < 0.5*peak {
		t.Errorf("60-block bandwidth %.3g vs peak %.3g", b60, peak)
	}
	// With tiny per-thread work (M=2), far fewer transactions are in
	// flight: bandwidth at low block counts is much lower.
	if low := bw(10, 256, 2); low > 0.8*b20 {
		t.Errorf("M=2 bandwidth %.3g suspiciously close to M=32 %.3g", low, b20)
	}
	// Caching: repeated queries hit the cache and agree.
	again := bw(60, 256, 32)
	if again != b60 {
		t.Errorf("cache returned different value: %v vs %v", again, b60)
	}
}

// TestCurveInterpolationAndClamping: odd warp counts above 16 are
// interpolated; out-of-range warp counts clamp.
func TestCurveInterpolationAndClamping(t *testing.T) {
	c := cal(t)
	w17 := c.InstrThroughput(isa.ClassII, 17)
	w16 := c.InstrThroughput(isa.ClassII, 16)
	w18 := c.InstrThroughput(isa.ClassII, 18)
	if w17 <= 0 || math.IsNaN(w17) {
		t.Fatalf("no interpolated value at 17 warps")
	}
	lo, hi := math.Min(w16, w18), math.Max(w16, w18)
	if w17 < lo*0.999 || w17 > hi*1.001 {
		t.Errorf("17-warp value %.3g outside [%.3g, %.3g]", w17, lo, hi)
	}
	if c.InstrThroughput(isa.ClassII, 0) != c.InstrThroughput(isa.ClassII, 1) {
		t.Error("warp count 0 does not clamp to 1")
	}
	if c.InstrThroughput(isa.ClassII, 99) != c.InstrThroughput(isa.ClassII, 32) {
		t.Error("warp count 99 does not clamp to max")
	}
	if c.MaxWarps() != 32 {
		t.Errorf("MaxWarps = %d", c.MaxWarps())
	}
}

func TestGlobalBandwidthValidation(t *testing.T) {
	c := cal(t)
	if _, err := c.GlobalBandwidth(0, 256, 4); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := c.GlobalBandwidth(4, -1, 4); err == nil {
		t.Error("negative threads accepted")
	}
	// Oversized parameters clamp rather than fail.
	if _, err := c.GlobalBandwidth(4, 4096, 10000); err != nil {
		t.Errorf("clamping failed: %v", err)
	}
}

func TestCalibrateRejectsBadConfig(t *testing.T) {
	bad := gpu.GTX285()
	bad.NumSMs = 0
	if _, err := Calibrate(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestCalibrationPersistence: a round-tripped calibration reproduces
// every curve value and keeps the global-benchmark cache.
func TestCalibrationPersistence(t *testing.T) {
	c := cal(t)
	// Populate the global cache with one entry.
	want, err := c.GlobalBandwidth(12, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCalibration(data)
	if err != nil {
		t.Fatal(err)
	}
	for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
		for w := 1; w <= c.MaxWarps(); w++ {
			if c2.InstrThroughput(cls, w) != c.InstrThroughput(cls, w) {
				t.Fatalf("class %v warps %d differ", cls, w)
			}
		}
	}
	for w := 1; w <= c.MaxWarps(); w++ {
		if c2.SharedTxRate(w) != c.SharedTxRate(w) {
			t.Fatalf("shared rate differs at %d warps", w)
		}
	}
	got, err := c2.GlobalBandwidth(12, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("global cache not persisted: %v vs %v", got, want)
	}
	if c2.Config().Name != c.Config().Name {
		t.Error("config not persisted")
	}
}

// TestSaveFileAtomicAndConcurrent: SaveFile round-trips through the
// filesystem, leaves no temp droppings, replaces an existing cache
// atomically, and is safe to run while other goroutines grow the
// global-bandwidth cache (exercised under -race).
func TestSaveFileAtomicAndConcurrent(t *testing.T) {
	c := cal(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")

	// Seed the path with garbage: a failed or partial save must not
	// destroy it, a successful one must replace it wholesale.
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(trans int) {
			defer wg.Done()
			if _, err := c.GlobalBandwidth(6, 128, trans); err != nil {
				t.Error(err)
			}
		}(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.SaveFile(path); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	c2, err := LoadCalibrationFile(path)
	if err != nil {
		t.Fatalf("reload after concurrent saves: %v", err)
	}
	if c2.Config().Name != c.Config().Name {
		t.Error("config not persisted")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cal.json" {
		t.Errorf("temp files left behind: %v", entries)
	}
}

// TestCacheFilePerFingerprint: two configurations differing in a
// single knob get distinct cache files; a renamed configuration with
// identical hardware shares one.
func TestCacheFilePerFingerprint(t *testing.T) {
	dir := t.TempDir()
	base := gpu.GTX285()
	knobs := map[string]gpu.Config{
		"base":  base,
		"banks": gpu.GTX285(gpu.WithBanks(17)),
		"regs":  gpu.GTX285(gpu.WithRegisters(32768)),
		"smem":  gpu.GTX285(gpu.WithSharedMem(32 * 1024)),
		"seg":   gpu.GTX285(gpu.WithMinSegment(16)),
	}
	paths := map[string]string{}
	for name, cfg := range knobs {
		p := CacheFile(dir, cfg)
		if prev, dup := paths[p]; dup {
			t.Errorf("%s and %s share cache file %s", name, prev, p)
		}
		paths[p] = name
	}
	renamed := base
	renamed.Name = "fleet-alias"
	if CacheFile(dir, renamed) != CacheFile(dir, base) {
		t.Error("renaming a configuration must not move its cache slot")
	}
}

// TestCachedCalibrationRoundTrip: SaveCachedCalibration creates the
// directory and LoadCachedCalibration finds the entry for the same
// hardware only.
func TestCachedCalibrationRoundTrip(t *testing.T) {
	c := cal(t)
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	if err := c.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadCachedCalibration(dir, c.Config())
	if !ok {
		t.Fatal("cache miss for the configuration that was just saved")
	}
	if got.Config().Name != c.Config().Name {
		t.Error("config not persisted")
	}
	if _, ok := LoadCachedCalibration(dir, gpu.GTX285(gpu.WithBanks(17))); ok {
		t.Error("cache for the stock device served a 17-bank variant")
	}
}

// TestCachedCalibrationCorruptionIsAMiss: a corrupt, truncated or
// fingerprint-mismatched cache file reads as a miss (fall back to
// fresh calibration), never as an error or as wrong curves.
func TestCachedCalibrationCorruptionIsAMiss(t *testing.T) {
	c := cal(t)
	cfg := c.Config()
	dir := t.TempDir()
	if err := c.SaveCachedCalibration(dir); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(CacheFile(dir, cfg))
	if err != nil {
		t.Fatal(err)
	}
	for name, blob := range map[string][]byte{
		"garbage":   []byte("not json at all"),
		"truncated": good[:len(good)/2],
		"empty":     {},
	} {
		if err := os.WriteFile(CacheFile(dir, cfg), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := LoadCachedCalibration(dir, cfg); ok {
			t.Errorf("%s cache file served as a hit", name)
		}
	}
	// A valid file sitting in the wrong fingerprint slot (e.g. a
	// manual rename) must also miss: the embedded hardware is not the
	// requested hardware.
	other := gpu.GTX285(gpu.WithBanks(17))
	if err := os.WriteFile(CacheFile(dir, other), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadCachedCalibration(dir, other); ok {
		t.Error("stock-device curves served for the 17-bank variant")
	}
	// And a missing directory is a plain miss.
	if _, ok := LoadCachedCalibration(filepath.Join(dir, "nope"), cfg); ok {
		t.Error("missing directory served as a hit")
	}
}

func TestLoadCalibrationRejectsCorruption(t *testing.T) {
	c := cal(t)
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		[]byte("not json"),
		[]byte(`{"version":99}`),
		[]byte(`{"version":1,"config":{},"shared_tx":[]}`),
	}
	for i, bad := range cases {
		if _, err := LoadCalibration(bad); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Truncated shared curve.
	var m map[string]any
	if err := jsonUnmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["shared_tx"] = []float64{1, 2}
	bad, err := jsonMarshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibration(bad); err == nil {
		t.Error("short shared curve accepted")
	}
}
