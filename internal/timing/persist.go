package timing

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// calibrationJSON is the serialized form of a Calibration: the
// configuration it was measured on, the measured per-warp curves,
// and any synthetic global-memory benchmark results cached so far
// (keyed "blocks/threads/transactions").
type calibrationJSON struct {
	Version  int                       `json:"version"`
	Config   gpu.Config                `json:"config"`
	Instr    [isa.NumClasses][]float64 `json:"instr"`
	SharedTx []float64                 `json:"shared_tx"`
	Global   map[string]float64        `json:"global,omitempty"`
}

const persistVersion = 1

// MarshalJSON serializes the calibration curves.
func (c *Calibration) MarshalJSON() ([]byte, error) {
	c.mu.Lock()
	global := make(map[string]float64, len(c.gcache))
	for k, v := range c.gcache { //gpuperf:unordered map-to-map copy; the JSON encoder sorts the assembled map's keys
		global[fmt.Sprintf("%d/%d/%d", k.blocks, k.threads, k.trans)] = v
	}
	c.mu.Unlock()
	return json.Marshal(calibrationJSON{
		Version:  persistVersion,
		Config:   c.cfg,
		Instr:    c.instr,
		SharedTx: c.sharedTx,
		Global:   global,
	})
}

// SaveFile persists the calibration to path atomically: the JSON is
// written to a temporary file in the same directory and renamed into
// place, so a concurrent LoadCalibrationFile never observes a
// partial write and a crash never corrupts an existing cache.
// Safe to call while other goroutines use the calibration (the
// mutable global-bandwidth cache is snapshotted under its lock).
func (c *Calibration) SaveFile(path string) error {
	data, err := c.MarshalJSON()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	return nil
}

// CacheFile returns the calibration-cache path for cfg under the
// cache directory dir: one file per device fingerprint, so two
// configurations differing in any knob never share a file, while a
// renamed-but-identical configuration reuses its curves.
func CacheFile(dir string, cfg gpu.Config) string {
	return filepath.Join(dir, "cal-"+gpu.Fingerprint(cfg)+".json")
}

// LoadCachedCalibration looks up cfg's entry in the cache directory.
// A missing, unreadable, corrupt or mismatched file — the embedded
// configuration's fingerprint disagreeing with cfg's, e.g. after a
// manual rename of cache files — is a cache miss (nil, false), never
// an error: the caller falls back to a fresh calibration.
func LoadCachedCalibration(dir string, cfg gpu.Config) (*Calibration, bool) {
	cal, err := LoadCalibrationFile(CacheFile(dir, cfg))
	if err != nil || gpu.Fingerprint(cal.Config()) != gpu.Fingerprint(cfg) {
		return nil, false
	}
	return cal, true
}

// SaveCachedCalibration writes c into its fingerprint slot under dir,
// creating the directory if needed. Atomic like SaveFile.
func (c *Calibration) SaveCachedCalibration(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("timing: save calibration: %w", err)
	}
	return c.SaveFile(CacheFile(dir, c.cfg))
}

// LoadCalibrationFile reads a calibration cache written by SaveFile.
func LoadCalibrationFile(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("timing: load calibration: %w", err)
	}
	return LoadCalibration(data)
}

// LoadCalibration reconstructs a Calibration from MarshalJSON
// output, validating the embedded configuration and curve shapes.
func LoadCalibration(data []byte) (*Calibration, error) {
	var p calibrationJSON
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("timing: unsupported calibration version %d", p.Version)
	}
	if err := p.Config.Validate(); err != nil {
		return nil, fmt.Errorf("timing: embedded config: %w", err)
	}
	want := p.Config.MaxWarpsPerSM + 1
	if len(p.SharedTx) != want {
		return nil, fmt.Errorf("timing: shared curve has %d points, want %d", len(p.SharedTx), want)
	}
	c := &Calibration{cfg: p.Config, gcache: map[gkey]float64{}}
	for cls := range p.Instr {
		if len(p.Instr[cls]) != want {
			return nil, fmt.Errorf("timing: class %d curve has %d points, want %d",
				cls, len(p.Instr[cls]), want)
		}
		for w := 1; w < want; w++ {
			if p.Instr[cls][w] <= 0 {
				return nil, fmt.Errorf("timing: class %d curve not positive at %d warps", cls, w)
			}
		}
		c.instr[cls] = p.Instr[cls]
	}
	for w := 1; w < want; w++ {
		if p.SharedTx[w] <= 0 {
			return nil, fmt.Errorf("timing: shared curve not positive at %d warps", w)
		}
	}
	c.sharedTx = p.SharedTx
	for k, v := range p.Global { //gpuperf:unordered map-to-map copy; cache lookups are keyed, never ordered
		var g gkey
		if _, err := fmt.Sscanf(k, "%d/%d/%d", &g.blocks, &g.threads, &g.trans); err != nil {
			return nil, fmt.Errorf("timing: bad global cache key %q", k)
		}
		c.gcache[g] = v
	}
	return c, nil
}
