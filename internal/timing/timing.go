// Package timing turns microbenchmark measurements into the
// throughput curves at the heart of the paper's model (§3-§4):
//
//   - instruction throughput per cost class as a function of warps
//     per SM (Fig. 2 left),
//   - shared-memory bandwidth as a function of warps per SM
//     (Fig. 2 right),
//   - global-memory bandwidth as a function of (blocks, threads per
//     block, transactions per thread) via an on-demand synthetic
//     benchmark of the same configuration (Fig. 3), cached per
//     configuration.
//
// The paper measures these on a GTX 285; this package measures them
// on the device simulator, preserving the methodology: the model
// never peeks at the simulator's internals, only at benchmark
// results.
package timing

import (
	"fmt"
	"sync"

	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/microbench"
)

// chainOps picks the representative opcode benchmarked per class.
var chainOps = [isa.NumClasses]isa.Opcode{
	isa.ClassI:   isa.OpFMUL,
	isa.ClassII:  isa.OpFMAD,
	isa.ClassIII: isa.OpRCP,
	isa.ClassIV:  isa.OpDFMA,
}

// Calibration holds the measured throughput curves for one GPU
// configuration.
type Calibration struct {
	cfg gpu.Config

	// instr[class][w] is chip-level warp-instructions/s with w warps
	// resident per SM (index 0 unused).
	instr [isa.NumClasses][]float64
	// sharedTx[w] is chip-level shared-memory transactions/s
	// (half-warp transactions, the unit bank conflicts multiply).
	sharedTx []float64

	mu     sync.Mutex
	gcache map[gkey]float64
}

type gkey struct {
	blocks, threads, trans int
}

// Config returns the calibrated configuration.
func (c *Calibration) Config() gpu.Config { return c.cfg }

// MaxWarps returns the largest calibrated warp count.
func (c *Calibration) MaxWarps() int { return len(c.sharedTx) - 1 }

const (
	chainLen   = 384
	sharedIter = 24
)

// Calibrate measures all curves for cfg by running the §4
// microbenchmarks on the device simulator. The per-SM curves are
// measured on a single-SM slice of cfg (SM behaviour is independent
// of the SM count) and scaled to the chip.
func Calibrate(cfg gpu.Config) (*Calibration, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Calibration{cfg: cfg, gcache: map[gkey]float64{}}

	one := cfg
	one.Name += "-1sm"
	one.NumSMs = 1
	one.SMsPerCluster = 1

	maxW := cfg.MaxWarpsPerSM
	scale := float64(cfg.NumSMs)

	// Instruction curves.
	for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
		prog, err := microbench.InstrChain(chainOps[cls], chainLen)
		if err != nil {
			return nil, err
		}
		curve := make([]float64, maxW+1)
		for w := 1; w <= maxW; w++ {
			grid, block, ok := blocksFor(one, w)
			if !ok {
				// Not launchable (e.g. odd warp count above the
				// per-block maximum): interpolate later.
				continue
			}
			res, err := device.Run(one, barra.Launch{Prog: prog, Grid: grid, Block: block}, barra.NewMemory(4096))
			if err != nil {
				return nil, fmt.Errorf("timing: instruction microbenchmark (%s, %d warps): %w", cls, w, err)
			}
			// Count only the chain's class to exclude prologue noise.
			curve[w] = float64(res.ByClass[cls]) / res.Seconds * scale
			if cls == isa.ClassII {
				// The chain itself is ClassII; prologue is too —
				// negligible (2 instructions vs chainLen).
				curve[w] = float64(res.WarpInstrs) / res.Seconds * scale
			}
		}
		fillGaps(curve)
		c.instr[cls] = curve
	}

	// Shared-memory curve, measured in half-warp transactions/s.
	prog, err := microbench.SharedCopy(sharedIter, 1)
	if err != nil {
		return nil, err
	}
	curve := make([]float64, maxW+1)
	for w := 1; w <= maxW; w++ {
		grid, block, ok := blocksFor(one, w)
		if !ok {
			continue
		}
		res, err := device.Run(one, barra.Launch{Prog: prog, Grid: grid, Block: block}, barra.NewMemory(4096))
		if err != nil {
			return nil, fmt.Errorf("timing: shared microbenchmark (%d warps): %w", w, err)
		}
		// The benchmark is conflict-free, so bytes/64 is the
		// half-warp transaction count.
		curve[w] = res.SharedBandwidth() / 64 * scale
	}
	fillGaps(curve)
	c.sharedTx = curve
	return c, nil
}

// blocksFor splits w warps-per-SM into a launchable (grid, block)
// on a one-SM device.
func blocksFor(one gpu.Config, w int) (grid, block int, ok bool) {
	maxWarpsPerBlock := one.MaxThreadsPerBlock / gpu.WarpSize
	if w <= maxWarpsPerBlock {
		return 1, w * gpu.WarpSize, true
	}
	if w%2 == 0 && w/2 <= maxWarpsPerBlock {
		return 2, w / 2 * gpu.WarpSize, true
	}
	return 0, 0, false
}

// fillGaps linearly interpolates zero entries from their calibrated
// neighbours (and clamps the edges).
func fillGaps(curve []float64) {
	last := 0
	for i := 1; i < len(curve); i++ {
		if curve[i] == 0 {
			continue
		}
		if last > 0 && i-last > 1 {
			for j := last + 1; j < i; j++ {
				f := float64(j-last) / float64(i-last)
				curve[j] = curve[last]*(1-f) + curve[i]*f
			}
		}
		if last == 0 && i > 1 {
			for j := 1; j < i; j++ {
				curve[j] = curve[i]
			}
		}
		last = i
	}
	for i := last + 1; i < len(curve); i++ {
		curve[i] = curve[last]
	}
}

func clampWarps(w, max int) int {
	if w < 1 {
		return 1
	}
	if w > max {
		return max
	}
	return w
}

// InstrThroughput returns chip-level warp-instructions/s for the
// class with warpsPerSM resident warps.
func (c *Calibration) InstrThroughput(cls isa.Class, warpsPerSM int) float64 {
	w := clampWarps(warpsPerSM, c.MaxWarps())
	return c.instr[cls][w]
}

// SharedTxRate returns chip-level shared-memory transactions/s
// (half-warp transactions) at warpsPerSM resident warps.
func (c *Calibration) SharedTxRate(warpsPerSM int) float64 {
	w := clampWarps(warpsPerSM, c.MaxWarps())
	return c.sharedTx[w]
}

// SharedBandwidth returns the conflict-free shared-memory bandwidth
// in bytes/s at warpsPerSM resident warps (the Fig. 2 right axis).
func (c *Calibration) SharedBandwidth(warpsPerSM int) float64 {
	return c.SharedTxRate(warpsPerSM) * 64
}

// maxSyntheticTrans caps the per-thread transaction count of the
// synthetic benchmark: bandwidth saturates in that parameter, and
// the cap keeps on-demand calibration runs cheap.
const maxSyntheticTrans = 64

// GlobalBandwidth returns the sustained global-memory bandwidth in
// bytes/s for a kernel with the given launch geometry and per-thread
// transaction count, by running (and caching) a synthetic benchmark
// of the same configuration — the paper's §4.3 methodology.
func (c *Calibration) GlobalBandwidth(blocks, threadsPerBlock, transPerThread int) (float64, error) {
	if blocks <= 0 || threadsPerBlock <= 0 {
		return 0, fmt.Errorf("timing: bad geometry %dx%d", blocks, threadsPerBlock)
	}
	if transPerThread < 1 {
		transPerThread = 1
	}
	if transPerThread > maxSyntheticTrans {
		transPerThread = maxSyntheticTrans
	}
	// Round the block size to a warp multiple (partial warps do not
	// change bandwidth behaviour).
	threadsPerBlock = (threadsPerBlock + gpu.WarpSize - 1) / gpu.WarpSize * gpu.WarpSize
	if threadsPerBlock > c.cfg.MaxThreadsPerBlock {
		threadsPerBlock = c.cfg.MaxThreadsPerBlock
	}
	k := gkey{blocks, threadsPerBlock, transPerThread}
	c.mu.Lock()
	if bw, ok := c.gcache[k]; ok {
		c.mu.Unlock()
		return bw, nil
	}
	c.mu.Unlock()

	const memBytes = 1 << 22
	prog, err := microbench.GlobalStream(transPerThread, blocks*threadsPerBlock, memBytes)
	if err != nil {
		return 0, err
	}
	res, err := device.Run(c.cfg, barra.Launch{Prog: prog, Grid: blocks, Block: threadsPerBlock}, barra.NewMemory(memBytes))
	if err != nil {
		return 0, fmt.Errorf("timing: global synthetic benchmark %v: %w", k, err)
	}
	bw := res.GlobalBandwidth()
	c.mu.Lock()
	c.gcache[k] = bw
	c.mu.Unlock()
	return bw, nil
}
