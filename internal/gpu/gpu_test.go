package gpu

import (
	"math"
	"testing"
)

func TestGTX285Defaults(t *testing.T) {
	c := GTX285()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSMs != 30 || c.SPsPerSM != 8 || c.SMsPerCluster != 3 {
		t.Errorf("processor counts: %d/%d/%d", c.NumSMs, c.SPsPerSM, c.SMsPerCluster)
	}
	if c.NumClusters() != 10 {
		t.Errorf("NumClusters = %d, want 10", c.NumClusters())
	}
	if c.SharedMemPerSM != 16*1024 || c.SharedMemBanks != 16 || c.RegistersPerSM != 16384 {
		t.Errorf("memory resources wrong")
	}
	if c.MaxBlocksPerSM != 8 || c.MaxWarpsPerSM != 32 {
		t.Errorf("occupancy ceilings wrong")
	}
}

func TestPeakNumbersMatchPaper(t *testing.T) {
	c := GTX285()
	// Paper §4.1: peak MAD throughput 8·1.48GHz·30/32 ≈ 11.1 Ginstr/s.
	mad := c.PeakInstrThroughput(8) / 1e9
	if math.Abs(mad-11.1) > 0.15 {
		t.Errorf("peak MAD throughput = %.2f Ginstr/s, want ≈11.1", mad)
	}
	// Peak single-precision ≈ 710 GFLOPS.
	if g := c.PeakGFLOPS(); math.Abs(g-710) > 5 {
		t.Errorf("peak GFLOPS = %.1f, want ≈710", g)
	}
	// §4.2: shared memory peak ≈ 1420 GB/s.
	if bw := c.PeakSharedBandwidth() / 1e9; math.Abs(bw-1417) > 10 {
		t.Errorf("peak shared bandwidth = %.0f GB/s, want ≈1420", bw)
	}
	// §4.3: global memory peak ≈ 160 GB/s.
	if bw := c.PeakGlobalBandwidth() / 1e9; math.Abs(bw-159) > 2 {
		t.Errorf("peak global bandwidth = %.0f GB/s, want ≈159", bw)
	}
}

func TestOptions(t *testing.T) {
	c := GTX285(WithMaxBlocks(16), WithBanks(17), WithRegisters(32768),
		WithSharedMem(32*1024), WithMinSegment(16), WithEarlyRelease(true))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MaxBlocksPerSM != 16 || c.SharedMemBanks != 17 || c.RegistersPerSM != 32768 ||
		c.SharedMemPerSM != 32*1024 || c.MinSegmentBytes != 16 || !c.EarlyRelease {
		t.Errorf("options not applied: %+v", c)
	}
	if c.Name == "GTX285" {
		t.Error("variant name not annotated")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.SMsPerCluster = 4 }, // 30 % 4 != 0
		func(c *Config) { c.SharedMemBanks = 0 },
		func(c *Config) { c.MaxWarpsPerSM = 0 },
		func(c *Config) { c.MinSegmentBytes = 48 }, // not a power of two
		func(c *Config) { c.MaxSegmentBytes = 16 }, // below min
		func(c *Config) { c.CoreClockHz = 0 },
	}
	for i, m := range mutations {
		c := GTX285()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVariantDevices(t *testing.T) {
	for _, c := range []Config{GTX280(), TeslaC1060()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	g285, g280, tesla := GTX285(), GTX280(), TeslaC1060()
	// Peaks scale with clocks: 285 > 280 = C1060 on compute;
	// 285 > 280 > C1060 on memory bandwidth.
	if !(g285.PeakGFLOPS() > g280.PeakGFLOPS()) {
		t.Error("GTX285 not faster than GTX280")
	}
	if g280.PeakGFLOPS() != tesla.PeakGFLOPS() {
		t.Error("GTX280 and C1060 compute peaks differ")
	}
	if !(g285.PeakGlobalBandwidth() > g280.PeakGlobalBandwidth() &&
		g280.PeakGlobalBandwidth() > tesla.PeakGlobalBandwidth()) {
		t.Error("memory bandwidth ordering wrong")
	}
	// GTX 280 official peak ≈ 622 GFLOPS (MAD only), ours counts
	// 8 SPs × 2 flops: 1.296·30·8·2·32/32 = 622.
	if g := g280.PeakGFLOPS(); g < 615 || g > 630 {
		t.Errorf("GTX280 peak = %v", g)
	}
	// C1060 bandwidth ≈ 102 GB/s.
	if bw := tesla.PeakGlobalBandwidth() / 1e9; bw < 100 || bw > 105 {
		t.Errorf("C1060 bandwidth = %v", bw)
	}
}

func TestOptionsApplyToVariants(t *testing.T) {
	c := GTX280(WithBanks(17))
	if c.SharedMemBanks != 17 {
		t.Error("option not applied to GTX280")
	}
}

// TestFingerprint: the digest is stable for one configuration,
// ignores Name, and changes when any single knob changes — the
// property the calibration cache directory relies on for never
// reusing curves across different hardware.
func TestFingerprint(t *testing.T) {
	base := GTX285()
	if Fingerprint(base) != Fingerprint(GTX285()) {
		t.Error("fingerprint not deterministic")
	}
	renamed := base
	renamed.Name = "something-else"
	if Fingerprint(renamed) != Fingerprint(base) {
		t.Error("fingerprint should ignore the configuration name")
	}
	mutations := map[string]func(*Config){
		"sms":       func(c *Config) { c.NumSMs = 6 },
		"banks":     func(c *Config) { c.SharedMemBanks = 17 },
		"registers": func(c *Config) { c.RegistersPerSM *= 2 },
		"smem":      func(c *Config) { c.SharedMemPerSM *= 2 },
		"segment":   func(c *Config) { c.MinSegmentBytes = 16 },
		"memclock":  func(c *Config) { c.MemClockHz *= 0.9 },
		"early":     func(c *Config) { c.EarlyRelease = true },
		"blocks":    func(c *Config) { c.MaxBlocksPerSM = 16 },
	}
	seen := map[string]string{Fingerprint(base): "base"}
	for knob, m := range mutations {
		c := base
		m(&c)
		fp := Fingerprint(c)
		if prev, dup := seen[fp]; dup {
			t.Errorf("knob %q collides with %q: fingerprint %s", knob, prev, fp)
		}
		seen[fp] = knob
	}
	if fp := Fingerprint(base); len(fp) != 32 {
		t.Errorf("fingerprint %q should be 32 hex chars", fp)
	}
}
