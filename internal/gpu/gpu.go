// Package gpu describes the hardware resources and architectural
// parameters of the simulated GPU.
//
// The default configuration models the NVIDIA GeForce GTX 285
// (GT200b, compute capability 1.3) studied by Zhang & Owens (HPCA
// 2011): 30 streaming multiprocessors grouped into 10 clusters of 3,
// 8 scalar processors per SM, 16 KB of shared memory organized in 16
// banks, a 16,384-entry register file, and a 512-bit GDDR3 memory
// interface. Architectural-improvement variants proposed in the paper
// (more resident blocks, a prime number of banks, larger register
// files, finer memory-transaction granularity) are expressed as
// functional options so ablation experiments can construct modified
// machines.
package gpu

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// WarpSize is the number of threads that execute one instruction in
// lockstep. All CUDA-class architectures modeled here use 32.
const WarpSize = 32

// HalfWarp is the memory-transaction issue granularity of compute
// capability 1.x devices: global memory coalescing is evaluated per
// group of 16 consecutive threads.
const HalfWarp = WarpSize / 2

// Config describes one GPU. The zero value is not useful; construct
// configurations with GTX285 and the With* options.
type Config struct {
	// Name identifies the configuration in reports.
	Name string

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SPsPerSM is the number of scalar processors (CUDA cores) in
	// one SM. Type II instructions (mov/add/mad) issue on these.
	SPsPerSM int
	// SMsPerCluster is the number of SMs sharing one texture/memory
	// pipeline (TPC). The GTX 285 groups 30 SMs into 10 clusters of
	// 3; the shared pipeline produces the sawtooth in paper Fig. 3.
	SMsPerCluster int

	// CoreClockHz is the shader clock that times the instruction
	// pipeline and shared memory (1.476 GHz on the GTX 285).
	CoreClockHz float64
	// MemClockHz is the effective DRAM data clock (2.484 GHz).
	MemClockHz float64
	// MemBusBits is the width of the DRAM interface (512).
	MemBusBits int

	// RegistersPerSM is the size of the per-SM register file in
	// 32-bit registers (16,384 on CC 1.3).
	RegistersPerSM int
	// SharedMemPerSM is bytes of shared memory per SM (16 KB).
	SharedMemPerSM int
	// SharedMemBanks is the number of shared-memory banks (16).
	SharedMemBanks int
	// BankWidthBytes is the width of one shared-memory bank word (4).
	BankWidthBytes int

	// MaxThreadsPerSM, MaxBlocksPerSM and MaxWarpsPerSM are the
	// hardware occupancy ceilings (512 / 8 / 32 on CC 1.3).
	MaxThreadsPerSM int
	MaxBlocksPerSM  int
	MaxWarpsPerSM   int
	// MaxThreadsPerBlock is the largest legal block (512).
	MaxThreadsPerBlock int

	// MinSegmentBytes is the smallest global-memory transaction the
	// coalescer may issue (32 bytes on CC 1.2/1.3). Segment sizes
	// step by powers of two up to MaxSegmentBytes.
	MinSegmentBytes int
	// MaxSegmentBytes is the largest coalesced transaction (128).
	MaxSegmentBytes int

	// ALUPipelineDepth is the depth of the arithmetic pipeline in
	// issue slots; it sets how many independent warps saturate Type
	// II throughput (the paper infers ~6 from microbenchmarks).
	ALUPipelineDepth int
	// SharedPipelineDepth is the (deeper) shared-memory pipeline
	// depth; the paper observes shared memory needs more warps than
	// the ALU to saturate.
	SharedPipelineDepth int
	// GlobalLatencyCycles is the uncontended global-memory round
	// trip in core cycles (~500 on GT200).
	GlobalLatencyCycles int

	// EarlyRelease, when true, models the architectural improvement
	// of §5.2: a block's per-warp resources are released as soon as
	// the warp exits, so waiting blocks can be scheduled before the
	// whole block finishes.
	EarlyRelease bool
}

// GTX285 returns the configuration of the paper's test platform,
// modified by any options.
func GTX285(opts ...Option) Config {
	c := Config{
		Name:                "GTX285",
		NumSMs:              30,
		SPsPerSM:            8,
		SMsPerCluster:       3,
		CoreClockHz:         1.476e9,
		MemClockHz:          2.484e9,
		MemBusBits:          512,
		RegistersPerSM:      16384,
		SharedMemPerSM:      16 * 1024,
		SharedMemBanks:      16,
		BankWidthBytes:      4,
		MaxThreadsPerSM:     1024,
		MaxBlocksPerSM:      8,
		MaxWarpsPerSM:       32,
		MaxThreadsPerBlock:  512,
		MinSegmentBytes:     32,
		MaxSegmentBytes:     128,
		ALUPipelineDepth:    6,
		SharedPipelineDepth: 9,
		GlobalLatencyCycles: 500,
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Option mutates a Config; used for the paper's architectural
// ablations.
type Option func(*Config)

// WithMaxBlocks raises or lowers the resident-block ceiling
// (paper §5.1 suggests 16).
func WithMaxBlocks(n int) Option {
	return func(c *Config) { c.MaxBlocksPerSM = n; c.Name += fmt.Sprintf("+blocks%d", n) }
}

// WithBanks changes the shared-memory bank count (paper §5.2 suggests
// a prime such as 17 to avoid stride conflicts).
func WithBanks(n int) Option {
	return func(c *Config) { c.SharedMemBanks = n; c.Name += fmt.Sprintf("+banks%d", n) }
}

// WithRegisters scales the per-SM register file.
func WithRegisters(n int) Option {
	return func(c *Config) { c.RegistersPerSM = n; c.Name += fmt.Sprintf("+regs%d", n) }
}

// WithSharedMem scales the per-SM shared memory, in bytes.
func WithSharedMem(n int) Option {
	return func(c *Config) { c.SharedMemPerSM = n; c.Name += fmt.Sprintf("+smem%d", n) }
}

// WithMinSegment changes the smallest global-memory transaction;
// paper §5.3 evaluates 16 bytes against the hardware's 32.
func WithMinSegment(n int) Option {
	return func(c *Config) { c.MinSegmentBytes = n; c.Name += fmt.Sprintf("+seg%d", n) }
}

// WithEarlyRelease enables the early-resource-release improvement of
// paper §5.2.
func WithEarlyRelease(on bool) Option {
	return func(c *Config) {
		c.EarlyRelease = on
		if on {
			c.Name += "+earlyrelease"
		}
	}
}

// NumClusters is the number of SM clusters sharing memory pipelines.
func (c Config) NumClusters() int { return c.NumSMs / c.SMsPerCluster }

// PeakInstrThroughput returns the theoretical peak throughput, in
// warp-instructions per second, of an instruction class executed on
// units functional units per SM:
//
//	units · coreClock · numSMs / warpSize
//
// For MAD on the GTX 285 this is 8·1.476 GHz·30/32 ≈ 11.1 Ginstr/s
// (paper §4.1).
func (c Config) PeakInstrThroughput(units int) float64 {
	return float64(units) * c.CoreClockHz * float64(c.NumSMs) / WarpSize
}

// PeakSharedBandwidth returns the theoretical shared-memory
// bandwidth in bytes/s: SPs · SMs · coreClock · bankWidth
// (≈1420 GB/s on the GTX 285, paper §4.2).
func (c Config) PeakSharedBandwidth() float64 {
	return float64(c.SPsPerSM) * float64(c.NumSMs) * c.CoreClockHz * float64(c.BankWidthBytes)
}

// PeakGlobalBandwidth returns the theoretical DRAM bandwidth in
// bytes/s: memClock · busWidth/8 (≈159 GB/s on the GTX 285,
// paper §4.3).
func (c Config) PeakGlobalBandwidth() float64 {
	return c.MemClockHz * float64(c.MemBusBits) / 8
}

// PeakGFLOPS returns the theoretical single-precision peak assuming
// one MAD (2 flops) per SP per cycle (≈710 GFLOPS, paper §4.1).
func (c Config) PeakGFLOPS() float64 {
	return c.PeakInstrThroughput(c.SPsPerSM) * WarpSize * 2 / 1e9
}

// Validate reports a configuration whose parameters are inconsistent
// (non-positive resources, cluster mismatch, or illegal segment
// sizes).
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0 || c.SPsPerSM <= 0 || c.SMsPerCluster <= 0:
		return fmt.Errorf("gpu: non-positive processor counts in %q", c.Name)
	case c.NumSMs%c.SMsPerCluster != 0:
		return fmt.Errorf("gpu: %d SMs not divisible into clusters of %d", c.NumSMs, c.SMsPerCluster)
	case c.RegistersPerSM <= 0 || c.SharedMemPerSM <= 0 || c.SharedMemBanks <= 0:
		return fmt.Errorf("gpu: non-positive memory resources in %q", c.Name)
	case c.MaxThreadsPerSM <= 0 || c.MaxBlocksPerSM <= 0 || c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("gpu: non-positive occupancy ceilings in %q", c.Name)
	case c.MinSegmentBytes <= 0 || c.MaxSegmentBytes < c.MinSegmentBytes:
		return fmt.Errorf("gpu: bad segment sizes [%d,%d]", c.MinSegmentBytes, c.MaxSegmentBytes)
	case c.MinSegmentBytes&(c.MinSegmentBytes-1) != 0 || c.MaxSegmentBytes&(c.MaxSegmentBytes-1) != 0:
		return fmt.Errorf("gpu: segment sizes must be powers of two, got [%d,%d]", c.MinSegmentBytes, c.MaxSegmentBytes)
	case c.CoreClockHz <= 0 || c.MemClockHz <= 0 || c.MemBusBits <= 0:
		return fmt.Errorf("gpu: non-positive clocks in %q", c.Name)
	}
	return nil
}

// Fingerprint returns a stable hexadecimal digest of every
// architectural parameter of c except its Name. Two configurations
// differing in any knob — bank count, register file, clocks, segment
// sizes, early release — have different fingerprints; renaming a
// configuration does not change its fingerprint. Calibration caches
// are keyed by this digest, so curves measured for one machine are
// never reused for a different one, however the machines are named.
func Fingerprint(c Config) string {
	c.Name = ""
	// Struct fields marshal in declaration order, so the JSON form is
	// canonical for a given package version.
	blob, err := json.Marshal(c)
	if err != nil {
		// Config is a flat struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("gpu: fingerprint: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

// GTX280 returns the GeForce GTX 280 — the GTX 285's predecessor:
// the same GT200 organization at lower clocks (1.296 GHz shader,
// 2.214 GHz effective GDDR3 on the same 512-bit bus).
func GTX280(opts ...Option) Config {
	c := GTX285()
	c.Name = "GTX280"
	c.CoreClockHz = 1.296e9
	c.MemClockHz = 2.214e9
	for _, o := range opts {
		o(&c)
	}
	return c
}

// TeslaC1060 returns the Tesla C1060 compute board: GT200 at
// 1.296 GHz with 800 MHz (1.6 GHz effective) GDDR3 — lower memory
// bandwidth than the GeForce parts, which shifts memory-bound
// crossovers.
func TeslaC1060(opts ...Option) Config {
	c := GTX285()
	c.Name = "TeslaC1060"
	c.CoreClockHz = 1.296e9
	c.MemClockHz = 1.6e9
	for _, o := range opts {
		o(&c)
	}
	return c
}
