package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in text exposition format,
// families sorted by name and children in registration order, so the
// output is deterministic for a given call history.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	children := make([]*child, 0, len(f.order))
	for _, k := range f.order {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case KindCounter:
			if c.fn != nil {
				writeSample(w, f.name, f.labels, c.labelValues, "", formatFloat(c.fn()))
			} else {
				writeSample(w, f.name, f.labels, c.labelValues, "", strconv.FormatInt(c.counter.Value(), 10))
			}
		case KindGauge:
			if c.fn != nil {
				writeSample(w, f.name, f.labels, c.labelValues, "", formatFloat(c.fn()))
			} else {
				writeSample(w, f.name, f.labels, c.labelValues, "", formatFloat(c.gauge.Value()))
			}
		case KindHistogram:
			h := c.hist
			var cum int64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(w, f.name+"_bucket", f.labels, c.labelValues,
					`le="`+formatFloat(ub)+`"`, strconv.FormatInt(cum, 10))
			}
			writeSample(w, f.name+"_bucket", f.labels, c.labelValues,
				`le="+Inf"`, strconv.FormatInt(h.Count(), 10))
			writeSample(w, f.name+"_sum", f.labels, c.labelValues, "", formatFloat(h.Sum()))
			writeSample(w, f.name+"_count", f.labels, c.labelValues, "", strconv.FormatInt(h.Count(), 10))
		}
	}
}

func writeSample(w *bufio.Writer, name string, labels, values []string, extra, val string) {
	w.WriteString(name)
	if len(labels) > 0 || extra != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extra != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extra)
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(val)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// LabeledExposition pairs one scraped exposition body with the label
// value identifying its source (the router tags each worker's
// metrics with worker="<url>").
type LabeledExposition struct {
	LabelValue string
	Text       []byte
}

// MergeExpositions writes own followed by each part, injecting
// label="<part.LabelValue>" into every sample line of the parts.
// Duplicate HELP/TYPE header lines across parts are dropped (the
// first wins), so the merged document stays a valid exposition even
// when every worker exports the same families.
func MergeExpositions(w io.Writer, label string, own []byte, parts []LabeledExposition) error {
	bw := bufio.NewWriter(w)
	seenHeader := make(map[string]bool)
	writeBody := func(text []byte, labelValue string) {
		sc := bufio.NewScanner(bytes.NewReader(text))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
			case strings.HasPrefix(line, "#"):
				if seenHeader[line] {
					continue
				}
				seenHeader[line] = true
				bw.WriteString(line)
				bw.WriteByte('\n')
			default:
				bw.WriteString(injectLabel(line, label, labelValue))
				bw.WriteByte('\n')
			}
		}
	}
	writeBody(own, "")
	for _, p := range parts {
		writeBody(p.Text, p.LabelValue)
	}
	return bw.Flush()
}

// injectLabel rewrites one sample line to carry label="value". Lines
// already labeled get the pair prepended inside the brace; bare
// samples gain a brace set before the value.
func injectLabel(line, label, value string) string {
	if value == "" {
		return line
	}
	pair := label + `="` + escapeLabel(value) + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		rest := line[i+1:]
		if strings.HasPrefix(rest, "}") {
			return line[:i+1] + pair + rest
		}
		return line[:i+1] + pair + "," + rest
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + "{" + pair + "}" + line[i:]
	}
	return line
}
