package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 8, 100} {
		h.Observe(v)
	}
	// Per-bucket (non-cumulative) expectations: (-inf,1]=2, (1,2]=2,
	// (2,4]=2, (4,+inf)=2.
	want := []int64{2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket le=%g count = %d, want %d", h.bounds[i], got, w)
		}
	}
	if got := h.inf.Load(); got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
	if got := h.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+8+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 4 observations in (1,2]: the median target is 2 observations
	// deep, i.e. halfway through the bucket -> 1.5 by interpolation.
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(1) = %g, want 2", got)
	}

	// Everything beyond the last finite bound clamps to it.
	h2 := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h2.Observe(50)
	}
	if got := h2.Quantile(0.99); math.Abs(got-4) > 1e-9 {
		t.Errorf("overflow Quantile(0.99) = %g, want 4", got)
	}

	var empty Histogram
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %g, want NaN", got)
	}
}

func TestHistogramBoundsSorted(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	if h.counts[0].Load() != 0 || h.counts[1].Load() != 1 {
		t.Errorf("unsorted bounds not normalized: %v", h.bounds)
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_total", "")
	vec := reg.NewCounterVec("test_labeled_total", "", "op")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
				vec.With("analyze").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("analyze").Value(); got != workers*perWorker {
		t.Errorf("labeled counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative Add = %d, want 5", got)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %g, want 8", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("same_total", "h")
	b := reg.NewCounter("same_total", "h")
	if a != b {
		t.Error("re-registering the same counter returned a new instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind did not panic")
		}
	}()
	reg.NewGauge("same_total", "h")
}
