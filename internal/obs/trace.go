package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is one request's span collection plus string annotations
// (kernel, device, cache status...). Spans record wall-clock phases;
// the tree is rendered only for slow requests, so the steady-state
// cost is a few appends under a mutex.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
	attrs map[string]string
}

// Span is one named phase inside a trace. A Span started without a
// trace in the context is detached: it still times its phase (so
// Diagnostics phase breakdowns work for bare library calls) but
// appears in no tree.
type Span struct {
	name   string
	parent *Span

	mu    sync.Mutex
	start time.Time
	end   time.Time
}

// NewTrace starts an empty trace with the given request id.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now(), attrs: make(map[string]string)}
}

// ID returns the request id the trace was created with.
func (t *Trace) ID() string { return t.id }

// Start returns the trace creation time.
func (t *Trace) Start() time.Time { return t.start }

// Annotate attaches a key=value attribute (last write wins).
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs[key] = value
	t.mu.Unlock()
}

// Attr returns the annotation for key, or "".
func (t *Trace) Attr(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attrs[key]
}

type traceKey struct{}
type spanKey struct{}

// WithTrace installs tr in the context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StartSpan opens a span named name. If the context carries a trace
// the span joins its tree (nested under the context's current span)
// and the returned context carries it as the new current span;
// otherwise the span is detached and the context is returned as-is.
// Callers must End the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, sp
	}
	sp.parent, _ = ctx.Value(spanKey{}).(*Span)
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's phase name.
func (s *Span) Name() string { return s.name }

// Duration returns end-start, or time-since-start for an open span.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

func (s *Span) ended() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end, !s.end.IsZero()
}

// Phases sums ended spans by name into a seconds map — the
// Result.Diagnostics phase breakdown. Open spans are skipped so the
// map only ever reports completed work.
func (t *Trace) Phases() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]float64, len(spans))
	for _, sp := range spans {
		if _, ok := sp.ended(); ok {
			out[sp.name] += sp.Duration().Seconds()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Orphans lists span names that never ended, or that ended after
// their parent — both indicate a phase boundary bug.
func (t *Trace) Orphans() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	var out []string
	for _, sp := range spans {
		end, ok := sp.ended()
		if !ok {
			out = append(out, sp.name)
			continue
		}
		if sp.parent != nil {
			if pend, pok := sp.parent.ended(); pok && end.After(pend) {
				out = append(out, sp.name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Tree renders the span forest with one indented line per span, in
// start order — the payload of a slow-request log entry.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	attrs := make(map[string]string, len(t.attrs))
	for k, v := range t.attrs {
		attrs[k] = v
	}
	t.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", t.id)
	if len(attrs) > 0 {
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, attrs[k])
		}
	}
	b.WriteByte('\n')

	depth := func(sp *Span) int {
		d := 0
		for p := sp.parent; p != nil; p = p.parent {
			d++
		}
		return d
	}
	for _, sp := range spans {
		b.WriteString(strings.Repeat("  ", depth(sp)+1))
		b.WriteString(sp.name)
		b.WriteByte(' ')
		b.WriteString(sp.Duration().Round(time.Microsecond).String())
		if _, ok := sp.ended(); !ok {
			b.WriteString(" [unfinished]")
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// NewRequestID returns a 16-hex-char random id for X-Request-ID.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback keeps the middleware total rather than crashing.
		return "0000000000000000"
	}
	return hex.EncodeToString(buf[:])
}
