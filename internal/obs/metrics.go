// Package obs is the service's observability core: atomic counters,
// gauges, fixed-bucket latency histograms with a Prometheus
// text-format exporter, and request-scoped span traces carried via
// context.Context. It depends only on the standard library and is
// safe for concurrent use; the record paths (Counter.Add,
// Gauge.Set, Histogram.Observe) do not allocate, so instruments can
// sit next to the simulator hot loop without disturbing the
// zero-alloc pin.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets spans 500µs..60s — wide enough for a cache hit
// (sub-millisecond) and a cold calibration (tens of seconds) on the
// same instrument.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Kind discriminates metric families for the TYPE exposition line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0; negative deltas
// are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta (CAS loop; lock-free and alloc-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-at-export
// buckets and tracks their sum. Observe is lock-free and alloc-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	total   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~20) and a scan over a
	// resident slice is cheaper than a branchy binary search.
	idx := -1
	for i, ub := range h.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	if idx < 0 {
		h.inf.Add(1)
	} else {
		h.counts[idx].Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the owning bucket, the same way Prometheus' histogram_quantile
// does. Values in the +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i, ub := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum+n) >= target && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (target - float64(cum)) / float64(n)
			return lower + (ub-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// child is one labeled instance inside a family: exactly one of the
// value fields is live, matching the family kind.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	fn          func() float64 // GaugeFunc / CounterFunc callback
	hist        *Histogram
}

// family groups all children sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Construction is get-or-create: asking for an
// existing name with a matching shape returns the same instrument, so
// wiring the same registry through two layers is safe.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// NewCounter registers (or fetches) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).counter
}

// NewGauge registers (or fetches) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).gauge
}

// NewHistogram registers (or fetches) an unlabeled histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, KindHistogram, nil, bounds).get(nil).hist
}

// NewGaugeFunc registers a gauge whose value is sampled at scrape
// time — the natural fit for occupancy numbers another subsystem
// already tracks (cache entries, resident submissions, goroutines).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	c := r.family(name, help, KindGauge, nil, nil).get(nil)
	c.gauge, c.fn = nil, fn
}

// NewCounterFunc registers a counter sampled at scrape time, for
// monotone totals owned elsewhere (cache hits, engine block counts).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	c := r.family(name, help, KindCounter, nil, nil).get(nil)
	c.counter, c.fn = nil, fn
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers (or fetches) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// GaugeFuncVec is a family of scrape-time-sampled gauges keyed by
// label values (e.g. per-worker up/ready flags on the router).
type GaugeFuncVec struct{ f *family }

// NewGaugeFuncVec registers (or fetches) a labeled gauge-func family.
func (r *Registry) NewGaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{r.family(name, help, KindGauge, labels, nil)}
}

// Register binds fn to the given label values.
func (v *GaugeFuncVec) Register(fn func() float64, values ...string) {
	c := v.f.get(values)
	c.gauge, c.fn = nil, fn
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// NewHistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }
