package obs

import (
	"context"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTrace("req1")
	tr.Annotate("kernel", "matmul16")
	ctx := WithTrace(context.Background(), tr)

	ctx1, outer := StartSpan(ctx, "compute")
	ctx2, mid := StartSpan(ctx1, "engine")
	_, inner := StartSpan(ctx2, "warp-step")
	inner.End()
	mid.End()
	_, sib := StartSpan(ctx1, "verify")
	sib.End()
	outer.End()

	if mid.parent != outer || inner.parent != mid || sib.parent != outer {
		t.Fatal("span parents not wired through context")
	}
	tree := tr.Tree()
	lines := strings.Split(tree, "\n")
	if len(lines) != 5 {
		t.Fatalf("tree has %d lines, want 5:\n%s", len(lines), tree)
	}
	if !strings.Contains(lines[0], "req1") || !strings.Contains(lines[0], "kernel=matmul16") {
		t.Errorf("header missing id/annotation: %q", lines[0])
	}
	// Indentation encodes depth: compute at 2, engine/verify at 4,
	// warp-step at 6.
	for i, wantIndent := range map[int]string{1: "  compute", 2: "    engine", 3: "      warp-step", 4: "    verify"} {
		if !strings.HasPrefix(lines[i], wantIndent) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], wantIndent)
		}
	}
	if len(tr.Orphans()) != 0 {
		t.Errorf("clean trace reported orphans: %v", tr.Orphans())
	}
}

func TestPhases(t *testing.T) {
	tr := NewTrace("req2")
	ctx := WithTrace(context.Background(), tr)
	_, a := StartSpan(ctx, "engine")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := StartSpan(ctx, "engine")
	time.Sleep(2 * time.Millisecond)
	b.End()
	_, open := StartSpan(ctx, "verify")
	_ = open // never ended: must not appear in Phases

	p := tr.Phases()
	if len(p) != 1 {
		t.Fatalf("Phases = %v, want only engine", p)
	}
	if p["engine"] < 0.004 {
		t.Errorf("engine phase %.6fs, want >= 4ms (two spans summed)", p["engine"])
	}
}

func TestOrphanDetection(t *testing.T) {
	tr := NewTrace("req3")
	ctx := WithTrace(context.Background(), tr)
	ctx1, parent := StartSpan(ctx, "compute")
	_, late := StartSpan(ctx1, "verify")
	parent.End()
	late.End() // ends after its parent
	_, never := StartSpan(ctx, "leak")
	_ = never // never ended

	got := tr.Orphans()
	if len(got) != 2 || got[0] != "leak" || got[1] != "verify" {
		t.Errorf("Orphans = %v, want [leak verify]", got)
	}
	if !strings.Contains(tr.Tree(), "leak") || !strings.Contains(tr.Tree(), "[unfinished]") {
		t.Errorf("tree should flag the unfinished span:\n%s", tr.Tree())
	}
}

func TestDetachedSpan(t *testing.T) {
	// No trace in context: the span still times, joins nothing.
	ctx, sp := StartSpan(context.Background(), "solo")
	if TraceFrom(ctx) != nil {
		t.Fatal("detached span invented a trace")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() < time.Millisecond {
		t.Errorf("detached span duration %v, want >= 1ms", sp.Duration())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	_, sp := StartSpan(context.Background(), "x")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Error("second End moved the end time")
	}
}

func TestNewRequestID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !re.MatchString(a) || !re.MatchString(b) {
		t.Errorf("malformed ids: %q %q", a, b)
	}
	if a == b {
		t.Error("two request ids collided")
	}
}
