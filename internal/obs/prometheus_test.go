package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition byte-for-byte:
// family ordering (sorted by name), child ordering (first use), label
// escaping, and the cumulative histogram encoding.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("z_requests_total", "Total requests.").Add(3)
	v := reg.NewCounterVec("a_ops_total", "Per-op totals.", "op", "cache")
	v.With("analyze", "miss").Add(2)
	v.With("advise", "hit").Add(1)
	reg.NewGauge("m_inflight", "In-flight requests.").Set(1.5)
	reg.NewGaugeFunc("m_uptime_seconds", "", func() float64 { return 42 })
	h := reg.NewHistogram("h_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	reg.NewCounterVec("esc_total", "", "path").With(`a"b\c`).Add(1)

	const want = `# HELP a_ops_total Per-op totals.
# TYPE a_ops_total counter
a_ops_total{op="analyze",cache="miss"} 2
a_ops_total{op="advise",cache="hit"} 1
# TYPE esc_total counter
esc_total{path="a\"b\\c"} 1
# HELP h_seconds Latency.
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 1
h_seconds_bucket{le="1"} 2
h_seconds_bucket{le="+Inf"} 3
h_seconds_sum 5.55
h_seconds_count 3
# HELP m_inflight In-flight requests.
# TYPE m_inflight gauge
m_inflight 1.5
# TYPE m_uptime_seconds gauge
m_uptime_seconds 42
# HELP z_requests_total Total requests.
# TYPE z_requests_total counter
z_requests_total 3
`
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestMergeExpositions(t *testing.T) {
	own := []byte("# TYPE router_up gauge\nrouter_up 1\n")
	w1 := []byte("# HELP req_total Requests.\n# TYPE req_total counter\nreq_total{op=\"analyze\"} 2\nbare_gauge 7\n")
	w2 := []byte("# HELP req_total Requests.\n# TYPE req_total counter\nreq_total{op=\"analyze\"} 5\n")

	var b strings.Builder
	err := MergeExpositions(&b, "worker", own, []LabeledExposition{
		{LabelValue: "http://a:1", Text: w1},
		{LabelValue: "http://b:2", Text: w2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE router_up gauge
router_up 1
# HELP req_total Requests.
# TYPE req_total counter
req_total{worker="http://a:1",op="analyze"} 2
bare_gauge{worker="http://a:1"} 7
req_total{worker="http://b:2",op="analyze"} 5
`
	if got := b.String(); got != want {
		t.Errorf("merge mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
	if strings.Count(b.String(), "# TYPE req_total counter") != 1 {
		t.Error("duplicate TYPE header survived the merge")
	}
}

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m 1`, `m{worker="w"} 1`},
		{`m{a="b"} 1`, `m{worker="w",a="b"} 1`},
		{`m{} 1`, `m{worker="w"} 1`},
		{`m_bucket{le="+Inf"} 3`, `m_bucket{worker="w",le="+Inf"} 3`},
	}
	for _, c := range cases {
		if got := injectLabel(c.in, "worker", "w"); got != c.want {
			t.Errorf("injectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
