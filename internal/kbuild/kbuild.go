// Package kbuild is a small kernel-construction DSL on top of the
// native ISA.
//
// The paper's microbenchmarks and case-study kernels are hand-built
// native instruction streams (via the CUBIN generator); this builder
// provides the same capability with structured helpers: a linear
// register allocator, label/branch patching, and a counted-loop
// combinator. It emits plain isa.Programs, so anything built here
// can be containerized, disassembled and rewritten.
package kbuild

import (
	"fmt"
	"math"

	"gpuperf/internal/isa"
)

// Builder accumulates instructions for one kernel.
type Builder struct {
	name    string
	code    []isa.Instruction
	nextReg int
	smem    int
	err     error
}

// New starts a kernel named name.
func New(name string) *Builder { return &Builder{name: name} }

// fail records the first error; subsequent calls keep building so
// callers can defer error handling to Program().
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kbuild: %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Reg allocates a fresh general-purpose register.
func (b *Builder) Reg() isa.Reg {
	if b.nextReg >= isa.NumRegs {
		b.fail("out of registers")
		return 0
	}
	r := isa.Reg(b.nextReg)
	b.nextReg++
	return r
}

// RegPair allocates an aligned register pair for double precision
// and returns the low register.
func (b *Builder) RegPair() isa.Reg {
	if b.nextReg%2 == 1 {
		b.nextReg++
	}
	lo := b.Reg()
	b.Reg()
	return lo
}

// Regs allocates n consecutive registers and returns the first.
func (b *Builder) Regs(n int) isa.Reg {
	if n <= 0 || b.nextReg+n > isa.NumRegs {
		b.fail("cannot allocate %d registers at %d", n, b.nextReg)
		return 0
	}
	r := isa.Reg(b.nextReg)
	b.nextReg += n
	return r
}

// SharedBytes declares the kernel's static shared-memory allocation.
func (b *Builder) SharedBytes(n int) { b.smem = n }

// Pos returns the index the next emitted instruction will have.
func (b *Builder) Pos() int { return len(b.code) }

// Emit appends a raw instruction and returns its index. Callers
// wanting a guard other than PT should set it on the instruction or
// use Guarded afterwards.
func (b *Builder) Emit(in isa.Instruction) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

func (b *Builder) emit(op isa.Opcode, dst isa.Reg, a, bb, c isa.Operand, imm uint32) int {
	return b.Emit(isa.Instruction{Op: op, Guard: isa.PT, Dst: dst, SrcA: a, SrcB: bb, SrcC: c, Imm: imm})
}

// Guarded re-emits the most recent instruction's guard: it rewrites
// instruction idx to execute only when pred (negated if neg) holds.
func (b *Builder) Guarded(idx int, pred isa.Pred, neg bool) {
	if idx < 0 || idx >= len(b.code) {
		b.fail("guard index %d out of range", idx)
		return
	}
	b.code[idx].Guard = pred
	b.code[idx].GuardNeg = neg
}

// --- data movement -------------------------------------------------

// Mov emits dst = src.
func (b *Builder) Mov(dst, src isa.Reg) {
	b.emit(isa.OpMOV, dst, isa.R(src), isa.Operand{}, isa.Operand{}, 0)
}

// MovImm emits dst = imm (32-bit pattern).
func (b *Builder) MovImm(dst isa.Reg, imm uint32) {
	b.emit(isa.OpMOV, dst, isa.Imm(), isa.Operand{}, isa.Operand{}, imm)
}

// MovF emits dst = float32 constant.
func (b *Builder) MovF(dst isa.Reg, f float32) { b.MovImm(dst, math.Float32bits(f)) }

// S2R emits dst = special register.
func (b *Builder) S2R(dst isa.Reg, sr isa.SReg) {
	b.emit(isa.OpS2R, dst, isa.SR(sr), isa.Operand{}, isa.Operand{}, 0)
}

// --- integer ALU ----------------------------------------------------

// IAdd emits dst = a + b.
func (b *Builder) IAdd(dst, a, src isa.Reg) {
	b.emit(isa.OpIADD, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// IAddImm emits dst = a + imm.
func (b *Builder) IAddImm(dst, a isa.Reg, imm uint32) {
	b.emit(isa.OpIADD, dst, isa.R(a), isa.Imm(), isa.Operand{}, imm)
}

// ISub emits dst = a - b.
func (b *Builder) ISub(dst, a, src isa.Reg) {
	b.emit(isa.OpISUB, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// IMul emits dst = a * b (low 32 bits).
func (b *Builder) IMul(dst, a, src isa.Reg) {
	b.emit(isa.OpIMUL, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// IMulImm emits dst = a * imm.
func (b *Builder) IMulImm(dst, a isa.Reg, imm uint32) {
	b.emit(isa.OpIMUL, dst, isa.R(a), isa.Imm(), isa.Operand{}, imm)
}

// IMad emits dst = a*b + c.
func (b *Builder) IMad(dst, a, src, c isa.Reg) {
	b.emit(isa.OpIMAD, dst, isa.R(a), isa.R(src), isa.R(c), 0)
}

// IMadImm emits dst = a*imm + c.
func (b *Builder) IMadImm(dst, a isa.Reg, imm uint32, c isa.Reg) {
	b.emit(isa.OpIMAD, dst, isa.R(a), isa.Imm(), isa.R(c), imm)
}

// ShlImm emits dst = a << imm.
func (b *Builder) ShlImm(dst, a isa.Reg, imm uint32) {
	b.emit(isa.OpSHL, dst, isa.R(a), isa.Imm(), isa.Operand{}, imm)
}

// ShrImm emits dst = a >> imm (logical).
func (b *Builder) ShrImm(dst, a isa.Reg, imm uint32) {
	b.emit(isa.OpSHR, dst, isa.R(a), isa.Imm(), isa.Operand{}, imm)
}

// AndImm emits dst = a & imm.
func (b *Builder) AndImm(dst, a isa.Reg, imm uint32) {
	b.emit(isa.OpAND, dst, isa.R(a), isa.Imm(), isa.Operand{}, imm)
}

// --- float ALU -------------------------------------------------------

// FAdd emits dst = a + b.
func (b *Builder) FAdd(dst, a, src isa.Reg) {
	b.emit(isa.OpFADD, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// FSub emits dst = a - b.
func (b *Builder) FSub(dst, a, src isa.Reg) {
	b.emit(isa.OpFSUB, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// FMul emits dst = a * b.
func (b *Builder) FMul(dst, a, src isa.Reg) {
	b.emit(isa.OpFMUL, dst, isa.R(a), isa.R(src), isa.Operand{}, 0)
}

// FMad emits dst = a*b + c.
func (b *Builder) FMad(dst, a, src, c isa.Reg) {
	b.emit(isa.OpFMAD, dst, isa.R(a), isa.R(src), isa.R(c), 0)
}

// FNMad emits dst = c - a*b.
func (b *Builder) FNMad(dst, a, src, c isa.Reg) {
	b.emit(isa.OpFNMAD, dst, isa.R(a), isa.R(src), isa.R(c), 0)
}

// Rcp emits dst = 1/a.
func (b *Builder) Rcp(dst, a isa.Reg) {
	b.emit(isa.OpRCP, dst, isa.R(a), isa.Operand{}, isa.Operand{}, 0)
}

// Unary emits a one-source instruction (sin, cos, lg2, ex2, rsq...).
func (b *Builder) Unary(op isa.Opcode, dst, a isa.Reg) {
	b.emit(op, dst, isa.R(a), isa.Operand{}, isa.Operand{}, 0)
}

// DFma emits double dst = a*b + c over register pairs.
func (b *Builder) DFma(dst, a, src, c isa.Reg) {
	b.emit(isa.OpDFMA, dst, isa.R(a), isa.R(src), isa.R(c), 0)
}

// --- predicates and control ------------------------------------------

// ISetpImm emits pd = (a cmp imm).
func (b *Builder) ISetpImm(pd isa.Pred, cmp isa.CmpOp, a isa.Reg, imm uint32) {
	b.Emit(isa.Instruction{Op: isa.OpISETP, Guard: isa.PT, PDst: pd, Cmp: cmp,
		SrcA: isa.R(a), SrcB: isa.Imm(), Imm: imm})
}

// ISetp emits pd = (a cmp b).
func (b *Builder) ISetp(pd isa.Pred, cmp isa.CmpOp, a, src isa.Reg) {
	b.Emit(isa.Instruction{Op: isa.OpISETP, Guard: isa.PT, PDst: pd, Cmp: cmp,
		SrcA: isa.R(a), SrcB: isa.R(src)})
}

// Bra emits an unconditional branch whose target is patched later
// via SetTarget, returning the instruction index.
func (b *Builder) Bra() int {
	return b.Emit(isa.Instruction{Op: isa.OpBRA, Guard: isa.PT})
}

// BraIf emits a branch guarded by pred (negated if neg).
func (b *Builder) BraIf(pred isa.Pred, neg bool) int {
	return b.Emit(isa.Instruction{Op: isa.OpBRA, Guard: pred, GuardNeg: neg})
}

// SetTarget patches the branch at index idx to jump to target.
func (b *Builder) SetTarget(idx, target int) {
	if idx < 0 || idx >= len(b.code) || b.code[idx].Op != isa.OpBRA {
		b.fail("SetTarget(%d): not a branch", idx)
		return
	}
	b.code[idx].Target = int32(target)
}

// Bar emits a block-wide barrier.
func (b *Builder) Bar() { b.Emit(isa.Instruction{Op: isa.OpBAR, Guard: isa.PT}) }

// Exit emits the kernel terminator.
func (b *Builder) Exit() { b.Emit(isa.Instruction{Op: isa.OpEXIT, Guard: isa.PT}) }

// --- memory -----------------------------------------------------------

// Gld emits dst = global[addr] (addr in bytes).
func (b *Builder) Gld(dst, addr isa.Reg) { b.GldOff(dst, addr, 0) }

// GldOff emits dst = global[addr + off].
func (b *Builder) GldOff(dst, addr isa.Reg, off uint32) {
	b.emit(isa.OpGLD, dst, isa.R(addr), isa.Operand{}, isa.Operand{}, off)
}

// Gst emits global[addr] = val.
func (b *Builder) Gst(addr, val isa.Reg) { b.GstOff(addr, val, 0) }

// GstOff emits global[addr + off] = val.
func (b *Builder) GstOff(addr, val isa.Reg, off uint32) {
	b.Emit(isa.Instruction{Op: isa.OpGST, Guard: isa.PT, SrcA: isa.R(addr), SrcB: isa.R(val), Imm: off})
}

// Sld emits dst = shared[addr].
func (b *Builder) Sld(dst, addr isa.Reg) { b.SldOff(dst, addr, 0) }

// SldOff emits dst = shared[addr + off].
func (b *Builder) SldOff(dst, addr isa.Reg, off uint32) {
	b.emit(isa.OpSLD, dst, isa.R(addr), isa.Operand{}, isa.Operand{}, off)
}

// Sst emits shared[addr] = val.
func (b *Builder) Sst(addr, val isa.Reg) { b.SstOff(addr, val, 0) }

// SstOff emits shared[addr + off] = val.
func (b *Builder) SstOff(addr, val isa.Reg, off uint32) {
	b.Emit(isa.Instruction{Op: isa.OpSST, Guard: isa.PT, SrcA: isa.R(addr), SrcB: isa.R(val), Imm: off})
}

// FMadS emits dst = a * shared[smemOff] + c — GT200's MAD with a
// shared-memory operand, the workhorse of dense matrix multiply.
func (b *Builder) FMadS(dst, a isa.Reg, smemOff uint32, c isa.Reg) {
	b.Emit(isa.Instruction{Op: isa.OpFMAD, Guard: isa.PT, Dst: dst,
		SrcA: isa.R(a), SrcB: isa.Smem(), SrcC: isa.R(c), Imm: smemOff})
}

// ReserveRegs declares that the kernel uses at least n registers,
// matching a published per-thread register count even when the
// builder's own allocation is smaller (register pressure is an
// occupancy input, so reproducing Table 2 requires the real counts).
func (b *Builder) ReserveRegs(n int) {
	if n > isa.NumRegs {
		b.fail("ReserveRegs(%d) exceeds register file", n)
		return
	}
	if n > b.nextReg {
		b.nextReg = n
	}
}

// --- structured loops ---------------------------------------------------

// Loop emits a counted loop running body n times using counter as
// the induction register (counts up from 0; body may read it). The
// predicate register p3 is reserved for the back-edge test.
func (b *Builder) Loop(counter isa.Reg, n uint32, body func()) {
	if n == 0 {
		b.fail("zero-trip Loop")
		return
	}
	b.MovImm(counter, 0)
	top := b.Pos()
	body()
	b.IAddImm(counter, counter, 1)
	b.ISetpImm(isa.P3, isa.CmpLT, counter, n)
	br := b.BraIf(isa.P3, false)
	b.SetTarget(br, top)
}

// Program finalizes and validates the kernel.
func (b *Builder) Program() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &isa.Program{
		Name:           b.name,
		Code:           b.code,
		RegsPerThread:  b.nextReg,
		SharedMemBytes: b.smem,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program for statically known-good kernels; it
// panics on error and is intended for package-level kernel tables
// and tests.
func (b *Builder) MustProgram() *isa.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
