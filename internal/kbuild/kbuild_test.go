package kbuild

import (
	"testing"

	"gpuperf/internal/asm"
	"gpuperf/internal/isa"
)

func TestBasicKernel(t *testing.T) {
	b := New("saxpy")
	tid := b.Reg()
	addr := b.Reg()
	x := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 2)
	b.Gld(x, addr)
	b.FMad(x, x, x, x)
	b.Gst(addr, x)
	b.Exit()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.RegsPerThread != 3 {
		t.Errorf("RegsPerThread = %d, want 3", p.RegsPerThread)
	}
	if len(p.Code) != 6 {
		t.Errorf("code length %d", len(p.Code))
	}
	// The builder's output must survive the assembler round trip.
	q, err := asm.Assemble(asm.Disassemble(p))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Errorf("instr %d: %v vs %v", i, p.Code[i], q.Code[i])
		}
	}
}

func TestLoopShape(t *testing.T) {
	b := New("loop")
	ctr := b.Reg()
	acc := b.Reg()
	b.MovF(acc, 1)
	b.Loop(ctr, 10, func() {
		b.FMul(acc, acc, acc)
	})
	b.Exit()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// mov ctr,0 | fmul | iadd | isetp | bra | exit  (+ initial mov acc)
	var bra *isa.Instruction
	for i := range p.Code {
		if p.Code[i].Op == isa.OpBRA {
			bra = &p.Code[i]
		}
	}
	if bra == nil {
		t.Fatal("no back edge emitted")
	}
	if bra.Guard != isa.P3 || bra.GuardNeg {
		t.Errorf("back edge guard %v", bra)
	}
	if p.Code[bra.Target].Op != isa.OpFMUL {
		t.Errorf("back edge lands on %v", p.Code[bra.Target])
	}
}

func TestZeroTripLoopRejected(t *testing.T) {
	b := New("zero")
	ctr := b.Reg()
	b.Loop(ctr, 0, func() {})
	b.Exit()
	if _, err := b.Program(); err == nil {
		t.Error("zero-trip loop accepted")
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := New("hog")
	for i := 0; i < isa.NumRegs; i++ {
		b.Reg()
	}
	b.Reg() // one too many
	b.Exit()
	if _, err := b.Program(); err == nil {
		t.Error("register exhaustion not reported")
	}
}

func TestRegPairAlignment(t *testing.T) {
	b := New("pairs")
	b.Reg() // r0 → next alloc would be r1
	lo := b.RegPair()
	if lo%2 != 0 {
		t.Errorf("RegPair returned odd register r%d", lo)
	}
	first := b.Regs(4)
	if int(first) != int(lo)+2 {
		t.Errorf("Regs(4) started at r%d", first)
	}
}

func TestGuardedAndSetTargetValidation(t *testing.T) {
	b := New("patch")
	r := b.Reg()
	b.MovImm(r, 1)
	idx := b.Pos() - 1
	b.Guarded(idx, isa.P1, true)
	b.Exit()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[idx].Guard != isa.P1 || !p.Code[idx].GuardNeg {
		t.Errorf("guard not applied: %v", p.Code[idx])
	}

	b2 := New("badpatch")
	b2.MovImm(b2.Reg(), 1)
	b2.SetTarget(0, 0) // instruction 0 is not a branch
	b2.Exit()
	if _, err := b2.Program(); err == nil {
		t.Error("SetTarget on non-branch accepted")
	}

	b3 := New("oob")
	b3.Guarded(5, isa.P0, false)
	b3.Exit()
	if _, err := b3.Program(); err == nil {
		t.Error("Guarded out of range accepted")
	}
}

func TestSharedBytesPropagates(t *testing.T) {
	b := New("smem")
	b.SharedBytes(2048)
	b.Exit()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedMemBytes != 2048 {
		t.Errorf("SharedMemBytes = %d", p.SharedMemBytes)
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram did not panic on invalid kernel")
		}
	}()
	b := New("invalid") // no exit
	b.MovImm(b.Reg(), 1)
	b.MustProgram()
}
