package cubin

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"gpuperf/internal/asm"
	"gpuperf/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func twoKernels(t *testing.T) *Container {
	t.Helper()
	a := mustAssemble(t, ".kernel alpha\n.regs 4\n.smem 128\nmov r2, r1\nfmad r3, r1, r2, r3\nexit")
	b := mustAssemble(t, ".kernel beta\n.regs 2\nsld r1, r0\nexit")
	return &Container{Kernels: []*isa.Program{a, b}}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := twoKernels(t)
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(got.Kernels))
	}
	for i := range c.Kernels {
		w, g := c.Kernels[i], got.Kernels[i]
		if w.Name != g.Name || w.RegsPerThread != g.RegsPerThread || w.SharedMemBytes != g.SharedMemBytes {
			t.Errorf("kernel %d header mismatch", i)
		}
		if len(w.Code) != len(g.Code) {
			t.Fatalf("kernel %d code length", i)
		}
		for j := range w.Code {
			if w.Code[j] != g.Code[j] {
				t.Errorf("kernel %d instr %d mismatch", i, j)
			}
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	raw, err := twoKernels(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit anywhere in the body: checksum must catch it.
	for _, pos := range []int{0, 5, 12, len(raw) / 2, len(raw) - 8} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := Unmarshal(bad); err == nil {
			t.Errorf("corruption at %d accepted", pos)
		}
	}
	if _, err := Unmarshal(raw[:8]); err == nil {
		t.Error("short file accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty file accepted")
	}
}

func TestFindAndRewrite(t *testing.T) {
	c := twoKernels(t)
	if _, err := c.Find("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Find("nope"); err == nil {
		t.Error("missing kernel found")
	}

	// The microbenchmark trick: swap alpha's body for a synthetic
	// stream and confirm the container carries it faithfully.
	synth := mustAssemble(t, ".kernel synth\n.regs 2\nfmul r1, r1, r1\nfmul r1, r1, r1\nexit")
	if err := c.Rewrite("alpha", synth); err != nil {
		t.Fatal(err)
	}
	k, err := c.Find("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "alpha" {
		t.Errorf("rewritten kernel renamed to %q", k.Name)
	}
	if len(k.Code) != 3 || k.Code[0].Op != isa.OpFMUL {
		t.Errorf("rewrite not applied: %v", k.Code)
	}
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := got.Find("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.Code) != 3 {
		t.Error("rewritten code not persisted")
	}

	if err := c.Rewrite("nope", synth); err == nil {
		t.Error("rewrite of missing kernel succeeded")
	}
	bad := &isa.Program{Name: "bad"}
	if err := c.Rewrite("alpha", bad); err == nil {
		t.Error("rewrite with invalid program succeeded")
	}
}

func TestMarshalRejectsInvalidKernel(t *testing.T) {
	c := &Container{Kernels: []*isa.Program{{Name: "broken"}}}
	if _, err := c.Marshal(); err == nil {
		t.Error("invalid kernel marshaled")
	}
}

func TestMarshalRejectsUnsafeNames(t *testing.T) {
	for _, name := range []string{"", "two words", "tab\tbed", "new\nline", "semi;colon", "hash#mark", "ctl\x01", "ü"} {
		p := mustAssemble(t, ".kernel k\n.regs 2\nmov r1, 1\nexit")
		p.Name = name
		c := &Container{Kernels: []*isa.Program{p}}
		if _, err := c.Marshal(); err == nil {
			t.Errorf("kernel name %q marshaled; it cannot survive the text roundtrip", name)
		}
	}
}

func TestMarshalRejectsOverflowingResources(t *testing.T) {
	p := mustAssemble(t, ".kernel k\n.regs 2\nmov r1, 1\nexit")
	p.RegsPerThread = 1 << 33
	if _, err := (&Container{Kernels: []*isa.Program{p}}).Marshal(); err == nil {
		t.Error("register declaration beyond uint32 marshaled; it would truncate on the wire")
	}
}

// TestUnmarshalRejectsTruncatedFields hand-builds container bytes
// whose checksum is valid but whose interior is cut mid-field. The
// parser's reads must fail loudly: a bare bytes.Reader.Read would
// short-read at the tail without an error and zero-fill the rest of
// the field. (Regression test for exactly that bug.)
func TestUnmarshalRejectsTruncatedFields(t *testing.T) {
	// magic + version + nkern=1 + nameLen=2 + "ab" + 2 of regs' 4 bytes.
	body := []byte(Magic)
	for _, v := range []uint32{Version, 1, 2} {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		body = append(body, tmp[:]...)
	}
	body = append(body, 'a', 'b', 0x07, 0x00)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body))
	raw := append(body, sum[:]...)
	_, err := Unmarshal(raw)
	if err == nil {
		t.Fatal("container truncated mid-field accepted")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want a truncation report", err)
	}
}
