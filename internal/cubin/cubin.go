// Package cubin implements a binary container for compiled kernels —
// the analogue of NVIDIA's CUBIN files.
//
// The paper's workflow disassembles a CUBIN with Decuda, rewrites
// the instruction stream (the "CUBIN generator" of Fig. 1 that
// synthesizes microbenchmarks beyond the compiler's reach), and
// embeds the modified code back into the executable. Marshal,
// Unmarshal and Rewrite reproduce that loop for our ISA.
//
// Layout (little endian):
//
//	magic   "GCUB"            4 bytes
//	version uint32            currently 1
//	nkern   uint32
//	per kernel:
//	    nameLen uint32, name bytes
//	    regs    uint32
//	    smem    uint32
//	    codeLen uint32 (bytes), code (isa encoding)
//	crc32   uint32 over everything before it
package cubin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"gpuperf/internal/isa"
)

// Magic identifies the container format.
const Magic = "GCUB"

// Version is the current container version.
const Version = 1

// Container holds compiled kernels.
type Container struct {
	Kernels []*isa.Program
}

// Marshal serializes the container.
func (c *Container) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	writeU32(&buf, Version)
	writeU32(&buf, uint32(len(c.Kernels)))
	for _, k := range c.Kernels {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("cubin: %w", err)
		}
		if err := validName(k.Name); err != nil {
			return nil, fmt.Errorf("cubin: %w", err)
		}
		// The resource fields are uint32 on the wire; a declaration
		// beyond that would truncate silently and fail revalidation on
		// the way back in.
		if uint64(k.RegsPerThread) > math.MaxUint32 || uint64(k.SharedMemBytes) > math.MaxUint32 {
			return nil, fmt.Errorf("cubin: %s: resource declaration overflows the container field", k.Name)
		}
		writeU32(&buf, uint32(len(k.Name)))
		buf.WriteString(k.Name)
		writeU32(&buf, uint32(k.RegsPerThread))
		writeU32(&buf, uint32(k.SharedMemBytes))
		code := isa.EncodeProgram(k)
		writeU32(&buf, uint32(len(code)))
		buf.Write(code)
	}
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

// Unmarshal parses a container, verifying magic, version and
// checksum.
func Unmarshal(raw []byte) (*Container, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("cubin: short file (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("cubin: checksum mismatch")
	}
	r := bytes.NewReader(body)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != Magic {
		return nil, fmt.Errorf("cubin: bad magic %q", magic)
	}
	ver, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("cubin: unsupported version %d", ver)
	}
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	c := &Container{}
	for i := uint32(0); i < n; i++ {
		k, err := readKernel(r)
		if err != nil {
			return nil, fmt.Errorf("cubin: kernel %d: %w", i, err)
		}
		c.Kernels = append(c.Kernels, k)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("cubin: %d trailing bytes", r.Len())
	}
	return c, nil
}

func readKernel(r *bytes.Reader) (*isa.Program, error) {
	nameLen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("truncated name: %w", err)
	}
	if err := validName(string(name)); err != nil {
		return nil, err
	}
	regs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	smem, err := readU32(r)
	if err != nil {
		return nil, err
	}
	codeLen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(codeLen) > r.Len() {
		return nil, fmt.Errorf("code length %d exceeds remaining %d", codeLen, r.Len())
	}
	code := make([]byte, codeLen)
	if _, err := io.ReadFull(r, code); err != nil {
		return nil, fmt.Errorf("truncated code: %w", err)
	}
	ins, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	p := &isa.Program{
		Name:           string(name),
		Code:           ins,
		RegsPerThread:  int(regs),
		SharedMemBytes: int(smem),
	}
	return p, p.Validate()
}

// Find returns the kernel with the given name.
func (c *Container) Find(name string) (*isa.Program, error) {
	for _, k := range c.Kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("cubin: kernel %q not found", name)
}

// Rewrite replaces the instruction stream of the named kernel —
// the paper's binary-modification step that lets microbenchmarks
// bypass compiler dead-code elimination. The replacement program
// must validate; resource declarations are taken from it.
func (c *Container) Rewrite(name string, replacement *isa.Program) error {
	if err := replacement.Validate(); err != nil {
		return fmt.Errorf("cubin: rewrite: %w", err)
	}
	for i, k := range c.Kernels {
		if k.Name == name {
			r := *replacement
			r.Name = name
			c.Kernels[i] = &r
			return nil
		}
	}
	return fmt.Errorf("cubin: kernel %q not found", name)
}

// validName constrains kernel names to what survives the assembler's
// text roundtrip: non-empty printable ASCII with no whitespace and no
// comment starters. Untrusted containers would otherwise smuggle
// names the disassembly cannot represent.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty kernel name")
	}
	if len(name) > 1<<16 {
		return fmt.Errorf("implausible name length %d", len(name))
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c <= ' ' || c > '~' || c == ';' || c == '#' {
			return fmt.Errorf("kernel name %q: byte %d is not assembler-safe", name, i)
		}
	}
	return nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

// readU32 reads exactly four bytes: a bare Read on a bytes.Reader
// can short-read at the tail without an error, silently zero-padding
// a truncated field, so ReadFull is load-bearing here.
func readU32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("cubin: truncated: %w", err)
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}
