package barra

import "gpuperf/internal/coalesce"

// StepTrace is one executed warp instruction plus the memory-system
// outcome the execution engine derived for it: serialized
// shared-memory transactions after bank conflicts and the global
// transactions formed at every configured segment granularity. It is
// the event unit of the Collector layer. The struct and everything it
// points to are scratch owned by the worker — valid only during the
// BlockCollector.Step call that delivers it.
type StepTrace struct {
	// Info describes the executed instruction (active mask, per-lane
	// addresses, cost class).
	Info *StepInfo
	// SharedAccesses counts the warp-level shared-memory accesses of
	// this step (an instruction can both read a shared ALU operand and
	// be a shared load/store). SharedTx are the serialized transactions
	// after bank conflicts, SharedTxIdeal the conflict-free ideal (one
	// per active half-warp), SharedBytes the useful bytes moved.
	SharedAccesses int64
	SharedTx       int64
	SharedTxIdeal  int64
	SharedBytes    int64
	// SharedDeg[h] is the bank-conflict degree of half-warp h for a
	// shared load/store step: the serialized transaction count its
	// active lanes required (0 = no active lanes or not a shared
	// load/store). Feeds the conflict-degree histogram.
	SharedDeg [warpHalves]uint8
	// Global has one entry per active half-warp of a global-memory
	// instruction (empty otherwise).
	Global []GlobalHalfWarp
}

// GlobalHalfWarp is one half-warp's global-memory access.
type GlobalHalfWarp struct {
	// Addrs are the active lanes' byte addresses.
	Addrs []uint32
	// Tx[i] are the hardware transactions formed at the i-th
	// granularity of the run's segment list (Segments()); index 0 is
	// always the device's native granularity. Like Addrs, both slice
	// levels are worker-owned scratch refilled on the next step —
	// collectors that need to retain them must copy.
	Tx [][]coalesce.Transaction
}

// BlockCollector receives the execution events of a single block. The
// engine guarantees that one BlockCollector is driven by exactly one
// worker goroutine, that Step is called once per executed warp
// instruction in program-scheduling order, and that StageEnd closes
// every barrier-delimited stage (the last one at block exit).
type BlockCollector interface {
	// Step records one executed warp instruction.
	Step(stage int, tr *StepTrace)
	// StageEnd closes a stage; workCount[w] is warp w's unskipped
	// non-control instruction count within the stage.
	StageEnd(stage int, workCount []int64)
}

// Collector is the pluggable statistics layer of a run. The engine
// calls Block from worker goroutines (it must be safe for concurrent
// use) to obtain a per-block sink, then — after all workers have
// joined — calls Merge exactly once per block in ascending block-ID
// order on a single goroutine. Because every block's events are
// recorded against its own BlockCollector and folded back in block
// order, a collector observes the same event stream no matter how
// many workers ran the launch: serial and parallel runs produce
// bit-identical results.
type Collector interface {
	Block(blockID int) BlockCollector
	Merge(blockID int, bc BlockCollector, barriers int) error
}
