package barra

import "sync"

// Parallel workers cannot invoke Options.GlobalAccessHook directly:
// cache-replay experiments (paper Fig. 12) depend on observing blocks
// in launch order, one at a time. Instead each worker journals its
// block's accesses into a hookLog and hands the finished log to a
// dispatcher goroutine, which replays logs to the user callback
// strictly in ascending block-ID order — the same order the serial
// engine produces. Single-worker runs skip the journal and call the
// hook inline.

// hookEvent is one half-warp global access in a hookLog; its
// addresses are the next n entries of the log's addrs arena.
type hookEvent struct {
	load bool
	n    int32
}

// hookLog journals one block's global accesses. Logs are pooled: the
// dispatcher returns each replayed log to hookLogPool, so a worker's
// next block reuses the grown event/address arenas instead of
// reallocating them.
type hookLog struct {
	blockID int
	events  []hookEvent
	addrs   []uint32
}

var hookLogPool sync.Pool

// newHookLog takes a log from the pool (or allocates the first time)
// and rebinds it to blockID with emptied, capacity-preserving arenas.
func newHookLog(blockID int) *hookLog {
	l, _ := hookLogPool.Get().(*hookLog)
	if l == nil {
		l = &hookLog{}
	}
	l.blockID = blockID
	l.events = l.events[:0]
	l.addrs = l.addrs[:0]
	return l
}

func (l *hookLog) add(load bool, addrs []uint32) {
	l.events = append(l.events, hookEvent{load: load, n: int32(len(addrs))}) //gpuperf:alloc-ok journal buffers recycle via hookLogPool; growth amortizes to zero
	l.addrs = append(l.addrs, addrs...)                                      //gpuperf:alloc-ok journal buffers recycle via hookLogPool; growth amortizes to zero
}

// replay invokes hook for every journaled access in program order.
func (l *hookLog) replay(hook func(blockID int, load bool, addrs []uint32)) {
	off := 0
	for _, ev := range l.events {
		hook(l.blockID, ev.load, l.addrs[off:off+int(ev.n)])
		off += int(ev.n)
	}
}

// hookDispatcher serializes per-block hook logs into block order.
type hookDispatcher struct {
	hook func(blockID int, load bool, addrs []uint32)
	ch   chan *hookLog
	done chan struct{}
}

func newHookDispatcher(hook func(blockID int, load bool, addrs []uint32), workers int) *hookDispatcher {
	d := &hookDispatcher{
		hook: hook,
		ch:   make(chan *hookLog, workers),
		done: make(chan struct{}),
	}
	go d.run()
	return d
}

func (d *hookDispatcher) run() {
	defer close(d.done)
	pending := map[int]*hookLog{}
	next := 0
	for log := range d.ch {
		pending[log.blockID] = log
		for {
			l, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			l.replay(d.hook)
			hookLogPool.Put(l)
			next++
		}
	}
	// Aborted runs leave gaps; drop the stragglers rather than replay
	// them out of order (their buffers still go back to the pool).
	for _, l := range pending { //gpuperf:unordered pool returns only; nothing is replayed or emitted
		hookLogPool.Put(l)
	}
}

// submit hands one finished block's log to the dispatcher.
func (d *hookDispatcher) submit(l *hookLog) { d.ch <- l }

// close stops intake and waits until every deliverable log has been
// replayed.
func (d *hookDispatcher) close() {
	close(d.ch)
	<-d.done
}
