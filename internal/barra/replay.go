package barra

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// This file implements homogeneous-block replay: the engine-path
// execution mode (no access hook, no foreign collectors, replay not
// disabled) that exploits the redundancy of regular kernels, whose
// thousands of blocks execute identical instruction streams over
// identically-shaped address patterns.
//
// Every block still executes functionally — its memory writes and
// the run's verification depend on real execution — but the stats
// pipeline (bank simulation, transaction coalescing at every
// granularity, per-step accumulation) runs only once per
// *equivalence class* of blocks. Each block first runs a lean pass:
// pure functional execution (with batched warp stepping) that folds a
// 128-bit signature over everything its statistics depend on — the
// interleaved instruction stream, active masks, and the shape of
// every memory access — while recording an undo log of its global
// stores. On a signature hit the canonical block's per-block Stats
// shard is cloned into the Collector merge layer and the block is
// done. On a miss the undo log rewinds the block's global stores and
// the block re-runs on the ordinary live path, which derives its
// stats shard the usual way; that shard becomes the class canonical.
// Misses are therefore twice as expensive as live simulation, but a
// regular kernel pays that price once per class, not once per block.
//
// Address-pattern signature. Global-memory addresses are not hashed
// raw — blocks of a regular kernel touch *translated* address
// ranges. Instead each access hashes as its base address modulo A
// (the largest transaction granularity of the run) plus the active
// lanes' base-relative offsets, which makes two accesses equivalent
// exactly when translation by a multiple of A maps one onto the
// other: transaction formation operates inside A-aligned segments
// (and every smaller granularity divides A), so translated accesses
// form identical transaction counts and sizes at every granularity.
// Each access is classified independently — two blocks may match
// with a different translation per access, as data-dependent gathers
// with a regular structure (e.g. SpMV's stencil neighbourhoods) do.
// Region attribution is folded in by classifying the access's
// A-aligned envelope against the run's regions: fully inside one
// region (hash the region index), disjoint from all (hash nothing),
// or straddling a boundary (hash the absolute base, forcing an exact
// match). Shared-memory addresses are block-local and hash raw.
//
// Variant accesses. A flow-insensitive taint analysis marks memory
// instructions whose address register derives from loaded data
// (e.g. the x-gather of SpMV, whose column indices differ per
// block). Their addresses are excluded from the signature, and their
// statistics are computed per block *during the lean pass*, fused
// into a separate variant shard straight from the live step state —
// so data-dependent gathers don't defeat replay of the surrounding
// uniform stream. The class canonical stores the uniform complement
// (the canonical block's full shard minus its own variant shard,
// which is class-invariant because every statistic is additive per
// step and StageEnd's warp-work thresholds are mask-derived); a hit
// combines it with the block's own variant shard. Mis-tainting is
// harmless either way: under-taint hashes varying addresses
// (signature misses, block simulates live), over-taint computes more
// per block than necessary.
//
// Workloads whose blocks never match — genuinely irregular address
// streams — would pay the wasted lean pass on every block, so each
// worker falls back to plain live simulation after its first
// engineFallbackMisses blocks all miss without a single hit.

// sigKey is a block's 128-bit replay signature (two independently
// folded FNV-64 lanes).
type sigKey [2]uint64

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	// The second lane starts from a different offset and folds
	// byte-reversed words, so the lanes do not cancel jointly.
	fnvOffset64b = 0x84222325cbf29ce4
)

// Signature event tags. Together with the folded masks, program
// counters, and address shapes they pin down the exact execution the
// live path would have recorded: which warp stepped, which
// instructions (singly or as a batched run), under which active
// mask, in which stage, touching memory of which shape.
const (
	sigStep  = uint64(iota + 1) // one single-stepped non-memory instruction
	sigRun                      // a batched run of unguarded convergent instructions
	sigMemG                     // one global-memory instruction
	sigMemS                     // one shared-memory instruction
	sigWarp                     // scheduling switched to a warp
	sigStage                    // barrier release / block end
)

const (
	sigFlagDiverged = uint64(1 << iota) // warp was split when the step issued
	sigFlagSmem                         // step read a shared-memory ALU operand
)

// engineFallbackMisses is the per-worker miss streak (with zero hits)
// after which the worker stops attempting replay and runs its
// remaining blocks live.
const engineFallbackMisses = 8

// replayState is the cross-worker replay machinery of one run.
type replayState struct {
	// variant[pc] marks memory instructions whose address register is
	// data-derived (see taintAnalysis).
	variant []bool
	// maxA is the largest transaction granularity of the run (power
	// of two): the translation modulus of the address signature.
	maxA uint32
	// regions are the run's traffic-attribution regions.
	regions []Region

	mu      sync.RWMutex
	classes map[sigKey]*blockStats // canonical stats shard per signature

	// liveBlocks counts blocks run live by workers that gave up on
	// replay (see engineFallbackMisses).
	liveBlocks    atomic.Int64
	batchedRuns   atomic.Int64
	batchedInstrs atomic.Int64
}

func newReplayState(prog *isa.Program, regions []Region, maxA int) *replayState {
	return &replayState{
		variant: taintAnalysis(prog),
		maxA:    uint32(maxA),
		regions: regions,
		classes: map[sigKey]*blockStats{},
	}
}

// taintAnalysis computes, per instruction, whether a memory
// instruction's address register derives from loaded data — the
// addresses that vary freely across blocks of a regular kernel. The
// fixpoint is flow-insensitive (a register tainted anywhere is
// tainted everywhere) and shared memory is a single taint cell:
// storing a tainted value taints every subsequent shared load and
// shared ALU operand. Loaded global data is always tainted (every
// block reads different data); thread/block indices are not — the
// linear address translation they induce is exactly what the
// signature's modulo-A folding absorbs.
func taintAnalysis(p *isa.Program) []bool {
	regT := make([]bool, p.RegsPerThread)
	sharedT := false
	for changed := true; changed; {
		changed = false
		setReg := func(r isa.Reg, taint bool) {
			if taint && int(r) < len(regT) && !regT[r] {
				regT[r] = true
				changed = true
			}
		}
		for i := range p.Code {
			in := &p.Code[i]
			dbl := isa.IsDouble(in.Op)
			src := func(o isa.Operand) bool {
				switch o.Kind {
				case isa.KindReg:
					t := regT[o.Reg]
					if dbl && int(o.Reg)+1 < len(regT) {
						t = t || regT[o.Reg+1]
					}
					return t
				case isa.KindSmem:
					return sharedT
				}
				return false
			}
			tainted := src(in.SrcA) || src(in.SrcB) || src(in.SrcC)
			switch in.Op {
			case isa.OpGLD:
				setReg(in.Dst, true)
			case isa.OpSLD:
				setReg(in.Dst, sharedT)
			case isa.OpSST:
				if src(in.SrcB) && !sharedT {
					sharedT = true
					changed = true
				}
			case isa.OpGST, isa.OpBRA, isa.OpEXIT, isa.OpBAR, isa.OpNOP,
				isa.OpISETP, isa.OpFSETP:
				// No register destination. Predicate taint needs no
				// tracking: active masks are always part of the
				// signature, so data-dependent control flow simply
				// never matches a foreign block.
			default:
				setReg(in.Dst, tainted)
				if dbl {
					setReg(in.Dst+1, tainted)
				}
			}
		}
	}
	variant := make([]bool, len(p.Code))
	for i := range p.Code {
		in := &p.Code[i]
		if isa.IsMemory(in.Op) && in.SrcA.Kind == isa.KindReg && regT[in.SrcA.Reg] {
			variant[i] = true
		}
	}
	return variant
}

// engineState is one worker's reusable signature and undo scratch.
type engineState struct {
	h1, h2 uint64
	// undo logs the lean pass's global stores as (word index, old
	// value) pairs, applied in reverse on a signature miss.
	undo []uint32
	// addrBuf packs a partial warp's active-lane addresses for
	// folding.
	addrBuf [gpu.WarpSize]uint32

	runs, instrs int64 // batched-run counters of the block in flight
	charged      int64 // warp instructions drawn from the budget
}

func (e *engineState) reset() {
	e.h1, e.h2 = fnvOffset64, fnvOffset64b
	e.undo = e.undo[:0]
	e.runs, e.instrs = 0, 0
	e.charged = 0
}

func (e *engineState) fold(x uint64) {
	e.h1 = (e.h1 ^ x) * fnvPrime64
	e.h2 = (e.h2 ^ bits.ReverseBytes64(x)) * fnvPrime64
}

// foldPairs folds a vector of 32-bit values two per word. The
// surrounding event header has already folded the active mask, which
// determines the vector's length, so no length framing is needed.
func (e *engineState) foldPairs(v []uint32) {
	n := len(v)
	for i := 0; i+1 < n; i += 2 {
		e.fold(uint64(v[i]) | uint64(v[i+1])<<32)
	}
	if n&1 != 0 {
		e.fold(uint64(v[n-1]))
	}
}

// foldStep folds the single-stepped instruction described by w.info
// (the lean-path counterpart of record). The header packs event tag,
// flags, pc, and active mask into one word; memory events follow
// with their address shape.
func (w *worker) foldStep() {
	info := &w.info
	e := &w.eng
	op := info.In.Op
	tag := sigStep
	var flags uint64
	if info.Diverged {
		flags |= sigFlagDiverged
	}
	if info.SmemOperand {
		flags |= sigFlagSmem
	}
	mem := isa.IsMemory(op)
	if mem {
		if isa.IsGlobal(op) {
			tag = sigMemG
		} else {
			tag = sigMemS
		}
	}
	e.fold(tag | flags<<4 | uint64(uint32(info.PC))<<8 | uint64(info.Active)<<32)
	if !mem || w.ctx.replay.variant[info.PC] {
		// Variant addresses are data-derived: excluded from the
		// signature, their stats computed per block by the caller.
		return
	}
	// Full warps fold straight out of info.Addr; partial masks pack
	// the active lanes' addresses into ascending-lane order first.
	addrs := info.Addr[:]
	if info.Active != ^LaneMask(0) {
		buf := &e.addrBuf
		n := 0
		for m := info.Active; m != 0; m &= m - 1 {
			buf[n] = info.Addr[bits.TrailingZeros32(m)]
			n++
		}
		addrs = buf[:n]
	}
	if tag == sigMemS {
		e.foldPairs(addrs)
		return
	}
	w.foldGlobalAddrs(addrs)
}

// foldGlobalAddrs folds one global access's translation-invariant
// address shape: base mod A, base-relative lane offsets, and the
// region classification of the access's A-aligned envelope.
func (w *worker) foldGlobalAddrs(addrs []uint32) {
	if len(addrs) == 0 {
		return
	}
	e := &w.eng
	a0 := addrs[0]
	lo, hi := a0, a0
	n := len(addrs)
	// Affine fast path: a constant positive stride (the coalesced
	// common case) folds as one (stride, count) word instead of the
	// serially dependent per-lane delta chain. Monotonicity keeps
	// lo/hi exact under uint32 arithmetic; the nonzero low word cannot
	// collide with the delta chain, whose first fold's low word is
	// always zero (addrs[0]-a0).
	if n >= 4 && addrs[1] > a0 {
		d := addrs[1] - a0
		affine := true
		for i := 2; i < n; i++ {
			if addrs[i]-addrs[i-1] != d || addrs[i] < addrs[i-1] {
				affine = false
				break
			}
		}
		if affine {
			e.fold(uint64(d)<<32 | uint64(uint32(n)))
			w.foldEnvelope(a0, a0, addrs[n-1])
			return
		}
	}
	for i := 0; i+1 < n; i += 2 {
		a, b := addrs[i], addrs[i+1]
		e.fold(uint64(a-a0) | uint64(b-a0)<<32)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if n&1 != 0 {
		a := addrs[n-1]
		e.fold(uint64(a - a0))
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	w.foldEnvelope(a0, lo, hi)
}

// foldEnvelope folds an access's region classification and translated
// base: the tail of every global-address fold (see the package doc).
func (w *worker) foldEnvelope(a0, lo, hi uint32) {
	e := &w.eng
	rs := w.ctx.replay
	mA := rs.maxA - 1
	envLo := lo &^ mA
	envHi := (hi + 4 + mA) &^ mA // access words end at hi+4
	tag := uint64(1)             // envelope disjoint from every region
	ri := 0
	for i := range rs.regions {
		reg := &rs.regions[i]
		if envLo < reg.Hi && reg.Lo < envHi {
			if envLo >= reg.Lo && envHi <= reg.Hi {
				tag, ri = 0, i // fully inside the first matching region
			} else {
				tag = 2 // straddles a boundary: demand an exact match
			}
			break
		}
	}
	switch tag {
	case 0:
		e.fold(tag<<32 | uint64(ri))
		e.fold(uint64(a0 & mA))
	case 1:
		e.fold(tag << 32)
		e.fold(uint64(a0 & mA))
	case 2:
		e.fold(tag << 32)
		e.fold(uint64(a0))
	}
}

// runBlockEngine executes one block on the engine path: a lean pass
// (batched functional execution folding the block signature and
// logging store undos), then replay on a hit or an unwind-and-re-run
// on a miss. Scheduling (warp order, barrier staging, budget
// accounting, error cases) mirrors runBlock exactly.
func (w *worker) runBlockEngine(blockID int) (int, []BlockCollector, error) {
	rs := w.ctx.replay
	if w.engMisses >= engineFallbackMisses && w.engHits == 0 {
		rs.liveBlocks.Add(1)
		return w.runBlock(blockID)
	}
	if err := w.initBlock(blockID); err != nil {
		return 0, nil, err
	}
	e := &w.eng
	e.reset()
	for _, warp := range w.warps {
		warp.undo = &e.undo
	}
	// varBS accumulates the block's data-derived (variant) memory
	// statistics during the lean pass.
	varBS := w.ctx.collectors[0].(*statsCollector).Block(blockID).(*blockStats)
	barriers, err := w.leanBlock(varBS)
	for _, warp := range w.warps {
		warp.undo = nil
	}
	if err != nil {
		varBS.release()
		return 0, nil, err
	}
	rs.batchedRuns.Add(e.runs)
	rs.batchedInstrs.Add(e.instrs)

	sig := sigKey{e.h1, e.h2}
	rs.mu.RLock()
	canon := rs.classes[sig]
	rs.mu.RUnlock()
	if canon != nil {
		w.engHits++
		bs := w.bcs[0].(*blockStats)
		bs.copyFrom(canon)
		bs.add(varBS)
		varBS.release()
		return barriers, w.bcs, nil
	}
	w.engMisses++

	// Miss: rewind the lean pass's global stores (in reverse, so
	// aliasing stores restore the true pre-block words), hand the
	// drawn budget back to this worker's batch — the re-run redraws
	// exactly the same instructions, keeping the shared pool's
	// accounting identical to a live run — and re-run the block on
	// the live path. The re-run's full shard is this block's result;
	// minus the block's own variant shard it is also the class's
	// canonical uniform shard, identical whichever member computes it.
	words := w.ctx.mem.words
	for i := len(e.undo) - 2; i >= 0; i -= 2 {
		words[e.undo[i]] = e.undo[i+1]
	}
	w.avail += e.charged
	w.bcs[0].(*blockStats).release()
	barriers, bcs, err := w.runBlock(blockID)
	if err != nil {
		varBS.release()
		return 0, nil, err
	}
	c := bcs[0].(*blockStats).clone()
	c.sub(varBS)
	varBS.release()
	rs.mu.Lock()
	if _, dup := rs.classes[sig]; !dup {
		rs.classes[sig] = c
	}
	// A concurrent worker may have inserted the same class first; its
	// canonical is identical by construction, ours is dropped.
	rs.mu.Unlock()
	return barriers, bcs, nil
}

// leanBlock runs the current block functionally to completion,
// folding the signature and fusing variant memory steps' statistics
// into varBS. It is runBlock's stepping loop minus the uniform
// per-step stats work, plus batched stepping: a maximal run of
// consecutive unguarded, convergent, non-memory instructions executes
// in one stepRun call. Runs draw their whole budget up front so that
// run boundaries — which the signature observes — never depend on
// worker scheduling; only genuine budget exhaustion splits a run.
//
//gpuperf:noalloc
func (w *worker) leanBlock(varBS *blockStats) (int, error) {
	l := w.ctx.launch
	e := &w.eng
	variant := w.ctx.replay.variant
	stage := 0
	barriers := 0
	for {
		ranAny := false
		for wi, warp := range w.warps {
			if warp.Done() || w.atBarrier[wi] {
				continue
			}
			e.fold(sigWarp | uint64(uint32(wi))<<8)
			for {
				if !warp.Diverged() {
					s := &warp.splits[0]
					if s.pc >= 0 && s.pc < len(warp.meta) {
						if n := int64(warp.meta[s.pc].run); n > 0 {
							for n > w.avail {
								if w.ctx.failed.Load() {
									return 0, errCancelled
								}
								if err := w.ctx.cancelled(); err != nil {
									return 0, err
								}
								got := w.ctx.reserveBudget()
								if got == 0 {
									break
								}
								w.avail += got
							}
							if n > w.avail {
								n = w.avail // budget nearly gone: split, abort below
							}
							if n > 0 {
								pc := s.pc
								mask := s.mask
								if err := warp.stepRun(int(n), &w.info); err != nil {
									return 0, err
								}
								w.avail -= n
								e.charged += n
								e.runs++
								e.instrs += n
								e.fold(sigRun | uint64(uint32(pc))<<8 | uint64(mask)<<32)
								e.fold(uint64(n))
								continue
							}
						}
					}
				}
				if w.avail == 0 {
					if w.ctx.failed.Load() {
						return 0, errCancelled
					}
					if err := w.ctx.cancelled(); err != nil {
						return 0, err
					}
					w.avail = w.ctx.reserveBudget()
					if w.avail == 0 {
						return 0, fmt.Errorf("barra: instruction budget exhausted (%d warp instructions across the run) — runaway kernel %q?",
							w.ctx.maxInstr, l.Prog.Name)
					}
				}
				if err := warp.Step(&w.info); err != nil {
					return 0, err
				}
				w.avail--
				e.charged++
				w.foldStep()
				if variant[w.info.PC] {
					varBS.Step(stage, w.buildTrace())
				}
				if w.info.Barrier {
					w.atBarrier[wi] = true
					break
				}
				if w.info.Done {
					break
				}
			}
			ranAny = true
		}

		allDone := true
		allBlocked := true
		anyExited := false
		for wi, warp := range w.warps {
			if warp.Done() {
				anyExited = true
				continue
			}
			allDone = false
			if !w.atBarrier[wi] {
				allBlocked = false
			}
		}
		if allDone {
			break
		}
		if allBlocked {
			if anyExited {
				return 0, fmt.Errorf("barra: %q: warps wait at a barrier after others exited", l.Prog.Name)
			}
			clear(w.atBarrier)
			e.fold(sigStage)
			stage++
			barriers++
			continue
		}
		if !ranAny {
			return 0, fmt.Errorf("barra: deadlock in %q: warps blocked at a barrier while others exited", l.Prog.Name)
		}
	}
	e.fold(sigStage)
	return barriers, nil
}
