package barra

import (
	"fmt"
	"sync"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// MemTraffic tallies global-memory traffic at one transaction
// granularity.
type MemTraffic struct {
	// Transactions is the hardware transaction count.
	Transactions int64
	// Bytes is the total bytes moved.
	Bytes int64
}

// StageStats aggregates dynamic statistics for one barrier-delimited
// stage (accumulated across all blocks; stage k is the code between
// the k-th and k+1-th barriers).
type StageStats struct {
	// WarpInstrs is the warp-level dynamic instruction count.
	WarpInstrs int64
	// ByClass splits WarpInstrs by cost class.
	ByClass [isa.NumClasses]int64
	// FMADs counts fused multiply-add instructions (the "actual
	// computation" of the paper's density diagnostic).
	FMADs int64
	// SharedAccesses counts warp-level shared-memory instructions;
	// SharedTx the serialized transactions after bank conflicts;
	// SharedTxNoConflict the conflict-free ideal (one per active
	// half-warp).
	SharedAccesses     int64
	SharedTx           int64
	SharedTxNoConflict int64
	// SharedBytes is useful shared traffic (4 B per active lane).
	SharedBytes int64
	// Global is traffic at the device's native granularity;
	// GlobalUsefulBytes counts 4 B per active lane.
	Global            MemTraffic
	GlobalUsefulBytes int64
	// GlobalRequests counts half-warp global-memory requests (the
	// coalescing unit) — Global.Transactions / GlobalRequests is the
	// transaction-per-request ratio, 1.0 when every request coalesces
	// into a single transaction.
	GlobalRequests int64
	// DivByClass counts, per cost class, warp instructions issued
	// while the warp was split across divergent paths; DivActiveLanes
	// sums their active lane counts. A divergence-free restructuring
	// could pack those issues into roughly DivActiveLanes/warpSize
	// full-warp issues — the advisor's NoDivergence counterfactual.
	DivByClass     [isa.NumClasses]int64
	DivActiveLanes int64
	// ConflictDeg histograms shared-memory load/store half-warp
	// accesses by conflict degree: ConflictDeg[d] counts accesses
	// serialized into d bank transactions (d=1 conflict-free, up to
	// one per lane). Index 0 is unused.
	ConflictDeg [gpu.HalfWarp + 1]int64
	// WarpsWithWork is the number of warps (summed over blocks)
	// that did substantial work in this stage: warps whose executed
	// non-control, unskipped instruction count reaches at least half
	// of the busiest warp's count in their block. Guard-test
	// boilerplate (a compare plus a skipping branch) therefore does
	// not count as work — this is the paper's per-step active-warp
	// count for cyclic reduction (Fig. 6).
	WarpsWithWork int64
}

// Stats is the dynamic-statistics output of a functional run: the
// "info extractor" payload of paper Fig. 1. Sharded runs merge
// per-block statistics in ascending block order, so Stats is
// bit-identical for every Options.Parallelism setting.
type Stats struct {
	// Totals over all stages.
	Total StageStats
	// Stages in barrier order. Kernels without barriers have one.
	Stages []StageStats
	// Barriers is the number of barrier releases per block.
	Barriers int
	// GlobalAt tallies global traffic per transaction granularity
	// (always includes the device's own).
	GlobalAt map[int]MemTraffic
	// RegionTraffic attributes global traffic per named region and
	// granularity; RegionUseful counts useful bytes per region.
	RegionTraffic map[string]map[int]MemTraffic
	// RegionUseful is 4 B per active lane per region.
	RegionUseful map[string]int64

	// Launch echoes the launch geometry.
	Grid, Block int

	// Engine reports how the execution engine produced these stats
	// (all zero on the live path: hooks armed, foreign collectors, or
	// replay disabled). The counters are deterministic at a fixed
	// Parallelism; the per-worker adaptive fallback can shift a few
	// blocks between simulated and replayed across different worker
	// counts on irregular workloads. Every other Stats field is
	// bit-identical regardless.
	Engine EngineStats
}

// EngineStats are the execution engine's replay and batching
// counters for one run.
type EngineStats struct {
	// BlocksSimulated is the number of blocks whose statistics were
	// derived by full simulation: one per block equivalence class,
	// plus any blocks run live by workers that abandoned replay.
	// BlocksReplayed is the number of blocks that reused a class's
	// canonical shard instead. Their sum is the grid size.
	BlocksSimulated int64
	BlocksReplayed  int64
	// BatchedRuns is the number of multi-instruction batched steps;
	// BatchedInstrs the warp instructions they covered (out of
	// Total.WarpInstrs).
	BatchedRuns   int64
	BatchedInstrs int64
}

// InstructionDensity returns FMADs / total warp instructions — the
// computational-density diagnostic (≈0.8 for Volkov matmul, ≈0.1
// for cyclic reduction, per the paper).
func (s *Stats) InstructionDensity() float64 {
	if s.Total.WarpInstrs == 0 {
		return 0
	}
	return float64(s.Total.FMADs) / float64(s.Total.WarpInstrs)
}

// CoalescingEfficiency returns useful / transferred global bytes.
func (s *Stats) CoalescingEfficiency() float64 {
	if s.Total.Global.Bytes == 0 {
		return 1
	}
	return float64(s.Total.GlobalUsefulBytes) / float64(s.Total.Global.Bytes)
}

// BankConflictFactor returns SharedTx / SharedTxNoConflict (1.0 =
// conflict-free).
func (s *Stats) BankConflictFactor() float64 {
	if s.Total.SharedTxNoConflict == 0 {
		return 1
	}
	return float64(s.Total.SharedTx) / float64(s.Total.SharedTxNoConflict)
}

// TxPerRequest returns global transactions per half-warp request —
// 1.0 when every request coalesces into one transaction.
func (s *Stats) TxPerRequest() float64 {
	if s.Total.GlobalRequests == 0 {
		return 1
	}
	return float64(s.Total.Global.Transactions) / float64(s.Total.GlobalRequests)
}

// DivergentInstrs returns the warp instructions issued while the warp
// was split across divergent paths, summed over classes.
func (s *StageStats) DivergentInstrs() int64 {
	var n int64
	for _, c := range s.DivByClass {
		n += c
	}
	return n
}

// DivergenceOverhead returns the fraction of all warp instructions
// that a divergence-free restructuring could eliminate: diverged
// issues minus the full-warp issues their active lanes would pack
// into, over the total issue count.
func (s *Stats) DivergenceOverhead() float64 {
	if s.Total.WarpInstrs == 0 {
		return 0
	}
	div := s.Total.DivergentInstrs()
	packed := (s.Total.DivActiveLanes + gpu.WarpSize - 1) / gpu.WarpSize
	saved := div - packed
	if saved <= 0 {
		return 0
	}
	return float64(saved) / float64(s.Total.WarpInstrs)
}

func accumulate(dst, src *StageStats) {
	dst.WarpInstrs += src.WarpInstrs
	for c := range dst.ByClass {
		dst.ByClass[c] += src.ByClass[c]
	}
	dst.FMADs += src.FMADs
	dst.SharedAccesses += src.SharedAccesses
	dst.SharedTx += src.SharedTx
	dst.SharedTxNoConflict += src.SharedTxNoConflict
	dst.SharedBytes += src.SharedBytes
	dst.Global.Transactions += src.Global.Transactions
	dst.Global.Bytes += src.Global.Bytes
	dst.GlobalUsefulBytes += src.GlobalUsefulBytes
	dst.GlobalRequests += src.GlobalRequests
	for c := range dst.DivByClass {
		dst.DivByClass[c] += src.DivByClass[c]
	}
	dst.DivActiveLanes += src.DivActiveLanes
	for d := range dst.ConflictDeg {
		dst.ConflictDeg[d] += src.ConflictDeg[d]
	}
	dst.WarpsWithWork += src.WarpsWithWork
}

// deaccumulate is accumulate's exact inverse: dst -= src, field by
// field. The replay engine uses it to strip a block's data-derived
// (variant) contributions out of its full shard, leaving the
// class-invariant uniform shard (see replay.go).
func deaccumulate(dst, src *StageStats) {
	dst.WarpInstrs -= src.WarpInstrs
	for c := range dst.ByClass {
		dst.ByClass[c] -= src.ByClass[c]
	}
	dst.FMADs -= src.FMADs
	dst.SharedAccesses -= src.SharedAccesses
	dst.SharedTx -= src.SharedTx
	dst.SharedTxNoConflict -= src.SharedTxNoConflict
	dst.SharedBytes -= src.SharedBytes
	dst.Global.Transactions -= src.Global.Transactions
	dst.Global.Bytes -= src.Global.Bytes
	dst.GlobalUsefulBytes -= src.GlobalUsefulBytes
	dst.GlobalRequests -= src.GlobalRequests
	for c := range dst.DivByClass {
		dst.DivByClass[c] -= src.DivByClass[c]
	}
	dst.DivActiveLanes -= src.DivActiveLanes
	for d := range dst.ConflictDeg {
		dst.ConflictDeg[d] -= src.ConflictDeg[d]
	}
	dst.WarpsWithWork -= src.WarpsWithWork
}

// statsCollector is the built-in Collector producing *Stats. Blocks
// record into index-keyed slices (cheaper than maps in the hot loop);
// Merge converts to the public map form.
type statsCollector struct {
	regions []Region
	segs    []int // granularities, segs[0] native
	stats   *Stats
}

func newStatsCollector(l Launch, regions []Region, segs []int) *statsCollector {
	c := &statsCollector{
		regions: regions,
		segs:    segs,
		stats: &Stats{
			GlobalAt:      map[int]MemTraffic{},
			RegionTraffic: map[string]map[int]MemTraffic{},
			RegionUseful:  map[string]int64{},
			Grid:          l.Grid,
			Block:         l.Block,
		},
	}
	for _, reg := range regions {
		c.stats.RegionTraffic[reg.Name] = map[int]MemTraffic{}
		c.stats.RegionUseful[reg.Name] = 0
	}
	return c
}

// blockStats is one block's shard of the statistics. Shards are
// pooled process-wide: Merge returns each folded shard to
// blockStatsPool, so the paper's rerun-per-figure workflow — many
// Run calls in one process — stops churning per-block slices after
// the first launch warms the pool.
type blockStats struct {
	c             *statsCollector
	stages        []StageStats
	globalAt      []MemTraffic   // indexed like c.segs
	regionTraffic [][]MemTraffic // [region][seg]
	regionUseful  []int64        // [region]
}

var blockStatsPool sync.Pool

// trafficRow returns a zeroed []MemTraffic of length n, reusing prev's
// backing array when it is large enough.
func trafficRow(prev []MemTraffic, n int) []MemTraffic {
	if cap(prev) < n {
		return make([]MemTraffic, n)
	}
	prev = prev[:n]
	clear(prev)
	return prev
}

func (c *statsCollector) Block(blockID int) BlockCollector {
	bs, _ := blockStatsPool.Get().(*blockStats)
	if bs == nil {
		bs = &blockStats{}
	}
	bs.c = c
	bs.stages = bs.stages[:0]
	bs.globalAt = trafficRow(bs.globalAt, len(c.segs))
	if cap(bs.regionUseful) < len(c.regions) {
		bs.regionUseful = make([]int64, len(c.regions))
	} else {
		bs.regionUseful = bs.regionUseful[:len(c.regions)]
		clear(bs.regionUseful)
	}
	if len(c.regions) == 0 {
		bs.regionTraffic = bs.regionTraffic[:0]
	} else {
		if cap(bs.regionTraffic) < len(c.regions) {
			rows := make([][]MemTraffic, len(c.regions))
			copy(rows, bs.regionTraffic[:cap(bs.regionTraffic)])
			bs.regionTraffic = rows
		} else {
			bs.regionTraffic = bs.regionTraffic[:len(c.regions)]
		}
		for i := range bs.regionTraffic {
			bs.regionTraffic[i] = trafficRow(bs.regionTraffic[i], len(c.segs))
		}
	}
	return bs
}

// copyFrom overwrites b's counters with src's, reusing b's backing
// storage. Both shards must belong to the same collector (identical
// segment and region geometry) — the replay path copying a class's
// canonical shard into a pooled per-block one.
func (b *blockStats) copyFrom(src *blockStats) {
	b.stages = append(b.stages[:0], src.stages...)
	copy(b.globalAt, src.globalAt)
	for i := range b.regionTraffic {
		copy(b.regionTraffic[i], src.regionTraffic[i])
	}
	copy(b.regionUseful, src.regionUseful)
}

// add folds src's counters into b, field by field. Both shards must
// belong to the same collector. Stages b lacks are created — a
// variant shard can end before the block's last stage.
func (b *blockStats) add(src *blockStats) {
	for i := range src.stages {
		accumulate(b.stage(i), &src.stages[i])
	}
	for i := range src.globalAt {
		b.globalAt[i].Transactions += src.globalAt[i].Transactions
		b.globalAt[i].Bytes += src.globalAt[i].Bytes
	}
	for ri := range src.regionTraffic {
		for si := range src.regionTraffic[ri] {
			b.regionTraffic[ri][si].Transactions += src.regionTraffic[ri][si].Transactions
			b.regionTraffic[ri][si].Bytes += src.regionTraffic[ri][si].Bytes
		}
	}
	for ri := range src.regionUseful {
		b.regionUseful[ri] += src.regionUseful[ri]
	}
}

// sub removes src's counters from b — add's exact inverse. src must
// be a subset of b's activity (a block's variant shard subtracted
// from the same block's full shard).
func (b *blockStats) sub(src *blockStats) {
	for i := range src.stages {
		deaccumulate(b.stage(i), &src.stages[i])
	}
	for i := range src.globalAt {
		b.globalAt[i].Transactions -= src.globalAt[i].Transactions
		b.globalAt[i].Bytes -= src.globalAt[i].Bytes
	}
	for ri := range src.regionTraffic {
		for si := range src.regionTraffic[ri] {
			b.regionTraffic[ri][si].Transactions -= src.regionTraffic[ri][si].Transactions
			b.regionTraffic[ri][si].Bytes -= src.regionTraffic[ri][si].Bytes
		}
	}
	for ri := range src.regionUseful {
		b.regionUseful[ri] -= src.regionUseful[ri]
	}
}

// release returns an unmerged shard to the pool (the replay path
// abandoning a lean pass's shard, or retiring a scratch one).
func (b *blockStats) release() {
	b.c = nil
	blockStatsPool.Put(b)
}

// clone returns an independent deep copy of b, retained as a replay
// class's canonical shard for the rest of the run.
func (b *blockStats) clone() *blockStats {
	c := &blockStats{
		c:             b.c,
		stages:        append([]StageStats(nil), b.stages...),
		globalAt:      append([]MemTraffic(nil), b.globalAt...),
		regionTraffic: make([][]MemTraffic, len(b.regionTraffic)),
		regionUseful:  append([]int64(nil), b.regionUseful...),
	}
	for i := range b.regionTraffic {
		c.regionTraffic[i] = append([]MemTraffic(nil), b.regionTraffic[i]...)
	}
	return c
}

func (b *blockStats) stage(i int) *StageStats {
	for len(b.stages) <= i {
		b.stages = append(b.stages, StageStats{}) //gpuperf:alloc-ok bounded by the kernel's stage count; shards recycle via blockStatsPool
	}
	return &b.stages[i]
}

// regionOf returns the index in c.regions containing addr, or -1.
func (c *statsCollector) regionOf(addr uint32) int {
	for i, reg := range c.regions {
		if addr >= reg.Lo && addr < reg.Hi {
			return i
		}
	}
	return -1
}

func (b *blockStats) Step(stage int, tr *StepTrace) {
	st := b.stage(stage)
	info := tr.Info
	st.WarpInstrs++
	st.ByClass[info.Class]++
	if info.In.Op == isa.OpFMAD {
		st.FMADs++
	}
	st.SharedAccesses += tr.SharedAccesses
	st.SharedTx += tr.SharedTx
	st.SharedTxNoConflict += tr.SharedTxIdeal
	st.SharedBytes += tr.SharedBytes
	for _, deg := range tr.SharedDeg {
		if deg > 0 {
			st.ConflictDeg[deg]++
		}
	}
	if info.Diverged {
		st.DivByClass[info.Class]++
		st.DivActiveLanes += int64(info.ActiveCount)
	}

	if len(tr.Global) == 0 {
		return
	}
	st.GlobalUsefulBytes += int64(info.ActiveCount) * 4
	st.GlobalRequests += int64(len(tr.Global))
	for i := range tr.Global {
		hw := &tr.Global[i]
		for si, txs := range hw.Tx {
			var bytes int64
			for _, tx := range txs {
				bytes += int64(tx.Size)
			}
			b.globalAt[si].Transactions += int64(len(txs))
			b.globalAt[si].Bytes += bytes
			if si == 0 { // native granularity
				st.Global.Transactions += int64(len(txs))
				st.Global.Bytes += bytes
			}
			// Region attribution per transaction base address.
			for _, tx := range txs {
				if ri := b.c.regionOf(tx.Addr); ri >= 0 {
					b.regionTraffic[ri][si].Transactions++
					b.regionTraffic[ri][si].Bytes += int64(tx.Size)
				}
			}
		}
		for _, a := range hw.Addrs {
			if ri := b.c.regionOf(a); ri >= 0 {
				b.regionUseful[ri] += 4
			}
		}
	}
}

// StageEnd folds the block's per-warp stage work counts into the
// stage stats. A warp counts as working when it executed at least
// half as many unskipped non-control instructions as the busiest warp
// of its block — enough to exclude warps that only ran the guard test
// and skip branch.
func (b *blockStats) StageEnd(stage int, workCount []int64) {
	st := b.stage(stage)
	var max int64
	for _, c := range workCount {
		if c > max {
			max = c
		}
	}
	threshold := (max + 1) / 2
	for _, c := range workCount {
		if max > 0 && c >= threshold {
			st.WarpsWithWork++
		}
	}
}

// Merge folds one finished block's shard into the run totals, in
// ascending block order (the Collector contract).
//
//gpuperf:noalloc
func (c *statsCollector) Merge(blockID int, bc BlockCollector, barriers int) error {
	bs, ok := bc.(*blockStats)
	if !ok {
		return fmt.Errorf("barra: foreign BlockCollector %T merged into statsCollector", bc)
	}
	s := c.stats
	if blockID == 0 {
		s.Barriers = barriers
	}
	for i := range bs.stages {
		for len(s.Stages) <= i {
			s.Stages = append(s.Stages, StageStats{}) //gpuperf:alloc-ok bounded by the kernel's stage count, once per run
		}
		accumulate(&s.Stages[i], &bs.stages[i])
	}
	for si, seg := range c.segs {
		t := s.GlobalAt[seg]
		t.Transactions += bs.globalAt[si].Transactions
		t.Bytes += bs.globalAt[si].Bytes
		s.GlobalAt[seg] = t
	}
	for ri, reg := range c.regions {
		for si, seg := range c.segs {
			rt := s.RegionTraffic[reg.Name][seg]
			rt.Transactions += bs.regionTraffic[ri][si].Transactions
			rt.Bytes += bs.regionTraffic[ri][si].Bytes
			s.RegionTraffic[reg.Name][seg] = rt
		}
		s.RegionUseful[reg.Name] += bs.regionUseful[ri]
	}
	bs.c = nil
	blockStatsPool.Put(bs)
	return nil
}

// finish computes the run totals after all blocks have merged.
func (c *statsCollector) finish() *Stats {
	for i := range c.stats.Stages {
		accumulate(&c.stats.Total, &c.stats.Stages[i])
	}
	return c.stats
}
