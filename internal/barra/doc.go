// Package barra is the functional GPU simulator — the stand-in for
// the Barra simulator the paper drives its model with.
//
// It executes native-ISA kernels warp by warp on real data and
// collects the dynamic program statistics the performance model
// consumes: instruction counts per cost class, shared-memory
// transactions with and without bank conflicts, hardware-level
// global-memory transactions under the coalescing protocol, and the
// program's division into stages by synchronization barriers
// (paper Fig. 1, "Info extractor" inputs).
//
// # Hot-path allocation contract
//
// The simulator's throughput rests on its inner loops allocating
// nothing: a warp executes millions of instructions per run, so one
// heap allocation per step is the difference between an L1-resident
// interpreter and a GC-bound one. The contract is enforced twice:
//
//   - Statically: functions annotated //gpuperf:noalloc in their doc
//     comment are roots for the noalloc analyzer (internal/lint, run
//     by cmd/gpuperflint in CI). Every function statically reachable
//     from a root inside this module is scanned for allocating
//     constructs — map/slice literals, make, new, append, closures,
//     go statements, fmt calls, string↔[]byte conversions, interface
//     boxing, and dynamic calls the analyzer cannot see through.
//   - Dynamically: the testing.AllocsPerRun pins in alloc_test.go
//     execute the same paths and fail on any measured allocation,
//     catching what escapes static analysis (stdlib internals,
//     escape-analysis regressions across Go releases).
//
// The annotated roots are Warp.Step and Warp.stepRun (the per-
// instruction interpreter), worker.leanBlock (the homogeneous-block
// lean pass), bank.Sim.Transactions, coalesce.Sim.HalfWarpInto (the
// per-access memory models), and statsCollector.Merge (the per-block
// stats fold).
//
// Where a reachable line deliberately allocates — amortized growth
// into caller-owned scratch, a cold fallback the engine never takes,
// opt-in journaling — it carries //gpuperf:alloc-ok <why>. The
// justification is mandatory (the analyzer flags a bare directive),
// so every exception in the tree documents why the invariant
// legitimately bends there. Constructs inside a `return` that yields
// a freshly constructed error are exempt automatically: abort paths
// run at most once per run and sit outside the AllocsPerRun steady
// state.
//
// When adding code on an annotated path, prefer caller-provided
// scratch (see the worker type's reusable buffers and blockStatsPool)
// over fresh slices, and
// pointer-shaped values over interface boxing; if an allocation is
// genuinely amortized or cold, annotate it and say why.
package barra
