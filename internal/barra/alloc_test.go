package barra

// Allocation-regression tests: steady-state block execution — the
// per-instruction data path through Warp.Step, the bank and coalesce
// simulators, half-warp gathering and stats collection — must not
// allocate. A future PR that reintroduces hot-path garbage (a fresh
// slice per access, a copied instruction per step) fails here long
// before it shows up on a profile.

import (
	"testing"
	"time"

	"gpuperf/internal/bank"
	"gpuperf/internal/coalesce"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
	"gpuperf/internal/obs"
)

// allocProbeKernel touches every hot path: ALU work, a divergent
// forward branch, shared stores/loads (with bank conflicts via the
// ×2 stride), a shared ALU operand, a barrier, and strided global
// loads/stores (imperfect coalescing).
func allocProbeKernel() *isa.Program {
	b := kbuild.New("alloc-probe")
	b.SharedBytes(4096)
	tid, flat, ntid, cta := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	saddr, v, gaddr, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(flat, cta, ntid, tid)

	// Divergent forward branch: odd lanes skip one add.
	b.AndImm(v, tid, 1)
	b.ISetpImm(isa.P0, isa.CmpNE, v, 0)
	br := b.BraIf(isa.P0, false)
	b.IAddImm(tid, tid, 0) // fall-through work for even lanes
	b.SetTarget(br, b.Pos())

	// Shared store/load at a conflicted ×2 word stride.
	b.ShlImm(saddr, tid, 3)
	b.Sst(saddr, tid)
	b.Bar()
	b.Sld(v, saddr)

	// Shared ALU operand (broadcast read of s[0]).
	b.FMadS(acc, v, 0, v)

	// Global round trip at a 2-word lane stride: two 128 B segments
	// per half-warp, so the coalescer forms multiple transactions.
	b.ShlImm(gaddr, flat, 3)
	b.Gld(acc, gaddr)
	b.Gst(gaddr, v)
	b.Exit()
	return b.MustProgram()
}

// newAllocCtx assembles a runContext the way Run does, with the
// given collectors.
func newAllocCtx(t testing.TB, collectors ...Collector) (*runContext, Launch) {
	t.Helper()
	c := cfg()
	prog := allocProbeKernel()
	l := Launch{Prog: prog, Grid: 4, Block: 128}
	if err := l.Validate(c); err != nil {
		t.Fatal(err)
	}
	bsim, err := bank.ForGPU(c)
	if err != nil {
		t.Fatal(err)
	}
	csim, err := coalesce.ForGPU(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &runContext{
		cfg:        c,
		launch:     l,
		mem:        NewMemory(1 << 20),
		banks:      bsim,
		coal:       []*coalesce.Sim{csim},
		segs:       []int{c.MinSegmentBytes},
		collectors: collectors,
		maxInstr:   1 << 40,
	}
	ctx.budget.Store(ctx.maxInstr)
	return ctx, l
}

// TestSteadyStateZeroAllocs: with no collectors attached, re-running
// a block on a warmed worker performs zero heap allocations — the
// engine's per-instruction path (step, masks, bank conflicts,
// coalescing, hookless recording) is allocation-free.
func TestSteadyStateZeroAllocs(t *testing.T) {
	ctx, _ := newAllocCtx(t)
	w := &worker{ctx: ctx}
	if _, _, err := w.runBlock(0); err != nil { // warm-up: builds arenas
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := w.runBlock(0); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state block execution allocates %.1f times per block; want 0", avg)
	}
}

// TestSteadyStateCollectorAllocs: with the built-in stats collector
// attached and its per-block sink recycled through Merge (as Run's
// steady state across launches does via the pool), execution stays
// allocation-free up to pool jitter.
func TestSteadyStateCollectorAllocs(t *testing.T) {
	sc := newStatsCollector(Launch{Grid: 4, Block: 128}, nil, []int{32})
	ctx, _ := newAllocCtx(t, sc)
	w := &worker{ctx: ctx}
	nb, bcs, err := w.runBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Merge(0, bcs[0], nb); err != nil { // seeds the sink pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		nb, bcs, err := w.runBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Merge(0, bcs[0], nb); err != nil {
			t.Fatal(err)
		}
	})
	// sync.Pool may shed its cache across a GC cycle; allow one stray
	// refill but nothing per-step.
	if avg > 1 {
		t.Fatalf("steady-state execution with pooled stats sink allocates %.1f times per block; want ~0", avg)
	}
}

// TestSteadyStateZeroAllocsWithMetrics: the telemetry the service
// layer hangs off the engine seam — an obs counter bumped and a
// latency histogram observed per block — must not reintroduce
// hot-path garbage. This pins "metrics enabled" to the same zero
// allocations per block as the bare engine.
func TestSteadyStateZeroAllocsWithMetrics(t *testing.T) {
	ctx, _ := newAllocCtx(t)
	w := &worker{ctx: ctx}
	if _, _, err := w.runBlock(0); err != nil { // warm-up: builds arenas
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	blocks := reg.NewCounter("test_blocks_total", "")
	lat := reg.NewHistogram("test_block_seconds", "", obs.DefLatencyBuckets)
	avg := testing.AllocsPerRun(50, func() {
		start := time.Now()
		if _, _, err := w.runBlock(0); err != nil {
			t.Fatal(err)
		}
		blocks.Inc()
		lat.Observe(time.Since(start).Seconds())
	})
	if avg != 0 {
		t.Fatalf("block execution with metrics allocates %.1f times per block; want 0", avg)
	}
}
