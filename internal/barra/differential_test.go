package barra

import (
	"math/rand"
	"testing"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// TestRandomProgramDifferential cross-checks the warp executor
// against an independent scalar interpreter on randomly generated
// straight-line predicated programs: every thread's final register
// file must agree. This exercises operand resolution, predication,
// special registers and the integer/float ALU far beyond the
// hand-written kernels.
func TestRandomProgramDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		prog, outBase := randomALUProgram(rng)
		grid, block := 2, 96 // includes a partial warp
		mem := NewMemory(grid * block * workRegs * 4)
		if _, err := Run(gpu.GTX285(), Launch{Prog: prog, Grid: grid, Block: block}, mem, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for blockID := 0; blockID < grid; blockID++ {
			for tid := 0; tid < block; tid++ {
				want := interpret(prog, blockID, tid, block, grid)
				for r := 0; r < workRegs; r++ {
					addr := outBase + uint32(((blockID*block+tid)*workRegs+r)*4)
					got, err := mem.Load32(addr)
					if err != nil {
						t.Fatal(err)
					}
					if got != want[r] {
						t.Fatalf("trial %d block %d thread %d r%d: sim %#x vs ref %#x\nprogram:\n%s",
							trial, blockID, tid, r, got, want[r], progText(prog))
					}
				}
			}
		}
	}
}

const workRegs = 6 // r0..r5 carry values; r6+ is scratch for addressing

// randomALUProgram builds a straight-line program of predicated ALU
// work on registers r0..r5, ending with a coalesced dump of all six
// to global memory.
func randomALUProgram(rng *rand.Rand) (*isa.Program, uint32) {
	b := kbuild.New("difftest")
	// r0..r5 are the working set, preallocated.
	work := b.Regs(workRegs)
	tid := b.Reg()
	flat := b.Reg()
	addr := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()

	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(flat, cta, ntid, tid)
	// Seed the working registers from thread identity.
	for r := 0; r < workRegs; r++ {
		b.IMadImm(work+isa.Reg(r), flat, uint32(r*3+1), tid)
	}

	n := 10 + rng.Intn(60)
	for i := 0; i < n; i++ {
		dst := work + isa.Reg(rng.Intn(workRegs))
		a := work + isa.Reg(rng.Intn(workRegs))
		c := work + isa.Reg(rng.Intn(workRegs))
		imm := uint32(rng.Intn(1 << 12))
		switch rng.Intn(10) {
		case 0:
			b.IAdd(dst, a, c)
		case 1:
			b.IAddImm(dst, a, imm)
		case 2:
			b.ISub(dst, a, c)
		case 3:
			b.IMulImm(dst, a, imm|1)
		case 4:
			b.IMad(dst, a, c, work+isa.Reg(rng.Intn(workRegs)))
		case 5:
			b.ShlImm(dst, a, uint32(rng.Intn(8)))
		case 6:
			b.ShrImm(dst, a, uint32(rng.Intn(8)))
		case 7:
			b.AndImm(dst, a, imm)
		case 8:
			b.Emit(isa.Instruction{Op: isa.OpXOR, Guard: isa.PT, Dst: dst, SrcA: isa.R(a), SrcB: isa.R(c)})
		case 9:
			b.Emit(isa.Instruction{Op: isa.OpIMIN, Guard: isa.PT, Dst: dst, SrcA: isa.R(a), SrcB: isa.R(c)})
		}
		// A third of the instructions are followed by a fresh
		// compare plus a guarded update, exercising predication.
		if rng.Intn(3) == 0 {
			p := isa.Pred(rng.Intn(isa.NumPreds))
			cmp := isa.CmpOp(rng.Intn(isa.NumCmps))
			b.ISetp(p, cmp, a, c)
			dup := b.Pos()
			b.IAddImm(dst, dst, uint32(rng.Intn(64)))
			b.Guarded(dup, p, rng.Intn(2) == 0)
		}
	}

	// Dump: out[(flat*workRegs + r)*4].
	b.IMulImm(addr, flat, workRegs*4)
	for r := 0; r < workRegs; r++ {
		b.GstOff(addr, work+isa.Reg(r), uint32(r*4))
	}
	b.Exit()
	return b.MustProgram(), 0
}

func progText(p *isa.Program) string {
	out := ""
	for i, in := range p.Code {
		out += in.String()
		if i%4 == 3 {
			out += "\n"
		} else {
			out += " | "
		}
	}
	return out
}

// interpret runs the program for one thread with an independent
// (scalar, switch-based) implementation of the semantics.
func interpret(p *isa.Program, blockID, tid, blockDim, gridDim int) []uint32 {
	regs := make([]uint32, p.RegsPerThread)
	preds := make([]bool, isa.NumPreds)
	out := make([]uint32, workRegs)

	val := func(o isa.Operand, imm uint32) uint32 {
		switch o.Kind {
		case isa.KindReg:
			return regs[o.Reg]
		case isa.KindImm:
			return imm
		case isa.KindSReg:
			switch o.SReg {
			case isa.SRTid:
				return uint32(tid)
			case isa.SRCtaid:
				return uint32(blockID)
			case isa.SRNtid:
				return uint32(blockDim)
			case isa.SRNctaid:
				return uint32(gridDim)
			case isa.SRLane:
				return uint32(tid % gpu.WarpSize)
			case isa.SRWarp:
				return uint32(tid / gpu.WarpSize)
			}
		}
		return 0
	}

	for pc := 0; pc < len(p.Code); pc++ {
		in := p.Code[pc]
		if in.Guard != isa.PT {
			h := preds[in.Guard]
			if in.GuardNeg {
				h = !h
			}
			if !h {
				continue
			}
		}
		a := val(in.SrcA, in.Imm)
		bb := val(in.SrcB, in.Imm)
		cc := val(in.SrcC, in.Imm)
		switch in.Op {
		case isa.OpS2R, isa.OpMOV:
			regs[in.Dst] = a
		case isa.OpIADD:
			regs[in.Dst] = a + bb
		case isa.OpISUB:
			regs[in.Dst] = a - bb
		case isa.OpIMUL:
			regs[in.Dst] = a * bb
		case isa.OpIMAD:
			regs[in.Dst] = a*bb + cc
		case isa.OpSHL:
			regs[in.Dst] = a << (bb & 31)
		case isa.OpSHR:
			regs[in.Dst] = a >> (bb & 31)
		case isa.OpAND:
			regs[in.Dst] = a & bb
		case isa.OpXOR:
			regs[in.Dst] = a ^ bb
		case isa.OpIMIN:
			if int32(a) < int32(bb) {
				regs[in.Dst] = a
			} else {
				regs[in.Dst] = bb
			}
		case isa.OpISETP:
			var r bool
			x, y := int32(a), int32(bb)
			switch in.Cmp {
			case isa.CmpLT:
				r = x < y
			case isa.CmpLE:
				r = x <= y
			case isa.CmpGT:
				r = x > y
			case isa.CmpGE:
				r = x >= y
			case isa.CmpEQ:
				r = x == y
			case isa.CmpNE:
				r = x != y
			}
			preds[in.PDst] = r
		case isa.OpGST:
			// The dump: recover the register index from the offset.
			r := int(in.Imm / 4 % workRegs)
			out[r] = bb
		case isa.OpEXIT:
			return out
		}
	}
	return out
}
