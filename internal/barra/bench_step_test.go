package barra

// Per-layer microbenchmarks for the warp executor: run with
//
//	go test -run - -bench BenchmarkWarpStep -benchmem ./internal/barra/
//
// so the engine's per-instruction cost is measured in isolation from
// the scheduler, collectors and memory simulators.

import (
	"testing"

	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// aluKernel is a straight-line FMAD/IADD body — the dense-matmul
// shape where Step cost is pure dispatch + lane execution.
func aluKernel() *isa.Program {
	b := kbuild.New("bench-alu")
	r := b.Regs(4)
	b.MovImm(r, 1)
	b.MovImm(r+1, 2)
	b.MovImm(r+2, 3)
	for i := 0; i < 16; i++ {
		b.FMad(r+3, r, r+1, r+2)
		b.IAdd(r, r, r+1)
	}
	b.Exit()
	return b.MustProgram()
}

// divergentKernel forks the warp on lane parity and re-merges,
// exercising split bookkeeping and partial active masks every pass.
func divergentKernel() *isa.Program {
	b := kbuild.New("bench-divergent")
	tid, par, x := b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.AndImm(par, tid, 1)
	b.ISetpImm(isa.P0, isa.CmpNE, par, 0)
	for i := 0; i < 8; i++ {
		br := b.BraIf(isa.P0, false)
		b.IAddImm(x, tid, 1) // even lanes only
		b.IAddImm(x, x, 2)
		b.SetTarget(br, b.Pos())
		b.IAddImm(x, x, 3) // reconverged
	}
	b.Exit()
	return b.MustProgram()
}

func benchWarpStep(b *testing.B, prog *isa.Program) {
	mem := NewMemory(1 << 12)
	shared := make([]uint32, 4)
	w, err := NewWarp(prog, 0, 0, 32, 1, 32, shared, mem)
	if err != nil {
		b.Fatal(err)
	}
	var info StepInfo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Done() {
			w.Reset(0)
		}
		if err := w.Step(&info); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarpStep(b *testing.B) {
	b.Run("alu", func(b *testing.B) { benchWarpStep(b, aluKernel()) })
	b.Run("divergent", func(b *testing.B) { benchWarpStep(b, divergentKernel()) })
}
