package barra

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gpuperf/internal/bank"
	"gpuperf/internal/coalesce"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// warpHalves is the number of half-warps per warp.
const warpHalves = gpu.WarpSize / gpu.HalfWarp

// budgetBatch is the instruction-budget reservation a worker takes
// from the shared pool at a time: large enough that the atomic
// compare-and-swap stays off the per-instruction path, small enough
// that a runaway kernel is caught within workers×budgetBatch
// instructions of the configured limit.
const budgetBatch = 8192

// runContext is the immutable state of one Run, shared read-only by
// every worker: launch, device, simulators (bank and coalesce are
// stateless), collectors, and the two pieces of cross-worker
// coordination — the block cursor and the shared instruction budget.
type runContext struct {
	// goCtx is the caller's cancellation context (nil when absent —
	// tests that assemble a runContext by hand run uncancellable).
	goCtx      context.Context
	cfg        gpu.Config
	launch     Launch
	mem        *Memory
	banks      *bank.Sim
	coal       []*coalesce.Sim // parallel to segs
	segs       []int           // granularities; segs[0] is the device's native
	collectors []Collector

	hook     func(blockID int, load bool, addrs []uint32)
	dispatch *hookDispatcher // non-nil iff hook set and >1 worker

	// replay is the homogeneous-block replay machinery; non-nil iff
	// the run takes the engine path (no hook, no foreign collectors,
	// replay not disabled — see replay.go).
	replay *replayState

	// maxInstr is the per-run warp-instruction budget
	// (Options.MaxWarpInstructions); budget counts the unreserved
	// remainder, drawn down by workers in budgetBatch chunks.
	maxInstr int64
	budget   atomic.Int64

	// nextBlock hands out block IDs; failed aborts the other workers
	// once one has errored.
	nextBlock atomic.Int64
	failed    atomic.Bool
}

// reserveBudget draws up to budgetBatch instructions from the shared
// pool, returning 0 when the run's budget is exhausted.
func (ctx *runContext) reserveBudget() int64 {
	for {
		rem := ctx.budget.Load()
		if rem <= 0 {
			return 0
		}
		n := rem
		if n > budgetBatch {
			n = budgetBatch
		}
		if ctx.budget.CompareAndSwap(rem, rem-n) {
			return n
		}
	}
}

// errCancelled marks a worker stopped because a sibling failed first;
// the sibling's error is the one reported.
var errCancelled = fmt.Errorf("barra: run cancelled by another worker's failure")

// cancelled returns the caller context's error, or nil when no
// context was supplied or it is still live. Checked between blocks
// and at budget refills — off the per-instruction path.
func (ctx *runContext) cancelled() error {
	if ctx.goCtx == nil {
		return nil
	}
	return ctx.goCtx.Err()
}

// worker executes blocks one at a time on its own goroutine. All of
// its state — shared-memory arena, warp contexts, scheduling scratch,
// the StepTrace handed to collectors — is reused from block to block,
// so steady-state execution allocates only the per-block
// BlockCollectors.
type worker struct {
	ctx *runContext

	shared    []uint32 // shared-memory arena, zeroed per block
	warps     []*Warp  // reused via Reset
	atBarrier []bool
	workCount []int64

	info  StepInfo
	trace StepTrace
	// addrBuf gathers active-lane addresses per half-warp. txLists
	// backs the per-granularity transaction-list-of-lists handed to
	// trace.Global; txBufs holds one reusable transaction buffer per
	// (half-warp, granularity) pair, filled in place by
	// coalesce.HalfWarpInto — steady state never allocates.
	addrBuf [warpHalves][gpu.HalfWarp]uint32
	txLists [warpHalves][][]coalesce.Transaction
	txBufs  [warpHalves][][]coalesce.Transaction

	curBlock int      // block in flight
	avail    int64    // unspent instruction-budget reservation
	log      *hookLog // per-block hook journal (nil when hook inline/absent)

	bcs []BlockCollector // collectors of the block in flight

	// eng is the replay signature and undo scratch of the engine
	// path (see replay.go); unused on the live path.
	eng engineState
	// engHits and engMisses drive the engine path's per-worker
	// adaptive fallback: a worker whose first engineFallbackMisses
	// blocks all miss without one hit stops attempting replay.
	engHits, engMisses int
}

// initBlock (re)binds the worker's scratch state to blockID.
func (w *worker) initBlock(blockID int) error {
	w.curBlock = blockID
	l := w.ctx.launch
	nw := l.WarpsPerBlock()
	if w.shared == nil {
		w.shared = make([]uint32, l.Prog.SharedMemBytes/4)
		w.warps = make([]*Warp, nw)
		for wi := 0; wi < nw; wi++ {
			lanes := l.Block - wi*gpu.WarpSize
			if lanes > gpu.WarpSize {
				lanes = gpu.WarpSize
			}
			warp, err := NewWarp(l.Prog, blockID, wi, l.Block, l.Grid, lanes, w.shared, w.ctx.mem)
			if err != nil {
				return err
			}
			w.warps[wi] = warp
		}
		w.atBarrier = make([]bool, nw)
		w.workCount = make([]int64, nw)
		for half := 0; half < warpHalves; half++ {
			w.txLists[half] = make([][]coalesce.Transaction, 0, len(w.ctx.coal))
			w.txBufs[half] = make([][]coalesce.Transaction, len(w.ctx.coal))
			for si := range w.txBufs[half] {
				// A half-warp forms at most gpu.HalfWarp transactions
				// (one per lane), so these buffers never regrow.
				w.txBufs[half][si] = make([]coalesce.Transaction, 0, gpu.HalfWarp)
			}
		}
	} else {
		clear(w.shared)
		for _, warp := range w.warps {
			warp.Reset(blockID)
		}
		clear(w.atBarrier)
		clear(w.workCount)
	}
	w.bcs = w.bcs[:0]
	for _, c := range w.ctx.collectors {
		w.bcs = append(w.bcs, c.Block(blockID))
	}
	if w.ctx.hook != nil && w.ctx.dispatch != nil {
		w.log = newHookLog(blockID)
	}
	return nil
}

// runBlock executes one block to completion and returns its barrier
// count plus the finished per-collector block sinks. The returned
// slice is the worker's reusable scratch — the caller must copy it
// before the next runBlock call.
func (w *worker) runBlock(blockID int) (int, []BlockCollector, error) {
	if err := w.initBlock(blockID); err != nil {
		return 0, nil, err
	}
	l := w.ctx.launch

	stage := 0
	barriers := 0
	for {
		ranAny := false
		for wi, warp := range w.warps {
			if warp.Done() || w.atBarrier[wi] {
				continue
			}
			// Run this warp until it blocks.
			for {
				if w.avail == 0 {
					if w.ctx.failed.Load() {
						return 0, nil, errCancelled
					}
					if err := w.ctx.cancelled(); err != nil {
						return 0, nil, err
					}
					w.avail = w.ctx.reserveBudget()
					if w.avail == 0 {
						return 0, nil, fmt.Errorf("barra: instruction budget exhausted (%d warp instructions across the run) — runaway kernel %q?",
							w.ctx.maxInstr, l.Prog.Name)
					}
				}
				if err := warp.Step(&w.info); err != nil {
					return 0, nil, err
				}
				w.avail--
				w.record(stage, wi)
				if w.info.Barrier {
					w.atBarrier[wi] = true
					break
				}
				if w.info.Done {
					break
				}
			}
			ranAny = true
		}

		allDone := true
		allBlocked := true
		anyExited := false
		for wi, warp := range w.warps {
			if warp.Done() {
				anyExited = true
				continue
			}
			allDone = false
			if !w.atBarrier[wi] {
				allBlocked = false
			}
		}
		if allDone {
			break
		}
		if allBlocked {
			if anyExited {
				// A warp exited while siblings wait at a barrier:
				// undefined behaviour on hardware, a bug here.
				return 0, nil, fmt.Errorf("barra: %q: warps wait at a barrier after others exited", l.Prog.Name)
			}
			// Barrier release: everyone advances to the next stage.
			clear(w.atBarrier)
			w.stageEnd(stage)
			stage++
			barriers++
			continue
		}
		if !ranAny {
			return 0, nil, fmt.Errorf("barra: deadlock in %q: warps blocked at a barrier while others exited", l.Prog.Name)
		}
	}
	w.stageEnd(stage)

	if w.log != nil {
		w.ctx.dispatch.submit(w.log)
		w.log = nil
	}
	return barriers, w.bcs, nil
}

// stageEnd closes a stage for every collector and resets the per-warp
// work counters.
func (w *worker) stageEnd(stage int) {
	for _, bc := range w.bcs {
		bc.StageEnd(stage, w.workCount)
	}
	clear(w.workCount)
}

// record derives the memory-system outcome of the step just executed
// into the worker's StepTrace scratch and feeds it to the block's
// collectors.
func (w *worker) record(stage, wi int) {
	info := &w.info
	op := info.In.Op
	if info.ActiveCount > 0 && !isa.IsControl(op) && op != isa.OpNOP {
		w.workCount[wi]++
	}
	tr := w.buildTrace()
	for _, bc := range w.bcs {
		bc.Step(stage, tr)
	}
}

// buildTrace derives the memory-system outcome of the step described
// by w.info (bank conflicts, coalesced transactions at every
// granularity) into the worker's StepTrace scratch. It is shared by
// the live path (per executed step) and the replay materializer (per
// journaled event): both must accumulate identically.
func (w *worker) buildTrace() *StepTrace {
	info := &w.info
	tr := &w.trace
	tr.Info = info
	tr.SharedAccesses, tr.SharedTx, tr.SharedTxIdeal, tr.SharedBytes = 0, 0, 0, 0
	tr.SharedDeg[0], tr.SharedDeg[1] = 0, 0
	tr.Global = tr.Global[:0]

	op := info.In.Op
	if info.SmemOperand {
		// Broadcast read of one shared word per half-warp: one
		// conflict-free transaction per active half-warp.
		tr.SharedAccesses++
		for half := 0; half < warpHalves; half++ {
			if info.HalfMask(half) != 0 {
				tr.SharedTx++
				tr.SharedTxIdeal++
				tr.SharedBytes += 4
			}
		}
	}

	switch {
	case isa.IsShared(op):
		tr.SharedAccesses++
		tr.SharedBytes += int64(info.ActiveCount) * 4
		for half := 0; half < warpHalves; half++ {
			addrs := w.gatherHalf(half)
			if len(addrs) == 0 {
				continue
			}
			deg := w.ctx.banks.Transactions(addrs)
			tr.SharedTx += int64(deg)
			tr.SharedTxIdeal++
			tr.SharedDeg[half] = uint8(deg)
		}

	case isa.IsGlobal(op):
		for half := 0; half < warpHalves; half++ {
			addrs := w.gatherHalf(half)
			if len(addrs) == 0 {
				continue
			}
			switch {
			case w.log != nil:
				w.log.add(op == isa.OpGLD, addrs)
			case w.ctx.hook != nil:
				w.ctx.hook(w.curBlock, op == isa.OpGLD, addrs) //gpuperf:alloc-ok opt-in journaling hook; hooked runs are outside the 0-alloc pin
			}
			txs := w.txLists[half][:0]
			for si, c := range w.ctx.coal {
				buf := c.HalfWarpInto(w.txBufs[half][si][:0], addrs, 4)
				w.txBufs[half][si] = buf
				txs = append(txs, buf) //gpuperf:alloc-ok appends into per-worker scratch reused across steps; growth amortizes to zero
			}
			w.txLists[half] = txs
			tr.Global = append(tr.Global, GlobalHalfWarp{Addrs: addrs, Tx: txs}) //gpuperf:alloc-ok appends into per-worker trace scratch reused across steps; growth amortizes to zero
		}
	}
	return tr
}

// gatherHalf collects the active lanes' addresses of one half-warp
// into the worker's scratch buffer.
func (w *worker) gatherHalf(half int) []uint32 {
	return w.info.GatherHalf(half, &w.addrBuf[half])
}

// execute shards the grid across the given number of workers and
// returns each block's barrier count and finished collectors, indexed
// by block ID.
func (ctx *runContext) execute(workers int) ([]int, [][]BlockCollector, error) {
	grid := ctx.launch.Grid
	barriers := make([]int, grid)
	results := make([][]BlockCollector, grid)
	// One flat arena holds every block's collector slice: two
	// allocations per run instead of one per block.
	ncol := len(ctx.collectors)
	arena := make([]BlockCollector, grid*ncol)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		if err != errCancelled {
			errOnce.Do(func() { firstErr = err })
		}
		ctx.failed.Store(true)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{ctx: ctx}
			for {
				b := int(ctx.nextBlock.Add(1)) - 1
				if b >= grid || ctx.failed.Load() {
					return
				}
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				var (
					nb  int
					bcs []BlockCollector
					err error
				)
				if ctx.replay != nil {
					nb, bcs, err = w.runBlockEngine(b)
				} else {
					nb, bcs, err = w.runBlock(b)
				}
				if err != nil {
					fail(err)
					return
				}
				barriers[b] = nb
				slot := arena[b*ncol : (b+1)*ncol : (b+1)*ncol]
				copy(slot, bcs)
				results[b] = slot
			}
		}()
	}
	wg.Wait()
	if ctx.dispatch != nil {
		ctx.dispatch.close()
	}
	if ctx.failed.Load() {
		if firstErr == nil {
			firstErr = errCancelled
		}
		return nil, nil, firstErr
	}
	return barriers, results, nil
}
