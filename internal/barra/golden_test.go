package barra_test

// Golden-statistics tests: the Stats of the three paper kernels are
// pinned to fingerprints recorded before the zero-allocation hot-path
// rewrite, so any engine change that perturbs a single counter — or a
// single byte of final device memory — fails loudly. The fingerprint
// is a SHA-256 over a canonical (sorted-key) rendering of Stats plus
// the final memory image.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gpuperf/internal/barra"
)

// canonicalStats renders Stats deterministically: map keys sorted,
// every counter printed.
func canonicalStats(st *barra.Stats) string {
	var b strings.Builder
	stage := func(s *barra.StageStats) {
		fmt.Fprintf(&b, "wi=%d byclass=%v fmad=%d sa=%d stx=%d stxnc=%d sb=%d gtx=%d gb=%d gub=%d www=%d\n",
			s.WarpInstrs, s.ByClass, s.FMADs, s.SharedAccesses, s.SharedTx,
			s.SharedTxNoConflict, s.SharedBytes, s.Global.Transactions,
			s.Global.Bytes, s.GlobalUsefulBytes, s.WarpsWithWork)
	}
	fmt.Fprintf(&b, "grid=%d block=%d barriers=%d\ntotal: ", st.Grid, st.Block, st.Barriers)
	stage(&st.Total)
	for i := range st.Stages {
		fmt.Fprintf(&b, "stage %d: ", i)
		stage(&st.Stages[i])
	}
	segs := make([]int, 0, len(st.GlobalAt))
	for seg := range st.GlobalAt {
		segs = append(segs, seg)
	}
	sort.Ints(segs)
	for _, seg := range segs {
		t := st.GlobalAt[seg]
		fmt.Fprintf(&b, "globalAt[%d]: tx=%d bytes=%d\n", seg, t.Transactions, t.Bytes)
	}
	regions := make([]string, 0, len(st.RegionTraffic))
	for name := range st.RegionTraffic {
		regions = append(regions, name)
	}
	sort.Strings(regions)
	for _, name := range regions {
		fmt.Fprintf(&b, "region %q useful=%d\n", name, st.RegionUseful[name])
		for _, seg := range segs {
			t := st.RegionTraffic[name][seg]
			fmt.Fprintf(&b, "region %q [%d]: tx=%d bytes=%d\n", name, seg, t.Transactions, t.Bytes)
		}
	}
	return b.String()
}

func fingerprint(st *barra.Stats, mem []uint32) string {
	h := sha256.New()
	h.Write([]byte(canonicalStats(st)))
	var w [4]byte
	for _, v := range mem {
		w[0], w[1], w[2], w[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenFingerprints were recorded at PR 1 (pre-refactor engine);
// the zero-allocation rewrite must reproduce them bit-identically.
var goldenFingerprints = map[string]string{
	"matmul16":       "8813873cb56505c98c47367757a1bb651e446067c3408182b125661acd3aa6a7",
	"spmv-bell-imiv": "6560b24ebde310e86677e706d3cf092c023c1c95f19fd3d6e83c121ef8cb8fa9",
	"cr":             "cbd79300f1d0bc82874c70b00fc381f02cae7d2cb3065380f636177a6702d499",
}

func TestGoldenStats(t *testing.T) {
	for _, c := range detCases() {
		t.Run(c.name, func(t *testing.T) {
			want, ok := goldenFingerprints[c.name]
			if !ok {
				t.Fatalf("no golden recorded for %q", c.name)
			}
			st, mem := runAt(t, c, 1)
			got := fingerprint(st, mem)
			if got != want {
				t.Errorf("fingerprint drift: got %s want %s\ncanonical stats:\n%s",
					got, want, canonicalStats(st))
			}
		})
	}
}
