package barra

import (
	"math"
	"strings"
	"testing"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

func cfg() gpu.Config { return gpu.GTX285() }

// scaleKernel: out[i] = in[i]*2 + 1 for i < n, one thread per element.
func scaleKernel(t *testing.T, inBase, outBase, n uint32) *isa.Program {
	t.Helper()
	b := kbuild.New("scale")
	tid := b.Reg()
	flat := b.Reg()
	addr := b.Reg()
	x := b.Reg()
	two := b.Reg()
	one := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(flat, isa.SRCtaid)
	b.IMulImm(flat, flat, 0) // placeholder; recompute below
	b.S2R(flat, isa.SRCtaid)
	ntid := b.Reg()
	b.S2R(ntid, isa.SRNtid)
	b.IMad(flat, flat, ntid, tid)
	b.ISetpImm(isa.P0, isa.CmpLT, flat, n)
	b.MovF(two, 2)
	b.MovF(one, 1)
	b.ShlImm(addr, flat, 2)
	b.IAddImm(addr, addr, inBase)
	ld := b.Pos()
	b.Gld(x, addr)
	b.Guarded(ld, isa.P0, false)
	b.FMad(x, x, two, one)
	b.ShlImm(addr, flat, 2)
	b.IAddImm(addr, addr, outBase)
	stIdx := b.Pos()
	b.Gst(addr, x)
	b.Guarded(stIdx, isa.P0, false)
	b.Exit()
	return b.MustProgram()
}

func TestFunctionalCorrectness(t *testing.T) {
	const n = 1000 // deliberately not a multiple of the block size
	mem := NewMemory(1 << 16)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i) * 0.25
	}
	inBase, outBase := uint32(0), uint32(4096*4)
	if err := mem.WriteFloats(inBase, in); err != nil {
		t.Fatal(err)
	}
	prog := scaleKernel(t, inBase, outBase, n)
	stats, err := Run(cfg(), Launch{Prog: prog, Grid: 8, Block: 128}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mem.ReadFloats(outBase, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		want := in[i]*2 + 1
		if got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
	// 1024 threads launched, 1000 active: useful bytes = 1000·4 per
	// direction.
	if stats.Total.GlobalUsefulBytes != 2*1000*4 {
		t.Errorf("useful bytes = %d", stats.Total.GlobalUsefulBytes)
	}
	// Sequential access is perfectly coalesced.
	if e := stats.CoalescingEfficiency(); e < 0.95 {
		t.Errorf("coalescing efficiency = %v", e)
	}
	if stats.Total.FMADs != int64(8*128/32) {
		t.Errorf("FMAD warp instructions = %d", stats.Total.FMADs)
	}
}

func TestSpecialRegisters(t *testing.T) {
	// Store every special register's value and check lane 37 of
	// block 2 (warp 1, lane 5).
	b := kbuild.New("sregs")
	v := b.Reg()
	addr := b.Reg()
	flat := b.Reg()
	ntid := b.Reg()
	tid := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(flat, isa.SRCtaid)
	b.IMad(flat, flat, ntid, tid)
	b.ShlImm(addr, flat, 2)
	b.S2R(v, isa.SRWarp)
	b.IMulImm(v, v, 1000)
	lane := b.Reg()
	b.S2R(lane, isa.SRLane)
	b.IAdd(v, v, lane)
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(1 << 12)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 3, Block: 64}, mem, nil); err != nil {
		t.Fatal(err)
	}
	// Global thread 2*64+37 = 165; warp within block = 1, lane 5.
	got, err := mem.Load32(165 * 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1005 {
		t.Errorf("thread 165 wrote %d, want 1005", got)
	}
}

// TestBarrierStages: a kernel with two barriers has three stages and
// shared-memory communication across warps works.
func TestBarrierStages(t *testing.T) {
	b := kbuild.New("stages")
	b.SharedBytes(256 * 4)
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	rev := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 2)
	b.Mov(v, tid)
	b.Sst(addr, v) // shared[tid] = tid
	b.Bar()
	// v = shared[255 - tid]
	b.MovImm(rev, 255)
	b.ISub(rev, rev, tid)
	b.ShlImm(rev, rev, 2)
	b.Sld(v, rev)
	b.Bar()
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(4096)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 256}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Barriers != 2 || len(stats.Stages) != 3 {
		t.Fatalf("barriers=%d stages=%d", stats.Barriers, len(stats.Stages))
	}
	got, err := mem.Load32(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 255 {
		t.Errorf("thread 0 read %d, want 255", got)
	}
	// Stage 0 has the store, stage 1 the load, stage 2 neither.
	if stats.Stages[0].SharedAccesses != 8 || stats.Stages[1].SharedAccesses != 8 {
		t.Errorf("shared accesses per stage: %d, %d",
			stats.Stages[0].SharedAccesses, stats.Stages[1].SharedAccesses)
	}
	if stats.Stages[2].SharedAccesses != 0 {
		t.Errorf("stage 2 has shared accesses")
	}
	// Unit-stride shared access: conflict-free (factor 1.0).
	if f := stats.BankConflictFactor(); f != 1.0 {
		t.Errorf("conflict factor = %v", f)
	}
}

// TestBankConflictCounting: stride-2 shared reads are 2-way
// conflicted, doubling transactions versus the conflict-free count.
func TestBankConflictCounting(t *testing.T) {
	b := kbuild.New("stride2")
	b.SharedBytes(64 * 2 * 4)
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 3) // tid*8: stride 2 words
	b.Sld(v, addr)
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(4096)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 64}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := stats.BankConflictFactor(); f != 2.0 {
		t.Errorf("stride-2 conflict factor = %v, want 2", f)
	}
}

// TestCoalescingGranularities: scattered accesses tallied at 32- and
// 16-byte granularity move half the bytes at the finer size.
func TestCoalescingGranularities(t *testing.T) {
	b := kbuild.New("scatter")
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 7) // tid*128: one segment each
	b.Gld(v, addr)
	b.Exit()
	mem := NewMemory(1 << 13)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem,
		&Options{ExtraSegments: []int{16, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GlobalAt[32].Bytes != 32*32 {
		t.Errorf("32B granularity moved %d bytes", stats.GlobalAt[32].Bytes)
	}
	if stats.GlobalAt[16].Bytes != 32*16 {
		t.Errorf("16B granularity moved %d bytes", stats.GlobalAt[16].Bytes)
	}
	if stats.GlobalAt[4].Bytes != 32*4 {
		t.Errorf("4B granularity moved %d bytes", stats.GlobalAt[4].Bytes)
	}
}

func TestRegionAttribution(t *testing.T) {
	b := kbuild.New("regions")
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 2)
	b.Gld(v, addr) // region A: [0, 256)
	b.IAddImm(addr, addr, 1024)
	b.Gld(v, addr) // region B: [1024, 1280)
	b.Exit()
	mem := NewMemory(4096)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem,
		&Options{Regions: []Region{{Name: "A", Lo: 0, Hi: 512}, {Name: "B", Lo: 1024, Hi: 2048}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RegionUseful["A"] != 128 || stats.RegionUseful["B"] != 128 {
		t.Errorf("region useful bytes: %v", stats.RegionUseful)
	}
	if stats.RegionTraffic["A"][32].Bytes != 128 || stats.RegionTraffic["B"][32].Bytes != 128 {
		t.Errorf("region traffic: %v", stats.RegionTraffic)
	}
}

// TestDivergentForwardBranch: lanes split by an if/else over a
// forward branch must reconverge with correct per-lane results.
func TestDivergentForwardBranch(t *testing.T) {
	// out[tid] = tid < 7 ? tid*10 : tid+100, via real branches.
	b := kbuild.New("diverge")
	tid := b.Reg()
	v := b.Reg()
	addr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ISetpImm(isa.P0, isa.CmpLT, tid, 7)
	toThen := b.BraIf(isa.P0, false) // taken lanes park until 'then'
	// else path (P0 false lanes):
	b.IAddImm(v, tid, 100)
	toEnd := b.Bra()
	thenPC := b.Pos()
	b.SetTarget(toThen, thenPC)
	b.IMulImm(v, tid, 10)
	endPC := b.Pos()
	b.SetTarget(toEnd, endPC)
	b.ShlImm(addr, tid, 2)
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(256)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err != nil {
		t.Fatal(err)
	}
	for tidv := 0; tidv < 32; tidv++ {
		got, err := mem.Load32(uint32(tidv * 4))
		if err != nil {
			t.Fatal(err)
		}
		want := uint32(tidv + 100)
		if tidv < 7 {
			want = uint32(tidv * 10)
		}
		if got != want {
			t.Errorf("out[%d] = %d, want %d", tidv, got, want)
		}
	}
}

// TestNestedDivergence: an inner divergent branch inside a divergent
// region reconverges correctly (stacked masks).
func TestNestedDivergence(t *testing.T) {
	// if tid < 16 { if tid < 4 { v=1 } else { v=2 } } else { v=3 }
	b := kbuild.New("nested")
	tid := b.Reg()
	v := b.Reg()
	addr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovImm(v, 3)
	b.ISetpImm(isa.P0, isa.CmpGE, tid, 16)
	skipOuter := b.BraIf(isa.P0, false)
	// outer then: tid < 16
	b.MovImm(v, 2)
	b.ISetpImm(isa.P1, isa.CmpGE, tid, 4)
	skipInner := b.BraIf(isa.P1, false)
	b.MovImm(v, 1) // tid < 4
	inner := b.Pos()
	b.SetTarget(skipInner, inner)
	outer := b.Pos()
	b.SetTarget(skipOuter, outer)
	b.ShlImm(addr, tid, 2)
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(256)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err != nil {
		t.Fatal(err)
	}
	for tidv := 0; tidv < 32; tidv++ {
		got, _ := mem.Load32(uint32(tidv * 4))
		want := uint32(3)
		switch {
		case tidv < 4:
			want = 1
		case tidv < 16:
			want = 2
		}
		if got != want {
			t.Errorf("out[%d] = %d, want %d", tidv, got, want)
		}
	}
}

// TestDivergentBackwardBranchRejected: per-lane loop trip counts via
// a backward branch remain unsupported (use predication).
func TestDivergentBackwardBranchRejected(t *testing.T) {
	b := kbuild.New("divloop")
	tid := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovImm(ctr, 0)
	top := b.Pos()
	b.IAddImm(ctr, ctr, 1)
	b.ISetp(isa.P0, isa.CmpLT, ctr, tid) // per-lane trip count
	br := b.BraIf(isa.P0, false)
	b.SetTarget(br, top)
	b.Exit()
	mem := NewMemory(64)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err == nil {
		t.Fatal("divergent backward branch accepted")
	}
}

// TestBarrierInDivergenceRejected: __syncthreads inside a divergent
// region is undefined behaviour on hardware and an error here.
func TestBarrierInDivergenceRejected(t *testing.T) {
	b := kbuild.New("divbar")
	tid := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ISetpImm(isa.P0, isa.CmpLT, tid, 7)
	br := b.BraIf(isa.P0, false)
	b.Bar() // executed only by the non-taking lanes: diverged
	b.MovImm(v, 1)
	end := b.Pos()
	b.SetTarget(br, end)
	b.Exit()
	mem := NewMemory(64)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err == nil {
		t.Fatal("barrier inside divergence accepted")
	}
}

func TestUniformPerWarpBranchOK(t *testing.T) {
	// Warp-uniform condition (tid < 32) diverges across warps but
	// not within one: must run.
	b := kbuild.New("warpuniform")
	tid := b.Reg()
	addr := b.Reg()
	one := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovImm(one, 1)
	b.ISetpImm(isa.P0, isa.CmpGE, tid, 32)
	skip := b.BraIf(isa.P0, false)
	b.ShlImm(addr, tid, 2)
	b.Gst(addr, one)
	end := b.Pos()
	b.SetTarget(skip, end)
	b.Exit()
	mem := NewMemory(1024)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 64}, mem, nil); err != nil {
		t.Fatal(err)
	}
	v31, _ := mem.Load32(31 * 4)
	v32, _ := mem.Load32(32 * 4)
	if v31 != 1 || v32 != 0 {
		t.Errorf("guarded store wrong: v31=%d v32=%d", v31, v32)
	}
}

func TestLoopExecution(t *testing.T) {
	// acc = sum of 1..10 per thread via a counted loop.
	b := kbuild.New("loop")
	tid := b.Reg()
	acc := b.Reg()
	ctr := b.Reg()
	addr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.MovImm(acc, 0)
	b.Loop(ctr, 10, func() {
		b.IAddImm(acc, acc, 1)
		b.IAdd(acc, acc, ctr)
	})
	b.ShlImm(addr, tid, 2)
	b.Gst(addr, acc)
	b.Exit()
	mem := NewMemory(256)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := mem.Load32(0)
	if got != 55 { // 10 + (0+1+...+9)
		t.Errorf("loop sum = %d, want 55", got)
	}
}

func TestTranscendentalsAndDouble(t *testing.T) {
	b := kbuild.New("funcs")
	x := b.Reg()
	s := b.Reg()
	r := b.Reg()
	addr := b.Reg()
	b.MovF(x, 2.0)
	b.Unary(isa.OpSIN, s, x)
	b.Rcp(r, x)
	b.MovImm(addr, 0)
	b.Gst(addr, s)
	b.MovImm(addr, 4)
	b.Gst(addr, r)
	dlo := b.RegPair()
	dres := b.RegPair()
	b.MovImm(dlo, 0)
	b.MovImm(dlo+1, 0x40000000) // float64(2.0)
	b.MovImm(dres, 0)
	b.MovImm(dres+1, 0x3ff00000) // float64(1.0)
	b.DFma(dres, dlo, dlo, dres) // 2*2+1 = 5
	b.MovImm(addr, 8)
	b.Gst(addr, dres)
	b.MovImm(addr, 12)
	b.Gst(addr, dres+1)
	b.Exit()
	mem := NewMemory(64)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 1}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := mem.Float32(0)
	if math.Abs(float64(sv)-math.Sin(2)) > 1e-6 {
		t.Errorf("sin(2) = %v", sv)
	}
	rv, _ := mem.Float32(4)
	if rv != 0.5 {
		t.Errorf("rcp(2) = %v", rv)
	}
	lo, _ := mem.Load32(8)
	hi, _ := mem.Load32(12)
	d := math.Float64frombits(uint64(hi)<<32 | uint64(lo))
	if d != 5.0 {
		t.Errorf("dfma = %v, want 5", d)
	}
	if stats.Total.ByClass[isa.ClassIII] != 2 || stats.Total.ByClass[isa.ClassIV] != 1 {
		t.Errorf("class counts: %v", stats.Total.ByClass)
	}
}

func TestMemoryBoundsErrors(t *testing.T) {
	mem := NewMemory(64)
	if _, err := mem.Load32(64); err == nil {
		t.Error("OOB load accepted")
	}
	if err := mem.Store32(2, 1); err == nil {
		t.Error("unaligned store accepted")
	}

	b := kbuild.New("oob")
	addr := b.Reg()
	v := b.Reg()
	b.MovImm(addr, 1<<20)
	b.Gld(v, addr)
	b.Exit()
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem, nil); err == nil {
		t.Error("kernel OOB access accepted")
	}

	s := kbuild.New("soob")
	s.SharedBytes(16)
	saddr := s.Reg()
	sv := s.Reg()
	s.MovImm(saddr, 64)
	s.Sld(sv, saddr)
	s.Exit()
	if _, err := Run(cfg(), Launch{Prog: s.MustProgram(), Grid: 1, Block: 32}, NewMemory(64), nil); err == nil {
		t.Error("shared OOB accepted")
	}
}

func TestLaunchValidation(t *testing.T) {
	p := scaleKernel(t, 0, 0, 1)
	mem := NewMemory(64)
	bad := []Launch{
		{Prog: nil, Grid: 1, Block: 1},
		{Prog: p, Grid: 0, Block: 32},
		{Prog: p, Grid: 1, Block: 0},
		{Prog: p, Grid: 1, Block: 4096},
	}
	for i, l := range bad {
		if _, err := Run(cfg(), l, mem, nil); err == nil {
			t.Errorf("launch %d accepted", i)
		}
	}
	if _, err := Run(cfg(), Launch{Prog: p, Grid: 1, Block: 32}, nil, nil); err == nil {
		t.Error("nil memory accepted")
	}
}

func TestInstructionBudget(t *testing.T) {
	b := kbuild.New("forever")
	br := b.Bra()
	b.SetTarget(br, 0)
	b.Exit()
	mem := NewMemory(64)
	_, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 32}, mem,
		&Options{MaxWarpInstructions: 1000})
	if err == nil {
		t.Fatal("infinite loop not stopped")
	}
}

func TestIrregularBarrierDeadlock(t *testing.T) {
	// Warp 0 hits a barrier; warp 1 exits without one: deadlock
	// must be reported, not hung.
	b := kbuild.New("skewbar")
	tid := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ISetpImm(isa.P0, isa.CmpGE, tid, 32)
	br := b.BraIf(isa.P0, false) // warp 1 jumps straight to exit
	b.Bar()
	end := b.Pos()
	b.SetTarget(br, end)
	b.Exit()
	mem := NewMemory(64)
	if _, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 64}, mem, nil); err == nil {
		t.Fatal("barrier deadlock not detected")
	}
}

func TestWarpsWithWorkTracking(t *testing.T) {
	// Two warps; only warp 0 does real work (guarded).
	b := kbuild.New("halfwork")
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ISetpImm(isa.P0, isa.CmpLT, tid, 32)
	b.ShlImm(addr, tid, 2)
	ld := b.Pos()
	b.Gld(v, addr)
	b.Guarded(ld, isa.P0, false)
	b.Exit()
	mem := NewMemory(1024)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 1, Block: 64}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both warps executed ALU setup, so both "worked"; the load was
	// active in warp 0 only. WarpsWithWork counts warps with any
	// unskipped non-control work — here 2. The guarded-load count
	// shows the distinction:
	if stats.Total.WarpsWithWork != 2 {
		t.Errorf("WarpsWithWork = %d", stats.Total.WarpsWithWork)
	}
	if stats.Total.GlobalUsefulBytes != 32*4 {
		t.Errorf("useful bytes = %d", stats.Total.GlobalUsefulBytes)
	}
}

func TestStatsReport(t *testing.T) {
	b := kbuild.New("report")
	b.SharedBytes(256)
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ShlImm(addr, tid, 2)
	b.Gld(v, addr)
	b.Sst(addr, v)
	b.Bar()
	b.Sld(v, addr)
	b.FMad(v, v, v, v)
	b.Gst(addr, v)
	b.Exit()
	mem := NewMemory(4096)
	stats, err := Run(cfg(), Launch{Prog: b.MustProgram(), Grid: 2, Block: 64}, mem,
		&Options{ExtraSegments: []int{16}, Regions: []Region{{Name: "data", Lo: 0, Hi: 4096}}})
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.String()
	for _, want := range []string{
		"launch: 2 blocks x 64 threads, 1 barriers/block",
		"computational density",
		"bank-conflict factor",
		"coalescing efficiency",
		"traffic by transaction granularity",
		"traffic by region",
		"  data:",
		"stage 0:",
		"stage 1:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
