package barra

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gpuperf/internal/isa"
)

// Fprint renders the dynamic statistics as text — the "info
// extractor" payload of paper Fig. 1 in human-readable form, the
// counterpart of what profiling tools surface.
func (s *Stats) Fprint(w io.Writer) {
	fmt.Fprintf(w, "launch: %d blocks x %d threads, %d barriers/block\n",
		s.Grid, s.Block, s.Barriers)
	fmt.Fprintf(w, "warp instructions: %d total", s.Total.WarpInstrs)
	for cls := isa.Class(0); int(cls) < isa.NumClasses; cls++ {
		fmt.Fprintf(w, ", %s %d", cls, s.Total.ByClass[cls])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "computational density: %.2f (%d MADs)\n",
		s.InstructionDensity(), s.Total.FMADs)
	fmt.Fprintf(w, "shared memory: %d accesses, %d transactions (%.2fx bank-conflict factor)\n",
		s.Total.SharedAccesses, s.Total.SharedTx, s.BankConflictFactor())
	fmt.Fprintf(w, "global memory: %d transactions, %d bytes moved, %d useful (%.0f%% coalescing efficiency)\n",
		s.Total.Global.Transactions, s.Total.Global.Bytes,
		s.Total.GlobalUsefulBytes, s.CoalescingEfficiency()*100)

	if len(s.GlobalAt) > 1 {
		segs := make([]int, 0, len(s.GlobalAt))
		for seg := range s.GlobalAt {
			segs = append(segs, seg)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(segs)))
		fmt.Fprintf(w, "traffic by transaction granularity:")
		for _, seg := range segs {
			fmt.Fprintf(w, " %dB:%d bytes", seg, s.GlobalAt[seg].Bytes)
		}
		fmt.Fprintln(w)
	}

	if len(s.RegionUseful) > 0 {
		names := make([]string, 0, len(s.RegionUseful))
		for n := range s.RegionUseful {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "traffic by region:")
		for _, n := range names {
			fmt.Fprintf(w, "  %s: %d useful bytes\n", n, s.RegionUseful[n])
		}
	}

	if len(s.Stages) > 1 {
		fmt.Fprintln(w, "barrier-delimited stages:")
		for i, st := range s.Stages {
			fmt.Fprintf(w, "  stage %d: %d instr, %d shared tx, %d global tx, %d warps with work\n",
				i, st.WarpInstrs, st.SharedTx, st.Global.Transactions, st.WarpsWithWork)
		}
	}
}

// String renders the statistics report.
func (s *Stats) String() string {
	var b strings.Builder
	s.Fprint(&b)
	return b.String()
}
