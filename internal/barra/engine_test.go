package barra

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// storeKernel: every thread stores its flat ID to base + target(flat)
// words. addrOf customizes the store address computation.
func storeKernel(name string, emit func(b *kbuild.Builder)) *isa.Program {
	b := kbuild.New(name)
	emit(b)
	b.Exit()
	return b.MustProgram()
}

// flatID emits flat = ctaid*ntid + tid into a fresh register.
func flatID(b *kbuild.Builder) isa.Reg {
	tid, cta, ntid := b.Reg(), b.Reg(), b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(cta, isa.SRCtaid)
	b.S2R(ntid, isa.SRNtid)
	b.IMad(cta, cta, ntid, tid)
	return cta
}

// TestBudgetIsPerRun: the instruction budget is shared by the whole
// grid, not granted per block — a launch whose blocks are each modest
// but collectively exceed the limit aborts, and the serial path
// aborts at exactly the configured count.
func TestBudgetIsPerRun(t *testing.T) {
	prog := storeKernel("disjoint-store", func(b *kbuild.Builder) {
		flat := flatID(b)
		addr := b.Reg()
		b.ShlImm(addr, flat, 2)
		b.Gst(addr, flat)
	})
	l := Launch{Prog: prog, Grid: 8, Block: 64}
	newMem := func() *Memory { return NewMemory(1 << 16) }

	st, err := Run(cfg(), l, newMem(), &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := st.Total.WarpInstrs

	// Exactly enough: passes.
	if _, err := Run(cfg(), l, newMem(), &Options{Parallelism: 1, MaxWarpInstructions: total}); err != nil {
		t.Fatalf("budget == demand should pass: %v", err)
	}
	// One short: the serial path aborts at exactly the limit even
	// though each individual block is far under it.
	_, err = Run(cfg(), l, newMem(), &Options{Parallelism: 1, MaxWarpInstructions: total - 1})
	if err == nil || !strings.Contains(err.Error(), "instruction budget exhausted") {
		t.Fatalf("budget == demand-1 should abort, got %v", err)
	}
	perBlock := total / int64(l.Grid)
	if total-1 < perBlock {
		t.Fatalf("test needs a multi-block demand (total=%d)", total)
	}
}

// TestRunawayKernelAborts: an infinite loop trips the budget on both
// the serial and the parallel path.
func TestRunawayKernelAborts(t *testing.T) {
	b := kbuild.New("runaway")
	r := b.Reg()
	b.MovImm(r, 0)
	top := b.Pos()
	b.IAddImm(r, r, 1)
	b.SetTarget(b.Bra(), top) // unconditional backward branch: loop forever
	b.Exit()
	prog := b.MustProgram()

	for _, p := range []int{1, 4} {
		_, err := Run(cfg(), Launch{Prog: prog, Grid: 8, Block: 32}, NewMemory(4096),
			&Options{Parallelism: p, MaxWarpInstructions: 200000})
		if err == nil || !strings.Contains(err.Error(), "instruction budget exhausted") {
			t.Fatalf("P=%d: runaway kernel should abort, got %v", p, err)
		}
	}
}

// TestRunContextPreCancelled: a context cancelled before the run
// starts aborts before any block executes, on every parallelism.
func TestRunContextPreCancelled(t *testing.T) {
	prog := storeKernel("disjoint-store", func(b *kbuild.Builder) {
		flat := flatID(b)
		addr := b.Reg()
		b.ShlImm(addr, flat, 2)
		b.Gst(addr, flat)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		_, err := RunContext(ctx, cfg(), Launch{Prog: prog, Grid: 8, Block: 64},
			NewMemory(1<<16), &Options{Parallelism: p})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: pre-cancelled run returned %v, want context.Canceled", p, err)
		}
	}
}

// TestRunContextCancelMidRun: cancelling while an effectively endless
// kernel executes stops the run at the next budget-refill check —
// within thousands of instructions, not the configured 1e12 budget.
func TestRunContextCancelMidRun(t *testing.T) {
	b := kbuild.New("endless")
	r := b.Reg()
	b.MovImm(r, 0)
	top := b.Pos()
	b.IAddImm(r, r, 1)
	b.SetTarget(b.Bra(), top)
	b.Exit()
	prog := b.MustProgram()

	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := RunContext(ctx, cfg(), Launch{Prog: prog, Grid: 8, Block: 32},
			NewMemory(4096), &Options{Parallelism: p, MaxWarpInstructions: 1e12})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("P=%d: cancelled run returned %v, want context.DeadlineExceeded", p, err)
		}
	}
}

// TestBlockIsolationWriteRace: two blocks writing the same word is a
// contract violation the detector turns into a run error.
func TestBlockIsolationWriteRace(t *testing.T) {
	prog := storeKernel("clashing-store", func(b *kbuild.Builder) {
		tid, addr := b.Reg(), b.Reg()
		b.S2R(tid, isa.SRTid)
		b.ShlImm(addr, tid, 2) // same address in every block
		b.Gst(addr, tid)
	})
	_, err := Run(cfg(), Launch{Prog: prog, Grid: 2, Block: 32}, NewMemory(4096),
		&Options{Parallelism: 1, VerifyBlockIsolation: true})
	if err == nil || !strings.Contains(err.Error(), "disjoint-writes contract") {
		t.Fatalf("cross-block write should fail verification, got %v", err)
	}
	// Without the detector the racy kernel is (serially) permitted —
	// the contract is opt-in enforced.
	if _, err := Run(cfg(), Launch{Prog: prog, Grid: 2, Block: 32}, NewMemory(4096),
		&Options{Parallelism: 1}); err != nil {
		t.Fatalf("untracked run: %v", err)
	}
}

// TestBlockIsolationReadRace: reading a word another block wrote in
// the same run is equally racy under parallel execution and is
// detected on the read side.
func TestBlockIsolationReadRace(t *testing.T) {
	prog := storeKernel("foreign-read", func(b *kbuild.Builder) {
		flat := flatID(b)
		addr := b.Reg()
		b.ShlImm(addr, flat, 2)
		b.Gst(addr, flat) // disjoint writes...
		zero := b.Reg()
		b.MovImm(zero, 0)
		b.Gld(zero, zero) // ...but every block then reads word 0
	})
	// Serial execution runs block 0 first, so block 1's read of word
	// 0 (written by block 0) trips deterministically.
	_, err := Run(cfg(), Launch{Prog: prog, Grid: 2, Block: 32}, NewMemory(4096),
		&Options{Parallelism: 1, VerifyBlockIsolation: true})
	if err == nil || !strings.Contains(err.Error(), "disjoint-writes contract") {
		t.Fatalf("cross-block read should fail verification, got %v", err)
	}
}

// TestBlockIsolationWriteAfterRead: writing a word an earlier block
// only read is still cross-block sharing — detected on the write side
// against the word's recorded reader.
func TestBlockIsolationWriteAfterRead(t *testing.T) {
	prog := storeKernel("read-then-write", func(b *kbuild.Builder) {
		cta, zero, tmp := b.Reg(), b.Reg(), b.Reg()
		b.S2R(cta, isa.SRCtaid)
		b.MovImm(zero, 0)
		// Block 0 reads word 0...
		b.ISetpImm(isa.P0, isa.CmpEQ, cta, 0)
		ld := b.Pos()
		b.Gld(tmp, zero)
		b.Guarded(ld, isa.P0, false)
		// ...then block 1 writes it.
		b.ISetpImm(isa.P0, isa.CmpEQ, cta, 1)
		st := b.Pos()
		b.Gst(zero, cta)
		b.Guarded(st, isa.P0, false)
	})
	_, err := Run(cfg(), Launch{Prog: prog, Grid: 2, Block: 32}, NewMemory(4096),
		&Options{Parallelism: 1, VerifyBlockIsolation: true})
	if err == nil || !strings.Contains(err.Error(), "disjoint-writes contract") {
		t.Fatalf("write after foreign read should fail verification, got %v", err)
	}
}

// countingCollector counts Step events and records Merge order.
type countingCollector struct {
	mu     sync.Mutex
	steps  int64
	merged []int
}

type countingBlock struct {
	c     *countingCollector
	steps int64
}

func (c *countingCollector) Block(blockID int) BlockCollector { return &countingBlock{c: c} }

func (b *countingBlock) Step(stage int, tr *StepTrace)    { b.steps++ }
func (b *countingBlock) StageEnd(stage int, work []int64) {}
func (c *countingCollector) Merge(blockID int, bc BlockCollector, barriers int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps += bc.(*countingBlock).steps
	c.merged = append(c.merged, blockID)
	return nil
}

// TestPluggableCollector: an Options.Collectors sink sees every
// instruction exactly once and is merged in ascending block order
// even under a parallel run.
func TestPluggableCollector(t *testing.T) {
	prog := storeKernel("disjoint-store", func(b *kbuild.Builder) {
		flat := flatID(b)
		addr := b.Reg()
		b.ShlImm(addr, flat, 2)
		b.Gst(addr, flat)
	})
	cc := &countingCollector{}
	st, err := Run(cfg(), Launch{Prog: prog, Grid: 16, Block: 64}, NewMemory(1<<16),
		&Options{Parallelism: 4, Collectors: []Collector{cc}})
	if err != nil {
		t.Fatal(err)
	}
	if cc.steps != st.Total.WarpInstrs {
		t.Errorf("collector saw %d steps, stats count %d", cc.steps, st.Total.WarpInstrs)
	}
	if len(cc.merged) != 16 || !sort.IntsAreSorted(cc.merged) {
		t.Errorf("merge order not ascending block IDs: %v", cc.merged)
	}
}
