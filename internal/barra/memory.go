// Package barra is the functional GPU simulator — the stand-in for
// the Barra simulator the paper drives its model with.
//
// It executes native-ISA kernels warp by warp on real data and
// collects the dynamic program statistics the performance model
// consumes: instruction counts per cost class, shared-memory
// transactions with and without bank conflicts, hardware-level
// global-memory transactions under the coalescing protocol, and the
// program's division into stages by synchronization barriers
// (paper Fig. 1, "Info extractor" inputs).
package barra

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is the device's byte-addressed global memory. All accesses
// are 32-bit and must be 4-byte aligned, matching the single-word
// loads and stores of the ISA.
type Memory struct {
	b []byte
}

// NewMemory allocates size bytes of zeroed global memory.
func NewMemory(size int) *Memory { return &Memory{b: make([]byte, size)} }

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.b) }

func (m *Memory) check(addr uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("barra: unaligned access at %#x", addr)
	}
	if int(addr)+4 > len(m.b) {
		return fmt.Errorf("barra: access at %#x beyond memory size %#x", addr, len(m.b))
	}
	return nil
}

// Load32 reads the 32-bit word at byte address addr.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if err := m.check(addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.b[addr:]), nil
}

// Store32 writes the 32-bit word at byte address addr.
func (m *Memory) Store32(addr, v uint32) error {
	if err := m.check(addr); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.b[addr:], v)
	return nil
}

// SetFloat32 stores a float at byte address addr.
func (m *Memory) SetFloat32(addr uint32, f float32) error {
	return m.Store32(addr, math.Float32bits(f))
}

// Float32 loads a float from byte address addr.
func (m *Memory) Float32(addr uint32) (float32, error) {
	v, err := m.Load32(addr)
	return math.Float32frombits(v), err
}

// WriteFloats bulk-stores a float slice starting at base.
func (m *Memory) WriteFloats(base uint32, fs []float32) error {
	for i, f := range fs {
		if err := m.SetFloat32(base+uint32(4*i), f); err != nil {
			return err
		}
	}
	return nil
}

// ReadFloats bulk-loads n floats starting at base.
func (m *Memory) ReadFloats(base uint32, n int) ([]float32, error) {
	out := make([]float32, n)
	for i := range out {
		f, err := m.Float32(base + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// WriteWords bulk-stores a word slice starting at base.
func (m *Memory) WriteWords(base uint32, ws []uint32) error {
	for i, w := range ws {
		if err := m.Store32(base+uint32(4*i), w); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords bulk-loads n words starting at base.
func (m *Memory) ReadWords(base uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		w, err := m.Load32(base + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
