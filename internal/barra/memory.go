package barra

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Memory is the device's byte-addressed global memory. All accesses
// are 32-bit and must be 4-byte aligned, matching the single-word
// loads and stores of the ISA.
//
// # Disjoint-writes contract
//
// The parallel execution engine runs blocks concurrently against one
// Memory with no locking, which is sound under the same contract the
// CUDA programming model imposes on a kernel's blocks: within one
// run, a word written by a block may not be written or read by any
// other block. (Blocks cannot synchronize with each other, so a
// kernel that violates this is racy on real hardware too.) Reads of
// words no block writes — input arrays — may be shared freely, and
// the host-side accessors below may touch anything between runs.
// Options.VerifyBlockIsolation arms a per-word last-writer tracker
// that turns a contract violation into a run error instead of a
// silent data race.
type Memory struct {
	// words backs the byte-addressed memory as aligned little-endian
	// 32-bit words: every ISA access is one word, so word storage makes
	// the device-side load/store a single indexed move instead of a
	// byte-slice decode. size preserves the byte size NewMemory was
	// given (the last, partial word of an unaligned size is
	// unaddressable, exactly as before).
	words []uint32
	size  int
	// writers/readers hold the per-word last-writer and last-reader
	// block IDs (-1 = untouched this run) while VerifyBlockIsolation
	// tracking is armed; nil otherwise. Entries are updated with
	// atomics so the detector itself is race-free under concurrent
	// workers. The reader side keeps only the most recent block, so
	// the detector is exact for write-after-write and
	// read-after-foreign-write, and catches write-after-foreign-read
	// against the latest reader (a lossy but alarm-only
	// approximation: any flagged access is a real violation).
	writers []int32
	readers []int32
}

// NewMemory allocates size bytes of zeroed global memory.
func NewMemory(size int) *Memory { return &Memory{words: make([]uint32, size/4), size: size} }

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return m.size }

func (m *Memory) check(addr uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("barra: unaligned access at %#x", addr)
	}
	if int(addr/4) >= len(m.words) {
		return fmt.Errorf("barra: access at %#x beyond memory size %#x", addr, m.size)
	}
	return nil
}

// Load32 reads the 32-bit word at byte address addr (host access:
// never checked against the disjoint-writes tracker).
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if err := m.check(addr); err != nil {
		return 0, err
	}
	return m.words[addr/4], nil
}

// Store32 writes the 32-bit word at byte address addr (host access:
// never checked against the disjoint-writes tracker).
func (m *Memory) Store32(addr, v uint32) error {
	if err := m.check(addr); err != nil {
		return err
	}
	m.words[addr/4] = v
	return nil
}

// startTracking arms the disjoint-writes detector for one run.
func (m *Memory) startTracking() {
	m.writers = make([]int32, len(m.words))
	m.readers = make([]int32, len(m.words))
	for i := range m.writers {
		m.writers[i] = -1
		m.readers[i] = -1
	}
}

// stopTracking disarms the detector.
func (m *Memory) stopTracking() { m.writers, m.readers = nil, nil }

// load32 is the device-side load: block is the reading block, checked
// against the tracker when armed.
func (m *Memory) load32(addr uint32, block int) (uint32, error) {
	i := addr >> 2
	if addr&3 != 0 || int(i) >= len(m.words) {
		return 0, m.check(addr)
	}
	if m.writers != nil {
		if w := atomic.LoadInt32(&m.writers[i]); w >= 0 && int(w) != block {
			return 0, fmt.Errorf("barra: block %d reads word %#x written by block %d in the same run — cross-block sharing violates the disjoint-writes contract",
				block, addr, w)
		}
		atomic.StoreInt32(&m.readers[i], int32(block))
	}
	return m.words[i], nil
}

// store32 is the device-side store: block is the writing block,
// recorded and checked against the tracker when armed.
func (m *Memory) store32(addr, v uint32, block int) error {
	i := addr >> 2
	if addr&3 != 0 || int(i) >= len(m.words) {
		return m.check(addr)
	}
	if m.writers != nil {
		if prev := atomic.SwapInt32(&m.writers[i], int32(block)); prev >= 0 && prev != int32(block) {
			return fmt.Errorf("barra: blocks %d and %d both write word %#x — cross-block writes violate the disjoint-writes contract",
				prev, block, addr)
		}
		if r := atomic.LoadInt32(&m.readers[i]); r >= 0 && r != int32(block) {
			return fmt.Errorf("barra: block %d writes word %#x that block %d read in the same run — cross-block sharing violates the disjoint-writes contract",
				block, addr, r)
		}
	}
	m.words[i] = v
	return nil
}

// SetFloat32 stores a float at byte address addr.
func (m *Memory) SetFloat32(addr uint32, f float32) error {
	return m.Store32(addr, math.Float32bits(f))
}

// Float32 loads a float from byte address addr.
func (m *Memory) Float32(addr uint32) (float32, error) {
	v, err := m.Load32(addr)
	return math.Float32frombits(v), err
}

// checkRange validates one bulk access of n 32-bit words at base, so
// the per-word loops below run check-free. Multi-MB experiment inputs
// are staged through these paths; one range check for the whole
// transfer keeps setup off the profile.
func (m *Memory) checkRange(base uint32, n int) error {
	if n < 0 {
		return fmt.Errorf("barra: negative bulk length %d", n)
	}
	if base%4 != 0 {
		return fmt.Errorf("barra: unaligned access at %#x", base)
	}
	if end := int64(base) + 4*int64(n); end > 4*int64(len(m.words)) {
		return fmt.Errorf("barra: bulk access [%#x,%#x) beyond memory size %#x", base, end, m.size)
	}
	return nil
}

// WriteFloats bulk-stores a float slice starting at base.
func (m *Memory) WriteFloats(base uint32, fs []float32) error {
	if err := m.checkRange(base, len(fs)); err != nil {
		return err
	}
	dst := m.words[base/4:]
	for i, f := range fs {
		dst[i] = math.Float32bits(f)
	}
	return nil
}

// ReadFloats bulk-loads n floats starting at base.
func (m *Memory) ReadFloats(base uint32, n int) ([]float32, error) {
	if err := m.checkRange(base, n); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	src := m.words[base/4:]
	for i := range out {
		out[i] = math.Float32frombits(src[i])
	}
	return out, nil
}

// WriteWords bulk-stores a word slice starting at base.
func (m *Memory) WriteWords(base uint32, ws []uint32) error {
	if err := m.checkRange(base, len(ws)); err != nil {
		return err
	}
	copy(m.words[base/4:], ws)
	return nil
}

// ReadWords bulk-loads n words starting at base.
func (m *Memory) ReadWords(base uint32, n int) ([]uint32, error) {
	if err := m.checkRange(base, n); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	copy(out, m.words[base/4:])
	return out, nil
}
