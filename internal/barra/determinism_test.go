package barra_test

// Determinism tests for the sharded execution engine: running the
// three paper kernels (Volkov matmul, BELL+IMIV SpMV, cyclic
// reduction) at several Parallelism settings must produce Stats that
// are bit-identical to the serial path, identical final memory
// contents, and — for the GlobalAccessHook — an identical, block-
// ordered callback stream.

import (
	"math/rand"
	"reflect"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
	"gpuperf/internal/tridiag"
)

// parallelisms exercises the serial path, a split grid, and more
// workers than some test grids have blocks.
var parallelisms = []int{1, 2, 8}

// detCase builds a fresh launch + memory per call (the functional run
// consumes the memory).
type detCase struct {
	name  string
	build func(t *testing.T) (barra.Launch, *barra.Memory, *barra.Options)
}

func detCases() []detCase {
	return []detCase{
		{"matmul16", func(t *testing.T) (barra.Launch, *barra.Memory, *barra.Options) {
			const n = 128
			mm, err := kernels.NewMatmul(n, 16)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			a := make([]float32, n*n)
			b := make([]float32, n*n)
			for i := range a {
				a[i], b[i] = rng.Float32(), rng.Float32()
			}
			mem, err := mm.NewMemory(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return mm.Launch(), mem, nil
		}},
		{"spmv-bell-imiv", func(t *testing.T) (barra.Launch, *barra.Memory, *barra.Options) {
			m, err := sparse.GenQCDLike(1024, 9, rand.New(rand.NewSource(8)))
			if err != nil {
				t.Fatal(err)
			}
			sp, err := kernels.NewSpMV(kernels.BELLIMIV, m)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			x := make([]float32, m.Rows())
			for i := range x {
				x[i] = rng.Float32()
			}
			mem, err := sp.NewMemory(x)
			if err != nil {
				t.Fatal(err)
			}
			// Regions and extra granularities exercise the full
			// attribution surface of the stats merge.
			return sp.Launch(), mem, &barra.Options{
				Regions:       sp.Regions(),
				ExtraSegments: []int{16, 4},
			}
		}},
		{"cr", func(t *testing.T) (barra.Launch, *barra.Memory, *barra.Options) {
			const systems, eqs = 16, 512
			solver, err := kernels.NewCR(gpu.GTX285(), systems, eqs, false, false)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			sys := make([]tridiag.System, systems)
			for i := range sys {
				sys[i] = tridiag.NewRandom(eqs, rng)
			}
			mem, err := solver.NewMemory(sys)
			if err != nil {
				t.Fatal(err)
			}
			return solver.Launch(), mem, nil
		}},
	}
}

func runAt(t *testing.T, c detCase, p int) (*barra.Stats, []uint32) {
	t.Helper()
	l, mem, opt := c.build(t)
	if opt == nil {
		opt = &barra.Options{}
	}
	opt.Parallelism = p
	opt.VerifyBlockIsolation = true // the paper kernels honour the contract
	st, err := barra.Run(gpu.GTX285(), l, mem, opt)
	if err != nil {
		t.Fatalf("%s P=%d: %v", c.name, p, err)
	}
	words, err := mem.ReadWords(0, mem.Size()/4)
	if err != nil {
		t.Fatal(err)
	}
	return st, words
}

func TestParallelDeterminism(t *testing.T) {
	for _, c := range detCases() {
		t.Run(c.name, func(t *testing.T) {
			want, wantMem := runAt(t, c, 1)
			for _, p := range parallelisms[1:] {
				got, gotMem := runAt(t, c, p)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("P=%d Stats differ from serial run:\nserial:   %+v\nparallel: %+v", p, want, got)
				}
				if !reflect.DeepEqual(wantMem, gotMem) {
					t.Errorf("P=%d final memory differs from serial run", p)
				}
			}
		})
	}
}

// hookRecord is one captured GlobalAccessHook callback.
type hookRecord struct {
	block int
	load  bool
	addrs []uint32
}

func captureHooks(t *testing.T, p int) []hookRecord {
	t.Helper()
	c := detCases()[1] // SpMV: the kernel Fig. 12 replays through the hook
	l, mem, opt := c.build(t)
	opt.Parallelism = p
	var recs []hookRecord
	opt.GlobalAccessHook = func(blockID int, load bool, addrs []uint32) {
		recs = append(recs, hookRecord{blockID, load, append([]uint32(nil), addrs...)})
	}
	if _, err := barra.Run(gpu.GTX285(), l, mem, opt); err != nil {
		t.Fatalf("P=%d: %v", p, err)
	}
	return recs
}

// TestHookOrdering: hook callbacks of a parallel run arrive in the
// exact order of the serial run — ascending block ID, program order
// within a block — so stateful replay consumers (the texture-cache
// experiments) see one stream regardless of Parallelism.
func TestHookOrdering(t *testing.T) {
	want := captureHooks(t, 1)
	for _, p := range parallelisms[1:] {
		got := captureHooks(t, p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("P=%d hook stream differs from serial run (%d vs %d events)", p, len(got), len(want))
		}
	}
	last := -1
	for i, r := range want {
		if r.block < last {
			t.Fatalf("event %d: block %d after block %d", i, r.block, last)
		}
		last = r.block
	}
}
