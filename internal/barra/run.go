package barra

import (
	"context"
	"fmt"
	"runtime"

	"gpuperf/internal/bank"
	"gpuperf/internal/coalesce"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// Launch describes one kernel invocation.
type Launch struct {
	Prog *isa.Program
	// Grid is the number of blocks; Block the threads per block.
	Grid, Block int
}

// Validate checks launch parameters against the device.
func (l Launch) Validate(cfg gpu.Config) error {
	if l.Prog == nil {
		return fmt.Errorf("barra: nil program")
	}
	if err := l.Prog.Validate(); err != nil {
		return err
	}
	if l.Grid <= 0 || l.Block <= 0 {
		return fmt.Errorf("barra: non-positive launch %dx%d", l.Grid, l.Block)
	}
	if l.Block > cfg.MaxThreadsPerBlock {
		return fmt.Errorf("barra: block size %d exceeds device limit %d", l.Block, cfg.MaxThreadsPerBlock)
	}
	if l.Prog.SharedMemBytes > cfg.SharedMemPerSM {
		return fmt.Errorf("barra: kernel needs %d B shared memory, SM has %d",
			l.Prog.SharedMemBytes, cfg.SharedMemPerSM)
	}
	return nil
}

// WarpsPerBlock returns ceil(Block/warpSize).
func (l Launch) WarpsPerBlock() int { return (l.Block + gpu.WarpSize - 1) / gpu.WarpSize }

// Region names an address range of global memory for traffic
// attribution (e.g. SpMV's matrix entries vs column indices vs
// vector entries in paper Fig. 11a).
type Region struct {
	Name   string
	Lo, Hi uint32 // [Lo, Hi)
}

// Options tunes a functional run.
type Options struct {
	// ExtraSegments lists additional minimum-transaction
	// granularities (bytes) to tally global traffic under, beyond
	// the device's own — how Fig. 11a compares 32/16/4-byte
	// transaction sizes in one run.
	ExtraSegments []int
	// Regions attributes global traffic to named arrays.
	Regions []Region
	// MaxWarpInstructions aborts a runaway kernel (default 4e9). The
	// budget is per-run, not per-block: all workers draw on one
	// atomically shared pool, so a grid whose blocks are individually
	// modest but collectively over budget still aborts. Workers
	// reserve the budget in batches, so with Parallelism > 1 the
	// abort may trigger up to workers×8192 instructions before the
	// limit is fully consumed; a serial run aborts at exactly the
	// configured count.
	MaxWarpInstructions int64
	// GlobalAccessHook, when set, receives every global-memory
	// half-warp access: the issuing block, whether it was a load,
	// and the active lanes' byte addresses (valid only during the
	// call). Used by cache-replay experiments (paper Fig. 12's
	// texture-cache variants). Calls are serialized and delivered in
	// ascending block order regardless of Parallelism, so stateful
	// consumers observe the same stream a serial run produces.
	GlobalAccessHook func(blockID int, load bool, addrs []uint32)
	// Parallelism is the number of worker goroutines the grid's
	// blocks are sharded across. 0 (the default) uses
	// runtime.GOMAXPROCS(0); 1 runs every block on one goroutine,
	// preserving the serial engine's behaviour exactly. Every setting
	// produces bit-identical Stats: per-block statistics are merged
	// in ascending block-ID order after the workers join.
	Parallelism int
	// Collectors are additional statistics sinks driven alongside the
	// built-in Stats collector; they receive every execution event
	// and are merged in block order (see Collector).
	Collectors []Collector
	// DisableBlockReplay forces every block through live per-step
	// simulation. By default the engine detects blocks whose
	// instruction stream and address shape match a previously
	// executed block's signature and replays that block's stats shard
	// instead of re-deriving it (see replay.go) — functional
	// execution and the returned Stats are bit-identical either way.
	// Replay is bypassed automatically when a GlobalAccessHook or
	// extra Collectors are armed, since both observe per-step events.
	DisableBlockReplay bool
	// VerifyBlockIsolation enables the cross-block sharing detector:
	// the run fails if a block reads or writes a global-memory word
	// another block wrote during the same run, or writes a word
	// another block read (checked against the word's most recent
	// reader). Every alarm is a real contract violation. See the
	// disjoint-writes contract on Memory.
	VerifyBlockIsolation bool
}

// Run executes the launch functionally and returns its dynamic
// statistics. Blocks are sharded across Options.Parallelism worker
// goroutines (the CUDA model guarantees block independence — see
// Memory's disjoint-writes contract); warps within a block
// interleave at barriers. Functional semantics and the returned
// Stats are independent of scheduling: statistics are collected per
// block and merged deterministically in block order.
func Run(cfg gpu.Config, l Launch, mem *Memory, opt *Options) (*Stats, error) {
	return RunContext(context.Background(), cfg, l, mem, opt)
}

// RunContext is Run with cancellation: workers observe ctx between
// blocks and at instruction-budget refills (every few thousand warp
// instructions), so a service can abort a long simulation promptly.
// On cancellation the ctx's error is returned and the memory is left
// partially written.
func RunContext(ctx context.Context, cfg gpu.Config, l Launch, mem *Memory, opt *Options) (*Stats, error) {
	if err := l.Validate(cfg); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("barra: nil memory")
	}
	if opt == nil {
		opt = &Options{}
	}

	bsim, err := bank.ForGPU(cfg)
	if err != nil {
		return nil, err
	}
	rc := &runContext{
		goCtx:  ctx,
		cfg:    cfg,
		launch: l,
		mem:    mem,
		banks:  bsim,
		hook:   opt.GlobalAccessHook,
	}
	addSeg := func(seg int) error {
		for _, s := range rc.segs {
			if s == seg {
				return nil
			}
		}
		maxSeg := cfg.MaxSegmentBytes
		if seg > maxSeg {
			maxSeg = seg
		}
		c, err := coalesce.New(seg, maxSeg)
		if err != nil {
			return err
		}
		rc.coal = append(rc.coal, c)
		rc.segs = append(rc.segs, seg)
		return nil
	}
	if err := addSeg(cfg.MinSegmentBytes); err != nil {
		return nil, err
	}
	for _, s := range opt.ExtraSegments {
		if err := addSeg(s); err != nil {
			return nil, err
		}
	}

	rc.maxInstr = opt.MaxWarpInstructions
	if rc.maxInstr <= 0 {
		rc.maxInstr = 4e9
	}
	rc.budget.Store(rc.maxInstr)

	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l.Grid {
		workers = l.Grid
	}
	if rc.hook != nil && workers > 1 {
		rc.dispatch = newHookDispatcher(rc.hook, workers)
	}

	sc := newStatsCollector(l, opt.Regions, rc.segs)
	rc.collectors = append([]Collector{sc}, opt.Collectors...)

	if !opt.DisableBlockReplay && rc.hook == nil && len(opt.Collectors) == 0 {
		maxA := cfg.MaxSegmentBytes
		for _, s := range rc.segs {
			if s > maxA {
				maxA = s
			}
		}
		rc.replay = newReplayState(l.Prog, opt.Regions, maxA)
	}

	if opt.VerifyBlockIsolation {
		mem.startTracking()
		defer mem.stopTracking()
	}

	barriers, results, err := rc.execute(workers)
	if err != nil {
		return nil, err
	}
	for b := 1; b < l.Grid; b++ {
		if barriers[b] != barriers[0] {
			return nil, fmt.Errorf("barra: block %d passed %d barriers, block 0 passed %d — irregular staging",
				b, barriers[b], barriers[0])
		}
	}
	// Deterministic join: fold every block back in ascending block
	// order, whatever order the workers finished in.
	for ci, c := range rc.collectors {
		for b := 0; b < l.Grid; b++ {
			if err := c.Merge(b, results[b][ci], barriers[b]); err != nil {
				return nil, err
			}
		}
	}
	st := sc.finish()
	if rc.replay != nil {
		sim := int64(len(rc.replay.classes)) + rc.replay.liveBlocks.Load()
		st.Engine = EngineStats{
			BlocksSimulated: sim,
			BlocksReplayed:  int64(l.Grid) - sim,
			BatchedRuns:     rc.replay.batchedRuns.Load(),
			BatchedInstrs:   rc.replay.batchedInstrs.Load(),
		}
	}
	return st, nil
}
