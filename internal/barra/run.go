package barra

import (
	"fmt"

	"gpuperf/internal/bank"
	"gpuperf/internal/coalesce"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// Launch describes one kernel invocation.
type Launch struct {
	Prog *isa.Program
	// Grid is the number of blocks; Block the threads per block.
	Grid, Block int
}

// Validate checks launch parameters against the device.
func (l Launch) Validate(cfg gpu.Config) error {
	if l.Prog == nil {
		return fmt.Errorf("barra: nil program")
	}
	if err := l.Prog.Validate(); err != nil {
		return err
	}
	if l.Grid <= 0 || l.Block <= 0 {
		return fmt.Errorf("barra: non-positive launch %dx%d", l.Grid, l.Block)
	}
	if l.Block > cfg.MaxThreadsPerBlock {
		return fmt.Errorf("barra: block size %d exceeds device limit %d", l.Block, cfg.MaxThreadsPerBlock)
	}
	if l.Prog.SharedMemBytes > cfg.SharedMemPerSM {
		return fmt.Errorf("barra: kernel needs %d B shared memory, SM has %d",
			l.Prog.SharedMemBytes, cfg.SharedMemPerSM)
	}
	return nil
}

// WarpsPerBlock returns ceil(Block/warpSize).
func (l Launch) WarpsPerBlock() int { return (l.Block + gpu.WarpSize - 1) / gpu.WarpSize }

// Region names an address range of global memory for traffic
// attribution (e.g. SpMV's matrix entries vs column indices vs
// vector entries in paper Fig. 11a).
type Region struct {
	Name   string
	Lo, Hi uint32 // [Lo, Hi)
}

// Options tunes a functional run.
type Options struct {
	// ExtraSegments lists additional minimum-transaction
	// granularities (bytes) to tally global traffic under, beyond
	// the device's own — how Fig. 11a compares 32/16/4-byte
	// transaction sizes in one run.
	ExtraSegments []int
	// Regions attributes global traffic to named arrays.
	Regions []Region
	// MaxWarpInstructions aborts a runaway kernel (default 4e9).
	MaxWarpInstructions int64
	// GlobalAccessHook, when set, receives every global-memory
	// half-warp access: the issuing block, whether it was a load,
	// and the active lanes' byte addresses (valid only during the
	// call). Used by cache-replay experiments (paper Fig. 12's
	// texture-cache variants).
	GlobalAccessHook func(blockID int, load bool, addrs []uint32)
}

// MemTraffic tallies global-memory traffic at one transaction
// granularity.
type MemTraffic struct {
	// Transactions is the hardware transaction count.
	Transactions int64
	// Bytes is the total bytes moved.
	Bytes int64
}

// StageStats aggregates dynamic statistics for one barrier-delimited
// stage (accumulated across all blocks; stage k is the code between
// the k-th and k+1-th barriers).
type StageStats struct {
	// WarpInstrs is the warp-level dynamic instruction count.
	WarpInstrs int64
	// ByClass splits WarpInstrs by cost class.
	ByClass [isa.NumClasses]int64
	// FMADs counts fused multiply-add instructions (the "actual
	// computation" of the paper's density diagnostic).
	FMADs int64
	// SharedAccesses counts warp-level shared-memory instructions;
	// SharedTx the serialized transactions after bank conflicts;
	// SharedTxNoConflict the conflict-free ideal (one per active
	// half-warp).
	SharedAccesses     int64
	SharedTx           int64
	SharedTxNoConflict int64
	// SharedBytes is useful shared traffic (4 B per active lane).
	SharedBytes int64
	// Global is traffic at the device's native granularity;
	// GlobalUsefulBytes counts 4 B per active lane.
	Global            MemTraffic
	GlobalUsefulBytes int64
	// WarpsWithWork is the number of warps (summed over blocks)
	// that did substantial work in this stage: warps whose executed
	// non-control, unskipped instruction count reaches at least half
	// of the busiest warp's count in their block. Guard-test
	// boilerplate (a compare plus a skipping branch) therefore does
	// not count as work — this is the paper's per-step active-warp
	// count for cyclic reduction (Fig. 6).
	WarpsWithWork int64
}

// Stats is the dynamic-statistics output of a functional run: the
// "info extractor" payload of paper Fig. 1.
type Stats struct {
	// Totals over all stages.
	Total StageStats
	// Stages in barrier order. Kernels without barriers have one.
	Stages []StageStats
	// Barriers is the number of barrier releases per block.
	Barriers int
	// GlobalAt tallies global traffic per transaction granularity
	// (always includes the device's own).
	GlobalAt map[int]MemTraffic
	// RegionTraffic attributes global traffic per named region and
	// granularity; RegionUseful counts useful bytes per region.
	RegionTraffic map[string]map[int]MemTraffic
	// RegionUseful is 4 B per active lane per region.
	RegionUseful map[string]int64

	// Launch echoes the launch geometry.
	Grid, Block int
}

// InstructionDensity returns FMADs / total warp instructions — the
// computational-density diagnostic (≈0.8 for Volkov matmul, ≈0.1
// for cyclic reduction, per the paper).
func (s *Stats) InstructionDensity() float64 {
	if s.Total.WarpInstrs == 0 {
		return 0
	}
	return float64(s.Total.FMADs) / float64(s.Total.WarpInstrs)
}

// CoalescingEfficiency returns useful / transferred global bytes.
func (s *Stats) CoalescingEfficiency() float64 {
	if s.Total.Global.Bytes == 0 {
		return 1
	}
	return float64(s.Total.GlobalUsefulBytes) / float64(s.Total.Global.Bytes)
}

// BankConflictFactor returns SharedTx / SharedTxNoConflict (1.0 =
// conflict-free).
func (s *Stats) BankConflictFactor() float64 {
	if s.Total.SharedTxNoConflict == 0 {
		return 1
	}
	return float64(s.Total.SharedTx) / float64(s.Total.SharedTxNoConflict)
}

type runner struct {
	cfg      gpu.Config
	banks    *bank.Sim
	coal     map[int]*coalesce.Sim // by min-segment granularity
	segs     []int                 // granularities in coal
	regions  []Region
	stats    *Stats
	maxInstr int64
	executed int64
	hook     func(blockID int, load bool, addrs []uint32)
	curBlock int
}

// Run executes the launch functionally and returns its dynamic
// statistics. Blocks run sequentially (functional semantics are
// independent of scheduling); warps within a block interleave at
// barriers.
func Run(cfg gpu.Config, l Launch, mem *Memory, opt *Options) (*Stats, error) {
	if err := l.Validate(cfg); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("barra: nil memory")
	}
	if opt == nil {
		opt = &Options{}
	}

	bsim, err := bank.ForGPU(cfg)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:      cfg,
		banks:    bsim,
		coal:     map[int]*coalesce.Sim{},
		regions:  opt.Regions,
		maxInstr: opt.MaxWarpInstructions,
		hook:     opt.GlobalAccessHook,
	}
	if r.maxInstr <= 0 {
		r.maxInstr = 4e9
	}
	addSeg := func(seg int) error {
		if _, ok := r.coal[seg]; ok {
			return nil
		}
		maxSeg := cfg.MaxSegmentBytes
		if seg > maxSeg {
			maxSeg = seg
		}
		c, err := coalesce.New(seg, maxSeg)
		if err != nil {
			return err
		}
		r.coal[seg] = c
		r.segs = append(r.segs, seg)
		return nil
	}
	if err := addSeg(cfg.MinSegmentBytes); err != nil {
		return nil, err
	}
	for _, s := range opt.ExtraSegments {
		if err := addSeg(s); err != nil {
			return nil, err
		}
	}

	r.stats = &Stats{
		GlobalAt:      map[int]MemTraffic{},
		RegionTraffic: map[string]map[int]MemTraffic{},
		RegionUseful:  map[string]int64{},
		Grid:          l.Grid,
		Block:         l.Block,
	}
	for _, reg := range opt.Regions {
		r.stats.RegionTraffic[reg.Name] = map[int]MemTraffic{}
		r.stats.RegionUseful[reg.Name] = 0
	}

	for b := 0; b < l.Grid; b++ {
		if err := r.runBlock(l, mem, b); err != nil {
			return nil, err
		}
	}
	// Totals.
	for i := range r.stats.Stages {
		accumulate(&r.stats.Total, &r.stats.Stages[i])
	}
	return r.stats, nil
}

func accumulate(dst, src *StageStats) {
	dst.WarpInstrs += src.WarpInstrs
	for c := range dst.ByClass {
		dst.ByClass[c] += src.ByClass[c]
	}
	dst.FMADs += src.FMADs
	dst.SharedAccesses += src.SharedAccesses
	dst.SharedTx += src.SharedTx
	dst.SharedTxNoConflict += src.SharedTxNoConflict
	dst.SharedBytes += src.SharedBytes
	dst.Global.Transactions += src.Global.Transactions
	dst.Global.Bytes += src.Global.Bytes
	dst.GlobalUsefulBytes += src.GlobalUsefulBytes
	dst.WarpsWithWork += src.WarpsWithWork
}

func (r *runner) runBlock(l Launch, mem *Memory, blockID int) error {
	r.curBlock = blockID
	nw := l.WarpsPerBlock()
	shared := make([]byte, l.Prog.SharedMemBytes)
	warps := make([]*Warp, nw)
	for wi := 0; wi < nw; wi++ {
		lanes := l.Block - wi*gpu.WarpSize
		if lanes > gpu.WarpSize {
			lanes = gpu.WarpSize
		}
		w, err := NewWarp(l.Prog, blockID, wi, l.Block, l.Grid, lanes, shared, mem)
		if err != nil {
			return err
		}
		warps[wi] = w
	}

	stage := 0
	atBarrier := make([]bool, nw)
	workCount := make([]int64, nw)
	barriers := 0
	var info StepInfo

	for {
		ranAny := false
		for wi, w := range warps {
			if w.Done() || atBarrier[wi] {
				continue
			}
			// Run this warp until it blocks.
			for {
				if r.executed >= r.maxInstr {
					return fmt.Errorf("barra: instruction budget exhausted (%d warp instructions) — runaway kernel %q?",
						r.maxInstr, l.Prog.Name)
				}
				if err := w.Step(&info); err != nil {
					return err
				}
				r.executed++
				r.record(stage, &info, workCount, wi)
				if info.Barrier {
					atBarrier[wi] = true
					break
				}
				if info.Done {
					break
				}
			}
			ranAny = true
		}

		allDone := true
		allBlocked := true
		anyExited := false
		for wi, w := range warps {
			if w.Done() {
				anyExited = true
				continue
			}
			allDone = false
			if !atBarrier[wi] {
				allBlocked = false
			}
		}
		if allDone {
			break
		}
		if allBlocked {
			if anyExited {
				// A warp exited while siblings wait at a barrier:
				// undefined behaviour on hardware, a bug here.
				return fmt.Errorf("barra: %q: warps wait at a barrier after others exited", l.Prog.Name)
			}
			// Barrier release: everyone advances to the next stage.
			for wi := range atBarrier {
				atBarrier[wi] = false
			}
			r.flushWork(stage, workCount)
			stage++
			barriers++
			continue
		}
		if !ranAny {
			return fmt.Errorf("barra: deadlock in %q: warps blocked at a barrier while others exited", l.Prog.Name)
		}
	}
	r.flushWork(stage, workCount)
	if blockID == 0 {
		r.stats.Barriers = barriers
	} else if barriers != r.stats.Barriers {
		return fmt.Errorf("barra: block %d passed %d barriers, block 0 passed %d — irregular staging",
			blockID, barriers, r.stats.Barriers)
	}
	return nil
}

// flushWork folds per-warp stage work counts into the stage stats
// and clears them. A warp counts as working when it executed at
// least half as many unskipped non-control instructions as the
// busiest warp of its block — enough to exclude warps that only ran
// the guard test and skip branch.
func (r *runner) flushWork(stage int, workCount []int64) {
	st := r.stage(stage)
	var max int64
	for _, c := range workCount {
		if c > max {
			max = c
		}
	}
	threshold := (max + 1) / 2
	for wi, c := range workCount {
		if max > 0 && c >= threshold {
			st.WarpsWithWork++
		}
		workCount[wi] = 0
	}
}

func (r *runner) stage(i int) *StageStats {
	for len(r.stats.Stages) <= i {
		r.stats.Stages = append(r.stats.Stages, StageStats{})
	}
	return &r.stats.Stages[i]
}

func (r *runner) record(stage int, info *StepInfo, workCount []int64, wi int) {
	st := r.stage(stage)
	st.WarpInstrs++
	st.ByClass[info.Class]++
	op := info.In.Op
	if op == isa.OpFMAD {
		st.FMADs++
	}
	if info.ActiveCount > 0 && !isa.IsControl(op) && op != isa.OpNOP {
		workCount[wi]++
	}

	if info.SmemOperand {
		// Broadcast read of one shared word per half-warp: one
		// conflict-free transaction per active half-warp.
		st.SharedAccesses++
		for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
			active := false
			for lane := half * gpu.HalfWarp; lane < (half+1)*gpu.HalfWarp; lane++ {
				if info.Active[lane] {
					active = true
					break
				}
			}
			if active {
				st.SharedTx++
				st.SharedTxNoConflict++
				st.SharedBytes += 4
			}
		}
	}

	switch {
	case isa.IsShared(op):
		st.SharedAccesses++
		st.SharedBytes += int64(info.ActiveCount) * 4
		for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
			var addrs []uint32
			var buf [gpu.HalfWarp]uint32
			n := 0
			for lane := half * gpu.HalfWarp; lane < (half+1)*gpu.HalfWarp; lane++ {
				if info.Active[lane] {
					buf[n] = info.Addr[lane]
					n++
				}
			}
			if n == 0 {
				continue
			}
			addrs = buf[:n]
			st.SharedTx += int64(r.banks.Transactions(addrs))
			st.SharedTxNoConflict++
		}

	case isa.IsGlobal(op):
		st.GlobalUsefulBytes += int64(info.ActiveCount) * 4
		for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
			var buf [gpu.HalfWarp]uint32
			n := 0
			for lane := half * gpu.HalfWarp; lane < (half+1)*gpu.HalfWarp; lane++ {
				if info.Active[lane] {
					buf[n] = info.Addr[lane]
					n++
				}
			}
			if n == 0 {
				continue
			}
			if r.hook != nil {
				r.hook(r.curBlock, op == isa.OpGLD, buf[:n])
			}
			r.recordGlobalHalf(st, buf[:n], info)
		}
	}
}

func (r *runner) recordGlobalHalf(st *StageStats, addrs []uint32, info *StepInfo) {
	native := r.cfg.MinSegmentBytes
	for _, seg := range r.segs {
		txs := r.coal[seg].HalfWarp(addrs, 4)
		var bytes int64
		for _, tx := range txs {
			bytes += int64(tx.Size)
		}
		t := r.stats.GlobalAt[seg]
		t.Transactions += int64(len(txs))
		t.Bytes += bytes
		r.stats.GlobalAt[seg] = t
		if seg == native {
			st.Global.Transactions += int64(len(txs))
			st.Global.Bytes += bytes
		}
		// Region attribution per transaction base address.
		for _, tx := range txs {
			if reg := r.regionOf(tx.Addr); reg != "" {
				rt := r.stats.RegionTraffic[reg][seg]
				rt.Transactions++
				rt.Bytes += int64(tx.Size)
				r.stats.RegionTraffic[reg][seg] = rt
			}
		}
	}
	for _, a := range addrs {
		if reg := r.regionOf(a); reg != "" {
			r.stats.RegionUseful[reg] += 4
		}
	}
	_ = info
}

func (r *runner) regionOf(addr uint32) string {
	for _, reg := range r.regions {
		if addr >= reg.Lo && addr < reg.Hi {
			return reg.Name
		}
	}
	return ""
}
