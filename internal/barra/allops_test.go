package barra

import (
	"math"
	"testing"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// TestEveryOperation builds one kernel that exercises every ALU
// opcode and builder helper, then checks each result against Go's
// own arithmetic — single-lane, so values are scalar-checkable.
func TestEveryOperation(t *testing.T) {
	b := kbuild.New("allops")
	out := b.Reg() // running store register
	addr := b.Reg()
	x := b.Reg()
	y := b.Reg()
	z := b.Reg()
	d0 := b.RegPair()
	d1 := b.RegPair()
	b.MovImm(addr, 0)

	slot := uint32(0)
	emitCheck := func(emit func(dst isa.Reg)) {
		emit(out)
		b.GstOff(addr, out, slot*4)
		slot++
	}

	setF := func(r isa.Reg, f float32) { b.MovF(r, f) }
	setI := func(r isa.Reg, v uint32) { b.MovImm(r, v) }

	// Integer ops.
	setI(x, 100)
	setI(y, 7)
	setI(z, 3)
	emitCheck(func(d isa.Reg) { b.IAdd(d, x, y) })       // 107
	emitCheck(func(d isa.Reg) { b.ISub(d, x, y) })       // 93
	emitCheck(func(d isa.Reg) { b.IMul(d, x, y) })       // 700
	emitCheck(func(d isa.Reg) { b.IMad(d, x, y, z) })    // 703
	emitCheck(func(d isa.Reg) { b.IMadImm(d, x, 2, z) }) // 203
	emitCheck(func(d isa.Reg) { b.IMulImm(d, x, 5) })    // 500
	emitCheck(func(d isa.Reg) { b.IAddImm(d, x, 11) })   // 111
	emitCheck(func(d isa.Reg) { b.ShlImm(d, y, 3) })     // 56
	emitCheck(func(d isa.Reg) { b.ShrImm(d, x, 2) })     // 25
	emitCheck(func(d isa.Reg) { b.AndImm(d, x, 0x6c) })  // 100&0x6c = 0x64
	emitCheck(func(d isa.Reg) {                          // or
		b.Emit(isa.Instruction{Op: isa.OpOR, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // 103
	emitCheck(func(d isa.Reg) { // xor
		b.Emit(isa.Instruction{Op: isa.OpXOR, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // 99
	emitCheck(func(d isa.Reg) { // imin
		b.Emit(isa.Instruction{Op: isa.OpIMIN, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // 7
	emitCheck(func(d isa.Reg) { // imax
		b.Emit(isa.Instruction{Op: isa.OpIMAX, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // 100
	emitCheck(func(d isa.Reg) { b.Mov(d, x) }) // 100

	// Float ops.
	setF(x, 3.5)
	setF(y, -2.0)
	setF(z, 0.5)
	emitCheck(func(d isa.Reg) { b.FAdd(d, x, y) })     // 1.5
	emitCheck(func(d isa.Reg) { b.FSub(d, x, y) })     // 5.5
	emitCheck(func(d isa.Reg) { b.FMul(d, x, y) })     // -7
	emitCheck(func(d isa.Reg) { b.FMad(d, x, y, z) })  // -6.5
	emitCheck(func(d isa.Reg) { b.FNMad(d, x, y, z) }) // 7.5
	emitCheck(func(d isa.Reg) {                        // fmin
		b.Emit(isa.Instruction{Op: isa.OpFMIN, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // -2
	emitCheck(func(d isa.Reg) { // fmax
		b.Emit(isa.Instruction{Op: isa.OpFMAX, Guard: isa.PT, Dst: d, SrcA: isa.R(x), SrcB: isa.R(y)})
	}) // 3.5

	// Transcendentals on 0.25.
	setF(x, 0.25)
	emitCheck(func(d isa.Reg) { b.Rcp(d, x) })              // 4
	emitCheck(func(d isa.Reg) { b.Unary(isa.OpRSQ, d, x) }) // 2
	emitCheck(func(d isa.Reg) { b.Unary(isa.OpSIN, d, x) }) // sin .25
	emitCheck(func(d isa.Reg) { b.Unary(isa.OpCOS, d, x) }) // cos .25
	emitCheck(func(d isa.Reg) { b.Unary(isa.OpLG2, d, x) }) // -2
	emitCheck(func(d isa.Reg) { b.Unary(isa.OpEX2, d, x) }) // 2^.25

	// Doubles: d0 = 3.0, d1 = 0.5.
	b.MovImm(d0, 0)
	b.MovImm(d0+1, 0x40080000)
	b.MovImm(d1, 0)
	b.MovImm(d1+1, 0x3fe00000)
	b.Emit(isa.Instruction{Op: isa.OpDADD, Guard: isa.PT, Dst: d0, SrcA: isa.R(d0), SrcB: isa.R(d1)}) // 3.5
	b.Emit(isa.Instruction{Op: isa.OpDMUL, Guard: isa.PT, Dst: d0, SrcA: isa.R(d0), SrcB: isa.R(d1)}) // 1.75
	b.DFma(d0, d0, d1, d1)                                                                            // 1.375
	emitCheck(func(d isa.Reg) { b.Mov(d, d0) })
	emitCheck(func(d isa.Reg) { b.Mov(d, d0+1) })

	b.Exit()
	prog := b.MustProgram()

	mem := NewMemory(int(slot+1) * 4)
	if _, err := Run(gpu.GTX285(), Launch{Prog: prog, Grid: 1, Block: 1}, mem, nil); err != nil {
		t.Fatal(err)
	}

	wantInts := map[int]uint32{
		0: 107, 1: 93, 2: 700, 3: 703, 4: 203, 5: 500, 6: 111,
		7: 56, 8: 25, 9: 100 & 0x6c, 10: 100 | 7, 11: 100 ^ 7, 12: 7, 13: 100, 14: 100,
	}
	for i, want := range wantInts {
		got, err := mem.Load32(uint32(i * 4))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("slot %d = %d, want %d", i, got, want)
		}
	}
	wantFloats := map[int]float64{
		15: 1.5, 16: 5.5, 17: -7, 18: -6.5, 19: 7.5, 20: -2, 21: 3.5,
		22: 4, 23: 2, 24: math.Sin(0.25), 25: math.Cos(0.25), 26: -2, 27: math.Exp2(0.25),
	}
	for i, want := range wantFloats {
		got, err := mem.Float32(uint32(i * 4))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got)-want) > 1e-5 {
			t.Errorf("slot %d = %v, want %v", i, got, want)
		}
	}
	lo, _ := mem.Load32(28 * 4)
	hi, _ := mem.Load32(29 * 4)
	if d := math.Float64frombits(uint64(hi)<<32 | uint64(lo)); d != 1.375 {
		t.Errorf("double chain = %v, want 1.375", d)
	}
}
