package barra

import (
	"fmt"
	"math"
	"math/bits"

	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

// LaneMask is a 32-lane occupancy bitmask: bit l is set when lane l
// participates. All hot-path lane sets (split masks, predicates, the
// active set of a step) are LaneMasks manipulated with math/bits, so
// per-step work is proportional to the popcount, not to WarpSize.
type LaneMask = uint32

// fullMask has every lane bit set; halfMask the low half-warp's.
const (
	fullMask LaneMask = 1<<gpu.WarpSize - 1
	halfMask LaneMask = 1<<gpu.HalfWarp - 1
)

// laneBits builds the mask of lanes [0, n).
func laneBits(n int) LaneMask {
	if n >= gpu.WarpSize {
		return fullMask
	}
	return 1<<uint(n) - 1
}

// Warp is the execution context of one warp: 32 lanes advancing in
// lockstep through the program.
//
// Intra-warp divergence is supported for structured *forward*
// branches: a divergent branch splits the warp into execution paths
// ("splits"), each a (mask, pc) pair; the warp always advances the
// split with the smallest PC, and splits whose PCs meet merge — the
// min-PC reconvergence scheme, which rejoins if/else and nested
// conditionals at their immediate post-dominators without explicit
// SSY/join markers. Divergent *backward* branches (per-lane loop
// trip counts) are rejected — express those with predication, as the
// paper's kernels do. Barriers may not execute while diverged.
type Warp struct {
	prog *isa.Program
	// meta is the predecoded per-PC metadata of prog.
	meta []instrMeta
	done bool

	regs  []uint32 // regsPerThread × WarpSize, index r*WarpSize+lane
	preds [isa.NumPreds]LaneMask
	// exists marks lanes that carry a real thread (the block size
	// need not be a warp multiple).
	exists LaneMask
	// splits are the live execution paths, unordered; Step picks
	// the minimum PC each time. There is always at least one.
	splits []split

	blockID  int
	warpID   int // within the block
	blockDim int
	gridDim  int

	// shared is the block's shared-memory arena as aligned 32-bit
	// words (every ISA access is one word).
	shared []uint32
	global *Memory

	// smemOpVal caches the current instruction's shared-memory ALU
	// operand (warp-uniform by construction).
	smemOpVal uint32
	// scal backs broadcast operand views (one slot per source).
	scal [3][1]uint32

	// undo, when non-nil, logs every global store as a (word index,
	// old value) pair so the engine path can rewind the block on a
	// replay-signature miss (see replay.go). Nil on the live path.
	undo *[]uint32
}

// StepInfo reports what one Step executed; it is reused across calls
// to avoid allocation in the simulators' hot loop.
type StepInfo struct {
	// PC is the index of the executed instruction.
	PC int
	// In points at the executed instruction inside the program; it is
	// valid until the program is released (programs are immutable
	// while warps run them).
	In *isa.Instruction
	// Class caches isa.ClassOf(In.Op), predecoded per PC.
	Class isa.Class
	// Active is the bitmask of lanes that actually executed
	// (exists ∧ path ∧ guard).
	Active LaneMask
	// ActiveCount is the popcount of Active.
	ActiveCount int
	// Addr holds per-lane byte addresses for memory instructions.
	Addr [gpu.WarpSize]uint32
	// SmemOperand is set when the instruction read a shared-memory
	// ALU operand (s[imm]); SmemAddr is its byte address. The access
	// is warp-uniform, so it broadcasts: one transaction per active
	// half-warp.
	SmemOperand bool
	SmemAddr    uint32
	// Barrier is set when the instruction was a BAR.
	Barrier bool
	// Done is set when the warp has exited.
	Done bool
	// BranchTaken is set when a BRA redirected the PC.
	BranchTaken bool
	// Diverged is set when the warp was split across more than one
	// execution path when this instruction issued — the issues a
	// divergence-free restructuring could pack into full warps.
	Diverged bool
}

// ActiveLane reports whether lane executed this step.
func (si *StepInfo) ActiveLane(lane int) bool { return si.Active>>uint(lane)&1 != 0 }

// HalfMask returns the active mask of one half-warp, shifted down to
// bit 0 (a 16-bit value).
func (si *StepInfo) HalfMask(half int) LaneMask {
	return si.Active >> uint(half*gpu.HalfWarp) & halfMask
}

// GatherHalf collects one half-warp's active-lane addresses into buf,
// visiting only set mask bits, and returns the filled prefix — the
// shape both the stats engine and the timing simulator feed to the
// bank and coalesce simulators.
func (si *StepInfo) GatherHalf(half int, buf *[gpu.HalfWarp]uint32) []uint32 {
	base := half * gpu.HalfWarp
	n := 0
	for m := si.HalfMask(half); m != 0; m &= m - 1 {
		buf[n] = si.Addr[base+bits.TrailingZeros32(m)]
		n++
	}
	return buf[:n]
}

// split is one SIMT execution path: the lanes it carries and its
// program counter.
type split struct {
	mask LaneMask
	pc   int
}

// maxSplits bounds pathological divergence (structured code needs
// depth ≈ nesting level).
const maxSplits = 64

// execKind is the predecoded top-level dispatch tag of one
// instruction: Step switches on it instead of re-deriving the
// control/ALU distinction from the opcode every step.
type execKind uint8

const (
	kindLane execKind = iota // per-lane execution through execLane
	kindBra
	kindExit
	kindBar
)

// instrMeta is the per-PC predecoded metadata: everything Step would
// otherwise re-derive from the instruction on every execution.
type instrMeta struct {
	class   isa.Class
	kind    execKind
	hasSmem bool // reads a shared-memory ALU operand
	// fast marks instructions execFast handles with hoisted operand
	// views — every opcode of the case-study kernels. Instructions
	// with special-register operands or double-precision register
	// pairs fall back to the per-lane execLane path.
	fast bool
	// run is the length of the maximal batched run starting at this
	// PC: consecutive per-lane instructions that are unguarded (so
	// the active mask is the split mask throughout) and touch no
	// memory (so no per-lane addresses need recording). 0 when this
	// instruction cannot head a run. stepRun executes a whole run in
	// one call when the warp is convergent.
	run int32
}

// fastOp reports whether execFast implements op.
func fastOp(op isa.Opcode) bool {
	switch op {
	case isa.OpNOP, isa.OpMOV, isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD,
		isa.OpIMIN, isa.OpIMAX, isa.OpSHL, isa.OpSHR, isa.OpAND, isa.OpOR,
		isa.OpXOR, isa.OpISETP, isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFMAD,
		isa.OpFNMAD, isa.OpFMIN, isa.OpFMAX, isa.OpFSETP, isa.OpRCP, isa.OpRSQ,
		isa.OpSIN, isa.OpCOS, isa.OpLG2, isa.OpEX2,
		isa.OpGLD, isa.OpGST, isa.OpSLD, isa.OpSST:
		return true
	}
	return false
}

// predecode builds the per-PC metadata of p. It runs once per
// NewWarp — a few compares per instruction, noise next to the many
// times each instruction executes — so no cross-program cache is
// needed (and none retains programs beyond their run).
func predecode(p *isa.Program) []instrMeta {
	meta := make([]instrMeta, len(p.Code))
	for i := range p.Code {
		in := &p.Code[i]
		md := instrMeta{class: isa.ClassOf(in.Op), kind: kindLane}
		switch in.Op {
		case isa.OpBRA:
			md.kind = kindBra
		case isa.OpEXIT:
			md.kind = kindExit
		case isa.OpBAR:
			md.kind = kindBar
		}
		md.hasSmem = in.SrcA.Kind == isa.KindSmem ||
			in.SrcB.Kind == isa.KindSmem || in.SrcC.Kind == isa.KindSmem
		md.fast = fastOp(in.Op) &&
			in.SrcA.Kind != isa.KindSReg && in.SrcB.Kind != isa.KindSReg &&
			in.SrcC.Kind != isa.KindSReg
		meta[i] = md
	}
	for i := len(meta) - 1; i >= 0; i-- {
		in := &p.Code[i]
		if meta[i].kind == kindLane && in.Guard == isa.PT && !in.GuardNeg &&
			!isa.IsMemory(in.Op) {
			meta[i].run = 1
			if i+1 < len(meta) {
				meta[i].run += meta[i+1].run
			}
		}
	}
	return meta
}

// NewWarp builds a warp ready to run prog. Lanes [0,lanes) exist.
func NewWarp(prog *isa.Program, blockID, warpID, blockDim, gridDim, lanes int, shared []uint32, global *Memory) (*Warp, error) {
	if lanes <= 0 || lanes > gpu.WarpSize {
		return nil, fmt.Errorf("barra: warp with %d lanes", lanes)
	}
	w := &Warp{
		prog:     prog,
		meta:     predecode(prog),
		regs:     make([]uint32, prog.RegsPerThread*gpu.WarpSize),
		exists:   laneBits(lanes),
		blockID:  blockID,
		warpID:   warpID,
		blockDim: blockDim,
		gridDim:  gridDim,
		shared:   shared,
		global:   global,
	}
	w.splits = []split{{mask: w.exists, pc: 0}}
	return w, nil
}

// Reset rebinds the warp to a new block without reallocating: it
// clears registers, predicates and divergence state and restarts at
// PC 0. The lane-existence mask, geometry and memory bindings are
// unchanged — the worker pool reuses one set of warp contexts across
// every block it executes (the caller zeroes the shared-memory arena
// between blocks).
func (w *Warp) Reset(blockID int) {
	w.blockID = blockID
	w.done = false
	clear(w.regs)
	w.preds = [isa.NumPreds]LaneMask{}
	w.splits = w.splits[:1]
	w.splits[0] = split{mask: w.exists, pc: 0}
	w.smemOpVal = 0
}

// Diverged reports whether the warp currently executes on more than
// one SIMT path.
func (w *Warp) Diverged() bool { return len(w.splits) > 1 }

// current returns the index of the split to execute next (minimum
// PC), merging any splits that have reconverged.
func (w *Warp) current() int {
	cur := 0
	for i := 1; i < len(w.splits); i++ {
		if w.splits[i].pc < w.splits[cur].pc {
			cur = i
		}
	}
	// Merge splits whose PCs meet the current one.
	for i := len(w.splits) - 1; i >= 0; i-- {
		if i == cur || w.splits[i].pc != w.splits[cur].pc {
			continue
		}
		w.splits[cur].mask |= w.splits[i].mask
		if i < cur {
			cur--
		}
		w.splits = append(w.splits[:i], w.splits[i+1:]...) //gpuperf:alloc-ok in-place compaction of the splits stack; the length only shrinks
	}
	return cur
}

// Done reports whether the warp has exited.
func (w *Warp) Done() bool { return w.done }

// PC returns the program counter of the split that will execute
// next.
func (w *Warp) PC() int { return w.splits[w.current()].pc }

func (w *Warp) reg(r isa.Reg, lane int) uint32 { return w.regs[int(r)*gpu.WarpSize+lane] }
func (w *Warp) setReg(r isa.Reg, lane int, v uint32) {
	w.regs[int(r)*gpu.WarpSize+lane] = v
}

func (w *Warp) sreg(s isa.SReg, lane int) uint32 {
	switch s {
	case isa.SRTid:
		return uint32(w.warpID*gpu.WarpSize + lane)
	case isa.SRCtaid:
		return uint32(w.blockID)
	case isa.SRNtid:
		return uint32(w.blockDim)
	case isa.SRNctaid:
		return uint32(w.gridDim)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarp:
		return uint32(w.warpID)
	}
	return 0
}

func (w *Warp) operand(o isa.Operand, imm uint32, lane int) uint32 {
	switch o.Kind {
	case isa.KindReg:
		return w.reg(o.Reg, lane)
	case isa.KindImm:
		return imm
	case isa.KindSReg:
		return w.sreg(o.SReg, lane)
	case isa.KindSmem:
		return w.smemOpVal
	}
	return 0
}

func (w *Warp) f64(r isa.Reg, lane int) float64 {
	lo := uint64(w.reg(r, lane))
	hi := uint64(w.reg(r+1, lane))
	return math.Float64frombits(hi<<32 | lo)
}

func (w *Warp) setF64(r isa.Reg, lane int, v float64) {
	bits := math.Float64bits(v)
	w.setReg(r, lane, uint32(bits))
	w.setReg(r+1, lane, uint32(bits>>32))
}

// guardMask returns the mask of lanes where the instruction's guard
// predicate holds.
func (w *Warp) guardMask(in *isa.Instruction) LaneMask {
	if in.Guard == isa.PT {
		if in.GuardNeg {
			return 0
		}
		return fullMask
	}
	v := w.preds[in.Guard]
	if in.GuardNeg {
		return ^v & fullMask
	}
	return v
}

// Step executes the instruction at the current PC and fills info.
// BAR advances the PC and sets info.Barrier; the scheduler is
// responsible for holding the warp until the block synchronizes.
//
//gpuperf:noalloc
func (w *Warp) Step(info *StepInfo) error {
	if w.done {
		return fmt.Errorf("barra: step after exit in %q", w.prog.Name)
	}
	cur := w.current()
	pc := w.splits[cur].pc
	if pc < 0 || pc >= len(w.prog.Code) {
		return fmt.Errorf("barra: pc %d out of range in %q", pc, w.prog.Name)
	}

	in := &w.prog.Code[pc]
	md := &w.meta[pc]
	info.PC = pc
	info.In = in
	info.Class = md.class
	info.Barrier = false
	info.Done = false
	info.BranchTaken = false
	info.SmemOperand = false
	info.Diverged = len(w.splits) > 1

	active := w.splits[cur].mask & w.guardMask(in)
	info.Active = active
	info.ActiveCount = bits.OnesCount32(active)

	switch md.kind {
	case kindBra:
		return w.branch(in, info, cur)
	case kindExit:
		if w.Diverged() {
			return fmt.Errorf("barra: exit inside divergent region at pc %d in %q", pc, w.prog.Name)
		}
		w.done = true
		info.Done = true
		return nil
	case kindBar:
		if w.Diverged() {
			return fmt.Errorf("barra: barrier inside divergent region at pc %d in %q (undefined on hardware)", pc, w.prog.Name)
		}
		info.Barrier = true
		w.splits[cur].pc++
		return nil
	}

	if active != 0 && md.hasSmem {
		v, err := w.sharedLoad(in.Imm)
		if err != nil {
			return fmt.Errorf("barra: %q pc=%d: shared operand: %w", w.prog.Name, pc, err)
		}
		w.smemOpVal = v
		info.SmemOperand = true
		info.SmemAddr = in.Imm
	}

	if md.fast {
		if err := w.execFast(in, active, pc, &info.Addr); err != nil {
			return err
		}
	} else {
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if err := w.execLane(in, lane, info); err != nil {
				return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, lane, err)
			}
		}
	}
	w.splits[cur].pc++
	return nil
}

// stepRun executes n consecutive instructions starting at the
// current PC in one call. The caller guarantees the warp is
// convergent and n ≤ the predecoded run length at the PC, so every
// instruction executes with the full split mask and no control
// transfer, memory access, or divergence change can occur: the only
// bookkeeping per instruction is the shared-operand broadcast. info
// is used only as lane-address scratch by the exec fallback.
//
//gpuperf:noalloc
func (w *Warp) stepRun(n int, info *StepInfo) error {
	s := &w.splits[0]
	pc := s.pc
	mask := s.mask
	for k := 0; k < n; k++ {
		in := &w.prog.Code[pc+k]
		md := &w.meta[pc+k]
		if md.hasSmem {
			v, err := w.sharedLoad(in.Imm)
			if err != nil {
				return fmt.Errorf("barra: %q pc=%d: shared operand: %w", w.prog.Name, pc+k, err)
			}
			w.smemOpVal = v
		}
		if md.fast {
			if err := w.execFast(in, mask, pc+k, &info.Addr); err != nil {
				return err
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				if err := w.execLane(in, lane, info); err != nil {
					return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc+k, lane, err)
				}
			}
		}
	}
	s.pc = pc + n
	return nil
}

// view is a hoisted per-lane operand: base slice s indexed l&m, where
// m is WarpSize-1 for a per-lane register column and 0 for a
// broadcast scalar (immediate, shared-memory operand, absent source).
type view struct {
	s []uint32
	m int
}

func (v view) at(l int) uint32   { return v.s[l&v.m] }
func (v view) fat(l int) float32 { return math.Float32frombits(v.s[l&v.m]) }

// regCol returns register r's 32-lane column.
func (w *Warp) regCol(r isa.Reg) []uint32 {
	base := int(r) * gpu.WarpSize
	return w.regs[base : base+gpu.WarpSize : base+gpu.WarpSize]
}

// srcView resolves one source operand into a view; k picks the
// broadcast scratch slot (0..2 for SrcA..SrcC).
func (w *Warp) srcView(o isa.Operand, imm uint32, k int) view {
	switch o.Kind {
	case isa.KindReg:
		return view{w.regCol(o.Reg), gpu.WarpSize - 1}
	case isa.KindImm:
		w.scal[k][0] = imm
	case isa.KindSmem:
		w.scal[k][0] = w.smemOpVal
	default:
		w.scal[k][0] = 0
	}
	return view{w.scal[k][:1], 0}
}

// execFast executes one predecoded instruction for every active lane
// with the opcode dispatch and operand resolution hoisted out of the
// lane loop — the semantic twin of execLane (which remains the
// fallback for special-register operands and double-precision ops).
// addrs receives per-lane byte addresses for memory instructions.
func (w *Warp) execFast(in *isa.Instruction, active LaneMask, pc int, addrs *[gpu.WarpSize]uint32) error {
	const ws = gpu.WarpSize
	switch in.Op {
	case isa.OpNOP:

	case isa.OpMOV:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		if active == ^LaneMask(0) {
			if a.m != 0 {
				copy(d, a.s)
			} else {
				v := a.s[0]
				for l := range d {
					d[l] = v
				}
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l)
			}
		}
	case isa.OpIADD:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		// Full-mask fast paths: constant-length reslices eliminate the
		// per-lane bounds and mask work of view.at.
		if active == ^LaneMask(0) && a.m != 0 {
			ds, as := d[:ws], a.s[:ws]
			if b.m != 0 {
				bs := b.s[:ws]
				for l := 0; l < ws; l++ {
					ds[l] = as[l] + bs[l]
				}
			} else {
				bv := b.s[0]
				for l := 0; l < ws; l++ {
					ds[l] = as[l] + bv
				}
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) + b.at(l)
			}
		}
	case isa.OpISUB:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) - b.at(l)
			}
		}
	case isa.OpIMUL:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) * b.at(l)
			}
		}
	case isa.OpIMAD:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		c := w.srcView(in.SrcC, in.Imm, 2)
		if active == ^LaneMask(0) && a.m&c.m != 0 {
			ds, as, cs := d[:ws], a.s[:ws], c.s[:ws]
			if b.m != 0 {
				bs := b.s[:ws]
				for l := 0; l < ws; l++ {
					ds[l] = as[l]*bs[l] + cs[l]
				}
			} else {
				bv := b.s[0]
				for l := 0; l < ws; l++ {
					ds[l] = as[l]*bv + cs[l]
				}
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l)*b.at(l) + c.at(l)
			}
		}
	case isa.OpIMIN:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = uint32(min(int32(a.at(l)), int32(b.at(l))))
			}
		}
	case isa.OpIMAX:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = uint32(max(int32(a.at(l)), int32(b.at(l))))
			}
		}
	case isa.OpSHL:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		if active == ^LaneMask(0) && a.m != 0 && b.m == 0 {
			ds, as, sh := d[:ws], a.s[:ws], b.s[0]&31
			for l := 0; l < ws; l++ {
				ds[l] = as[l] << sh
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) << (b.at(l) & 31)
			}
		}
	case isa.OpSHR:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) >> (b.at(l) & 31)
			}
		}
	case isa.OpAND:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) & b.at(l)
			}
		}
	case isa.OpOR:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) | b.at(l)
			}
		}
	case isa.OpXOR:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = a.at(l) ^ b.at(l)
			}
		}
	case isa.OpISETP:
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		var res LaneMask
		if active == ^LaneMask(0) && a.m != 0 && b.m == 0 {
			as, bv, cmp := a.s[:ws], int32(b.s[0]), in.Cmp
			for l := 0; l < ws; l++ {
				if icmp(cmp, int32(as[l]), bv) {
					res |= 1 << uint(l)
				}
			}
		} else {
			for l := 0; l < ws; l++ {
				if active>>uint(l)&1 != 0 && icmp(in.Cmp, int32(a.at(l)), int32(b.at(l))) {
					res |= 1 << uint(l)
				}
			}
		}
		w.preds[in.PDst] = w.preds[in.PDst]&^active | res
	case isa.OpFSETP:
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		var res LaneMask
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 && fcmp(in.Cmp, a.fat(l), b.fat(l)) {
				res |= 1 << uint(l)
			}
		}
		w.preds[in.PDst] = w.preds[in.PDst]&^active | res
	case isa.OpFADD:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		if active == ^LaneMask(0) && a.m&b.m != 0 {
			ds, as, bs := d[:ws], a.s[:ws], b.s[:ws]
			for l := 0; l < ws; l++ {
				ds[l] = math.Float32bits(math.Float32frombits(as[l]) + math.Float32frombits(bs[l]))
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(a.fat(l) + b.fat(l))
			}
		}
	case isa.OpFSUB:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(a.fat(l) - b.fat(l))
			}
		}
	case isa.OpFMUL:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		if active == ^LaneMask(0) && a.m&b.m != 0 {
			ds, as, bs := d[:ws], a.s[:ws], b.s[:ws]
			for l := 0; l < ws; l++ {
				ds[l] = math.Float32bits(math.Float32frombits(as[l]) * math.Float32frombits(bs[l]))
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(a.fat(l) * b.fat(l))
			}
		}
	case isa.OpFMAD:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		c := w.srcView(in.SrcC, in.Imm, 2)
		if active == ^LaneMask(0) && b.m&c.m != 0 {
			ds, bs, cs := d[:ws], b.s[:ws], c.s[:ws]
			if a.m != 0 {
				as := a.s[:ws]
				for l := 0; l < ws; l++ {
					ds[l] = math.Float32bits(math.Float32frombits(as[l])*math.Float32frombits(bs[l]) + math.Float32frombits(cs[l]))
				}
			} else {
				av := math.Float32frombits(a.s[0])
				for l := 0; l < ws; l++ {
					ds[l] = math.Float32bits(av*math.Float32frombits(bs[l]) + math.Float32frombits(cs[l]))
				}
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(a.fat(l)*b.fat(l) + c.fat(l))
			}
		}
	case isa.OpFNMAD:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		c := w.srcView(in.SrcC, in.Imm, 2)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(c.fat(l) - a.fat(l)*b.fat(l))
			}
		}
	case isa.OpFMIN:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Min(float64(a.fat(l)), float64(b.fat(l)))))
			}
		}
	case isa.OpFMAX:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		b := w.srcView(in.SrcB, in.Imm, 1)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Max(float64(a.fat(l)), float64(b.fat(l)))))
			}
		}
	case isa.OpRCP:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(1 / a.fat(l))
			}
		}
	case isa.OpRSQ:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(1 / math.Sqrt(float64(a.fat(l)))))
			}
		}
	case isa.OpSIN:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Sin(float64(a.fat(l)))))
			}
		}
	case isa.OpCOS:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Cos(float64(a.fat(l)))))
			}
		}
	case isa.OpLG2:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Log2(float64(a.fat(l)))))
			}
		}
	case isa.OpEX2:
		d := w.regCol(in.Dst)
		a := w.srcView(in.SrcA, in.Imm, 0)
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 != 0 {
				d[l] = math.Float32bits(float32(math.Exp2(float64(a.fat(l)))))
			}
		}

	case isa.OpGLD:
		d := w.regCol(in.Dst)
		a := w.regCol(in.SrcA.Reg) // memory addresses are always registers
		imm := in.Imm
		if g := w.global; g.writers == nil {
			// Tracking disarmed: load32 reduces to a bounds check and a
			// word read, inlined here because gathers dominate the
			// memory-bound profile.
			words := g.words
			for l := 0; l < ws; l++ {
				if active>>uint(l)&1 == 0 {
					continue
				}
				addr := a[l] + imm
				addrs[l] = addr
				i := addr >> 2
				if addr&3 != 0 || int(i) >= len(words) {
					return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, l, g.check(addr))
				}
				d[l] = words[i]
			}
			break
		}
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 == 0 {
				continue
			}
			addr := a[l] + imm
			addrs[l] = addr
			v, err := w.global.load32(addr, w.blockID)
			if err != nil {
				return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, l, err)
			}
			d[l] = v
		}
	case isa.OpGST:
		a := w.regCol(in.SrcA.Reg)
		b := w.srcView(in.SrcB, in.Imm, 1)
		imm := in.Imm
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 == 0 {
				continue
			}
			addr := a[l] + imm
			addrs[l] = addr
			if u := w.undo; u != nil {
				if i := addr >> 2; addr&3 == 0 && int(i) < len(w.global.words) {
					*u = append(*u, i, w.global.words[i]) //gpuperf:alloc-ok undo log reuses per-worker capacity across blocks; growth amortizes to zero
				}
			}
			if err := w.global.store32(addr, b.at(l), w.blockID); err != nil {
				return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, l, err)
			}
		}
	case isa.OpSLD:
		d := w.regCol(in.Dst)
		a := w.regCol(in.SrcA.Reg)
		imm := in.Imm
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 == 0 {
				continue
			}
			addr := a[l] + imm
			addrs[l] = addr
			v, err := w.sharedLoad(addr)
			if err != nil {
				return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, l, err)
			}
			d[l] = v
		}
	case isa.OpSST:
		a := w.regCol(in.SrcA.Reg)
		b := w.srcView(in.SrcB, in.Imm, 1)
		imm := in.Imm
		for l := 0; l < ws; l++ {
			if active>>uint(l)&1 == 0 {
				continue
			}
			addr := a[l] + imm
			addrs[l] = addr
			if err := w.sharedStore(addr, b.at(l)); err != nil {
				return fmt.Errorf("barra: %q pc=%d lane=%d: %w", w.prog.Name, pc, l, err)
			}
		}
	default:
		return fmt.Errorf("barra: %q pc=%d: unimplemented fast opcode %s", w.prog.Name, pc, in.Op)
	}
	return nil
}

// branch executes a (possibly divergent) branch on the split cur.
// Uniform outcomes jump or fall through as a unit; a divergent
// forward branch splits the path in two (fall-through lanes and
// taken lanes), which the min-PC scheduler later re-merges at the
// immediate post-dominator. Divergent backward branches are
// rejected — unstructured loops need per-lane trip masking, which
// the case-study kernels express with predication instead.
func (w *Warp) branch(in *isa.Instruction, info *StepInfo, cur int) error {
	pc := w.splits[cur].pc
	mask := w.splits[cur].mask
	takenMask := mask & w.guardMask(in)
	activeCount := bits.OnesCount32(mask)
	takenCount := bits.OnesCount32(takenMask)
	switch {
	case activeCount == 0 || takenCount == 0:
		w.splits[cur].pc++
	case takenCount == activeCount:
		w.splits[cur].pc = int(in.Target)
		info.BranchTaken = true
	case int(in.Target) > pc:
		if len(w.splits) >= maxSplits {
			return fmt.Errorf("barra: divergence fan-out exceeds %d paths at pc %d in %q",
				maxSplits, pc, w.prog.Name)
		}
		w.splits[cur].mask = mask &^ takenMask
		w.splits[cur].pc++
		w.splits = append(w.splits, split{mask: takenMask, pc: int(in.Target)}) //gpuperf:alloc-ok bounded by maxSplits; capacity is reused across blocks via Reset
		info.BranchTaken = true
	default:
		return fmt.Errorf("barra: divergent backward branch at pc %d in %q (use predication for per-lane loop trip counts)",
			pc, w.prog.Name)
	}
	return nil
}

func (w *Warp) execLane(in *isa.Instruction, lane int, info *StepInfo) error {
	a := w.operand(in.SrcA, in.Imm, lane)
	b := w.operand(in.SrcB, in.Imm, lane)
	c := w.operand(in.SrcC, in.Imm, lane)
	fa, fb, fc := math.Float32frombits(a), math.Float32frombits(b), math.Float32frombits(c)

	switch in.Op {
	case isa.OpNOP:
	case isa.OpMOV, isa.OpS2R:
		w.setReg(in.Dst, lane, a)
	case isa.OpIADD:
		w.setReg(in.Dst, lane, a+b)
	case isa.OpISUB:
		w.setReg(in.Dst, lane, a-b)
	case isa.OpIMUL:
		w.setReg(in.Dst, lane, a*b)
	case isa.OpIMAD:
		w.setReg(in.Dst, lane, a*b+c)
	case isa.OpIMIN:
		w.setReg(in.Dst, lane, uint32(min(int32(a), int32(b))))
	case isa.OpIMAX:
		w.setReg(in.Dst, lane, uint32(max(int32(a), int32(b))))
	case isa.OpSHL:
		w.setReg(in.Dst, lane, a<<(b&31))
	case isa.OpSHR:
		w.setReg(in.Dst, lane, a>>(b&31))
	case isa.OpAND:
		w.setReg(in.Dst, lane, a&b)
	case isa.OpOR:
		w.setReg(in.Dst, lane, a|b)
	case isa.OpXOR:
		w.setReg(in.Dst, lane, a^b)
	case isa.OpISETP:
		w.setPred(in.PDst, lane, icmp(in.Cmp, int32(a), int32(b)))
	case isa.OpFADD:
		w.setReg(in.Dst, lane, math.Float32bits(fa+fb))
	case isa.OpFSUB:
		w.setReg(in.Dst, lane, math.Float32bits(fa-fb))
	case isa.OpFMUL:
		w.setReg(in.Dst, lane, math.Float32bits(fa*fb))
	case isa.OpFMAD:
		w.setReg(in.Dst, lane, math.Float32bits(fa*fb+fc))
	case isa.OpFNMAD:
		w.setReg(in.Dst, lane, math.Float32bits(fc-fa*fb))
	case isa.OpFMIN:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Min(float64(fa), float64(fb)))))
	case isa.OpFMAX:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Max(float64(fa), float64(fb)))))
	case isa.OpFSETP:
		w.setPred(in.PDst, lane, fcmp(in.Cmp, fa, fb))
	case isa.OpRCP:
		w.setReg(in.Dst, lane, math.Float32bits(1/fa))
	case isa.OpRSQ:
		w.setReg(in.Dst, lane, math.Float32bits(float32(1/math.Sqrt(float64(fa)))))
	case isa.OpSIN:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Sin(float64(fa)))))
	case isa.OpCOS:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Cos(float64(fa)))))
	case isa.OpLG2:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Log2(float64(fa)))))
	case isa.OpEX2:
		w.setReg(in.Dst, lane, math.Float32bits(float32(math.Exp2(float64(fa)))))
	case isa.OpDADD:
		w.setF64(in.Dst, lane, w.srcF64(in.SrcA, lane)+w.srcF64(in.SrcB, lane))
	case isa.OpDMUL:
		w.setF64(in.Dst, lane, w.srcF64(in.SrcA, lane)*w.srcF64(in.SrcB, lane))
	case isa.OpDFMA:
		x := w.srcF64(in.SrcA, lane)
		y := w.srcF64(in.SrcB, lane)
		z := w.srcF64(in.SrcC, lane)
		w.setF64(in.Dst, lane, x*y+z)
	case isa.OpGLD:
		addr := a + in.Imm
		info.Addr[lane] = addr
		v, err := w.global.load32(addr, w.blockID)
		if err != nil {
			return err
		}
		w.setReg(in.Dst, lane, v)
	case isa.OpGST:
		addr := a + in.Imm
		info.Addr[lane] = addr
		if u := w.undo; u != nil {
			if i := addr >> 2; addr&3 == 0 && int(i) < len(w.global.words) {
				*u = append(*u, i, w.global.words[i]) //gpuperf:alloc-ok undo log reuses per-worker capacity across blocks; growth amortizes to zero
			}
		}
		if err := w.global.store32(addr, b, w.blockID); err != nil {
			return err
		}
	case isa.OpSLD:
		addr := a + in.Imm
		info.Addr[lane] = addr
		v, err := w.sharedLoad(addr)
		if err != nil {
			return err
		}
		w.setReg(in.Dst, lane, v)
	case isa.OpSST:
		addr := a + in.Imm
		info.Addr[lane] = addr
		if err := w.sharedStore(addr, b); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unimplemented opcode %s", in.Op)
	}
	return nil
}

func (w *Warp) setPred(p isa.Pred, lane int, v bool) {
	if v {
		w.preds[p] |= 1 << uint(lane)
	} else {
		w.preds[p] &^= 1 << uint(lane)
	}
}

func (w *Warp) srcF64(o isa.Operand, lane int) float64 {
	if o.Kind == isa.KindReg {
		return w.f64(o.Reg, lane)
	}
	return 0
}

func (w *Warp) sharedLoad(addr uint32) (uint32, error) {
	i := addr >> 2
	if addr&3 != 0 {
		return 0, fmt.Errorf("unaligned shared load at %#x", addr)
	}
	if int(i) >= len(w.shared) {
		return 0, fmt.Errorf("shared load at %#x beyond allocation %#x", addr, 4*len(w.shared))
	}
	return w.shared[i], nil
}

func (w *Warp) sharedStore(addr, v uint32) error {
	i := addr >> 2
	if addr&3 != 0 {
		return fmt.Errorf("unaligned shared store at %#x", addr)
	}
	if int(i) >= len(w.shared) {
		return fmt.Errorf("shared store at %#x beyond allocation %#x", addr, 4*len(w.shared))
	}
	w.shared[i] = v
	return nil
}

func icmp(c isa.CmpOp, a, b int32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	}
	return false
}

func fcmp(c isa.CmpOp, a, b float32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	}
	return false
}
