// Package lint is gpuperf's static-analysis suite: a small,
// dependency-free go/analysis-style framework plus the five analyzers
// that encode the repository's invariants (import layering, hot-path
// allocation-freedom, determinism, slog-only logging, context
// propagation). cmd/gpuperflint is the multichecker front end; CI
// runs it over ./... so an invariant violation is a positioned
// compile-time diagnostic instead of a flaky runtime failure.
//
// The framework mirrors the golang.org/x/tools/go/analysis shapes
// (Analyzer, Pass, positioned diagnostics, testdata-driven golden
// tests) but is built entirely on the standard library's go/ast,
// go/parser, go/types and go/importer: the build environment has no
// module proxy access, and keeping the suite stdlib-only also keeps
// the root module dependency-free — the original reason the issue
// wanted the linter isolated in its own module.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "gpuperf/internal/barra"
	Dir   string // absolute directory
	Rel   string // module-relative directory in slash form; "" for the root package
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncSource locates the declaration of a module function so
// whole-program analyzers (noalloc) can traverse call graphs across
// package boundaries.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Program is a fully loaded module: every package type-checked
// against one shared FileSet and one shared type-checker universe, so
// a *types.Func observed at a call site in one package is pointer-
// identical to the one at its declaration in another.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod (or the override)
	Root   string // absolute module root directory
	Pkgs   map[string]*Package

	funcs map[*types.Func]*FuncSource
}

// Packages returns the loaded packages sorted by import path.
func (p *Program) Packages() []*Package {
	paths := make([]string, 0, len(p.Pkgs))
	for path := range p.Pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = p.Pkgs[path]
	}
	return out
}

// FuncDecl returns the source declaration of fn if it is defined in
// the loaded module, or nil for stdlib and synthetic functions.
func (p *Program) FuncDecl(fn *types.Func) *FuncSource { return p.funcs[fn] }

// InModule reports whether importPath addresses a package of the
// loaded module.
func (p *Program) InModule(importPath string) bool {
	return importPath == p.Module || strings.HasPrefix(importPath, p.Module+"/")
}

// LoadModule loads, parses and type-checks every non-test package of
// the Go module rooted at root, reading the module path from go.mod.
func LoadModule(root string) (*Program, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	mod := modulePath(string(data))
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s", filepath.Join(root, "go.mod"))
	}
	return LoadModuleAs(root, mod)
}

// LoadModuleAs is LoadModule with an explicit module path — the entry
// point for testdata trees, which carry no go.mod but still want
// module-qualified import paths (linttest loads fixtures with the
// real "gpuperf" prefix so the repo's policy tables apply verbatim).
func LoadModuleAs(root, module string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		Module: module,
		Root:   abs,
		Pkgs:   map[string]*Package{},
		funcs:  map[*types.Func]*FuncSource{},
	}
	l := &loader{
		prog:    prog,
		std:     importer.ForCompiler(prog.Fset, "source", nil),
		loading: map[string]bool{},
	}
	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		rel, _ := filepath.Rel(abs, dir)
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(path); err != nil {
			return nil, err
		}
	}
	prog.indexFuncs()
	return prog, nil
}

// modulePath extracts the module directive from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// packageDirs walks root collecting every directory holding at least
// one non-test .go file, skipping testdata, VCS metadata and
// hidden/underscore directories — the same exclusions the go tool
// applies to ./... patterns.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	return dirs, nil
}

// loader resolves module-internal imports from source under the
// module root and everything else through the stdlib source importer
// (one shared instance, so the expensive stdlib packages type-check
// once per Program).
type loader struct {
	prog    *Program
	std     types.Importer
	loading map[string]bool
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.prog.InModule(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.prog.Pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.prog.Module), "/")
	dir := filepath.Join(l.prog.Root, filepath.FromSlash(rel))
	files, err := parseDir(l.prog.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s (import %s)", dir, path)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.prog.Fset, files, info)
	if len(typeErrs) > 0 {
		const max = 10
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], fmt.Sprintf("... and %d more", len(typeErrs)-max))
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Rel: filepath.ToSlash(rel), Files: files, Types: tpkg, Info: info}
	l.prog.Pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file of dir in name order (the
// type-checker requires a deterministic file list for reproducible
// object resolution).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// indexFuncs builds the module-wide *types.Func → declaration index
// after every package has loaded.
func (p *Program) indexFuncs() {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcs[fn] = &FuncSource{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
}
