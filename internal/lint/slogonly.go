package lint

import (
	"go/ast"
	"go/types"
)

// SlogPolicy scopes the slogonly analyzer: server and library code
// must log through log/slog (the PR-9 observability contract — every
// line carries component and request-id attributes), while CLIs keep
// their human-facing stdout.
type SlogPolicy struct {
	// ExemptDirs lists module-relative directory prefixes whose
	// packages may print directly (cmd, examples).
	ExemptDirs []string
}

// NewSlogOnly builds the analyzer flagging direct terminal output in
// non-exempt packages: any use of the legacy log package, the
// implicit-stdout fmt printers, fmt.Fprint* aimed at os.Stdout or
// os.Stderr, and the print/println builtins. fmt.Fprint* into
// buffers, strings.Builders or HTTP responses is fine — the rule is
// about bypassing structured logging, not about formatting.
func NewSlogOnly(pol SlogPolicy) *Analyzer {
	a := &Analyzer{
		Name: "slogonly",
		Doc:  "server and library code logs via log/slog only",
	}
	a.Run = func(pass *Pass) error {
		for _, dir := range pol.ExemptDirs {
			if underDir(pass.Pkg.Rel, dir) {
				return nil
			}
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fn := calleeOf(info, call).(type) {
				case *types.Builtin:
					if fn.Name() == "print" || fn.Name() == "println" {
						pass.Reportf(call.Pos(), "%s builtin writes to stderr: use log/slog", fn.Name())
					}
				case *types.Func:
					pkgPath := ""
					if fn.Pkg() != nil {
						pkgPath = fn.Pkg().Path()
					}
					switch pkgPath {
					case "log":
						pass.Reportf(call.Pos(), "log.%s bypasses structured logging: use log/slog", fn.Name())
					case "fmt":
						switch fn.Name() {
						case "Print", "Printf", "Println":
							pass.Reportf(call.Pos(), "fmt.%s writes to stdout: use log/slog", fn.Name())
						case "Fprint", "Fprintf", "Fprintln":
							if w := stdStream(info, call); w != "" {
								pass.Reportf(call.Pos(), "fmt.%s to %s bypasses structured logging: use log/slog", fn.Name(), w)
							}
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// calleeOf resolves a call's target object: a *types.Func for static
// calls (package functions and methods), a *types.Builtin for
// builtins, nil for dynamic calls and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// stdStream reports whether a call's first argument is os.Stdout or
// os.Stderr, naming which.
func stdStream(info *types.Info, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
		return "os." + obj.Name()
	}
	return ""
}
