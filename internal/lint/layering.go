package lint

import (
	"strconv"
	"strings"
)

// ImportPolicy is the declarative layering table: which module
// packages each part of the tree may import. Stdlib and foreign
// imports are never constrained — layering is about the module's own
// internal seams.
type ImportPolicy struct {
	// Facade rules constrain importers: every package whose
	// module-relative directory sits under Dir may import, from this
	// module, only the listed packages.
	Facade []FacadeRule
	// Private rules constrain importees: the package (or subtree) at
	// Path may be imported only by the listed packages.
	Private []PrivateRule
}

// FacadeRule pins a subtree of consumers to a public surface.
type FacadeRule struct {
	Dir    string   // module-relative directory prefix, slash form ("cmd", "examples")
	Allow  []string // module import paths its packages may import
	Except []string // module-relative importer dirs exempt from this rule
}

// PrivateRule reserves a package for a named set of importers.
type PrivateRule struct {
	Path    string   // module import path of the private package (subtree included)
	Only    []string // import paths of the packages allowed to import it
	Explain string   // one-line rationale, echoed in the diagnostic
}

// NewLayering builds the layering analyzer from a policy table. It
// replaces ci.yml's former grep checks: a violation is reported at
// the exact import declaration instead of as a pipeline grep hit.
func NewLayering(pol ImportPolicy) *Analyzer {
	a := &Analyzer{
		Name: "layering",
		Doc:  "enforce the module's declarative import-policy table",
	}
	a.Run = func(pass *Pass) error {
		pkg := pass.Pkg
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !pass.Prog.InModule(path) {
					continue
				}
				for _, r := range pol.Facade {
					if !underDir(pkg.Rel, r.Dir) || contains(r.Allow, path) {
						continue
					}
					exempt := false
					for _, ex := range r.Except {
						if underDir(pkg.Rel, ex) {
							exempt = true
							break
						}
					}
					if exempt {
						continue
					}
					pass.Reportf(imp.Pos(),
						"%s/ packages may import only %s from this module, not %s",
						r.Dir, strings.Join(r.Allow, ", "), path)
				}
				for _, r := range pol.Private {
					if path != r.Path && !strings.HasPrefix(path, r.Path+"/") {
						continue
					}
					if contains(r.Only, pkg.Path) {
						continue
					}
					pass.Reportf(imp.Pos(),
						"%s is private to %s (%s)",
						r.Path, strings.Join(r.Only, ", "), r.Explain)
				}
			}
		}
		return nil
	}
	return a
}

// underDir reports whether module-relative directory rel is dir or
// inside it.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
