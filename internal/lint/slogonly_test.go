package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
	"gpuperf/internal/lint/linttest"
)

// TestSlogOnly checks the four flagged output paths (log.*, implicit-
// stdout fmt printers, fmt.Fprint* to std streams, print builtins),
// that slog and buffer-directed Fprintf stay legal, and that cmd/ is
// exempt.
func TestSlogOnly(t *testing.T) {
	linttest.Run(t, "testdata/slogonly", "gpuperf",
		lint.NewSlogOnly(lint.RepoSlogPolicy()))
}
