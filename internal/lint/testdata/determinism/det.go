// Package detfix mirrors the repo's root package: deterministic
// surfaces (this file, scoped by name in the policy) live next to
// server plumbing (plumbing.go, out of scope).
package detfix

import (
	"math/rand"
	"time"
)

// CacheKey stands in for the root package's fingerprint builders.
func CacheKey(parts map[string]string) string {
	for k, v := range parts { // want "map iteration order is randomized"
		_ = k
		_ = v
	}
	_ = rand.Intn(8) // want "draws from the global stream"
	_ = time.Now()   // want "reads the wall clock"
	return ""
}
