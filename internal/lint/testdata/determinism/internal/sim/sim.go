// Package sim is fully in scope for the determinism analyzer: it
// exercises every rule, every escape, and the sanctioned patterns.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Draw uses the sanctioned seeded-generator pattern: clean.
func Draw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// Global draws from the process-wide stream.
func Global() int {
	return rand.Intn(100) // want "draws from the global stream"
}

// Stamp reads the wall clock in deterministic code.
func Stamp() int64 {
	return time.Now().Unix() // want "reads the wall clock"
}

// StampOK routes telemetry through a justified escape: clean.
func StampOK() int64 {
	//gpuperf:wallclock fixture telemetry never reaches a fingerprint
	return time.Now().Unix()
}

// StampBare carries the directive but no justification.
func StampBare() int64 {
	//gpuperf:wallclock
	return time.Now().Unix() // want "needs a justification"
}

// Keys uses the collect-then-sort idiom: clean.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum is an order-independent fold with a justified annotation: clean.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m { //gpuperf:unordered commutative sum
		n += v
	}
	return n
}

// SumBare is the same fold with a bare directive.
func SumBare(m map[string]int) int {
	n := 0
	//gpuperf:unordered
	for _, v := range m { // want "needs a justification"
		n += v
	}
	return n
}

// Emit iterates a map straight into output order.
func Emit(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is randomized"
		out = append(out, v)
	}
	return out
}
