// Package free sits outside the determinism policy's scope: every
// construct the analyzer flags elsewhere must stay silent here.
package free

import (
	"math/rand"
	"time"
)

// Sins commits all three and is none of the analyzer's business.
func Sins(m map[string]int) int {
	n := rand.Intn(10)
	n += int(time.Now().UnixNano())
	for _, v := range m {
		n += v
	}
	return n
}
