// plumbing.go is the same package but not in the policy's file list:
// every sin here must stay silent.
package detfix

import (
	"math/rand"
	"time"
)

// Serve is server plumbing; the per-file scoping leaves it alone.
func Serve(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	n += rand.Intn(3)
	n += int(time.Now().Unix())
	return n
}
