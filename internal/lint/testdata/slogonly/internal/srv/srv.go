// Package srv is server code: the slog-only contract applies.
package srv

import (
	"bytes"
	"fmt"
	"log"
	"log/slog"
	"os"
)

// Handle logs every way the analyzer must catch, then every way it
// must allow.
func Handle(n int) string {
	log.Printf("n=%d", n)               // want "bypasses structured logging"
	fmt.Println("handled", n)           // want "writes to stdout"
	fmt.Fprintf(os.Stderr, "n=%d\n", n) // want "to os.Stderr bypasses structured logging"
	println("dbg", n)                   // want "println builtin writes to stderr"
	slog.Info("handled", "n", n)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "n=%d", n)
	return buf.String()
}
