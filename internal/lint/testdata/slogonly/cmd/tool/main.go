// Command tool is a CLI: human-facing stdout is its job, so the
// exempt-dirs list keeps slogonly out of it.
package main

import (
	"fmt"
	"log"
)

func main() {
	fmt.Println("ok")
	log.Printf("done")
}
