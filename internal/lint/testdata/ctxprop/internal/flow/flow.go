// Package flow exercises both ctxprop rules and their escapes.
package flow

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// Good threads its ctx: clean.
func Good(ctx context.Context) error { return work(ctx) }

// Drops declares a ctx it never touches.
func Drops(ctx context.Context, n int) int { // want "never uses its ctx parameter"
	return n * 2
}

// Blank discards its ctx by name.
func Blank(_ context.Context) {} // want "discards its context parameter"

// Unnamed discards its ctx by omission.
func Unnamed(context.Context) {} // want "discards its context parameter"

// Reroots has a ctx in hand but mints a new root below it.
func Reroots(ctx context.Context) error {
	if err := work(ctx); err != nil {
		return err
	}
	return work(context.Background()) // want "detaches this work"
}

// Edge has no ctx: introducing a root here is the documented pattern
// for non-ctx compatibility shims.
func Edge() error { return work(context.Background()) }

// Detach documents its deliberate detachment: clean.
func Detach(ctx context.Context) error {
	if err := work(ctx); err != nil {
		return err
	}
	//gpuperf:ctx-ok fixture job outlives the request on purpose
	return work(context.Background())
}

// DetachBare carries the directive but no reason.
func DetachBare(ctx context.Context) error {
	if err := work(ctx); err != nil {
		return err
	}
	//gpuperf:ctx-ok
	return work(context.Background()) // want "needs a justification"
}

// Literal checks that function literals' own parameter lists are held
// to rule 1.
func Literal() func(context.Context) {
	return func(ctx context.Context) {} // want "function literal never uses its ctx parameter"
}
