// Package gpuperf is the fixture facade: the root package may import
// anything in the module, including the private ingest pipeline.
package gpuperf

import (
	"gpuperf/internal/engine"
	"gpuperf/internal/ingest"
)

// Analyze is the fixture's public entry point.
func Analyze() int { return engine.Run() + ingest.Admit() }
