// Package engine is an ordinary internal package: importable by the
// module, invisible to cmd/ and examples/.
package engine

// Run is a stand-in for simulator work.
func Run() int { return 1 }
