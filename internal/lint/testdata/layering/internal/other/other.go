// Package other demonstrates that not even sibling internal packages
// may reach into the private ingest pipeline.
package other

import (
	"gpuperf/internal/engine"
	"gpuperf/internal/ingest" // want "private to gpuperf"
)

// Use exercises both imports.
func Use() int { return engine.Run() + ingest.Admit() }
