// Package ingest is the fixture's root-private package.
package ingest

// Admit is a stand-in for submission admission.
func Admit() int { return 2 }
