// Command demo shows examples/ is held to the same facade rule.
package main

import (
	"gpuperf/internal/engine" // want "examples/ packages may import only gpuperf"
)

func main() {
	_ = engine.Run()
}
