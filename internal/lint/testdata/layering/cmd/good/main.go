// Command good consumes only the public facade — the clean fixture.
package main

import (
	"os"
	"strconv"

	"gpuperf"
)

func main() {
	os.Stdout.WriteString(strconv.Itoa(gpuperf.Analyze()))
}
