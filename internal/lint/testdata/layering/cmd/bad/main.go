// Command bad reaches around the facade into an internal package.
package main

import (
	"gpuperf"
	"gpuperf/internal/engine" // want "cmd/ packages may import only gpuperf"
)

func main() {
	_ = gpuperf.Analyze()
	_ = engine.Run()
}
