// Package hotdep proves the reachability walk crosses package
// boundaries inside the module.
package hotdep

// Burn allocates; callers on a noalloc path inherit the finding.
func Burn(n int) []int {
	return make([]int, n) // want "make allocates"
}
