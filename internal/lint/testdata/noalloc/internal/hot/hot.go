// Package hot exercises every construct the noalloc analyzer flags,
// plus each escape that must keep it quiet.
package hot

import (
	"fmt"

	"gpuperf/internal/hotdep"
)

type sink interface{ accept(n int) }

type counter struct{ n int }

// Step is the annotated hot root: everything statically reachable
// from here is scanned.
//
//gpuperf:noalloc
func Step(buf []int, s sink, f func() int, bad bool) (int, error) {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	buf = append(buf, 1)          // want "append may grow"
	_ = make([]int, 8)            // want "make allocates"
	_ = new(counter)              // want "new allocates"
	cl := func() int { return 0 } // want "closure allocates"
	_ = cl
	go helperClean()      // want "go statement allocates a goroutine"
	fmt.Println(len(buf)) // want "fmt.Println allocates"
	_ = []byte("step")    // want "conversion copies"
	var a any = counter{} // want "counter boxed into interface"
	a = 7                 // want "constant int boxed into interface"
	_ = a
	s.accept(1) // want "dynamic call through interface method accept"
	_ = f()     // want "dynamic call through func value"
	helper(buf)
	_ = lift(9)
	hotdep.Burn(4)
	if bad {
		return 0, fmt.Errorf("bad input: %d", len(buf)) // cold abort path: exempt
	}
	//gpuperf:alloc-ok scratch grows once then is reused across calls
	buf = append(buf, 2)
	//gpuperf:alloc-ok
	buf = append(buf, 3) // want "needs a justification"
	return len(buf), nil
}

// helper is unannotated but reachable from Step, so its body is held
// to the same contract; the diagnostic names the chain.
func helper(buf []int) {
	_ = append(buf, 9) // want "append may grow"
}

// helperClean allocates nothing: reachable and silent.
func helperClean() {}

// lift boxes its result into the interface return.
func lift(x int) any {
	return x // want "int boxed into interface"
}

// Cold is unreachable from any root: its allocations are the
// runtime's business, not the analyzer's.
func Cold() map[int]int {
	return map[int]int{1: 1}
}
