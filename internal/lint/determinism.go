package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DeterminismPolicy scopes the determinism analyzer to the code whose
// output feeds Stats, golden fingerprints, and result-cache keys —
// where "same request, same bytes" is a load-bearing system property
// (the result cache and the replay differential both assume it).
type DeterminismPolicy struct {
	// Packages lists in-scope import paths. A trailing "/..." takes
	// the whole subtree.
	Packages []string
	// Files lists additional module-relative file paths in scope —
	// the root package mixes deterministic surfaces (cache keys,
	// kernel builders) with server plumbing, so it is scoped per
	// file.
	Files []string
}

func (pol DeterminismPolicy) pkgInScope(importPath string) bool {
	for _, p := range pol.Packages {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == sub || strings.HasPrefix(importPath, sub+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}

// NewDeterminism builds the analyzer enforcing, inside the scoped
// code, the three classic nondeterminism leaks:
//
//   - the global math/rand stream (any call that draws from the
//     process-wide source; seeded rand.New(rand.NewSource(seed))
//     generators are the sanctioned pattern),
//   - wall-clock reads (time.Now/Since/Until — timing belongs to the
//     obs/telemetry seam, which is deliberately out of scope),
//   - map iteration whose order can reach output or hashing. A range
//     over a map is accepted only when the enclosing function sorts
//     after the loop (the collect-then-sort idiom) or the loop is
//     annotated //gpuperf:unordered <why> (commutative folds,
//     map-to-map copies).
func NewDeterminism(pol DeterminismPolicy) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "no global rand, wall clock, or unordered map iteration in deterministic code",
	}
	a.Run = func(pass *Pass) error {
		pkgScoped := pol.pkgInScope(pass.Pkg.Path)
		for _, f := range pass.Pkg.Files {
			if !pkgScoped && !fileInScope(pass, pol, f) {
				continue
			}
			checkDeterminism(pass, f)
		}
		return nil
	}
	return a
}

func fileInScope(pass *Pass, pol DeterminismPolicy, f *ast.File) bool {
	name := pass.Prog.Fset.Position(f.Pos()).Filename
	rel, err := filepath.Rel(pass.Prog.Root, name)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, want := range pol.Files {
		if rel == want {
			return true
		}
	}
	return false
}

func checkDeterminism(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	dirs := directivesFor(pass.Prog.Fset, f)
	// funcStack tracks enclosing function bodies so the map-range
	// rule can look for a sort call after the loop.
	var funcStack []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			funcStack = append(funcStack, n.Body)
			ast.Inspect(n.Body, walk)
			funcStack = funcStack[:len(funcStack)-1]
			return false
		case *ast.FuncLit:
			funcStack = append(funcStack, n.Body)
			ast.Inspect(n.Body, walk)
			funcStack = funcStack[:len(funcStack)-1]
			return false
		case *ast.CallExpr:
			fn, ok := calleeOf(info, n).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !isRandConstructor(fn.Name()) && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the global stream: use a seeded rand.New(rand.NewSource(seed)) so identical requests build identical bytes", fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					line := pass.Prog.Fset.Position(n.Pos()).Line
					if reason, ok := dirs.directive(line, "wallclock"); ok {
						if reason == "" {
							pass.Reportf(n.Pos(), "//gpuperf:wallclock needs a justification")
						}
						return true
					}
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock in deterministic code: route timing through the obs/telemetry seam, or annotate //gpuperf:wallclock <why> if this value never reaches a cached or fingerprinted byte", fn.Name())
				}
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Prog.Fset.Position(n.Pos()).Line
			if reason, ok := dirs.directive(line, "unordered"); ok {
				if reason == "" {
					pass.Reportf(n.Pos(), "//gpuperf:unordered needs a justification")
				}
				return true
			}
			if len(funcStack) > 0 && sortsAfter(info, funcStack[len(funcStack)-1], n) {
				return true
			}
			pass.Reportf(n.Pos(),
				"map iteration order is randomized: sort before emitting, or annotate //gpuperf:unordered <why> if the fold is order-independent")
		}
		return true
	}
	ast.Inspect(f, walk)
}

// isRandConstructor reports whether a math/rand package function only
// builds a generator rather than drawing from the global source.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// sortsAfter reports whether body contains a call into sort or slices
// lexically after the range statement — the collect-then-sort idiom
// that makes a map iteration's order immaterial.
func sortsAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if fn, ok := calleeOf(info, call).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}
