// Package linttest runs lint analyzers over golden testdata trees,
// mirroring golang.org/x/tools/go/analysis/analysistest: expected
// diagnostics are declared in the fixture source as trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments, and the runner fails the test for every unmatched
// expectation and every unexpected diagnostic — so each fixture is
// simultaneously a positive test (annotated lines must fire) and a
// negative one (every unannotated line must stay silent).
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gpuperf/internal/lint"
)

// expectation is one want-regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the module rooted at dir under the given module path,
// runs the analyzers over every package, and checks the diagnostics
// against the fixtures' want comments. Fixtures use module path
// "gpuperf" so the repo's policy tables apply verbatim.
func Run(t *testing.T, dir, module string, analyzers ...*lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadModuleAs(dir, module)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run(prog, analyzers, nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			ws, err := collectWants(prog.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches; false if none does.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want "re" ...` comment of a file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			patterns, err := splitQuoted(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want comment: %w", pos.Filename, pos.Line, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", pos.Filename, pos.Line, p, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of space-separated double-quoted Go
// strings ("a" "b c") into their unquoted values.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, val)
		s = s[end+1:]
	}
}
