package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
	"gpuperf/internal/lint/linttest"
)

// TestDeterminism scopes the analyzer the same way the repo policy
// does — whole packages plus named root-package files — and checks
// that the three rules fire in scope, stay silent out of scope, and
// honor the collect-then-sort idiom and both directive escapes.
func TestDeterminism(t *testing.T) {
	pol := lint.DeterminismPolicy{
		Packages: []string{"gpuperf/internal/sim"},
		Files:    []string{"det.go"},
	}
	linttest.Run(t, "testdata/determinism", "gpuperf", lint.NewDeterminism(pol))
}
