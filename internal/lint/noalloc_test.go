package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
	"gpuperf/internal/lint/linttest"
)

// TestNoalloc covers every allocating construct (one want per class),
// the transitive walk within and across packages, the cold-error-path
// exemption, and both the justified and bare //gpuperf:alloc-ok
// escapes.
func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata/noalloc", "gpuperf", lint.NewNoalloc())
}
