package lint

// This file is the repository's concrete policy: the declarative
// tables that configure the five analyzers for gpuperf's layout. The
// analyzers themselves are policy-free and reusable; everything
// repo-specific lives here (and is documented in DESIGN.md's "Static
// analysis" section).

// RepoImportPolicy is the layering table. It replaces the two grep
// checks that used to live in ci.yml:
//
//   - cmd/ and examples/ are consumers of the public facade only. The
//     root gpuperf package is the one supported entry point (PR 3);
//     reaching into internal/ from a binary would fork the API.
//   - internal/ingest is the root package's private submission
//     pipeline (PR 8). Its admission decisions (ceilings, the bounds
//     verifier, the store) must flow through the Fleet facade — not
//     even sibling internal packages may import it.
func RepoImportPolicy() ImportPolicy {
	return ImportPolicy{
		Facade: []FacadeRule{
			// cmd/gpuperflint is the one carve-out: the linter is a
			// development tool over internal/lint, not a facade
			// consumer. Nothing it imports leaks simulator internals.
			{Dir: "cmd", Allow: []string{"gpuperf"}, Except: []string{"cmd/gpuperflint"}},
			{Dir: "examples", Allow: []string{"gpuperf"}},
		},
		Private: []PrivateRule{
			{
				Path:    "gpuperf/internal/ingest",
				Only:    []string{"gpuperf"},
				Explain: "submission admission must flow through the Fleet facade",
			},
		},
	}
}

// RepoDeterminismPolicy scopes the determinism analyzer to the code
// whose bytes feed Stats, golden fingerprints, calibration files and
// result-cache keys. Out of scope by design: internal/obs and the
// root telemetry/server files (the sanctioned wall-clock seam),
// internal/ingest (TTL bookkeeping is wall-clock by contract),
// internal/prof (profiling is inherently about real time) and
// internal/resultstore (LRU recency is not part of any cached value).
func RepoDeterminismPolicy() DeterminismPolicy {
	return DeterminismPolicy{
		Packages: []string{
			"gpuperf/internal/advise",
			"gpuperf/internal/asm",
			"gpuperf/internal/bank",
			"gpuperf/internal/barra",
			"gpuperf/internal/coalesce",
			"gpuperf/internal/cubin",
			"gpuperf/internal/device",
			"gpuperf/internal/experiments",
			"gpuperf/internal/gpu",
			"gpuperf/internal/isa",
			"gpuperf/internal/kbuild",
			"gpuperf/internal/kernels",
			"gpuperf/internal/microbench",
			"gpuperf/internal/model",
			"gpuperf/internal/occupancy",
			"gpuperf/internal/sparse",
			"gpuperf/internal/texcache",
			"gpuperf/internal/timing",
			"gpuperf/internal/tridiag",
		},
		// The root package mixes deterministic surfaces with server
		// plumbing, so it is scoped per file: these four own the
		// cache keys, kernel builders, device catalog and wire-pinned
		// result shapes.
		Files: []string{
			"cache.go",
			"catalog.go",
			"registry.go",
			"result.go",
		},
	}
}

// RepoSlogPolicy exempts the CLIs — their stdout is the product —
// and holds everything else (the facade, the HTTP layer, all internal
// packages) to log/slog.
func RepoSlogPolicy() SlogPolicy {
	return SlogPolicy{ExemptDirs: []string{"cmd", "examples"}}
}

// DefaultAnalyzers returns the full suite configured with the repo
// policy — what cmd/gpuperflint and the self-check test run.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewLayering(RepoImportPolicy()),
		NewNoalloc(),
		NewDeterminism(RepoDeterminismPolicy()),
		NewSlogOnly(RepoSlogPolicy()),
		NewCtxProp(),
	}
}
