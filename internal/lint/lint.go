package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the suite can migrate to
// the real framework if the build environment ever gains the
// dependency.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's run over one package. Analyzers may
// reach sibling packages through Prog (the noalloc call-graph walk
// crosses package boundaries); diagnostics reported outside the
// current package are deduplicated by the driver.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every listed package (nil = all
// packages of the program) and returns the deduplicated diagnostics
// in file/line/column/analyzer order.
func Run(prog *Program, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	if pkgs == nil {
		pkgs = prog.Packages()
	}
	var diags []Diagnostic
	seen := map[string]bool{}
	report := func(d Diagnostic) {
		key := d.Analyzer + "\x00" + d.Pos.String()
		if seen[key] {
			return
		}
		seen[key] = true
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Directives — the //gpuperf:<name> comment contract.
//
// A directive suppresses or enables an analyzer rule for the source
// line it sits on (trailing comment) or the line immediately below
// (own-line comment), matching the placement conventions of
// //go:build and //nolint. Escape-hatch directives (alloc-ok,
// unordered, ctx-ok) must carry a justification after the directive
// word; the analyzers flag bare ones, so every suppression in the
// tree documents why the invariant legitimately bends there.

// directiveIndex maps source lines of one file to the //gpuperf:
// directives that govern them.
type directiveIndex map[int][]string

// directivesFor indexes one file's //gpuperf: comments by the line
// they govern.
func directivesFor(fset *token.FileSet, f *ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//gpuperf:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			// A trailing comment governs its own line; an own-line
			// comment governs the next. Both registrations are
			// harmless for the respective other case.
			idx[pos.Line] = append(idx[pos.Line], text)
			idx[pos.Line+1] = append(idx[pos.Line+1], text)
		}
	}
	return idx
}

// directive looks up a //gpuperf:<name> directive governing line.
// The second result is the justification text after the directive
// word; found distinguishes "absent" from "present without reason".
func (idx directiveIndex) directive(line int, name string) (reason string, found bool) {
	for _, text := range idx[line] {
		if text == name {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, name+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// hasDirective reports whether a comment group carries the given
// //gpuperf:<name> directive (used for function-level annotations
// like //gpuperf:noalloc in doc comments).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//gpuperf:")
		if !ok {
			continue
		}
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}
