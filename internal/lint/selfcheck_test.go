package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
)

// TestRepoIsClean type-checks the whole module and runs the full
// analyzer suite over it — the same run CI performs via
// cmd/gpuperflint. The repo's own invariants must hold with zero
// diagnostics; a finding here means either real drift or a policy
// table that needs updating alongside the code.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow; run without -short")
	}
	prog, err := lint.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.Run(prog, lint.DefaultAnalyzers(), nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo lint finding: %s", d)
	}
}
