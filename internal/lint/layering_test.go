package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
	"gpuperf/internal/lint/linttest"
)

// TestLayering runs the repo's real import-policy table over a
// fixture module that violates it from cmd/, examples/, and a sibling
// internal package — the facade and private rules each fire at the
// offending import declaration.
func TestLayering(t *testing.T) {
	linttest.Run(t, "testdata/layering", "gpuperf",
		lint.NewLayering(lint.RepoImportPolicy()))
}
