package lint_test

import (
	"testing"

	"gpuperf/internal/lint"
	"gpuperf/internal/lint/linttest"
)

// TestCtxProp checks both rules — declared ctx params must be used,
// ctx-having functions must not re-root via context.Background/TODO —
// plus the no-ctx edge exemption, function literals, and the ctx-ok
// escape.
func TestCtxProp(t *testing.T) {
	linttest.Run(t, "testdata/ctxprop", "gpuperf", lint.NewCtxProp())
}
