package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewNoalloc builds the hot-path allocation analyzer. Functions whose
// doc comment carries //gpuperf:noalloc are roots; every function
// statically reachable from a root inside this module is scanned for
// constructs that allocate (or that the analyzer cannot prove
// allocation-free):
//
//   - map, slice and chan construction: literals, make, new
//   - append (growth may reallocate)
//   - closures (func literals) and go statements
//   - any call into fmt (interface boxing plus formatting buffers)
//   - string ↔ []byte/[]rune conversions
//   - interface boxing: a non-pointer-shaped concrete value passed,
//     assigned or returned as an interface
//   - dynamic calls (interface methods, func values): unprovable, so
//     flagged
//
// Two escapes keep the rule honest rather than performative:
//
//   - Constructs inside a `return` that yields a non-nil error are
//     exempt — abort paths run at most once per run and are already
//     outside the AllocsPerRun pins' steady state.
//   - A line annotated //gpuperf:alloc-ok <why> is exempt; the
//     justification is mandatory. This marks deliberate amortized
//     growth (append into caller scratch) and cold fallbacks.
//
// The static pass catches the construct; the AllocsPerRun pins in
// internal/barra keep pinning the behavior. Calls into the standard
// library other than fmt are trusted — the contract governs this
// module's code, and the runtime pins catch a stdlib call that
// allocates on the hot path.
func NewNoalloc() *Analyzer {
	a := &Analyzer{
		Name: "noalloc",
		Doc:  "functions reachable from //gpuperf:noalloc roots must not contain allocating constructs",
	}
	a.Run = func(pass *Pass) error {
		c := &noallocChecker{pass: pass, visited: map[*types.Func]bool{}}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, "noalloc") {
					continue
				}
				root := funcDisplayName(fd)
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					c.visited[fn] = true
				}
				c.checkBody(pass.Pkg, fd, []string{root})
			}
		}
		return nil
	}
	return a
}

type noallocChecker struct {
	pass    *Pass
	visited map[*types.Func]bool
}

// checkBody scans one function's body for allocating constructs and
// recurses into statically resolvable module callees. chain names the
// path from the annotated root for the diagnostic text.
func (c *noallocChecker) checkBody(pkg *Package, fd *ast.FuncDecl, chain []string) {
	if fd.Body == nil || len(chain) > 32 {
		return
	}
	info := pkg.Info
	file := fileOf(pkg, fd.Pos())
	var dirs directiveIndex
	if file != nil {
		dirs = directivesFor(c.pass.Prog.Fset, file)
	}

	var coldEnds []token.Pos // ends of error-returning return statements
	var coldStarts []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && returnsNonNilError(info, ret) {
			coldStarts = append(coldStarts, ret.Pos())
			coldEnds = append(coldEnds, ret.End())
		}
		return true
	})
	cold := func(pos token.Pos) bool {
		for i := range coldStarts {
			if pos >= coldStarts[i] && pos < coldEnds[i] {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if cold(pos) {
			return
		}
		line := c.pass.Prog.Fset.Position(pos).Line
		if reason, ok := dirs.directive(line, "alloc-ok"); ok {
			if reason == "" {
				c.pass.Reportf(pos, "//gpuperf:alloc-ok needs a justification")
			}
			return
		}
		c.pass.Reportf(pos, "%s in noalloc path (%s)", fmt.Sprintf(format, args...), strings.Join(chain, " → "))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates")
			return false // its body only runs if the closure is called; the flag suffices
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.CallExpr:
			c.checkCall(pkg, n, info, report, chain)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					c.checkBox(info, info.TypeOf(n.Lhs[i]), rhs, report)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := info.TypeOf(n.Type)
				for _, v := range n.Values {
					c.checkBox(info, dst, v, report)
				}
			}
		case *ast.ReturnStmt:
			c.checkReturnBox(pkg, fd, n, report)
		}
		return true
	})
}

// checkCall classifies one call inside a noalloc body: allocation
// builtin, fmt, conversion, dynamic, or a module callee to recurse
// into.
func (c *noallocChecker) checkCall(pkg *Package, call *ast.CallExpr, info *types.Info, report func(token.Pos, string, ...any), chain []string) {
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(info, call, tv.Type, report)
		return
	}
	switch fn := calleeOf(info, call).(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "append":
			report(call.Pos(), "append may grow its backing array")
		case "make":
			if t := info.TypeOf(call); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Chan:
					report(call.Pos(), "make allocates")
				}
			}
		case "new":
			report(call.Pos(), "new allocates")
		case "panic":
			return // abort path: its argument never boxes in steady state
		}
		return
	case *types.Func:
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			report(call.Pos(), "dynamic call through interface method %s: cannot prove allocation-free", fn.Name())
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s allocates", fn.Name())
			return
		}
		if sig != nil {
			c.checkArgBoxing(info, call, sig, report)
		}
		if src := c.pass.Prog.FuncDecl(fn); src != nil && !c.visited[fn] {
			c.visited[fn] = true
			c.checkBody(src.Pkg, src.Decl, append(chain, fn.Name()))
		}
		return
	}
	// No static callee: a func-typed variable, field or parameter.
	if t := info.TypeOf(call.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			report(call.Pos(), "dynamic call through func value: cannot prove allocation-free")
		}
	}
}

// checkConversion flags string↔[]byte/[]rune conversions and
// conversions into interface types.
func (c *noallocChecker) checkConversion(info *types.Info, call *ast.CallExpr, dst types.Type, report func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		report(call.Pos(), "%s ↔ %s conversion copies", src, dst)
		return
	}
	c.checkBox(info, dst, call.Args[0], report)
}

// checkArgBoxing flags concrete non-pointer-shaped values passed to
// interface parameters, including the variadic tail.
func (c *noallocChecker) checkArgBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string, ...any)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(info, pt, arg, report)
	}
}

// checkReturnBox flags boxing at return statements (concrete value
// returned as interface result).
func (c *noallocChecker) checkReturnBox(pkg *Package, fd *ast.FuncDecl, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	info := pkg.Info
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		c.checkBox(info, results.At(i).Type(), r, report)
	}
}

// checkBox reports interface boxing: storing a concrete value whose
// representation is not a single pointer word into an interface-typed
// destination.
func (c *noallocChecker) checkBox(info *types.Info, dst types.Type, src ast.Expr, report func(token.Pos, string, ...any)) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if tv.IsNil() || types.IsInterface(st) || pointerShaped(st) {
		return
	}
	if tv.Value != nil {
		// Untyped constants box, but tiny ints and zero-length
		// strings are interned by the runtime; still flag — constant
		// folding into a preallocated value is the fix.
		report(src.Pos(), "constant %s boxed into interface %s", st, dst)
		return
	}
	report(src.Pos(), "%s boxed into interface %s", st, dst)
}

// pointerShaped reports whether values of t are a single pointer word
// at runtime — stored directly in an interface with no allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// returnsNonNilError reports whether a return statement's final
// expression is a freshly constructed (necessarily non-nil) error —
// the abort-path signature the cold-path exemption keys on.
func returnsNonNilError(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	t := info.TypeOf(last)
	if t == nil || !isErrorType(t) {
		return false
	}
	_, isCall := ast.Unparen(last).(*ast.CallExpr)
	return isCall
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// fileOf returns the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// funcDisplayName renders "Recv.Name" for methods, "Name" otherwise.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
