package lint

import (
	"go/ast"
	"go/types"
)

// NewCtxProp builds the context-propagation analyzer. The facade's
// contract (PR 3) is that cancellation flows from the HTTP edge down
// to the engine's per-block checks; that only holds if every function
// that accepts a ctx actually threads it. Two rules:
//
//  1. A declared context.Context parameter must be used — a blank
//     (`_ context.Context`) or never-referenced ctx silently severs
//     the cancellation chain for every caller above.
//  2. A function that already has a ctx in scope must not mint a new
//     root via context.Background() or context.TODO() — that detaches
//     all work below from the caller's deadline. Deliberate
//     detachment (a background goroutine outliving the request) is
//     annotated //gpuperf:ctx-ok <why>.
//
// Functions without a ctx parameter are untouched: non-ctx
// compatibility shims like barra.Run calling RunContext(
// context.Background(), ...) are exactly the documented pattern for
// introducing a root at the edge.
func NewCtxProp() *Analyzer {
	a := &Analyzer{
		Name: "ctxprop",
		Doc:  "ctx parameters must be threaded, not dropped or replaced by new roots",
	}
	a.Run = func(pass *Pass) error {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			dirs := directivesFor(pass.Prog.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkFuncCtx(pass, info, dirs, fd.Type, fd.Body, fd.Name.Name)
				// Nested function literals are checked against their
				// own parameter lists; a literal without a ctx param
				// still inherits the enclosing scope's obligation not
				// to re-root, which the Background scan below covers
				// because it walks the whole enclosing body.
				ast.Inspect(fd, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						checkFuncCtx(pass, info, dirs, fl.Type, fl.Body, "function literal")
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

// checkFuncCtx applies both ctxprop rules to one function given its
// signature and body.
func checkFuncCtx(pass *Pass, info *types.Info, dirs directiveIndex, ft *ast.FuncType, body *ast.BlockStmt, name string) {
	if ft.Params == nil || body == nil {
		return
	}
	var ctxParams []*ast.Ident
	blank := false
	for _, field := range ft.Params.List {
		if !isContextType(info, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			blank = true // unnamed param: unusable, same as blank
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				blank = true
			} else {
				ctxParams = append(ctxParams, id)
			}
		}
	}
	if blank {
		pass.Reportf(ft.Params.Pos(),
			"%s discards its context parameter: name it and thread it to callees", name)
	}
	if len(ctxParams) == 0 && !blank {
		return
	}

	used := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				used[obj] = true
			}
		case *ast.CallExpr:
			if fn, ok := calleeOf(info, n).(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
				(fn.Name() == "Background" || fn.Name() == "TODO") {
				line := pass.Prog.Fset.Position(n.Pos()).Line
				if reason, ok := dirs.directive(line, "ctx-ok"); ok {
					if reason == "" {
						pass.Reportf(n.Pos(), "//gpuperf:ctx-ok needs a justification")
					}
				} else {
					pass.Reportf(n.Pos(),
						"%s already has a ctx: context.%s detaches this work from the caller's cancellation (annotate //gpuperf:ctx-ok <why> if deliberate)",
						name, fn.Name())
				}
			}
		case *ast.FuncLit:
			// Literals are visited separately for their own params,
			// but their bodies stay part of this scan: a Background
			// inside still re-roots work the enclosing ctx governs.
		}
		return true
	})
	for _, id := range ctxParams {
		if obj := info.Defs[id]; obj != nil && !used[obj] {
			pass.Reportf(id.Pos(),
				"%s never uses its ctx parameter %s: thread it to callees or drop it from the signature", name, id.Name)
		}
	}
}

// isContextType reports whether a parameter type expression denotes
// context.Context.
func isContextType(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
