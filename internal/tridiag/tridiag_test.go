package tridiag

import (
	"math"
	"math/rand"
	"testing"
)

func TestThomasSolvesKnownSystem(t *testing.T) {
	// x = [1, 2, 3] for a hand-built system.
	s := System{
		A: []float32{0, -1, -1},
		B: []float32{4, 4, 4},
		C: []float32{-1, -1, 0},
		D: []float32{4*1 - 2, -1 + 8 - 3, -2 + 12},
	}
	x, err := s.SolveThomas()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{1, 2, 3} {
		if math.Abs(float64(x[i]-want)) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestCRMatchesThomas(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 64, 512} {
		s := NewRandom(n, rng)
		xt, err := s.SolveThomas()
		if err != nil {
			t.Fatal(err)
		}
		xc, err := s.SolveCR()
		if err != nil {
			t.Fatal(err)
		}
		for i := range xt {
			if math.Abs(float64(xt[i]-xc[i])) > 2e-3 {
				t.Fatalf("n=%d: x[%d]: thomas %v vs CR %v", n, i, xt[i], xc[i])
			}
		}
		if r := s.Residual(xc); r > 1e-3 {
			t.Errorf("n=%d: CR residual %v", n, r)
		}
	}
}

func TestCRRejectsNonPowerOfTwo(t *testing.T) {
	s := NewRandom(12, rand.New(rand.NewSource(1)))
	if _, err := s.SolveCR(); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestValidate(t *testing.T) {
	s := NewRandom(8, rand.New(rand.NewSource(2)))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s.Clone()
	bad.A = bad.A[:4]
	if err := bad.Validate(); err == nil {
		t.Error("ragged system accepted")
	}
	bad2 := s.Clone()
	bad2.A[0] = 1
	if err := bad2.Validate(); err == nil {
		t.Error("nonzero boundary accepted")
	}
	var empty System
	if err := empty.Validate(); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := empty.SolveThomas(); err == nil {
		t.Error("Thomas on empty system accepted")
	}
}

func TestResidualDetectsWrongSolution(t *testing.T) {
	s := NewRandom(16, rand.New(rand.NewSource(3)))
	x, err := s.SolveThomas()
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Residual(x); r > 1e-5 {
		t.Errorf("residual of exact solution %v", r)
	}
	x[7] += 10
	if r := s.Residual(x); r < 0.1 {
		t.Errorf("perturbed residual only %v", r)
	}
}

func TestManyRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		s := NewRandom(128, rng)
		x, err := s.SolveCR()
		if err != nil {
			t.Fatal(err)
		}
		if r := s.Residual(x); r > 1e-3 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
	}
}
