// Package tridiag provides tridiagonal linear systems: generators,
// a sequential Thomas-algorithm reference solver, and a CPU cyclic
// reduction whose index pattern mirrors the GPU kernels of paper
// §5.2 (so kernel and reference can be cross-checked step by step).
package tridiag

import (
	"fmt"
	"math"
	"math/rand"
)

// System is one tridiagonal system: A (sub-diagonal), B (diagonal),
// C (super-diagonal) and D (right-hand side). A[0] and C[n-1] are
// outside the matrix and must be zero.
type System struct {
	A, B, C, D []float32
}

// Size returns the number of equations.
func (s System) Size() int { return len(s.B) }

// Validate checks shape and boundary invariants.
func (s System) Validate() error {
	n := len(s.B)
	if n == 0 {
		return fmt.Errorf("tridiag: empty system")
	}
	if len(s.A) != n || len(s.C) != n || len(s.D) != n {
		return fmt.Errorf("tridiag: ragged system %d/%d/%d/%d", len(s.A), n, len(s.C), len(s.D))
	}
	if s.A[0] != 0 || s.C[n-1] != 0 {
		return fmt.Errorf("tridiag: boundary coefficients must be zero")
	}
	return nil
}

// NewRandom builds a diagonally dominant random system of size n
// (dominance keeps both Thomas and cyclic reduction stable in
// float32).
func NewRandom(n int, rng *rand.Rand) System {
	s := System{
		A: make([]float32, n),
		B: make([]float32, n),
		C: make([]float32, n),
		D: make([]float32, n),
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			s.A[i] = -(0.2 + 0.8*rng.Float32())
		}
		if i < n-1 {
			s.C[i] = -(0.2 + 0.8*rng.Float32())
		}
		s.B[i] = 2.5 + float32(math.Abs(float64(s.A[i]))) + float32(math.Abs(float64(s.C[i]))) + rng.Float32()
		s.D[i] = 2*rng.Float32() - 1
	}
	return s
}

// Clone deep-copies the system.
func (s System) Clone() System {
	return System{
		A: append([]float32(nil), s.A...),
		B: append([]float32(nil), s.B...),
		C: append([]float32(nil), s.C...),
		D: append([]float32(nil), s.D...),
	}
}

// SolveThomas solves the system with the sequential Thomas
// algorithm in float64 and returns x.
func (s System) SolveThomas() ([]float32, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Size()
	cp := make([]float64, n)
	dp := make([]float64, n)
	b0 := float64(s.B[0])
	if b0 == 0 {
		return nil, fmt.Errorf("tridiag: zero pivot at 0")
	}
	cp[0] = float64(s.C[0]) / b0
	dp[0] = float64(s.D[0]) / b0
	for i := 1; i < n; i++ {
		den := float64(s.B[i]) - float64(s.A[i])*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("tridiag: zero pivot at %d", i)
		}
		cp[i] = float64(s.C[i]) / den
		dp[i] = (float64(s.D[i]) - float64(s.A[i])*dp[i-1]) / den
	}
	x := make([]float32, n)
	acc := dp[n-1]
	x[n-1] = float32(acc)
	for i := n - 2; i >= 0; i-- {
		acc = dp[i] - cp[i]*float64(x[i+1])
		x[i] = float32(acc)
	}
	return x, nil
}

// SolveCR solves the system with cyclic reduction in float32, using
// exactly the index pattern of the GPU kernels: forward reduction
// eliminates odd-position unknowns with doubling stride (paper
// Fig. 5), then backward substitution recovers them with halving
// stride. The system size must be a power of two.
func (s System) SolveCR() ([]float32, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Size()
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("tridiag: cyclic reduction needs power-of-two size, got %d", n)
	}
	w := s.Clone()
	a, b, c, d := w.A, w.B, w.C, w.D

	// Forward reduction: at stride step, equations at
	// i ≡ 2·step−1 (mod 2·step) absorb their neighbours at ±step.
	for step := 1; step < n; step *= 2 {
		for i := 2*step - 1; i < n; i += 2 * step {
			im := i - step
			ip := i + step
			k1 := a[i] / b[im]
			var k2 float32
			if ip < n {
				k2 = c[i] / b[ip]
			}
			newB := b[i] - c[im]*k1
			newD := d[i] - d[im]*k1
			newA := -a[im] * k1
			newC := float32(0)
			if ip < n {
				newB -= a[ip] * k2
				newD -= d[ip] * k2
				newC = -c[ip] * k2
			}
			a[i], b[i], c[i], d[i] = newA, newB, newC, newD
		}
	}

	x := make([]float32, n)
	x[n-1] = d[n-1] / b[n-1]
	// Backward substitution: unknowns at i ≡ step−1 (mod 2·step)
	// use the already-solved x at i ± step.
	for step := n / 2; step >= 1; step /= 2 {
		for i := step - 1; i < n; i += 2 * step {
			if i == n-1 {
				continue
			}
			num := d[i] - c[i]*x[i+step]
			if i-step >= 0 {
				num -= a[i] * x[i-step]
			}
			x[i] = num / b[i]
		}
	}
	return x, nil
}

// Residual returns the max-norm of A·x − d relative to the max-norm
// of d (a scale-free accuracy measure).
func (s System) Residual(x []float32) float64 {
	n := s.Size()
	var maxR, maxD float64
	for i := 0; i < n; i++ {
		r := float64(s.B[i]) * float64(x[i])
		if i > 0 {
			r += float64(s.A[i]) * float64(x[i-1])
		}
		if i < n-1 {
			r += float64(s.C[i]) * float64(x[i+1])
		}
		r -= float64(s.D[i])
		if math.Abs(r) > maxR {
			maxR = math.Abs(r)
		}
		if math.Abs(float64(s.D[i])) > maxD {
			maxD = math.Abs(float64(s.D[i]))
		}
	}
	if maxD == 0 {
		return maxR
	}
	return maxR / maxD
}
