// Package asm provides a text assembler and disassembler for the
// native ISA — the analogue of the Decuda/cudasm toolchain the paper
// relies on to read and rewrite GPU binaries behind the compiler's
// back.
//
// The text syntax, one instruction per line:
//
//	.kernel name        directives open a kernel and declare
//	.regs 30            per-thread register count and
//	.smem 1088          static shared memory bytes
//	@p0 fmad r2, r3, r4, r2
//	@!p1 bra @12        guarded branch to instruction index 12
//	isetp.lt p0, r1, 0x20
//	sld r6, r5          shared load: dst, address register
//	gst r5, r7          global store: address register, value
//	bar.sync
//	exit
//
// Comments run from ';' or '#' to end of line. Immediates are
// decimal, 0x-hex, or f:<float> for a float32 bit pattern.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gpuperf/internal/isa"
)

// Assemble parses assembler text containing exactly one kernel and
// returns the program.
func Assemble(src string) (*isa.Program, error) {
	progs, err := AssembleAll(src)
	if err != nil {
		return nil, err
	}
	if len(progs) != 1 {
		return nil, fmt.Errorf("asm: expected 1 kernel, found %d", len(progs))
	}
	return progs[0], nil
}

// AssembleAll parses assembler text containing any number of
// kernels.
func AssembleAll(src string) ([]*isa.Program, error) {
	var (
		progs []*isa.Program
		cur   *isa.Program
	)
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := directive(line, &cur, &progs); err != nil {
				return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("asm: line %d: instruction before .kernel", lineno+1)
		}
		in, err := parseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
		cur.Code = append(cur.Code, in)
	}
	if cur != nil {
		progs = append(progs, cur)
	}
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return progs, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func directive(line string, cur **isa.Program, progs *[]*isa.Program) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".kernel":
		if len(fields) != 2 {
			return fmt.Errorf(".kernel wants a name")
		}
		if *cur != nil {
			*progs = append(*progs, *cur)
		}
		*cur = &isa.Program{Name: fields[1]}
		return nil
	case ".regs", ".smem":
		if *cur == nil {
			return fmt.Errorf("%s before .kernel", fields[0])
		}
		if len(fields) != 2 {
			return fmt.Errorf("%s wants one integer", fields[0])
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("%s: bad count %q", fields[0], fields[1])
		}
		if fields[0] == ".regs" {
			(*cur).RegsPerThread = n
		} else {
			(*cur).SharedMemBytes = n
		}
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

var opByName = func() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode, isa.NumOpcodes)
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

var cmpByName = func() map[string]isa.CmpOp {
	m := make(map[string]isa.CmpOp, isa.NumCmps)
	for c := isa.CmpOp(0); int(c) < isa.NumCmps; c++ {
		m[c.String()] = c
	}
	return m
}()

func parseInstruction(line string) (isa.Instruction, error) {
	var in isa.Instruction
	in.Guard = isa.PT

	// Guard prefix: @p0 or @!p2.
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return in, fmt.Errorf("guard without instruction: %q", line)
		}
		g := line[1:sp]
		if strings.HasPrefix(g, "!") {
			in.GuardNeg = true
			g = g[1:]
		}
		p, err := parsePred(g)
		if err != nil {
			return in, err
		}
		in.Guard = p
		line = strings.TrimSpace(line[sp+1:])
	}

	// Mnemonic, optionally with .cmp suffix.
	sp := strings.IndexByte(line, ' ')
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	if dot := strings.LastIndexByte(mnem, '.'); dot > 0 && mnem != "bar.sync" {
		if c, ok := cmpByName[mnem[dot+1:]]; ok {
			in.Cmp = c
			mnem = mnem[:dot]
		}
	}
	op, ok := opByName[mnem]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in.Op = op

	args := splitArgs(rest)
	return buildOperands(in, args)
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parsePred(s string) (isa.Pred, error) {
	if s == "pt" {
		return isa.PT, nil
	}
	if len(s) >= 2 && s[0] == 'p' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumPreds {
			return isa.Pred(n), nil
		}
	}
	return 0, fmt.Errorf("bad predicate %q", s)
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

var sregByName = func() map[string]isa.SReg {
	m := make(map[string]isa.SReg, isa.NumSRegs)
	for s := isa.SReg(0); int(s) < isa.NumSRegs; s++ {
		m[s.String()] = s
	}
	return m
}()

// parseSource parses a source operand; at most one immediate per
// instruction.
func parseSource(s string, in *isa.Instruction, haveImm *bool) (isa.Operand, error) {
	switch {
	case strings.HasPrefix(s, "s[") && strings.HasSuffix(s, "]"):
		v, err := parseImm(s[2 : len(s)-1])
		if err != nil {
			return isa.Operand{}, fmt.Errorf("bad shared operand %q", s)
		}
		if *haveImm && in.Imm != v {
			return isa.Operand{}, fmt.Errorf("shared operand conflicts with immediate")
		}
		in.Imm = v
		*haveImm = true
		return isa.Smem(), nil
	case strings.HasPrefix(s, "%"):
		sr, ok := sregByName[s]
		if !ok {
			return isa.Operand{}, fmt.Errorf("bad special register %q", s)
		}
		return isa.SR(sr), nil
	case strings.HasPrefix(s, "r") && !strings.HasPrefix(s, "rz"):
		r, err := parseReg(s)
		if err != nil {
			return isa.Operand{}, err
		}
		return isa.R(r), nil
	default:
		v, err := parseImm(s)
		if err != nil {
			return isa.Operand{}, err
		}
		if *haveImm && in.Imm != v {
			return isa.Operand{}, fmt.Errorf("multiple distinct immediates in one instruction")
		}
		in.Imm = v
		*haveImm = true
		return isa.Imm(), nil
	}
}

func parseImm(s string) (uint32, error) {
	if strings.HasPrefix(s, "f:") {
		f, err := strconv.ParseFloat(s[2:], 32)
		if err != nil {
			return 0, fmt.Errorf("bad float immediate %q", s)
		}
		return math.Float32bits(float32(f)), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil || v < math.MinInt32 || v > math.MaxUint32 {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return uint32(v), nil
}

func buildOperands(in isa.Instruction, args []string) (isa.Instruction, error) {
	haveImm := false
	srcs := make([]isa.Operand, 0, 3)

	switch {
	case in.Op == isa.OpBRA:
		if len(args) != 1 || !strings.HasPrefix(args[0], "@") {
			return in, fmt.Errorf("bra wants one @target")
		}
		t, err := strconv.Atoi(args[0][1:])
		if err != nil || t < 0 {
			return in, fmt.Errorf("bad branch target %q", args[0])
		}
		in.Target = int32(t)
		return in, nil

	case isa.WritesPredicate(in.Op):
		if len(args) != 3 {
			return in, fmt.Errorf("%s wants pdst, a, b", in.Op)
		}
		p, err := parsePred(args[0])
		if err != nil || p == isa.PT {
			return in, fmt.Errorf("bad predicate destination %q", args[0])
		}
		in.PDst = p
		args = args[1:]

	case isa.HasDst(in.Op):
		if len(args) == 0 {
			return in, fmt.Errorf("%s wants a destination", in.Op)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return in, err
		}
		in.Dst = r
		args = args[1:]
	}

	for _, a := range args {
		// "+imm" is a memory-address offset, not an operand slot.
		if strings.HasPrefix(a, "+") && isa.IsMemory(in.Op) {
			v, err := parseImm(a[1:])
			if err != nil {
				return in, err
			}
			in.Imm = v
			continue
		}
		o, err := parseSource(a, &in, &haveImm)
		if err != nil {
			return in, err
		}
		srcs = append(srcs, o)
	}
	if len(srcs) > 3 {
		return in, fmt.Errorf("%s: too many operands", in.Op)
	}
	for i, o := range srcs {
		switch i {
		case 0:
			in.SrcA = o
		case 1:
			in.SrcB = o
		case 2:
			in.SrcC = o
		}
	}
	return in, in.Validate()
}

// Disassemble renders a program in the assembler's text syntax such
// that Assemble(Disassemble(p)) reproduces p.
func Disassemble(p *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.regs %d\n.smem %d\n",
		p.Name, p.RegsPerThread, p.SharedMemBytes)
	for i, in := range p.Code {
		fmt.Fprintf(&b, "%-40s ; [%d] %s\n", in.String(), i, isa.ClassOf(in.Op))
	}
	return b.String()
}
