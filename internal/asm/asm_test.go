package asm

import (
	"math/rand"
	"strings"
	"testing"

	"gpuperf/internal/isa"
)

const sample = `
; a toy kernel: out[tid] = a[tid] * b[tid] + c
.kernel axpy
.regs 8
.smem 64
s2r r0, %tid            ; thread index
s2r r1, %ctaid
imad r0, r1, %ntid, r0  # flat thread id
shl r2, r0, 2
gld r3, r2
fmad r4, r3, f:2.0, r3
isetp.lt p0, r0, 0x100
@p0 gst r2, r4
bar.sync
exit
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "axpy" || p.RegsPerThread != 8 || p.SharedMemBytes != 64 {
		t.Errorf("header wrong: %q %d %d", p.Name, p.RegsPerThread, p.SharedMemBytes)
	}
	if len(p.Code) != 10 {
		t.Fatalf("got %d instructions, want 10", len(p.Code))
	}
	if p.Code[0].Op != isa.OpS2R || p.Code[0].SrcA != isa.SR(isa.SRTid) {
		t.Errorf("instruction 0 = %v", p.Code[0])
	}
	fmad := p.Code[5]
	if fmad.Op != isa.OpFMAD || fmad.SrcB.Kind != isa.KindImm {
		t.Errorf("fmad = %v", fmad)
	}
	setp := p.Code[6]
	if setp.Op != isa.OpISETP || setp.Cmp != isa.CmpLT || setp.PDst != isa.P0 || setp.Imm != 0x100 {
		t.Errorf("isetp = %v", setp)
	}
	gst := p.Code[7]
	if gst.Guard != isa.P0 || gst.GuardNeg {
		t.Errorf("guard = %v", gst)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"mov r0, r1",                              // instruction before .kernel
		".kernel k\nfrobnicate r1\nexit",          // unknown mnemonic
		".kernel k\nmov r200, r1\nexit",           // bad register
		".kernel k\nbra r1\nexit",                 // bra wants @target
		".kernel k\nisetp.lt pt, r0, r1\nexit",    // pt as destination
		".kernel k\nmov r0, 1, 2\nexit",           // two distinct immediates
		".kernel k\n.regs -1\nexit",               // negative regs
		".kernel k\n@p9 mov r0, r1\nexit",         // bad guard
		".kernel k\nmov r0, %bogus\nexit",         // bad sreg
		".regs 4",                                 // directive before kernel
		".kernel k\n.frob 3\nexit",                // unknown directive
		".kernel k\nmov r0, r1, r2, r3, r4\nexit", // too many operands
	}
	for i, src := range cases {
		if _, err := AssembleAll(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestAssembleAllMultipleKernels(t *testing.T) {
	src := ".kernel a\n.regs 1\nmov r0, 1\nexit\n.kernel b\n.regs 1\nexit\n"
	progs, err := AssembleAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "a" || progs[1].Name != "b" {
		t.Fatalf("got %d kernels", len(progs))
	}
	if _, err := Assemble(src); err == nil {
		t.Error("Assemble accepted two kernels")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	q, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if q.Name != p.Name || q.RegsPerThread != p.RegsPerThread || q.SharedMemBytes != p.SharedMemBytes {
		t.Error("header not preserved")
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length %d vs %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Errorf("instruction %d: %v vs %v", i, p.Code[i], q.Code[i])
		}
	}
}

// TestRandomProgramRoundTrip drives the full disassemble→assemble
// loop over randomly generated valid programs — the property the
// paper's binary-rewriting workflow depends on.
func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomProgram(rng)
		text := Disassemble(p)
		q, err := Assemble(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		for i := range p.Code {
			if p.Code[i] != q.Code[i] {
				t.Fatalf("trial %d instr %d: %v vs %v", trial, i, p.Code[i], q.Code[i])
			}
		}
	}
}

func randomProgram(rng *rand.Rand) *isa.Program {
	n := 4 + rng.Intn(40)
	code := make([]isa.Instruction, 0, n+1)
	for len(code) < n {
		in := isa.Instruction{Op: isa.Opcode(rng.Intn(isa.NumOpcodes)), Guard: isa.PT}
		if in.Op == isa.OpEXIT { // keep the single exit at the end
			continue
		}
		if rng.Intn(3) == 0 {
			in.Guard = isa.Pred(rng.Intn(isa.NumPreds))
			in.GuardNeg = rng.Intn(2) == 0
		}
		if isa.WritesPredicate(in.Op) {
			in.PDst = isa.Pred(rng.Intn(isa.NumPreds))
			in.Cmp = isa.CmpOp(rng.Intn(isa.NumCmps))
			in.SrcA = isa.R(isa.Reg(rng.Intn(32)))
			in.SrcB = isa.R(isa.Reg(rng.Intn(32)))
		} else if in.Op == isa.OpBRA {
			in.Target = int32(rng.Intn(n))
		} else if isa.IsMemory(in.Op) {
			in.SrcA = isa.R(isa.Reg(rng.Intn(32)))
			if in.Op == isa.OpGST || in.Op == isa.OpSST {
				in.SrcB = isa.R(isa.Reg(rng.Intn(32)))
			} else {
				in.Dst = isa.Reg(rng.Intn(32))
			}
			if rng.Intn(2) == 0 {
				in.Imm = rng.Uint32() &^ 3 // address offset
			}
		} else if in.Op != isa.OpBAR && in.Op != isa.OpNOP {
			if isa.HasDst(in.Op) {
				in.Dst = isa.Reg(rng.Intn(32))
			}
			nsrc := 1 + rng.Intn(3)
			srcs := []*isa.Operand{&in.SrcA, &in.SrcB, &in.SrcC}
			for i := 0; i < nsrc; i++ {
				switch {
				case rng.Intn(5) == 0 && i == 0:
					*srcs[i] = isa.Smem()
					in.Imm = rng.Uint32()
				case rng.Intn(4) == 0 && in.SrcA.Kind != isa.KindSmem:
					*srcs[i] = isa.Imm()
					in.Imm = rng.Uint32()
				default:
					*srcs[i] = isa.R(isa.Reg(rng.Intn(32)))
				}
			}
		}
		code = append(code, in)
	}
	code = append(code, isa.Instruction{Op: isa.OpEXIT, Guard: isa.PT})
	return &isa.Program{Name: "rand", Code: code, RegsPerThread: 34}
}

func TestCommentAndBlankHandling(t *testing.T) {
	src := "\n\n; pure comment\n.kernel k ; trailing\n.regs 2\nmov r1, r0 # comment\n\nexit\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Errorf("got %d instructions", len(p.Code))
	}
}

func TestFloatImmediate(t *testing.T) {
	p, err := Assemble(".kernel k\n.regs 1\nmov r0, f:1.5\nexit")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 0x3fc00000 {
		t.Errorf("f:1.5 = %#x", p.Code[0].Imm)
	}
	text := Disassemble(p)
	if !strings.Contains(text, "0x3fc00000") {
		t.Errorf("disassembly lost float bits:\n%s", text)
	}
}

// TestSmemOperandAndOffsetSyntax covers the GT200-specific syntax:
// shared-memory ALU operands (s[imm]) and memory address offsets
// (+imm).
func TestSmemOperandAndOffsetSyntax(t *testing.T) {
	src := `.kernel k
.regs 4
fmad r1, r2, s[0x40], r1
sld r3, r2, +0x10
gst r2, r3, +64
exit`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	fmad := p.Code[0]
	if fmad.SrcB.Kind != isa.KindSmem || fmad.Imm != 0x40 {
		t.Errorf("fmad smem operand wrong: %v", fmad)
	}
	if p.Code[1].Imm != 0x10 || p.Code[2].Imm != 64 {
		t.Errorf("offsets wrong: %v / %v", p.Code[1], p.Code[2])
	}
	// Round trip preserves both forms.
	q, err := Assemble(Disassemble(p))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Errorf("instr %d: %v vs %v", i, p.Code[i], q.Code[i])
		}
	}
	// A conflicting smem operand + distinct immediate is rejected.
	if _, err := Assemble(".kernel k\n.regs 4\nfmad r1, s[8], 9, r1\nexit"); err == nil {
		t.Error("conflicting imm+smem accepted")
	}
}
