package isa

import (
	"fmt"
	"strings"
)

// Reg is a general-purpose 32-bit register index (R0..R127).
type Reg uint8

// NumRegs is the size of the architectural register name space per
// thread.
const NumRegs = 128

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Pred is a predicate register index. PT is the constant-true
// predicate used by unconditional instructions.
type Pred uint8

// Predicate registers P0..P3 plus the always-true PT.
const (
	P0 Pred = iota
	P1
	P2
	P3
	PT
	// NumPreds is the number of writable predicate registers.
	NumPreds = 4
)

func (p Pred) String() string {
	if p == PT {
		return "pt"
	}
	return fmt.Sprintf("p%d", uint8(p))
}

// SReg identifies a read-only special register available through S2R.
type SReg uint8

// Special registers.
const (
	SRTid   SReg = iota // thread index within the block (x)
	SRCtaid             // block index within the grid (x)
	SRNtid              // threads per block (x)
	SRNctaid
	SRLane // lane within the warp
	SRWarp // warp index within the block
	numSRegs
)

// NumSRegs is the count of special registers.
const NumSRegs = int(numSRegs)

var sregNames = [...]string{
	SRTid: "tid", SRCtaid: "ctaid", SRNtid: "ntid",
	SRNctaid: "nctaid", SRLane: "laneid", SRWarp: "warpid",
}

func (s SReg) String() string {
	if int(s) < len(sregNames) {
		return "%" + sregNames[s]
	}
	return fmt.Sprintf("%%sreg(%d)", uint8(s))
}

// OperandKind distinguishes the source-operand forms.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg              // general-purpose register
	KindImm              // 32-bit immediate (shared Imm field)
	KindSReg             // special register (only via S2R in hardware,
	// but the builder accepts it anywhere and lowers it)
	KindSmem // shared-memory word at byte address Imm — GT200's
	// s[offset] ALU operand, central to dense matrix multiply's
	// high MAD density (one mad per shared word, no separate load)
	numOperandKinds
)

// Operand is one source operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg  // valid when Kind == KindReg
	SReg SReg // valid when Kind == KindSReg
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// Imm makes an immediate operand; the value itself lives in
// Instruction.Imm (one immediate per instruction, as on GT200).
func Imm() Operand { return Operand{Kind: KindImm} }

// SR makes a special-register operand.
func SR(s SReg) Operand { return Operand{Kind: KindSReg, SReg: s} }

// Smem makes a shared-memory operand; the byte address lives in
// Instruction.Imm (sharing the immediate slot, as on GT200 where an
// instruction carries one constant field).
func Smem() Operand { return Operand{Kind: KindSmem} }

func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "-"
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return "#imm"
	case KindSReg:
		return o.SReg.String()
	case KindSmem:
		return "s[#imm]"
	}
	return "?"
}

// CmpOp is the comparison mode of a predicate-setting instruction.
type CmpOp uint8

// Comparison modes for ISETP/FSETP.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
	numCmps
)

// NumCmps is the number of comparison modes.
const NumCmps = int(numCmps)

var cmpNames = [...]string{
	CmpLT: "lt", CmpLE: "le", CmpGT: "gt", CmpGE: "ge", CmpEQ: "eq", CmpNE: "ne",
}

func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Instruction is one decoded machine instruction.
//
// All instructions are guarded: an instruction executes in a lane
// only when the guard predicate (negated if PredNeg) holds there.
// The canonical unguarded form uses Guard == PT.
type Instruction struct {
	Op       Opcode
	Guard    Pred // guard predicate; PT for unconditional
	GuardNeg bool

	Dst  Reg   // destination register (ALU, loads, S2R)
	PDst Pred  // destination predicate (ISETP/FSETP)
	Cmp  CmpOp // comparison mode (ISETP/FSETP only)

	SrcA, SrcB, SrcC Operand
	Imm              uint32 // immediate payload if any operand is KindImm
	Target           int32  // branch target, instruction index (BRA)
}

// Uncond reports whether the instruction executes regardless of
// predicate state.
func (in Instruction) Uncond() bool { return in.Guard == PT && !in.GuardNeg }

// Validate checks structural well-formedness: defined opcode, legal
// register and predicate indices, and operand shapes appropriate to
// the opcode. It does not check program-level properties (branch
// targets in range); Program.Validate does that.
//
// The Imm field is a single shared constant slot, as on GT200: it
// serves either one KindImm operand, one KindSmem operand's byte
// address, or a memory instruction's address offset — so those uses
// are mutually exclusive.
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Guard != PT && in.Guard >= NumPreds {
		return fmt.Errorf("isa: invalid guard predicate %d", in.Guard)
	}
	if WritesPredicate(in.Op) {
		if in.PDst >= NumPreds {
			return fmt.Errorf("isa: %s writes invalid predicate %d", in.Op, in.PDst)
		}
		if in.Cmp >= numCmps {
			return fmt.Errorf("isa: %s has invalid comparison %d", in.Op, in.Cmp)
		}
	}
	immUses, smemOps := 0, 0
	for _, o := range []Operand{in.SrcA, in.SrcB, in.SrcC} {
		switch o.Kind {
		case KindNone:
		case KindImm:
			immUses++
		case KindSmem:
			immUses++
			smemOps++
		case KindReg:
			if int(o.Reg) >= NumRegs {
				return fmt.Errorf("isa: register %d out of range", o.Reg)
			}
		case KindSReg:
			if int(o.SReg) >= NumSRegs {
				return fmt.Errorf("isa: special register %d out of range", o.SReg)
			}
		default:
			return fmt.Errorf("isa: invalid operand kind %d", o.Kind)
		}
	}
	if smemOps > 1 {
		return fmt.Errorf("isa: %s has %d shared-memory operands (max 1)", in.Op, smemOps)
	}
	if smemOps == 1 && immUses > 1 {
		return fmt.Errorf("isa: %s mixes shared-memory and immediate operands in one Imm slot", in.Op)
	}
	if smemOps > 0 && (IsMemory(in.Op) || IsControl(in.Op)) {
		return fmt.Errorf("isa: %s cannot take a shared-memory operand", in.Op)
	}
	if IsMemory(in.Op) {
		// Memory instructions address through SrcA + Imm offset; the
		// address register must be a register and the store value
		// must not claim the Imm slot.
		if in.SrcA.Kind != KindReg {
			return fmt.Errorf("isa: %s address operand must be a register", in.Op)
		}
		if immUses > 0 {
			return fmt.Errorf("isa: %s uses Imm as address offset; immediate operands not allowed", in.Op)
		}
	}
	if IsDouble(in.Op) {
		// Doubles use register pairs (r, r+1); the named register
		// must leave room for its partner.
		if int(in.Dst)+1 >= NumRegs {
			return fmt.Errorf("isa: double dst pair %d,%d out of range", in.Dst, in.Dst+1)
		}
	}
	return nil
}

// String renders the instruction in the assembler's text syntax.
func (in Instruction) String() string {
	var b strings.Builder
	if !in.Uncond() {
		b.WriteByte('@')
		if in.GuardNeg {
			b.WriteByte('!')
		}
		b.WriteString(in.Guard.String())
		b.WriteByte(' ')
	}
	b.WriteString(in.Op.String())
	if WritesPredicate(in.Op) {
		b.WriteByte('.')
		b.WriteString(in.Cmp.String())
	}
	args := make([]string, 0, 4)
	if WritesPredicate(in.Op) {
		args = append(args, in.PDst.String())
	} else if hasDst(in.Op) {
		args = append(args, in.Dst.String())
	}
	for _, o := range []Operand{in.SrcA, in.SrcB, in.SrcC} {
		switch o.Kind {
		case KindNone:
		case KindImm:
			args = append(args, fmt.Sprintf("0x%x", in.Imm))
		case KindSmem:
			args = append(args, fmt.Sprintf("s[0x%x]", in.Imm))
		default:
			args = append(args, o.String())
		}
	}
	if IsMemory(in.Op) && in.Imm != 0 {
		args = append(args, fmt.Sprintf("+0x%x", in.Imm))
	}
	if in.Op == OpBRA {
		args = append(args, fmt.Sprintf("@%d", in.Target))
	}
	if len(args) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(args, ", "))
	}
	return b.String()
}

func hasDst(op Opcode) bool {
	switch op {
	case OpNOP, OpEXIT, OpBRA, OpBAR, OpGST, OpSST, OpISETP, OpFSETP:
		return false
	}
	return true
}

// HasDst reports whether the opcode writes a general-purpose
// destination register.
func HasDst(op Opcode) bool { return hasDst(op) }

// Program is a straight-line sequence of instructions with branch
// targets expressed as instruction indices.
type Program struct {
	// Name labels the kernel in reports and containers.
	Name string
	// Code is the instruction sequence. Execution begins at index 0
	// and ends at an EXIT.
	Code []Instruction
	// RegsPerThread is the number of registers the kernel uses per
	// thread (for occupancy); must cover every register referenced.
	RegsPerThread int
	// SharedMemBytes is the static shared-memory allocation per
	// block.
	SharedMemBytes int
}

// Validate checks every instruction plus program-level invariants:
// branch targets in range, terminating EXIT present, and declared
// register usage covering actual usage.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	maxReg := -1
	hasExit := false
	for i, in := range p.Code {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: %q instruction %d: %w", p.Name, i, err)
		}
		if in.Op == OpEXIT {
			hasExit = true
		}
		if in.Op == OpBRA && (in.Target < 0 || int(in.Target) >= len(p.Code)) {
			return fmt.Errorf("isa: %q instruction %d: branch target %d out of range [0,%d)",
				p.Name, i, in.Target, len(p.Code))
		}
		if hasDst(in.Op) {
			r := int(in.Dst)
			if IsDouble(in.Op) {
				r++
			}
			if r > maxReg {
				maxReg = r
			}
		}
		for _, o := range []Operand{in.SrcA, in.SrcB, in.SrcC} {
			if o.Kind == KindReg && int(o.Reg) > maxReg {
				maxReg = int(o.Reg)
			}
		}
	}
	if !hasExit {
		return fmt.Errorf("isa: program %q has no exit", p.Name)
	}
	if p.RegsPerThread < maxReg+1 {
		return fmt.Errorf("isa: program %q declares %d registers but uses %d",
			p.Name, p.RegsPerThread, maxReg+1)
	}
	return nil
}

// Stats summarizes the static composition of the program.
type Stats struct {
	Total      int
	ByClass    [NumClasses]int
	SharedOps  int
	GlobalOps  int
	ControlOps int
}

// StaticStats counts instructions by cost class and memory kind.
func (p *Program) StaticStats() Stats {
	var s Stats
	for _, in := range p.Code {
		s.Total++
		s.ByClass[ClassOf(in.Op)]++
		switch {
		case IsShared(in.Op):
			s.SharedOps++
		case IsGlobal(in.Op):
			s.GlobalOps++
		case IsControl(in.Op):
			s.ControlOps++
		}
	}
	return s
}
