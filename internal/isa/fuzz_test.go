package isa_test

import (
	"reflect"
	"testing"

	"gpuperf/internal/isa"
	"gpuperf/internal/kernels"
)

// FuzzDecodeProgram hammers the binary instruction decoder with
// arbitrary streams — exactly what an untrusted container delivers
// after the envelope checks pass. Accepted streams must survive a
// re-encode/re-decode round unchanged: Decode is the only gate
// between network bytes and the simulator, so "decodes without
// validating" bugs would surface here as fixed-point violations.
func FuzzDecodeProgram(f *testing.F) {
	m, err := kernels.NewMatmul(64, 16)
	if err != nil {
		f.Fatalf("seed matmul: %v", err)
	}
	f.Add(isa.EncodeProgram(m.Program()))
	naive, err := kernels.NewMatmulNaive(64)
	if err != nil {
		f.Fatalf("seed matmul-naive: %v", err)
	}
	f.Add(isa.EncodeProgram(naive.Program()))
	f.Add(make([]byte, isa.WordSize))
	f.Add(make([]byte, isa.WordSize-1))
	f.Fuzz(func(t *testing.T, raw []byte) {
		code, err := isa.DecodeProgram(raw)
		if err != nil {
			return
		}
		p := &isa.Program{Name: "fuzz", Code: code, RegsPerThread: 1 << 20}
		enc := isa.EncodeProgram(p)
		code2, err := isa.DecodeProgram(enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded accepted stream: %v", err)
		}
		if !reflect.DeepEqual(code, code2) {
			t.Fatalf("decode/encode/decode is not a fixed point:\n%v\nvs\n%v", code, code2)
		}
	})
}
