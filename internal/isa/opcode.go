// Package isa defines the native instruction set of the simulated
// GT200-class GPU.
//
// The paper's central methodological claim is that performance
// modeling must happen at the level of the GPU's *native* machine
// instructions (recovered there with the Decuda disassembler), not
// PTX or a high-level language. This package plays the role of that
// native ISA: a scalar, predicated, load/store instruction set whose
// instructions fall into the four cost classes of paper Table 1
// according to how many functional units per SM can execute them.
package isa

import "fmt"

// Opcode identifies one machine operation.
type Opcode uint8

// Machine opcodes. The set mirrors what Decuda exposes of the GT200
// ISA closely enough to express the paper's microbenchmarks and case
// studies: 32-bit integer and float ALU ops, transcendentals, double
// precision, shared/global loads and stores, predicate-setting
// compares, branches and barriers.
const (
	OpNOP Opcode = iota
	OpEXIT
	OpBRA // branch to Target if predicate holds
	OpBAR // block-wide synchronization barrier
	OpMOV
	OpS2R // read special register (tid, ctaid, ...)

	OpIADD
	OpISUB
	OpIMUL
	OpIMAD
	OpIMIN
	OpIMAX
	OpSHL
	OpSHR
	OpAND
	OpOR
	OpXOR
	OpISETP // integer compare, writes predicate

	OpFADD
	OpFSUB
	OpFMUL
	OpFMAD
	OpFNMAD // dst = c - a*b (MAD with negated product, as GT200's
	// operand-negation modifiers allow)
	OpFMIN
	OpFMAX
	OpFSETP // float compare, writes predicate

	OpRCP // reciprocal
	OpRSQ // reciprocal square root
	OpSIN
	OpCOS
	OpLG2
	OpEX2

	OpDADD // double precision, register pairs
	OpDMUL
	OpDFMA

	OpGLD // global load
	OpGST // global store
	OpSLD // shared load
	OpSST // shared store

	numOpcodes // must remain last
)

var opNames = [...]string{
	OpNOP: "nop", OpEXIT: "exit", OpBRA: "bra", OpBAR: "bar.sync",
	OpMOV: "mov", OpS2R: "s2r",
	OpIADD: "iadd", OpISUB: "isub", OpIMUL: "imul", OpIMAD: "imad",
	OpIMIN: "imin", OpIMAX: "imax",
	OpSHL: "shl", OpSHR: "shr", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpISETP: "isetp",
	OpFADD:  "fadd", OpFSUB: "fsub", OpFMUL: "fmul", OpFMAD: "fmad", OpFNMAD: "fnmad",
	OpFMIN: "fmin", OpFMAX: "fmax", OpFSETP: "fsetp",
	OpRCP: "rcp", OpRSQ: "rsq", OpSIN: "sin", OpCOS: "cos",
	OpLG2: "lg2", OpEX2: "ex2",
	OpDADD: "dadd", OpDMUL: "dmul", OpDFMA: "dfma",
	OpGLD: "gld", OpGST: "gst", OpSLD: "sld", OpSST: "sst",
}

// NumOpcodes is the count of defined opcodes, exported for
// exhaustiveness checks in tests.
const NumOpcodes = int(numOpcodes)

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// Class is the cost classification of paper Table 1: instructions
// are grouped by the number of per-SM functional units that can
// execute them, which sets their peak issue throughput.
type Class uint8

const (
	// ClassI instructions (mul) can use 10 units per SM: the 8
	// floating-point units plus 2 multipliers in the SFUs.
	ClassI Class = iota
	// ClassII instructions (mov, add, mad and all other "plain" ALU
	// and control work) use the 8 SP units.
	ClassII
	// ClassIII transcendentals (sin, cos, log, rcp) run on 4 units.
	ClassIII
	// ClassIV double-precision instructions share 1 unit per SM.
	ClassIV
	// NumClasses is the number of cost classes.
	NumClasses = 4
)

func (c Class) String() string {
	switch c {
	case ClassI:
		return "Type I"
	case ClassII:
		return "Type II"
	case ClassIII:
		return "Type III"
	case ClassIV:
		return "Type IV"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Units returns the number of functional units per SM for the class
// on GT200 (paper Table 1).
func (c Class) Units() int {
	switch c {
	case ClassI:
		return 10
	case ClassII:
		return 8
	case ClassIII:
		return 4
	case ClassIV:
		return 1
	}
	return 0
}

// ClassOf returns the cost class of an opcode. Memory instructions
// are issued through the ALU pipeline like Type II instructions (the
// transaction cost they generate is accounted separately by the
// shared- and global-memory components of the model), so they
// classify as ClassII here.
func ClassOf(op Opcode) Class {
	switch op {
	case OpIMUL, OpFMUL:
		return ClassI
	case OpRCP, OpRSQ, OpSIN, OpCOS, OpLG2, OpEX2:
		return ClassIII
	case OpDADD, OpDMUL, OpDFMA:
		return ClassIV
	default:
		return ClassII
	}
}

// IsMemory reports whether the opcode accesses shared or global
// memory.
func IsMemory(op Opcode) bool {
	switch op {
	case OpGLD, OpGST, OpSLD, OpSST:
		return true
	}
	return false
}

// IsGlobal reports whether the opcode accesses global memory.
func IsGlobal(op Opcode) bool { return op == OpGLD || op == OpGST }

// IsShared reports whether the opcode accesses shared memory.
func IsShared(op Opcode) bool { return op == OpSLD || op == OpSST }

// IsControl reports whether the opcode affects control flow or
// synchronization.
func IsControl(op Opcode) bool {
	switch op {
	case OpBRA, OpEXIT, OpBAR:
		return true
	}
	return false
}

// WritesPredicate reports whether the opcode writes a predicate
// register instead of a general-purpose destination.
func WritesPredicate(op Opcode) bool { return op == OpISETP || op == OpFSETP }

// IsDouble reports whether the opcode operates on 64-bit register
// pairs.
func IsDouble(op Opcode) bool { return ClassOf(op) == ClassIV }
